(* Tests for the section 7 extensions: placement side-constraints
   maintained during the optimisation, and the suspend-to-RAM sleeping
   state. *)

open Entropy_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_nodes ?(cpu = 200) ?(mem = 3584) n =
  Array.init n (fun i ->
      Node.make ~id:i ~name:(Printf.sprintf "N%d" i) ~cpu_capacity:cpu
        ~memory_mb:mem)

let mk_vms specs =
  Array.of_list
    (List.mapi
       (fun i m -> Vm.make ~id:i ~name:(Printf.sprintf "vm%d" i) ~memory_mb:m)
       specs)

(* -- placement rules: checking --------------------------------------------- *)

let spread_config () =
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 512; 512; 512 ] in
  Configuration.make ~nodes ~vms

let test_rules_spread_check () =
  let config = spread_config () in
  let rule = Placement_rules.Spread [ 0; 1 ] in
  (* not running: trivially satisfied *)
  check_bool "waiting ok" true (Placement_rules.check config rule);
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 0) in
  check_bool "co-located violates" false (Placement_rules.check config rule);
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  check_bool "distinct hosts ok" true (Placement_rules.check config rule)

let test_rules_gather_check () =
  let config = spread_config () in
  let rule = Placement_rules.Gather [ 0; 1 ] in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  check_bool "single member ok" true (Placement_rules.check config rule);
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  check_bool "split violates" false (Placement_rules.check config rule);
  let config = Configuration.set_state config 1 (Configuration.Running 0) in
  check_bool "together ok" true (Placement_rules.check config rule)

let test_rules_ban_fence_check () =
  let config = spread_config () in
  let config = Configuration.set_state config 0 (Configuration.Running 2) in
  check_bool "ban violated" false
    (Placement_rules.check config (Placement_rules.Ban ([ 0 ], [ 2 ])));
  check_bool "fence violated" false
    (Placement_rules.check config (Placement_rules.Fence ([ 0 ], [ 0; 1 ])));
  check_bool "fence ok" true
    (Placement_rules.check config (Placement_rules.Fence ([ 0 ], [ 2 ])))

let test_rules_allowed_nodes () =
  let rules =
    [ Placement_rules.Ban ([ 0 ], [ 1 ]); Placement_rules.Fence ([ 0 ], [ 1; 2 ]) ]
  in
  (match Placement_rules.allowed_nodes rules ~node_count:4 0 with
  | Some [ 2 ] -> ()
  | Some other ->
    Alcotest.failf "expected [2], got [%s]"
      (String.concat ";" (List.map string_of_int other))
  | None -> Alcotest.fail "expected a restriction");
  check_bool "unconstrained VM" true
    (Placement_rules.allowed_nodes rules ~node_count:4 1 = None)

(* -- placement rules: FFD -------------------------------------------------- *)

let test_ffd_respects_spread () =
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 512; 512; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = Demand.uniform ~vm_count:3 10 in
  let rules = [ Placement_rules.Spread [ 0; 1; 2 ] ] in
  match Ffd.place ~rules config demand [ 0; 1; 2 ] with
  | None -> Alcotest.fail "expected placement"
  | Some c ->
    check_bool "spread satisfied" true (Placement_rules.check_all c rules)

let test_ffd_respects_gather () =
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 512; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = Demand.uniform ~vm_count:2 10 in
  let rules = [ Placement_rules.Gather [ 0; 1 ] ] in
  match Ffd.place ~rules config demand [ 0; 1 ] with
  | None -> Alcotest.fail "expected placement"
  | Some c ->
    check_bool "gather satisfied" true (Placement_rules.check_all c rules)

let test_ffd_respects_ban () =
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = Demand.uniform ~vm_count:1 10 in
  let rules = [ Placement_rules.Ban ([ 0 ], [ 0 ]) ] in
  match Ffd.place ~rules config demand [ 0 ] with
  | None -> Alcotest.fail "expected placement"
  | Some c -> check_int "on node 1" 1 (Option.get (Configuration.host c 0))

let test_ffd_infeasible_rules () =
  (* spread over more VMs than nodes *)
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 256; 256; 256 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = Demand.uniform ~vm_count:3 10 in
  let rules = [ Placement_rules.Spread [ 0; 1; 2 ] ] in
  check_bool "cannot place" false (Ffd.fits ~rules config demand [ 0; 1; 2 ])

let test_ffd_spread_accounts_existing () =
  (* VM0 already runs on node0: a spread partner must avoid node0 *)
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 512; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let demand = Demand.uniform ~vm_count:2 10 in
  let rules = [ Placement_rules.Spread [ 0; 1 ] ] in
  match Ffd.place ~rules config demand [ 1 ] with
  | None -> Alcotest.fail "expected placement"
  | Some c -> check_int "avoids node0" 1 (Option.get (Configuration.host c 1))

(* -- placement rules: optimizer -------------------------------------------- *)

let test_optimizer_maintains_spread () =
  (* without the rule the cheapest placement is "stay put" (both on
     node0); the spread rule forces a move despite its cost *)
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 1024; 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 0) in
  let demand = Demand.uniform ~vm_count:2 40 in
  let rules = [ Placement_rules.Spread [ 0; 1 ] ] in
  let result =
    Optimizer.optimize ~rules ~current:config ~demand ~placed:[ 0; 1 ]
      ~target_base:config ~fallback:config ()
  in
  check_bool "rules satisfied" true result.Optimizer.rules_satisfied;
  check_bool "spread holds" true
    (Placement_rules.check_all result.Optimizer.target rules);
  check_int "one migration" 1 (Plan.migration_count result.Optimizer.plan);
  check_int "cost is one move" 1024 result.Optimizer.cost

let test_optimizer_rule_beats_cheaper_violation () =
  (* the fallback violates the rule: the optimiser must prefer its own
     rule-satisfying solution even though the fallback is cheaper *)
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 1024; 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 0) in
  let demand = Demand.uniform ~vm_count:2 40 in
  let rules = [ Placement_rules.Spread [ 0; 1 ] ] in
  let result =
    Optimizer.optimize ~rules ~current:config ~demand ~placed:[ 0; 1 ]
      ~target_base:config ~fallback:config ()
  in
  (* the fallback (stay put, cost 0) violates; result must not *)
  check_bool "rule-satisfying result" true result.Optimizer.rules_satisfied;
  check_bool "pays for compliance" true (result.Optimizer.cost > 0)

let test_optimizer_maintains_fence () =
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let demand = Demand.uniform ~vm_count:1 40 in
  let rules = [ Placement_rules.Fence ([ 0 ], [ 2 ]) ] in
  let result =
    Optimizer.optimize ~rules ~current:config ~demand ~placed:[ 0 ]
      ~target_base:config ~fallback:config ()
  in
  check_int "forced to node 2" 2
    (Option.get (Configuration.host result.Optimizer.target 0));
  check_bool "rules satisfied" true result.Optimizer.rules_satisfied

let test_optimizer_maintains_gather () =
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 512; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let demand = Demand.uniform ~vm_count:2 40 in
  let rules = [ Placement_rules.Gather [ 0; 1 ] ] in
  let result =
    Optimizer.optimize ~rules ~current:config ~demand ~placed:[ 0; 1 ]
      ~target_base:config ~fallback:config ()
  in
  check_bool "gather holds" true
    (Placement_rules.check_all result.Optimizer.target rules);
  (* exactly one of the two moves: cost one migration *)
  check_int "one migration" 1 (Plan.migration_count result.Optimizer.plan)

let test_decision_with_rules_end_to_end () =
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 512; 512 ] in
  let vjob = Vjob.make ~id:0 ~name:"ha" ~vms:[ 0; 1 ] () in
  let config = Configuration.make ~nodes ~vms in
  let demand = Demand.uniform ~vm_count:2 40 in
  let rules = [ Placement_rules.Spread [ 0; 1 ] ] in
  let decision = Decision.consolidation ~cp_timeout:0.5 ~rules () in
  let obs = { Decision.config; demand; queue = [ vjob ]; finished = [] } in
  let result = decision.Decision.decide obs in
  check_bool "runs" true
    (Configuration.vjob_state result.Optimizer.target vjob
    = Some Lifecycle.Running);
  check_bool "spread" true
    (Placement_rules.check_all result.Optimizer.target rules)

(* -- quota rule -------------------------------------------------------------- *)

let test_quota_check () =
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 256; 256; 256 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 0) in
  let rule = Placement_rules.Quota ([ 0 ], 2) in
  check_bool "at quota ok" true (Placement_rules.check config rule);
  let config = Configuration.set_state config 2 (Configuration.Running 0) in
  check_bool "over quota" false (Placement_rules.check config rule)

let test_quota_ffd () =
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 256; 256; 256 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = Demand.uniform ~vm_count:3 10 in
  let rules = [ Placement_rules.Quota ([ 0 ], 2) ] in
  match Ffd.place ~rules config demand [ 0; 1; 2 ] with
  | None -> Alcotest.fail "expected placement"
  | Some c ->
    check_bool "quota holds" true (Placement_rules.check_all c rules);
    check_int "two on node0" 2 (List.length (Configuration.running_on c 0));
    check_int "one on node1" 1 (List.length (Configuration.running_on c 1))

let test_quota_optimizer () =
  (* three VMs currently on node0, quota 1: two must move *)
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 512; 512; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config =
    List.fold_left
      (fun c vm -> Configuration.set_state c vm (Configuration.Running 0))
      config [ 0; 1; 2 ]
  in
  let demand = Demand.uniform ~vm_count:3 10 in
  let rules = [ Placement_rules.Quota ([ 0 ], 1) ] in
  let result =
    Optimizer.optimize ~rules ~current:config ~demand ~placed:[ 0; 1; 2 ]
      ~target_base:config ~fallback:config ()
  in
  check_bool "quota holds" true
    (Placement_rules.check_all result.Optimizer.target rules);
  check_int "two migrations" 2 (Plan.migration_count result.Optimizer.plan)

(* -- suspend-to-RAM --------------------------------------------------------- *)

let test_ram_state_consumes_memory_not_cpu () =
  let nodes = mk_nodes ~cpu:100 ~mem:2048 1 in
  let vms = mk_vms [ 1536 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Sleeping_ram 0) in
  let demand = Demand.uniform ~vm_count:1 100 in
  check_int "memory held" 1536 (Configuration.mem_load config 0);
  check_int "no cpu" 0 (Configuration.cpu_load config demand 0);
  check_bool "viable" true (Configuration.is_viable config demand);
  check_bool "lifecycle sleeping" true
    (Configuration.lifecycle config 0 = Lifecycle.Sleeping)

let test_ram_actions_apply () =
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Action.apply config (Action.Run { vm = 0; dst = 0 }) in
  let config = Action.apply config (Action.Suspend_ram { vm = 0; host = 0 }) in
  check_bool "ram-suspended" true
    (Configuration.state config 0 = Configuration.Sleeping_ram 0);
  let config = Action.apply config (Action.Resume_ram { vm = 0; host = 0 }) in
  check_bool "running again" true
    (Configuration.state config 0 = Configuration.Running 0)

let test_ram_resume_claims_cpu_only () =
  let nodes = mk_nodes ~cpu:100 ~mem:2048 1 in
  let vms = mk_vms [ 2048; 1 ] in
  (* N0's memory is entirely held by the RAM image: a disk resume of a
     2048 MB VM would not fit, the RAM resume does *)
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Sleeping_ram 0) in
  let demand = Demand.uniform ~vm_count:2 50 in
  check_bool "ram resume feasible" true
    (Action.feasible config demand (Action.Resume_ram { vm = 0; host = 0 }));
  (* the claim reports zero memory *)
  (match Action.claim config demand (Action.Resume_ram { vm = 0; host = 0 }) with
  | Some (0, 50, 0) -> ()
  | Some (n, c, m) -> Alcotest.failf "unexpected claim (%d,%d,%d)" n c m
  | None -> Alcotest.fail "expected a claim")

let test_ram_rgraph_and_planner () =
  let nodes = mk_nodes ~cpu:100 ~mem:2048 1 in
  let vms = mk_vms [ 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let demand = Demand.uniform ~vm_count:1 50 in
  let target =
    Configuration.with_states config [| Configuration.Sleeping_ram 0 |]
  in
  let plan = Planner.build ~current:config ~target ~demand () in
  check_int "one ram suspend" 1 (Plan.ram_suspend_count plan);
  check_int "plan cost zero" 0 (Plan.cost config plan);
  check_bool "valid" true (Plan.is_valid ~current:config ~target ~demand plan)

let test_ram_image_cannot_move () =
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Sleeping_ram 0) in
  let target = Configuration.with_states config [| Configuration.Running 1 |] in
  check_bool "unreachable" true
    (try
       ignore (Rgraph.actions ~current:config ~target);
       false
     with Rgraph.Unreachable _ -> true)

let test_ram_cost_model () =
  let config =
    Configuration.make ~nodes:(mk_nodes 2) ~vms:(mk_vms [ 2048 ])
  in
  check_int "ram suspend free" 0
    (Cost.action config (Action.Suspend_ram { vm = 0; host = 0 }));
  check_int "ram resume free" 0
    (Cost.action config (Action.Resume_ram { vm = 0; host = 0 }))

let test_prefer_ram_suspends_respects_memory () =
  let nodes = mk_nodes ~cpu:200 ~mem:2048 2 in
  let vms = mk_vms [ 1024; 1536; 1536 ] in
  let current = Configuration.make ~nodes ~vms in
  let current = Configuration.set_state current 0 (Configuration.Running 0) in
  let current = Configuration.set_state current 1 (Configuration.Running 1) in
  (* target: VM0 and VM1 suspend; VM2 starts on node1 filling its memory *)
  let target =
    Configuration.with_states current
      [|
        Configuration.Sleeping 0;
        Configuration.Sleeping 1;
        Configuration.Running 1;
      |]
  in
  let target = Decision.prefer_ram_suspends ~current target in
  check_bool "vm0 kept in RAM (node0 empty)" true
    (Configuration.state target 0 = Configuration.Sleeping_ram 0);
  check_bool "vm1 stays on disk (node1 memory taken)" true
    (Configuration.state target 1 = Configuration.Sleeping 1)

let test_rjsp_resumes_ram_vjob_in_place () =
  let nodes = mk_nodes ~cpu:200 ~mem:3584 2 in
  let vms = mk_vms [ 1024; 1024 ] in
  let vjob = Vjob.make ~id:0 ~name:"j" ~vms:[ 0; 1 ] () in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Sleeping_ram 0) in
  let config = Configuration.set_state config 1 (Configuration.Sleeping_ram 1) in
  let demand = Demand.uniform ~vm_count:2 100 in
  let outcome = Rjsp.solve ~config ~demand ~queue:[ vjob ] () in
  check_bool "selected" true (Rjsp.selected outcome vjob);
  check_bool "resumed on image hosts" true
    (Configuration.state outcome.Rjsp.ffd_config 0 = Configuration.Running 0
    && Configuration.state outcome.Rjsp.ffd_config 1 = Configuration.Running 1)

let test_rjsp_ram_vjob_blocked_by_cpu () =
  (* the image host's CPU is taken: the RAM vjob cannot resume *)
  let nodes = mk_nodes ~cpu:100 ~mem:3584 1 in
  let vms = mk_vms [ 1024; 512 ] in
  let ram_vjob = Vjob.make ~id:0 ~name:"ram" ~vms:[ 0 ] ~submit_time:1. () in
  let busy_vjob = Vjob.make ~id:1 ~name:"busy" ~vms:[ 1 ] ~submit_time:0. () in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Sleeping_ram 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 0) in
  let demand = Demand.uniform ~vm_count:2 100 in
  let outcome = Rjsp.solve ~config ~demand ~queue:[ ram_vjob; busy_vjob ] () in
  check_bool "busy selected" true (Rjsp.selected outcome busy_vjob);
  check_bool "ram vjob waits" false (Rjsp.selected outcome ram_vjob)

let test_end_to_end_ram_policy () =
  (* overload: with the RAM policy, the suspended vjob's images stay in
     RAM and the final plan contains ram suspends *)
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 1024; 1024; 1024; 1024; 1024; 1024 ] in
  let vjobs =
    List.init 3 (fun j ->
        Vjob.make ~id:j ~name:(Printf.sprintf "j%d" j)
          ~vms:[ 2 * j; (2 * j) + 1 ] ~submit_time:(float_of_int j) ())
  in
  let config =
    List.fold_left
      (fun c (vm, node) ->
        Configuration.set_state c vm (Configuration.Running node))
      (Configuration.make ~nodes ~vms)
      [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 0); (5, 1) ]
  in
  let demand = Demand.uniform ~vm_count:6 100 in
  let decision = Decision.consolidation ~cp_timeout:0.5 ~suspend_to_ram:true () in
  let obs = { Decision.config; demand; queue = vjobs; finished = [] } in
  let result = decision.Decision.decide obs in
  check_bool "target viable" true
    (Configuration.is_viable result.Optimizer.target demand);
  check_bool "has ram suspends" true
    (Plan.ram_suspend_count result.Optimizer.plan > 0);
  check_int "no disk suspends needed" 0
    (Plan.suspend_count result.Optimizer.plan)

(* -- schedule (timed plans) --------------------------------------------------- *)

let check_float eps = Alcotest.(check (float eps))

let test_schedule_pools_sequential () =
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 1024; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let plan =
    Plan.make
      [
        [ Action.Suspend { vm = 0; host = 0 } ];
        [ Action.Run { vm = 1; dst = 0 } ];
      ]
  in
  let sched = Schedule.of_plan config plan in
  let suspend_dur = 1024. /. Schedule.default_durations.Schedule.suspend_mb_s in
  check_float 0.01 "makespan" (suspend_dur +. 6.) (Schedule.makespan sched);
  match Schedule.entry_for sched 1 with
  | Some e -> check_float 0.01 "pool 2 starts after pool 1" suspend_dur e.Schedule.start
  | None -> Alcotest.fail "expected entry"

let test_schedule_pipelines_suspends () =
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 512; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let plan =
    Plan.make
      [
        [
          Action.Suspend { vm = 0; host = 0 };
          Action.Suspend { vm = 1; host = 1 };
        ];
      ]
  in
  let sched = Schedule.of_plan config plan in
  (match (Schedule.entry_for sched 0, Schedule.entry_for sched 1) with
  | Some a, Some b ->
    check_float 0.001 "1s stagger" 1. (b.Schedule.start -. a.Schedule.start)
  | _ -> Alcotest.fail "expected both entries");
  (* overlapping, not sequential *)
  let single = 512. /. Schedule.default_durations.Schedule.suspend_mb_s in
  check_float 0.01 "overlap" (single +. 1.) (Schedule.makespan sched)

let test_schedule_remote_resume_longer () =
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Sleeping 0) in
  let local =
    Schedule.action_duration config (Action.Resume { vm = 0; src = 0; dst = 0 })
  in
  let remote =
    Schedule.action_duration config (Action.Resume { vm = 0; src = 0; dst = 1 })
  in
  check_bool "remote longer" true (remote > 1.8 *. local);
  check_bool "ram resume near-instant" true
    (Schedule.action_duration config (Action.Resume_ram { vm = 0; host = 0 })
    < 1.)

let test_schedule_empty_plan () =
  let config = Configuration.make ~nodes:(mk_nodes 1) ~vms:(mk_vms [ 512 ]) in
  check_float 1e-9 "empty" 0. (Schedule.makespan (Schedule.of_plan config Plan.empty))

(* -- weighted decision --------------------------------------------------------- *)

let test_weighted_overrides_fcfs () =
  (* overload: only two of three vjobs fit; the heaviest (submitted
     last) must win over FCFS order *)
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 1024; 1024; 1024; 1024; 1024; 1024 ] in
  let vjobs =
    List.init 3 (fun j ->
        Vjob.make ~id:j ~name:(Printf.sprintf "j%d" j)
          ~vms:[ 2 * j; (2 * j) + 1 ] ~submit_time:(float_of_int j) ())
  in
  let config = Configuration.make ~nodes ~vms in
  let demand = Demand.uniform ~vm_count:6 100 in
  let weight vj = if Vjob.id vj = 2 then 10 else 1 in
  let decision = Decision.weighted ~cp_timeout:0.5 ~weight () in
  let obs = { Decision.config; demand; queue = vjobs; finished = [] } in
  let result = decision.Decision.decide obs in
  let state id =
    Configuration.vjob_state result.Optimizer.target
      (List.find (fun v -> Vjob.id v = id) vjobs)
  in
  check_bool "heavy vjob admitted" true (state 2 = Some Lifecycle.Running);
  check_bool "one light vjob admitted" true (state 0 = Some Lifecycle.Running);
  check_bool "other light vjob waits" true (state 1 = Some Lifecycle.Waiting)

(* -- continuous scheduling ------------------------------------------------------ *)

(* Independent replay of a continuous schedule: at every action start,
   the combined reservations must fit every node. *)
let continuous_feasible config demand entries =
  let n = Configuration.node_count config in
  let cpu_load, mem_load = Configuration.loads config demand in
  let cap_cpu =
    Array.init n (fun i -> Node.cpu_capacity (Configuration.node config i))
  in
  let cap_mem =
    Array.init n (fun i -> Node.memory_mb (Configuration.node config i))
  in
  let frees_of a =
    let vm = Action.vm a in
    let cpu = Demand.cpu demand vm in
    let mem = Vm.memory_mb (Configuration.vm config vm) in
    match a with
    | Action.Migrate { src; dst; _ } when src <> dst -> [ (src, cpu, mem) ]
    | Action.Suspend { host; _ } | Action.Stop { host; _ } ->
      [ (host, cpu, mem) ]
    | Action.Suspend_ram { host; _ } -> [ (host, cpu, 0) ]
    | _ -> []
  in
  List.for_all
    (fun (e : Continuous.entry) ->
      let t = e.Continuous.start in
      let use_cpu = Array.copy cpu_load and use_mem = Array.copy mem_load in
      List.iter
        (fun (e' : Continuous.entry) ->
          if e'.Continuous.start <= t then begin
            (match Action.claim config demand e'.Continuous.action with
            | Some (node, cpu, mem) ->
              use_cpu.(node) <- use_cpu.(node) + cpu;
              use_mem.(node) <- use_mem.(node) + mem
            | None -> ());
            if e'.Continuous.finish <= t then
              List.iter
                (fun (node, cpu, mem) ->
                  use_cpu.(node) <- use_cpu.(node) - cpu;
                  use_mem.(node) <- use_mem.(node) - mem)
                (frees_of e'.Continuous.action)
          end)
        entries;
      let ok = ref true in
      for i = 0 to n - 1 do
        if use_cpu.(i) > cap_cpu.(i) || use_mem.(i) > cap_mem.(i) then
          ok := false
      done;
      !ok)
    entries

let test_continuous_beats_pool_barrier () =
  (* pool 1 holds a long suspend and a short migration; the run of pool
     2 only needs the migration's source — continuous starts it ~100 s
     earlier *)
  let nodes = mk_nodes ~cpu:200 ~mem:2048 3 in
  let vms = mk_vms [ 2048; 512; 2048 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let config = Configuration.set_state config 2 (Configuration.Sleeping 1) in
  let demand = Demand.uniform ~vm_count:3 50 in
  let target =
    Configuration.with_states config
      [|
        Configuration.Sleeping 0;  (* long suspend of the 2 GB VM *)
        Configuration.Running 2;   (* short migration off N1 *)
        Configuration.Running 1;   (* long resume: needs only the migration *)
      |]
  in
  let plan = Planner.build ~current:config ~target ~demand () in
  check_int "pool plan has a barrier" 2 (Plan.pool_count plan);
  let pooled = Schedule.of_plan config plan in
  let continuous = Continuous.schedule ~current:config ~demand ~plan () in
  (* pooled: the 2 GB resume waits for the 2 GB suspend (~98 s + ~79 s);
     continuous: it starts right after the 8 s migration and overlaps
     the suspend *)
  check_bool "strictly faster" true
    (Continuous.makespan continuous < 0.65 *. Schedule.makespan pooled);
  check_bool "feasible" true
    (continuous_feasible config demand (Continuous.entries continuous));
  check_int "same actions" (Plan.action_count plan)
    (List.length (Continuous.entries continuous))

let test_continuous_respects_dependencies () =
  (* Figure 7: the migration cannot start before the suspend finishes,
     continuous or not *)
  let nodes = mk_nodes ~cpu:200 ~mem:2048 2 in
  let vms = mk_vms [ 1024; 1536 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let demand = Demand.uniform ~vm_count:2 50 in
  let target =
    Configuration.with_states config
      [| Configuration.Running 1; Configuration.Sleeping 1 |]
  in
  let plan = Planner.build ~current:config ~target ~demand () in
  let continuous = Continuous.schedule ~current:config ~demand ~plan () in
  let entry vm =
    List.find
      (fun (e : Continuous.entry) -> Action.vm e.Continuous.action = vm)
      (Continuous.entries continuous)
  in
  check_bool "migration waits for the suspend" true
    ((entry 0).Continuous.start >= (entry 1).Continuous.finish -. 1e-9)

let test_continuous_groups_vjob_resumes () =
  (* a vjob's two resumes must start within the pipeline gap of each
     other even when one could start earlier *)
  let nodes = mk_nodes ~cpu:100 ~mem:2048 2 in
  let vms = mk_vms [ 1536; 1024; 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Sleeping 0) in
  let config = Configuration.set_state config 2 (Configuration.Sleeping 1) in
  let demand = Demand.uniform ~vm_count:3 50 in
  let target =
    Configuration.with_states config
      [|
        Configuration.Sleeping 0;
        Configuration.Running 0;
        Configuration.Running 1;
      |]
  in
  let vjob = Vjob.make ~id:0 ~name:"j" ~vms:[ 1; 2 ] () in
  let plan =
    Planner.build_plan ~vjobs:[ vjob ] ~current:config ~target ~demand ()
  in
  let continuous =
    Continuous.schedule ~vjobs:[ vjob ] ~current:config ~demand ~plan ()
  in
  let starts =
    List.filter_map
      (fun (e : Continuous.entry) ->
        match e.Continuous.action with
        | Action.Resume _ -> Some e.Continuous.start
        | _ -> None)
      (Continuous.entries continuous)
  in
  check_int "two resumes" 2 (List.length starts);
  let a, b = (List.nth starts 0, List.nth starts 1) in
  check_bool "started within the pipeline gap" true (Float.abs (a -. b) <= 1.001)

(* -- properties ----------------------------------------------------------------- *)

(* Random scenario including RAM-suspended VMs. State codes:
   0 waiting, 1 running, 2 sleeping (disk), 3 sleeping-ram. *)
let gen_ram_scenario =
  QCheck.Gen.(
    let* n_nodes = int_range 2 5 in
    let* n_vms = int_range 1 8 in
    let* mems = list_repeat n_vms (oneofl [ 256; 512; 1024 ]) in
    let* cpus = list_repeat n_vms (oneofl [ 5; 50; 100 ]) in
    let* states = list_repeat n_vms (int_range 0 3) in
    let* placements = list_repeat n_vms (int_range 0 (n_nodes - 1)) in
    return (n_nodes, mems, cpus, states, placements))

let ram_scenario_print (n, mems, cpus, states, placements) =
  Printf.sprintf "nodes=%d mems=%s cpus=%s states=%s placements=%s" n
    (String.concat "," (List.map string_of_int mems))
    (String.concat "," (List.map string_of_int cpus))
    (String.concat "," (List.map string_of_int states))
    (String.concat "," (List.map string_of_int placements))

let build_ram_scenario (n_nodes, mems, cpus, states, placements) =
  let nodes = mk_nodes n_nodes in
  let vms = mk_vms mems in
  let config = ref (Configuration.make ~nodes ~vms) in
  let demand = Demand.of_fn ~vm_count:(List.length mems) (List.nth cpus) in
  List.iteri
    (fun vm_id (state, node) ->
      let cpu = Demand.cpu demand vm_id in
      let mem = Vm.memory_mb (Configuration.vm !config vm_id) in
      match state with
      | 1 when Configuration.fits !config demand ~cpu ~mem node ->
        config := Configuration.set_state !config vm_id (Configuration.Running node)
      | 2 ->
        config := Configuration.set_state !config vm_id (Configuration.Sleeping node)
      | 3 when Configuration.free_mem !config node >= mem ->
        config :=
          Configuration.set_state !config vm_id (Configuration.Sleeping_ram node)
      | _ -> ())
    (List.combine states placements);
  (!config, demand)

let prop_ram_plans_valid =
  QCheck.Test.make
    ~name:"plans over mixed disk/RAM states are valid and consistent"
    ~count:300
    (QCheck.make ~print:ram_scenario_print gen_ram_scenario)
    (fun scenario ->
      let config, demand = build_ram_scenario scenario in
      let vjobs =
        List.init (Configuration.vm_count config) (fun i ->
            Vjob.make ~id:i ~name:(Printf.sprintf "j%d" i) ~vms:[ i ]
              ~submit_time:(float_of_int i) ())
      in
      let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
      let target =
        Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config
      in
      match Planner.build_plan ~vjobs ~current:config ~target ~demand () with
      | exception Planner.Stuck _ -> QCheck.assume_fail ()
      | plan ->
        Plan.is_valid ~current:config ~target ~demand plan
        && Configuration.is_viable target demand)

let prop_schedule_invariants =
  QCheck.Test.make
    ~name:"timed schedule covers every action, makespan = max finish"
    ~count:300
    (QCheck.make ~print:ram_scenario_print gen_ram_scenario)
    (fun scenario ->
      let config, demand = build_ram_scenario scenario in
      let vjobs =
        List.init (Configuration.vm_count config) (fun i ->
            Vjob.make ~id:i ~name:(Printf.sprintf "j%d" i) ~vms:[ i ]
              ~submit_time:(float_of_int i) ())
      in
      let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
      let target =
        Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config
      in
      match Planner.build_plan ~vjobs ~current:config ~target ~demand () with
      | exception Planner.Stuck _ -> QCheck.assume_fail ()
      | plan ->
        let sched = Schedule.of_plan config plan in
        let entries = Schedule.entries sched in
        List.length entries = Plan.action_count plan
        && List.for_all
             (fun e ->
               e.Schedule.start >= 0. && e.Schedule.finish >= e.Schedule.start)
             entries
        && Float.abs
             (Schedule.makespan sched
             -. List.fold_left
                  (fun acc e -> Float.max acc e.Schedule.finish)
                  0. entries)
           < 1e-6)

let prop_rules_maintained_or_fallback =
  QCheck.Test.make
    ~name:"optimizer output viable; rules hold whenever it claims so"
    ~count:150
    (QCheck.make ~print:ram_scenario_print gen_ram_scenario)
    (fun scenario ->
      let config, demand = build_ram_scenario scenario in
      let n_vms = Configuration.vm_count config in
      let rules =
        if n_vms >= 2 then [ Placement_rules.Spread [ 0; 1 ] ] else []
      in
      let vjobs =
        List.init n_vms (fun i ->
            Vjob.make ~id:i ~name:(Printf.sprintf "j%d" i) ~vms:[ i ]
              ~submit_time:(float_of_int i) ())
      in
      let outcome = Rjsp.solve ~rules ~config ~demand ~queue:vjobs () in
      match
        Optimizer.optimize ~timeout:0.2 ~rules ~vjobs ~current:config ~demand
          ~placed:(List.concat_map Vjob.vms outcome.Rjsp.running)
          ~target_base:outcome.Rjsp.ffd_config
          ~fallback:outcome.Rjsp.ffd_config ()
      with
      | exception Planner.Stuck _ -> QCheck.assume_fail ()
      | result ->
        Configuration.is_viable result.Optimizer.target demand
        && (not result.Optimizer.rules_satisfied
           || Placement_rules.check_all result.Optimizer.target rules))

let prop_continuous_never_slower_than_pools =
  QCheck.Test.make
    ~name:"continuous makespan <= pool makespan; schedule feasible"
    ~count:300
    (QCheck.make ~print:ram_scenario_print gen_ram_scenario)
    (fun scenario ->
      let config, demand = build_ram_scenario scenario in
      let vjobs =
        List.init (Configuration.vm_count config) (fun i ->
            Vjob.make ~id:i ~name:(Printf.sprintf "j%d" i) ~vms:[ i ]
              ~submit_time:(float_of_int i) ())
      in
      let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
      let target =
        Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config
      in
      match Planner.build_plan ~vjobs ~current:config ~target ~demand () with
      | exception Planner.Stuck _ -> QCheck.assume_fail ()
      | plan -> (
        let pooled = Schedule.of_plan config plan in
        match Continuous.schedule ~vjobs ~current:config ~demand ~plan () with
        | exception Continuous.Stuck _ ->
          (* documented fallback on very tight clusters: callers keep
             the pool-based execution *)
          true
        | continuous ->
          Continuous.makespan continuous
          <= Schedule.makespan pooled +. 1e-6
          && continuous_feasible config demand
               (Continuous.entries continuous)
          && List.length (Continuous.entries continuous)
             = Plan.action_count plan))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "entropy_core_extensions"
    [
      ( "rules-check",
        [
          Alcotest.test_case "spread" `Quick test_rules_spread_check;
          Alcotest.test_case "gather" `Quick test_rules_gather_check;
          Alcotest.test_case "ban/fence" `Quick test_rules_ban_fence_check;
          Alcotest.test_case "allowed nodes" `Quick test_rules_allowed_nodes;
        ] );
      ( "rules-ffd",
        [
          Alcotest.test_case "spread" `Quick test_ffd_respects_spread;
          Alcotest.test_case "gather" `Quick test_ffd_respects_gather;
          Alcotest.test_case "ban" `Quick test_ffd_respects_ban;
          Alcotest.test_case "infeasible" `Quick test_ffd_infeasible_rules;
          Alcotest.test_case "existing VMs counted" `Quick
            test_ffd_spread_accounts_existing;
        ] );
      ( "rules-optimizer",
        [
          Alcotest.test_case "maintains spread" `Quick
            test_optimizer_maintains_spread;
          Alcotest.test_case "compliance over cost" `Quick
            test_optimizer_rule_beats_cheaper_violation;
          Alcotest.test_case "maintains fence" `Quick
            test_optimizer_maintains_fence;
          Alcotest.test_case "maintains gather" `Quick
            test_optimizer_maintains_gather;
          Alcotest.test_case "end to end" `Quick
            test_decision_with_rules_end_to_end;
        ] );
      ( "quota",
        [
          Alcotest.test_case "check" `Quick test_quota_check;
          Alcotest.test_case "ffd" `Quick test_quota_ffd;
          Alcotest.test_case "optimizer" `Quick test_quota_optimizer;
        ] );
      ( "suspend-to-ram",
        [
          Alcotest.test_case "memory not cpu" `Quick
            test_ram_state_consumes_memory_not_cpu;
          Alcotest.test_case "actions apply" `Quick test_ram_actions_apply;
          Alcotest.test_case "cpu-only claim" `Quick
            test_ram_resume_claims_cpu_only;
          Alcotest.test_case "rgraph + planner" `Quick
            test_ram_rgraph_and_planner;
          Alcotest.test_case "image pinned" `Quick test_ram_image_cannot_move;
          Alcotest.test_case "cost model" `Quick test_ram_cost_model;
          Alcotest.test_case "prefer ram respects memory" `Quick
            test_prefer_ram_suspends_respects_memory;
          Alcotest.test_case "rjsp resumes in place" `Quick
            test_rjsp_resumes_ram_vjob_in_place;
          Alcotest.test_case "rjsp blocked by cpu" `Quick
            test_rjsp_ram_vjob_blocked_by_cpu;
          Alcotest.test_case "end-to-end ram policy" `Quick
            test_end_to_end_ram_policy;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "pools sequential" `Quick
            test_schedule_pools_sequential;
          Alcotest.test_case "pipelined suspends" `Quick
            test_schedule_pipelines_suspends;
          Alcotest.test_case "remote resume longer" `Quick
            test_schedule_remote_resume_longer;
          Alcotest.test_case "empty plan" `Quick test_schedule_empty_plan;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "overrides fcfs" `Quick
            test_weighted_overrides_fcfs;
        ] );
      ( "continuous",
        [
          Alcotest.test_case "beats pool barrier" `Quick
            test_continuous_beats_pool_barrier;
          Alcotest.test_case "respects dependencies" `Quick
            test_continuous_respects_dependencies;
          Alcotest.test_case "groups vjob resumes" `Quick
            test_continuous_groups_vjob_resumes;
        ] );
      ( "properties",
        qsuite
          [
            prop_ram_plans_valid;
            prop_schedule_invariants;
            prop_rules_maintained_or_fallback;
            prop_continuous_never_slower_than_pools;
          ] );
    ]
