(* Tests for the I/O layers: the trace format, the SWF reader and the
   entropyctl cluster-description language. *)

open Entropy_core
module Trace = Vworkload.Trace
module Trace_io = Vworkload.Trace_io
module Nasgrid = Vworkload.Nasgrid
module Program = Vworkload.Program
module Spec = Entropy_cli.Spec
module Swf = Batch.Swf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

(* -- trace_io -------------------------------------------------------------- *)

let test_trace_roundtrip () =
  let traces =
    [
      Trace.make ~seed:1 ~vm_count:9 Nasgrid.Ed Nasgrid.W;
      Trace.make ~seed:2 ~vm_count:18 Nasgrid.Hc Nasgrid.B;
    ]
  in
  let parsed = Trace_io.of_string (Trace_io.to_string traces) in
  check_int "count" 2 (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "name" a.Trace.name b.Trace.name;
      check_bool "memories" true (a.Trace.memories = b.Trace.memories);
      check_bool "programs" true (a.Trace.programs = b.Trace.programs))
    traces parsed

let test_trace_parse_handwritten () =
  let text =
    "# a hand-written workload\n\
     trace my.job family=MB class=A\n\
     vm mem=512 program=C60\n\
     vm mem=1024 program=I30,C60.5,I10\n"
  in
  match Trace_io.of_string text with
  | [ t ] ->
    Alcotest.(check string) "name" "my.job" t.Trace.name;
    check_int "vms" 2 t.Trace.vm_count;
    check_bool "family" true (t.Trace.family = Nasgrid.Mb);
    (match List.nth t.Trace.programs 1 with
    | [ Program.Idle 30.; Program.Compute w; Program.Idle 10. ] ->
      check_float 1e-9 "fractional work" 60.5 w
    | p -> Alcotest.failf "unexpected program %a" Program.pp p)
  | l -> Alcotest.failf "expected 1 trace, got %d" (List.length l)

let test_trace_parse_errors () =
  let expect_error text =
    check_bool "rejected" true
      (try
         ignore (Trace_io.of_string text);
         false
       with Trace_io.Parse_error _ -> true)
  in
  expect_error "vm mem=512 program=C60\n";
  expect_error "trace x family=ZZ class=W\nvm mem=512 program=C60\n";
  expect_error "trace x family=ED class=W\nvm mem=-1 program=C60\n";
  expect_error "trace x family=ED class=W\nvm mem=512 program=X60\n";
  expect_error "trace x family=ED class=W\n" (* no VMs *)

let test_trace_parse_error_line_number () =
  let text = "trace x family=ED class=W\nvm mem=512 program=C60\nnonsense\n" in
  try
    ignore (Trace_io.of_string text);
    Alcotest.fail "expected parse error"
  with Trace_io.Parse_error { line; _ } -> check_int "line" 3 line

(* -- swf --------------------------------------------------------------------- *)

let sample_swf =
  "; SWF header comment\n\
   ; MaxNodes: 128\n\
   1 0 10 3600 16 -1 -1 16 7200 -1 1 1 1 -1 1 -1 -1 -1\n\
   2 60 0 1800 8 -1 -1 -1 -1 -1 1 2 1 -1 1 -1 -1 -1\n\
   3 120 5 -1 4 -1 -1 4 600 -1 0 3 1 -1 1 -1 -1 -1\n"

let test_swf_parses_jobs () =
  let jobs = Swf.of_string sample_swf in
  (* job 3 has runtime -1: skipped *)
  check_int "two jobs" 2 (List.length jobs);
  let j1 = List.hd jobs in
  check_int "id" 1 j1.Batch.Job.id;
  check_float 1e-9 "arrival" 0. j1.Batch.Job.arrival;
  check_int "nodes" 16 j1.Batch.Job.nodes_required;
  check_float 1e-9 "walltime" 7200. j1.Batch.Job.walltime;
  check_float 1e-9 "actual" 3600. j1.Batch.Job.actual

let test_swf_fallbacks () =
  let jobs = Swf.of_string sample_swf in
  let j2 = List.nth jobs 1 in
  (* requested procs/time absent: falls back to used/run *)
  check_int "nodes from used" 8 j2.Batch.Job.nodes_required;
  check_float 1e-9 "walltime from runtime" 1800. j2.Batch.Job.walltime

let test_swf_roundtrip () =
  let jobs = Swf.of_string sample_swf in
  let jobs' = Swf.of_string (Swf.to_string jobs) in
  check_int "count" (List.length jobs) (List.length jobs');
  List.iter2
    (fun (a : Batch.Job.t) (b : Batch.Job.t) ->
      check_int "nodes" a.Batch.Job.nodes_required b.Batch.Job.nodes_required;
      check_float 1e-9 "actual" a.Batch.Job.actual b.Batch.Job.actual)
    jobs jobs'

let test_swf_schedulable () =
  let jobs = Swf.of_string sample_swf in
  let s = Batch.Rms.backfill ~capacity:32 jobs in
  check_bool "finite makespan" true (s.Batch.Rms.makespan > 0.);
  check_int "all placed" 2 (List.length s.Batch.Rms.placements)

let test_swf_rejects_garbage () =
  check_bool "rejected" true
    (try
       ignore (Swf.of_string "not a number at all\n");
       false
     with Swf.Parse_error _ -> true)

(* -- spec --------------------------------------------------------------------- *)

let demo_spec =
  "# demo\n\
   node N0 cpu=2.0 mem=3584\n\
   node N1 cpu=1.5 mem=2048\n\
   vm web mem=512 demand=10 state=running@N0\n\
   vm db mem=2048 demand=100 state=sleeping@N1\n\
   vm loose mem=256\n\
   vjob site vms=web,db priority=0\n\
   rule spread web,db\n\
   rule ban web nodes=N1\n"

let test_spec_parses () =
  let spec = Spec.of_string demo_spec in
  check_int "nodes" 2 (Configuration.node_count spec.Spec.config);
  check_int "vms" 3 (Configuration.vm_count spec.Spec.config);
  check_int "cpu scaled" 150
    (Node.cpu_capacity (Configuration.node spec.Spec.config 1));
  check_bool "web running" true
    (Configuration.state spec.Spec.config 0 = Configuration.Running 0);
  check_bool "db sleeping" true
    (Configuration.state spec.Spec.config 1 = Configuration.Sleeping 1);
  check_int "web demand" 10 (Demand.cpu spec.Spec.demand 0);
  check_int "rules" 2 (List.length spec.Spec.rules)

let test_spec_implicit_vjob () =
  let spec = Spec.of_string demo_spec in
  (* "loose" gets an implicit singleton vjob *)
  check_int "two vjobs" 2 (List.length spec.Spec.vjobs);
  let implicit =
    List.find (fun v -> Vjob.name v = "loose") spec.Spec.vjobs
  in
  check_bool "singleton" true (Vjob.vms implicit = [ 2 ])

let test_spec_sleeping_ram_state () =
  let spec =
    Spec.of_string
      "node N0 cpu=2 mem=4096\nvm a mem=1024 state=sleeping-ram@N0\n"
  in
  check_bool "ram state" true
    (Configuration.state spec.Spec.config 0 = Configuration.Sleeping_ram 0);
  check_int "ram memory held" 1024
    (Configuration.mem_load spec.Spec.config 0)

let test_spec_programs () =
  let spec =
    Spec.of_string
      "node N0 cpu=2 mem=4096\n\
       vm a mem=512 program=C60,I30\n\
       vm b mem=512\n"
  in
  (match spec.Spec.programs.(0) with
  | [ Program.Compute 60.; Program.Idle 30. ] -> ()
  | p -> Alcotest.failf "unexpected program %a" Program.pp p);
  check_bool "no program = empty" true (spec.Spec.programs.(1) = []);
  check_bool "bad program rejected" true
    (try
       ignore
         (Spec.of_string "node N0 cpu=2 mem=4096\nvm a mem=512 program=X1\n");
       false
     with Spec.Parse_error _ -> true)

let test_program_of_string () =
  (match Program.of_string "C60,I30.5,c2" with
  | Ok [ Program.Compute 60.; Program.Idle 30.5; Program.Compute 2. ] -> ()
  | Ok p -> Alcotest.failf "unexpected %a" Program.pp p
  | Error e -> Alcotest.fail e);
  check_bool "empty ok" true (Program.of_string "" = Ok []);
  check_bool "junk rejected" true
    (match Program.of_string "Z9" with Error _ -> true | Ok _ -> false);
  check_bool "negative rejected" true
    (match Program.of_string "C-5" with Error _ -> true | Ok _ -> false)

let test_spec_quota_rule () =
  let spec =
    Spec.of_string
      "node N0 cpu=2 mem=4096\n\
       node N1 cpu=2 mem=4096\n\
       vm a mem=512\n\
       rule quota - nodes=N0 max=1\n"
  in
  (match spec.Spec.rules with
  | [ Placement_rules.Quota ([ 0 ], 1) ] -> ()
  | _ -> Alcotest.fail "expected a quota rule");
  check_bool "quota without max rejected" true
    (try
       ignore
         (Spec.of_string
            "node N0 cpu=2 mem=4096\nvm a mem=512\nrule quota - nodes=N0\n");
       false
     with Spec.Parse_error _ -> true)

let test_spec_errors () =
  let expect text =
    check_bool "rejected" true
      (try
         ignore (Spec.of_string text);
         false
       with Spec.Parse_error _ -> true)
  in
  expect "vm a mem=512\n" (* no node *);
  expect "node N0 cpu=2 mem=1024\n" (* no vm *);
  expect "node N0 cpu=2 mem=1024\nvm a mem=512 state=running@NX\n";
  expect "node N0 cpu=2 mem=1024\nvm a mem=512\nvm a mem=512\n";
  expect
    "node N0 cpu=2 mem=1024\nvm a mem=512\nvjob j vms=a\nvjob k vms=a\n";
  expect "node N0 cpu=2 mem=1024\nvm a mem=512\nrule ban a\n";
  expect "node N0 cpu=2 mem=1024\nvm a mem=512\nrule warp a\n"

let test_spec_plan_roundtrip () =
  (* the spec's configuration can be decided upon and the plan applies *)
  let spec = Spec.of_string demo_spec in
  let decision = Decision.consolidation ~cp_timeout:0.3 ~rules:spec.Spec.rules () in
  let obs =
    {
      Decision.config = spec.Spec.config;
      demand = spec.Spec.demand;
      queue = spec.Spec.vjobs;
      finished = [];
    }
  in
  let result = decision.Decision.decide obs in
  check_bool "viable" true
    (Configuration.is_viable result.Optimizer.target spec.Spec.demand);
  check_bool "rules hold" true
    (Placement_rules.check_all result.Optimizer.target spec.Spec.rules)

let prop_trace_roundtrip =
  QCheck.Test.make ~name:"trace_io roundtrips the whole catalogue" ~count:1
    QCheck.unit
    (fun () ->
      let traces = Trace.catalogue () in
      let parsed = Trace_io.of_string (Trace_io.to_string traces) in
      List.length parsed = List.length traces
      && List.for_all2
           (fun a b ->
             a.Trace.memories = b.Trace.memories
             && a.Trace.programs = b.Trace.programs)
           traces parsed)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "io"
    [
      ( "trace_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "handwritten" `Quick test_trace_parse_handwritten;
          Alcotest.test_case "errors" `Quick test_trace_parse_errors;
          Alcotest.test_case "error line" `Quick
            test_trace_parse_error_line_number;
        ]
        @ qsuite [ prop_trace_roundtrip ] );
      ( "swf",
        [
          Alcotest.test_case "parses" `Quick test_swf_parses_jobs;
          Alcotest.test_case "fallbacks" `Quick test_swf_fallbacks;
          Alcotest.test_case "roundtrip" `Quick test_swf_roundtrip;
          Alcotest.test_case "schedulable" `Quick test_swf_schedulable;
          Alcotest.test_case "rejects garbage" `Quick test_swf_rejects_garbage;
        ] );
      ( "spec",
        [
          Alcotest.test_case "parses" `Quick test_spec_parses;
          Alcotest.test_case "implicit vjob" `Quick test_spec_implicit_vjob;
          Alcotest.test_case "sleeping-ram" `Quick test_spec_sleeping_ram_state;
          Alcotest.test_case "programs" `Quick test_spec_programs;
          Alcotest.test_case "program of_string" `Quick test_program_of_string;
          Alcotest.test_case "quota rule" `Quick test_spec_quota_rule;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "plan roundtrip" `Quick test_spec_plan_roundtrip;
        ] );
    ]
