(* Benchmark harness: one Bechamel test per table/figure of the paper,
   plus microbenches of the constraint-solver substrate. Reported times
   are per full regeneration of the artefact's data (at reduced
   parameters — the experiment drivers in bin/ regenerate the real
   series). Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Entropy_core
module Generator = Vworkload.Generator
module Trace = Vworkload.Trace
module Nasgrid = Vworkload.Nasgrid

(* -- shared fixtures -------------------------------------------------------- *)

let instance54 =
  lazy (Generator.generate { Generator.default_spec with vm_target = 54; seed = 0 })

let instance216 =
  lazy (Generator.generate { Generator.default_spec with vm_target = 216; seed = 0 })

let rjsp_of instance =
  let { Generator.config; demand; vjobs } = instance in
  (config, demand, vjobs, Rjsp.solve ~config ~demand ~queue:vjobs ())

let small_traces =
  lazy (List.init 2 (fun i -> Trace.make ~seed:i ~vm_count:4 Nasgrid.Ed Nasgrid.W))

let section52_traces =
  lazy
    (List.init 8 (fun i ->
         let family = List.nth Nasgrid.families (i mod 4) in
         Trace.make ~seed:i ~vm_count:9 family Nasgrid.W))

(* -- per-figure benches ------------------------------------------------------ *)

let bench_fig3 =
  Test.make ~name:"fig3/duration_model"
    (Staged.stage (fun () -> ignore (Vsim.Perf_model.figure3_rows ())))

let bench_table1 =
  let config, demand, vjobs, outcome = rjsp_of (Lazy.force instance54) in
  let target = Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config in
  let plan = Planner.build_plan ~vjobs ~current:config ~target ~demand () in
  Test.make ~name:"table1/plan_cost"
    (Staged.stage (fun () -> ignore (Plan.cost config plan)))

let bench_fig10_generate =
  Test.make ~name:"fig10/generate_216vm"
    (Staged.stage (fun () ->
         ignore
           (Generator.generate
              { Generator.default_spec with vm_target = 216; seed = 1 })))

let bench_fig10_rjsp =
  let { Generator.config; demand; vjobs } = Lazy.force instance216 in
  Test.make ~name:"fig10/rjsp_ffd_216vm"
    (Staged.stage (fun () ->
         ignore (Rjsp.solve ~config ~demand ~queue:vjobs ())))

let bench_fig10_plan =
  let config, demand, vjobs, outcome = rjsp_of (Lazy.force instance216) in
  let target = Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config in
  Test.make ~name:"fig10/plan_build_216vm"
    (Staged.stage (fun () ->
         ignore (Planner.build_plan ~vjobs ~current:config ~target ~demand ())))

let bench_fig10_optimize =
  let config, demand, vjobs, outcome = rjsp_of (Lazy.force instance54) in
  Test.make ~name:"fig10/cp_optimize_54vm"
    (Staged.stage (fun () ->
         ignore
           (Optimizer.optimize ~timeout:10. ~node_limit:300 ~vjobs
              ~current:config ~demand
              ~placed:(List.concat_map Vjob.vms outcome.Rjsp.running)
              ~target_base:outcome.Rjsp.ffd_config
              ~fallback:outcome.Rjsp.ffd_config ())))

let bench_fig11_sim =
  let traces = Lazy.force small_traces in
  let nodes =
    Array.init 3 (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))
  in
  Test.make ~name:"fig11/entropy_sim_2vjobs"
    (Staged.stage (fun () ->
         ignore (Vsim.Runner.run_entropy ~cp_timeout:0.05 ~nodes ~traces ())))

let bench_fig12_static =
  let traces = Lazy.force section52_traces in
  Test.make ~name:"fig12/static_fcfs_8vjobs"
    (Staged.stage (fun () ->
         ignore
           (Batch.Static_alloc.run ~capacity:11 ~node_cpu:200 ~node_mem:3584
              traces)))

let bench_fig13_series =
  let traces = Lazy.force section52_traces in
  let run =
    Batch.Static_alloc.run ~capacity:11 ~node_cpu:200 ~node_mem:3584 traces
  in
  Test.make ~name:"fig13/utilization_series"
    (Staged.stage (fun () -> ignore (Batch.Static_alloc.series ~period:30. run)))

(* -- ablations ---------------------------------------------------------------- *)

let bench_ablation_heuristics =
  let { Generator.config; demand; vjobs } = Lazy.force instance216 in
  let mk name heuristic =
    Test.make ~name:(Printf.sprintf "ablation/rjsp_%s" name)
      (Staged.stage (fun () ->
           ignore (Rjsp.solve ~heuristic ~config ~demand ~queue:vjobs ())))
  in
  [ mk "first_fit" Ffd.First_fit; mk "best_fit" Ffd.Best_fit;
    mk "worst_fit" Ffd.Worst_fit ]

let bench_ablation_schedule =
  let config, demand, vjobs, outcome = rjsp_of (Lazy.force instance216) in
  let target = Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config in
  let plan = Planner.build_plan ~vjobs ~current:config ~target ~demand () in
  Test.make ~name:"ablation/timed_schedule_216vm"
    (Staged.stage (fun () -> ignore (Schedule.of_plan config plan)))

let bench_ablation_continuous =
  let config, demand, vjobs, outcome = rjsp_of (Lazy.force instance216) in
  let target = Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config in
  let plan = Planner.build_plan ~vjobs ~current:config ~target ~demand () in
  Test.make ~name:"ablation/continuous_schedule_216vm"
    (Staged.stage (fun () ->
         ignore (Continuous.schedule ~vjobs ~current:config ~demand ~plan ())))

let bench_ablation_online_rms =
  let traces = Lazy.force section52_traces in
  let jobs =
    List.mapi
      (fun i t ->
        Batch.Static_alloc.job_of_trace ~node_cpu:200 ~node_mem:3584 ~id:i t)
      traces
  in
  Test.make ~name:"ablation/online_rms_8jobs"
    (Staged.stage (fun () -> ignore (Batch.Rms.simulate ~capacity:11 jobs)))

(* -- solver microbenches -------------------------------------------------------- *)

let bench_solver_domains =
  Test.make ~name:"solver/domain_ops"
    (Staged.stage (fun () ->
         let d = ref (Fdcp.Dom.interval 0 199) in
         for v = 0 to 198 do
           d := Fdcp.Dom.remove v !d
         done;
         ignore (Fdcp.Dom.value_exn !d)))

let bench_solver_pack =
  Test.make ~name:"solver/pack_propagation"
    (Staged.stage (fun () ->
         let open Fdcp in
         let s = Store.create () in
         let vars = Array.init 40 (fun _ -> Store.new_var s ~lo:0 ~hi:19) in
         let items = Array.map (fun v -> Pack.item v 3) vars in
         Pack.post s ~items ~capacities:(Array.make 20 6) ();
         Store.propagate s;
         Array.iteri
           (fun i v -> if i < 20 then Store.instantiate s v (i mod 20))
           vars;
         Store.propagate s))

let bench_solver_search =
  Test.make ~name:"solver/search_packing"
    (Staged.stage (fun () ->
         let open Fdcp in
         let s = Store.create () in
         let vars = Array.init 16 (fun _ -> Store.new_var s ~lo:0 ~hi:7) in
         let items = Array.mapi (fun i v -> Pack.item v (1 + (i mod 3))) vars in
         Pack.post s ~items ~capacities:(Array.make 8 4) ();
         ignore (Search.find_first s ~vars ())))

let bench_solver_knapsack =
  Test.make ~name:"solver/knapsack_dp"
    (Staged.stage (fun () ->
         let open Fdcp in
         let s = Store.create () in
         let sel = Array.init 12 (fun _ -> Store.new_var s ~lo:0 ~hi:1) in
         let sizes = Array.init 12 (fun i -> 3 + (i mod 5)) in
         let load = Store.new_var s ~lo:20 ~hi:30 in
         ignore (Knapsack.post s ~sizes ~selectors:sel ~load);
         Store.propagate s))

(* -- driver ---------------------------------------------------------------------- *)

let all_tests =
  [
    bench_fig3;
    bench_table1;
    bench_fig10_generate;
    bench_fig10_rjsp;
    bench_fig10_plan;
    bench_fig10_optimize;
    bench_fig11_sim;
    bench_fig12_static;
    bench_fig13_series;
  ]
  @ bench_ablation_heuristics
  @ [
      bench_ablation_schedule;
      bench_ablation_continuous;
      bench_ablation_online_rms;
      bench_solver_domains;
      bench_solver_pack;
      bench_solver_search;
      bench_solver_knapsack;
    ]

let () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:None () in
  Printf.printf "%-32s%16s%10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> r
            | None -> nan
          in
          let pretty t =
            if t > 1e9 then Printf.sprintf "%8.2f s " (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%8.2f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%8.2f us" (t /. 1e3)
            else Printf.sprintf "%8.0f ns" t
          in
          Printf.printf "%-32s%16s%10.3f\n%!" name (pretty time_ns) r2)
        analysis)
    all_tests
