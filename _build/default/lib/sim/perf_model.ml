(* Duration model of the VM context-switch operations, calibrated to the
   measurements of section 2.3 / Figure 3 of the paper:

   - booting a VM takes ~6 s and a clean shutdown ~25 s, independent of
     the memory size (a hard shutdown is much faster);
   - migration, suspend and resume durations grow linearly with the
     memory allocated to the VM;
   - performing the suspend or resume remotely (image pushed with
     scp/rsync) roughly doubles the duration;
   - while an operation manipulates a VM on a node hosting busy VMs,
     both the operation and the busy VMs slow down: deceleration ~1.3
     for local operations, ~1.5 for remote ones (up to 50% loss).

   Default rates reproduce the figure's end points:
     migrate(2048 MB)        ~ 26 s
     suspend local(2048)     ~ 100 s   suspend+scp(2048) ~ 195 s
     resume local(2048)      ~ 80 s    resume remote     ~ 160 s *)

open Entropy_core

type transfer = Local | Scp | Rsync

let transfer_to_string = function
  | Local -> "local"
  | Scp -> "scp"
  | Rsync -> "rsync"

type params = {
  boot_s : float;
  clean_shutdown_s : float;
  hard_stop_s : float;
  migration_rate_mb_s : float;   (* live-migration page transfer rate *)
  migration_latency_s : float;   (* setup + final stop-and-copy *)
  suspend_disk_mb_s : float;     (* memory image write rate *)
  resume_disk_mb_s : float;      (* memory image read rate *)
  scp_mb_s : float;              (* scp push rate *)
  rsync_mb_s : float;            (* rsync push rate *)
  decel_local : float;           (* deceleration with co-hosted busy VMs *)
  decel_remote : float;
  pipeline_gap_s : float;        (* delay between pipelined suspends/resumes *)
  ram_suspend_s : float;         (* pause a VM, image kept in RAM *)
  ram_resume_s : float;
}

let defaults =
  {
    boot_s = 6.;
    clean_shutdown_s = 25.;
    hard_stop_s = 1.;
    migration_rate_mb_s = 85.;
    migration_latency_s = 1.8;
    suspend_disk_mb_s = 21.;
    resume_disk_mb_s = 26.;
    scp_mb_s = 22.;
    rsync_mb_s = 24.;
    decel_local = 1.3;
    decel_remote = 1.5;
    pipeline_gap_s = 1.;
    ram_suspend_s = 1.;
    ram_resume_s = 0.5;
  }

let mb = float_of_int

(* -- raw durations (no contention) ---------------------------------------- *)

let boot p = p.boot_s
let clean_shutdown p = p.clean_shutdown_s
let hard_stop p = p.hard_stop_s

let migrate p ~memory_mb =
  p.migration_latency_s +. (mb memory_mb /. p.migration_rate_mb_s)

let suspend p ~memory_mb ~transfer =
  let write = mb memory_mb /. p.suspend_disk_mb_s in
  match transfer with
  | Local -> write
  | Scp -> write +. (mb memory_mb /. p.scp_mb_s)
  | Rsync -> write +. (mb memory_mb /. p.rsync_mb_s)

let resume p ~memory_mb ~transfer =
  let read = mb memory_mb /. p.resume_disk_mb_s in
  match transfer with
  | Local -> read
  | Scp -> read +. (mb memory_mb /. p.scp_mb_s)
  | Rsync -> read +. (mb memory_mb /. p.rsync_mb_s)

(* -- contention ------------------------------------------------------------ *)

(* Deceleration factor applied to an operation (and, symmetrically, to
   the busy VMs of the nodes it touches) while it runs. *)
let deceleration p ~local ~busy_coresident =
  if not busy_coresident then 1.
  else if local then p.decel_local
  else p.decel_remote

(* -- durations of reconfiguration actions ---------------------------------- *)

(* [busy node] tells whether the node hosts at least one busy VM other
   than the manipulated one. *)
let action_duration ?(params = defaults) ~busy action =
  let vm_memory config vm = Vm.memory_mb (Configuration.vm config vm) in
  fun config ->
    match action with
    | Action.Run _ -> boot params
    | Action.Stop _ -> clean_shutdown params
    | Action.Migrate { vm; src; dst } ->
      let raw = migrate params ~memory_mb:(vm_memory config vm) in
      raw
      *. deceleration params ~local:false
           ~busy_coresident:(busy src || busy dst)
    | Action.Suspend { vm; host } ->
      let raw =
        suspend params ~memory_mb:(vm_memory config vm) ~transfer:Local
      in
      raw *. deceleration params ~local:true ~busy_coresident:(busy host)
    | Action.Resume { vm; src; dst } ->
      let transfer = if src = dst then Local else Scp in
      let raw = resume params ~memory_mb:(vm_memory config vm) ~transfer in
      let local = src = dst in
      raw
      *. deceleration params ~local ~busy_coresident:(busy src || busy dst)
    (* suspend-to-RAM operations are pause/unpause: no image transfer,
       no memory-led term, negligible contention impact *)
    | Action.Suspend_ram _ -> params.ram_suspend_s
    | Action.Resume_ram _ -> params.ram_resume_s

(* Figure 3 sweep: durations for the paper's three memory sizes. *)
let figure3_memory_sizes = [ 512; 1024; 2048 ]

let figure3_rows ?(params = defaults) () =
  List.map
    (fun m ->
      ( m,
        [
          ("start/run", boot params);
          ("stop/shutdown", clean_shutdown params);
          ("migrate", migrate params ~memory_mb:m);
          ("suspend local", suspend params ~memory_mb:m ~transfer:Local);
          ("suspend local+scp", suspend params ~memory_mb:m ~transfer:Scp);
          ("suspend local+rsync", suspend params ~memory_mb:m ~transfer:Rsync);
          ("resume local", resume params ~memory_mb:m ~transfer:Local);
          ("resume local+scp", resume params ~memory_mb:m ~transfer:Scp);
          ("resume local+rsync", resume params ~memory_mb:m ~transfer:Rsync);
        ] ))
    figure3_memory_sizes
