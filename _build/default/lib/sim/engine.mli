(** Discrete-event simulation core. *)

type t

val create : unit -> t
val now : t -> float
val pending : t -> int
(** Queued events (including cancelled ones not yet drained). *)

val executed : t -> int

type handle

val schedule : t -> at:float -> (unit -> unit) -> handle
(** Raises [Invalid_argument] when [at] is in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
val cancel : handle -> unit

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain events with time [<= until]. *)
