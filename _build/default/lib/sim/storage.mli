(** NFS storage substrate: suspend/resume image transfers share each
    server's bandwidth (the paper's testbed has three NFS servers). *)

open Entropy_core

type t

val create : ?server_count:int -> ?bandwidth_mb_s:float -> unit -> t
val server_of_vm : t -> Vm.id -> int
val active_on : t -> int -> int
val begin_transfer : t -> Vm.id -> unit
val end_transfer : t -> Vm.id -> unit

val slowdown : t -> Vm.id -> float
(** Duration multiplier for a transfer starting now (>= 1; equals the
    number of transfers that will share the server, itself included). *)

val total_transfers : t -> int
val uses_storage : Action.t -> bool
