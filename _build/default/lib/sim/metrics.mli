(** Resource-utilization time series (Figure 13 data). *)

type point = {
  time : float;
  mem_used_mb : int;
  cpu_demand_pct : float;  (** may exceed 100 under overload *)
  cpu_used_pct : float;
  running_vms : int;
  active_nodes : int;  (** nodes hosting at least one running VM *)
}

type t

val snapshot : Cluster.t -> point

val start : ?period:float -> Cluster.t -> t
(** Begin periodic sampling on the cluster's engine (default 30 s). *)

val stop : t -> unit
val points : t -> point list
(** In chronological order. *)

val peak_cpu_demand : t -> float
val mean_cpu_used : t -> float
val mean_mem_used : t -> float

val node_seconds : t -> float
(** Integral of active nodes over time — the energy proxy power-aware
    placement minimises. *)
