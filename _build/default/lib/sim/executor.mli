(** Plan execution on the simulated cluster, with parallel pools,
    pipelined suspends/resumes and contention effects. *)

open Entropy_core

type record = {
  started_at : float;
  finished_at : float;
  cost : int;
  migrations : int;
  suspends : int;
  resumes : int;
  local_resumes : int;
  runs : int;
  stops : int;
  pools : int;
  failed : int;  (** injected action failures (VM state unchanged) *)
}

val duration : record -> float
val pp_record : Format.formatter -> record -> unit

val touched_nodes : Action.t -> Node.id list
val is_pipelined : Action.t -> bool

val execute :
  ?should_fail:(Action.t -> bool) -> Cluster.t -> Plan.t ->
  on_done:(record -> unit) -> unit
(** Pool-based execution (the paper's model): schedules the whole switch
    on the cluster's engine and calls [on_done] when the last pool
    completes. [should_fail] injects hypervisor failures: the action
    takes its normal time, then leaves the VM in its previous state (the
    loop replans at its next iteration). *)

val execute_continuous :
  ?should_fail:(Action.t -> bool) -> ?vjobs:Vjob.t list -> Cluster.t ->
  Plan.t -> on_done:(record -> unit) -> unit
(** Event-driven execution (Entropy 2 / BtrPlace model): each action —
    or vjob suspend/resume group when [vjobs] is given — starts as soon
    as its claim fits the live free resources, honouring per-VM action
    precedence. Typically shortens the switch vs {!execute}; the
    record's [pools] field is 1. *)
