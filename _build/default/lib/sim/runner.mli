(** End-to-end simulated Entropy runs (the section 5.2 experiment). *)

open Entropy_core

type result = {
  makespan : float;  (** completion time of the last vjob *)
  completions : (Vjob.t * float) list;
  switches : Executor.record list;
  series : Metrics.point list;
  iterations : int;  (** control-loop iterations executed *)
}

val setup :
  ?arrival_spacing:float -> nodes:Node.t array ->
  traces:Vworkload.Trace.t list -> unit ->
  Configuration.t * Vjob.t list * (Vm.id -> Vworkload.Program.t)
(** Flatten traces into an all-waiting configuration, vjobs and per-VM
    programs. [arrival_spacing] staggers submissions (vjob j arrives at
    j * spacing; default: all at t=0 as in the paper). *)

val run_custom :
  ?params:Perf_model.params -> ?period:float -> ?sample_period:float ->
  ?poll_period:float -> ?cp_timeout:float -> ?max_time:float ->
  ?decision:Decision.t -> ?should_fail:(Action.t -> bool) ->
  ?storage:Storage.t -> ?execution:[ `Pools | `Continuous ] ->
  config:Configuration.t -> vjobs:Vjob.t list ->
  programs:(Vm.id -> Vworkload.Program.t) -> unit -> result
(** Run the control loop over an arbitrary initial configuration (VMs
    may already be running or sleeping). [execution] selects pool-based
    (default, the paper's model) or continuous switch execution. *)

val run_entropy :
  ?params:Perf_model.params -> ?period:float -> ?sample_period:float ->
  ?poll_period:float -> ?cp_timeout:float -> ?max_time:float ->
  ?decision:Decision.t -> ?should_fail:(Action.t -> bool) ->
  ?arrival_spacing:float -> ?storage:Storage.t ->
  ?execution:[ `Pools | `Continuous ] -> nodes:Node.t array ->
  traces:Vworkload.Trace.t list -> unit -> result
(** Run the control loop until every vjob has completed and been
    stopped. The loop only sees the vjobs already submitted at each
    iteration. [should_fail] injects hypervisor action failures (see
    {!Executor.execute}). *)

val mean_switch_duration : result -> float
