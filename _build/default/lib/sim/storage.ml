(* The storage substrate: the paper's testbed serves every VM's virtual
   disk — and the suspend images — from three NFS servers. Concurrent
   image transfers to the same server share its bandwidth, which
   stretches suspend/resume durations during large cluster-wide context
   switches (the pipelining of section 4.1 exists precisely to overlap
   those writes).

   Approximation: an operation's bandwidth share is decided when it
   starts (the factor equals the number of transfers active on its
   server at start time, including itself) and keeps that duration. This
   avoids re-timing in-flight events while preserving the macroscopic
   effect — bursts of suspends/resumes slow each other down. *)

open Entropy_core

type t = {
  server_count : int;
  bandwidth_mb_s : float;  (* informative; per-server nominal rate *)
  active : int array;      (* in-flight transfers per server *)
  mutable total_transfers : int;
}

let create ?(server_count = 3) ?(bandwidth_mb_s = 80.) () =
  if server_count <= 0 then invalid_arg "Storage.create: server_count <= 0";
  {
    server_count;
    bandwidth_mb_s;
    active = Array.make server_count 0;
    total_transfers = 0;
  }

(* Static assignment of VM images to servers, as an NFS deployment
   would shard them. *)
let server_of_vm t vm = vm mod t.server_count

let active_on t server = t.active.(server)

let begin_transfer t vm =
  let s = server_of_vm t vm in
  t.active.(s) <- t.active.(s) + 1;
  t.total_transfers <- t.total_transfers + 1

let end_transfer t vm =
  let s = server_of_vm t vm in
  if t.active.(s) <= 0 then invalid_arg "Storage.end_transfer: not active";
  t.active.(s) <- t.active.(s) - 1

(* Duration multiplier for a transfer starting now (itself included). *)
let slowdown t vm =
  float_of_int (max 1 (active_on t (server_of_vm t vm) + 1))

let total_transfers t = t.total_transfers

(* Whether an action moves a VM image through the storage servers. Live
   migration streams RAM between hypervisors directly; RAM suspends
   never leave the host. *)
let uses_storage = function
  | Action.Suspend _ | Action.Resume _ -> true
  | Action.Run _ | Action.Stop _ | Action.Migrate _ | Action.Suspend_ram _
  | Action.Resume_ram _ -> false
