(** Durations of VM context-switch operations, calibrated to the
    measurements of the paper's section 2.3 (Figure 3). *)

open Entropy_core

type transfer = Local | Scp | Rsync

val transfer_to_string : transfer -> string

type params = {
  boot_s : float;
  clean_shutdown_s : float;
  hard_stop_s : float;
  migration_rate_mb_s : float;
  migration_latency_s : float;
  suspend_disk_mb_s : float;
  resume_disk_mb_s : float;
  scp_mb_s : float;
  rsync_mb_s : float;
  decel_local : float;
  decel_remote : float;
  pipeline_gap_s : float;
  ram_suspend_s : float;
  ram_resume_s : float;
}

val defaults : params

val boot : params -> float
val clean_shutdown : params -> float
val hard_stop : params -> float
val migrate : params -> memory_mb:int -> float
val suspend : params -> memory_mb:int -> transfer:transfer -> float
val resume : params -> memory_mb:int -> transfer:transfer -> float

val deceleration : params -> local:bool -> busy_coresident:bool -> float
(** 1.0 without co-resident busy VMs, else 1.3 (local) / 1.5 (remote). *)

val action_duration :
  ?params:params -> busy:(Node.id -> bool) -> Action.t ->
  Configuration.t -> float
(** Wall-clock duration of a reconfiguration action, contention
    included. [busy n] tells whether node [n] hosts busy VMs other than
    the manipulated one. *)

val figure3_memory_sizes : int list

val figure3_rows :
  ?params:params -> unit -> (int * (string * float) list) list
(** The Figure 3 table: durations of every operation for 512/1024/2048
    MB VMs. *)
