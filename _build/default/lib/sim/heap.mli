(** Binary min-heap with FIFO tie-breaking on equal priorities. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Smallest priority (earliest inserted among ties). *)

type 'a entry = { prio : float; seq : int; value : 'a }

val peek : 'a t -> 'a entry option
