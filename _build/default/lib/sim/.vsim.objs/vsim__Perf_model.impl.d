lib/sim/perf_model.ml: Action Configuration Entropy_core List Vm
