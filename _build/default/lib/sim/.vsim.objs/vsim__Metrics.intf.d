lib/sim/metrics.mli: Cluster
