lib/sim/engine.mli:
