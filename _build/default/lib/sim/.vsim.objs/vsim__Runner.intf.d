lib/sim/runner.mli: Action Configuration Decision Entropy_core Executor Metrics Node Perf_model Storage Vjob Vm Vworkload
