lib/sim/storage.mli: Action Entropy_core Vm
