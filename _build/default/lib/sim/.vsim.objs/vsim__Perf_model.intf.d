lib/sim/perf_model.mli: Action Configuration Entropy_core Node
