lib/sim/cluster.mli: Configuration Demand Engine Entropy_core Node Perf_model Storage Vjob Vm Vworkload
