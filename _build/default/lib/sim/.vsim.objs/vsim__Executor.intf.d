lib/sim/executor.mli: Action Cluster Entropy_core Format Node Plan Vjob
