lib/sim/heap.mli:
