lib/sim/runner.ml: Array Cluster Configuration Decision Engine Entropy_core Executor Float List Metrics Optimizer Option Perf_model Plan Printf Vjob Vm Vmonitor Vworkload
