lib/sim/executor.ml: Action Array Cluster Configuration Continuous Engine Entropy_core Fmt List Perf_model Plan Storage
