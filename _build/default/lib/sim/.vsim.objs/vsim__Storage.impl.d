lib/sim/storage.ml: Action Array Entropy_core
