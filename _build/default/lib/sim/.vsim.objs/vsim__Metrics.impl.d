lib/sim/metrics.ml: Array Cluster Configuration Engine Entropy_core Float List Node
