lib/sim/cluster.ml: Array Configuration Demand Engine Entropy_core Float Hashtbl List Node Perf_model Storage Vjob Vm Vworkload
