(** Bounded sample history. *)

open Entropy_core

type t

val create : ?capacity:int -> unit -> t
val add : t -> Sample.t -> unit
val latest : t -> Sample.t option
val length : t -> int
val newest_first : t -> Sample.t list
val window : t -> now:float -> span:float -> Sample.t list
val average_cpu : t -> now:float -> span:float -> Vm.id -> int option
(** Mean CPU of a VM over the window; latest sample when empty. *)
