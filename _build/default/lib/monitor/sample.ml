(* One monitoring sample: the CPU consumption of every VM at an instant,
   as a Ganglia-like daemon would report it. *)

open Entropy_core

type t = {
  time : float;
  cpu : int array; (* per-VM CPU consumption, hundredths of a core *)
}

let make ~time ~cpu = { time; cpu = Array.copy cpu }

let time t = t.time

let cpu t vm_id =
  if vm_id < 0 || vm_id >= Array.length t.cpu then
    invalid_arg "Sample.cpu: unknown VM"
  else t.cpu.(vm_id)

let vm_count t = Array.length t.cpu

let to_demand t = Demand.of_fn ~vm_count:(Array.length t.cpu) (cpu t)

let pp ppf t =
  Fmt.pf ppf "t=%.1f [%a]" t.time Fmt.(array ~sep:sp int) t.cpu
