(* The monitoring service head (Ganglia stand-in). A collector polls a
   source of raw per-VM CPU readings, keeps a bounded history, and
   answers the control loop's observation requests with a smoothed
   demand vector.

   The paper reports that Entropy accumulates fresh monitoring data for
   about 10 seconds before each iteration; [smoothing_span] models that
   accumulation window. *)

open Entropy_core

type source = unit -> float * int array
(* current time, per-VM CPU consumption *)

type t = {
  source : source;
  history : History.t;
  smoothing_span : float;
  mutable polls : int;
}

let create ?(capacity = 128) ?(smoothing_span = 10.) source =
  { source; history = History.create ~capacity (); smoothing_span; polls = 0 }

let poll t =
  let time, cpu = t.source () in
  t.polls <- t.polls + 1;
  History.add t.history (Sample.make ~time ~cpu)

let polls t = t.polls
let history t = t.history

(* Smoothed demand: per-VM average over the accumulation window. An
   empty history triggers an immediate poll. *)
let demand t =
  if History.latest t.history = None then poll t;
  match History.latest t.history with
  | None -> Demand.make ~vm_count:0 ~default:0
  | Some latest ->
    let now = Sample.time latest in
    let vm_count = Sample.vm_count latest in
    Demand.of_fn ~vm_count (fun vm_id ->
        match
          History.average_cpu t.history ~now ~span:t.smoothing_span vm_id
        with
        | Some v -> v
        | None -> 0)
