(* Bounded history of monitoring samples, oldest evicted first. *)

type t = {
  capacity : int;
  mutable samples : Sample.t list; (* newest first *)
  mutable length : int;
}

let create ?(capacity = 128) () =
  if capacity <= 0 then invalid_arg "History.create: capacity <= 0";
  { capacity; samples = []; length = 0 }

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let add t sample =
  t.samples <- sample :: t.samples;
  t.length <- t.length + 1;
  if t.length > t.capacity then begin
    t.samples <- take t.capacity t.samples;
    t.length <- t.capacity
  end

let latest t = match t.samples with [] -> None | s :: _ -> Some s

let length t = t.length

let newest_first t = t.samples

(* Samples within the time window [now - span, now]. *)
let window t ~now ~span =
  List.filter (fun s -> Sample.time s >= now -. span) t.samples

(* Per-VM average CPU over a window; falls back to the latest sample
   when the window is empty. *)
let average_cpu t ~now ~span vm_id =
  match window t ~now ~span with
  | [] -> Option.map (fun s -> Sample.cpu s vm_id) (latest t)
  | samples ->
    let sum = List.fold_left (fun acc s -> acc + Sample.cpu s vm_id) 0 samples in
    Some (sum / List.length samples)
