lib/monitor/sample.mli: Demand Entropy_core Format Vm
