lib/monitor/sample.ml: Array Demand Entropy_core Fmt
