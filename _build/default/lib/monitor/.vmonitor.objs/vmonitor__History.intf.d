lib/monitor/history.mli: Entropy_core Sample Vm
