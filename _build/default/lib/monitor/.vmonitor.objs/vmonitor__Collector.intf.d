lib/monitor/collector.mli: Demand Entropy_core History
