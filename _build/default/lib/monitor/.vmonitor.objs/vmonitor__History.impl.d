lib/monitor/history.ml: List Option Sample
