lib/monitor/collector.ml: Demand Entropy_core History Sample
