(** A monitoring sample: per-VM CPU consumption at an instant. *)

open Entropy_core

type t

val make : time:float -> cpu:int array -> t
val time : t -> float
val cpu : t -> Vm.id -> int
val vm_count : t -> int
val to_demand : t -> Demand.t
val pp : Format.formatter -> t -> unit
