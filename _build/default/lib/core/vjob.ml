(* Virtualized jobs: a job encapsulated into one or several VMs
   (section 2.2). The scheduler manipulates vjobs; the reconfiguration
   engine manipulates their VMs. *)

type id = int

type t = {
  id : id;
  name : string;
  vms : Vm.id list;
  priority : int;      (* queue rank; smaller = served first (FCFS) *)
  submit_time : float; (* seconds *)
}

let make ~id ~name ~vms ?(priority = 0) ?(submit_time = 0.) () =
  if vms = [] then invalid_arg "Vjob.make: a vjob needs at least one VM";
  let sorted = List.sort_uniq Int.compare vms in
  if List.length sorted <> List.length vms then
    invalid_arg "Vjob.make: duplicate VM in vjob";
  { id; name; vms; priority; submit_time }

let id t = t.id
let name t = t.name
let vms t = t.vms
let priority t = t.priority
let submit_time t = t.submit_time
let size t = List.length t.vms

let compare_fcfs a b =
  (* FCFS ordering: priority rank first, then submission time, then id *)
  match Int.compare a.priority b.priority with
  | 0 -> (
    match Float.compare a.submit_time b.submit_time with
    | 0 -> Int.compare a.id b.id
    | c -> c)
  | c -> c

let pp ppf t = Fmt.pf ppf "%s[%d vms]" t.name (size t)
