(** The Entropy control loop (paper, Figure 4):
    observe -> decide -> plan -> execute, every [period] seconds. *)

type driver = {
  observe : unit -> Decision.observation;
  execute : Plan.t -> unit;  (** blocks until the switch completes *)
  wait : float -> unit;
  finished : unit -> bool;
}

type iteration = {
  index : int;
  observation : Decision.observation;
  result : Optimizer.result;
  executed : bool;  (** false when the plan was empty *)
}

val default_period : float
(** 30 s, as in the paper's sample policy. *)

val step : Decision.t -> driver -> int -> iteration

val run :
  ?period:float -> ?max_iterations:int -> Decision.t -> driver ->
  iteration list
