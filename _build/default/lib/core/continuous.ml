(* Continuous (event-driven) scheduling of a reconfiguration plan.

   The pool-based plan of section 4.1 is conservative: an action of pool
   k+1 waits for *every* action of pool k, even when it only needs the
   resources one of them frees. This module relaxes the barriers: each
   action starts the moment its destination can accommodate its claim —
   the approach the authors later adopted in Entropy 2/BtrPlace to
   shorten the cluster-wide context switch.

   Semantics (matching the executor's):
   - an action's claim (see {!Action.claim}) is reserved when it starts;
   - the resources it frees become available when it completes
     (migrate/suspend/stop free their source, a RAM suspend frees CPU);
   - vjob consistency is preserved: the suspends (resp. resumes) of a
     vjob start together, pipelined one second apart (section 4.1).

   Starting from a feasible plan (the planner already inserted any
   bypass or disk-break actions), the greedy earliest-start rule cannot
   deadlock: the final configuration is viable, so all pending claims on
   a node fit together — a started action never consumes capacity a
   pending claim will still need, and every wait is for a freeing action
   that only depends on *its own* destination. *)

type entry = { action : Action.t; start : float; finish : float }

type t = { entries : entry list; makespan : float }

let entries t = t.entries
let makespan t = t.makespan

exception Stuck of string

(* Resources an action releases when it completes: (node, cpu, mem). *)
let frees config demand action =
  let vm = Action.vm action in
  let cpu = Demand.cpu demand vm in
  let mem = Vm.memory_mb (Configuration.vm config vm) in
  match action with
  | Action.Migrate { src; dst; _ } ->
    if src = dst then [] else [ (src, cpu, mem) ]
  | Action.Suspend { host; _ } | Action.Stop { host; _ } ->
    [ (host, cpu, mem) ]
  | Action.Suspend_ram { host; _ } -> [ (host, cpu, 0) ]
  | Action.Run _ | Action.Resume _ | Action.Resume_ram _ -> []

(* Group the plan's actions so that a vjob's suspends (resp. resumes)
   start together. Each action carries its index in the plan's pool
   order: two actions on the same VM (a bypass migration and its second
   leg, a disk-break suspend and its resume) must execute in that
   order, which the resource ledger alone cannot see. *)
type group = { actions : (int * Action.t) list }

let group_actions_internal ?(vjobs = []) plan =
  let all = List.mapi (fun i a -> (i, a)) (Plan.actions plan) in
  let vjob_of vm =
    List.find_opt (fun vj -> List.mem vm (Vjob.vms vj)) vjobs
  in
  let keyed =
    List.map
      (fun (i, a) ->
        let key =
          match a with
          | Action.Suspend _ | Action.Suspend_ram _ -> (
            match vjob_of (Action.vm a) with
            | Some vj -> `Suspends (Vjob.id vj)
            | None -> `Alone i)
          | Action.Resume _ | Action.Resume_ram _ -> (
            match vjob_of (Action.vm a) with
            | Some vj -> `Resumes (Vjob.id vj)
            | None -> `Alone i)
          | Action.Run _ | Action.Stop _ | Action.Migrate _ -> `Alone i
        in
        (key, (i, a)))
      all
  in
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (key, ia) ->
      match Hashtbl.find_opt table key with
      | Some acc -> acc := ia :: !acc
      | None ->
        let acc = ref [ ia ] in
        Hashtbl.replace table key acc;
        order := key :: !order)
    keyed;
  List.rev_map
    (fun key -> { actions = List.rev !(Hashtbl.find table key) })
    !order

let group_actions ?vjobs plan =
  List.map (fun g -> g.actions) (group_actions_internal ?vjobs plan)

(* prereq.(i) = index of the previous plan action on the same VM. *)
let vm_prerequisites plan =
  let all = Plan.actions plan in
  let n = List.length all in
  let prereq = Array.make n None in
  let last = Hashtbl.create 16 in
  List.iteri
    (fun i a ->
      let vm = Action.vm a in
      (match Hashtbl.find_opt last vm with
      | Some j -> prereq.(i) <- Some j
      | None -> ());
      Hashtbl.replace last vm i)
    all;
  prereq

let schedule ?durations ?vjobs ~current ~demand ~plan () =
  let n = Configuration.node_count current in
  let cpu_load, mem_load = Configuration.loads current demand in
  let free_cpu =
    Array.init n (fun i ->
        Node.cpu_capacity (Configuration.node current i) - cpu_load.(i))
  in
  let free_mem =
    Array.init n (fun i ->
        Node.memory_mb (Configuration.node current i) - mem_load.(i))
  in
  let gap =
    (Option.value ~default:Schedule.default_durations durations)
      .Schedule.pipeline_gap_s
  in
  let pending = ref (group_actions_internal ?vjobs plan) in
  let prereq = vm_prerequisites plan in
  let completed = Array.make (Array.length prereq) false in
  (* completion events: (time, index, frees) *)
  let events = ref [] in
  let entries = ref [] in
  let now = ref 0. in
  let makespan = ref 0. in
  let group_feasible g =
    List.for_all
      (fun (i, _) ->
        match prereq.(i) with None -> true | Some j -> completed.(j))
      g.actions
    &&
    let need_cpu = Array.make n 0 and need_mem = Array.make n 0 in
    List.iter
      (fun (_, a) ->
        match Action.claim current demand a with
        | Some (node, cpu, mem) ->
          need_cpu.(node) <- need_cpu.(node) + cpu;
          need_mem.(node) <- need_mem.(node) + mem
        | None -> ())
      g.actions;
    let ok = ref true in
    for i = 0 to n - 1 do
      (* only nodes the group claims on matter: an unrelated node may
         legitimately be overloaded (negative free) in the current
         configuration — that is what the switch is fixing *)
      if
        (need_cpu.(i) > 0 || need_mem.(i) > 0)
        && (need_cpu.(i) > free_cpu.(i) || need_mem.(i) > free_mem.(i))
      then ok := false
    done;
    !ok
  in
  let start_group g =
    List.iteri
      (fun k (i, a) ->
        (match Action.claim current demand a with
        | Some (node, cpu, mem) ->
          free_cpu.(node) <- free_cpu.(node) - cpu;
          free_mem.(node) <- free_mem.(node) - mem
        | None -> ());
        let offset =
          if List.length g.actions > 1 then float_of_int k *. gap else 0.
        in
        let start = !now +. offset in
        let finish = start +. Schedule.action_duration ?durations current a in
        entries := { action = a; start; finish } :: !entries;
        if finish > !makespan then makespan := finish;
        events := (finish, i, frees current demand a) :: !events)
      g.actions
  in
  let try_start () =
    let rec scan () =
      let started = ref false in
      pending :=
        List.filter
          (fun g ->
            if group_feasible g then begin
              start_group g;
              started := true;
              false
            end
            else true)
          !pending;
      if !started then scan ()
    in
    scan ()
  in
  try_start ();
  let rec loop () =
    if !pending <> [] || !events <> [] then begin
      match !events with
      | [] ->
        raise
          (Stuck
             (Printf.sprintf "%d groups can never start"
                (List.length !pending)))
      | evs ->
        let t =
          List.fold_left (fun acc (t, _, _) -> Float.min acc t) infinity evs
        in
        now := t;
        let due, later = List.partition (fun (ft, _, _) -> ft <= t) evs in
        events := later;
        List.iter
          (fun (_, i, freed) ->
            completed.(i) <- true;
            List.iter
              (fun (node, cpu, mem) ->
                free_cpu.(node) <- free_cpu.(node) + cpu;
                free_mem.(node) <- free_mem.(node) + mem)
              freed)
          due;
        try_start ();
        loop ()
    end
  in
  loop ();
  {
    entries = List.sort (fun a b -> Float.compare a.start b.start) (List.rev !entries);
    makespan = !makespan;
  }

let pp ppf t =
  List.iter
    (fun e ->
      Fmt.pf ppf "%7.1f -> %7.1f  %a@." e.start e.finish Action.pp e.action)
    t.entries;
  Fmt.pf ppf "continuous switch duration: %.1f s@." t.makespan
