(** Virtualized jobs (vjobs): jobs encapsulated into one or more VMs. *)

type id = int

type t = {
  id : id;
  name : string;
  vms : Vm.id list;
  priority : int;
  submit_time : float;
}

val make :
  id:id -> name:string -> vms:Vm.id list -> ?priority:int ->
  ?submit_time:float -> unit -> t
(** Raises [Invalid_argument] on an empty or duplicated VM list. *)

val id : t -> id
val name : t -> string
val vms : t -> Vm.id list
val priority : t -> int
val submit_time : t -> float
val size : t -> int

val compare_fcfs : t -> t -> int
(** First-Come-First-Served queue order: by priority rank, then
    submission time, then id. *)

val pp : Format.formatter -> t -> unit
