(* Virtual machine descriptions.

   Unit conventions (DESIGN.md section 4):
   - memory in MB;
   - CPU demand in hundredths of a core (a computing NAS-grid task
     demands 100, i.e. one full processing unit).

   The memory demand of a VM is its allocation and does not vary; the CPU
   demand varies over time and is carried separately (see {!Demand}). *)

type id = int

type t = {
  id : id;
  name : string;
  memory_mb : int;
}

let make ~id ~name ~memory_mb =
  if memory_mb <= 0 then invalid_arg "Vm.make: memory_mb must be positive";
  { id; name; memory_mb }

let id t = t.id
let name t = t.name
let memory_mb t = t.memory_mb

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp ppf t = Fmt.pf ppf "%s(%dMB)" t.name t.memory_mb
