(* The Running Job Selection Problem (section 3.2): select the maximum
   number of vjobs that can run simultaneously, scanning the FCFS queue
   in priority order and trial-packing each vjob with First-Fit
   Decreasing. A vjob that does not fit is left Sleeping (if it has run
   before) or Waiting; since running VMs' demands change over time, the
   whole queue — including currently sleeping vjobs — is re-evaluated at
   every iteration of the control loop. *)

type outcome = {
  running : Vjob.t list;     (* vjobs selected to run *)
  ready : Vjob.t list;       (* vjobs left sleeping or waiting *)
  ffd_config : Configuration.t;
      (* the viable configuration built by the FFD trials: the plain
         heuristic solution, also used as the optimiser's fallback *)
}

let target_of_current config vm_id =
  match Configuration.state config vm_id with
  | Configuration.Running host -> Configuration.Sleeping host
  | ( Configuration.Waiting | Configuration.Sleeping _
    | Configuration.Sleeping_ram _ | Configuration.Terminated ) as s -> s

(* Base configuration: every queued vjob pulled off the cluster (running
   -> sleeping on its host), terminated VMs terminated. The FFD trials
   then re-admit vjobs one by one. *)
let base_configuration config queue =
  List.fold_left
    (fun cfg vjob ->
      List.fold_left
        (fun cfg vm_id ->
          Configuration.set_state cfg vm_id (target_of_current cfg vm_id))
        cfg (Vjob.vms vjob))
    config queue

(* A vjob whose VMs are RAM-suspended can only resume in place: its
   images cannot move. Re-admission checks the CPU room on each image's
   host (the memory never left). *)
let resume_ram_in_place cfg demand vjob =
  let claims = Hashtbl.create 8 in
  let ok =
    List.for_all
      (fun vm_id ->
        match Configuration.state cfg vm_id with
        | Configuration.Sleeping_ram host ->
          let already =
            Option.value ~default:0 (Hashtbl.find_opt claims host)
          in
          let cpu = Demand.cpu demand vm_id in
          if Configuration.free_cpu cfg demand host - already >= cpu then begin
            Hashtbl.replace claims host (already + cpu);
            true
          end
          else false
        | Configuration.Waiting | Configuration.Running _
        | Configuration.Sleeping _ | Configuration.Terminated -> false)
      (Vjob.vms vjob)
  in
  if not ok then None
  else
    Some
      (List.fold_left
         (fun cfg vm_id ->
           match Configuration.state cfg vm_id with
           | Configuration.Sleeping_ram host ->
             Configuration.set_state cfg vm_id (Configuration.Running host)
           | _ -> cfg)
         cfg (Vjob.vms vjob))

let all_ram_suspended cfg vjob =
  List.for_all
    (fun vm_id ->
      match Configuration.state cfg vm_id with
      | Configuration.Sleeping_ram _ -> true
      | _ -> false)
    (Vjob.vms vjob)

let solve ?(heuristic = Ffd.First_fit) ?(rules = []) ~config ~demand ~queue
    () =
  let queue = List.sort Vjob.compare_fcfs queue in
  let base = base_configuration config queue in
  let running, ready, ffd_config =
    List.fold_left
      (fun (running, ready, cfg) vjob ->
        let placement =
          if all_ram_suspended cfg vjob then
            resume_ram_in_place cfg demand vjob
          else Ffd.place ~heuristic ~rules cfg demand (Vjob.vms vjob)
        in
        match placement with
        | Some cfg' -> (vjob :: running, ready, cfg')
        | None -> (running, vjob :: ready, cfg))
      ([], [], base) queue
  in
  { running = List.rev running; ready = List.rev ready; ffd_config }

let selected outcome vjob =
  List.exists (fun v -> Vjob.id v = Vjob.id vjob) outcome.running
