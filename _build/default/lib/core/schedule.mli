(** Timed view of a reconfiguration plan: estimated start/finish times
    of every action and the estimated switch duration, without running
    the simulator (contention excluded). *)

type durations = {
  boot_s : float;
  shutdown_s : float;
  migrate_mb_s : float;
  migrate_latency_s : float;
  suspend_mb_s : float;
  resume_mb_s : float;
  transfer_mb_s : float;
  pipeline_gap_s : float;
  ram_suspend_s : float;
  ram_resume_s : float;
}

val default_durations : durations

val action_duration :
  ?durations:durations -> Configuration.t -> Action.t -> float

type entry = { action : Action.t; start : float; finish : float }
type t

val of_plan : ?durations:durations -> Configuration.t -> Plan.t -> t
val entries : t -> entry list
val makespan : t -> float
(** Estimated duration of the whole cluster-wide context switch. *)

val entry_for : t -> Vm.id -> entry option
val pp : Format.formatter -> t -> unit
