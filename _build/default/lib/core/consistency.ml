(* Consistency of inter-dependent VMs (end of section 4.1).

   The decision module gives every VM of a vjob the same target state,
   but the plan manipulates VMs individually, which could suspend the
   VMs of one distributed application seconds or minutes apart and break
   it. Experiments (ref [10] of the paper) show the application survives
   when the suspends (resp. resumes) of a vjob happen in a short period,
   in a fixed order.

   This module alters a plan accordingly:
   - the suspends of a vjob all move to the earliest pool holding one of
     them (suspends are always feasible, so advancing them is safe);
   - the resumes of a vjob all move to the pool holding the *last* of
     them (delaying a resource claim keeps every intermediate pool
     feasible — resources only get freer);
   - inside a pool, actions are sorted by VM name so the executor can
     pipeline them deterministically (one start per second). *)

let pool_index_of pools pred =
  let found = ref [] in
  Array.iteri
    (fun i pool -> if List.exists pred pool then found := i :: !found)
    pools;
  !found (* descending order *)

let move_actions pools pred ~to_pool =
  let moved = ref [] in
  Array.iteri
    (fun i pool ->
      if i <> to_pool then begin
        let mine, rest = List.partition pred pool in
        moved := !moved @ mine;
        pools.(i) <- rest
      end)
    pools;
  pools.(to_pool) <- pools.(to_pool) @ !moved

let enforce ~config ~vjobs plan =
  let pools = Array.of_list (Plan.pools plan) in
  if Array.length pools = 0 then plan
  else begin
    List.iter
      (fun vjob ->
        let vms = Vjob.vms vjob in
        let is_suspend = function
          | Action.Suspend { vm; _ } | Action.Suspend_ram { vm; _ } ->
            List.mem vm vms
          | _ -> false
        in
        let is_resume = function
          | Action.Resume { vm; _ } | Action.Resume_ram { vm; _ } ->
            List.mem vm vms
          | _ -> false
        in
        (match pool_index_of pools is_suspend with
        | [] -> ()
        | indices ->
          let earliest = List.fold_left min max_int indices in
          move_actions pools is_suspend ~to_pool:earliest);
        match pool_index_of pools is_resume with
        | [] -> ()
        | indices ->
          let latest = List.fold_left max (-1) indices in
          move_actions pools is_resume ~to_pool:latest)
      vjobs;
    (* deterministic in-pool order: sort by the VM's name, then id *)
    let by_vm_name a b =
      let va = Configuration.vm config (Action.vm a) in
      let vb = Configuration.vm config (Action.vm b) in
      match String.compare (Vm.name va) (Vm.name vb) with
      | 0 -> Int.compare (Vm.id va) (Vm.id vb)
      | c -> c
    in
    Array.iteri (fun i pool -> pools.(i) <- List.sort by_vm_name pool) pools;
    Plan.make (Array.to_list pools)
  end

(* Suspends and resumes of one vjob that ended up in the same pool: used
   by tests and by the executor to know what to pipeline. *)
let grouped_in_same_pool plan vjob kind =
  let vms = Vjob.vms vjob in
  let matches = function
    | (Action.Suspend { vm; _ } | Action.Suspend_ram { vm; _ })
      when kind = `Suspend -> List.mem vm vms
    | (Action.Resume { vm; _ } | Action.Resume_ram { vm; _ })
      when kind = `Resume -> List.mem vm vms
    | _ -> false
  in
  let pools_with =
    List.filteri
      (fun _ pool -> List.exists matches pool)
      (Plan.pools plan)
  in
  List.length pools_with <= 1
