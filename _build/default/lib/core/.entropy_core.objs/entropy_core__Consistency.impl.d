lib/core/consistency.ml: Action Array Configuration Int List Plan String Vjob Vm
