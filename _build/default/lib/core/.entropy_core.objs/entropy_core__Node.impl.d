lib/core/node.ml: Fmt Int
