lib/core/configuration.ml: Array Demand Fmt Lifecycle List Node Option Vjob Vm
