lib/core/action.ml: Configuration Demand Fmt Lifecycle Node Vm
