lib/core/loop.ml: Decision List Log Optimizer Plan
