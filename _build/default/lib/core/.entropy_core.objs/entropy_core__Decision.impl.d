lib/core/decision.ml: Configuration Demand Ffd Int List Optimizer Plan Planner Printf Rjsp Vjob Vm
