lib/core/planner.mli: Action Configuration Demand Node Plan Vjob Vm
