lib/core/placement_rules.ml: Configuration Fmt Fun Int List Node Vm
