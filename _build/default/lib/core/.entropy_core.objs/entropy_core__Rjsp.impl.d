lib/core/rjsp.ml: Configuration Demand Ffd Hashtbl List Option Vjob
