lib/core/node.mli: Format
