lib/core/vjob.mli: Format Vm
