lib/core/schedule.ml: Action Configuration Fmt List Option Plan Vm
