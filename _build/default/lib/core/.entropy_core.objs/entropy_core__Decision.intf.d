lib/core/decision.mli: Configuration Demand Ffd Optimizer Placement_rules Vjob
