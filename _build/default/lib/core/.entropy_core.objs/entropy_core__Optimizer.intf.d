lib/core/optimizer.mli: Configuration Demand Fdcp Placement_rules Plan Vjob Vm
