lib/core/lifecycle.ml: Fmt Option
