lib/core/vm.mli: Format
