lib/core/demand.mli: Format Vm
