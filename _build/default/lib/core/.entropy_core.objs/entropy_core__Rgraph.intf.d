lib/core/rgraph.mli: Action Configuration Vm
