lib/core/configuration.mli: Demand Format Lifecycle Node Vjob Vm
