lib/core/optimizer.ml: Alldiff Arith Array Configuration Cost Count Demand Element Fdcp Hashtbl Int Linear List Log Node Option Pack Placement_rules Plan Planner Printf Search Store Var Vm
