lib/core/vjob.ml: Float Fmt Int List Vm
