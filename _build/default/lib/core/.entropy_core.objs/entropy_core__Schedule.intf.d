lib/core/schedule.mli: Action Configuration Format Plan Vm
