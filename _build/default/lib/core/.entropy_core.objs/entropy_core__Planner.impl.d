lib/core/planner.ml: Action Array Configuration Consistency Demand Fmt Int List Log Node Plan Rgraph Vm
