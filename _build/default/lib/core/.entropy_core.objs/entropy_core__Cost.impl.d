lib/core/cost.ml: Action Configuration List Vm
