lib/core/plan.mli: Action Configuration Demand Format Vm
