lib/core/ffd.ml: Array Configuration Demand Int List Node Option Placement_rules Vm
