lib/core/vm.ml: Fmt Int
