lib/core/loop.mli: Decision Optimizer Plan
