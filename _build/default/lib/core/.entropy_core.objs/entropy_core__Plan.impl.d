lib/core/plan.ml: Action Array Configuration Cost Fmt List Vm
