lib/core/continuous.ml: Action Array Configuration Demand Float Fmt Hashtbl List Node Option Plan Printf Schedule Vjob Vm
