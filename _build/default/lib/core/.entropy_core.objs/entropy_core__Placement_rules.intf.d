lib/core/placement_rules.mli: Configuration Format Node Vm
