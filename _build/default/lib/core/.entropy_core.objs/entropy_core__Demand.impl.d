lib/core/demand.ml: Array Fmt
