lib/core/consistency.mli: Configuration Plan Vjob
