lib/core/ffd.mli: Configuration Demand Placement_rules Vm
