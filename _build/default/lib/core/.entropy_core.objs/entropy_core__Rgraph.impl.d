lib/core/rgraph.ml: Action Configuration Fmt
