lib/core/cost.mli: Action Configuration
