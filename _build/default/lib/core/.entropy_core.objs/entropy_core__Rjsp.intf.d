lib/core/rjsp.mli: Configuration Demand Ffd Placement_rules Vjob
