lib/core/action.mli: Configuration Demand Format Lifecycle Node Vm
