lib/core/continuous.mli: Action Configuration Demand Format Plan Schedule Vjob
