(* Packing heuristics. First-Fit Decreasing is the paper's baseline
   (section 3.2): sort the VMs by decreasing memory and CPU demand and
   assign each to the first node with enough free resources. Best-fit
   and worst-fit variants are provided for ablation studies.

   Placement rules (Ban/Fence/Spread/Gather, see {!Placement_rules}) are
   honoured when provided, so that heuristic fallback configurations do
   not undo what the optimiser guarantees. *)

type heuristic = First_fit | Best_fit | Worst_fit

let heuristic_to_string = function
  | First_fit -> "first-fit"
  | Best_fit -> "best-fit"
  | Worst_fit -> "worst-fit"

(* Decreasing (memory, cpu) order. *)
let sort_decreasing config demand vm_ids =
  let key vm_id =
    (Vm.memory_mb (Configuration.vm config vm_id), Demand.cpu demand vm_id)
  in
  List.sort
    (fun a b ->
      let ma, ca = key a and mb, cb = key b in
      match Int.compare mb ma with 0 -> Int.compare cb ca | c -> c)
    vm_ids

(* Mutable free-resource view of a configuration. *)
type free = { cpu : int array; mem : int array }

let free_view config demand =
  let cpu_load, mem_load = Configuration.loads config demand in
  let n = Configuration.node_count config in
  {
    cpu =
      Array.init n (fun i ->
          Node.cpu_capacity (Configuration.node config i) - cpu_load.(i));
    mem =
      Array.init n (fun i ->
          Node.memory_mb (Configuration.node config i) - mem_load.(i));
  }

let pick_node heuristic free ~ok ~cpu ~mem =
  let n = Array.length free.cpu in
  let fits i = ok i && free.cpu.(i) >= cpu && free.mem.(i) >= mem in
  match heuristic with
  | First_fit ->
    let rec go i = if i >= n then None else if fits i then Some i else go (i + 1) in
    go 0
  | Best_fit | Worst_fit ->
    let better a b =
      (* compare residual memory after placement, then residual cpu *)
      let ra = (free.mem.(a) - mem, free.cpu.(a) - cpu) in
      let rb = (free.mem.(b) - mem, free.cpu.(b) - cpu) in
      if heuristic = Best_fit then ra < rb else ra > rb
    in
    let best = ref None in
    for i = 0 to n - 1 do
      if fits i then
        match !best with
        | Some b when not (better i b) -> ()
        | _ -> best := Some i
    done;
    !best

(* Rule bookkeeping during a placement: for every rule, the hosts its
   running VMs already occupy (a multiset for quotas, which count every
   VM hosted on their nodes). *)
type rule_state = { rule : Placement_rules.t; mutable hosts : Node.id list }

let init_rules config rules =
  List.map
    (fun rule ->
      match rule with
      | Placement_rules.Quota (nodes, _) ->
        let hosts =
          List.concat_map
            (fun node ->
              List.map (fun _ -> node) (Configuration.running_on config node))
            nodes
        in
        { rule; hosts }
      | Placement_rules.Spread _ | Placement_rules.Gather _
      | Placement_rules.Ban _ | Placement_rules.Fence _ ->
        { rule; hosts = Placement_rules.running_hosts config rule })
    rules

let count_host rs node =
  List.fold_left (fun acc h -> if h = node then acc + 1 else acc) 0 rs.hosts

let node_ok rule_states allowed vm node =
  (match allowed with None -> true | Some nodes -> List.mem node nodes)
  && List.for_all
       (fun rs ->
         match rs.rule with
         | Placement_rules.Quota (nodes, k) ->
           (not (List.mem node nodes)) || count_host rs node < k
         | Placement_rules.Spread vms ->
           (not (List.mem vm vms)) || not (List.mem node rs.hosts)
         | Placement_rules.Gather vms ->
           (not (List.mem vm vms))
           || rs.hosts = []
           || List.for_all (fun h -> h = node) rs.hosts
         | Placement_rules.Ban _ | Placement_rules.Fence _ -> true)
       rule_states

let record_placement rule_states vm node =
  List.iter
    (fun rs ->
      match rs.rule with
      | Placement_rules.Quota (nodes, _) ->
        if List.mem node nodes then rs.hosts <- node :: rs.hosts
      | Placement_rules.Spread _ | Placement_rules.Gather _
      | Placement_rules.Ban _ | Placement_rules.Fence _ ->
        if List.mem vm (Placement_rules.vms rs.rule) then
          rs.hosts <- node :: rs.hosts)
    rule_states

(* Assign [vm_ids] as Running on [config]; None when some VM cannot be
   placed. The input configuration's running VMs keep their hosts. *)
let place ?(heuristic = First_fit) ?(rules = []) config demand vm_ids =
  let free = free_view config demand in
  let n = Array.length free.cpu in
  let rule_states = init_rules config rules in
  let ordered = sort_decreasing config demand vm_ids in
  let rec go config = function
    | [] -> Some config
    | vm_id :: rest -> (
      let cpu = Demand.cpu demand vm_id in
      (* a RAM-suspended VM is pinned to the node holding its image, and
         its memory is already accounted in the free view *)
      let pinned, mem =
        match Configuration.state config vm_id with
        | Configuration.Sleeping_ram host -> (Some host, 0)
        | Configuration.Waiting | Configuration.Running _
        | Configuration.Sleeping _ | Configuration.Terminated ->
          (None, Vm.memory_mb (Configuration.vm config vm_id))
      in
      let allowed =
        Placement_rules.allowed_nodes rules ~node_count:n vm_id
      in
      let ok node =
        node_ok rule_states allowed vm_id node
        && match pinned with None -> true | Some h -> node = h
      in
      match pick_node heuristic free ~ok ~cpu ~mem with
      | None -> None
      | Some node ->
        free.cpu.(node) <- free.cpu.(node) - cpu;
        free.mem.(node) <- free.mem.(node) - mem;
        record_placement rule_states vm_id node;
        go
          (Configuration.set_state config vm_id (Configuration.Running node))
          rest)
  in
  go config ordered

(* Convenience: can the VMs fit at all (placement discarded)? *)
let fits ?heuristic ?rules config demand vm_ids =
  Option.is_some (place ?heuristic ?rules config demand vm_ids)
