(* Log source for the Entropy core. Enable with e.g.
   [Logs.set_reporter (Logs_fmt.reporter ()); Logs.Src.set_level
   Log.src (Some Logs.Debug)]. *)

let src = Logs.Src.create "entropy.core" ~doc:"Cluster-wide context switch"

include (val Logs.src_log src : Logs.LOG)
