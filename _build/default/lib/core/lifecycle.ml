(* The life cycle of a vjob (Figure 2 of the paper).

   Submitted vjobs are Waiting; the scheduler runs them (Running), may
   suspend them to disk (Sleeping) and resume them, and removes them when
   their owner declares them finished (Terminated). Ready is the
   pseudo-state combining the runnable vjobs (Waiting or Sleeping). *)

type state = Waiting | Running | Sleeping | Terminated

type transition = Run | Suspend | Resume | Stop | Migrate

let state_to_string = function
  | Waiting -> "waiting"
  | Running -> "running"
  | Sleeping -> "sleeping"
  | Terminated -> "terminated"

let pp_state ppf s = Fmt.string ppf (state_to_string s)

let transition_to_string = function
  | Run -> "run"
  | Suspend -> "suspend"
  | Resume -> "resume"
  | Stop -> "stop"
  | Migrate -> "migrate"

let pp_transition ppf t = Fmt.string ppf (transition_to_string t)

let is_ready = function
  | Waiting | Sleeping -> true
  | Running | Terminated -> false

(* Figure 2: run: Waiting -> Running; suspend: Running -> Sleeping;
   resume: Sleeping -> Running; stop: Running -> Terminated;
   migrate: Running -> Running. *)
let next state transition =
  match (state, transition) with
  | Waiting, Run -> Some Running
  | Running, Suspend -> Some Sleeping
  | Sleeping, Resume -> Some Running
  | Running, Stop -> Some Terminated
  | Running, Migrate -> Some Running
  | (Waiting | Running | Sleeping | Terminated), _ -> None

let can state transition = Option.is_some (next state transition)

(* The transition that moves [src] to [dst], when one exists. *)
let between src dst =
  match (src, dst) with
  | Waiting, Running -> Some Run
  | Running, Sleeping -> Some Suspend
  | Sleeping, Running -> Some Resume
  | Running, Terminated -> Some Stop
  | s, d when s = d -> None
  | _ -> None
