(** Packing heuristics: First-Fit Decreasing (the paper's baseline) plus
    best-fit / worst-fit variants for ablations. Placement rules are
    honoured when provided. *)

type heuristic = First_fit | Best_fit | Worst_fit

val heuristic_to_string : heuristic -> string

val sort_decreasing :
  Configuration.t -> Demand.t -> Vm.id list -> Vm.id list
(** Decreasing (memory, CPU) demand order. *)

val place :
  ?heuristic:heuristic -> ?rules:Placement_rules.t list ->
  Configuration.t -> Demand.t -> Vm.id list -> Configuration.t option
(** Assign the VMs as Running on the configuration (already-running VMs
    keep their hosts and resources); [None] when some VM does not fit
    under the capacities and rules. *)

val fits :
  ?heuristic:heuristic -> ?rules:Placement_rules.t list ->
  Configuration.t -> Demand.t -> Vm.id list -> bool
