(** Virtual machine descriptions. Memory in MB; CPU demands are dynamic
    and carried by {!Demand}. *)

type id = int

type t = { id : id; name : string; memory_mb : int }

val make : id:id -> name:string -> memory_mb:int -> t
(** Raises [Invalid_argument] when [memory_mb <= 0]. *)

val id : t -> id
val name : t -> string
val memory_mb : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
