(* Placement side-constraints — the paper's future work (section 7):
   "our approach, based on CP, provides a flexible environment for
   administrators to specify some constraints such as hosting some VMs
   on different nodes for high availability considerations [...] however
   they are not maintained during the optimization of the cluster-wide
   context switch".

   This module defines the rules and this reproduction *does* maintain
   them during the optimisation: {!Optimizer.optimize} posts them on the
   placement variables, and the rule-aware packing heuristics
   ({!Ffd.place}) honour them when building fallback configurations.

   A rule only constrains VMs while they run: a sleeping, waiting or
   terminated VM trivially satisfies every rule. *)

type t =
  | Spread of Vm.id list
      (* pairwise distinct hosts (anti-affinity / high availability) *)
  | Gather of Vm.id list
      (* same host (affinity, e.g. chatty VMs) *)
  | Ban of Vm.id list * Node.id list
      (* never on those nodes (e.g. maintenance) *)
  | Fence of Vm.id list * Node.id list
      (* only on those nodes (e.g. licensing, hardware) *)
  | Quota of Node.id list * int
      (* each listed node hosts at most k running VMs (any VM) *)

let pp_ids = Fmt.(list ~sep:(any ",") int)

let pp ppf = function
  | Spread vms -> Fmt.pf ppf "spread(%a)" pp_ids vms
  | Gather vms -> Fmt.pf ppf "gather(%a)" pp_ids vms
  | Ban (vms, nodes) -> Fmt.pf ppf "ban(%a ; %a)" pp_ids vms pp_ids nodes
  | Fence (vms, nodes) -> Fmt.pf ppf "fence(%a ; %a)" pp_ids vms pp_ids nodes
  | Quota (nodes, k) -> Fmt.pf ppf "quota(%a ; max %d)" pp_ids nodes k

let vms = function
  | Spread vms | Gather vms | Ban (vms, _) | Fence (vms, _) -> vms
  | Quota _ -> []

(* Hosts of the rule's running VMs under a configuration. *)
let running_hosts config rule =
  List.filter_map (fun vm -> Configuration.host config vm) (vms rule)

let check config rule =
  match rule with
  | Spread _ ->
    let hosts = running_hosts config rule in
    List.length (List.sort_uniq Int.compare hosts) = List.length hosts
  | Gather _ -> (
    match running_hosts config rule with
    | [] -> true
    | h :: rest -> List.for_all (fun h' -> h' = h) rest)
  | Ban (_, banned) ->
    List.for_all
      (fun h -> not (List.mem h banned))
      (running_hosts config rule)
  | Fence (_, allowed) ->
    List.for_all (fun h -> List.mem h allowed) (running_hosts config rule)
  | Quota (nodes, k) ->
    List.for_all
      (fun node -> List.length (Configuration.running_on config node) <= k)
      nodes

let check_all config rules = List.for_all (check config) rules

let violated config rules = List.filter (fun r -> not (check config r)) rules

(* Nodes a VM may use under the Ban/Fence rules (Spread and Gather are
   relational and handled separately). [None] = unrestricted. *)
let allowed_nodes rules ~node_count vm =
  let all = List.init node_count Fun.id in
  let restrict acc rule =
    match rule with
    | Ban (vms, banned) when List.mem vm vms ->
      List.filter (fun n -> not (List.mem n banned)) acc
    | Fence (vms, allowed) when List.mem vm vms ->
      List.filter (fun n -> List.mem n allowed) acc
    | Ban _ | Fence _ | Spread _ | Gather _ | Quota _ -> acc
  in
  let restricted = List.fold_left restrict all rules in
  if List.length restricted = node_count then None else Some restricted
