(** Placement side-constraints (paper, section 7 future work), enforced
    by the optimiser and the rule-aware heuristics. Rules only apply to
    running VMs. *)

type t =
  | Spread of Vm.id list
      (** pairwise distinct hosts (high availability) *)
  | Gather of Vm.id list
      (** all on the same host *)
  | Ban of Vm.id list * Node.id list
      (** never on those nodes *)
  | Fence of Vm.id list * Node.id list
      (** only on those nodes *)
  | Quota of Node.id list * int
      (** each listed node hosts at most k running VMs *)

val pp : Format.formatter -> t -> unit
val vms : t -> Vm.id list

val running_hosts : Configuration.t -> t -> Node.id list
(** Hosts currently used by the rule's running VMs. *)

val check : Configuration.t -> t -> bool
val check_all : Configuration.t -> t list -> bool
val violated : Configuration.t -> t list -> t list

val allowed_nodes : t list -> node_count:int -> Vm.id -> Node.id list option
(** Node whitelist induced by the Ban/Fence rules on a VM
    ([None] = unrestricted). *)
