(** Continuous (event-driven) scheduling of a reconfiguration plan: each
    action starts as soon as its claim fits, instead of waiting for pool
    barriers — the Entropy 2 / BtrPlace refinement of the paper's pool
    execution. vjob suspend/resume grouping is preserved. *)

type entry = { action : Action.t; start : float; finish : float }
type t

exception Stuck of string
(** Raised when the greedy earliest-start rule starves: on very tight
    clusters, an eagerly started action can occupy the pivot node a
    pending bypass migration was counting on. Rare (the plan's own pool
    order is always a valid execution); callers fall back to pool-based
    execution ({!Schedule}) when it happens. *)

val schedule :
  ?durations:Schedule.durations -> ?vjobs:Vjob.t list ->
  current:Configuration.t -> demand:Demand.t -> plan:Plan.t -> unit -> t
(** Earliest-start timing of the plan's actions under
    claim-at-start / free-at-completion semantics. *)

val entries : t -> entry list
(** In increasing start order. *)

val group_actions : ?vjobs:Vjob.t list -> Plan.t -> (int * Action.t) list list
(** The plan's actions with their pool-order index, grouped so that a
    vjob's suspends (resp. resumes) start together. Used by event-driven
    executors. *)

val vm_prerequisites : Plan.t -> int option array
(** [prereq.(i)] is the index of the previous plan action on the same VM
    (bypass legs, disk-break suspend/resume pairs), which must complete
    before action [i] starts. *)

val makespan : t -> float
(** Never exceeds the pool-based estimate ({!Schedule.makespan}) for the
    same plan and durations. *)

val pp : Format.formatter -> t -> unit
