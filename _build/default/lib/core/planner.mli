(** Reconfiguration planning (paper, section 4.1): turn the gap between
    two configurations into a sequence of pools of parallel actions,
    breaking inter-dependent migration cycles with bypass migrations. *)

exception Stuck of string
(** Raised when the planner cannot make progress — the target is not
    reachable (e.g. not viable). Migration cycles are broken with a
    bypass migration to a pivot node when one has room, and through the
    disk (suspend, then resume at the destination) otherwise. *)

val select_pool :
  Configuration.t -> Demand.t -> Action.t list ->
  Action.t list * Action.t list
(** [(selected, postponed)]: a maximal set of actions simultaneously
    feasible from the given configuration, and the rest. *)

val find_migration_cycle :
  Action.t list -> (Vm.id * Node.id * Node.id) list option
(** A cycle of inter-dependent migrations among blocked actions, as
    [(vm, src, dst)] triples, when one exists. *)

val bypass_migration :
  Configuration.t -> Demand.t -> (Vm.id * Node.id * Node.id) list ->
  Action.t option
(** The cheapest feasible migration of a cycle VM to a pivot node outside
    the cycle. *)

val build :
  current:Configuration.t -> target:Configuration.t -> demand:Demand.t ->
  unit -> Plan.t
(** Build a feasible plan from [current] to [target]. Raises {!Stuck}
    when no plan exists (see above), {!Rgraph.Unreachable} on impossible
    per-VM transitions. *)

val build_plan :
  ?vjobs:Vjob.t list -> current:Configuration.t -> target:Configuration.t ->
  demand:Demand.t -> unit -> Plan.t
(** {!build} followed by {!Consistency.enforce} when [vjobs] is given. *)
