(** The vjob life cycle (paper, Figure 2). *)

type state = Waiting | Running | Sleeping | Terminated
type transition = Run | Suspend | Resume | Stop | Migrate

val state_to_string : state -> string
val transition_to_string : transition -> string
val pp_state : Format.formatter -> state -> unit
val pp_transition : Format.formatter -> transition -> unit

val is_ready : state -> bool
(** The [Ready] pseudo-state: Waiting or Sleeping (runnable vjobs). *)

val next : state -> transition -> state option
(** Target state of a transition, [None] when the transition is illegal
    from that state. [Migrate] keeps a vjob Running. *)

val can : state -> transition -> bool

val between : state -> state -> transition option
(** The single transition from one state to another, if any. *)
