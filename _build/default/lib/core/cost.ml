(* The cost model of Table 1. Costs are expressed in MB of memory to
   manipulate — the study of section 2.3 shows migration, suspend and
   resume durations are led by the VM's memory demand, while run and stop
   durations are independent of it (modelled as the constant 0).

   A remote resume must move the image to the destination first, hence
   twice the local cost. *)

let run_cost = 0
let stop_cost = 0

let action config action =
  let mem = Vm.memory_mb (Configuration.vm config (Action.vm action)) in
  match action with
  | Action.Run _ -> run_cost
  | Action.Stop _ -> stop_cost
  | Action.Migrate _ -> mem
  | Action.Suspend _ -> mem
  | Action.Resume { src; dst; _ } -> if src = dst then mem else 2 * mem
  (* RAM suspends/resumes do not write the image anywhere: like run and
     stop, their duration is led by the software, not the memory size *)
  | Action.Suspend_ram _ | Action.Resume_ram _ -> 0

(* Cost of a pool: its most expensive action (they run in parallel). *)
let pool config actions =
  List.fold_left (fun acc a -> max acc (action config a)) 0 actions

(* Cost of a whole plan: each action pays the cost of every pool executed
   before its own, plus its local cost; the plan cost is the sum over all
   actions. Delaying an action therefore degrades the plan (section 4.2). *)
let plan config pools =
  let _, total =
    List.fold_left
      (fun (elapsed, total) pool_actions ->
        let pool_total =
          List.fold_left
            (fun acc a -> acc + elapsed + action config a)
            0 pool_actions
        in
        (elapsed + pool config pool_actions, total + pool_total))
      (0, 0) pools
  in
  total

(* Admissible lower bound on the cost of any plan reaching [target] from
   [current]: every VM pays at least its local action cost, ignoring
   sequencing penalties. Used by the optimiser's branch & bound. *)
let lower_bound ~current ~target =
  let acc = ref 0 in
  for vm_id = 0 to Configuration.vm_count current - 1 do
    let mem = Vm.memory_mb (Configuration.vm current vm_id) in
    let c =
      match (Configuration.state current vm_id, Configuration.state target vm_id)
      with
      | Configuration.Running s, Configuration.Running d ->
        if s = d then 0 else mem
      | Configuration.Sleeping s, Configuration.Running d ->
        if s = d then mem else 2 * mem
      | Configuration.Running _, Configuration.Sleeping _ -> mem
      | Configuration.Waiting, Configuration.Running _ -> run_cost
      | Configuration.Running _, Configuration.Terminated -> stop_cost
      | Configuration.Running _, Configuration.Sleeping_ram _
      | Configuration.Sleeping_ram _, Configuration.Running _ -> 0
      | _ -> 0
    in
    acc := !acc + c
  done;
  !acc
