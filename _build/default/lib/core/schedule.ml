(* Timed view of a reconfiguration plan: estimated start/finish of every
   action, for duration-aware reporting and decisions without running
   the full simulator.

   The duration model mirrors the measurements of section 2.3 (it is the
   contention-free core of the simulator's [Perf_model], duplicated here
   because the core library cannot depend on the simulator): boot and
   shutdown are flat; migrate/suspend/resume are linear in the VM's
   memory; a remote resume moves the image first.

   Sequencing follows the executor: pools run one after the other; inside
   a pool actions start together except suspends/resumes, pipelined one
   second apart. *)

type durations = {
  boot_s : float;
  shutdown_s : float;
  migrate_mb_s : float;
  migrate_latency_s : float;
  suspend_mb_s : float;
  resume_mb_s : float;
  transfer_mb_s : float;    (* remote image push/fetch *)
  pipeline_gap_s : float;
  ram_suspend_s : float;
  ram_resume_s : float;
}

let default_durations =
  {
    boot_s = 6.;
    shutdown_s = 25.;
    migrate_mb_s = 85.;
    migrate_latency_s = 1.8;
    suspend_mb_s = 21.;
    resume_mb_s = 26.;
    transfer_mb_s = 22.;
    pipeline_gap_s = 1.;
    ram_suspend_s = 1.;
    ram_resume_s = 0.5;
  }

let action_duration ?(durations = default_durations) config action =
  let mem vm = float_of_int (Vm.memory_mb (Configuration.vm config vm)) in
  match action with
  | Action.Run _ -> durations.boot_s
  | Action.Stop _ -> durations.shutdown_s
  | Action.Migrate { vm; _ } ->
    durations.migrate_latency_s +. (mem vm /. durations.migrate_mb_s)
  | Action.Suspend { vm; _ } -> mem vm /. durations.suspend_mb_s
  | Action.Resume { vm; src; dst } ->
    let read = mem vm /. durations.resume_mb_s in
    if src = dst then read else read +. (mem vm /. durations.transfer_mb_s)
  | Action.Suspend_ram _ -> durations.ram_suspend_s
  | Action.Resume_ram _ -> durations.ram_resume_s

type entry = { action : Action.t; start : float; finish : float }

type t = { entries : entry list; makespan : float }

let entries t = t.entries
let makespan t = t.makespan

let is_pipelined = function
  | Action.Suspend _ | Action.Resume _ | Action.Suspend_ram _
  | Action.Resume_ram _ -> true
  | Action.Run _ | Action.Stop _ | Action.Migrate _ -> false

let of_plan ?durations config plan =
  let entries = ref [] in
  let clock = ref 0. in
  List.iter
    (fun pool ->
      let pool_start = !clock in
      let pool_end = ref pool_start in
      let pipelined = ref 0 in
      List.iter
        (fun action ->
          let offset =
            if is_pipelined action then begin
              let o =
                float_of_int !pipelined
                *. (Option.value ~default:default_durations durations)
                     .pipeline_gap_s
              in
              incr pipelined;
              o
            end
            else 0.
          in
          let start = pool_start +. offset in
          let finish = start +. action_duration ?durations config action in
          entries := { action; start; finish } :: !entries;
          if finish > !pool_end then pool_end := finish)
        pool;
      clock := !pool_end)
    (Plan.pools plan);
  { entries = List.rev !entries; makespan = !clock }

let entry_for t vm =
  List.find_opt (fun e -> Action.vm e.action = vm) t.entries

let pp ppf t =
  List.iter
    (fun e ->
      Fmt.pf ppf "%7.1f -> %7.1f  %a@." e.start e.finish Action.pp e.action)
    t.entries;
  Fmt.pf ppf "estimated switch duration: %.1f s@." t.makespan
