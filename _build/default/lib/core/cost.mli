(** The reconfiguration cost model (paper, Table 1 and section 4.2).
    Costs are in MB of VM memory to manipulate. *)

val run_cost : int
val stop_cost : int

val action : Configuration.t -> Action.t -> int
(** Local cost: 0 for run/stop, [Dm] for migrate and suspend, [Dm] for a
    local resume and [2*Dm] for a remote one. *)

val pool : Configuration.t -> Action.t list -> int
(** Cost of a pool = cost of its most expensive action. *)

val plan : Configuration.t -> Action.t list list -> int
(** Cost of a plan = sum over actions of (cost of preceding pools + local
    cost). *)

val lower_bound : current:Configuration.t -> target:Configuration.t -> int
(** Admissible lower bound on any plan between two configurations (sum of
    unavoidable local costs); used by branch & bound. *)
