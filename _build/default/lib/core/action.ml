(* The VM context-switch actions (section 2.2), extended with the
   suspend-to-RAM pair the paper names as future work (section 7). Each
   action is an edge of the reconfiguration graph: it frees resources on
   a source node and/or claims resources on a destination node.

   Feasibility (section 4.1): suspend, suspend-to-RAM and stop always
   are; run, resume and migrate require enough free CPU and memory on
   the destination under the *current* (possibly intermediate)
   configuration; a RAM resume only claims CPU — the memory never left
   the host. *)

type t =
  | Run of { vm : Vm.id; dst : Node.id }
  | Stop of { vm : Vm.id; host : Node.id }
  | Migrate of { vm : Vm.id; src : Node.id; dst : Node.id }
  | Suspend of { vm : Vm.id; host : Node.id }
  | Resume of { vm : Vm.id; src : Node.id; dst : Node.id }
  | Suspend_ram of { vm : Vm.id; host : Node.id }
  | Resume_ram of { vm : Vm.id; host : Node.id }

let vm = function
  | Run { vm; _ }
  | Stop { vm; _ }
  | Migrate { vm; _ }
  | Suspend { vm; _ }
  | Resume { vm; _ }
  | Suspend_ram { vm; _ }
  | Resume_ram { vm; _ } -> vm

let destination = function
  | Run { dst; _ } | Migrate { dst; _ } | Resume { dst; _ } -> Some dst
  | Resume_ram { host; _ } -> Some host
  | Stop _ | Suspend _ | Suspend_ram _ -> None

let source = function
  | Migrate { src; _ } -> Some src
  | Stop { host; _ } | Suspend { host; _ } | Suspend_ram { host; _ } ->
    Some host
  | Resume { src; _ } -> Some src
  | Resume_ram { host; _ } -> Some host
  | Run _ -> None

let is_local = function
  | Resume { src; dst; _ } -> src = dst
  | Run _ | Stop _ | Suspend _ | Suspend_ram _ | Resume_ram _ -> true
  | Migrate _ -> false

let transition = function
  | Run _ -> Lifecycle.Run
  | Stop _ -> Lifecycle.Stop
  | Migrate _ -> Lifecycle.Migrate
  | Suspend _ | Suspend_ram _ -> Lifecycle.Suspend
  | Resume _ | Resume_ram _ -> Lifecycle.Resume

(* Whether the action frees resources without needing any. *)
let always_feasible = function
  | Stop _ | Suspend _ | Suspend_ram _ -> true
  | Run _ | Migrate _ | Resume _ | Resume_ram _ -> false

(* Resources the action claims on its destination: [(node, cpu, mem)].
   A RAM resume claims no memory (it never left the host); a same-node
   migration claims nothing. *)
let claim config demand action =
  let cpu_mem vm =
    ( Demand.cpu demand vm,
      Vm.memory_mb (Configuration.vm config vm) )
  in
  match action with
  | Stop _ | Suspend _ | Suspend_ram _ -> None
  | Run { vm; dst } | Resume { vm; dst; _ } ->
    let cpu, mem = cpu_mem vm in
    Some (dst, cpu, mem)
  | Migrate { vm; src; dst } ->
    if src = dst then None
    else
      let cpu, mem = cpu_mem vm in
      Some (dst, cpu, mem)
  | Resume_ram { vm; host } -> Some (host, Demand.cpu demand vm, 0)

let feasible config demand action =
  match claim config demand action with
  | None -> true
  | Some (node, cpu, mem) -> Configuration.fits config demand ~cpu ~mem node

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

(* Apply an action to a configuration, checking the source state. *)
let apply config action =
  let check vm expected =
    let got = Configuration.state config vm in
    if not (Configuration.equal_vm_state got expected) then
      invalid "action on VM %d: expected state %a, found %a" vm
        Configuration.pp_vm_state expected Configuration.pp_vm_state got
  in
  match action with
  | Run { vm; dst } ->
    check vm Configuration.Waiting;
    Configuration.set_state config vm (Configuration.Running dst)
  | Stop { vm; host } ->
    check vm (Configuration.Running host);
    Configuration.set_state config vm Configuration.Terminated
  | Migrate { vm; src; dst } ->
    check vm (Configuration.Running src);
    Configuration.set_state config vm (Configuration.Running dst)
  | Suspend { vm; host } ->
    check vm (Configuration.Running host);
    Configuration.set_state config vm (Configuration.Sleeping host)
  | Resume { vm; src; dst } ->
    check vm (Configuration.Sleeping src);
    Configuration.set_state config vm (Configuration.Running dst)
  | Suspend_ram { vm; host } ->
    check vm (Configuration.Running host);
    Configuration.set_state config vm (Configuration.Sleeping_ram host)
  | Resume_ram { vm; host } ->
    check vm (Configuration.Sleeping_ram host);
    Configuration.set_state config vm (Configuration.Running host)

let equal (a : t) b = a = b

let pp ppf = function
  | Run { vm; dst } -> Fmt.pf ppf "run(VM%d->N%d)" vm dst
  | Stop { vm; host } -> Fmt.pf ppf "stop(VM%d@@N%d)" vm host
  | Migrate { vm; src; dst } -> Fmt.pf ppf "migrate(VM%d:N%d->N%d)" vm src dst
  | Suspend { vm; host } -> Fmt.pf ppf "suspend(VM%d@@N%d)" vm host
  | Resume { vm; src; dst } -> Fmt.pf ppf "resume(VM%d:N%d->N%d)" vm src dst
  | Suspend_ram { vm; host } -> Fmt.pf ppf "suspend-ram(VM%d@@N%d)" vm host
  | Resume_ram { vm; host } -> Fmt.pf ppf "resume-ram(VM%d@@N%d)" vm host
