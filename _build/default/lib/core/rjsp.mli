(** The Running Job Selection Problem (paper, section 3.2): pick the
    maximum FCFS-prefix-greedy set of vjobs that fit on the cluster,
    trial-packing each with First-Fit Decreasing. *)

type outcome = {
  running : Vjob.t list;
  ready : Vjob.t list;  (** left sleeping (if ever run) or waiting *)
  ffd_config : Configuration.t;
      (** the plain-heuristic viable configuration built by the trials *)
}

val base_configuration :
  Configuration.t -> Vjob.t list -> Configuration.t
(** The queue's vjobs pulled off the cluster (running VMs become sleeping
    on their hosts) before re-admission. *)

val solve :
  ?heuristic:Ffd.heuristic -> ?rules:Placement_rules.t list ->
  config:Configuration.t -> demand:Demand.t -> queue:Vjob.t list -> unit ->
  outcome
(** Scan the queue in FCFS order; each vjob whose VMs all fit (via the
    heuristic) on top of the previously admitted ones is selected. *)

val selected : outcome -> Vjob.t -> bool
