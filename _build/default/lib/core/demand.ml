(* Observed CPU demands of the VMs, in hundredths of a core. The memory
   demand of a VM is static (its allocation, [Vm.memory_mb]); only CPU
   varies with the application phase, which is what the monitoring
   service reports to the control loop. *)

type t = int array (* indexed by Vm.id *)

let make ~vm_count ~default = Array.make vm_count default

let of_fn ~vm_count f = Array.init vm_count f

let uniform ~vm_count cpu = Array.make vm_count cpu

let cpu t vm_id =
  if vm_id < 0 || vm_id >= Array.length t then
    invalid_arg "Demand.cpu: unknown VM"
  else t.(vm_id)

let set t vm_id cpu =
  if vm_id < 0 || vm_id >= Array.length t then
    invalid_arg "Demand.set: unknown VM"
  else t.(vm_id) <- cpu

let copy = Array.copy
let vm_count = Array.length

let pp ppf t =
  Fmt.pf ppf "@[<h>%a@]" Fmt.(array ~sep:sp int) t
