(** VM context-switch actions: the edges of a reconfiguration graph. *)

type t =
  | Run of { vm : Vm.id; dst : Node.id }
  | Stop of { vm : Vm.id; host : Node.id }
  | Migrate of { vm : Vm.id; src : Node.id; dst : Node.id }
  | Suspend of { vm : Vm.id; host : Node.id }
  | Resume of { vm : Vm.id; src : Node.id; dst : Node.id }
      (** local resume when [src = dst], remote otherwise *)
  | Suspend_ram of { vm : Vm.id; host : Node.id }
      (** keep the image in the host's RAM (paper section 7) *)
  | Resume_ram of { vm : Vm.id; host : Node.id }
      (** wake a RAM-suspended VM; only possible on its host *)

val vm : t -> Vm.id
val destination : t -> Node.id option
(** Node on which the action claims resources, if any. *)

val source : t -> Node.id option
(** Node on which the action frees resources (or reads a stored image). *)

val is_local : t -> bool
(** Migrations and cross-node resumes are remote; everything else local. *)

val transition : t -> Lifecycle.transition

val always_feasible : t -> bool
(** Suspends (disk or RAM) and stops free resources and are feasible in
    any state. *)

val claim : Configuration.t -> Demand.t -> t -> (Node.id * int * int) option
(** Resources the action claims on its destination as
    [(node, cpu, mem)]; [None] for freeing actions. A RAM resume claims
    CPU only. *)

val feasible : Configuration.t -> Demand.t -> t -> bool
(** Whether the action can start now: its destination (if any) has enough
    free CPU and memory under the given configuration and demands. *)

exception Invalid of string

val apply : Configuration.t -> t -> Configuration.t
(** Execute the action. Raises {!Invalid} when the VM is not in the state
    the action expects (e.g. resuming a VM that is not sleeping). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
