(** Per-VM CPU demand vector (hundredths of a core), as observed by the
    monitoring service. Memory demands are static ([Vm.memory_mb]). *)

type t

val make : vm_count:int -> default:int -> t
val of_fn : vm_count:int -> (Vm.id -> int) -> t
val uniform : vm_count:int -> int -> t
val cpu : t -> Vm.id -> int
val set : t -> Vm.id -> int -> unit
val copy : t -> t
val vm_count : t -> int
val pp : Format.formatter -> t -> unit
