(* A small cluster-description language for the entropyctl tool, so a
   configuration can be written by hand, checked and planned against:

     # nodes: cpu in cores, memory in MB
     node N0 cpu=2.0 mem=3584
     node N1 cpu=2.0 mem=3584

     # vms: demand in hundredths of a core; states:
     #   waiting | running@<node> | sleeping@<node> |
     #   sleeping-ram@<node> | terminated
     # the optional program (C<cpu-s> / I<wall-s> phases) feeds
     # `entropyctl simulate`
     vm web mem=512  demand=10  state=running@N0 program=C600
     vm db  mem=2048 demand=100 state=waiting    program=I30,C300

     # vjobs group vms; FCFS order follows priority then declaration
     vjob site vms=web,db priority=0

     # placement rules
     rule spread web,db
     rule ban    web nodes=N1
     rule fence  db  nodes=N0,N1
     rule gather web,db
     rule quota  -   nodes=N0 max=2
*)

open Entropy_core

exception Parse_error of { line : int; message : string }

let parse_error line fmt =
  Fmt.kstr (fun message -> raise (Parse_error { line; message })) fmt

type t = {
  config : Configuration.t;
  demand : Demand.t;
  vjobs : Vjob.t list;
  rules : Placement_rules.t list;
  programs : Vworkload.Program.t array;  (* [] when not declared *)
  node_names : string array;
  vm_names : string array;
}

(* -- raw declarations -------------------------------------------------------- *)

type raw_state =
  | R_waiting
  | R_running of string
  | R_sleeping of string
  | R_sleeping_ram of string
  | R_terminated

type raw = {
  mutable nodes : (int * string * int * int) list; (* line, name, cpu, mem *)
  mutable vms :
    (int * string * int * int * raw_state * Vworkload.Program.t) list;
  mutable vjobs : (int * string * string list * int) list;
  mutable rules :
    (int * string * string list * string list * (string * string) list) list;
      (* line, kind, vms, nodes, remaining key=value fields *)
}

let fields lineno tokens =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
        (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> parse_error lineno "expected key=value, got %S" tok)
    tokens

let field lineno kvs key =
  match List.assoc_opt key kvs with
  | Some v -> v
  | None -> parse_error lineno "missing field %S" key

let field_opt kvs key = List.assoc_opt key kvs

let int_field lineno kvs key =
  match int_of_string_opt (field lineno kvs key) with
  | Some v -> v
  | None -> parse_error lineno "field %S is not an integer" key

let comma_list s = String.split_on_char ',' s |> List.filter (( <> ) "")

let parse_state lineno s =
  match String.index_opt s '@' with
  | None -> (
    match s with
    | "waiting" -> R_waiting
    | "terminated" -> R_terminated
    | _ -> parse_error lineno "unknown state %S" s)
  | Some i -> (
    let kind = String.sub s 0 i in
    let node = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "running" -> R_running node
    | "sleeping" -> R_sleeping node
    | "sleeping-ram" -> R_sleeping_ram node
    | _ -> parse_error lineno "unknown state %S" kind)

let parse_raw text =
  let raw = { nodes = []; vms = []; vjobs = []; rules = [] } in
  List.iteri
    (fun i line_raw ->
      let lineno = i + 1 in
      let line = String.trim line_raw in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | "node" :: name :: rest ->
          let kvs = fields lineno rest in
          let cpu =
            match float_of_string_opt (field lineno kvs "cpu") with
            | Some c when c > 0. -> int_of_float (Float.round (c *. 100.))
            | Some _ | None -> parse_error lineno "bad cpu (cores expected)"
          in
          let mem = int_field lineno kvs "mem" in
          raw.nodes <- (lineno, name, cpu, mem) :: raw.nodes
        | "vm" :: name :: rest ->
          let kvs = fields lineno rest in
          let mem = int_field lineno kvs "mem" in
          let demand =
            match field_opt kvs "demand" with
            | Some d -> (
              match int_of_string_opt d with
              | Some v when v >= 0 -> v
              | Some _ | None -> parse_error lineno "bad demand")
            | None -> 0
          in
          let state =
            match field_opt kvs "state" with
            | Some s -> parse_state lineno s
            | None -> R_waiting
          in
          let program =
            match field_opt kvs "program" with
            | None -> []
            | Some s -> (
              match Vworkload.Program.of_string s with
              | Ok p -> p
              | Error message -> parse_error lineno "%s" message)
          in
          raw.vms <- (lineno, name, mem, demand, state, program) :: raw.vms
        | "vjob" :: name :: rest ->
          let kvs = fields lineno rest in
          let vms = comma_list (field lineno kvs "vms") in
          if vms = [] then parse_error lineno "vjob %S has no vms" name;
          let priority =
            match field_opt kvs "priority" with
            | Some p -> (
              match int_of_string_opt p with
              | Some v -> v
              | None -> parse_error lineno "bad priority")
            | None -> 0
          in
          raw.vjobs <- (lineno, name, vms, priority) :: raw.vjobs
        | "rule" :: kind :: rest ->
          let vms, kvs =
            match rest with
            | vms :: rest -> (comma_list vms, fields lineno rest)
            | [] -> parse_error lineno "rule without VM list"
          in
          let nodes =
            match field_opt kvs "nodes" with
            | Some s -> comma_list s
            | None -> []
          in
          raw.rules <- (lineno, kind, vms, nodes, kvs) :: raw.rules
        | keyword :: _ -> parse_error lineno "unknown keyword %S" keyword
        | [] -> ())
    (String.split_on_char '\n' text);
  raw

(* -- elaboration --------------------------------------------------------------- *)

let index_of lineno kind names name =
  let rec go i = function
    | [] -> parse_error lineno "unknown %s %S" kind name
    | n :: rest -> if n = name then i else go (i + 1) rest
  in
  go 0 names

let of_string text =
  let raw = parse_raw text in
  let nodes_decl = List.rev raw.nodes in
  let vms_decl = List.rev raw.vms in
  let vjobs_decl = List.rev raw.vjobs in
  let rules_decl = List.rev raw.rules in
  if nodes_decl = [] then parse_error 1 "no node declared";
  if vms_decl = [] then parse_error 1 "no vm declared";
  let node_names = List.map (fun (_, n, _, _) -> n) nodes_decl in
  let vm_names = List.map (fun (_, n, _, _, _, _) -> n) vms_decl in
  let dup names kind =
    let sorted = List.sort String.compare names in
    let rec go = function
      | a :: (b :: _ as rest) ->
        if a = b then parse_error 1 "duplicate %s %S" kind a else go rest
      | _ -> ()
    in
    go sorted
  in
  dup node_names "node";
  dup vm_names "vm";
  let nodes =
    Array.of_list
      (List.mapi
         (fun i (_, name, cpu, mem) ->
           Node.make ~id:i ~name ~cpu_capacity:cpu ~memory_mb:mem)
         nodes_decl)
  in
  let vms =
    Array.of_list
      (List.mapi
         (fun i (_, name, mem, _, _, _) -> Vm.make ~id:i ~name ~memory_mb:mem)
         vms_decl)
  in
  let programs =
    Array.of_list (List.map (fun (_, _, _, _, _, p) -> p) vms_decl)
  in
  let config = ref (Configuration.make ~nodes ~vms) in
  let demand = Demand.make ~vm_count:(Array.length vms) ~default:0 in
  List.iteri
    (fun i (lineno, _, _, d, state, _) ->
      Demand.set demand i d;
      let node_id name = index_of lineno "node" node_names name in
      let st =
        match state with
        | R_waiting -> Configuration.Waiting
        | R_running n -> Configuration.Running (node_id n)
        | R_sleeping n -> Configuration.Sleeping (node_id n)
        | R_sleeping_ram n -> Configuration.Sleeping_ram (node_id n)
        | R_terminated -> Configuration.Terminated
      in
      config := Configuration.set_state !config i st)
    vms_decl;
  let vm_id lineno name = index_of lineno "vm" vm_names name in
  let vjobs =
    List.mapi
      (fun i (lineno, name, members, priority) ->
        Vjob.make ~id:i ~name
          ~vms:(List.map (vm_id lineno) members)
          ~priority ~submit_time:(float_of_int i) ())
      vjobs_decl
  in
  (* every VM must belong to exactly one vjob; VMs not mentioned get a
     singleton vjob *)
  let covered = Hashtbl.create 16 in
  List.iter
    (fun vj ->
      List.iter
        (fun vm ->
          if Hashtbl.mem covered vm then
            parse_error 1 "vm %S appears in two vjobs"
              (List.nth vm_names vm);
          Hashtbl.replace covered vm ())
        (Vjob.vms vj))
    vjobs;
  let next_id = ref (List.length vjobs) in
  let implicit =
    List.filteri (fun i _ -> not (Hashtbl.mem covered i)) vm_names
    |> List.map (fun name ->
           let id = !next_id in
           incr next_id;
           Vjob.make ~id ~name
             ~vms:[ index_of 1 "vm" vm_names name ]
             ~submit_time:(float_of_int id) ())
  in
  let rules =
    List.map
      (fun (lineno, kind, members, nodes, kvs_of_rule) ->
        let vms =
          List.map (vm_id lineno)
            (List.filter (( <> ) "-") members)
        in
        let node_ids =
          List.map (fun n -> index_of lineno "node" node_names n) nodes
        in
        match kind with
        | "spread" -> Placement_rules.Spread vms
        | "gather" -> Placement_rules.Gather vms
        | "ban" ->
          if node_ids = [] then parse_error lineno "ban needs nodes=";
          Placement_rules.Ban (vms, node_ids)
        | "fence" ->
          if node_ids = [] then parse_error lineno "fence needs nodes=";
          Placement_rules.Fence (vms, node_ids)
        | "quota" ->
          if node_ids = [] then parse_error lineno "quota needs nodes=";
          let max =
            match List.assoc_opt "max" kvs_of_rule with
            | Some v -> (
              match int_of_string_opt v with
              | Some k when k >= 0 -> k
              | Some _ | None -> parse_error lineno "bad quota max")
            | None -> parse_error lineno "quota needs max="
          in
          Placement_rules.Quota (node_ids, max)
        | _ -> parse_error lineno "unknown rule kind %S" kind)
      rules_decl
  in
  {
    config = !config;
    demand;
    vjobs = vjobs @ implicit;
    rules;
    programs;
    node_names = Array.of_list node_names;
    vm_names = Array.of_list vm_names;
  }

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))

(* -- pretty views ---------------------------------------------------------------- *)

let vm_name t id = t.vm_names.(id)
let node_name t id = t.node_names.(id)

let pp_action t ppf = function
  | Action.Run { vm; dst } ->
    Fmt.pf ppf "run %s on %s" (vm_name t vm) (node_name t dst)
  | Action.Stop { vm; _ } -> Fmt.pf ppf "stop %s" (vm_name t vm)
  | Action.Migrate { vm; src; dst } ->
    Fmt.pf ppf "migrate %s: %s -> %s" (vm_name t vm) (node_name t src)
      (node_name t dst)
  | Action.Suspend { vm; host } ->
    Fmt.pf ppf "suspend %s on %s" (vm_name t vm) (node_name t host)
  | Action.Resume { vm; src; dst } ->
    if src = dst then
      Fmt.pf ppf "resume %s locally on %s" (vm_name t vm) (node_name t dst)
    else
      Fmt.pf ppf "resume %s: %s -> %s" (vm_name t vm) (node_name t src)
        (node_name t dst)
  | Action.Suspend_ram { vm; host } ->
    Fmt.pf ppf "suspend %s to RAM on %s" (vm_name t vm) (node_name t host)
  | Action.Resume_ram { vm; host } ->
    Fmt.pf ppf "resume %s from RAM on %s" (vm_name t vm) (node_name t host)

let pp_plan t ppf plan =
  List.iteri
    (fun i pool ->
      Fmt.pf ppf "step %d:@." (i + 1);
      List.iter (fun a -> Fmt.pf ppf "  %a@." (pp_action t) a) pool)
    (Plan.pools plan)
