lib/cli/spec.ml: Action Array Configuration Demand Entropy_core Float Fmt Fun Hashtbl List Node Placement_rules Plan String Vjob Vm Vworkload
