lib/cli/spec.mli: Action Configuration Demand Entropy_core Format Node Placement_rules Plan Vjob Vm Vworkload
