(** Cluster-description language for the entropyctl tool. See the
    implementation header for the format. *)

open Entropy_core

exception Parse_error of { line : int; message : string }

type t = {
  config : Configuration.t;
  demand : Demand.t;
  vjobs : Vjob.t list;
  rules : Placement_rules.t list;
  programs : Vworkload.Program.t array;
      (** per-VM phase programs ([[]] when not declared); used by
          [entropyctl simulate] *)
  node_names : string array;
  vm_names : string array;
}

val of_string : string -> t
(** Raises {!Parse_error} with a 1-based line number. VMs not assigned
    to a vjob get an implicit singleton vjob. *)

val load : string -> t

val vm_name : t -> Vm.id -> string
val node_name : t -> Node.id -> string

val pp_action : t -> Format.formatter -> Action.t -> unit
(** Human-oriented action rendering using declared names. *)

val pp_plan : t -> Format.formatter -> Plan.t -> unit
