(* The constraint store: owns variables, the backtracking trail and the
   propagation queue.

   Trailing strategy: every domain update pushes the (variable, previous
   domain) pair; [undo_to] pops entries back to a mark. Domains being
   immutable values, restoration is a single field write. *)

exception Inconsistent of string

let fail fmt = Fmt.kstr (fun s -> raise (Inconsistent s)) fmt

type trail_entry = { v : Var.t; old_dom : Dom.t }

let dummy_entry =
  let v =
    { Var.id = -1; name = "<dummy>"; dom = Dom.empty; watchers = [] }
  in
  { v; old_dom = Dom.empty }

type t = {
  mutable vars : Var.t list;       (* newest first *)
  mutable nvars : int;
  mutable trail : trail_entry array;
  mutable trail_len : int;
  queue : Prop.t Queue.t;
  mutable propagations : int;      (* cumulative propagator runs *)
  mutable updates : int;           (* cumulative domain updates *)
}

type mark = int

let create () =
  {
    vars = [];
    nvars = 0;
    trail = Array.make 256 dummy_entry;
    trail_len = 0;
    queue = Queue.create ();
    propagations = 0;
    updates = 0;
  }

let vars t = List.rev t.vars
let propagation_count t = t.propagations
let update_count t = t.updates

let new_var ?name t ~lo ~hi =
  let name =
    match name with Some n -> n | None -> Printf.sprintf "v%d" t.nvars
  in
  if lo > hi then fail "new_var %s: empty initial domain [%d,%d]" name lo hi;
  let v =
    { Var.id = t.nvars; name; dom = Dom.interval lo hi; watchers = [] }
  in
  t.nvars <- t.nvars + 1;
  t.vars <- v :: t.vars;
  v

let new_var_of_values ?name t values =
  let d = Dom.of_list values in
  if Dom.is_empty d then fail "new_var_of_values: empty domain";
  let v = new_var ?name t ~lo:(Dom.lo d) ~hi:(Dom.hi d) in
  v.Var.dom <- d;
  v

let constant t c = new_var ~name:(Printf.sprintf "const%d" c) t ~lo:c ~hi:c

(* -- trail --------------------------------------------------------------- *)

let push_trail t entry =
  if t.trail_len = Array.length t.trail then begin
    let bigger = Array.make (2 * Array.length t.trail) dummy_entry in
    Array.blit t.trail 0 bigger 0 t.trail_len;
    t.trail <- bigger
  end;
  t.trail.(t.trail_len) <- entry;
  t.trail_len <- t.trail_len + 1

let mark t = t.trail_len

let undo_to t m =
  while t.trail_len > m do
    t.trail_len <- t.trail_len - 1;
    let { v; old_dom } = t.trail.(t.trail_len) in
    v.Var.dom <- old_dom
  done

(* -- scheduling and updates ---------------------------------------------- *)

let schedule t (p : Prop.t) =
  if not p.scheduled then begin
    p.scheduled <- true;
    Queue.add p t.queue
  end

let schedule_watchers t (v : Var.t) = List.iter (schedule t) v.watchers

let set_dom t (v : Var.t) d =
  if Dom.is_empty d then begin
    (* wake nobody; the search will undo *)
    fail "%s: domain wiped out" v.name
  end;
  if Dom.size d < Dom.size v.dom then begin
    push_trail t { v; old_dom = v.dom };
    v.dom <- d;
    t.updates <- t.updates + 1;
    schedule_watchers t v
  end

let remove t v x = set_dom t v (Dom.remove x (Var.dom v))
let remove_below t v x = set_dom t v (Dom.remove_below x (Var.dom v))
let remove_above t v x = set_dom t v (Dom.remove_above x (Var.dom v))

let instantiate t v x =
  if not (Var.mem x v) then
    fail "%s: cannot instantiate to %d (not in %a)" (Var.name v) x Dom.pp
      (Var.dom v);
  set_dom t v (Dom.keep_only x (Var.dom v))

(* -- propagation --------------------------------------------------------- *)

let clear_queue t =
  Queue.iter (fun (p : Prop.t) -> p.scheduled <- false) t.queue;
  Queue.clear t.queue

let propagate t =
  try
    while not (Queue.is_empty t.queue) do
      let p = Queue.pop t.queue in
      p.Prop.scheduled <- false;
      t.propagations <- t.propagations + 1;
      p.Prop.run ()
    done
  with Inconsistent _ as e ->
    clear_queue t;
    raise e

let post t (p : Prop.t) ~on =
  List.iter (fun v -> Var.watch v p) on;
  schedule t p
