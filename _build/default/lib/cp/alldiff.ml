(* All-different constraint with forward checking plus a pigeonhole test
   (more values needed than available -> failure). Used for the optional
   `spread` placement side-constraint (VMs of a vjob on distinct nodes). *)

let post store vars =
  let vars = Array.of_list vars in
  let p = Prop.make ~name:"alldiff" (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      (* forward checking: a bound variable's value leaves the others *)
      Array.iteri
        (fun i x ->
          if Var.is_bound x then begin
            let v = Var.value_exn x in
            Array.iteri
              (fun j y -> if i <> j then Store.remove store y v)
              vars
          end)
        vars;
      (* pigeonhole over the union of the remaining domains *)
      let union = Hashtbl.create 64 in
      let enumerable_all = ref true in
      Array.iter
        (fun x ->
          if Dom.enumerable (Var.dom x) then
            Dom.iter (fun v -> Hashtbl.replace union v ()) (Var.dom x)
          else enumerable_all := false)
        vars;
      if !enumerable_all && Hashtbl.length union < Array.length vars then
        Store.fail "alldiff: %d variables, %d values" (Array.length vars)
          (Hashtbl.length union));
  Store.post store p ~on:(Array.to_list vars)
