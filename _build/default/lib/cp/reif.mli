(** Reified constraints. *)

val eq_const : Store.t -> Var.t -> int -> Var.t -> unit
(** [eq_const s x v b] posts [b <=> (x = v)], with [b] a 0/1 variable. *)
