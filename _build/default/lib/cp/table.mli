(** Extensional constraint: the variables jointly take one of the given
    tuples (generalised arc consistency). *)

val post : Store.t -> Var.t list -> int array list -> unit
