(* Extensional (table) constraint: the variables must jointly take one
   of the allowed tuples. Generalised arc consistency by support
   scanning — O(tuples x arity) per wake-up, fine for the small tables
   this library needs. *)

let post store vars tuples =
  let vars = Array.of_list vars in
  let arity = Array.length vars in
  if arity = 0 then invalid_arg "Table.post: no variables";
  List.iter
    (fun t ->
      if Array.length t <> arity then
        invalid_arg "Table.post: tuple arity mismatch")
    tuples;
  let tuples = Array.of_list tuples in
  let p = Prop.make ~name:"table" (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      (* a tuple is alive when every component is still in its domain *)
      let alive t =
        let ok = ref true in
        Array.iteri (fun i v -> if not (Var.mem v vars.(i)) then ok := false) t;
        !ok
      in
      let living = Array.to_list tuples |> List.filter alive in
      if living = [] then Store.fail "table: no tuple left";
      (* supported values per variable *)
      Array.iteri
        (fun i x ->
          let supported = Hashtbl.create 8 in
          List.iter (fun t -> Hashtbl.replace supported t.(i) ()) living;
          Dom.iter
            (fun v -> if not (Hashtbl.mem supported v) then Store.remove store x v)
            (Var.dom x))
        vars);
  Store.post store p ~on:(Array.to_list vars)
