(** Counting constraints on the number of variables equal to a value. *)

val at_most :
  Store.t -> ?name:string -> Var.t array -> value:int -> count:int -> unit

val at_least :
  Store.t -> ?name:string -> Var.t array -> value:int -> count:int -> unit

val exactly :
  Store.t -> ?name:string -> Var.t array -> value:int -> count:int -> unit
