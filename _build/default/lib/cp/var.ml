(* Finite-domain variables. Domain mutation goes through [Store], which
   handles trailing and propagator scheduling; this module only holds the
   representation and read accessors. *)

type t = {
  id : int;
  name : string;
  mutable dom : Dom.t;
  mutable watchers : Prop.t list;
}

let id t = t.id
let name t = t.name
let dom t = t.dom

let lo t = Dom.lo t.dom
let hi t = Dom.hi t.dom
let size t = Dom.size t.dom
let is_bound t = Dom.is_bound t.dom
let mem v t = Dom.mem v t.dom

let value_exn t =
  if not (is_bound t) then
    invalid_arg (Printf.sprintf "Var.value_exn: %s not bound" t.name);
  Dom.value_exn t.dom

let watch t prop =
  if not (List.exists (fun (p : Prop.t) -> p.id = prop.Prop.id) t.watchers)
  then t.watchers <- prop :: t.watchers

let pp ppf t = Fmt.pf ppf "%s=%a" t.name Dom.pp t.dom
