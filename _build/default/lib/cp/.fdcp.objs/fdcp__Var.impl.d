lib/cp/var.ml: Dom Fmt List Printf Prop
