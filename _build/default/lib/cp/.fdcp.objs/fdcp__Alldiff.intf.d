lib/cp/alldiff.mli: Store Var
