lib/cp/pack.ml: Array List Prop Store Var
