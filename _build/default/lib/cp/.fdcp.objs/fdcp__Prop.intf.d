lib/cp/prop.mli: Format
