lib/cp/dom.mli: Format
