lib/cp/prop.ml: Fmt
