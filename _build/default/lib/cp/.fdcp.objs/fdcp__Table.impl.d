lib/cp/table.ml: Array Dom Hashtbl List Prop Store Var
