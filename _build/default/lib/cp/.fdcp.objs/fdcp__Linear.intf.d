lib/cp/linear.mli: Store Var
