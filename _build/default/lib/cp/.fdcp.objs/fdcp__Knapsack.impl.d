lib/cp/knapsack.ml: Array Bytes Char Dom Prop Store Var
