lib/cp/linear.ml: Arith Array List Prop Store Var
