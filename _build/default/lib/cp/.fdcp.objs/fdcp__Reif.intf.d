lib/cp/reif.mli: Store Var
