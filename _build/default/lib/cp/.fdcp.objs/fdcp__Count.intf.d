lib/cp/count.mli: Store Var
