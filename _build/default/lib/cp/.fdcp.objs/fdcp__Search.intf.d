lib/cp/search.mli: Format Store Var
