lib/cp/arith.ml: Dom Prop Store Var
