lib/cp/reif.ml: Prop Store Var
