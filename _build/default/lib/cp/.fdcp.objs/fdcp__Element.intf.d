lib/cp/element.mli: Store Var
