lib/cp/arith.mli: Store Var
