lib/cp/element.ml: Array Dom Hashtbl Prop Store Var
