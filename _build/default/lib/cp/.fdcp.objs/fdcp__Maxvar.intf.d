lib/cp/maxvar.mli: Store Var
