lib/cp/dom.ml: Bytes Char Fmt List
