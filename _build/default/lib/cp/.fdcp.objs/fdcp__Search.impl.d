lib/cp/search.ml: Array Dom Float Fmt List Option Random Store Unix Var
