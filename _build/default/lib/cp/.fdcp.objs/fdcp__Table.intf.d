lib/cp/table.mli: Store Var
