lib/cp/var.mli: Dom Format Prop
