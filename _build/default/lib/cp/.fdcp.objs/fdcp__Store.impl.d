lib/cp/store.ml: Array Dom Fmt List Printf Prop Queue Var
