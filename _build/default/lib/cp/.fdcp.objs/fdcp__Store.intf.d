lib/cp/store.mli: Dom Format Prop Var
