lib/cp/knapsack.mli: Store Var
