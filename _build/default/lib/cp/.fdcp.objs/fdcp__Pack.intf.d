lib/cp/pack.mli: Store Var
