lib/cp/maxvar.ml: List Prop Store Var
