lib/cp/alldiff.ml: Array Dom Hashtbl Prop Store Var
