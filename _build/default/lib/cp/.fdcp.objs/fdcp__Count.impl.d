lib/cp/count.ml: Array Prop Store Var
