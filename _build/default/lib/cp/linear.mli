(** Bounds-consistent linear (weighted sum) constraints. *)

type term = int * Var.t
(** A term [(a, x)] denotes [a * x]. *)

val sum_le : Store.t -> term list -> int -> unit
(** [sum_le s terms c] posts [sum terms <= c]. *)

val sum_ge : Store.t -> term list -> int -> unit
val sum_eq : Store.t -> term list -> int -> unit

val sum_var : Store.t -> term list -> Var.t -> unit
(** [sum_var s terms y] posts [y = sum terms]. *)

val weighted : Var.t array -> int array -> term list
(** Zip variables with coefficients. Raises on length mismatch. *)

val current_min : term list -> int
(** Smallest possible value of the sum under current domains. *)

val current_max : term list -> int
(** Largest possible value of the sum under current domains. *)
