(** Knapsack / subset-sum constraint with Trick-style DP propagation.

    [load = sum_i sizes.(i) * selectors.(i)] with boolean selectors.
    Propagation computes the exact set of reachable sums, prunes the load
    variable to it, and fixes selectors proven forced or forbidden. *)

type t = { sizes : int array; selectors : Var.t array; load : Var.t }

val post :
  Store.t -> sizes:int array -> selectors:Var.t array -> load:Var.t -> t
(** Sizes must be non-negative; selectors are restricted to [{0,1}]. *)
