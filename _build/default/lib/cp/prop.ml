(* A propagator is a named closure that narrows variable domains. It
   raises [Store.Inconsistent] (via the store's update functions or
   directly) when it proves the current state has no solution.

   The [scheduled] flag keeps each propagator at most once in the
   propagation queue. *)

type t = {
  id : int;
  name : string;
  mutable scheduled : bool;
  mutable run : unit -> unit;
}

let next_id = ref 0

let make ~name run =
  incr next_id;
  { id = !next_id; name; scheduled = false; run }

let pp ppf t = Fmt.pf ppf "%s#%d" t.name t.id
