(** All-different constraint (forward checking + pigeonhole test). *)

val post : Store.t -> Var.t list -> unit
