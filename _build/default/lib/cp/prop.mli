(** Propagators: named domain-narrowing closures. *)

type t = {
  id : int;
  name : string;
  mutable scheduled : bool;  (** true while queued for propagation *)
  mutable run : unit -> unit;
}

val make : name:string -> (unit -> unit) -> t
(** [make ~name run] allocates a fresh propagator. [run] narrows domains
    through the owning {!Store.t} and raises {!Store.Inconsistent} on
    failure. The closure may be replaced after creation (used to break
    the store/propagator definition cycle). *)

val pp : Format.formatter -> t -> unit
