(* Element constraint:  y = table.(x).

   Used by the Entropy optimiser to channel a VM's placement variable to
   the migration/resume cost that placement implies. The index variable is
   always enumerable (node indices); the result variable is pruned at the
   value level when its own domain is enumerable, at the bounds otherwise. *)

let post store x table y =
  let len = Array.length table in
  if len = 0 then invalid_arg "Element.post: empty table";
  let p = Prop.make ~name:"element" (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      Store.remove_below store x 0;
      Store.remove_above store x (len - 1);
      (* prune index values whose image left y's domain *)
      Dom.iter
        (fun v -> if not (Var.mem table.(v) y) then Store.remove store x v)
        (Var.dom x);
      (* collect the feasible images *)
      let vmin = ref max_int and vmax = ref min_int in
      Dom.iter
        (fun v ->
          let w = table.(v) in
          if w < !vmin then vmin := w;
          if w > !vmax then vmax := w)
        (Var.dom x);
      if !vmin > !vmax then Store.fail "element: no feasible index";
      Store.remove_below store y !vmin;
      Store.remove_above store y !vmax;
      if Dom.enumerable (Var.dom y) then begin
        let feasible = Hashtbl.create 16 in
        Dom.iter (fun v -> Hashtbl.replace feasible table.(v) ()) (Var.dom x);
        Dom.iter
          (fun w ->
            if not (Hashtbl.mem feasible w) then Store.remove store y w)
          (Var.dom y)
      end)
  ;
  Store.post store p ~on:[ x; y ]
