(** Element constraint. *)

val post : Store.t -> Var.t -> int array -> Var.t -> unit
(** [post s x table y] posts [y = table.(x)], restricting [x] to
    [0 .. Array.length table - 1]. The index variable must be enumerable;
    the result is pruned value-wise when possible, bounds-wise otherwise. *)
