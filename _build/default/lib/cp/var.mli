(** Finite-domain integer variables.

    All domain {e mutation} must go through {!Store} (for trailing and
    propagator scheduling); this interface exposes only reads, plus
    {!watch} used by constraint implementations. *)

type t = {
  id : int;
  name : string;
  mutable dom : Dom.t;
  mutable watchers : Prop.t list;
}

val id : t -> int
val name : t -> string
val dom : t -> Dom.t
val lo : t -> int
val hi : t -> int
val size : t -> int
val is_bound : t -> bool
val mem : int -> t -> bool

val value_exn : t -> int
(** Value of a bound variable. Raises [Invalid_argument] otherwise. *)

val watch : t -> Prop.t -> unit
(** Subscribe a propagator to this variable's domain changes. Idempotent. *)

val pp : Format.formatter -> t -> unit
