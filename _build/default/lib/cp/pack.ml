(* One-dimensional bin-packing propagator in the style of Shaw (CP'04),
   which the paper cites for the viability constraint: items (placement
   variable + size) must fit bins of fixed capacities.

   Propagation performed at each wake-up:
   - fail when a bin's committed load exceeds its capacity;
   - prune bin b from item i when committed(b) + size(i) > cap(b);
   - fail when the total size of unassigned items exceeds the total
     residual capacity.

   The pruning loop only visits the *tight* bins (slack smaller than the
   item's size): bins are sorted by increasing slack once per wake-up,
   and each unbound item scans that prefix only — with mostly-roomy
   clusters this is far cheaper than scanning every (item, bin) pair. *)

type item = { var : Var.t; size : int }

let item var size = { var; size }

let post store ?(name = "pack") ~items ~capacities () =
  let nbins = Array.length capacities in
  let p = Prop.make ~name (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      let committed = Array.make nbins 0 in
      let unassigned = ref [] in
      let demand = ref 0 in
      Array.iter
        (fun it ->
          if Var.is_bound it.var then begin
            let b = Var.value_exn it.var in
            if b >= 0 && b < nbins then begin
              committed.(b) <- committed.(b) + it.size;
              if committed.(b) > capacities.(b) then
                Store.fail "%s: bin %d overloaded (%d > %d)" name b
                  committed.(b) capacities.(b)
            end
          end
          else begin
            unassigned := it :: !unassigned;
            demand := !demand + it.size
          end)
        items;
      (* bins by increasing slack; items only need to look at the bins
         whose slack is smaller than their size *)
      let slack = Array.init nbins (fun b -> (capacities.(b) - committed.(b), b)) in
      Array.sort compare slack;
      let residual = ref 0 in
      Array.iter (fun (s, _) -> if s > 0 then residual := !residual + s) slack;
      if !demand > !residual then
        Store.fail "%s: %d units of unassigned demand, %d residual" name
          !demand !residual;
      let prune it =
        let rec go i =
          if i < nbins then begin
            let s, b = slack.(i) in
            if s < it.size then begin
              Store.remove store it.var b;
              go (i + 1)
            end
          end
        in
        go 0
      in
      List.iter prune !unassigned);
  Store.post store p ~on:(Array.to_list (Array.map (fun it -> it.var) items))
