(** Maximum constraint: [y = max xs] (bounds consistency). *)

val post : Store.t -> Var.t list -> Var.t -> unit
