(** Elementary arithmetic constraints (bounds-consistent). *)

val div_floor : int -> int -> int
(** [div_floor a b] is [floor (a / b)] for [b > 0]. *)

val div_ceil : int -> int -> int
(** [div_ceil a b] is [ceil (a / b)] for [b > 0]. *)

val le : Store.t -> Var.t -> Var.t -> unit
(** [le s x y] posts [x <= y]. *)

val lt : Store.t -> Var.t -> Var.t -> unit
(** [lt s x y] posts [x < y]. *)

val le_offset : Store.t -> Var.t -> Var.t -> int -> unit
(** [le_offset s x y c] posts [x <= y + c]. *)

val eq : Store.t -> Var.t -> Var.t -> unit
(** [eq s x y] posts [x = y] (bounds plus value channeling when both
    domains are enumerable). *)

val eq_offset : Store.t -> Var.t -> Var.t -> int -> unit
(** [eq_offset s x y c] posts [x = y + c]. *)

val neq_const : Store.t -> Var.t -> int -> unit
(** [neq_const s x v] posts [x <> v]. *)

val neq : Store.t -> Var.t -> Var.t -> unit
(** [neq s x y] posts [x <> y] (forward checking). *)
