(** One-dimensional bin-packing constraint (Shaw-style pruning).

    Multi-dimensional packing (the paper's CPU x memory viability
    constraint) is obtained by posting one instance per dimension over the
    same placement variables. *)

type item = { var : Var.t; size : int }

val item : Var.t -> int -> item

val post :
  Store.t -> ?name:string -> items:item array -> capacities:int array ->
  unit -> unit
(** [post s ~items ~capacities ()] constrains every item's placement
    variable (valued in [0 .. Array.length capacities - 1]; values outside
    that range are treated as "not packed" and consume no capacity) so
    that each bin's total size stays within its capacity. *)
