(* Finite integer domains.

   A domain is an immutable set of integers. Two representations are used:
   - a contiguous interval [lo, hi] (bits = None);
   - an interval with holes, backed by a copy-on-write bitset whose bit i
     represents the value [off + i] (bits = Some b).

   Domains wider than [max_enumerated_width] stay interval-only: removing
   an interior value of such a domain is a sound no-op (the domain is an
   over-approximation, propagators only lose pruning strength, never
   soundness). This matters only for objective-like variables whose
   domains are tightened exclusively through their bounds. *)

let max_enumerated_width = 1 lsl 16

type t = {
  lo : int;
  hi : int;
  size : int;
  off : int;              (* value of bit 0 when a bitset is present *)
  bits : Bytes.t option;
}

let lo t = t.lo
let hi t = t.hi
let size t = t.size

let is_empty t = t.size = 0
let is_bound t = t.size = 1

let empty = { lo = 1; hi = 0; size = 0; off = 0; bits = None }

let interval lo hi =
  if lo > hi then empty
  else { lo; hi; size = hi - lo + 1; off = lo; bits = None }

let singleton v = interval v v

(* -- bitset helpers ------------------------------------------------------ *)

let bit_get b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_clear b i =
  let byte = Char.code (Bytes.get b (i lsr 3)) in
  Bytes.set b (i lsr 3) (Char.chr (byte land lnot (1 lsl (i land 7))))

let bit_set b i =
  let byte = Char.code (Bytes.get b (i lsr 3)) in
  Bytes.set b (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))

(* Materialize the bitset of an interval domain. *)
let materialize t =
  match t.bits with
  | Some b -> Bytes.copy b
  | None ->
    let width = t.hi - t.lo + 1 in
    let b = Bytes.make ((width + 7) / 8) '\000' in
    for i = 0 to width - 1 do bit_set b i done;
    b

let enumerable t =
  match t.bits with
  | Some _ -> true
  | None -> t.hi - t.lo + 1 <= max_enumerated_width

let mem v t =
  if v < t.lo || v > t.hi then false
  else
    match t.bits with
    | None -> true
    | Some b -> bit_get b (v - t.off)

let value_exn t =
  if t.size <> 1 then invalid_arg "Dom.value_exn: domain not bound";
  t.lo

(* Scan for the next present value >= [v] (bitset domains). *)
let rec scan_up b off width v =
  if v - off >= width then None
  else if bit_get b (v - off) then Some v
  else scan_up b off width (v + 1)

let rec scan_down b off v =
  if v < off then None
  else if bit_get b (v - off) then Some v
  else scan_down b off (v - 1)

let next_value v t =
  let v = max v t.lo in
  if v > t.hi then None
  else
    match t.bits with
    | None -> Some v
    | Some b -> (
      match scan_up b t.off (t.hi - t.off + 1) v with
      | Some r when r <= t.hi -> Some r
      | _ -> None)

let prev_value v t =
  let v = min v t.hi in
  if v < t.lo then None
  else
    match t.bits with
    | None -> Some v
    | Some b -> scan_down b t.off v

(* Recompute [lo], [hi] and [size] of a bitset domain after a mutation. *)
let normalize off b ~lo ~hi =
  let lo' = scan_up b off (hi - off + 1) lo in
  match lo' with
  | None -> empty
  | Some lo ->
    let hi =
      match scan_down b off hi with
      | Some h -> h
      | None -> assert false
    in
    let count = ref 0 in
    for i = lo - off to hi - off do
      if bit_get b i then incr count
    done;
    { lo; hi; size = !count; off; bits = Some b }

let remove v t =
  if not (mem v t) then t
  else if t.size = 1 then empty
  else if v = t.lo then
    (* shrink from below *)
    match next_value (v + 1) t with
    | None -> empty
    | Some lo -> (
      match t.bits with
      | None -> { t with lo; size = t.size - 1 }
      | Some b ->
        let b = Bytes.copy b in
        bit_clear b (v - t.off);
        { t with lo; size = t.size - 1; bits = Some b })
  else if v = t.hi then
    match prev_value (v - 1) t with
    | None -> empty
    | Some hi -> (
      match t.bits with
      | None -> { t with hi; size = t.size - 1 }
      | Some b ->
        let b = Bytes.copy b in
        bit_clear b (v - t.off);
        { t with hi; size = t.size - 1; bits = Some b })
  else if not (enumerable t) then t (* sound over-approximation *)
  else
    (* when materializing from an interval, bit 0 represents t.lo *)
    let off = match t.bits with None -> t.lo | Some _ -> t.off in
    let b = materialize t in
    bit_clear b (v - off);
    normalize off b ~lo:t.lo ~hi:t.hi

let remove_below v t =
  if v <= t.lo then t
  else if v > t.hi then empty
  else
    match t.bits with
    | None -> { t with lo = v; size = t.hi - v + 1 }
    | Some b -> normalize t.off b ~lo:v ~hi:t.hi

let remove_above v t =
  if v >= t.hi then t
  else if v < t.lo then empty
  else
    match t.bits with
    | None -> { t with hi = v; size = v - t.lo + 1 }
    | Some b -> normalize t.off b ~lo:t.lo ~hi:v

let keep_only v t = if mem v t then singleton v else empty

let of_list vs =
  match List.sort_uniq compare vs with
  | [] -> empty
  | [ v ] -> singleton v
  | lo :: _ as vs ->
    let hi = List.fold_left max lo vs in
    if hi - lo + 1 > max_enumerated_width then
      invalid_arg "Dom.of_list: range too wide to enumerate";
    let width = hi - lo + 1 in
    let b = Bytes.make ((width + 7) / 8) '\000' in
    List.iter (fun v -> bit_set b (v - lo)) vs;
    { lo; hi; size = List.length vs; off = lo; bits = Some b }

let fold f acc t =
  let rec go acc v =
    match next_value v t with
    | None -> acc
    | Some v -> go (f acc v) (v + 1)
  in
  if not (enumerable t) then invalid_arg "Dom.fold: domain not enumerable"
  else go acc t.lo

let iter f t = fold (fun () v -> f v) () t

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

let pp ppf t =
  if is_empty t then Fmt.string ppf "{}"
  else if t.size = 1 then Fmt.pf ppf "{%d}" t.lo
  else
    match t.bits with
    | None -> Fmt.pf ppf "[%d..%d]" t.lo t.hi
    | Some _ -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (to_list t)
