(* A synthetic reimplementation of the NAS Grid Benchmarks (Frumkin &
   Van der Wijngaart), the workloads of the paper's evaluation. NGB
   composes NPB solvers into four data-flow graph families; we reproduce
   the graph *shapes* as per-VM compute/idle phase programs, which is the
   property the evaluation exercises: a VM demands a full processing
   unit while its task computes and is almost idle while waiting on the
   rest of the DAG.

   Families:
   - ED (Embarrassingly Distributed): independent tasks, no exchange —
     every VM computes for the whole job;
   - HC (Helical Chain): a single chain of tasks cycling through the
     VMs — exactly one VM computes at a time;
   - VP (Visualization Pipeline): a depth-3 pipeline (BT -> MG -> FT)
     over rounds — VM i starts after i pipeline stages and computes once
     per round;
   - MB (Mixed Bag): a layered DAG with unequal task sizes — later
     layers start later and work longer.

   Classes W, A and B scale the per-task work, mirroring NGB problem
   sizes. *)

type family = Ed | Hc | Vp | Mb

let families = [ Ed; Hc; Vp; Mb ]

let family_to_string = function
  | Ed -> "ED"
  | Hc -> "HC"
  | Vp -> "VP"
  | Mb -> "MB"

type cls = W | A | B

let classes = [ W; A; B ]

let class_to_string = function W -> "W" | A -> "A" | B -> "B"

(* Per-task work in CPU-seconds. The absolute scale is arbitrary (our
   substrate is a simulator); the W:A:B ratios follow the NPB class
   growth (roughly one order of magnitude per class, compressed to keep
   simulations fast). *)
let task_work = function W -> 60. | A -> 180. | B -> 480.

(* -- program builders ----------------------------------------------------- *)

let ed ~vms ~work = List.init vms (fun _ -> [ Program.Compute work ])

(* One chain of [rounds * vms] tasks visiting VM 0, 1, ..., vms-1
   cyclically: VM i idles i*work, computes, idles (vms-1)*work, computes
   again, ... *)
let hc ?(rounds = 3) ~vms ~work () =
  List.init vms (fun i ->
      let prefix = Program.Idle (float_of_int i *. work) in
      let rec cycle r =
        if r = 0 then []
        else
          Program.Compute work
          :: (if r = 1 then []
              else Program.Idle (float_of_int (vms - 1) *. work) :: cycle (r - 1))
      in
      Program.normalize (prefix :: cycle rounds))

(* Pipeline of depth [depth] (default 3, BT-MG-FT in NGB): the VMs are
   split into [depth] stages; each round, stage s computes after stage
   s-1. With [rounds] rounds, stage s is busy from round s onward. *)
let vp ?(depth = 3) ?(rounds = 3) ~vms ~work () =
  List.init vms (fun i ->
      let stage = i * depth / vms in
      let phases = ref [ Program.Idle (float_of_int stage *. work) ] in
      for r = 0 to rounds - 1 do
        ignore r;
        phases := Program.Idle ((float_of_int depth -. 1.) *. work)
                  :: Program.Compute work :: !phases
      done;
      (* drop the trailing inter-round idle *)
      let l = match !phases with Program.Idle _ :: rest -> rest | l -> l in
      Program.normalize (List.rev l))

(* Layered DAG with unequal tasks: layer l (of [layers]) starts after
   the previous layers and works (1 + l/2) * work. *)
let mb ?(layers = 3) ~vms ~work () =
  List.init vms (fun i ->
      let layer = i * layers / vms in
      let lead_in = float_of_int layer *. work in
      let my_work = work *. (1. +. (float_of_int layer /. 2.)) in
      Program.normalize [ Program.Idle lead_in; Program.Compute my_work ])

let programs ?rounds family cls ~vms =
  let work = task_work cls in
  match family with
  | Ed -> ed ~vms ~work
  | Hc -> hc ?rounds ~vms ~work ()
  | Vp -> vp ?rounds ~vms ~work ()
  | Mb -> mb ~vms ~work ()

let name family cls ~vms =
  Printf.sprintf "%s.%s.%d" (family_to_string family) (class_to_string cls) vms
