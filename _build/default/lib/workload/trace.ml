(* Trace specifications: one trace = one vjob workload (per-VM memory
   sizes + per-VM programs). The catalogue reproduces the paper's "81
   real traces observable on the different benchmarks of the NGB suite
   for the sizes W, A and B": the 4 families x 3 classes, declined over
   VM counts (9 or 18) and seeded memory profiles. *)

type t = {
  name : string;
  family : Nasgrid.family;
  cls : Nasgrid.cls;
  vm_count : int;
  memories : int list;   (* per-VM memory, MB *)
  programs : Program.t list;
}

let memory_choices = [ 256; 512; 1024; 2048 ]

let pick_memories rng vm_count =
  List.init vm_count (fun _ ->
      List.nth memory_choices (Random.State.int rng (List.length memory_choices)))

let make ?(seed = 0) ?(vm_count = 9) family cls =
  let rng = Random.State.make [| seed; Hashtbl.hash (family, cls, vm_count) |] in
  {
    name = Printf.sprintf "%s#%d" (Nasgrid.name family cls ~vms:vm_count) seed;
    family;
    cls;
    vm_count;
    memories = pick_memories rng vm_count;
    programs = Nasgrid.programs family cls ~vms:vm_count;
  }

(* The 81-trace catalogue: 4 families x 3 classes x {9,18} VMs x seeds,
   truncated to 81 entries (the paper's count). *)
let catalogue ?(count = 81) () =
  let specs = ref [] in
  let seed = ref 0 in
  while List.length !specs < count do
    List.iter
      (fun family ->
        List.iter
          (fun cls ->
            List.iter
              (fun vm_count ->
                if List.length !specs < count then
                  specs := make ~seed:!seed ~vm_count family cls :: !specs)
              [ 9; 18 ])
          Nasgrid.classes)
      Nasgrid.families;
    incr seed
  done;
  List.rev !specs

let total_compute t =
  List.fold_left (fun acc p -> acc +. Program.total_compute p) 0. t.programs

let min_duration t =
  List.fold_left (fun acc p -> Float.max acc (Program.min_duration p)) 0.
    t.programs

let pp ppf t =
  Fmt.pf ppf "%s (%d VMs, %.0f cpu-s)" t.name t.vm_count (total_compute t)
