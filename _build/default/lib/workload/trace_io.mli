(** Plain-text (de)serialisation of trace specifications. *)

exception Parse_error of { line : int; message : string }

val program_to_string : Program.t -> string
val to_string : Trace.t list -> string
val of_string : string -> Trace.t list
(** Raises {!Parse_error} with a 1-based line number on malformed
    input. *)

val save : string -> Trace.t list -> unit
val load : string -> Trace.t list
