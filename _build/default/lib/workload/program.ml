(* Per-VM programs: the phase sequence a VM executes once its vjob is
   launched. A Compute phase represents a NAS-grid task needing a full
   processing unit; it holds an amount of work in CPU-seconds (wall time
   = work when the VM gets a whole core, longer under contention). An
   Idle phase represents waiting for other tasks of the DAG and advances
   with wall-clock time whenever the VM runs. *)

type phase =
  | Compute of float  (* CPU-seconds of work *)
  | Idle of float     (* wall seconds *)

type t = phase list

(* CPU demand (hundredths of a core) of a VM executing a phase. *)
let compute_demand = 100
let idle_demand = 5

let demand_of_phase = function
  | Compute _ -> compute_demand
  | Idle _ -> idle_demand

let demand = function
  | [] -> 0
  | phase :: _ -> demand_of_phase phase

let total_compute t =
  List.fold_left
    (fun acc -> function Compute w -> acc +. w | Idle _ -> acc)
    0. t

let min_duration t =
  (* wall time with a dedicated core and no suspension *)
  List.fold_left
    (fun acc -> function Compute w -> acc +. w | Idle d -> acc +. d)
    0. t

let is_empty t = t = []

(* Drop zero-length phases and merge consecutive phases of one kind. *)
let normalize t =
  let rec go = function
    | [] -> []
    | Compute w :: rest when w <= 0. -> go rest
    | Idle d :: rest when d <= 0. -> go rest
    | Compute a :: Compute b :: rest -> go (Compute (a +. b) :: rest)
    | Idle a :: Idle b :: rest -> go (Idle (a +. b) :: rest)
    | p :: rest -> p :: go rest
  in
  go t

let pp_phase ppf = function
  | Compute w -> Fmt.pf ppf "C%.0f" w
  | Idle d -> Fmt.pf ppf "I%.0f" d

let pp ppf t = Fmt.pf ppf "[%a]" Fmt.(list ~sep:sp pp_phase) t

(* Textual form used by the trace and cluster-description formats:
   comma-separated [C<cpu-seconds>] / [I<wall-seconds>] phases. *)
let phase_of_string s =
  if String.length s < 2 then Error (Printf.sprintf "empty phase %S" s)
  else
    match float_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | None -> Error (Printf.sprintf "bad duration in phase %S" s)
    | Some v when v < 0. ->
      Error (Printf.sprintf "negative duration in phase %S" s)
    | Some v -> (
      match s.[0] with
      | 'C' | 'c' -> Ok (Compute v)
      | 'I' | 'i' -> Ok (Idle v)
      | _ -> Error (Printf.sprintf "unknown phase kind in %S (use C or I)" s))

let of_string s =
  if String.trim s = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | tok :: rest -> (
        match phase_of_string tok with
        | Ok p -> go (p :: acc) rest
        | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' s)
