(** Per-VM phase programs: what a VM does once its vjob is launched. *)

type phase =
  | Compute of float  (** CPU-seconds of work at full speed *)
  | Idle of float     (** wall-clock seconds (waiting on the DAG) *)

type t = phase list

val compute_demand : int
(** A computing task needs an entire processing unit (100). *)

val idle_demand : int

val demand_of_phase : phase -> int
val demand : t -> int
(** Demand of the current (head) phase; 0 when the program is done. *)

val total_compute : t -> float
val min_duration : t -> float
(** Wall time with a dedicated core and no interruption. *)

val is_empty : t -> bool
val normalize : t -> t
val pp : Format.formatter -> t -> unit
val pp_phase : Format.formatter -> phase -> unit

val phase_of_string : string -> (phase, string) result
(** ["C60"] is 60 CPU-seconds of compute, ["I30"] 30 s of waiting. *)

val of_string : string -> (t, string) result
(** Comma-separated phases, e.g. ["I30,C60.5,I10"]; [""] is the empty
    program. *)
