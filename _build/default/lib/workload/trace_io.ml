(* Plain-text serialisation of trace specifications, so users can bring
   their own vjob workloads (or archive generated ones). The format is
   line-based:

     # comment
     trace ED.W.9#0 family=ED class=W
     vm mem=512 program=C60
     vm mem=1024 program=I30,C60,I10
     trace ...

   Programs are comma-separated phases: [C<w>] for a compute phase of
   [w] CPU-seconds, [I<d>] for an idle phase of [d] wall seconds. *)

exception Parse_error of { line : int; message : string }

let parse_error line fmt =
  Fmt.kstr (fun message -> raise (Parse_error { line; message })) fmt

(* -- writing ---------------------------------------------------------------- *)

let phase_to_string = function
  | Program.Compute w -> Printf.sprintf "C%g" w
  | Program.Idle d -> Printf.sprintf "I%g" d

let program_to_string program =
  String.concat "," (List.map phase_to_string program)

let trace_to_lines (t : Trace.t) =
  Printf.sprintf "trace %s family=%s class=%s" t.Trace.name
    (Nasgrid.family_to_string t.Trace.family)
    (Nasgrid.class_to_string t.Trace.cls)
  :: List.map2
       (fun mem program ->
         Printf.sprintf "vm mem=%d program=%s" mem (program_to_string program))
       t.Trace.memories t.Trace.programs

let to_string traces =
  String.concat "\n" (List.concat_map trace_to_lines traces) ^ "\n"

let save path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string traces))

(* -- parsing ----------------------------------------------------------------- *)

let parse_program lineno s =
  match Program.of_string s with
  | Ok p -> p
  | Error message -> parse_error lineno "%s" message

let parse_family lineno s =
  match String.uppercase_ascii s with
  | "ED" -> Nasgrid.Ed
  | "HC" -> Nasgrid.Hc
  | "VP" -> Nasgrid.Vp
  | "MB" -> Nasgrid.Mb
  | _ -> parse_error lineno "unknown family %S" s

let parse_class lineno s =
  match String.uppercase_ascii s with
  | "W" -> Nasgrid.W
  | "A" -> Nasgrid.A
  | "B" -> Nasgrid.B
  | _ -> parse_error lineno "unknown class %S" s

(* key=value fields after the leading keyword *)
let fields lineno tokens =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
        (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> parse_error lineno "expected key=value, got %S" tok)
    tokens

let field lineno kvs key =
  match List.assoc_opt key kvs with
  | Some v -> v
  | None -> parse_error lineno "missing field %S" key

type partial = {
  name : string;
  family : Nasgrid.family;
  cls : Nasgrid.cls;
  mutable rev_vms : (int * Program.t) list;
}

let close_partial lineno p =
  if p.rev_vms = [] then
    parse_error lineno "trace %S has no VMs" p.name
  else
    let vms = List.rev p.rev_vms in
    {
      Trace.name = p.name;
      family = p.family;
      cls = p.cls;
      vm_count = List.length vms;
      memories = List.map fst vms;
      programs = List.map snd vms;
    }

let of_string text =
  let lines = String.split_on_char '\n' text in
  let current = ref None in
  let finished = ref [] in
  let flush lineno =
    match !current with
    | Some p ->
      finished := close_partial lineno p :: !finished;
      current := None
    | None -> ()
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | "trace" :: name :: rest ->
          flush lineno;
          let kvs = fields lineno rest in
          current :=
            Some
              {
                name;
                family = parse_family lineno (field lineno kvs "family");
                cls = parse_class lineno (field lineno kvs "class");
                rev_vms = [];
              }
        | "vm" :: rest -> (
          let kvs = fields lineno rest in
          let mem =
            match int_of_string_opt (field lineno kvs "mem") with
            | Some m when m > 0 -> m
            | Some _ | None -> parse_error lineno "bad vm memory"
          in
          let program = parse_program lineno (field lineno kvs "program") in
          match !current with
          | None -> parse_error lineno "vm line outside of a trace"
          | Some p -> p.rev_vms <- (mem, program) :: p.rev_vms)
        | keyword :: _ -> parse_error lineno "unknown keyword %S" keyword
        | [] -> ())
    lines;
  flush (List.length lines);
  List.rev !finished

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
