(* Random configuration generator for the scalability evaluation
   (section 5.1 / Figure 10): 200 working nodes with 2 CPUs and 4 GB of
   memory, and a variable number of VMs obtained by aggregating vjobs of
   9 or 18 VMs drawn from the NGB trace catalogue. Each vjob's initial
   state is chosen randomly; the initial assignment of running VMs
   satisfies the memory requirement of every VM (the CPU may be
   overloaded — that is what the context switch fixes). *)

open Entropy_core

type spec = {
  node_count : int;
  node_cpu : int;   (* hundredths of a core *)
  node_mem : int;   (* MB *)
  vm_target : int;  (* how many VMs to aggregate *)
  seed : int;
}

let default_spec =
  { node_count = 200; node_cpu = 200; node_mem = 4096; vm_target = 216; seed = 0 }

type instance = {
  config : Configuration.t;
  demand : Demand.t;
  vjobs : Vjob.t list;
}

(* Memory-aware first-fit over a random node order. *)
let place_by_memory rng free_mem memories =
  let n = Array.length free_mem in
  let order = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let place mem =
    let rec go k =
      if k >= n then None
      else
        let node = order.(k) in
        if free_mem.(node) >= mem then begin
          free_mem.(node) <- free_mem.(node) - mem;
          Some node
        end
        else go (k + 1)
    in
    go 0
  in
  List.map place memories

let generate spec =
  let rng = Random.State.make [| spec.seed; 0x5eed |] in
  let traces = Array.of_list (Trace.catalogue ()) in
  (* draw vjobs until the VM target is reached *)
  let rec draw acc total =
    if total >= spec.vm_target then List.rev acc
    else
      let t = traces.(Random.State.int rng (Array.length traces)) in
      (* keep the VM count aligned with the target when possible *)
      let t =
        if total + t.Trace.vm_count > spec.vm_target then
          Trace.make ~seed:(Random.State.int rng 1000) ~vm_count:9
            t.Trace.family t.Trace.cls
        else t
      in
      draw (t :: acc) (total + t.Trace.vm_count)
  in
  let selected = draw [] 0 in
  let nodes =
    Array.init spec.node_count (fun i ->
        Node.make ~id:i ~name:(Printf.sprintf "N%d" i)
          ~cpu_capacity:spec.node_cpu ~memory_mb:spec.node_mem)
  in
  (* flatten VMs, assign dense ids *)
  let vm_specs =
    List.concat_map
      (fun t -> List.map (fun m -> (t, m)) t.Trace.memories)
      selected
  in
  let vms =
    Array.of_list
      (List.mapi
         (fun i (t, m) ->
           Vm.make ~id:i
             ~name:(Printf.sprintf "%s-vm%d" t.Trace.name i)
             ~memory_mb:m)
         vm_specs)
  in
  let config = Configuration.make ~nodes ~vms in
  (* per-VM demand: the head phase of its program *)
  let demand = Demand.make ~vm_count:(Array.length vms) ~default:0 in
  let vjobs = ref [] in
  let config = ref config in
  let free_mem =
    Array.init spec.node_count (fun _ -> spec.node_mem)
  in
  let next_vm = ref 0 in
  List.iteri
    (fun j t ->
      let ids = List.init t.Trace.vm_count (fun k -> !next_vm + k) in
      next_vm := !next_vm + t.Trace.vm_count;
      List.iter2
        (fun vm_id prog -> Demand.set demand vm_id (Program.demand prog))
        ids t.Trace.programs;
      let state = Random.State.int rng 3 in
      (match state with
      | 0 ->
        (* running: memory-aware placement *)
        let placements = place_by_memory rng free_mem t.Trace.memories in
        List.iter2
          (fun vm_id placement ->
            match placement with
            | Some node ->
              config :=
                Configuration.set_state !config vm_id
                  (Configuration.Running node)
            | None -> () (* cluster memory exhausted: stays waiting *))
          ids placements
      | 1 ->
        (* sleeping: image on a random node *)
        let node = Random.State.int rng spec.node_count in
        List.iter
          (fun vm_id ->
            config :=
              Configuration.set_state !config vm_id
                (Configuration.Sleeping node))
          ids
      | _ -> () (* waiting *));
      vjobs :=
        Vjob.make ~id:j ~name:t.Trace.name ~vms:ids
          ~submit_time:(float_of_int j) ()
        :: !vjobs)
    selected;
  { config = !config; demand; vjobs = List.rev !vjobs }

(* The paper's Figure 10 sweep: VM counts from 54 to 486 by 54. *)
let figure10_vm_counts = [ 54; 108; 162; 216; 270; 324; 378; 432; 486 ]

let figure10_instances ?(samples = 30) ~vm_count () =
  List.init samples (fun s ->
      generate { default_spec with vm_target = vm_count; seed = s })
