(** Random configuration generator for the Figure 10 scalability study. *)

open Entropy_core

type spec = {
  node_count : int;
  node_cpu : int;
  node_mem : int;
  vm_target : int;
  seed : int;
}

val default_spec : spec
(** 200 nodes, 2 CPUs (capacity 200), 4096 MB. *)

type instance = {
  config : Configuration.t;
  demand : Demand.t;
  vjobs : Vjob.t list;
}

val generate : spec -> instance
(** Deterministic in [spec.seed]. Running vjobs are placed so that every
    VM's memory requirement is satisfied; CPU may be overloaded. *)

val figure10_vm_counts : int list
(** 54, 108, ..., 486 (the paper's x-axis). *)

val figure10_instances : ?samples:int -> vm_count:int -> unit -> instance list
