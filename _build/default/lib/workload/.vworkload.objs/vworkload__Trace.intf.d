lib/workload/trace.mli: Format Nasgrid Program
