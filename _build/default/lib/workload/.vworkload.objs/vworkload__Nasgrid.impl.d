lib/workload/nasgrid.ml: List Printf Program
