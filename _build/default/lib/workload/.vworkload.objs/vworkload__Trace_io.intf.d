lib/workload/trace_io.mli: Program Trace
