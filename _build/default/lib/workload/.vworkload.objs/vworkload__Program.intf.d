lib/workload/program.mli: Format
