lib/workload/nasgrid.mli: Program
