lib/workload/generator.mli: Configuration Demand Entropy_core Vjob
