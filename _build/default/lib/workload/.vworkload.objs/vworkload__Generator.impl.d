lib/workload/generator.ml: Array Configuration Demand Entropy_core Fun List Node Printf Program Random Trace Vjob Vm
