lib/workload/dag.ml: Array Float Fmt Hashtbl Int List Nasgrid Program
