lib/workload/trace.ml: Float Fmt Hashtbl List Nasgrid Printf Program Random
