lib/workload/trace_io.ml: Fmt Fun List Nasgrid Printf Program String Trace
