lib/workload/program.ml: Fmt List Printf String
