lib/workload/dag.mli: Nasgrid Program
