(** Trace catalogue: vjob workload specifications (NGB-like). *)

type t = {
  name : string;
  family : Nasgrid.family;
  cls : Nasgrid.cls;
  vm_count : int;
  memories : int list;
  programs : Program.t list;
}

val memory_choices : int list
(** 256 / 512 / 1024 / 2048 MB, as in the paper's experiments. *)

val make : ?seed:int -> ?vm_count:int -> Nasgrid.family -> Nasgrid.cls -> t

val catalogue : ?count:int -> unit -> t list
(** The 81-trace catalogue (default count 81). *)

val total_compute : t -> float
val min_duration : t -> float
(** Longest per-VM minimum duration: the vjob cannot finish faster. *)

val pp : Format.formatter -> t -> unit
