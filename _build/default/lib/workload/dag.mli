(** Explicit task graphs (the real structure of the NAS Grid
    Benchmarks), compiled to per-VM phase programs under the dedicated-
    resource assumption of the paper's testbed. *)

type task = {
  id : int;
  vm : int;
  work : float;  (** CPU-seconds *)
  deps : int list;
}

type t

exception Invalid of string

val make : vm_count:int -> task list -> t
(** Raises {!Invalid} on dangling dependencies, non-dense ids, unknown
    VMs or negative work. Cycles are detected on first traversal. *)

val task : id:int -> vm:int -> work:float -> ?deps:int list -> unit -> task

val task_count : t -> int
val vm_count : t -> int
val total_work : t -> float

val topological_order : t -> int list
(** Raises {!Invalid} on a dependency cycle. *)

val schedule : t -> float array * float array
(** Earliest-start schedule with one dedicated core per VM:
    per-task [(starts, finishes)]. *)

val critical_path : t -> float
(** Completion time of the dedicated-resource schedule. *)

val compile : t -> Program.t list
(** Per-VM phase programs (Idle gaps between Compute tasks). *)

val ed : vms:int -> work:float -> t
val hc : ?rounds:int -> vms:int -> work:float -> unit -> t
val vp : ?depth:int -> ?rounds:int -> vms:int -> work:float -> unit -> t
val mb : ?layers:int -> vms:int -> work:float -> unit -> t
val of_family : ?rounds:int -> Nasgrid.family -> vms:int -> work:float -> t
