(* Explicit task graphs — the actual structure of the NAS Grid
   Benchmarks. A DAG is a set of tasks, each bound to a VM with an
   amount of work (CPU-seconds) and dependencies on other tasks.

   [compile] turns a DAG into the per-VM phase programs the simulator
   executes, under the launch-time assumptions of the paper's testbed:
   every VM has a dedicated processing unit, so a task's duration equals
   its work, a task starts when its dependencies complete and its VM is
   free, and a VM waits (Idle) between its tasks. The phase programs are
   therefore the DAG's dedicated-resource schedule; contention and
   suspensions at run time shift whole programs without reordering them
   (VMs of a vjob pause and resume together). *)

type task = {
  id : int;
  vm : int;          (* VM index within the vjob *)
  work : float;      (* CPU-seconds *)
  deps : int list;   (* task ids that must complete first *)
}

type t = {
  tasks : task array;  (* task ids are dense: tasks.(i).id = i *)
  vm_count : int;
}

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let make ~vm_count tasks =
  let tasks = Array.of_list tasks in
  Array.iteri
    (fun i t ->
      if t.id <> i then invalid "task ids must be dense (task %d at %d)" t.id i;
      if t.vm < 0 || t.vm >= vm_count then
        invalid "task %d bound to unknown VM %d" t.id t.vm;
      if t.work < 0. then invalid "task %d has negative work" t.id;
      List.iter
        (fun d ->
          if d < 0 || d >= Array.length tasks then
            invalid "task %d depends on unknown task %d" t.id d)
        t.deps)
    tasks;
  { tasks; vm_count }

let task ~id ~vm ~work ?(deps = []) () = { id; vm; work; deps }

let task_count t = Array.length t.tasks
let vm_count t = t.vm_count

let total_work t =
  Array.fold_left (fun acc task -> acc +. task.work) 0. t.tasks

(* Topological order; raises on cycles. *)
let topological_order t =
  let n = Array.length t.tasks in
  let state = Array.make n `White in
  let order = ref [] in
  let rec visit i =
    match state.(i) with
    | `Black -> ()
    | `Gray -> invalid "dependency cycle through task %d" i
    | `White ->
      state.(i) <- `Gray;
      List.iter visit t.tasks.(i).deps;
      state.(i) <- `Black;
      order := i :: !order
  in
  for i = 0 to n - 1 do
    visit i
  done;
  List.rev !order

(* Earliest-start schedule with one dedicated processing unit per VM:
   start = max(deps' finishes, VM cursor). Returns per-task (start,
   finish). Within a VM, tasks run in topological order. *)
let schedule t =
  let n = Array.length t.tasks in
  let start = Array.make n 0. and finish = Array.make n 0. in
  let vm_cursor = Array.make t.vm_count 0. in
  List.iter
    (fun i ->
      let task = t.tasks.(i) in
      let ready =
        List.fold_left (fun acc d -> Float.max acc finish.(d)) 0. task.deps
      in
      let s = Float.max ready vm_cursor.(task.vm) in
      start.(i) <- s;
      finish.(i) <- s +. task.work;
      vm_cursor.(task.vm) <- finish.(i))
    (topological_order t);
  (start, finish)

let critical_path t =
  let _, finish = schedule t in
  Array.fold_left Float.max 0. finish

(* Compile to per-VM phase programs (Idle gaps + Compute tasks). *)
let compile t =
  let start, _finish = schedule t in
  (* tasks of each VM, by start time *)
  let by_vm = Array.make t.vm_count [] in
  Array.iter (fun task -> by_vm.(task.vm) <- task :: by_vm.(task.vm)) t.tasks;
  Array.to_list
    (Array.map
       (fun tasks ->
         let tasks =
           List.sort
             (fun a b -> Float.compare start.(a.id) start.(b.id))
             tasks
         in
         let phases, _ =
           List.fold_left
             (fun (acc, cursor) task ->
               let gap = start.(task.id) -. cursor in
               let acc = Program.Compute task.work :: Program.Idle gap :: acc in
               (acc, start.(task.id) +. task.work))
             ([], 0.) tasks
         in
         Program.normalize (List.rev phases))
       by_vm)

(* -- the NGB families as explicit DAGs ------------------------------------- *)

(* Embarrassingly Distributed: independent tasks, one per VM. *)
let ed ~vms ~work =
  make ~vm_count:vms
    (List.init vms (fun i -> task ~id:i ~vm:i ~work ()))

(* Helical Chain: rounds * vms tasks in one chain cycling over the VMs. *)
let hc ?(rounds = 3) ~vms ~work () =
  let n = rounds * vms in
  make ~vm_count:vms
    (List.init n (fun i ->
         task ~id:i ~vm:(i mod vms) ~work
           ?deps:(if i = 0 then None else Some [ i - 1 ])
           ()))

(* Visualization Pipeline: [depth] stages; each round, stage s depends
   on stage s-1 of the same round and on its own previous round. *)
let vp ?(depth = 3) ?(rounds = 3) ~vms ~work () =
  (* stage s uses the VM block [s*vms/depth .. (s+1)*vms/depth); tasks
     are aggregated per (round, stage) on the block's first VM for the
     dependency structure, with the block's other VMs mirroring the
     stage as parallel tasks *)
  let block s = s * vms / depth in
  let tasks = ref [] in
  let id = ref 0 in
  let index = Hashtbl.create 16 in
  for r = 0 to rounds - 1 do
    for s = 0 to depth - 1 do
      let vm_lo = block s in
      let vm_hi = if s = depth - 1 then vms - 1 else block (s + 1) - 1 in
      for vm = vm_lo to vm_hi do
        let deps =
          (if s > 0 then
             (* the previous stage of this round, same relative position *)
             match Hashtbl.find_opt index (r, s - 1) with
             | Some ids -> ids
             | None -> []
           else [])
          @
          match Hashtbl.find_opt index (r - 1, s) with
          | Some ids -> ids
          | None -> []
        in
        let deps = List.sort_uniq Int.compare deps in
        tasks := task ~id:!id ~vm ~work ~deps () :: !tasks;
        Hashtbl.replace index (r, s)
          (!id
          ::
          (match Hashtbl.find_opt index (r, s) with
          | Some ids -> ids
          | None -> []));
        incr id
      done
    done
  done;
  make ~vm_count:vms (List.rev !tasks)

(* Mixed Bag: layered DAG with unequal work per layer. *)
let mb ?(layers = 3) ~vms ~work () =
  let layer_of vm = vm * layers / vms in
  let tasks = ref [] in
  let id = ref 0 in
  let by_layer = Hashtbl.create 8 in
  for vm = 0 to vms - 1 do
    let l = layer_of vm in
    let deps =
      match Hashtbl.find_opt by_layer (l - 1) with Some ids -> ids | None -> []
    in
    let my_work = work *. (1. +. (float_of_int l /. 2.)) in
    tasks := task ~id:!id ~vm ~work:my_work ~deps () :: !tasks;
    Hashtbl.replace by_layer l
      (!id
      :: (match Hashtbl.find_opt by_layer l with Some ids -> ids | None -> []));
    incr id
  done;
  make ~vm_count:vms (List.rev !tasks)

let of_family ?rounds (family : Nasgrid.family) ~vms ~work =
  match family with
  | Nasgrid.Ed -> ed ~vms ~work
  | Nasgrid.Hc -> hc ?rounds ~vms ~work ()
  | Nasgrid.Vp -> vp ?rounds ~vms ~work ()
  | Nasgrid.Mb -> mb ~vms ~work ()
