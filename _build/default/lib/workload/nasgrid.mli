(** Synthetic NAS Grid Benchmarks: the four NGB data-flow families as
    per-VM phase programs (see DESIGN.md for the substitution note). *)

type family = Ed | Hc | Vp | Mb
type cls = W | A | B

val families : family list
val classes : cls list
val family_to_string : family -> string
val class_to_string : cls -> string

val task_work : cls -> float
(** Per-task work (CPU-seconds) of each class. *)

val ed : vms:int -> work:float -> Program.t list
val hc : ?rounds:int -> vms:int -> work:float -> unit -> Program.t list
val vp :
  ?depth:int -> ?rounds:int -> vms:int -> work:float -> unit ->
  Program.t list
val mb : ?layers:int -> vms:int -> work:float -> unit -> Program.t list

val programs : ?rounds:int -> family -> cls -> vms:int -> Program.t list
(** One program per VM of the vjob. *)

val name : family -> cls -> vms:int -> string
