lib/scheduler/job.mli: Format
