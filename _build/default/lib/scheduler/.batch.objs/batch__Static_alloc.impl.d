lib/scheduler/static_alloc.ml: Int Job List Rms Vworkload
