lib/scheduler/static_alloc.mli: Job Rms Vworkload
