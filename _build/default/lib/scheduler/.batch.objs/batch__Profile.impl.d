lib/scheduler/profile.ml: Float List
