lib/scheduler/swf.ml: Float Fmt Fun Job List Printf String
