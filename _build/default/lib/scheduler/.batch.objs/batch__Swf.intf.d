lib/scheduler/swf.mli: Job
