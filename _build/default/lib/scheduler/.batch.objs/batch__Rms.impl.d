lib/scheduler/rms.ml: Float Job List Profile
