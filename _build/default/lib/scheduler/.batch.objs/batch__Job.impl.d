lib/scheduler/job.ml: Float Fmt Int
