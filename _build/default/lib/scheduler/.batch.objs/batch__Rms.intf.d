lib/scheduler/rms.mli: Job
