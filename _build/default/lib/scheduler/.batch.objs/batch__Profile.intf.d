lib/scheduler/profile.mli:
