(* Batch jobs as a traditional Resource Management System sees them: a
   rigid request of [nodes_required] nodes for a [walltime] estimated by
   the user, with a (hidden) actual duration. *)

type t = {
  id : int;
  name : string;
  arrival : float;
  nodes_required : int;
  walltime : float;  (* the user's estimate (slot length) *)
  actual : float;    (* real duration, <= or > walltime *)
}

let make ~id ~name ?(arrival = 0.) ~nodes_required ~walltime ~actual () =
  if nodes_required <= 0 then invalid_arg "Job.make: nodes_required <= 0";
  if walltime <= 0. then invalid_arg "Job.make: walltime <= 0";
  { id; name; arrival; nodes_required; walltime; actual }

let compare_fcfs a b =
  match Float.compare a.arrival b.arrival with
  | 0 -> Int.compare a.id b.id
  | c -> c

(* Jobs that exceed their walltime are killed at the end of the slot:
   the computation is lost (the paper's "worst case"). *)
let killed t = t.actual > t.walltime

let pp ppf t =
  Fmt.pf ppf "%s(%dn,%.0fs est,%.0fs real)" t.name t.nodes_required
    t.walltime t.actual

type placement = { job : t; start : float }

let slot_end p = p.start +. p.job.walltime
let completion p = if killed p.job then None else Some (p.start +. p.job.actual)
