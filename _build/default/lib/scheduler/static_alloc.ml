(* The static-allocation baseline of section 5.2: each vjob is submitted
   to a traditional RMS as a rigid job asking for enough nodes to host
   its VMs (one full processing unit per computing VM) for an estimated
   walltime. This is the FCFS scheduler of Figure 12, whose resource
   usage (Figure 13) and completion time are compared against Entropy's
   dynamic consolidation. *)

module Trace = Vworkload.Trace
module Program = Vworkload.Program

(* Nodes needed to host the trace's VMs with every VM granted a full
   processing unit (the user's conservative request): FFD bin count. *)
let nodes_required ~node_cpu ~node_mem trace =
  let items = List.sort (fun a b -> Int.compare b a) trace.Trace.memories in
  let bins = ref [] in
  (* first-fit decreasing over (free_cpu, free_mem) bins *)
  let place mem =
    let rec ff acc = function
      | [] -> bins := List.rev ((node_cpu - 100, node_mem - mem) :: acc)
      | (fc, fm) :: rest ->
        if fc >= 100 && fm >= mem then
          bins := List.rev_append acc ((fc - 100, fm - mem) :: rest)
        else ff ((fc, fm) :: acc) rest
    in
    ff [] !bins
  in
  List.iter place items;
  List.length !bins

let default_overestimate = 1.5

(* Build the rigid job a user would submit for this trace. *)
let job_of_trace ?(overestimate = default_overestimate) ~node_cpu ~node_mem
    ~id trace =
  let actual = Trace.min_duration trace in
  Job.make ~id ~name:trace.Trace.name
    ~nodes_required:(nodes_required ~node_cpu ~node_mem trace)
    ~walltime:(actual *. overestimate)
    ~actual ()

type run = {
  schedule : Rms.schedule;
  traces : (Job.t * Trace.t) list;
}

let run ?overestimate ?(release = Rms.Walltime)
    ?(policy = `Fcfs) ~capacity ~node_cpu ~node_mem traces =
  let jobs_traces =
    List.mapi
      (fun i t -> (job_of_trace ?overestimate ~node_cpu ~node_mem ~id:i t, t))
      traces
  in
  let jobs = List.map fst jobs_traces in
  let schedule =
    match policy with
    | `Fcfs -> Rms.fcfs ~release ~capacity jobs
    | `Backfill -> Rms.backfill ~release ~capacity jobs
  in
  { schedule; traces = jobs_traces }

let makespan run = run.schedule.Rms.makespan

(* -- utilization series (the Figure 13 baseline curves) ------------------- *)

(* CPU demand of a program at [offset] seconds after launch, assuming a
   dedicated core (compute phases run at full speed). *)
let rec demand_at program offset =
  match program with
  | [] -> 0
  | Program.Compute w :: rest ->
    if offset < w then Program.compute_demand else demand_at rest (offset -. w)
  | Program.Idle d :: rest ->
    if offset < d then Program.idle_demand else demand_at rest (offset -. d)

let sample run time =
  let mem = ref 0 and cpu = ref 0 in
  List.iter
    (fun ((job : Job.t), trace) ->
      match
        List.find_opt
          (fun (p : Job.placement) -> p.Job.job.Job.id = job.Job.id)
          run.schedule.Rms.placements
      with
      | None -> ()
      | Some p ->
        let offset = time -. p.Job.start in
        if offset >= 0. && offset < job.Job.actual then begin
          List.iter (fun m -> mem := !mem + m) trace.Trace.memories;
          List.iter
            (fun prog -> cpu := !cpu + demand_at prog offset)
            trace.Trace.programs
        end)
    run.traces;
  (!mem, !cpu)

let series ?(period = 30.) run =
  let horizon = makespan run in
  let rec go t acc =
    if t > horizon then List.rev acc else go (t +. period) ((t, sample run t) :: acc)
  in
  go 0. []
