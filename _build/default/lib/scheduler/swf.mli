(** Standard Workload Format (Parallel Workloads Archive) reader and
    writer — a subset sufficient to replay real batch traces through the
    RMS baselines. *)

exception Parse_error of { line : int; message : string }

val parse_line : lineno:int -> string -> Job.t option
(** [None] for skipped entries (failed submissions, zero processors). *)

val of_string : string -> Job.t list
val load : string -> Job.t list
val to_string : Job.t list -> string
val save : string -> Job.t list -> unit
