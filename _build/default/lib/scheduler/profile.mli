(** Free-node step profile with earliest-fit queries. *)

type t

val create : capacity:int -> t
val capacity : t -> int
val free_at : t -> float -> int
val allocate : t -> start:float -> finish:float -> nodes:int -> unit
(** Raises [Invalid_argument] on over-allocation. *)

val min_free : t -> start:float -> finish:float -> int
val earliest : t -> after:float -> nodes:int -> duration:float -> float
