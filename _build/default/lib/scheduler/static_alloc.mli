(** The static-allocation FCFS baseline (Figures 12 and 13): vjobs
    submitted as rigid node x walltime reservations. *)

module Trace = Vworkload.Trace

val nodes_required : node_cpu:int -> node_mem:int -> Trace.t -> int
(** Nodes a user must book: FFD bin count with a full processing unit
    per VM. *)

val default_overestimate : float
(** Users overestimate their walltime (x1.5 by default). *)

val job_of_trace :
  ?overestimate:float -> node_cpu:int -> node_mem:int -> id:int ->
  Trace.t -> Job.t

type run = {
  schedule : Rms.schedule;
  traces : (Job.t * Trace.t) list;
}

val run :
  ?overestimate:float -> ?release:Rms.release ->
  ?policy:[ `Fcfs | `Backfill ] -> capacity:int -> node_cpu:int ->
  node_mem:int -> Trace.t list -> run

val makespan : run -> float

val demand_at : Vworkload.Program.t -> float -> int
(** CPU demand of a program [offset] seconds after launch on dedicated
    resources. *)

val sample : run -> float -> int * int
(** [(memory_mb, cpu_demand)] of the running jobs at a given time. *)

val series : ?period:float -> run -> (float * (int * int)) list
(** Sampled utilization over the whole schedule (Figure 13 baseline). *)
