(** Rigid batch jobs (node count x walltime reservations). *)

type t = {
  id : int;
  name : string;
  arrival : float;
  nodes_required : int;
  walltime : float;
  actual : float;
}

val make :
  id:int -> name:string -> ?arrival:float -> nodes_required:int ->
  walltime:float -> actual:float -> unit -> t

val compare_fcfs : t -> t -> int

val killed : t -> bool
(** The job needs more than its walltime: the RMS kills it at the end of
    the slot and the computation is lost. *)

val pp : Format.formatter -> t -> unit

type placement = { job : t; start : float }

val slot_end : placement -> float
val completion : placement -> float option
(** Completion time, [None] when the job was killed. *)
