(** Traditional RMS scheduling policies: strict FCFS and backfilling
    over rigid node x walltime reservations. *)

type release =
  | Walltime  (** slots held for the whole estimate (rigid) *)
  | Actual    (** oracle variant: freed at completion *)

type schedule = {
  placements : Job.placement list;
  makespan : float;
  capacity : int;
}

val fcfs : ?release:release -> capacity:int -> Job.t list -> schedule
(** Strict FCFS: no overtaking. *)

val backfill : ?release:release -> capacity:int -> Job.t list -> schedule
(** Earliest-fit in arrival order; later jobs may fill earlier holes. *)

val easy : ?release:release -> capacity:int -> Job.t list -> schedule
val conservative : ?release:release -> capacity:int -> Job.t list -> schedule
(** With simultaneous arrivals both coincide with {!backfill}. *)

val preemptive_lower_bound : capacity:int -> Job.t list -> float
(** Ideal-preemption makespan bound (Figure 1 (c) intuition). *)

val simulate : ?backfill:bool -> capacity:int -> Job.t list -> schedule
(** Event-driven (online) scheduling: nodes are freed at actual job
    completion and the queue is reconsidered at every event — how a real
    RMS behaves, as opposed to the rigid slot reservations of {!fcfs}.
    Jobs exceeding their walltime are killed at the end of the slot. *)

val used_nodes : ?release:release -> schedule -> float -> int
