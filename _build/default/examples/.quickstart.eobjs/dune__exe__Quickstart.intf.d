examples/quickstart.mli:
