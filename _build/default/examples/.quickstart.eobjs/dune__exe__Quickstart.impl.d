examples/quickstart.ml: Action Array Configuration Decision Demand Entropy_core Fmt Lifecycle List Node Optimizer Plan Printf Vjob Vm
