examples/high_availability.mli:
