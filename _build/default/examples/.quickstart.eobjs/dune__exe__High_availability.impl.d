examples/high_availability.ml: Action Array Configuration Decision Demand Entropy_core Fmt List Node Optimizer Placement_rules Plan Printf Schedule Vjob Vm
