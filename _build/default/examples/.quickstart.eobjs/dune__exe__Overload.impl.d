examples/overload.ml: Array Entropy_core Fmt List Node Printf Vjob Vsim Vworkload
