examples/overload.mli:
