examples/consolidation.mli:
