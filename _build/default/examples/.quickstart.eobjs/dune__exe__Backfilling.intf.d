examples/backfilling.mli:
