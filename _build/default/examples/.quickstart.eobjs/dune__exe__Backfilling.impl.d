examples/backfilling.ml: Batch List Printf String
