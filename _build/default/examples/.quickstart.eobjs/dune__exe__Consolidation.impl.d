examples/consolidation.ml: Action Array Configuration Decision Demand Entropy_core Fmt List Node Optimizer Plan Printf String Vjob Vm
