(* The Figure 1 story: why reservation-based scheduling wastes
   resources, and how much a preemption-capable scheduler can win.

   Four jobs on a 10-node cluster, as in the paper's Figure 1:
   strict FCFS leaves big holes, EASY backfilling fills some, and
   a preemption-capable scheduler (what the cluster-wide context switch
   enables) approaches the ideal packing.

     dune exec examples/backfilling.exe *)

module Job = Batch.Job
module Rms = Batch.Rms

let gantt ~capacity (s : Rms.schedule) =
  ignore capacity;
  let width = 56 in
  let cell = s.Rms.makespan /. float_of_int width in
  List.iter
    (fun (p : Job.placement) ->
      let line =
        String.init width (fun i ->
            let t = float_of_int i *. cell in
            if t >= p.Job.start && t < Job.slot_end p then '#' else ' ')
      in
      Printf.printf "  %-6s|%s| %d nodes x %.0fs\n" p.Job.job.Job.name line
        p.Job.job.Job.nodes_required p.Job.job.Job.walltime)
    s.Rms.placements

let () =
  (* 1st job: wide and short; 2nd and 3rd: narrow and long; 4th: wide —
     the classic backfilling scenario *)
  let mk id name nodes walltime =
    Job.make ~id ~name ~nodes_required:nodes ~walltime ~actual:walltime ()
  in
  let jobs =
    [ mk 0 "job1" 6 120.; mk 1 "job2" 6 60.; mk 2 "job3" 4 60.; mk 3 "job4" 4 60. ]
  in
  let capacity = 10 in

  let strict = Rms.fcfs ~capacity jobs in
  Printf.printf "strict FCFS (makespan %.0fs):\n" strict.Rms.makespan;
  gantt ~capacity strict;

  let easy = Rms.easy ~capacity jobs in
  Printf.printf "\nFCFS + EASY backfilling (makespan %.0fs):\n" easy.Rms.makespan;
  gantt ~capacity easy;

  let bound = Rms.preemptive_lower_bound ~capacity jobs in
  Printf.printf
    "\nwith preemption (cluster-wide context switches), the ideal\n\
     makespan bound is %.0fs — jobs can run partially whenever room\n\
     exists and be suspended when a reservation needs the nodes.\n"
    bound
