(* Making room with a minimal cluster-wide context switch: a newcomer
   vjob only fits if the running VMs are consolidated. The plain FFD
   heuristic repacks the whole cluster; the CP optimiser finds the
   single cheapest migration.

     dune exec examples/consolidation.exe *)

open Entropy_core

let pp_hosting config =
  Array.iter
    (fun node ->
      let vms = Configuration.running_on config (Node.id node) in
      Printf.printf "  %s: %s\n" (Node.name node)
        (String.concat " "
           (List.map (fun id -> Vm.name (Configuration.vm config id)) vms)))
    (Configuration.nodes config)

let () =
  let nodes =
    Array.init 4 (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "node%d" i))
  in
  (* three long-running 1792 MB services, one per node; node3 is free *)
  let vms =
    [|
      Vm.make ~id:0 ~name:"svc0" ~memory_mb:1792;
      Vm.make ~id:1 ~name:"svc1" ~memory_mb:1792;
      Vm.make ~id:2 ~name:"svc2" ~memory_mb:1792;
      Vm.make ~id:3 ~name:"new0" ~memory_mb:2048;
      Vm.make ~id:4 ~name:"new1" ~memory_mb:2048;
    |]
  in
  let services =
    List.init 3 (fun j ->
        Vjob.make ~id:j ~name:(Printf.sprintf "svc%d" j) ~vms:[ j ]
          ~submit_time:(float_of_int j) ())
  in
  let newcomer = Vjob.make ~id:3 ~name:"newcomer" ~vms:[ 3; 4 ] ~submit_time:10. () in
  let config =
    List.fold_left
      (fun cfg (vm, node) -> Configuration.set_state cfg vm (Configuration.Running node))
      (Configuration.make ~nodes ~vms)
      [ (0, 0); (1, 1); (2, 2) ]
  in
  let demand = Demand.of_fn ~vm_count:5 (function 3 | 4 -> 100 | _ -> 50) in
  Printf.printf "initial hosting (newcomer waiting, needs 2 x 2048 MB):\n";
  pp_hosting config;
  Printf.printf
    "\neach node has %d MB free: the 2048 MB VMs fit nowhere without\n\
     consolidating two services onto one node first.\n\n"
    (3584 - 1792);

  let queue = services @ [ newcomer ] in
  let observation = { Decision.config; demand; queue; finished = [] } in

  let naive = (Decision.ffd_only ()).Decision.decide observation in
  let optimised = (Decision.consolidation ()).Decision.decide observation in

  Printf.printf "naive FFD repacking : %2d actions, plan cost %5d\n"
    (Plan.action_count naive.Optimizer.plan)
    naive.Optimizer.cost;
  Printf.printf "CP-optimised switch : %2d actions, plan cost %5d\n\n"
    (Plan.action_count optimised.Optimizer.plan)
    optimised.Optimizer.cost;
  Fmt.pr "optimised plan:@.%a@." Plan.pp optimised.Optimizer.plan;

  let final =
    List.fold_left
      (fun cfg pool -> List.fold_left Action.apply cfg pool)
      config
      (Plan.pools optimised.Optimizer.plan)
  in
  Printf.printf "\nhosting after the cluster-wide context switch:\n";
  pp_hosting final;
  Printf.printf "final configuration viable: %b\n"
    (Configuration.is_viable final demand)
