(* Quickstart: model a small cluster, let the decision module pick a
   viable target and inspect the reconfiguration plan.

     dune exec examples/quickstart.exe *)

open Entropy_core

let () =
  (* a cluster of three 2-core, 3.5 GB nodes *)
  let nodes =
    Array.init 3 (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "node%d" i))
  in
  (* two vjobs: a 2-VM computation and a 1-VM service *)
  let vms =
    [|
      Vm.make ~id:0 ~name:"mpi-0" ~memory_mb:1024;
      Vm.make ~id:1 ~name:"mpi-1" ~memory_mb:1024;
      Vm.make ~id:2 ~name:"web" ~memory_mb:512;
    |]
  in
  let mpi = Vjob.make ~id:0 ~name:"mpi" ~vms:[ 0; 1 ] ~submit_time:0. () in
  let web = Vjob.make ~id:1 ~name:"web" ~vms:[ 2 ] ~submit_time:1. () in
  (* everything starts waiting *)
  let config = Configuration.make ~nodes ~vms in
  (* the monitoring service reports CPU demands (hundredths of a core):
     the MPI ranks compute flat out, the web VM is mostly idle *)
  let demand = Demand.of_fn ~vm_count:3 (function 2 -> 10 | _ -> 100) in

  (* one iteration of the decision module *)
  let decision = Decision.consolidation () in
  let observation =
    { Decision.config; demand; queue = [ mpi; web ]; finished = [] }
  in
  let result = decision.Decision.decide observation in

  Fmt.pr "target configuration:@.  %a@." Configuration.pp
    result.Optimizer.target;
  Fmt.pr "plan (cost %d):@.%a@." result.Optimizer.cost Plan.pp
    result.Optimizer.plan;

  (* apply the plan pool by pool, checking viability along the way *)
  let final =
    List.fold_left
      (fun cfg pool -> List.fold_left Action.apply cfg pool)
      config
      (Plan.pools result.Optimizer.plan)
  in
  Fmt.pr "final configuration viable: %b@." (Configuration.is_viable final demand);
  Fmt.pr "mpi state: %a, web state: %a@."
    (Fmt.option Lifecycle.pp_state)
    (Configuration.vjob_state final mpi)
    (Fmt.option Lifecycle.pp_state)
    (Configuration.vjob_state final web)
