(* Placement rules in action (the paper's section 7 future work,
   implemented here): keep the replicas of a service on distinct nodes
   (spread), pin a licensed database to its nodes (fence), drain a node
   for maintenance (ban) — and let the optimiser find the cheapest
   cluster-wide context switch that satisfies everything, with its
   estimated timing.

     dune exec examples/high_availability.exe *)

open Entropy_core

let () =
  let nodes =
    Array.init 4 (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "node%d" i))
  in
  let vms =
    [|
      Vm.make ~id:0 ~name:"web-a" ~memory_mb:1024;
      Vm.make ~id:1 ~name:"web-b" ~memory_mb:1024;
      Vm.make ~id:2 ~name:"db" ~memory_mb:2048;
      Vm.make ~id:3 ~name:"batch" ~memory_mb:1024;
    |]
  in
  let vjobs =
    [
      Vjob.make ~id:0 ~name:"web" ~vms:[ 0; 1 ] ~submit_time:0. ();
      Vjob.make ~id:1 ~name:"db" ~vms:[ 2 ] ~submit_time:1. ();
      Vjob.make ~id:2 ~name:"batch" ~vms:[ 3 ] ~submit_time:2. ();
    ]
  in
  (* everything currently crammed on node0/node1; node3 must be drained *)
  let config =
    List.fold_left
      (fun c (vm, node) -> Configuration.set_state c vm (Configuration.Running node))
      (Configuration.make ~nodes ~vms)
      [ (0, 0); (1, 0); (2, 1); (3, 3) ]
  in
  let demand = Demand.of_fn ~vm_count:4 (function 2 -> 100 | _ -> 50) in
  let rules =
    [
      Placement_rules.Spread [ 0; 1 ];       (* HA: replicas apart *)
      Placement_rules.Fence ([ 2 ], [ 1; 2 ]); (* licensing *)
      Placement_rules.Ban ([ 0; 1; 2; 3 ], [ 3 ]); (* drain node3 *)
    ]
  in
  Printf.printf "violated before the switch:\n";
  List.iter
    (fun r -> Fmt.pr "  %a@." Placement_rules.pp r)
    (Placement_rules.violated config rules);

  let decision = Decision.consolidation ~cp_timeout:1.0 ~rules () in
  let obs = { Decision.config; demand; queue = vjobs; finished = [] } in
  let result = decision.Decision.decide obs in

  Fmt.pr "@.plan (cost %d):@.%a@." result.Optimizer.cost Plan.pp
    result.Optimizer.plan;
  Fmt.pr "@.estimated timing:@.%a@." Schedule.pp
    (Schedule.of_plan config result.Optimizer.plan);

  let final =
    List.fold_left
      (fun cfg pool -> List.fold_left Action.apply cfg pool)
      config
      (Plan.pools result.Optimizer.plan)
  in
  Printf.printf "all rules hold afterwards: %b\n"
    (Placement_rules.check_all final rules);
  Printf.printf "node3 drained: %b\n" (Configuration.running_on final 3 = [])
