(* Overload recovery end to end on the simulator: more full-CPU vjobs
   than the cluster has processing units. Entropy suspends the youngest
   vjobs, resumes them as the others finish, and everything completes —
   exactly the situation a migration-only consolidation manager cannot
   handle (related-work discussion of the paper).

     dune exec examples/overload.exe *)

open Entropy_core
module Nasgrid = Vworkload.Nasgrid
module Trace = Vworkload.Trace

let () =
  (* 4 nodes = 8 processing units; 3 vjobs x 4 always-computing VMs = 12
     full CPUs demanded: at most 2 vjobs can run at once *)
  let nodes =
    Array.init 4 (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "node%d" i))
  in
  let traces =
    List.init 3 (fun i -> Trace.make ~seed:i ~vm_count:4 Nasgrid.Ed Nasgrid.W)
  in
  let result = Vsim.Runner.run_entropy ~cp_timeout:0.3 ~nodes ~traces () in

  Printf.printf "all %d vjobs completed in %.1f min:\n"
    (List.length result.Vsim.Runner.completions)
    (result.Vsim.Runner.makespan /. 60.);
  List.iter
    (fun (vj, t) -> Printf.printf "  %-12s done at %5.0f s\n" (Vjob.name vj) t)
    result.Vsim.Runner.completions;

  Printf.printf "\ncluster-wide context switches:\n";
  List.iter
    (fun s -> Fmt.pr "  %a@." Vsim.Executor.pp_record s)
    result.Vsim.Runner.switches;

  let suspends =
    List.fold_left
      (fun acc (s : Vsim.Executor.record) -> acc + s.Vsim.Executor.suspends)
      0 result.Vsim.Runner.switches
  in
  Printf.printf
    "\n%d suspends were needed to fix the overload; without the\n\
     suspend/resume transitions of the vjob life cycle, the third vjob\n\
     could never have been admitted.\n"
    suspends
