bin/experiments.mli:
