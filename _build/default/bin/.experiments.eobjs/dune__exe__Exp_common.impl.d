bin/exp_common.ml: Array Batch Entropy_core List Node Printf String Vsim Vworkload
