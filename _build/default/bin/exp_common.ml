(* Shared setup for the experiment drivers: the paper's section 5.2
   testbed (11 two-core nodes) and its workload (8 vjobs of 9 VMs
   running NGB-like applications), plus small table printers. *)

open Entropy_core
module Trace = Vworkload.Trace
module Nasgrid = Vworkload.Nasgrid

let testbed_nodes ?(count = 11) () =
  Array.init count (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))

(* The section 5.2 workload: 8 vjobs x 9 VMs, submitted together, mixing
   the four NGB families. [cls] scales the work (W by default keeps the
   simulation fast; the shape is class-independent). *)
let section52_traces ?(count = 8) ?(cls = Nasgrid.W) () =
  List.init count (fun i ->
      let family = List.nth Nasgrid.families (i mod 4) in
      Trace.make ~seed:i ~vm_count:9 family cls)

let run_entropy ?(cls = Nasgrid.W) ?(cp_timeout = 1.0) () =
  let nodes = testbed_nodes () in
  let traces = section52_traces ~cls () in
  Vsim.Runner.run_entropy ~cp_timeout ~nodes ~traces ()

let run_static ?(cls = Nasgrid.W) () =
  let traces = section52_traces ~cls () in
  Batch.Static_alloc.run ~capacity:11 ~node_cpu:200 ~node_mem:3584 traces

(* -- printing -------------------------------------------------------------- *)

let rule () = print_endline (String.make 78 '-')

let header title =
  rule ();
  Printf.printf "%s\n" title;
  rule ()

let minutes s = s /. 60.
