let () =
  let module J = Entropy_journal.Journal in
  let module R = Entropy_journal.Record in
  let path = Filename.temp_file "torn" ".wal" in
  Sys.remove path;
  let j = J.open_file path in
  J.append j (R.Switch_end { switch = 0; at_s = 1.; aborted = false });
  J.close j;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"crc\":1,\"rec\":\"torn";
  close_out oc;
  let recs, dropped = J.load path in
  Printf.printf "after crash: %d records, %d dropped\n" (List.length recs) dropped;
  let j2 = J.open_file path in
  J.append j2 (R.Switch_end { switch = 1; at_s = 2.; aborted = false });
  J.append j2 (R.Switch_end { switch = 2; at_s = 3.; aborted = false });
  J.close j2;
  let recs2, dropped2 = J.load path in
  Printf.printf "after resume appends: %d records, %d dropped\n"
    (List.length recs2) dropped2
