(* Tests for the switch flight recorder (lib/flight): timeline
   reconstruction from journal records, critical-path extraction, and
   the exhaustive makespan attribution — including the adversarial
   journals the fold must degrade gracefully on (torn tails, kills
   mid-pool, retry-then-success, node crash + salvage). The load-bearing
   invariant throughout: attribution buckets and critical-path span sum
   to the observed makespan exactly, whatever the journal looks like. *)

open Entropy_core
module Record = Entropy_journal.Record
module Journal = Entropy_journal.Journal
module Injector = Entropy_fault.Injector
module Supervisor = Entropy_fault.Supervisor
module Timeline = Entropy_flight.Timeline
module Critical = Entropy_flight.Critical
module Report = Entropy_flight.Report
module R = Vsim.Runner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tolerance makespan = 1e-6 *. Float.max 1. makespan

let check_exact (tl, c) =
  let m = Timeline.makespan tl in
  let tol = tolerance m in
  check_bool
    (Printf.sprintf "switch %d exact flag" tl.Timeline.switch)
    true c.Critical.exact;
  if Float.abs (c.Critical.bucket_sum_s -. m) > tol then
    Alcotest.failf "switch %d buckets sum %.9f, makespan %.9f"
      tl.Timeline.switch c.Critical.bucket_sum_s m;
  if Float.abs (c.Critical.path_span_s -. m) > tol then
    Alcotest.failf "switch %d path span %.9f, makespan %.9f"
      tl.Timeline.switch c.Critical.path_span_s m

(* the CI kill/resume smoke instance: 16 VMs / 5 nodes, seed 42 *)
let instance =
  lazy
    (let { Vworkload.Generator.config; demand = _; vjobs } =
       Vworkload.Generator.generate
         {
           Vworkload.Generator.default_spec with
           node_count = 5;
           vm_target = 16;
           seed = 42;
         }
     in
     let programs vm =
       [
         Vworkload.Program.Compute
           (240. +. float_of_int (((37 * vm) + 42) mod 480));
       ]
     in
     (config, vjobs, programs))

let run_journaled ?injector ?policy ?kill_at () =
  let config, vjobs, programs = Lazy.force instance in
  let journal = Journal.mem () in
  let result =
    R.run_custom ~cp_timeout:0.1 ~max_time:1e6 ?injector ?policy ?kill_at
      ~journal ~config ~vjobs ~programs ()
  in
  (Journal.records journal, result)

let fault_free = lazy (run_journaled ())

(* -- fault-free run: every switch healthy, buckets exhaustive ------------- *)

let test_fault_free_exact () =
  let records, _ = Lazy.force fault_free in
  let analyses = Report.analyze_records records in
  check_bool "some switches" true (analyses <> []);
  List.iter
    (fun ((tl, c) as a) ->
      check_exact a;
      check_bool "healthy" true (Report.healthy a);
      let executed =
        Array.exists Timeline.executed tl.Timeline.actions
      in
      if executed then
        check_bool "non-empty path" true (c.Critical.path <> []))
    analyses

(* -- retry-then-success: supervised retries land in the retry bucket ------ *)

let test_retry_then_success () =
  let injector =
    Injector.create ~seed:42 [ Injector.Fail_rate { kind = None; rate = 0.3 } ]
  in
  let policy = Supervisor.make_policy ~timeout_factor:3. ~max_retries:2 () in
  let records, _ = run_journaled ~injector ~policy () in
  let analyses = Report.analyze_records records in
  check_bool "some switches" true (analyses <> []);
  List.iter check_exact analyses;
  let retried (tl, _) =
    Array.exists
      (fun a -> List.length a.Timeline.attempts > 1)
      tl.Timeline.actions
  in
  check_bool "some action was retried" true (List.exists retried analyses);
  let total_retry =
    List.fold_left
      (fun acc (_, c) -> acc +. c.Critical.buckets.Critical.retry_s)
      0. analyses
  in
  check_bool "retry bucket charged" true (total_retry > 0.)

(* -- kill mid-switch: the cut timeline still attributes exactly ----------- *)

let test_kill_mid_switch () =
  (* the first switch starts at ~0.5 s and runs for several seconds, so
     a kill at 3 s is guaranteed to cut it mid-flight *)
  let records, result = run_journaled ~kill_at:3. () in
  check_bool "run was killed" true result.R.killed;
  let analyses = Report.analyze_records records in
  check_int "one in-flight switch" 1 (List.length analyses);
  let tl, c = List.hd analyses in
  check_bool "no Switch_end" true (tl.Timeline.end_at = None);
  check_exact (tl, c);
  check_bool "in-flight actions remain" true
    (Array.exists
       (fun a -> a.Timeline.attempts <> [] && a.Timeline.terminal = None)
       tl.Timeline.actions)

(* -- torn tails: every prefix of the journal analyzes exactly ------------- *)

let test_torn_tail_prefixes () =
  let records, _ = Lazy.force fault_free in
  let n = List.length records in
  for keep = 1 to n do
    let prefix = List.filteri (fun i _ -> i < keep) records in
    let analyses = Report.analyze_records prefix in
    List.iter check_exact analyses
  done

(* -- node crash + salvage: repairs detected and charged to recovery ------- *)

let test_node_crash_salvage () =
  let injector =
    Injector.create ~seed:42
      [
        Injector.Fail_rate { kind = None; rate = 0.2 };
        Injector.Crash_node { node = 1; at_s = 50. };
      ]
  in
  let policy = Supervisor.make_policy ~timeout_factor:3. ~max_retries:1 () in
  let records, result = run_journaled ~injector ~policy () in
  check_bool "run executed repairs" true (result.R.repairs <> []);
  let analyses = Report.analyze_records records in
  List.iter check_exact analyses;
  let timelines = List.map fst analyses in
  let detected = Critical.repair_switches timelines in
  (* the heuristic must find every repair the runner actually executed
     (the runner records the journal switch id each repair ran under) *)
  List.iter
    (fun rr ->
      check_bool
        (Printf.sprintf "repair switch %d detected" rr.R.switch)
        true
        (List.mem rr.R.switch detected))
    result.R.repairs;
  let buckets, total = Critical.aggregate analyses in
  check_bool "recovery charged" true (buckets.Critical.recovery_s > 0.);
  let sum = Critical.bucket_total buckets in
  if Float.abs (sum -. total) > tolerance total then
    Alcotest.failf "episode buckets sum %.9f, total %.9f" sum total

(* -- what-if and estimate drift ------------------------------------------- *)

let test_what_if_and_drift () =
  let records, _ = Lazy.force fault_free in
  let analyses = Report.analyze_records records in
  let tl, c =
    (* largest switch: most interesting what-if surface *)
    List.fold_left
      (fun ((atl, _) as a) ((btl, _) as b) ->
        if Timeline.makespan btl > Timeline.makespan atl then b else a)
      (List.hd analyses) (List.tl analyses)
  in
  let m = Timeline.makespan tl in
  let tol = tolerance m in
  check_bool "what-if offered" true (c.Critical.what_if <> []);
  List.iter
    (fun (i, m') ->
      check_bool "freeing cannot slow the switch" true (m' <= m +. tol);
      Alcotest.(check (float 1e-9))
        "what_if_free agrees" m'
        (Critical.what_if_free tl i))
    c.Critical.what_if;
  check_bool "no-barrier replay cannot slow" true
    (c.Critical.no_barrier_makespan_s <= m +. tol);
  check_bool "drift recorded" true (c.Critical.drift <> []);
  check_bool "cost cross-check agrees" true
    (c.Critical.est_cost_mb = c.Critical.rederived_cost_mb)

(* -- hand-built journal with known numbers -------------------------------- *)

let testbed_nodes n =
  Array.init n (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))

let mk_config ~nodes ~vm_count states =
  let vms =
    Array.init vm_count (fun i ->
        Vm.make ~id:i ~name:(Printf.sprintf "vm%d" i) ~memory_mb:512)
  in
  Configuration.with_states
    (Configuration.make ~nodes:(testbed_nodes nodes) ~vms)
    (Array.of_list states)

(* vm0 migrates in pool 0 (1 s dispatch lag, 10 s of work); pool 0
   commits at 11 s; vm1 boots in pool 1 after a 1 s slot wait and 1 s of
   work. By construction: barrier 11 s, work+contention 2 s, total 13. *)
let tiny_records =
  let source =
    mk_config ~nodes:2 ~vm_count:2 Configuration.[ Running 0; Waiting ]
  in
  let target =
    mk_config ~nodes:2 ~vm_count:2 Configuration.[ Running 1; Running 0 ]
  in
  let migrate = Action.Migrate { vm = 0; src = 0; dst = 1 } in
  let run = Action.Run { vm = 1; dst = 0 } in
  let plan = Plan.make [ [ migrate ]; [ run ] ] in
  Record.
    [
      Switch_begin
        {
          switch = 0;
          at_s = 0.;
          source;
          target;
          plan;
          demand = Demand.of_fn ~vm_count:2 (fun _ -> 10);
          seed = None;
        };
      Action_started { switch = 0; pool = 0; attempt = 1; at_s = 1.; action = migrate };
      Action_done { switch = 0; pool = 0; at_s = 11.; action = migrate };
      Pool_committed { switch = 0; pool = 0; at_s = 11. };
      Action_started { switch = 0; pool = 1; attempt = 1; at_s = 12.; action = run };
      Action_done { switch = 0; pool = 1; at_s = 13.; action = run };
      Switch_end { switch = 0; at_s = 13.; aborted = false };
    ]

let test_hand_built_numbers () =
  match Report.analyze_records tiny_records with
  | [ ((tl, c) as a) ] ->
    Alcotest.(check (float 1e-9)) "makespan" 13. (Timeline.makespan tl);
    check_exact a;
    let b = c.Critical.buckets in
    (* the boot was ready at t=0 and blocked on pool 0 until 11 s *)
    Alcotest.(check (float 1e-9)) "barrier" 11. b.Critical.barrier_s;
    Alcotest.(check (float 1e-9)) "retry" 0. b.Critical.retry_s;
    Alcotest.(check (float 1e-9)) "dependency" 0. b.Critical.dependency_s;
    Alcotest.(check (float 1e-9)) "recovery" 0. b.Critical.recovery_s;
    Alcotest.(check (float 1e-9))
      "work + contention" 2.
      (b.Critical.work_s +. b.Critical.contention_s);
    check_int "path length" 2 (List.length c.Critical.path);
    (match c.Critical.path with
    | [ first; last ] ->
      check_bool "path starts at the switch" true
        (first.Critical.edge = Critical.Start);
      check_bool "boot crossed the barrier" true
        (last.Critical.edge = Critical.Barrier 0)
    | _ -> Alcotest.fail "expected a 2-step path");
    (* removing the barrier lets the boot overlap the migration *)
    check_bool "no-barrier replay shrinks" true
      (c.Critical.no_barrier_makespan_s < 13.)
  | l -> Alcotest.failf "expected 1 analysis, got %d" (List.length l)

let () =
  Alcotest.run "entropy_flight"
    [
      ( "timeline",
        [
          Alcotest.test_case "fault-free exact" `Quick test_fault_free_exact;
          Alcotest.test_case "torn-tail prefixes" `Slow
            test_torn_tail_prefixes;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "retry then success" `Quick
            test_retry_then_success;
          Alcotest.test_case "kill mid-switch" `Quick test_kill_mid_switch;
          Alcotest.test_case "node crash + salvage" `Quick
            test_node_crash_salvage;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "what-if + drift" `Quick test_what_if_and_drift;
          Alcotest.test_case "hand-built numbers" `Quick
            test_hand_built_numbers;
        ] );
    ]
