(* Tests for the Entropy core: model, cost model (Table 1),
   reconfiguration graph, planner (pools, cycles, bypass migrations),
   vjob consistency, FFD, RJSP and the CP optimiser. *)

open Entropy_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- fixtures ------------------------------------------------------------- *)

let mk_nodes ?(cpu = 200) ?(mem = 3584) n =
  Array.init n (fun i ->
      Node.make ~id:i ~name:(Printf.sprintf "N%d" i) ~cpu_capacity:cpu
        ~memory_mb:mem)

let mk_vms specs =
  (* specs: memory_mb list *)
  Array.of_list
    (List.mapi
       (fun i m -> Vm.make ~id:i ~name:(Printf.sprintf "vm%d" i) ~memory_mb:m)
       specs)

(* the Figure 7 scenario: two nodes, VM2 must suspend before VM1 can
   migrate to its node *)
let fig7 () =
  let nodes = mk_nodes ~cpu:200 ~mem:2048 2 in
  let vms = mk_vms [ 1024; 1536 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let demand = Demand.uniform ~vm_count:2 50 in
  (config, demand)

(* the Figure 8 scenario: two 2048 MB nodes each hosting a 1536 MB VM
   that must swap: inter-dependent migrations requiring a pivot *)
let fig8 () =
  let nodes = mk_nodes ~cpu:200 ~mem:2048 3 in
  let vms = mk_vms [ 1536; 1536 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let demand = Demand.uniform ~vm_count:2 50 in
  (config, demand)

(* -- model ---------------------------------------------------------------- *)

let test_vm_validation () =
  Alcotest.check_raises "zero memory rejected"
    (Invalid_argument "Vm.make: memory_mb must be positive") (fun () ->
      ignore (Vm.make ~id:0 ~name:"x" ~memory_mb:0))

let test_node_testbed () =
  let n = Node.testbed ~id:0 ~name:"n" in
  check_int "2 cores" 200 (Node.cpu_capacity n);
  check_int "4GB minus dom0" 3584 (Node.memory_mb n)

let test_vjob_validation () =
  Alcotest.check_raises "empty vjob rejected"
    (Invalid_argument "Vjob.make: a vjob needs at least one VM") (fun () ->
      ignore (Vjob.make ~id:0 ~name:"j" ~vms:[] ()));
  Alcotest.check_raises "duplicate VM rejected"
    (Invalid_argument "Vjob.make: duplicate VM in vjob") (fun () ->
      ignore (Vjob.make ~id:0 ~name:"j" ~vms:[ 1; 1 ] ()))

let test_vjob_fcfs_order () =
  let a = Vjob.make ~id:0 ~name:"a" ~vms:[ 0 ] ~submit_time:5. () in
  let b = Vjob.make ~id:1 ~name:"b" ~vms:[ 1 ] ~submit_time:3. () in
  let c = Vjob.make ~id:2 ~name:"c" ~vms:[ 2 ] ~priority:(-1) ~submit_time:9. () in
  let sorted = List.sort Vjob.compare_fcfs [ a; b; c ] in
  Alcotest.(check (list string))
    "priority then time"
    [ "c"; "b"; "a" ]
    (List.map Vjob.name sorted)

let test_lifecycle_transitions () =
  let open Lifecycle in
  check_bool "run from waiting" true (can Waiting Run);
  check_bool "suspend from running" true (can Running Suspend);
  check_bool "resume from sleeping" true (can Sleeping Resume);
  check_bool "stop from running" true (can Running Stop);
  check_bool "migrate keeps running" true (next Running Migrate = Some Running);
  check_bool "no run from running" false (can Running Run);
  check_bool "no resume from waiting" false (can Waiting Resume);
  check_bool "nothing from terminated" false
    (List.exists (can Terminated) [ Run; Suspend; Resume; Stop; Migrate ])

let test_lifecycle_ready () =
  let open Lifecycle in
  check_bool "waiting ready" true (is_ready Waiting);
  check_bool "sleeping ready" true (is_ready Sleeping);
  check_bool "running not ready" false (is_ready Running);
  check_bool "terminated not ready" false (is_ready Terminated)

let test_lifecycle_between () =
  let open Lifecycle in
  check_bool "waiting->running is run" true (between Waiting Running = Some Run);
  check_bool "running->sleeping is suspend" true
    (between Running Sleeping = Some Suspend);
  check_bool "same state no transition" true (between Running Running = None)

(* -- configuration -------------------------------------------------------- *)

let test_config_initial_waiting () =
  let config =
    Configuration.make ~nodes:(mk_nodes 2) ~vms:(mk_vms [ 512; 512 ])
  in
  check_bool "all waiting" true
    (Configuration.state config 0 = Configuration.Waiting
    && Configuration.state config 1 = Configuration.Waiting)

let test_config_dense_ids_checked () =
  let bad_nodes =
    [| Node.make ~id:7 ~name:"n" ~cpu_capacity:100 ~memory_mb:1024 |]
  in
  Alcotest.check_raises "non dense ids"
    (Invalid_argument "Configuration.make: node ids must equal their index")
    (fun () -> ignore (Configuration.make ~nodes:bad_nodes ~vms:[||]))

let test_config_loads_and_viability () =
  let nodes = mk_nodes ~cpu:100 ~mem:2048 2 in
  let vms = mk_vms [ 1024; 1024; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 0) in
  let demand = Demand.of_fn ~vm_count:3 (fun _ -> 40) in
  check_int "mem load" 2048 (Configuration.mem_load config 0);
  check_int "cpu load" 80 (Configuration.cpu_load config demand 0);
  check_bool "viable" true (Configuration.is_viable config demand);
  (* a third VM on node 0 overloads its memory *)
  let config = Configuration.set_state config 2 (Configuration.Running 0) in
  check_bool "not viable" false (Configuration.is_viable config demand);
  Alcotest.(check (list int))
    "overloaded nodes" [ 0 ]
    (Configuration.overloaded_nodes config demand)

let test_config_cpu_overload () =
  (* Figure 5: two full-CPU VMs on a single-CPU node *)
  let nodes = mk_nodes ~cpu:100 ~mem:4096 3 in
  let vms = mk_vms [ 512; 512; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 1 (Configuration.Running 0) in
  let config = Configuration.set_state config 2 (Configuration.Running 0) in
  let demand = Demand.of_fn ~vm_count:3 (fun _ -> 100) in
  check_bool "two busy VMs on one CPU: non-viable" false
    (Configuration.is_viable config demand);
  let config = Configuration.set_state config 2 (Configuration.Running 1) in
  check_bool "spread: viable" true (Configuration.is_viable config demand)

let test_config_sleeping_consumes_nothing () =
  let nodes = mk_nodes ~cpu:100 ~mem:1024 1 in
  let vms = mk_vms [ 2048 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Sleeping 0) in
  let demand = Demand.uniform ~vm_count:1 100 in
  check_int "no mem load" 0 (Configuration.mem_load config 0);
  check_bool "viable" true (Configuration.is_viable config demand)

let test_config_vjob_state () =
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 512; 512 ] in
  let vjob = Vjob.make ~id:0 ~name:"j" ~vms:[ 0; 1 ] () in
  let config = Configuration.make ~nodes ~vms in
  Alcotest.(check (option string))
    "waiting" (Some "waiting")
    (Option.map Lifecycle.state_to_string (Configuration.vjob_state config vjob));
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  Alcotest.(check (option string))
    "inconsistent" None
    (Option.map Lifecycle.state_to_string (Configuration.vjob_state config vjob));
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  Alcotest.(check (option string))
    "running" (Some "running")
    (Option.map Lifecycle.state_to_string (Configuration.vjob_state config vjob))

(* -- actions -------------------------------------------------------------- *)

let test_action_apply_run () =
  let config =
    Configuration.make ~nodes:(mk_nodes 2) ~vms:(mk_vms [ 512 ])
  in
  let config' = Action.apply config (Action.Run { vm = 0; dst = 1 }) in
  check_bool "running" true
    (Configuration.state config' 0 = Configuration.Running 1);
  check_bool "original untouched" true
    (Configuration.state config 0 = Configuration.Waiting)

let test_action_apply_full_cycle () =
  let config =
    Configuration.make ~nodes:(mk_nodes 3) ~vms:(mk_vms [ 512 ])
  in
  let config = Action.apply config (Action.Run { vm = 0; dst = 0 }) in
  let config = Action.apply config (Action.Migrate { vm = 0; src = 0; dst = 1 }) in
  let config = Action.apply config (Action.Suspend { vm = 0; host = 1 }) in
  check_bool "image on host" true
    (Configuration.state config 0 = Configuration.Sleeping 1);
  let config = Action.apply config (Action.Resume { vm = 0; src = 1; dst = 2 }) in
  check_bool "resumed remote" true
    (Configuration.state config 0 = Configuration.Running 2);
  let config = Action.apply config (Action.Stop { vm = 0; host = 2 }) in
  check_bool "terminated" true
    (Configuration.state config 0 = Configuration.Terminated)

let test_action_apply_invalid () =
  let config =
    Configuration.make ~nodes:(mk_nodes 2) ~vms:(mk_vms [ 512 ])
  in
  check_bool "resume from waiting rejected" true
    (try
       ignore (Action.apply config (Action.Resume { vm = 0; src = 0; dst = 1 }));
       false
     with Action.Invalid _ -> true)

let test_action_feasibility () =
  let nodes = mk_nodes ~cpu:100 ~mem:1024 2 in
  let vms = mk_vms [ 1024; 768 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let demand = Demand.uniform ~vm_count:2 10 in
  check_bool "run on full node infeasible" false
    (Action.feasible config demand (Action.Run { vm = 1; dst = 0 }));
  check_bool "run on free node feasible" true
    (Action.feasible config demand (Action.Run { vm = 1; dst = 1 }));
  check_bool "suspend always feasible" true
    (Action.feasible config demand (Action.Suspend { vm = 0; host = 0 }))

let test_action_is_local () =
  check_bool "local resume" true
    (Action.is_local (Action.Resume { vm = 0; src = 1; dst = 1 }));
  check_bool "remote resume" false
    (Action.is_local (Action.Resume { vm = 0; src = 1; dst = 2 }));
  check_bool "migration remote" false
    (Action.is_local (Action.Migrate { vm = 0; src = 0; dst = 1 }))

(* -- cost (Table 1) ------------------------------------------------------- *)

let test_cost_table1 () =
  let config =
    Configuration.make ~nodes:(mk_nodes 3) ~vms:(mk_vms [ 512; 2048 ])
  in
  check_int "run free" 0 (Cost.action config (Action.Run { vm = 0; dst = 0 }));
  check_int "stop free" 0 (Cost.action config (Action.Stop { vm = 0; host = 0 }));
  check_int "migrate = Dm" 512
    (Cost.action config (Action.Migrate { vm = 0; src = 0; dst = 1 }));
  check_int "suspend = Dm" 2048
    (Cost.action config (Action.Suspend { vm = 1; host = 0 }));
  check_int "local resume = Dm" 2048
    (Cost.action config (Action.Resume { vm = 1; src = 0; dst = 0 }));
  check_int "remote resume = 2Dm" 4096
    (Cost.action config (Action.Resume { vm = 1; src = 0; dst = 1 }))

let test_cost_pool_is_max () =
  let config =
    Configuration.make ~nodes:(mk_nodes 3) ~vms:(mk_vms [ 512; 2048 ])
  in
  let pool =
    [
      Action.Migrate { vm = 0; src = 0; dst = 1 };
      Action.Suspend { vm = 1; host = 0 };
    ]
  in
  check_int "pool = max" 2048 (Cost.pool config pool)

let test_cost_plan_sequencing () =
  (* Figure 9 style: pool 1 = suspend(2048) + migrate(512);
     pool 2 = resume(local 1024). Pool1 actions cost their local costs;
     the pool-2 action also pays pool 1's cost (2048). *)
  let config =
    Configuration.make ~nodes:(mk_nodes 3) ~vms:(mk_vms [ 512; 2048; 1024 ])
  in
  let pools =
    [
      [
        Action.Suspend { vm = 1; host = 0 };
        Action.Migrate { vm = 0; src = 0; dst = 1 };
      ];
      [ Action.Resume { vm = 2; src = 2; dst = 2 } ];
    ]
  in
  check_int "total" (2048 + 512 + (2048 + 1024)) (Cost.plan config pools)

let test_cost_plan_empty () =
  let config = Configuration.make ~nodes:(mk_nodes 1) ~vms:(mk_vms [ 512 ]) in
  check_int "empty plan free" 0 (Cost.plan config [])

let test_cost_lower_bound () =
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 512; 1024 ] in
  let current = Configuration.make ~nodes ~vms in
  let current = Configuration.set_state current 0 (Configuration.Running 0) in
  let current = Configuration.set_state current 1 (Configuration.Sleeping 1) in
  let target = Configuration.with_states current
      [| Configuration.Running 1; Configuration.Running 2 |] in
  (* VM0 migrates (512); VM1 resumes remotely (2048) *)
  check_int "lb" (512 + 2048) (Cost.lower_bound ~current ~target)

(* -- rgraph --------------------------------------------------------------- *)

let test_rgraph_actions () =
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 512; 512; 512; 512 ] in
  let current = Configuration.make ~nodes ~vms in
  let current = Configuration.set_state current 0 (Configuration.Running 0) in
  let current = Configuration.set_state current 1 (Configuration.Running 1) in
  let current = Configuration.set_state current 2 (Configuration.Sleeping 2) in
  let target =
    Configuration.with_states current
      [|
        Configuration.Running 1;     (* migrate *)
        Configuration.Sleeping 1;    (* suspend *)
        Configuration.Running 2;     (* local resume *)
        Configuration.Running 0;     (* run *)
      |]
  in
  let actions = Rgraph.actions ~current ~target in
  check_int "4 actions" 4 (List.length actions);
  check_bool "migrate present" true
    (List.mem (Action.Migrate { vm = 0; src = 0; dst = 1 }) actions);
  check_bool "suspend present" true
    (List.mem (Action.Suspend { vm = 1; host = 1 }) actions);
  check_bool "resume present" true
    (List.mem (Action.Resume { vm = 2; src = 2; dst = 2 }) actions);
  check_bool "run present" true
    (List.mem (Action.Run { vm = 3; dst = 0 }) actions)

let test_rgraph_no_action_when_equal () =
  let current =
    Configuration.make ~nodes:(mk_nodes 1) ~vms:(mk_vms [ 512 ])
  in
  check_int "no actions" 0 (List.length (Rgraph.actions ~current ~target:current))

let test_rgraph_rejects_impossible () =
  let current =
    Configuration.make ~nodes:(mk_nodes 1) ~vms:(mk_vms [ 512 ])
  in
  let target =
    Configuration.with_states current [| Configuration.Sleeping 0 |]
  in
  check_bool "waiting->sleeping impossible" true
    (try
       ignore (Rgraph.actions ~current ~target);
       false
     with Rgraph.Unreachable _ -> true)

let test_rgraph_normalize_sleeping () =
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 512 ] in
  let current = Configuration.make ~nodes ~vms in
  let current = Configuration.set_state current 0 (Configuration.Running 2) in
  let target = Configuration.with_states current [| Configuration.Sleeping 0 |] in
  let target = Rgraph.normalize_sleeping ~current target in
  check_bool "image location is the host" true
    (Configuration.state target 0 = Configuration.Sleeping 2)

(* -- planner -------------------------------------------------------------- *)

let demand_all config v = Demand.uniform ~vm_count:(Configuration.vm_count config) v

let test_planner_sequential_constraint () =
  (* Figure 7: suspend(VM2) must precede migrate(VM1) *)
  let config, demand = fig7 () in
  let target =
    Configuration.with_states config
      [| Configuration.Running 1; Configuration.Sleeping 1 |]
  in
  let plan = Planner.build ~current:config ~target ~demand () in
  Alcotest.(check (list Alcotest.int))
    "violations" []
    (List.map (fun _ -> 0) (Plan.validate ~current:config ~target ~demand plan));
  check_int "two pools" 2 (Plan.pool_count plan);
  (match Plan.pools plan with
  | [ first; second ] ->
    check_bool "suspend first" true
      (List.mem (Action.Suspend { vm = 1; host = 1 }) first);
    check_bool "migrate second" true
      (List.mem (Action.Migrate { vm = 0; src = 0; dst = 1 }) second)
  | _ -> Alcotest.fail "expected 2 pools");
  check_bool "plan valid" true
    (Plan.is_valid ~current:config ~target ~demand plan)

let test_planner_cycle_bypass () =
  (* Figure 8: swap two VMs that do not fit together; pivot N3 *)
  let config, demand = fig8 () in
  let target =
    Configuration.with_states config
      [| Configuration.Running 1; Configuration.Running 0 |]
  in
  let plan = Planner.build ~current:config ~target ~demand () in
  check_bool "valid" true (Plan.is_valid ~current:config ~target ~demand plan);
  check_int "three migrations (one bypass)" 3 (Plan.migration_count plan);
  check_bool "at least 3 pools" true (Plan.pool_count plan >= 3)

let test_planner_no_pivot_breaks_via_disk () =
  (* same swap but no third node: no pivot exists, so the planner breaks
     the cycle through the disk (suspend one VM, resume it at its
     destination) — the capability migration-only managers lack *)
  let nodes = mk_nodes ~cpu:200 ~mem:2048 2 in
  let vms = mk_vms [ 1536; 1536 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let demand = demand_all config 50 in
  let target =
    Configuration.with_states config
      [| Configuration.Running 1; Configuration.Running 0 |]
  in
  let plan = Planner.build ~current:config ~target ~demand () in
  check_bool "valid" true (Plan.is_valid ~current:config ~target ~demand plan);
  check_int "one suspend" 1 (Plan.suspend_count plan);
  check_int "one resume" 1 (Plan.resume_count plan);
  check_int "one migration" 1 (Plan.migration_count plan)

let test_planner_parallel_pool () =
  (* two independent migrations to two distinct free nodes: one pool *)
  let nodes = mk_nodes ~cpu:200 ~mem:4096 4 in
  let vms = mk_vms [ 512; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let demand = demand_all config 50 in
  let target =
    Configuration.with_states config
      [| Configuration.Running 2; Configuration.Running 3 |]
  in
  let plan = Planner.build ~current:config ~target ~demand () in
  check_int "single pool" 1 (Plan.pool_count plan);
  check_int "two actions" 2 (Plan.action_count plan)

let test_planner_pool_claims_against_start () =
  (* two runs that each fit alone but not together must span two pools
     only if really needed; here node has room for one VM, other goes
     elsewhere? no: single node, two waiting VMs, both target that node,
     capacity for only one -> the target is non-viable; build must raise *)
  let nodes = mk_nodes ~cpu:100 ~mem:1024 1 in
  let vms = mk_vms [ 768; 768 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = demand_all config 10 in
  let target =
    Configuration.with_states config
      [| Configuration.Running 0; Configuration.Running 0 |]
  in
  check_bool "non-viable target rejected" true
    (try
       ignore (Planner.build ~current:config ~target ~demand ());
       false
     with Planner.Stuck _ -> true)

let test_planner_suspend_then_resume_sequence () =
  (* free a node by suspending, then resume another vjob there *)
  let nodes = mk_nodes ~cpu:100 ~mem:2048 1 in
  let vms = mk_vms [ 1536; 1536 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Sleeping 0) in
  let demand = demand_all config 60 in
  let target =
    Configuration.with_states config
      [| Configuration.Sleeping 0; Configuration.Running 0 |]
  in
  let plan = Planner.build ~current:config ~target ~demand () in
  check_bool "valid" true (Plan.is_valid ~current:config ~target ~demand plan);
  check_int "two pools" 2 (Plan.pool_count plan);
  (match Plan.pools plan with
  | [ p1; p2 ] ->
    check_bool "suspend first" true
      (match p1 with [ Action.Suspend _ ] -> true | _ -> false);
    check_bool "resume second" true
      (match p2 with [ Action.Resume _ ] -> true | _ -> false)
  | _ -> Alcotest.fail "expected 2 pools")

let test_planner_migration_chain () =
  (* chain: VM0 on N0 -> N1 needs VM1 (N1) to leave to N2 first *)
  let nodes = mk_nodes ~cpu:100 ~mem:2048 3 in
  let vms = mk_vms [ 1536; 1536 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let demand = demand_all config 40 in
  let target =
    Configuration.with_states config
      [| Configuration.Running 1; Configuration.Running 2 |]
  in
  let plan = Planner.build ~current:config ~target ~demand () in
  check_bool "valid" true (Plan.is_valid ~current:config ~target ~demand plan);
  check_int "two pools" 2 (Plan.pool_count plan);
  check_int "no bypass needed" 2 (Plan.migration_count plan)

let test_planner_figure9 () =
  (* Figure 9: a reconfiguration graph with 4 actions turning into 2
     pools — pool 1 = { suspend(VM3), migrate(VM1) }, pool 2 =
     { resume(VM5), run(VM6) } (resume and run wait for the freed
     resources). Cluster: N1 hosts VM1+VM3 (full), N2 has room for VM1
     only after nothing, N3 ... we mirror the structure: the migrate
     target has room, the resume/run targets need the freed space. *)
  let nodes = mk_nodes ~cpu:200 ~mem:2048 3 in
  let vms = mk_vms [ 2048; 2048; 2048; 2048 ] in
  (* VM0 ~ paper's VM1 (migrates to the free node), VM1 ~ VM3
     (suspends), VM2 ~ VM5 (resumes into VM0's old spot), VM3 ~ VM6
     (runs into VM1's old spot) *)
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let config = Configuration.set_state config 2 (Configuration.Sleeping 1) in
  let demand = demand_all config 60 in
  let target =
    Configuration.with_states config
      [|
        Configuration.Running 2;   (* migrate: N2 is free right away *)
        Configuration.Sleeping 1;  (* suspend *)
        Configuration.Running 0;   (* resume into the spot VM0 frees *)
        Configuration.Running 1;   (* run into the spot VM1 frees *)
      |]
  in
  let plan = Planner.build ~current:config ~target ~demand () in
  check_bool "valid" true (Plan.is_valid ~current:config ~target ~demand plan);
  check_int "two pools" 2 (Plan.pool_count plan);
  match Plan.pools plan with
  | [ p1; p2 ] ->
    check_bool "pool1 = suspend + migrate" true
      (List.mem (Action.Suspend { vm = 1; host = 1 }) p1
      && List.mem (Action.Migrate { vm = 0; src = 0; dst = 2 }) p1);
    check_bool "pool2 = resume + run" true
      (List.mem (Action.Resume { vm = 2; src = 1; dst = 0 }) p2
      && List.mem (Action.Run { vm = 3; dst = 1 }) p2)
  | _ -> Alcotest.fail "expected exactly 2 pools"

(* -- consistency ---------------------------------------------------------- *)

let test_consistency_groups_resumes () =
  (* vjob of 2 VMs resuming in different pools must end up together *)
  let nodes = mk_nodes ~cpu:100 ~mem:2048 2 in
  let vms = mk_vms [ 1536; 1024; 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  (* VM0 busy on N0 must suspend to free room for VM1; VM2 fits on N1
     immediately *)
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Sleeping 0) in
  let config = Configuration.set_state config 2 (Configuration.Sleeping 1) in
  let demand = demand_all config 50 in
  let target =
    Configuration.with_states config
      [|
        Configuration.Sleeping 0;
        Configuration.Running 0;
        Configuration.Running 1;
      |]
  in
  let vjob = Vjob.make ~id:0 ~name:"j" ~vms:[ 1; 2 ] () in
  let raw = Planner.build ~current:config ~target ~demand () in
  (* without grouping, VM2's resume is feasible in pool 0 while VM1's
     waits for the suspend: 2 pools with split resumes *)
  check_bool "raw plan splits the resumes" false
    (Consistency.grouped_in_same_pool raw vjob `Resume);
  let plan =
    Planner.build_plan ~vjobs:[ vjob ] ~current:config ~target ~demand ()
  in
  check_bool "grouped" true (Consistency.grouped_in_same_pool plan vjob `Resume);
  check_bool "still valid" true
    (Plan.is_valid ~current:config ~target ~demand plan)

let test_consistency_sorts_pools_by_vm_name () =
  let nodes = mk_nodes ~cpu:200 ~mem:4096 2 in
  let vms = mk_vms [ 512; 512; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 0) in
  let config = Configuration.set_state config 2 (Configuration.Running 0) in
  let demand = demand_all config 10 in
  let target =
    Configuration.with_states config
      [|
        Configuration.Sleeping 0;
        Configuration.Sleeping 0;
        Configuration.Sleeping 0;
      |]
  in
  let vjob = Vjob.make ~id:0 ~name:"j" ~vms:[ 0; 1; 2 ] () in
  let plan =
    Planner.build_plan ~vjobs:[ vjob ] ~current:config ~target ~demand ()
  in
  match Plan.pools plan with
  | [ pool ] ->
    Alcotest.(check (list int))
      "sorted by vm name" [ 0; 1; 2 ]
      (List.map Action.vm pool)
  | _ -> Alcotest.fail "expected one pool"

(* -- ffd ------------------------------------------------------------------ *)

let test_ffd_basic_placement () =
  let nodes = mk_nodes ~cpu:100 ~mem:2048 2 in
  let vms = mk_vms [ 1024; 1024; 1024; 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = demand_all config 50 in
  match Ffd.place config demand [ 0; 1; 2; 3 ] with
  | None -> Alcotest.fail "expected placement"
  | Some c ->
    check_bool "viable" true (Configuration.is_viable c demand);
    check_int "node0 full" 2048 (Configuration.mem_load c 0);
    check_int "node1 full" 2048 (Configuration.mem_load c 1)

let test_ffd_rejects_overflow () =
  let nodes = mk_nodes ~cpu:100 ~mem:2048 1 in
  let vms = mk_vms [ 1024; 1024; 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = demand_all config 10 in
  check_bool "cannot place" false (Ffd.fits config demand [ 0; 1; 2 ])

let test_ffd_decreasing_order_matters () =
  (* classic FFD case: big items first avoids fragmentation *)
  let nodes = mk_nodes ~cpu:400 ~mem:1000 2 in
  let vms = mk_vms [ 300; 300; 700; 700 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = demand_all config 10 in
  match Ffd.place config demand [ 0; 1; 2; 3 ] with
  | None -> Alcotest.fail "FFD should pack (700+300) x2"
  | Some c -> check_bool "viable" true (Configuration.is_viable c demand)

let test_ffd_keeps_existing_running () =
  let nodes = mk_nodes ~cpu:100 ~mem:2048 2 in
  let vms = mk_vms [ 1536; 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let demand = demand_all config 40 in
  match Ffd.place config demand [ 1 ] with
  | None -> Alcotest.fail "expected placement"
  | Some c ->
    check_bool "existing kept" true
      (Configuration.state c 0 = Configuration.Running 0);
    check_bool "new on free node" true
      (Configuration.state c 1 = Configuration.Running 1)

let test_ffd_heuristics_differ () =
  (* best-fit fills the tighter node; worst-fit the emptier one *)
  let nodes =
    [|
      Node.make ~id:0 ~name:"N0" ~cpu_capacity:400 ~memory_mb:1000;
      Node.make ~id:1 ~name:"N1" ~cpu_capacity:400 ~memory_mb:2000;
    |]
  in
  let vms = mk_vms [ 500 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = demand_all config 10 in
  let host heuristic =
    match Ffd.place ~heuristic config demand [ 0 ] with
    | Some c -> Option.get (Configuration.host c 0)
    | None -> Alcotest.fail "placement expected"
  in
  check_int "best-fit tight node" 0 (host Ffd.Best_fit);
  check_int "worst-fit roomy node" 1 (host Ffd.Worst_fit)

(* -- rjsp ----------------------------------------------------------------- *)

let mk_vjob_cluster () =
  (* 2 nodes x (200 cpu, 3584 MB); 3 vjobs of 2 VMs each, all busy *)
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 1024; 1024; 1024; 1024; 1024; 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let vjobs =
    [
      Vjob.make ~id:0 ~name:"j0" ~vms:[ 0; 1 ] ~submit_time:0. ();
      Vjob.make ~id:1 ~name:"j1" ~vms:[ 2; 3 ] ~submit_time:1. ();
      Vjob.make ~id:2 ~name:"j2" ~vms:[ 4; 5 ] ~submit_time:2. ();
    ]
  in
  (config, vjobs)

let test_rjsp_selects_fcfs_prefix () =
  let config, vjobs = mk_vjob_cluster () in
  (* full-CPU VMs: 2 per node max -> only 2 vjobs fit *)
  let demand = Demand.uniform ~vm_count:6 100 in
  let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
  Alcotest.(check (list string))
    "running" [ "j0"; "j1" ]
    (List.map Vjob.name outcome.Rjsp.running);
  Alcotest.(check (list string))
    "ready" [ "j2" ]
    (List.map Vjob.name outcome.Rjsp.ready);
  check_bool "ffd config viable" true
    (Configuration.is_viable outcome.Rjsp.ffd_config demand)

let test_rjsp_skips_then_fits_later_vjob () =
  (* queue order j0(big), j1(too big), j2(small): j1 sleeps, j2 runs *)
  let nodes = mk_nodes ~cpu:300 ~mem:4096 1 in
  let vms = mk_vms [ 2048; 4096; 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let vjobs =
    [
      Vjob.make ~id:0 ~name:"j0" ~vms:[ 0 ] ~submit_time:0. ();
      Vjob.make ~id:1 ~name:"j1" ~vms:[ 1 ] ~submit_time:1. ();
      Vjob.make ~id:2 ~name:"j2" ~vms:[ 2 ] ~submit_time:2. ();
    ]
  in
  let demand = Demand.uniform ~vm_count:3 50 in
  let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
  Alcotest.(check (list string))
    "running" [ "j0"; "j2" ]
    (List.map Vjob.name outcome.Rjsp.running)

let test_rjsp_reevaluates_sleeping () =
  (* a sleeping vjob is re-admitted when resources free up *)
  let config, vjobs = mk_vjob_cluster () in
  let demand = Demand.uniform ~vm_count:6 100 in
  (* j0 terminated: j1 and j2 can now both run *)
  let config =
    List.fold_left
      (fun c vm -> Configuration.set_state c vm Configuration.Terminated)
      config [ 0; 1 ]
  in
  let config = Configuration.set_state config 2 (Configuration.Running 0) in
  let config = Configuration.set_state config 3 (Configuration.Running 0) in
  let config = Configuration.set_state config 4 (Configuration.Sleeping 1) in
  let config = Configuration.set_state config 5 (Configuration.Sleeping 1) in
  let queue = List.filter (fun v -> Vjob.id v <> 0) vjobs in
  let outcome = Rjsp.solve ~config ~demand ~queue () in
  Alcotest.(check (list string))
    "both run" [ "j1"; "j2" ]
    (List.map Vjob.name outcome.Rjsp.running)

let test_rjsp_overload_suspends_last () =
  (* paper section 5.2: overloaded cluster -> lowest-priority running
     vjobs get suspended *)
  let config, vjobs = mk_vjob_cluster () in
  (* all three currently running (viable while demands are low) *)
  let config =
    List.fold_left
      (fun c (vm, node) ->
        Configuration.set_state c vm (Configuration.Running node))
      config
      [ (0, 0); (1, 0); (2, 0); (3, 1); (4, 1); (5, 1) ]
  in
  (* demands surge to full CPU: only 4 processing units exist *)
  let demand = Demand.uniform ~vm_count:6 100 in
  check_bool "overloaded" false (Configuration.is_viable config demand);
  let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
  Alcotest.(check (list string))
    "last arrived suspended" [ "j2" ]
    (List.map Vjob.name outcome.Rjsp.ready)

(* -- optimizer ------------------------------------------------------------ *)

let test_optimizer_prefers_no_move () =
  (* current placement is already viable: optimal plan is empty *)
  let nodes = mk_nodes 2 in
  let vms = mk_vms [ 1024; 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let demand = Demand.uniform ~vm_count:2 50 in
  (* a fallback that gratuitously swaps the two VMs *)
  let swapped =
    Configuration.with_states config
      [| Configuration.Running 1; Configuration.Running 0 |]
  in
  let result =
    Optimizer.optimize ~current:config ~demand ~placed:[ 0; 1 ]
      ~target_base:config ~fallback:swapped ()
  in
  check_int "zero cost" 0 result.Optimizer.cost;
  check_bool "no actions" true (Plan.is_empty result.Optimizer.plan);
  check_bool "improved over swap" true result.Optimizer.improved

let test_optimizer_prefers_local_resume () =
  (* a sleeping VM can resume locally (cost Dm) or remotely (2Dm) *)
  let nodes = mk_nodes ~cpu:100 ~mem:2048 2 in
  let vms = mk_vms [ 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Sleeping 1) in
  let demand = Demand.uniform ~vm_count:1 50 in
  let remote =
    Configuration.with_states config [| Configuration.Running 0 |]
  in
  let result =
    Optimizer.optimize ~current:config ~demand ~placed:[ 0 ]
      ~target_base:config ~fallback:remote ()
  in
  check_bool "resumes on image host" true
    (Configuration.state result.Optimizer.target 0 = Configuration.Running 1);
  check_int "cost Dm" 1024 result.Optimizer.cost

let test_optimizer_respects_viability () =
  (* image host is full: must resume remotely even though dearer *)
  let nodes = mk_nodes ~cpu:100 ~mem:2048 2 in
  let vms = mk_vms [ 1536; 1024 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Sleeping 0) in
  let demand = Demand.uniform ~vm_count:2 40 in
  let fallback =
    Configuration.with_states config
      [| Configuration.Running 0; Configuration.Running 1 |]
  in
  let result =
    Optimizer.optimize ~current:config ~demand ~placed:[ 1 ]
      ~target_base:config ~fallback ()
  in
  check_bool "remote resume" true
    (Configuration.state result.Optimizer.target 1 = Configuration.Running 1);
  check_int "cost 2Dm" 2048 result.Optimizer.cost;
  check_bool "plan valid" true
    (Plan.is_valid ~current:config ~target:result.Optimizer.target ~demand
       result.Optimizer.plan)

let test_optimizer_beats_ffd_on_relocation () =
  (* FFD would repack everything onto node 0 (first fit); the optimiser
     keeps the VMs where they run, cost 0 *)
  let nodes = mk_nodes 3 in
  let vms = mk_vms [ 512; 512; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 2) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let config = Configuration.set_state config 2 (Configuration.Running 0) in
  let demand = Demand.uniform ~vm_count:3 30 in
  let vjobs = [ Vjob.make ~id:0 ~name:"j" ~vms:[ 0; 1; 2 ] () ] in
  let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
  let ffd_cost =
    Plan.cost config
      (Planner.build ~current:config ~target:outcome.Rjsp.ffd_config ~demand ())
  in
  let result =
    Optimizer.optimize ~vjobs ~current:config ~demand
      ~placed:(List.concat_map Vjob.vms outcome.Rjsp.running)
      ~target_base:outcome.Rjsp.ffd_config ~fallback:outcome.Rjsp.ffd_config ()
  in
  check_bool "ffd moves VMs" true (ffd_cost > 0);
  check_int "optimised cost 0" 0 result.Optimizer.cost;
  check_bool "improved" true result.Optimizer.improved

let test_optimizer_empty_placed () =
  let config = Configuration.make ~nodes:(mk_nodes 1) ~vms:(mk_vms [ 512 ]) in
  let demand = Demand.uniform ~vm_count:1 0 in
  let result =
    Optimizer.optimize ~current:config ~demand ~placed:[]
      ~target_base:config ~fallback:config ()
  in
  check_bool "falls back" true (result.Optimizer.stats = None);
  check_int "no cost" 0 result.Optimizer.cost

(* -- decision + loop ------------------------------------------------------ *)

let test_decision_consolidation_suspends_overload () =
  let config, vjobs = mk_vjob_cluster () in
  let config =
    List.fold_left
      (fun c (vm, node) ->
        Configuration.set_state c vm (Configuration.Running node))
      config
      [ (0, 0); (1, 0); (2, 0); (3, 1); (4, 1); (5, 1) ]
  in
  let demand = Demand.uniform ~vm_count:6 100 in
  let decision = Decision.consolidation ~cp_timeout:0.5 () in
  let obs = { Decision.config; demand; queue = vjobs; finished = [] } in
  let result = decision.Decision.decide obs in
  (* j2 must be sleeping, j0 j1 running, and the final config viable *)
  check_bool "viable target" true
    (Configuration.is_viable result.Optimizer.target demand);
  check_bool "j2 suspended" true
    (Configuration.vjob_state result.Optimizer.target (List.nth vjobs 2)
    = Some Lifecycle.Sleeping);
  check_bool "plan valid" true
    (Plan.is_valid ~current:config
       ~target:
         (Rgraph.normalize_sleeping ~current:config result.Optimizer.target)
       ~demand result.Optimizer.plan)

let test_decision_stops_finished () =
  let config, vjobs = mk_vjob_cluster () in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let demand = Demand.uniform ~vm_count:6 50 in
  let decision = Decision.consolidation ~cp_timeout:0.5 () in
  let obs = { Decision.config; demand; queue = vjobs; finished = [ 0 ] } in
  let result = decision.Decision.decide obs in
  check_bool "vm0 terminated" true
    (Configuration.state result.Optimizer.target 0 = Configuration.Terminated);
  check_int "two stops" 2 (Plan.stop_count result.Optimizer.plan)

let test_loop_runs_to_completion () =
  (* a tiny in-memory driver: run 2 waiting vjobs then report finished *)
  let config, vjobs = mk_vjob_cluster () in
  let demand = Demand.uniform ~vm_count:6 50 in
  let state = ref config in
  let iterations = ref 0 in
  let driver =
    {
      Loop.observe =
        (fun () ->
          { Decision.config = !state; demand; queue = vjobs; finished = [] });
      execute =
        (fun plan ->
          state :=
            List.fold_left
              (fun cfg pool -> List.fold_left Action.apply cfg pool)
              !state (Plan.pools plan);
          Loop.clean);
      wait = (fun _ -> incr iterations);
      finished = (fun () -> !iterations >= 3);
    }
  in
  let decision = Decision.consolidation ~cp_timeout:0.5 () in
  let history = Loop.run ~period:30. decision driver in
  check_bool "some iterations" true (List.length history >= 3);
  check_bool "first iteration executed a switch" true
    (List.hd history).Loop.executed;
  check_bool "all vjobs running at the end" true
    (List.for_all
       (fun vj -> Configuration.vjob_state !state vj = Some Lifecycle.Running)
       vjobs)

let test_loop_recovers_degraded_switch () =
  (* the first switch degrades (vm0's action lost, nothing applied): the
     loop must immediately re-observe, re-decide and re-execute instead
     of waiting for the next period *)
  let config, vjobs = mk_vjob_cluster () in
  let demand = Demand.uniform ~vm_count:6 50 in
  let state = ref config in
  let calls = ref 0 in
  let driver =
    {
      Loop.observe =
        (fun () ->
          { Decision.config = !state; demand; queue = vjobs; finished = [] });
      execute =
        (fun plan ->
          incr calls;
          if !calls = 1 then { Loop.failed_vms = [ 0 ]; lost_nodes = [] }
          else begin
            state :=
              List.fold_left
                (fun cfg pool -> List.fold_left Action.apply cfg pool)
                !state (Plan.pools plan);
            Loop.clean
          end);
      wait = (fun _ -> ());
      finished = (fun () -> false);
    }
  in
  let decision = Decision.consolidation ~cp_timeout:0.5 () in
  let outcome = Loop.step decision driver 0 in
  check_bool "recovered step converges" true (Loop.converged outcome);
  let it = Loop.iteration_of outcome in
  check_int "one recovery round" 1 it.Loop.recoveries;
  check_int "re-executed immediately" 2 !calls;
  check_bool "recovery applied the plan" true
    (List.for_all
       (fun vj -> Configuration.vjob_state !state vj = Some Lifecycle.Running)
       vjobs)

let test_loop_degraded_outcome_guards_livelock () =
  (* a driver that never recovers must surface as a distinguishable
     Degraded outcome carrying the residue once max_recoveries is
     exhausted — not as a quietly returned last round *)
  let config, vjobs = mk_vjob_cluster () in
  let demand = Demand.uniform ~vm_count:6 50 in
  let calls = ref 0 in
  let stuck =
    {
      Loop.observe =
        (fun () ->
          { Decision.config; demand; queue = vjobs; finished = [] });
      execute =
        (fun _ ->
          incr calls;
          { Loop.failed_vms = [ 0 ]; lost_nodes = [] });
      wait = (fun _ -> ());
      finished = (fun () -> false);
    }
  in
  let decision = Decision.consolidation ~cp_timeout:0.5 () in
  match Loop.step ~max_recoveries:2 decision stuck 0 with
  | Loop.Converged _ -> Alcotest.fail "stuck driver reported as converged"
  | Loop.Degraded (it, residue) as outcome ->
    check_bool "converged is false" false (Loop.converged outcome);
    check_int "bounded recovery" 2 it.Loop.recoveries;
    check_int "initial round + two recovery rounds" 3 !calls;
    check_bool "residue names the failed vm" true
      (residue.Loop.failed_vms = [ 0 ]);
    check_bool "iteration_of still yields the last round" true
      (Loop.iteration_of outcome == it)

let test_loop_decide_event_matches_step () =
  (* the event-driven entry point runs one full decision round with the
     same semantics as a periodic step *)
  let config, vjobs = mk_vjob_cluster () in
  let demand = Demand.uniform ~vm_count:6 50 in
  let state = ref config in
  let driver =
    {
      Loop.observe =
        (fun () ->
          { Decision.config = !state; demand; queue = vjobs; finished = [] });
      execute =
        (fun plan ->
          state :=
            List.fold_left
              (fun cfg pool -> List.fold_left Action.apply cfg pool)
              !state (Plan.pools plan);
          Loop.clean);
      wait = (fun _ -> ());
      finished = (fun () -> false);
    }
  in
  let decision = Decision.consolidation ~cp_timeout:0.5 () in
  let outcome =
    Loop.decide_event ~reason:"vjob arrival x3" decision driver 0
  in
  check_bool "event decision converges" true (Loop.converged outcome);
  check_bool "event decision executed the switch" true
    (Loop.iteration_of outcome).Loop.executed;
  check_bool "all vjobs running afterwards" true
    (List.for_all
       (fun vj -> Configuration.vjob_state !state vj = Some Lifecycle.Running)
       vjobs)

let test_loop_hooks_bracket_switch () =
  (* the journaling hooks fire exactly once around a non-empty switch,
     with everything a write-ahead record needs, and stay silent when
     the plan is empty *)
  let config, vjobs = mk_vjob_cluster () in
  let demand = Demand.uniform ~vm_count:6 50 in
  let state = ref config in
  let begins = ref [] in
  let ends = ref [] in
  let hooks =
    {
      Loop.on_switch_begin =
        (fun ~index ~source ~target ~demand:_ ~plan ->
          begins := (index, source, target, plan) :: !begins);
      on_switch_end =
        (fun ~index ~report -> ends := (index, report) :: !ends);
    }
  in
  let driver =
    {
      Loop.observe =
        (fun () ->
          { Decision.config = !state; demand; queue = vjobs; finished = [] });
      execute =
        (fun plan ->
          (* the begin hook must already have fired: write-ahead *)
          check_int "begin journaled before execution" 1 (List.length !begins);
          state :=
            List.fold_left
              (fun cfg pool -> List.fold_left Action.apply cfg pool)
              !state (Plan.pools plan);
          Loop.clean);
      wait = (fun _ -> ());
      finished = (fun () -> false);
    }
  in
  let decision = Decision.consolidation ~cp_timeout:0.5 () in
  let it = Loop.iteration_of (Loop.step ~hooks decision driver 7) in
  check_bool "switch executed" true it.Loop.executed;
  (match !begins with
  | [ (index, source, target, plan) ] ->
    check_int "begin carries the index" 7 index;
    check_bool "source is the pre-switch config" true
      (Configuration.equal source config);
    check_bool "plan is the decided plan" false (Plan.is_empty plan);
    check_bool "target matches the decision" true
      (Configuration.equal target it.Loop.result.Optimizer.target)
  | _ -> Alcotest.fail "expected exactly one begin hook");
  (match !ends with
  | [ (index, report) ] ->
    check_int "end carries the index" 7 index;
    check_bool "clean report" true (Loop.report_ok report)
  | _ -> Alcotest.fail "expected exactly one end hook");
  (* converged state: the next decision plans nothing, hooks stay quiet *)
  let it2 = Loop.iteration_of (Loop.step ~hooks decision driver 8) in
  check_bool "no switch" false it2.Loop.executed;
  check_int "no further begins" 1 (List.length !begins);
  check_int "no further ends" 1 (List.length !ends)

let test_loop_resume_injects_plan () =
  (* the crash-recovery entry point executes the journal-derived plan
     verbatim instead of consulting the decision module *)
  let config, vjobs = mk_vjob_cluster () in
  let demand = Demand.uniform ~vm_count:6 50 in
  let state = ref config in
  let executed = ref [] in
  let driver =
    {
      Loop.observe =
        (fun () ->
          { Decision.config = !state; demand; queue = vjobs; finished = [] });
      execute =
        (fun plan ->
          executed := plan :: !executed;
          state :=
            List.fold_left
              (fun cfg pool -> List.fold_left Action.apply cfg pool)
              !state (Plan.pools plan);
          Loop.clean);
      wait = (fun _ -> ());
      finished = (fun () -> false);
    }
  in
  let decision = Decision.consolidation ~cp_timeout:0.5 () in
  (* a deliberately partial recovery plan: run only vm0 and vm1 *)
  let plan =
    Plan.make [ [ Action.Run { vm = 0; dst = 0 }; Action.Run { vm = 1; dst = 0 } ] ]
  in
  let target =
    Configuration.with_states config
      [|
        Configuration.Running 0; Configuration.Running 0;
        Configuration.Waiting; Configuration.Waiting;
        Configuration.Waiting; Configuration.Waiting;
      |]
  in
  let it = Loop.iteration_of (Loop.resume ~target ~plan decision driver 3) in
  check_bool "executed" true it.Loop.executed;
  check_int "exactly the recovery plan ran" 1 (List.length !executed);
  check_bool "verbatim" true
    (match !executed with [ p ] -> p == plan | _ -> false);
  check_bool "synthesized result: not an optimizer find" false
    it.Loop.result.Optimizer.improved;
  check_bool "no search stats" true (it.Loop.result.Optimizer.stats = None);
  check_bool "carries the recovery target" true
    (Configuration.equal it.Loop.result.Optimizer.target target);
  check_bool "vm0 and vm1 running" true
    (Configuration.state !state 0 = Configuration.Running 0
    && Configuration.state !state 1 = Configuration.Running 0);
  (* an empty reconciliation plan: nothing executes, no recovery rounds *)
  let it2 =
    Loop.iteration_of
      (Loop.resume ~target:!state ~plan:Plan.empty decision driver 4)
  in
  check_bool "empty plan, no switch" false it2.Loop.executed;
  check_int "driver untouched" 1 (List.length !executed)

let test_loop_resume_degraded_recovers_afresh () =
  (* a resume whose switch degrades falls into the normal bounded
     recovery rounds, which re-decide from the observation *)
  let config, vjobs = mk_vjob_cluster () in
  let demand = Demand.uniform ~vm_count:6 50 in
  let state = ref config in
  let calls = ref 0 in
  let driver =
    {
      Loop.observe =
        (fun () ->
          { Decision.config = !state; demand; queue = vjobs; finished = [] });
      execute =
        (fun plan ->
          incr calls;
          if !calls = 1 then { Loop.failed_vms = [ 0 ]; lost_nodes = [] }
          else begin
            state :=
              List.fold_left
                (fun cfg pool -> List.fold_left Action.apply cfg pool)
                !state (Plan.pools plan);
            Loop.clean
          end);
      wait = (fun _ -> ());
      finished = (fun () -> false);
    }
  in
  let decision = Decision.consolidation ~cp_timeout:0.5 () in
  let plan = Plan.make [ [ Action.Run { vm = 0; dst = 0 } ] ] in
  let target =
    Configuration.set_state config 0 (Configuration.Running 0)
  in
  let it = Loop.iteration_of (Loop.resume ~target ~plan decision driver 0) in
  check_int "one recovery round" 1 it.Loop.recoveries;
  check_int "re-executed with a fresh decision" 2 !calls;
  check_bool "recovery result is a real decision" true
    (it.Loop.result.Optimizer.rules_satisfied)

(* -- plan validation diagnostics ------------------------------------------- *)

let test_plan_validate_reports_infeasible_pool () =
  (* both runs target the same full node in one pool: the second run's
     claim must be pinned with its pool index and the exact action *)
  let nodes = mk_nodes ~cpu:100 ~mem:1024 1 in
  let vms = mk_vms [ 768; 768 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = demand_all config 10 in
  let target =
    Configuration.with_states config
      [| Configuration.Running 0; Configuration.Running 0 |]
  in
  let plan =
    Plan.make [ [ Action.Run { vm = 0; dst = 0 }; Action.Run { vm = 1; dst = 0 } ] ]
  in
  let violations = Plan.validate ~current:config ~target ~demand plan in
  check_bool "exactly the overflowing run, in pool 0" true
    (List.exists
       (function
         | Plan.Pool_infeasible { pool = 0; action } ->
           Action.equal action (Action.Run { vm = 1; dst = 0 })
         | _ -> false)
       violations);
  (* sequenced, the same claim still overflows (the node simply cannot
     hold both VMs) but the diagnostic must move to pool 1 *)
  let sequential =
    Plan.make
      [
        [ Action.Run { vm = 0; dst = 0 } ];
        [ Action.Run { vm = 1; dst = 0 } ];
      ]
  in
  check_bool "sequenced violation pinned to pool 1" true
    (List.exists
       (function
         | Plan.Pool_infeasible { pool = 1; action } ->
           Action.equal action (Action.Run { vm = 1; dst = 0 })
         | _ -> false)
       (Plan.validate ~current:config ~target ~demand sequential))

let test_plan_validate_reports_wrong_final_state () =
  let nodes = mk_nodes 1 in
  let vms = mk_vms [ 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = demand_all config 10 in
  let target = Configuration.with_states config [| Configuration.Running 0 |] in
  let violations = Plan.validate ~current:config ~target ~demand Plan.empty in
  check_bool "missing action pinned with both states" true
    (List.exists
       (function
         | Plan.Wrong_final_state
             { vm = 0; expected = Configuration.Running 0; got } ->
           got = Configuration.state config 0
         | _ -> false)
       violations)

let test_plan_validate_reports_invalid_application () =
  let nodes = mk_nodes 1 in
  let vms = mk_vms [ 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = demand_all config 10 in
  (* resuming a waiting VM is invalid *)
  let bad = Action.Resume { vm = 0; src = 0; dst = 0 } in
  let plan = Plan.make [ [ bad ] ] in
  let target = Configuration.with_states config [| Configuration.Running 0 |] in
  let violations = Plan.validate ~current:config ~target ~demand plan in
  check_bool "invalid application pinned to pool 0" true
    (List.exists
       (function
         | Plan.Invalid_application { pool = 0; action; reason } ->
           Action.equal action bad && reason <> ""
         | _ -> false)
       violations)

let test_plan_validate_accumulates_all_violations () =
  (* one plan, all three diagnostics at once: an over-committed pool, a
     misapplied action, and a final state short of the target *)
  let nodes = mk_nodes ~cpu:100 ~mem:1024 2 in
  let vms = mk_vms [ 768; 768; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let demand = demand_all config 10 in
  let target =
    Configuration.with_states config
      [|
        Configuration.Running 0; Configuration.Running 0;
        Configuration.Running 1;
      |]
  in
  let plan =
    Plan.make
      [
        [
          Action.Run { vm = 0; dst = 0 };
          Action.Run { vm = 1; dst = 0 };
          (* over-commits node 0 *)
          Action.Resume { vm = 2; src = 1; dst = 1 };
          (* vm2 is waiting, not sleeping *)
        ];
      ]
  in
  let violations = Plan.validate ~current:config ~target ~demand plan in
  let count pred = List.length (List.filter pred violations) in
  check_int "one infeasible pool claim" 1
    (count (function Plan.Pool_infeasible _ -> true | _ -> false));
  check_int "one invalid application" 1
    (count (function Plan.Invalid_application _ -> true | _ -> false));
  check_bool "vm2 never reaches its target" true
    (List.exists
       (function
         | Plan.Wrong_final_state { vm = 2; _ } -> true
         | _ -> false)
       violations)

let test_rgraph_mismatched_vm_sets () =
  let a = Configuration.make ~nodes:(mk_nodes 1) ~vms:(mk_vms [ 512 ]) in
  let b = Configuration.make ~nodes:(mk_nodes 1) ~vms:(mk_vms [ 512; 512 ]) in
  check_bool "rejected" true
    (try
       ignore (Rgraph.actions ~current:a ~target:b);
       false
     with Invalid_argument _ -> true)

let test_config_with_states_arity () =
  let config = Configuration.make ~nodes:(mk_nodes 1) ~vms:(mk_vms [ 512 ]) in
  check_bool "arity checked" true
    (try
       ignore (Configuration.with_states config [||]);
       false
     with Invalid_argument _ -> true)

(* -- properties ----------------------------------------------------------- *)

(* Random scenario: nodes, VMs, a random current configuration and a
   random viable target; the planner must produce a valid plan. *)
let gen_scenario =
  QCheck.Gen.(
    let* n_nodes = int_range 2 6 in
    let* n_vms = int_range 1 10 in
    let* mems = list_repeat n_vms (oneofl [ 256; 512; 1024; 2048 ]) in
    let* cpus = list_repeat n_vms (oneofl [ 0; 20; 50; 100 ]) in
    let* states = list_repeat n_vms (int_range 0 2) in
    let* placements = list_repeat n_vms (int_range 0 (n_nodes - 1)) in
    return (n_nodes, mems, cpus, states, placements))

let scenario_print (n_nodes, mems, cpus, states, placements) =
  Printf.sprintf "nodes=%d mems=%s cpus=%s states=%s placements=%s" n_nodes
    (String.concat "," (List.map string_of_int mems))
    (String.concat "," (List.map string_of_int cpus))
    (String.concat "," (List.map string_of_int states))
    (String.concat "," (List.map string_of_int placements))

let build_scenario (n_nodes, mems, cpus, states, placements) =
  let nodes = mk_nodes n_nodes in
  let vms = mk_vms mems in
  let config = Configuration.make ~nodes ~vms in
  let demand = Demand.of_fn ~vm_count:(List.length mems) (List.nth cpus) in
  (* current config: place greedily, respecting viability; VMs that do
     not fit stay waiting; state code 0 = waiting, 1 = running, 2 =
     sleeping on the chosen node *)
  let config =
    List.fold_left
      (fun cfg (vm_id, (state, node)) ->
        match state with
        | 1 ->
          let cpu = Demand.cpu demand vm_id in
          let mem = Vm.memory_mb (Configuration.vm cfg vm_id) in
          if Configuration.fits cfg demand ~cpu ~mem node then
            Configuration.set_state cfg vm_id (Configuration.Running node)
          else cfg
        | 2 -> Configuration.set_state cfg vm_id (Configuration.Sleeping node)
        | _ -> cfg)
      config
      (List.mapi (fun i (s, p) -> (i, (s, p))) (List.combine states placements))
  in
  (config, demand)

let prop_ffd_configs_are_viable =
  QCheck.Test.make ~name:"RJSP FFD configurations are viable" ~count:300
    (QCheck.make ~print:scenario_print gen_scenario)
    (fun scenario ->
      let config, demand = build_scenario scenario in
      let queue =
        List.mapi
          (fun i _ ->
            Vjob.make ~id:i ~name:(Printf.sprintf "j%d" i) ~vms:[ i ]
              ~submit_time:(float_of_int i) ())
          (Array.to_list (Configuration.vms config))
      in
      let outcome = Rjsp.solve ~config ~demand ~queue () in
      Configuration.is_viable outcome.Rjsp.ffd_config demand)

let prop_planner_plans_are_valid =
  QCheck.Test.make ~name:"plans between random configurations are valid"
    ~count:300
    (QCheck.make ~print:scenario_print gen_scenario)
    (fun scenario ->
      let config, demand = build_scenario scenario in
      let queue =
        List.mapi
          (fun i _ ->
            Vjob.make ~id:i ~name:(Printf.sprintf "j%d" i) ~vms:[ i ]
              ~submit_time:(float_of_int i) ())
          (Array.to_list (Configuration.vms config))
      in
      let outcome = Rjsp.solve ~config ~demand ~queue () in
      let target =
        Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config
      in
      match Planner.build ~current:config ~target ~demand () with
      | plan -> Plan.is_valid ~current:config ~target ~demand plan
      | exception Planner.Stuck _ ->
        (* acceptable only when a cycle truly has no pivot; rare with
           random data, treat as discard *)
        QCheck.assume_fail ())

let prop_optimizer_never_worse_than_ffd =
  QCheck.Test.make ~name:"optimised plan cost <= FFD plan cost" ~count:150
    (QCheck.make ~print:scenario_print gen_scenario)
    (fun scenario ->
      let config, demand = build_scenario scenario in
      let queue =
        List.mapi
          (fun i _ ->
            Vjob.make ~id:i ~name:(Printf.sprintf "j%d" i) ~vms:[ i ]
              ~submit_time:(float_of_int i) ())
          (Array.to_list (Configuration.vms config))
      in
      let outcome = Rjsp.solve ~config ~demand ~queue () in
      let target =
        Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config
      in
      match Planner.build ~current:config ~target ~demand () with
      | exception Planner.Stuck _ -> QCheck.assume_fail ()
      | ffd_plan ->
        let ffd_cost = Plan.cost config ffd_plan in
        let result =
          Optimizer.optimize ~timeout:0.3 ~current:config ~demand
            ~placed:(List.concat_map Vjob.vms outcome.Rjsp.running)
            ~target_base:outcome.Rjsp.ffd_config
            ~fallback:outcome.Rjsp.ffd_config ()
        in
        result.Optimizer.cost <= ffd_cost
        && Configuration.is_viable result.Optimizer.target demand)

let prop_plan_cost_at_least_lower_bound =
  QCheck.Test.make ~name:"plan cost >= admissible lower bound" ~count:200
    (QCheck.make ~print:scenario_print gen_scenario)
    (fun scenario ->
      let config, demand = build_scenario scenario in
      let queue =
        List.mapi
          (fun i _ ->
            Vjob.make ~id:i ~name:(Printf.sprintf "j%d" i) ~vms:[ i ]
              ~submit_time:(float_of_int i) ())
          (Array.to_list (Configuration.vms config))
      in
      let outcome = Rjsp.solve ~config ~demand ~queue () in
      let target =
        Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config
      in
      match Planner.build ~current:config ~target ~demand () with
      | exception Planner.Stuck _ -> QCheck.assume_fail ()
      | plan ->
        Plan.cost config plan >= Cost.lower_bound ~current:config ~target)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "entropy_core"
    [
      ( "model",
        [
          Alcotest.test_case "vm validation" `Quick test_vm_validation;
          Alcotest.test_case "testbed node" `Quick test_node_testbed;
          Alcotest.test_case "vjob validation" `Quick test_vjob_validation;
          Alcotest.test_case "fcfs order" `Quick test_vjob_fcfs_order;
          Alcotest.test_case "lifecycle transitions" `Quick
            test_lifecycle_transitions;
          Alcotest.test_case "ready pseudo-state" `Quick test_lifecycle_ready;
          Alcotest.test_case "between" `Quick test_lifecycle_between;
        ] );
      ( "configuration",
        [
          Alcotest.test_case "initial waiting" `Quick
            test_config_initial_waiting;
          Alcotest.test_case "dense ids" `Quick test_config_dense_ids_checked;
          Alcotest.test_case "loads and viability" `Quick
            test_config_loads_and_viability;
          Alcotest.test_case "cpu overload (fig 5)" `Quick
            test_config_cpu_overload;
          Alcotest.test_case "sleeping is free" `Quick
            test_config_sleeping_consumes_nothing;
          Alcotest.test_case "vjob state" `Quick test_config_vjob_state;
        ] );
      ( "action",
        [
          Alcotest.test_case "apply run" `Quick test_action_apply_run;
          Alcotest.test_case "full life cycle" `Quick
            test_action_apply_full_cycle;
          Alcotest.test_case "invalid application" `Quick
            test_action_apply_invalid;
          Alcotest.test_case "feasibility" `Quick test_action_feasibility;
          Alcotest.test_case "locality" `Quick test_action_is_local;
        ] );
      ( "cost",
        [
          Alcotest.test_case "table 1" `Quick test_cost_table1;
          Alcotest.test_case "pool is max" `Quick test_cost_pool_is_max;
          Alcotest.test_case "plan sequencing" `Quick
            test_cost_plan_sequencing;
          Alcotest.test_case "empty plan" `Quick test_cost_plan_empty;
          Alcotest.test_case "lower bound" `Quick test_cost_lower_bound;
        ] );
      ( "rgraph",
        [
          Alcotest.test_case "actions" `Quick test_rgraph_actions;
          Alcotest.test_case "no-op" `Quick test_rgraph_no_action_when_equal;
          Alcotest.test_case "impossible transition" `Quick
            test_rgraph_rejects_impossible;
          Alcotest.test_case "normalize sleeping" `Quick
            test_rgraph_normalize_sleeping;
        ] );
      ( "planner",
        [
          Alcotest.test_case "sequential constraint (fig 7)" `Quick
            test_planner_sequential_constraint;
          Alcotest.test_case "cycle bypass (fig 8)" `Quick
            test_planner_cycle_bypass;
          Alcotest.test_case "no pivot -> disk break" `Quick
            test_planner_no_pivot_breaks_via_disk;
          Alcotest.test_case "parallel pool" `Quick test_planner_parallel_pool;
          Alcotest.test_case "non-viable target" `Quick
            test_planner_pool_claims_against_start;
          Alcotest.test_case "suspend then resume" `Quick
            test_planner_suspend_then_resume_sequence;
          Alcotest.test_case "migration chain" `Quick
            test_planner_migration_chain;
          Alcotest.test_case "figure 9 pools" `Quick test_planner_figure9;
        ] );
      ( "plan-validate",
        [
          Alcotest.test_case "infeasible pool" `Quick
            test_plan_validate_reports_infeasible_pool;
          Alcotest.test_case "wrong final state" `Quick
            test_plan_validate_reports_wrong_final_state;
          Alcotest.test_case "invalid application" `Quick
            test_plan_validate_reports_invalid_application;
          Alcotest.test_case "all violations accumulate" `Quick
            test_plan_validate_accumulates_all_violations;
          Alcotest.test_case "mismatched vm sets" `Quick
            test_rgraph_mismatched_vm_sets;
          Alcotest.test_case "with_states arity" `Quick
            test_config_with_states_arity;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "groups resumes" `Quick
            test_consistency_groups_resumes;
          Alcotest.test_case "sorts pools" `Quick
            test_consistency_sorts_pools_by_vm_name;
        ] );
      ( "ffd",
        [
          Alcotest.test_case "basic placement" `Quick test_ffd_basic_placement;
          Alcotest.test_case "rejects overflow" `Quick
            test_ffd_rejects_overflow;
          Alcotest.test_case "decreasing order" `Quick
            test_ffd_decreasing_order_matters;
          Alcotest.test_case "keeps existing" `Quick
            test_ffd_keeps_existing_running;
          Alcotest.test_case "heuristic variants" `Quick
            test_ffd_heuristics_differ;
        ] );
      ( "rjsp",
        [
          Alcotest.test_case "fcfs prefix" `Quick test_rjsp_selects_fcfs_prefix;
          Alcotest.test_case "backfills smaller vjob" `Quick
            test_rjsp_skips_then_fits_later_vjob;
          Alcotest.test_case "re-evaluates sleeping" `Quick
            test_rjsp_reevaluates_sleeping;
          Alcotest.test_case "overload suspends last" `Quick
            test_rjsp_overload_suspends_last;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "prefers no move" `Quick
            test_optimizer_prefers_no_move;
          Alcotest.test_case "prefers local resume" `Quick
            test_optimizer_prefers_local_resume;
          Alcotest.test_case "respects viability" `Quick
            test_optimizer_respects_viability;
          Alcotest.test_case "beats ffd" `Quick
            test_optimizer_beats_ffd_on_relocation;
          Alcotest.test_case "empty placement" `Quick
            test_optimizer_empty_placed;
        ] );
      ( "decision+loop",
        [
          Alcotest.test_case "consolidation fixes overload" `Quick
            test_decision_consolidation_suspends_overload;
          Alcotest.test_case "stops finished vjobs" `Quick
            test_decision_stops_finished;
          Alcotest.test_case "loop to completion" `Quick
            test_loop_runs_to_completion;
          Alcotest.test_case "loop hooks bracket switch" `Quick
            test_loop_hooks_bracket_switch;
          Alcotest.test_case "loop resume injects plan" `Quick
            test_loop_resume_injects_plan;
          Alcotest.test_case "loop resume degraded recovers" `Quick
            test_loop_resume_degraded_recovers_afresh;
          Alcotest.test_case "loop recovers degraded switch" `Quick
            test_loop_recovers_degraded_switch;
          Alcotest.test_case "degraded outcome guards livelock" `Quick
            test_loop_degraded_outcome_guards_livelock;
          Alcotest.test_case "event-driven decision" `Quick
            test_loop_decide_event_matches_step;
        ] );
      ( "properties",
        qsuite
          [
            prop_ffd_configs_are_viable;
            prop_planner_plans_are_valid;
            prop_optimizer_never_worse_than_ffd;
            prop_plan_cost_at_least_lower_bound;
          ] );
    ]
