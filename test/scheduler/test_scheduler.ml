(* Tests for the traditional-RMS baseline: free-node profiles, FCFS and
   backfilling schedules (the Figure 1 story) and the static-allocation
   run used as the Figure 12/13 baseline. *)

module Job = Batch.Job
module Profile = Batch.Profile
module Rms = Batch.Rms
module Static_alloc = Batch.Static_alloc
module Trace = Vworkload.Trace
module Nasgrid = Vworkload.Nasgrid
module Program = Vworkload.Program

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

let job ?(arrival = 0.) id nodes walltime =
  Job.make ~id ~name:(Printf.sprintf "job%d" id) ~arrival
    ~nodes_required:nodes ~walltime ~actual:walltime ()

(* -- profile --------------------------------------------------------------- *)

let test_profile_initially_free () =
  let p = Profile.create ~capacity:10 in
  check_int "free" 10 (Profile.free_at p 0.);
  check_int "free later" 10 (Profile.free_at p 1000.)

let test_profile_allocate () =
  let p = Profile.create ~capacity:10 in
  Profile.allocate p ~start:5. ~finish:15. ~nodes:4;
  check_int "before" 10 (Profile.free_at p 0.);
  check_int "during" 6 (Profile.free_at p 5.);
  check_int "during 2" 6 (Profile.free_at p 14.9);
  check_int "after" 10 (Profile.free_at p 15.)

let test_profile_stacked_allocations () =
  let p = Profile.create ~capacity:10 in
  Profile.allocate p ~start:0. ~finish:10. ~nodes:4;
  Profile.allocate p ~start:5. ~finish:20. ~nodes:4;
  check_int "overlap" 2 (Profile.free_at p 7.);
  check_int "tail" 6 (Profile.free_at p 12.);
  check_bool "over-allocation rejected" true
    (try
       Profile.allocate p ~start:6. ~finish:8. ~nodes:3;
       false
     with Invalid_argument _ -> true)

let test_profile_earliest () =
  let p = Profile.create ~capacity:10 in
  Profile.allocate p ~start:0. ~finish:10. ~nodes:8;
  (* 5 nodes for 5 s: must wait for t=10 *)
  check_float 1e-9 "waits" 10.
    (Profile.earliest p ~after:0. ~nodes:5 ~duration:5.);
  (* 2 nodes fit immediately *)
  check_float 1e-9 "fits now" 0.
    (Profile.earliest p ~after:0. ~nodes:2 ~duration:5.);
  (* a hole too short does not count *)
  Profile.allocate p ~start:12. ~finish:20. ~nodes:8;
  check_float 1e-9 "hole too short" 20.
    (Profile.earliest p ~after:0. ~nodes:5 ~duration:5.)

(* regression: the full-capacity request on a packed profile must fall
   through every busy candidate to the trailing all-free segment,
   never hit an assertion *)
let test_profile_earliest_total () =
  let p = Profile.create ~capacity:10 in
  Profile.allocate p ~start:0. ~finish:10. ~nodes:1;
  Profile.allocate p ~start:10. ~finish:30. ~nodes:1;
  (* only the trailing segment ever has all 10 nodes *)
  check_float 1e-9 "full capacity waits for the end" 30.
    (Profile.earliest p ~after:0. ~nodes:10 ~duration:5.);
  (* asking from beyond every breakpoint stays total too *)
  check_float 1e-9 "beyond all breakpoints" 100.
    (Profile.earliest p ~after:100. ~nodes:10 ~duration:5.)

(* -- rms -------------------------------------------------------------------- *)

let test_fcfs_strict_order () =
  (* Figure 1 (b) setting: job2 small, could start early, but strict
     FCFS keeps start order *)
  let jobs = [ job 0 8 10.; job 1 8 10.; job 2 2 5. ] in
  let s = Rms.fcfs ~capacity:10 jobs in
  let starts =
    List.map (fun (p : Job.placement) -> (p.Job.job.Job.id, p.Job.start)) s.Rms.placements
  in
  check_float 1e-9 "job0 at 0" 0. (List.assoc 0 starts);
  check_float 1e-9 "job1 at 10" 10. (List.assoc 1 starts);
  (* strict: job2 cannot start before job1 even though 2 nodes are free *)
  check_float 1e-9 "job2 after job1" 10. (List.assoc 2 starts)

let test_backfill_fills_holes () =
  let jobs = [ job 0 8 10.; job 1 8 10.; job 2 2 5. ] in
  let s = Rms.backfill ~capacity:10 jobs in
  let starts =
    List.map (fun (p : Job.placement) -> (p.Job.job.Job.id, p.Job.start)) s.Rms.placements
  in
  (* job2 backfills beside job0 *)
  check_float 1e-9 "job2 backfilled" 0. (List.assoc 2 starts);
  check_bool "makespan not worse" true (s.Rms.makespan <= (Rms.fcfs ~capacity:10 jobs).Rms.makespan)

let test_backfill_never_delays_reserved_jobs () =
  (* the backfilled job fits entirely in the hole: earlier jobs keep
     their starts *)
  let jobs = [ job 0 6 10.; job 1 10 10.; job 2 4 10. ] in
  let strict = Rms.fcfs ~capacity:10 jobs in
  let bf = Rms.backfill ~capacity:10 jobs in
  let start sched id =
    let p =
      List.find
        (fun (p : Job.placement) -> p.Job.job.Job.id = id)
        sched.Rms.placements
    in
    p.Job.start
  in
  check_float 1e-9 "job1 unchanged" (start strict 1) (start bf 1);
  check_bool "job2 earlier" true (start bf 2 < start strict 2)

let test_release_actual_vs_walltime () =
  (* the slot is twice the actual duration: rigid reservations waste it *)
  let j0 =
    Job.make ~id:0 ~name:"j0" ~nodes_required:10 ~walltime:20. ~actual:10. ()
  in
  let j1 =
    Job.make ~id:1 ~name:"j1" ~nodes_required:10 ~walltime:10. ~actual:10. ()
  in
  let rigid = Rms.fcfs ~release:Rms.Walltime ~capacity:10 [ j0; j1 ] in
  let oracle = Rms.fcfs ~release:Rms.Actual ~capacity:10 [ j0; j1 ] in
  check_float 1e-9 "rigid waits the slot" 30. rigid.Rms.makespan;
  check_float 1e-9 "oracle packs tight" 20. oracle.Rms.makespan

let test_killed_job () =
  let j = Job.make ~id:0 ~name:"late" ~nodes_required:1 ~walltime:10. ~actual:15. () in
  check_bool "killed" true (Job.killed j);
  let p = { Job.job = j; start = 0. } in
  check_bool "no completion" true (Job.completion p = None);
  check_float 1e-9 "slot end" 10. (Job.slot_end p)

let test_preemptive_lower_bound () =
  let jobs = [ job 0 5 10.; job 1 5 10.; job 2 10 10. ] in
  (* area = 50+50+100 = 200 over 10 nodes -> 20 s *)
  check_float 1e-9 "area bound" 20. (Rms.preemptive_lower_bound ~capacity:10 jobs);
  (* a single long job dominates *)
  let jobs = [ job 0 1 100. ] in
  check_float 1e-9 "longest bound" 100.
    (Rms.preemptive_lower_bound ~capacity:10 jobs)

let test_used_nodes () =
  let jobs = [ job 0 6 10.; job 1 6 10. ] in
  let s = Rms.fcfs ~capacity:10 jobs in
  check_int "one job at t=5" 6 (Rms.used_nodes s 5.);
  check_int "second at t=15" 6 (Rms.used_nodes s 15.);
  check_int "none at t=25" 0 (Rms.used_nodes s 25.)

(* -- static allocation ------------------------------------------------------- *)

let test_nodes_required_ffd () =
  (* 9 full-CPU VMs on 2-core nodes: at least 5 nodes; memory can push
     it higher *)
  let t = Trace.make ~seed:0 ~vm_count:9 Nasgrid.Ed Nasgrid.W in
  let n = Static_alloc.nodes_required ~node_cpu:200 ~node_mem:3584 t in
  check_bool "at least ceil(9/2)" true (n >= 5);
  check_bool "at most 9" true (n <= 9)

let test_job_of_trace () =
  let t = Trace.make ~seed:0 ~vm_count:9 Nasgrid.Ed Nasgrid.W in
  let j = Static_alloc.job_of_trace ~node_cpu:200 ~node_mem:3584 ~id:0 t in
  check_float 1e-6 "actual is min duration" (Trace.min_duration t) j.Job.actual;
  check_bool "walltime overestimated" true (j.Job.walltime > j.Job.actual)

let test_static_run_fits_capacity () =
  let traces =
    List.init 8 (fun i ->
        let family = List.nth Nasgrid.families (i mod 4) in
        Trace.make ~seed:i ~vm_count:9 family Nasgrid.W)
  in
  let run = Static_alloc.run ~capacity:11 ~node_cpu:200 ~node_mem:3584 traces in
  check_int "all placed" 8 (List.length run.Static_alloc.schedule.Rms.placements);
  (* node usage never exceeds the cluster *)
  let rec check_time t =
    if t < Static_alloc.makespan run then begin
      check_bool "within capacity" true
        (Rms.used_nodes run.Static_alloc.schedule t <= 11);
      check_time (t +. 60.)
    end
  in
  check_time 0.

let test_static_demand_at () =
  let prog = [ Program.Compute 10.; Program.Idle 5.; Program.Compute 10. ] in
  check_int "computing" 100 (Static_alloc.demand_at prog 5.);
  check_int "idling" 5 (Static_alloc.demand_at prog 12.);
  check_int "computing again" 100 (Static_alloc.demand_at prog 20.);
  check_int "done" 0 (Static_alloc.demand_at prog 30.)

let test_profile_min_free () =
  let p = Profile.create ~capacity:10 in
  Profile.allocate p ~start:2. ~finish:6. ~nodes:4;
  Profile.allocate p ~start:4. ~finish:8. ~nodes:3;
  check_int "overlap window" 3 (Profile.min_free p ~start:0. ~finish:10.);
  check_int "early window" 6 (Profile.min_free p ~start:0. ~finish:4.);
  check_int "free tail" 10 (Profile.min_free p ~start:8. ~finish:20.)

let test_static_backfill_policy () =
  let traces =
    List.init 4 (fun i ->
        let family = List.nth Nasgrid.families (i mod 4) in
        Trace.make ~seed:i ~vm_count:9 family Nasgrid.W)
  in
  let fcfs =
    Static_alloc.run ~policy:`Fcfs ~capacity:11 ~node_cpu:200 ~node_mem:3584
      traces
  in
  let bf =
    Static_alloc.run ~policy:`Backfill ~capacity:11 ~node_cpu:200
      ~node_mem:3584 traces
  in
  check_bool "backfill never worse" true
    (Static_alloc.makespan bf <= Static_alloc.makespan fcfs +. 1e-9)

let test_static_series_shape () =
  let traces = [ Trace.make ~seed:0 ~vm_count:9 Nasgrid.Ed Nasgrid.W ] in
  let run = Static_alloc.run ~capacity:11 ~node_cpu:200 ~node_mem:3584 traces in
  let series = Static_alloc.series ~period:10. run in
  check_bool "non empty" true (series <> []);
  let _, (mem, cpu) = List.hd series in
  (* at t=0 the job runs: 9 VMs of memory, 9 full CPUs *)
  check_bool "mem positive" true (mem > 0);
  check_int "9 computing VMs" 900 cpu

let prop_simulate_sound =
  QCheck.Test.make ~name:"online simulation: arrivals respected, capacity held"
    ~count:200
    QCheck.(
      small_list (triple (int_range 1 10) (int_range 1 40) (int_range 0 60)))
    (fun specs ->
      QCheck.assume (specs <> []);
      let jobs =
        List.mapi
          (fun i (n, w, a) ->
            Job.make ~id:i ~name:(Printf.sprintf "j%d" i)
              ~arrival:(float_of_int a) ~nodes_required:n
              ~walltime:(float_of_int w) ~actual:(float_of_int w) ())
          specs
      in
      let s = Rms.simulate ~capacity:10 jobs in
      let all_placed = List.length s.Rms.placements = List.length jobs in
      let arrivals_ok =
        List.for_all
          (fun (p : Job.placement) -> p.Job.start >= p.Job.job.Job.arrival)
          s.Rms.placements
      in
      let capacity_ok =
        let ok = ref true in
        let t = ref 0.5 in
        while !t < s.Rms.makespan do
          if Rms.used_nodes ~release:Rms.Actual s !t > 10 then ok := false;
          t := !t +. 1.
        done;
        !ok
      in
      all_placed && arrivals_ok && capacity_ok)

let prop_online_beats_rigid =
  QCheck.Test.make
    ~name:"online RMS never slower than rigid slots (same order, early release)"
    ~count:200
    QCheck.(small_list (pair (int_range 1 10) (int_range 1 40)))
    (fun specs ->
      QCheck.assume (specs <> []);
      (* actual = walltime/2: rigid slots waste half of every slot *)
      let jobs =
        List.mapi
          (fun i (n, w) ->
            Job.make ~id:i ~name:(Printf.sprintf "j%d" i) ~nodes_required:n
              ~walltime:(float_of_int (2 * w))
              ~actual:(float_of_int w) ())
          specs
      in
      let online = Rms.simulate ~backfill:false ~capacity:10 jobs in
      let rigid = Rms.fcfs ~release:Rms.Walltime ~capacity:10 jobs in
      online.Rms.makespan <= rigid.Rms.makespan +. 1e-9)

let prop_backfill_beats_fcfs =
  QCheck.Test.make ~name:"backfilling never worse than strict FCFS" ~count:200
    QCheck.(
      small_list (pair (int_range 1 10) (int_range 1 50)))
    (fun specs ->
      QCheck.assume (specs <> []);
      let jobs =
        List.mapi (fun i (n, w) -> job i n (float_of_int w)) specs
      in
      let strict = Rms.fcfs ~capacity:10 jobs in
      let bf = Rms.backfill ~capacity:10 jobs in
      bf.Rms.makespan <= strict.Rms.makespan +. 1e-9)

let prop_schedule_respects_capacity =
  QCheck.Test.make ~name:"schedules never exceed capacity" ~count:200
    QCheck.(small_list (pair (int_range 1 10) (int_range 1 50)))
    (fun specs ->
      QCheck.assume (specs <> []);
      let jobs = List.mapi (fun i (n, w) -> job i n (float_of_int w)) specs in
      let s = Rms.backfill ~capacity:10 jobs in
      let ok = ref true in
      let t = ref 0.5 in
      while !t < s.Rms.makespan do
        if Rms.used_nodes s !t > 10 then ok := false;
        t := !t +. 1.
      done;
      !ok)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "batch"
    [
      ( "profile",
        [
          Alcotest.test_case "initially free" `Quick test_profile_initially_free;
          Alcotest.test_case "allocate" `Quick test_profile_allocate;
          Alcotest.test_case "stacked" `Quick test_profile_stacked_allocations;
          Alcotest.test_case "earliest" `Quick test_profile_earliest;
          Alcotest.test_case "earliest is total" `Quick
            test_profile_earliest_total;
          Alcotest.test_case "min free" `Quick test_profile_min_free;
        ] );
      ( "rms",
        [
          Alcotest.test_case "fcfs strict" `Quick test_fcfs_strict_order;
          Alcotest.test_case "backfill fills holes (fig 1)" `Quick
            test_backfill_fills_holes;
          Alcotest.test_case "backfill no delay" `Quick
            test_backfill_never_delays_reserved_jobs;
          Alcotest.test_case "release modes" `Quick
            test_release_actual_vs_walltime;
          Alcotest.test_case "killed job" `Quick test_killed_job;
          Alcotest.test_case "preemptive bound" `Quick
            test_preemptive_lower_bound;
          Alcotest.test_case "used nodes" `Quick test_used_nodes;
        ]
        @ qsuite
            [
              prop_backfill_beats_fcfs;
              prop_schedule_respects_capacity;
              prop_simulate_sound;
              prop_online_beats_rigid;
            ] );
      ( "static_alloc",
        [
          Alcotest.test_case "nodes required" `Quick test_nodes_required_ffd;
          Alcotest.test_case "job of trace" `Quick test_job_of_trace;
          Alcotest.test_case "fits capacity" `Quick
            test_static_run_fits_capacity;
          Alcotest.test_case "demand at" `Quick test_static_demand_at;
          Alcotest.test_case "backfill policy" `Quick
            test_static_backfill_policy;
          Alcotest.test_case "series shape" `Quick test_static_series_shape;
        ] );
    ]
