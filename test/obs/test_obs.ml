(* Tests for the observability layer (lib/obs): JSON round-trips, span
   nesting in the exported trace, histogram percentiles, counter
   monotonicity, the [Obs.enabled] guard, and the integration with the
   CP kernel's per-propagator statistics. *)

module Json = Entropy_obs.Json
module Trace = Entropy_obs.Trace
module Metrics = Entropy_obs.Metrics
module Obs = Entropy_obs.Obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" name

let number j =
  match Json.number j with
  | Some f -> f
  | None -> Alcotest.fail "not a number"

let string_value j =
  match Json.string_value j with
  | Some s -> s
  | None -> Alcotest.fail "not a string"

let to_list j =
  match Json.to_list j with
  | Some l -> l
  | None -> Alcotest.fail "not a list"

(* with-enabled bracket: every test leaves the global obs state clean *)
let with_obs f =
  Obs.enabled := true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.enabled := false;
      Obs.reset ())
    f

(* burn a little wall time so nested spans get distinct timestamps *)
let spin_us us =
  let t0 = Unix.gettimeofday () in
  while (Unix.gettimeofday () -. t0) *. 1e6 < us do
    ()
  done

(* -- json -------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nstring");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2 ]);
      ]
  in
  let j' = Json.parse (Json.to_string j) in
  check_string "string" "a \"quoted\"\nstring" (string_value (field "s" j'));
  check_int "int" (-42) (int_of_float (number (field "i" j')));
  Alcotest.(check (float 1e-9)) "float" 1.5 (number (field "f" j'));
  check_bool "bool" true (field "b" j' = Json.Bool true);
  check_bool "null" true (field "n" j' = Json.Null);
  check_int "list" 2 (List.length (to_list (field "l" j')))

let test_json_parse_error () =
  check_bool "garbage rejected" true
    (match Json.parse "{ \"a\": }" with
    | exception Json.Parse_error _ -> true
    | _ -> false)

(* -- trace spans -------------------------------------------------------------- *)

let test_span_nesting () =
  with_obs (fun () ->
      let r =
        Obs.span ~cat:"t" ~name:"outer" (fun () ->
            spin_us 40.;
            let a = Obs.span ~cat:"t" ~name:"inner1" (fun () -> spin_us 40.; 1) in
            let b = Obs.span ~cat:"t" ~name:"inner2" (fun () -> spin_us 40.; 2) in
            a + b)
      in
      check_int "result threaded through" 3 r;
      let json = Json.parse (Json.to_string (Trace.to_json ())) in
      let events = to_list (field "traceEvents" json) in
      let complete =
        List.filter (fun e -> string_value (field "ph" e) = "X") events
      in
      check_int "three spans" 3 (List.length complete);
      let by_name n =
        List.find (fun e -> string_value (field "name" e) = n) complete
      in
      let outer = by_name "outer" in
      let inner1 = by_name "inner1" in
      let inner2 = by_name "inner2" in
      let ts e = number (field "ts" e) in
      let dur e = number (field "dur" e) in
      (* containment: both inners inside the outer, in order *)
      check_bool "inner1 starts after outer" true (ts inner1 >= ts outer);
      check_bool "inner2 after inner1" true
        (ts inner2 >= ts inner1 +. dur inner1);
      check_bool "inner2 ends within outer" true
        (ts inner2 +. dur inner2 <= ts outer +. dur outer +. 1.);
      (* sort order in the export: parents before children on ties *)
      let names =
        List.map (fun e -> string_value (field "name" e)) complete
      in
      Alcotest.(check (list string))
        "export order" [ "outer"; "inner1"; "inner2" ] names)

let test_span_exception () =
  with_obs (fun () ->
      check_bool "exception propagates" true
        (match
           Obs.span ~name:"boom" (fun () -> failwith "expected")
         with
        | exception Failure _ -> true
        | _ -> false);
      match Trace.events () with
      | [ e ] ->
        check_string "span recorded" "boom" e.Trace.name;
        check_bool "tagged raised" true
          (List.mem_assoc "raised" e.Trace.args)
      | l -> Alcotest.failf "expected 1 event, got %d" (List.length l))

let test_instant_and_sim_track () =
  with_obs (fun () ->
      Obs.instant ~cat:"c" "tick";
      Obs.sim_span ~name:"sim.migrate" ~at_s:10. ~dur_s:5. ();
      Obs.sim_instant ~at_s:12. "sim.mark";
      let json = Json.parse (Json.to_string (Trace.to_json ())) in
      let events = to_list (field "traceEvents" json) in
      let find n =
        List.find (fun e -> string_value (field "name" e) = n) events
      in
      check_string "instant phase" "i" (string_value (field "ph" (find "tick")));
      (* simulated seconds are exported as microsecond timestamps *)
      Alcotest.(check (float 1e-6))
        "sim ts scaled" 10e6
        (number (field "ts" (find "sim.migrate")));
      Alcotest.(check (float 1e-6))
        "sim dur scaled" 5e6
        (number (field "dur" (find "sim.migrate")));
      let tid e = int_of_float (number (field "tid" e)) in
      check_int "sim track" Trace.tid_sim (tid (find "sim.mark"));
      check_int "wall track" Trace.tid_main (tid (find "tick")))

let test_ring_buffer_drops_oldest () =
  with_obs (fun () ->
      Trace.set_capacity 8;
      Fun.protect
        ~finally:(fun () -> Trace.set_capacity 65536)
        (fun () ->
          for i = 0 to 19 do
            Obs.instant (Printf.sprintf "e%d" i)
          done;
          check_int "recorded all" 20 (Trace.recorded ());
          check_int "dropped overflow" 12 (Trace.dropped ());
          match Trace.events () with
          | { Trace.name = "e12"; _ } :: _ as l ->
            check_int "kept the last 8" 8 (List.length l)
          | { Trace.name; _ } :: _ ->
            Alcotest.failf "oldest survivor is %s, expected e12" name
          | [] -> Alcotest.fail "no events"))

(* -- the enabled guard --------------------------------------------------------- *)

let test_disabled_records_nothing () =
  Obs.enabled := false;
  Obs.reset ();
  let r = Obs.span ~name:"ghost" (fun () -> 7) in
  check_int "span still runs f" 7 r;
  Obs.instant "ghost2";
  Obs.sim_span ~name:"ghost3" ~at_s:0. ~dur_s:1. ();
  check_int "nothing recorded" 0 (Trace.recorded ());
  check_bool "no events" true (Trace.events () = [])

(* -- metrics ------------------------------------------------------------------- *)

let test_counter_monotone () =
  with_obs (fun () ->
      let c = Metrics.counter "test.count" in
      Metrics.incr c;
      Metrics.add c 41;
      check_int "accumulated" 42 (Metrics.counter_value c);
      check_bool "negative add rejected" true
        (match Metrics.add c (-1) with
        | exception Invalid_argument _ -> true
        | () -> false);
      check_int "value unchanged after bad add" 42 (Metrics.counter_value c);
      (* find-or-register returns the same underlying counter *)
      Metrics.incr (Metrics.counter "test.count");
      check_int "same handle" 43 (Metrics.counter_value c);
      (* a name registered as a counter cannot come back as a gauge *)
      check_bool "type clash rejected" true
        (match Metrics.gauge "test.count" with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_histogram_percentiles () =
  with_obs (fun () ->
      let h = Metrics.histogram "test.hist" in
      for v = 1 to 10_000 do
        Metrics.observe h (float_of_int v)
      done;
      check_int "count" 10_000 (Metrics.observed h);
      Alcotest.(check (float 1.)) "sum" 50_005_000. (Metrics.sum h);
      let within q expected =
        let got = Metrics.quantile h q in
        let err = Float.abs (got -. expected) /. expected in
        if err > 0.10 then
          Alcotest.failf "p%.0f = %.1f, expected %.1f +-10%%" (q *. 100.)
            got expected
      in
      within 0.50 5000.;
      within 0.95 9500.;
      within 0.99 9900.;
      (* quantiles are clamped to the exact envelope *)
      check_bool "p100 <= max" true (Metrics.quantile h 1.0 <= 10_000.);
      check_bool "p0 >= min" true (Metrics.quantile h 0.0 >= 1.))

(* edge cases hardened for flight-recorder reports: an empty histogram
   answers 0 (not nan), a single sample answers itself, and quantiles
   never fall below the smallest observed value even when the first
   log-scale bucket (which absorbs v <= 0) is selected *)
let test_histogram_quantile_edge_cases () =
  with_obs (fun () ->
      let h = Metrics.histogram "test.hist.edge" in
      Alcotest.(check (float 0.)) "empty -> 0" 0. (Metrics.quantile h 0.5);
      Metrics.observe h 37.5;
      Alcotest.(check (float 0.)) "single sample p0" 37.5
        (Metrics.quantile h 0.0);
      Alcotest.(check (float 0.)) "single sample p50" 37.5
        (Metrics.quantile h 0.5);
      Alcotest.(check (float 0.)) "single sample p100" 37.5
        (Metrics.quantile h 1.0);
      let h2 = Metrics.histogram "test.hist.neg" in
      Metrics.observe h2 (-5.);
      Metrics.observe h2 10.;
      (* the negative sample lands in bucket 0; the p50 answer must be
         the observed minimum, not the bucket's synthetic midpoint *)
      Alcotest.(check (float 0.)) "negative min p50" (-5.)
        (Metrics.quantile h2 0.5);
      check_bool "p100 within envelope" true (Metrics.quantile h2 1.0 <= 10.))

let test_trace_dropped_gauge () =
  with_obs (fun () ->
      Trace.set_capacity 4;
      Fun.protect
        ~finally:(fun () -> Trace.set_capacity 65536)
        (fun () ->
          for i = 0 to 2 do
            Obs.instant (Printf.sprintf "g%d" i)
          done;
          (* under capacity: the gauge stays at zero *)
          Alcotest.(check (float 0.)) "no drops -> gauge zero" 0.
            (Metrics.gauge_value (Metrics.gauge "obs.trace.dropped"));
          for i = 3 to 9 do
            Obs.instant (Printf.sprintf "g%d" i)
          done;
          check_int "dropped" 6 (Trace.dropped ());
          Alcotest.(check (float 0.)) "gauge tracks drops" 6.
            (Metrics.gauge_value (Metrics.gauge "obs.trace.dropped"))))

let test_metrics_reset_keeps_handles () =
  with_obs (fun () ->
      let c = Metrics.counter "test.reset" in
      Metrics.add c 5;
      Metrics.reset ();
      check_int "zeroed" 0 (Metrics.counter_value c);
      (* the old handle still feeds the registry after a reset *)
      Metrics.incr c;
      check_int "handle still live" 1
        (List.assoc "test.reset" (Metrics.counters ())))

let test_metrics_json_and_prometheus () =
  with_obs (fun () ->
      Metrics.add (Metrics.counter "a.count") 3;
      Metrics.set (Metrics.gauge "b.gauge") 2.5;
      Metrics.observe (Metrics.histogram "c.hist") 10.;
      let json = Json.parse (Json.to_string (Metrics.to_json ())) in
      check_int "counter exported" 3
        (int_of_float (number (field "a.count" (field "counters" json))));
      Alcotest.(check (float 1e-9))
        "gauge exported" 2.5
        (number (field "b.gauge" (field "gauges" json)));
      let hist = field "c.hist" (field "histograms" json) in
      check_int "hist count" 1 (int_of_float (number (field "count" hist)));
      Alcotest.(check (float 1e-9)) "hist sum" 10. (number (field "sum" hist));
      let prom = Metrics.to_prometheus () in
      let has needle =
        let lh = String.length prom and ln = String.length needle in
        let rec go i =
          i + ln <= lh && (String.sub prom i ln = needle || go (i + 1))
        in
        go 0
      in
      check_bool "prom counter line" true (has "a_count 3");
      check_bool "prom counter type" true (has "# TYPE a_count counter");
      check_bool "prom gauge line" true (has "b_gauge 2.5");
      check_bool "prom summary count" true (has "c_hist_count 1"))

(* -- integration with the CP kernel -------------------------------------------- *)

let test_cp_search_instrumented () =
  with_obs (fun () ->
      let open Fdcp in
      let s = Store.create () in
      let vars = Array.init 8 (fun _ -> Store.new_var s ~lo:0 ~hi:3) in
      let items = Array.map (fun v -> Pack.item v 2) vars in
      Pack.post s ~items ~capacities:(Array.make 4 4) ();
      let sol, stats = Search.find_first s ~vars () in
      check_bool "solved" true (sol <> None);
      (* counters flushed by the search *)
      let counters = Metrics.counters () in
      check_bool "nodes counted" true
        (List.assoc "cp.search.nodes" counters > 0);
      check_bool "solutions counted" true
        (List.assoc "cp.search.solutions" counters >= 1);
      check_int "nodes match stats" stats.Search.nodes
        (List.assoc "cp.search.nodes" counters);
      (* the search span and the solution instant are in the trace *)
      let names = List.map (fun e -> e.Trace.name) (Trace.events ()) in
      check_bool "cp.search span" true (List.mem "cp.search" names);
      check_bool "cp.solution instant" true (List.mem "cp.solution" names);
      check_bool "cp.propagate spans" true (List.mem "cp.propagate" names);
      (* per-propagator stats accumulated on the store *)
      match Store.prop_stats s with
      | [] -> Alcotest.fail "no propagator stats"
      | stats ->
        List.iter
          (fun (name, wakes, runs, time_us) ->
            check_bool (name ^ " ran") true (runs > 0);
            check_bool (name ^ " woke") true (wakes >= runs);
            check_bool (name ^ " timed") true (time_us >= 0.))
          stats)

let test_cp_disabled_no_stats () =
  Obs.enabled := false;
  Obs.reset ();
  let open Fdcp in
  let s = Store.create () in
  let vars = Array.init 8 (fun _ -> Store.new_var s ~lo:0 ~hi:3) in
  let items = Array.map (fun v -> Pack.item v 2) vars in
  Pack.post s ~items ~capacities:(Array.make 4 4) ();
  let sol, _ = Search.find_first s ~vars () in
  check_bool "solved" true (sol <> None);
  check_bool "no per-propagator stats" true (Store.prop_stats s = []);
  check_int "no trace events" 0 (Trace.recorded ());
  (* registrations survive resets, but nothing was counted *)
  check_int "no search counts" 0
    (Option.value ~default:0
       (List.assoc_opt "cp.search.nodes" (Metrics.counters ())))

(* -- aggregate ----------------------------------------------------------------- *)

let test_aggregate () =
  with_obs (fun () ->
      Trace.complete ~name:"a" ~ts_us:0. ~dur_us:100. ();
      Trace.complete ~name:"b" ~ts_us:0. ~dur_us:10. ();
      Trace.complete ~name:"a" ~ts_us:200. ~dur_us:50. ();
      match Trace.aggregate () with
      | [ ("a", 2, total_a); ("b", 1, total_b) ] ->
        Alcotest.(check (float 1e-9)) "a total" 150. total_a;
        Alcotest.(check (float 1e-9)) "b total" 10. total_b
      | l -> Alcotest.failf "unexpected aggregate of length %d" (List.length l))

let () =
  Alcotest.run "entropy_obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse error" `Quick test_json_parse_error;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span exception" `Quick test_span_exception;
          Alcotest.test_case "instants + sim track" `Quick
            test_instant_and_sim_track;
          Alcotest.test_case "ring buffer" `Quick
            test_ring_buffer_drops_oldest;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
        ] );
      ( "guard",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter monotone" `Quick test_counter_monotone;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "quantile edge cases" `Quick
            test_histogram_quantile_edge_cases;
          Alcotest.test_case "trace dropped gauge" `Quick
            test_trace_dropped_gauge;
          Alcotest.test_case "reset keeps handles" `Quick
            test_metrics_reset_keeps_handles;
          Alcotest.test_case "json + prometheus" `Quick
            test_metrics_json_and_prometheus;
        ] );
      ( "cp-integration",
        [
          Alcotest.test_case "search instrumented" `Quick
            test_cp_search_instrumented;
          Alcotest.test_case "disabled leaves no stats" `Quick
            test_cp_disabled_no_stats;
        ] );
    ]
