(* Tests for the fault-injection library: injector determinism and
   model composition, supervisor policy arithmetic and outcome
   classification, plan salvage and FFD replanning, and the core salvage
   primitives they build on. *)

open Entropy_core
module Injector = Entropy_fault.Injector
module Supervisor = Entropy_fault.Supervisor
module Repair = Entropy_fault.Repair

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

let invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* a deterministic mixed action sequence *)
let actions =
  List.init 40 (fun i ->
      match i mod 4 with
      | 0 -> Action.Run { vm = i; dst = 0 }
      | 1 -> Action.Migrate { vm = i; src = 0; dst = 1 }
      | 2 -> Action.Suspend { vm = i; host = 0 }
      | _ -> Action.Stop { vm = i; host = 1 })

let fail_pattern inj =
  List.map (fun a -> (Injector.decide inj a).Injector.fail) actions

(* -- injector ---------------------------------------------------------------- *)

let test_injector_deterministic () =
  let mk () = Injector.create ~seed:7 [ Injector.Fail_rate { kind = None; rate = 0.5 } ] in
  Alcotest.(check (list bool))
    "same seed, same decisions"
    (fail_pattern (mk ())) (fail_pattern (mk ()));
  let other =
    Injector.create ~seed:8 [ Injector.Fail_rate { kind = None; rate = 0.5 } ]
  in
  check_bool "different seed diverges" false
    (fail_pattern (mk ()) = fail_pattern other)

let test_injector_none () =
  check_bool "is_none" true (Injector.is_none Injector.none);
  List.iter
    (fun a ->
      let d = Injector.decide Injector.none a in
      check_bool "never fails" false d.Injector.fail;
      check_float 1e-9 "nominal speed" 1. d.Injector.slowdown)
    actions;
  check_int "short-circuit counts nothing" 0 (Injector.decided Injector.none)

let test_injector_rate_bounds () =
  let always = Injector.create [ Injector.Fail_rate { kind = None; rate = 1.0 } ] in
  let never = Injector.create [ Injector.Fail_rate { kind = None; rate = 0.0 } ] in
  check_bool "rate 1 always fails" true
    (List.for_all (fun f -> f) (fail_pattern always));
  check_bool "rate 0 never fails" true
    (List.for_all not (fail_pattern never))

let test_injector_fail_nth () =
  let inj =
    Injector.create [ Injector.Fail_nth { kind = Injector.Migrate; nth = 2 } ]
  in
  let migrate vm = Action.Migrate { vm; src = 0; dst = 1 } in
  check_bool "1st migrate ok" false (Injector.decide inj (migrate 0)).Injector.fail;
  check_bool "runs not counted" false
    (Injector.decide inj (Action.Run { vm = 9; dst = 0 })).Injector.fail;
  check_bool "2nd migrate fails" true (Injector.decide inj (migrate 1)).Injector.fail;
  check_bool "3rd migrate ok" false (Injector.decide inj (migrate 2)).Injector.fail

let test_injector_slowdown_composes () =
  let inj =
    Injector.create
      [
        Injector.Slowdown { kind = None; factor = 2. };
        Injector.Slowdown { kind = Some Injector.Migrate; factor = 3. };
      ]
  in
  let d = Injector.decide inj (Action.Migrate { vm = 0; src = 0; dst = 1 }) in
  check_bool "slowdown does not fail" false d.Injector.fail;
  check_float 1e-9 "factors multiply" 6. d.Injector.slowdown;
  let d = Injector.decide inj (Action.Run { vm = 1; dst = 0 }) in
  check_float 1e-9 "only the generic model" 2. d.Injector.slowdown

let test_injector_predicate () =
  let inj =
    Injector.of_predicate (function Action.Migrate _ -> true | _ -> false)
  in
  check_bool "matches" true
    (Injector.decide inj (Action.Migrate { vm = 0; src = 0; dst = 1 })).Injector.fail;
  check_bool "others pass" false
    (Injector.decide inj (Action.Run { vm = 0; dst = 0 })).Injector.fail;
  (* deriving from [none] must not mutate the shared value *)
  let derived = Injector.with_predicate Injector.none (fun _ -> true) in
  check_bool "derived fails" true
    (Injector.decide derived (Action.Run { vm = 0; dst = 0 })).Injector.fail;
  check_int "none untouched" 0 (Injector.decided Injector.none)

let test_injector_node_crashes () =
  let inj =
    Injector.create
      [
        Injector.Crash_node { node = 3; at_s = 100. };
        Injector.Fail_rate { kind = None; rate = 0.1 };
        Injector.Crash_node { node = 1; at_s = 50. };
      ]
  in
  Alcotest.(check (list (pair int (float 1e-9))))
    "model order" [ (3, 100.); (1, 50.) ] (Injector.node_crashes inj)

let test_injector_crash_script () =
  let script =
    Injector.crash_script ~seed:5 ~node_count:20 ~horizon_s:3600. ~count:6 ()
  in
  let crashes = Injector.node_crashes (Injector.create script) in
  check_int "six crashes" 6 (List.length crashes);
  let nodes = List.map fst crashes in
  check_int "distinct nodes" 6 (List.length (List.sort_uniq compare nodes));
  check_bool "nodes in range" true
    (List.for_all (fun n -> n >= 0 && n < 20) nodes);
  let times = List.map snd crashes in
  check_bool "times inside the horizon" true
    (List.for_all (fun t -> t > 0. && t <= 3600.) times);
  check_bool "time ordered" true (List.sort Float.compare times = times);
  check_bool "deterministic" true
    (Injector.crash_script ~seed:5 ~node_count:20 ~horizon_s:3600. ~count:6 ()
    = script);
  check_bool "seed matters" true
    (Injector.crash_script ~seed:6 ~node_count:20 ~horizon_s:3600. ~count:6 ()
    <> script);
  check_bool "too many crashes rejected" true
    (invalid (fun () ->
         Injector.crash_script ~seed:0 ~node_count:3 ~horizon_s:10. ~count:4 ()));
  check_bool "bad horizon rejected" true
    (invalid (fun () ->
         Injector.crash_script ~seed:0 ~node_count:3 ~horizon_s:0. ~count:1 ()))

let test_injector_validation () =
  check_bool "rate > 1" true
    (invalid (fun () ->
         Injector.create [ Injector.Fail_rate { kind = None; rate = 1.5 } ]));
  check_bool "nth = 0" true
    (invalid (fun () ->
         Injector.create [ Injector.Fail_nth { kind = Injector.Run; nth = 0 } ]));
  check_bool "slowdown < 1" true
    (invalid (fun () ->
         Injector.create [ Injector.Slowdown { kind = None; factor = 0.5 } ]));
  check_bool "negative crash time" true
    (invalid (fun () ->
         Injector.create [ Injector.Crash_node { node = 0; at_s = -1. } ]))

let test_kind_round_trip () =
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "round trip"
        (Some (Injector.kind_to_string k))
        (Option.map Injector.kind_to_string
           (Injector.kind_of_string (Injector.kind_to_string k))))
    [
      Injector.Run; Injector.Stop; Injector.Migrate; Injector.Suspend;
      Injector.Resume; Injector.Suspend_ram; Injector.Resume_ram;
    ];
  Alcotest.(check (option string))
    "unknown" None
    (Option.map Injector.kind_to_string (Injector.kind_of_string "reboot"))

(* -- supervisor --------------------------------------------------------------- *)

let test_supervisor_timeout () =
  check_float 1e-9 "3x expected" 30.
    (Supervisor.timeout_s Supervisor.default_policy ~expected_s:10.);
  check_bool "no_retry never times out" true
    (Supervisor.timeout_s Supervisor.no_retry ~expected_s:10. = infinity)

let test_supervisor_backoff_doubles_and_caps () =
  let p = Supervisor.default_policy in
  check_float 1e-9 "first" 5. (Supervisor.backoff_s p ~attempt:1);
  check_float 1e-9 "second" 10. (Supervisor.backoff_s p ~attempt:2);
  check_float 1e-9 "third" 20. (Supervisor.backoff_s p ~attempt:3);
  (* 5 * 2^4 = 80 is capped at 60 *)
  check_float 1e-9 "capped" 60. (Supervisor.backoff_s p ~attempt:5)

(* Regression: far past the cap boundary the doubling term overflows to
   infinity, and the cap must still win — the delay stays the constant
   [backoff_max_s], finite, so scheduling retry n at [now + backoff]
   never overflows simulated time. *)
let test_supervisor_backoff_at_cap_boundary () =
  let p = Supervisor.make_policy ~max_retries:10_000 () in
  check_float 1e-9 "deep retry is capped" 60.
    (Supervisor.backoff_s p ~attempt:200);
  check_float 1e-9 "overflow-deep retry is capped" 60.
    (Supervisor.backoff_s p ~attempt:10_000);
  check_bool "capped backoff is finite" true
    (Float.is_finite (Supervisor.backoff_s p ~attempt:10_000));
  (* constant past the cap: attempt n and n+1 give the same delay *)
  check_float 1e-9 "constant past the cap"
    (Supervisor.backoff_s p ~attempt:500)
    (Supervisor.backoff_s p ~attempt:501);
  match Supervisor.next p ~attempts:9_000 Supervisor.Fault_injected with
  | `Retry d -> check_float 1e-9 "next at depth retries with the cap" 60. d
  | `Done _ -> Alcotest.fail "expected a retry under a huge retry budget"

let test_supervisor_next_classification () =
  let p = Supervisor.default_policy in
  (match Supervisor.next p ~attempts:2 Supervisor.Succeeded with
  | `Done (Supervisor.Completed { retries }) -> check_int "retries" 1 retries
  | _ -> Alcotest.fail "expected Completed");
  (match Supervisor.next p ~attempts:1 Supervisor.Fault_injected with
  | `Retry d -> check_float 1e-9 "backoff" 5. d
  | `Done _ -> Alcotest.fail "expected a retry");
  (* max_retries = 2: the third attempt is the last *)
  (match Supervisor.next p ~attempts:3 Supervisor.Fault_injected with
  | `Done (Supervisor.Failed { attempts }) -> check_int "attempts" 3 attempts
  | _ -> Alcotest.fail "expected Failed");
  (match Supervisor.next p ~attempts:3 Supervisor.Attempt_timed_out with
  | `Done (Supervisor.Timed_out { attempts }) -> check_int "attempts" 3 attempts
  | _ -> Alcotest.fail "expected Timed_out");
  match Supervisor.next Supervisor.no_retry ~attempts:1 Supervisor.Fault_injected with
  | `Done (Supervisor.Failed { attempts }) -> check_int "one shot" 1 attempts
  | _ -> Alcotest.fail "no_retry must be terminal"

let test_supervisor_succeeded () =
  check_bool "completed" true (Supervisor.succeeded (Supervisor.Completed { retries = 0 }));
  check_bool "failed" false (Supervisor.succeeded (Supervisor.Failed { attempts = 1 }));
  check_bool "node lost" false (Supervisor.succeeded (Supervisor.Node_lost { node = 0 }))

let test_supervisor_validation () =
  check_bool "zero factor" true
    (invalid (fun () -> Supervisor.make_policy ~timeout_factor:0. ()));
  check_bool "negative retries" true
    (invalid (fun () -> Supervisor.make_policy ~max_retries:(-1) ()));
  check_bool "negative backoff" true
    (invalid (fun () -> Supervisor.make_policy ~backoff_base_s:(-5.) ()))

(* -- salvage primitives (core) ------------------------------------------------- *)

let testbed_nodes n =
  Array.init n (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))

let mk_config ~nodes ~vm_count states =
  let vms =
    Array.init vm_count (fun i ->
        Vm.make ~id:i ~name:(Printf.sprintf "vm%d" i) ~memory_mb:512)
  in
  let config = Configuration.make ~nodes:(testbed_nodes nodes) ~vms in
  List.fold_left
    (fun cfg (vm, st) -> Configuration.set_state cfg vm st)
    config
    (List.mapi (fun i st -> (i, st)) states)

let test_salvage_target_pins_frozen () =
  let current =
    mk_config ~nodes:3 ~vm_count:2
      [ Configuration.Running 0; Configuration.Running 0 ]
  in
  let target =
    mk_config ~nodes:3 ~vm_count:2
      [ Configuration.Running 1; Configuration.Running 2 ]
  in
  let salvaged =
    Rgraph.salvage_target ~current ~target ~frozen:(fun vm -> vm = 0)
  in
  check_bool "frozen VM pinned to current" true
    (Configuration.state salvaged 0 = Configuration.Running 0);
  check_bool "other VM keeps its target" true
    (Configuration.state salvaged 1 = Configuration.Running 2)

let test_plan_restrict () =
  let run vm = Action.Run { vm; dst = 0 } in
  let plan = Plan.make [ [ run 0; run 1 ]; [ run 2 ] ] in
  let only_even =
    Plan.restrict plan ~keep:(function
      | Action.Run { vm; _ } -> vm mod 2 = 0
      | _ -> true)
  in
  check_int "two actions kept" 2 (Plan.action_count only_even);
  let none = Plan.restrict plan ~keep:(fun _ -> false) in
  check_bool "emptied pools dropped" true (Plan.is_empty none)

(* -- repair -------------------------------------------------------------------- *)

let demand2 = Demand.uniform ~vm_count:2 60

let test_repair_salvages_survivors () =
  (* both VMs should move to N1; vm0's migration failed. The salvaged
     plan moves only vm1 and leaves vm0 pinned on N0. *)
  let current =
    mk_config ~nodes:3 ~vm_count:2
      [ Configuration.Running 0; Configuration.Running 0 ]
  in
  let target =
    mk_config ~nodes:3 ~vm_count:2
      [ Configuration.Running 1; Configuration.Running 1 ]
  in
  match Repair.salvage ~current ~target ~demand:demand2 ~failed_vms:[ 0 ] () with
  | None -> Alcotest.fail "expected a salvaged plan"
  | Some o ->
    check_bool "salvaged" true (o.Repair.source = `Salvaged);
    check_int "one surviving action" 1 (Plan.action_count o.Repair.plan);
    check_bool "frozen VM stays" true
      (Configuration.state o.Repair.target 0 = Configuration.Running 0);
    check_bool "survivor reaches target" true
      (Configuration.state o.Repair.target 1 = Configuration.Running 1)

let test_repair_salvage_empty_falls_back () =
  (* the only remaining action failed: nothing survives, so repair falls
     back to an FFD replan that reissues work for the live queue *)
  let current = mk_config ~nodes:2 ~vm_count:1 [ Configuration.Waiting ] in
  let target = mk_config ~nodes:2 ~vm_count:1 [ Configuration.Running 0 ] in
  let demand = Demand.uniform ~vm_count:1 60 in
  let queue = [ Vjob.make ~id:0 ~name:"j0" ~vms:[ 0 ] () ] in
  check_bool "salvage finds nothing" true
    (Repair.salvage ~current ~target ~demand ~failed_vms:[ 0 ] () = None);
  match
    Repair.repair ~current ~target ~demand ~queue ~failed_vms:[ 0 ]
      ~lost_nodes:[] ()
  with
  | None -> Alcotest.fail "expected a replan"
  | Some o ->
    check_bool "replanned" true (o.Repair.source = `Replanned);
    check_bool "reissues the run" true (Plan.action_count o.Repair.plan >= 1)

let test_repair_lost_node_replans () =
  (* node 1 crashed: vm1 was reset to Waiting, the old target is void.
     Repair must go straight to a replan that avoids the dead node. *)
  let current =
    mk_config ~nodes:2 ~vm_count:2
      [ Configuration.Running 0; Configuration.Waiting ]
  in
  let dead = Configuration.nodes current in
  let dead =
    Array.mapi (fun i n -> if i = 1 then Node.crashed n else n) dead
  in
  let current = Configuration.with_nodes current dead in
  let target =
    mk_config ~nodes:2 ~vm_count:2
      [ Configuration.Running 0; Configuration.Running 1 ]
  in
  let queue =
    [
      Vjob.make ~id:0 ~name:"j0" ~vms:[ 0 ] ();
      Vjob.make ~id:1 ~name:"j1" ~vms:[ 1 ] ();
    ]
  in
  match
    Repair.repair ~current ~target ~demand:demand2 ~queue ~failed_vms:[]
      ~lost_nodes:[ 1 ] ()
  with
  | None -> Alcotest.fail "expected a replan"
  | Some o ->
    check_bool "replanned, not salvaged" true (o.Repair.source = `Replanned);
    check_bool "dead node unused" true
      (Configuration.state o.Repair.target 1 <> Configuration.Running 1
      && Configuration.state o.Repair.target 1 <> Configuration.Sleeping 1);
    List.iter
      (fun a ->
        match a with
        | Action.Run { dst; _ } | Action.Migrate { dst; _ }
        | Action.Resume { dst; _ } ->
          check_bool "no action lands on the dead node" true (dst <> 1)
        | Action.Stop _ | Action.Suspend _ | Action.Suspend_ram _
        | Action.Resume_ram _ -> ())
      (Plan.actions o.Repair.plan)

let test_resubmission_vjobs () =
  let config =
    mk_config ~nodes:2 ~vm_count:2
      [ Configuration.Running 0; Configuration.Sleeping 1 ]
  in
  let vjobs =
    [
      Vjob.make ~id:0 ~name:"j0" ~vms:[ 0 ] ();
      Vjob.make ~id:1 ~name:"j1" ~vms:[ 1 ] ();
    ]
  in
  let hit = Repair.resubmission_vjobs config vjobs ~lost_nodes:[ 1 ] in
  Alcotest.(check (list int))
    "only the vjob on the lost node" [ 1 ]
    (List.map Vjob.id hit);
  check_bool "nothing lost, nothing resubmitted" true
    (Repair.resubmission_vjobs config vjobs ~lost_nodes:[] = [])

(* Journal reconciliation hands repair a residue record; the
   residue-driven entry point must behave exactly like spelling the
   failure sets out by hand. *)
let test_repair_residue () =
  check_bool "no_residue is ok" true (Repair.residue_ok Repair.no_residue);
  let residue = { Repair.failed_vms = [ 0 ]; lost_nodes = [] } in
  check_bool "failed VM is residue" false (Repair.residue_ok residue);
  let current =
    mk_config ~nodes:3 ~vm_count:2
      [ Configuration.Running 0; Configuration.Running 0 ]
  in
  let target =
    mk_config ~nodes:3 ~vm_count:2
      [ Configuration.Running 1; Configuration.Running 1 ]
  in
  let by_residue =
    Repair.repair_residue ~current ~target ~demand:demand2 ~queue:[] residue
      ()
  in
  let by_hand =
    Repair.repair ~current ~target ~demand:demand2 ~queue:[] ~failed_vms:[ 0 ]
      ~lost_nodes:[] ()
  in
  match (by_residue, by_hand) with
  | Some r, Some h ->
    check_bool "same source" true (r.Repair.source = h.Repair.source);
    check_bool "same target" true
      (Configuration.equal r.Repair.target h.Repair.target);
    check_int "same plan size"
      (Plan.action_count h.Repair.plan)
      (Plan.action_count r.Repair.plan)
  | _ -> Alcotest.fail "expected repairs from both entry points"

(* -- node crash primitive ------------------------------------------------------- *)

let test_node_crashed_marker () =
  let n = Node.testbed ~id:0 ~name:"N0" in
  let dead = Node.crashed n in
  check_bool "zero capacity" true
    (Node.cpu_capacity dead = 0 && Node.memory_mb dead = 0);
  check_bool "is_crashed" true (Node.is_crashed dead);
  check_bool "live node is not" false (Node.is_crashed n)

(* -- run ------------------------------------------------------------------------ *)

let () =
  Alcotest.run "entropy_fault"
    [
      ( "injector",
        [
          Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
          Alcotest.test_case "none" `Quick test_injector_none;
          Alcotest.test_case "rate bounds" `Quick test_injector_rate_bounds;
          Alcotest.test_case "fail nth" `Quick test_injector_fail_nth;
          Alcotest.test_case "slowdown composes" `Quick
            test_injector_slowdown_composes;
          Alcotest.test_case "predicate" `Quick test_injector_predicate;
          Alcotest.test_case "node crashes" `Quick test_injector_node_crashes;
          Alcotest.test_case "crash script" `Quick test_injector_crash_script;
          Alcotest.test_case "validation" `Quick test_injector_validation;
          Alcotest.test_case "kind round trip" `Quick test_kind_round_trip;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "timeout" `Quick test_supervisor_timeout;
          Alcotest.test_case "backoff" `Quick
            test_supervisor_backoff_doubles_and_caps;
          Alcotest.test_case "backoff at cap boundary" `Quick
            test_supervisor_backoff_at_cap_boundary;
          Alcotest.test_case "classification" `Quick
            test_supervisor_next_classification;
          Alcotest.test_case "succeeded" `Quick test_supervisor_succeeded;
          Alcotest.test_case "validation" `Quick test_supervisor_validation;
        ] );
      ( "salvage-primitives",
        [
          Alcotest.test_case "salvage_target pins" `Quick
            test_salvage_target_pins_frozen;
          Alcotest.test_case "plan restrict" `Quick test_plan_restrict;
          Alcotest.test_case "crashed node marker" `Quick
            test_node_crashed_marker;
        ] );
      ( "repair",
        [
          Alcotest.test_case "salvages survivors" `Quick
            test_repair_salvages_survivors;
          Alcotest.test_case "empty salvage falls back" `Quick
            test_repair_salvage_empty_falls_back;
          Alcotest.test_case "lost node replans" `Quick
            test_repair_lost_node_replans;
          Alcotest.test_case "resubmission set" `Quick test_resubmission_vjobs;
          Alcotest.test_case "residue entry point" `Quick test_repair_residue;
        ] );
    ]
