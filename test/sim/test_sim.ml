(* Tests for the discrete-event simulator: heap, engine, the Figure 3
   performance model, cluster workload execution, plan execution and the
   end-to-end runner. *)

open Entropy_core
module Program = Vworkload.Program
module Trace = Vworkload.Trace
module Nasgrid = Vworkload.Nasgrid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

(* -- heap ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Vsim.Heap.create () in
  List.iter (fun (p, v) -> Vsim.Heap.push h p v) [ (3., "c"); (1., "a"); (2., "b") ];
  let pop () = match Vsim.Heap.pop h with Some (_, v) -> v | None -> "!" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ]

let test_heap_fifo_ties () =
  let h = Vsim.Heap.create () in
  List.iter (fun v -> Vsim.Heap.push h 1. v) [ "x"; "y"; "z" ];
  let pop () = match Vsim.Heap.pop h with Some (_, v) -> v | None -> "!" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "fifo" [ "x"; "y"; "z" ] [ first; second; third ]

let heap_pops_sorted =
  QCheck.Test.make ~name:"heap pops in priority order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun prios ->
      let h = Vsim.Heap.create () in
      List.iter (fun p -> Vsim.Heap.push h p p) prios;
      let rec drain acc =
        match Vsim.Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      drain [] = List.sort Float.compare prios)

let test_heap_tied_count () =
  let h = Vsim.Heap.create () in
  check_int "empty heap has no ties" 0 (Vsim.Heap.tied_count h);
  List.iter (fun v -> Vsim.Heap.push h 1. v) [ "x"; "y" ];
  Vsim.Heap.push h 2. "later";
  check_int "two events tied at the top" 2 (Vsim.Heap.tied_count h);
  ignore (Vsim.Heap.pop h);
  ignore (Vsim.Heap.pop h);
  check_int "one left" 1 (Vsim.Heap.tied_count h)

let test_heap_pop_tied () =
  let h = Vsim.Heap.create () in
  List.iter (fun v -> Vsim.Heap.push h 1. v) [ "x"; "y"; "z" ];
  Vsim.Heap.push h 2. "later";
  (* k indexes the tied events in insertion order *)
  Alcotest.(check string) "picks the k-th tie" "y" (Vsim.Heap.pop_tied h 1);
  Alcotest.(check string)
    "remaining ties keep order" "x" (Vsim.Heap.pop_tied h 0);
  Alcotest.(check string)
    "out-of-range clamps to FIFO" "z" (Vsim.Heap.pop_tied h 7);
  (match Vsim.Heap.pop h with
  | Some (p, v) ->
    check_float 1e-9 "non-tied event unharmed" 2. p;
    Alcotest.(check string) "non-tied value" "later" v
  | None -> Alcotest.fail "heap lost an event");
  check_bool "pop_tied on empty raises" true
    (try
       ignore (Vsim.Heap.pop_tied h 0);
       false
     with Invalid_argument _ -> true)

let heap_pop_tied_is_permutation =
  QCheck.Test.make ~name:"pop_tied drains a permutation" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 8) (int_bound 3)) (int_bound 7))
    (fun (prios, k) ->
      let h = Vsim.Heap.create () in
      List.iteri (fun i p -> Vsim.Heap.push h (float_of_int p) i) prios;
      let rec drain acc =
        if Vsim.Heap.is_empty h then List.rev acc
        else begin
          let p = Vsim.Heap.top_prio h in
          let v = Vsim.Heap.pop_tied h (k mod Vsim.Heap.tied_count h) in
          drain ((p, v) :: acc)
        end
      in
      let out = drain [] in
      (* all events come out, in non-decreasing priority order *)
      List.length out = List.length prios
      && List.sort compare (List.map snd out)
         = List.init (List.length prios) Fun.id
      && fst (List.fold_left
                (fun (ok, prev) (p, _) -> (ok && p >= prev, p))
                (true, neg_infinity) out))

(* -- engine ----------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Vsim.Engine.create () in
  let log = ref [] in
  ignore (Vsim.Engine.schedule e ~at:5. (fun () -> log := "b" :: !log));
  ignore (Vsim.Engine.schedule e ~at:1. (fun () -> log := "a" :: !log));
  Vsim.Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b" ] (List.rev !log);
  check_float 1e-9 "clock" 5. (Vsim.Engine.now e)

let test_engine_cancel () =
  let e = Vsim.Engine.create () in
  let fired = ref false in
  let h = Vsim.Engine.schedule e ~at:1. (fun () -> fired := true) in
  Vsim.Engine.cancel h;
  Vsim.Engine.run e;
  check_bool "not fired" false !fired

let test_engine_schedule_in_callback () =
  let e = Vsim.Engine.create () in
  let log = ref [] in
  ignore
    (Vsim.Engine.schedule e ~at:1. (fun () ->
         log := 1 :: !log;
         ignore
           (Vsim.Engine.schedule_after e ~delay:2. (fun () -> log := 2 :: !log))));
  Vsim.Engine.run e;
  Alcotest.(check (list int)) "chained" [ 1; 2 ] (List.rev !log);
  check_float 1e-9 "clock" 3. (Vsim.Engine.now e)

let test_engine_until () =
  let e = Vsim.Engine.create () in
  let count = ref 0 in
  ignore (Vsim.Engine.schedule e ~at:1. (fun () -> incr count));
  ignore (Vsim.Engine.schedule e ~at:10. (fun () -> incr count));
  Vsim.Engine.run ~until:5. e;
  check_int "only first" 1 !count

let test_engine_chooser () =
  (* with a chooser installed, tie-breaks among simultaneous events
     follow its choices instead of FIFO *)
  let run_with chooser =
    let e = Vsim.Engine.create () in
    let log = ref [] in
    List.iter
      (fun v -> ignore (Vsim.Engine.schedule e ~at:1. (fun () -> log := v :: !log)))
      [ "x"; "y"; "z" ];
    ignore (Vsim.Engine.schedule e ~at:2. (fun () -> log := "later" :: !log));
    Vsim.Engine.set_chooser e chooser;
    Vsim.Engine.run e;
    List.rev !log
  in
  Alcotest.(check (list string))
    "no chooser: FIFO"
    [ "x"; "y"; "z"; "later" ]
    (run_with None);
  (* always pick the last tie: z (of x,y,z), then y (of x,y), then x;
     the lone event at t=2 never consults the chooser *)
  let arities = ref [] in
  Alcotest.(check (list string))
    "chooser reverses the ties"
    [ "z"; "y"; "x"; "later" ]
    (run_with
       (Some
          (fun n ->
            arities := n :: !arities;
            n - 1)));
  Alcotest.(check (list int))
    "chooser consulted only on real ties" [ 3; 2 ] (List.rev !arities)

let test_engine_rejects_past () =
  let e = Vsim.Engine.create () in
  ignore (Vsim.Engine.schedule e ~at:2. (fun () -> ()));
  Vsim.Engine.run e;
  check_bool "past rejected" true
    (try
       ignore (Vsim.Engine.schedule e ~at:1. (fun () -> ()));
       false
     with Invalid_argument _ -> true)

(* -- perf model (Figure 3 calibration) -------------------------------------- *)

let p = Vsim.Perf_model.defaults

let test_perf_boot_stop_memory_independent () =
  check_float 1e-9 "boot" (Vsim.Perf_model.boot p) 6.;
  check_float 1e-9 "shutdown" (Vsim.Perf_model.clean_shutdown p) 25.

let test_perf_migrate_scales_with_memory () =
  let d512 = Vsim.Perf_model.migrate p ~memory_mb:512 in
  let d2048 = Vsim.Perf_model.migrate p ~memory_mb:2048 in
  check_bool "larger VM slower" true (d2048 > d512);
  (* paper: migrating a 2 GB VM takes up to ~26 s *)
  check_bool "2GB ~26s" true (d2048 > 20. && d2048 < 30.);
  check_bool "512MB <= 10s" true (d512 < 10.)

let test_perf_suspend_remote_doubles () =
  let local = Vsim.Perf_model.suspend p ~memory_mb:2048 ~transfer:Vsim.Perf_model.Local in
  let scp = Vsim.Perf_model.suspend p ~memory_mb:2048 ~transfer:Vsim.Perf_model.Scp in
  check_bool "local ~100s" true (local > 80. && local < 120.);
  check_bool "scp roughly doubles" true
    (scp > 1.7 *. local && scp < 2.3 *. local)

let test_perf_resume_remote_vs_local () =
  let local = Vsim.Perf_model.resume p ~memory_mb:2048 ~transfer:Vsim.Perf_model.Local in
  let scp = Vsim.Perf_model.resume p ~memory_mb:2048 ~transfer:Vsim.Perf_model.Scp in
  check_bool "local ~80s" true (local > 60. && local < 110.);
  check_bool "remote roughly 2x" true (scp > 1.7 *. local && scp < 2.4 *. local);
  (* the paper reports remote resumes of up to ~3 minutes *)
  check_bool "remote under 3.5 min" true (scp < 210.)

let test_perf_deceleration () =
  check_float 1e-9 "no busy" 1.
    (Vsim.Perf_model.deceleration p ~local:true ~busy_coresident:false);
  check_float 1e-9 "local busy" 1.3
    (Vsim.Perf_model.deceleration p ~local:true ~busy_coresident:true);
  check_float 1e-9 "remote busy" 1.5
    (Vsim.Perf_model.deceleration p ~local:false ~busy_coresident:true)

let test_perf_figure3_rows () =
  let rows = Vsim.Perf_model.figure3_rows () in
  check_int "3 memory sizes" 3 (List.length rows);
  List.iter
    (fun (_, cells) -> check_int "9 operations" 9 (List.length cells))
    rows;
  (* durations grow with memory for memory-led operations *)
  let value mem op =
    let _, cells = List.find (fun (m, _) -> m = mem) rows in
    List.assoc op cells
  in
  List.iter
    (fun op ->
      check_bool (op ^ " monotone") true
        (value 512 op < value 1024 op && value 1024 op < value 2048 op))
    [ "migrate"; "suspend local"; "resume local+scp" ];
  check_float 1e-9 "boot flat" (value 512 "start/run") (value 2048 "start/run")

let test_perf_action_duration_contention () =
  let nodes = [| Node.testbed ~id:0 ~name:"N0"; Node.testbed ~id:1 ~name:"N1" |] in
  let vms = [| Vm.make ~id:0 ~name:"vm0" ~memory_mb:1024 |] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let action = Action.Migrate { vm = 0; src = 0; dst = 1 } in
  let quiet = Vsim.Perf_model.action_duration ~busy:(fun _ -> false) action config in
  let busy = Vsim.Perf_model.action_duration ~busy:(fun _ -> true) action config in
  check_float 1e-6 "busy = 1.5x quiet" (quiet *. 1.5) busy

(* -- cluster ----------------------------------------------------------------- *)

let mk_cluster ?(node_count = 2) ?(cpu = 200) ?(mem = 3584) ~programs
    ~memories () =
  let engine = Vsim.Engine.create () in
  let nodes =
    Array.init node_count (fun i ->
        Node.make ~id:i ~name:(Printf.sprintf "N%d" i) ~cpu_capacity:cpu
          ~memory_mb:mem)
  in
  let vms =
    Array.of_list
      (List.mapi
         (fun i m -> Vm.make ~id:i ~name:(Printf.sprintf "vm%d" i) ~memory_mb:m)
         memories)
  in
  let config = Configuration.make ~nodes ~vms in
  let vjobs =
    [ Vjob.make ~id:0 ~name:"j0" ~vms:(List.mapi (fun i _ -> i) memories) () ]
  in
  let programs_arr = Array.of_list programs in
  let cluster =
    Vsim.Cluster.create ~engine ~config ~vjobs
      ~programs:(fun vm -> programs_arr.(vm))
      ()
  in
  (engine, cluster, vjobs)

let run_all vms_hosts engine cluster =
  (* place VMs and let the engine drain *)
  let config =
    List.fold_left
      (fun cfg (vm, node) -> Action.apply cfg (Action.Run { vm; dst = node }))
      (Vsim.Cluster.config cluster) vms_hosts
  in
  Vsim.Cluster.set_config cluster config;
  Vsim.Engine.run engine

let test_cluster_full_speed_compute () =
  let engine, cluster, _ =
    mk_cluster ~programs:[ [ Program.Compute 100. ] ] ~memories:[ 512 ] ()
  in
  run_all [ (0, 0) ] engine cluster;
  check_bool "complete" true (Vsim.Cluster.all_complete cluster);
  (* full speed: 100 cpu-seconds in ~100 s *)
  let _, t = List.hd (Vsim.Cluster.completions cluster) in
  check_float 0.5 "wall time" 100. t

let test_cluster_contention_halves_speed () =
  (* three full-CPU VMs on one 2-core node: each runs at 2/3 speed *)
  let engine, cluster, _ =
    mk_cluster
      ~programs:
        [ [ Program.Compute 100. ]; [ Program.Compute 100. ]; [ Program.Compute 100. ] ]
      ~memories:[ 512; 512; 512 ] ()
  in
  run_all [ (0, 0); (1, 0); (2, 0) ] engine cluster;
  let _, t = List.hd (Vsim.Cluster.completions cluster) in
  check_float 1.0 "2/3 speed" 150. t

let test_cluster_idle_phase_wall_clock () =
  let engine, cluster, _ =
    mk_cluster
      ~programs:[ [ Program.Idle 50.; Program.Compute 10. ] ]
      ~memories:[ 512 ] ()
  in
  run_all [ (0, 0) ] engine cluster;
  let _, t = List.hd (Vsim.Cluster.completions cluster) in
  check_float 0.5 "50 idle + 10 compute" 60. t

let test_cluster_launch_requires_all_vms () =
  (* a 2-VM vjob: running only one VM must not start the program *)
  let engine, cluster, _ =
    mk_cluster
      ~programs:[ [ Program.Compute 10. ]; [ Program.Compute 10. ] ]
      ~memories:[ 512; 512 ] ()
  in
  let config =
    Action.apply (Vsim.Cluster.config cluster) (Action.Run { vm = 0; dst = 0 })
  in
  Vsim.Cluster.set_config cluster config;
  Vsim.Engine.run ~until:100. engine;
  check_bool "not complete" false (Vsim.Cluster.all_complete cluster);
  (* now run the second VM: the vjob launches and finishes *)
  let config =
    Action.apply (Vsim.Cluster.config cluster) (Action.Run { vm = 1; dst = 1 })
  in
  Vsim.Cluster.set_config cluster config;
  Vsim.Engine.run engine;
  check_bool "complete" true (Vsim.Cluster.all_complete cluster)

let test_cluster_suspension_freezes_progress () =
  let engine, cluster, _ =
    mk_cluster ~programs:[ [ Program.Compute 100. ] ] ~memories:[ 512 ] ()
  in
  let config =
    Action.apply (Vsim.Cluster.config cluster) (Action.Run { vm = 0; dst = 0 })
  in
  Vsim.Cluster.set_config cluster config;
  (* run 30 s, suspend for 100 s, resume *)
  Vsim.Engine.run ~until:30. engine;
  ignore
    (Vsim.Engine.schedule engine ~at:30. (fun () ->
         Vsim.Cluster.set_config cluster
           (Action.apply (Vsim.Cluster.config cluster)
              (Action.Suspend { vm = 0; host = 0 }))));
  ignore
    (Vsim.Engine.schedule engine ~at:130. (fun () ->
         Vsim.Cluster.set_config cluster
           (Action.apply (Vsim.Cluster.config cluster)
              (Action.Resume { vm = 0; src = 0; dst = 0 }))));
  Vsim.Engine.run engine;
  let _, t = List.hd (Vsim.Cluster.completions cluster) in
  check_float 1.0 "frozen 100 s" 200. t

let test_cluster_demand_follows_phases () =
  let engine, cluster, _ =
    mk_cluster
      ~programs:[ [ Program.Compute 10.; Program.Idle 50. ] ]
      ~memories:[ 512 ] ()
  in
  let config =
    Action.apply (Vsim.Cluster.config cluster) (Action.Run { vm = 0; dst = 0 })
  in
  Vsim.Cluster.set_config cluster config;
  check_int "computing" Program.compute_demand (Vsim.Cluster.vm_demand cluster 0);
  Vsim.Engine.run ~until:20. engine;
  check_int "idling" Program.idle_demand (Vsim.Cluster.vm_demand cluster 0)

let test_cluster_decel_during_op () =
  let engine, cluster, _ =
    mk_cluster ~programs:[ [ Program.Compute 100. ] ] ~memories:[ 512 ] ()
  in
  let config =
    Action.apply (Vsim.Cluster.config cluster) (Action.Run { vm = 0; dst = 0 })
  in
  Vsim.Cluster.set_config cluster config;
  (* a remote operation holds node 0 from t=0 to t=60 *)
  Vsim.Cluster.register_op cluster ~nodes:[ 0 ] ~local:false;
  Vsim.Cluster.recompute cluster;
  ignore
    (Vsim.Engine.schedule engine ~at:60. (fun () ->
         Vsim.Cluster.unregister_op cluster ~nodes:[ 0 ] ~local:false;
         Vsim.Cluster.recompute cluster));
  Vsim.Engine.run engine;
  let _, t = List.hd (Vsim.Cluster.completions cluster) in
  (* 60 s at 1/1.5 speed = 40 cpu-s done, then 60 more at full speed *)
  check_float 1.0 "decelerated" 120. t

(* -- executor ----------------------------------------------------------------- *)

let test_executor_applies_plan () =
  let engine, cluster, _ =
    mk_cluster
      ~programs:[ [ Program.Compute 1000. ]; [ Program.Compute 1000. ] ]
      ~memories:[ 512; 512 ] ()
  in
  let plan =
    Plan.make [ [ Action.Run { vm = 0; dst = 0 }; Action.Run { vm = 1; dst = 1 } ] ]
  in
  let record = ref None in
  Vsim.Executor.execute cluster plan ~on_done:(fun r -> record := Some r);
  Vsim.Engine.run ~until:50. engine;
  (match !record with
  | None -> Alcotest.fail "executor did not finish"
  | Some r ->
    check_int "runs" 2 r.Vsim.Executor.runs;
    (* both boots in parallel: ~6 s *)
    check_float 1.0 "parallel boot" 6. (Vsim.Executor.duration r));
  check_bool "both running" true
    (Configuration.running_vms (Vsim.Cluster.config cluster) = [ 0; 1 ])

let test_executor_pools_sequential () =
  let engine, cluster, _ =
    mk_cluster
      ~programs:[ [ Program.Compute 1000. ]; [ Program.Compute 1000. ] ]
      ~memories:[ 512; 512 ] ()
  in
  let plan =
    Plan.make
      [
        [ Action.Run { vm = 0; dst = 0 } ];
        [ Action.Run { vm = 1; dst = 1 } ];
      ]
  in
  let record = ref None in
  Vsim.Executor.execute cluster plan ~on_done:(fun r -> record := Some r);
  Vsim.Engine.run ~until:50. engine;
  match !record with
  | None -> Alcotest.fail "executor did not finish"
  | Some r -> check_float 1.0 "two boots back to back" 12. (Vsim.Executor.duration r)

let test_executor_pipelines_suspends () =
  let engine, cluster, _ =
    mk_cluster
      ~programs:[ [ Program.Compute 10000. ]; [ Program.Compute 10000. ] ]
      ~memories:[ 512; 512 ] ()
  in
  let config =
    List.fold_left
      (fun cfg (vm, node) -> Action.apply cfg (Action.Run { vm; dst = node }))
      (Vsim.Cluster.config cluster)
      [ (0, 0); (1, 1) ]
  in
  Vsim.Cluster.set_config cluster config;
  let plan =
    Plan.make
      [ [ Action.Suspend { vm = 0; host = 0 }; Action.Suspend { vm = 1; host = 1 } ] ]
  in
  let record = ref None in
  Vsim.Executor.execute cluster plan ~on_done:(fun r -> record := Some r);
  Vsim.Engine.run engine;
  match !record with
  | None -> Alcotest.fail "executor did not finish"
  | Some r ->
    let single =
      Vsim.Perf_model.suspend p ~memory_mb:512 ~transfer:Vsim.Perf_model.Local
    in
    (* pipelined: second starts 1 s after the first, both overlap *)
    check_bool "overlapping, staggered by 1s" true
      (Vsim.Executor.duration r >= single
      && Vsim.Executor.duration r <= single +. 1.5);
    check_int "two suspends" 2 r.Vsim.Executor.suspends

(* -- metrics ------------------------------------------------------------------ *)

let test_metrics_overload_visible () =
  let engine, cluster, _ =
    mk_cluster ~node_count:1
      ~programs:
        [ [ Program.Compute 50. ]; [ Program.Compute 50. ]; [ Program.Compute 50. ] ]
      ~memories:[ 512; 512; 512 ] ()
  in
  let metrics = Vsim.Metrics.start ~period:10. cluster in
  let config =
    List.fold_left
      (fun cfg (vm, node) -> Action.apply cfg (Action.Run { vm; dst = node }))
      (Vsim.Cluster.config cluster)
      [ (0, 0); (1, 0); (2, 0) ]
  in
  Vsim.Cluster.set_config cluster config;
  (* the sampler reschedules forever: bound the run, then stop it *)
  Vsim.Engine.run ~until:60. engine;
  Vsim.Metrics.stop metrics;
  (* 3 full-CPU VMs on 2 cores: demand 150% of capacity *)
  check_float 1.0 "peak demand 150%" 150. (Vsim.Metrics.peak_cpu_demand metrics);
  let points = Vsim.Metrics.points metrics in
  let peak_mem =
    List.fold_left (fun acc p -> max acc p.Vsim.Metrics.mem_used_mb) 0 points
  in
  check_int "mem used" 1536 peak_mem;
  List.iter
    (fun pt ->
      check_bool "used capped at 100" true (pt.Vsim.Metrics.cpu_used_pct <= 100.001))
    points;
  (* the single node is active while the VMs run *)
  let peak_active =
    List.fold_left (fun acc p -> max acc p.Vsim.Metrics.active_nodes) 0 points
  in
  check_int "one active node" 1 peak_active;
  check_bool "node-seconds accumulated" true
    (Vsim.Metrics.node_seconds metrics > 0.)

let test_metrics_rejects_nonpositive_period () =
  let _, cluster, _ =
    mk_cluster ~programs:[ [ Program.Compute 50. ] ] ~memories:[ 512 ] ()
  in
  (* a zero period would re-enqueue the sampler at the same simulated
     instant forever: an event storm *)
  Alcotest.check_raises "zero period"
    (Invalid_argument "Metrics.start: period must be positive (got 0)")
    (fun () -> ignore (Vsim.Metrics.start ~period:0. cluster));
  Alcotest.check_raises "negative period"
    (Invalid_argument "Metrics.start: period must be positive (got -5)")
    (fun () -> ignore (Vsim.Metrics.start ~period:(-5.) cluster))

let test_metrics_stop_idempotent () =
  let engine, cluster, _ =
    mk_cluster ~programs:[ [ Program.Compute 50. ] ] ~memories:[ 512 ] ()
  in
  let metrics = Vsim.Metrics.start ~period:10. cluster in
  Vsim.Engine.run ~until:35. engine;
  let before = List.length (Vsim.Metrics.points metrics) in
  check_int "sampled while running" 4 before;
  Vsim.Metrics.stop metrics;
  Vsim.Metrics.stop metrics; (* second stop is a no-op *)
  (* the pending sample was cancelled: draining the queue adds nothing *)
  Vsim.Engine.run ~until:200. engine;
  check_int "no points after stop" before
    (List.length (Vsim.Metrics.points metrics));
  Vsim.Metrics.stop metrics

let test_metrics_to_json () =
  let engine, cluster, _ =
    mk_cluster ~programs:[ [ Program.Compute 50. ] ] ~memories:[ 512 ] ()
  in
  let metrics = Vsim.Metrics.start ~period:10. cluster in
  Vsim.Engine.run ~until:25. engine;
  Vsim.Metrics.stop metrics;
  let module Json = Entropy_obs.Json in
  let json = Vsim.Metrics.to_json metrics in
  (* round-trip through the parser and check the shape *)
  let json = Json.parse (Json.to_string json) in
  let field name j = Option.get (Json.member name j) in
  let number j = Option.get (Json.number j) in
  let points = Option.get (Json.to_list (field "points" json)) in
  check_int "three samples" 3 (List.length points);
  List.iter
    (fun p ->
      check_bool "time >= 0" true (number (field "time" p) >= 0.);
      check_bool "mem_used_mb present" true
        (number (field "mem_used_mb" p) >= 0.))
    points

(* -- runner (end to end) ------------------------------------------------------ *)

let testbed_nodes n =
  Array.init n (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))

let test_runner_single_vjob () =
  let traces = [ Trace.make ~seed:0 ~vm_count:9 Nasgrid.Ed Nasgrid.W ] in
  let r = Vsim.Runner.run_entropy ~cp_timeout:0.2 ~nodes:(testbed_nodes 11) ~traces () in
  check_int "one completion" 1 (List.length r.Vsim.Runner.completions);
  (* ED.W: 60 s of work; plus boot and loop latency, well under 5 min *)
  check_bool "fast completion" true (r.Vsim.Runner.makespan < 300.);
  check_bool "at least one switch (the runs)" true
    (List.length r.Vsim.Runner.switches >= 1)

let test_runner_overload_suspends_and_completes () =
  (* 8 vjobs of 9 full-CPU VMs on 11 nodes (22 cores): must suspend *)
  let traces =
    List.init 8 (fun i ->
        let family = List.nth Nasgrid.families (i mod 4) in
        Trace.make ~seed:i ~vm_count:9 family Nasgrid.W)
  in
  let r = Vsim.Runner.run_entropy ~cp_timeout:0.2 ~nodes:(testbed_nodes 11) ~traces () in
  check_int "all complete" 8 (List.length r.Vsim.Runner.completions);
  let total_suspends =
    List.fold_left (fun acc s -> acc + s.Vsim.Executor.suspends) 0 r.Vsim.Runner.switches
  in
  check_bool "suspends happened" true (total_suspends > 0);
  check_bool "finite makespan" true (r.Vsim.Runner.makespan < 20_000.)

let test_runner_beats_static_fcfs () =
  (* the headline claim: dynamic consolidation + context switches beat
     the static FCFS allocation *)
  let traces =
    List.init 8 (fun i ->
        let family = List.nth Nasgrid.families (i mod 4) in
        Trace.make ~seed:i ~vm_count:9 family Nasgrid.W)
  in
  let entropy =
    Vsim.Runner.run_entropy ~cp_timeout:0.2 ~nodes:(testbed_nodes 11) ~traces ()
  in
  let static =
    Batch.Static_alloc.run ~capacity:11 ~node_cpu:200 ~node_mem:3584 traces
  in
  let fcfs = Batch.Static_alloc.makespan static in
  check_bool "entropy at least 20% faster" true
    (entropy.Vsim.Runner.makespan < 0.8 *. fcfs)

let test_runner_switch_cost_duration_correlate () =
  let traces =
    List.init 8 (fun i ->
        let family = List.nth Nasgrid.families (i mod 4) in
        Trace.make ~seed:i ~vm_count:9 family Nasgrid.W)
  in
  let r = Vsim.Runner.run_entropy ~cp_timeout:0.2 ~nodes:(testbed_nodes 11) ~traces () in
  (* Figure 11's shape: zero-cost switches are fast (run/stop only);
     expensive switches (suspends/resumes) take minutes *)
  let cheap =
    List.filter (fun s -> s.Vsim.Executor.cost = 0) r.Vsim.Runner.switches
  in
  let dear =
    List.filter (fun s -> s.Vsim.Executor.cost > 10_000) r.Vsim.Runner.switches
  in
  check_bool "has cheap switches" true (cheap <> []);
  check_bool "has dear switches" true (dear <> []);
  (* run/stop-only switches: bounded by a shutdown plus a boot per pool *)
  List.iter
    (fun s -> check_bool "cheap is fast" true (Vsim.Executor.duration s <= 40.))
    cheap;
  List.iter
    (fun s -> check_bool "dear is slow" true (Vsim.Executor.duration s > 60.))
    dear

let test_runner_recovers_from_failures () =
  (* every first attempt of each migration fails; the loop replans and
     the workload still completes *)
  let failed_once = Hashtbl.create 16 in
  let should_fail = function
    | Action.Migrate { vm; _ } ->
      if Hashtbl.mem failed_once vm then false
      else begin
        Hashtbl.replace failed_once vm ();
        true
      end
    | _ -> false
  in
  let traces =
    List.init 3 (fun i -> Trace.make ~seed:i ~vm_count:4 Nasgrid.Ed Nasgrid.W)
  in
  let r =
    Vsim.Runner.run_entropy ~cp_timeout:0.2 ~should_fail
      ~nodes:(testbed_nodes 4) ~traces ()
  in
  check_int "all complete despite failures" 3
    (List.length r.Vsim.Runner.completions);
  check_bool "finite" true (r.Vsim.Runner.makespan < 10_000.)

let test_executor_failure_keeps_state () =
  let engine, cluster, _ =
    mk_cluster
      ~programs:[ [ Program.Compute 1000. ] ]
      ~memories:[ 512 ] ()
  in
  let plan = Plan.make [ [ Action.Run { vm = 0; dst = 0 } ] ] in
  let record = ref None in
  Vsim.Executor.execute
    ~should_fail:(fun _ -> true)
    cluster plan
    ~on_done:(fun r -> record := Some r);
  Vsim.Engine.run ~until:50. engine;
  (match !record with
  | Some r -> check_int "one failure" 1 r.Vsim.Executor.failed
  | None -> Alcotest.fail "executor did not finish");
  check_bool "still waiting" true
    (Configuration.state (Vsim.Cluster.config cluster) 0 = Configuration.Waiting)

let test_executor_continuous_applies_plan () =
  let engine, cluster, _ =
    mk_cluster
      ~programs:[ [ Program.Compute 1000. ]; [ Program.Compute 1000. ] ]
      ~memories:[ 512; 512 ] ()
  in
  let plan =
    Plan.make
      [ [ Action.Run { vm = 0; dst = 0 }; Action.Run { vm = 1; dst = 1 } ] ]
  in
  let record = ref None in
  Vsim.Executor.execute_continuous cluster plan ~on_done:(fun r ->
      record := Some r);
  Vsim.Engine.run ~until:50. engine;
  (match !record with
  | None -> Alcotest.fail "did not finish"
  | Some r -> check_int "runs" 2 r.Vsim.Executor.runs);
  check_bool "both running" true
    (Configuration.running_vms (Vsim.Cluster.config cluster) = [ 0; 1 ])

let test_executor_continuous_overlaps_pools () =
  (* pool plan: pool1 = suspend(2 GB, ~100 s) + migrate(512 MB, ~8 s);
     pool2 = resume(2 GB, ~80 s) waiting only on the migration. The
     continuous executor overlaps the resume with the suspend. *)
  let engine, cluster, _ =
    mk_cluster ~node_count:3 ~mem:2048
      ~programs:
        [
          [ Program.Compute 10000. ];
          [ Program.Compute 10000. ];
          [ Program.Compute 10000. ];
        ]
      ~memories:[ 2048; 512; 2048 ] ()
  in
  let config =
    List.fold_left
      (fun cfg (vm, node) -> Action.apply cfg (Action.Run { vm; dst = node }))
      (Vsim.Cluster.config cluster)
      [ (0, 0); (1, 1); (2, 1) ]
  in
  let config = Action.apply config (Action.Suspend { vm = 2; host = 1 }) in
  Vsim.Cluster.set_config cluster config;
  let plan =
    Plan.make
      [
        [
          Action.Suspend { vm = 0; host = 0 };
          Action.Migrate { vm = 1; src = 1; dst = 2 };
        ];
        [ Action.Resume { vm = 2; src = 1; dst = 1 } ];
      ]
  in
  let run exec =
    let record = ref None in
    exec cluster plan ~on_done:(fun r -> record := Some r);
    Vsim.Engine.run ~until:(Vsim.Engine.now engine +. 1000.) engine;
    match !record with
    | Some r -> Vsim.Executor.duration r
    | None -> Alcotest.fail "did not finish"
  in
  (* run once continuous on this cluster; rebuild an identical cluster
     for the pool run *)
  let continuous =
    run (fun cluster plan ~on_done ->
        Vsim.Executor.execute_continuous cluster plan ~on_done)
  in
  let engine2, cluster2, _ =
    mk_cluster ~node_count:3 ~mem:2048
      ~programs:
        [
          [ Program.Compute 10000. ];
          [ Program.Compute 10000. ];
          [ Program.Compute 10000. ];
        ]
      ~memories:[ 2048; 512; 2048 ] ()
  in
  let config2 =
    List.fold_left
      (fun cfg (vm, node) -> Action.apply cfg (Action.Run { vm; dst = node }))
      (Vsim.Cluster.config cluster2)
      [ (0, 0); (1, 1); (2, 1) ]
  in
  let config2 = Action.apply config2 (Action.Suspend { vm = 2; host = 1 }) in
  Vsim.Cluster.set_config cluster2 config2;
  let record2 = ref None in
  Vsim.Executor.execute cluster2 plan ~on_done:(fun r -> record2 := Some r);
  Vsim.Engine.run ~until:1000. engine2;
  let pooled =
    match !record2 with
    | Some r -> Vsim.Executor.duration r
    | None -> Alcotest.fail "pool run did not finish"
  in
  check_bool "continuous much faster" true (continuous < 0.8 *. pooled)

let test_runner_continuous_execution_completes () =
  let traces =
    List.init 4 (fun i ->
        let family = List.nth Nasgrid.families (i mod 4) in
        Trace.make ~seed:i ~vm_count:9 family Nasgrid.W)
  in
  let r =
    Vsim.Runner.run_entropy ~cp_timeout:0.2 ~execution:`Continuous
      ~nodes:(testbed_nodes 11) ~traces ()
  in
  check_int "all complete" 4 (List.length r.Vsim.Runner.completions)

(* -- storage ---------------------------------------------------------------------- *)

let test_storage_sharding_and_counts () =
  let st = Vsim.Storage.create ~server_count:3 () in
  check_int "vm0 -> server 0" 0 (Vsim.Storage.server_of_vm st 0);
  check_int "vm4 -> server 1" 1 (Vsim.Storage.server_of_vm st 4);
  Vsim.Storage.begin_transfer st 0;
  Vsim.Storage.begin_transfer st 3;
  (* both on server 0 *)
  check_int "two active" 2 (Vsim.Storage.active_on st 0);
  check_float 1e-9 "third shares three ways" 3. (Vsim.Storage.slowdown st 6);
  check_float 1e-9 "other server free" 1. (Vsim.Storage.slowdown st 1);
  Vsim.Storage.end_transfer st 0;
  check_int "one active" 1 (Vsim.Storage.active_on st 0)

let test_storage_only_disk_images () =
  check_bool "suspend uses storage" true
    (Vsim.Storage.uses_storage (Action.Suspend { vm = 0; host = 0 }));
  check_bool "resume uses storage" true
    (Vsim.Storage.uses_storage (Action.Resume { vm = 0; src = 0; dst = 1 }));
  check_bool "migration streams directly" false
    (Vsim.Storage.uses_storage (Action.Migrate { vm = 0; src = 0; dst = 1 }));
  check_bool "ram suspend stays on host" false
    (Vsim.Storage.uses_storage (Action.Suspend_ram { vm = 0; host = 0 }))

let test_storage_contention_stretches_suspends () =
  (* two simultaneous suspends of same-server VMs take ~2x; on distinct
     servers they overlap freely *)
  let run ~server_count vms_hosts =
    let engine = Vsim.Engine.create () in
    let storage = Vsim.Storage.create ~server_count () in
    let nodes = testbed_nodes 4 in
    let vms =
      Array.of_list
        (List.mapi
           (fun i _ -> Vm.make ~id:i ~name:(Printf.sprintf "vm%d" i) ~memory_mb:512)
           vms_hosts)
    in
    let config = Configuration.make ~nodes ~vms in
    let vjobs =
      [ Vjob.make ~id:0 ~name:"j" ~vms:(List.mapi (fun i _ -> i) vms_hosts) () ]
    in
    let cluster =
      Vsim.Cluster.create ~storage ~engine ~config ~vjobs
        ~programs:(fun _ -> [ Program.Compute 10000. ])
        ()
    in
    let config =
      List.fold_left
        (fun cfg (vm, node) -> Action.apply cfg (Action.Run { vm; dst = node }))
        (Vsim.Cluster.config cluster) vms_hosts
    in
    Vsim.Cluster.set_config cluster config;
    let plan =
      Plan.make
        [ List.map (fun (vm, node) -> Action.Suspend { vm; host = node }) vms_hosts ]
    in
    let record = ref None in
    Vsim.Executor.execute cluster plan ~on_done:(fun r -> record := Some r);
    Vsim.Engine.run engine;
    match !record with
    | Some r -> Vsim.Executor.duration r
    | None -> Alcotest.fail "executor did not finish"
  in
  (* one server: the two image writes share it *)
  let contended = run ~server_count:1 [ (0, 0); (1, 1) ] in
  (* many servers: vm0 -> s0, vm1 -> s1 *)
  let parallel = run ~server_count:2 [ (0, 0); (1, 1) ] in
  check_bool "contention visible" true (contended > 1.4 *. parallel)

(* -- online rms ------------------------------------------------------------------ *)

let test_rms_simulate_frees_early () =
  (* job0's slot is 20 but it actually runs 10: the online scheduler
     starts job1 at 10, the rigid one at 20 *)
  let j0 =
    Batch.Job.make ~id:0 ~name:"j0" ~nodes_required:10 ~walltime:20. ~actual:10. ()
  in
  let j1 =
    Batch.Job.make ~id:1 ~name:"j1" ~nodes_required:10 ~walltime:10. ~actual:10. ()
  in
  let online = Batch.Rms.simulate ~capacity:10 [ j0; j1 ] in
  let rigid = Batch.Rms.fcfs ~release:Batch.Rms.Walltime ~capacity:10 [ j0; j1 ] in
  check_float 1e-9 "online makespan" 20. online.Batch.Rms.makespan;
  check_float 1e-9 "rigid makespan" 30. rigid.Batch.Rms.makespan

let test_rms_simulate_backfill_vs_strict () =
  let mk id nodes walltime =
    Batch.Job.make ~id ~name:(Printf.sprintf "j%d" id) ~nodes_required:nodes
      ~walltime ~actual:walltime ()
  in
  let jobs = [ mk 0 8 10.; mk 1 8 10.; mk 2 2 10. ] in
  let bf = Batch.Rms.simulate ~backfill:true ~capacity:10 jobs in
  let strict = Batch.Rms.simulate ~backfill:false ~capacity:10 jobs in
  let start sched id =
    let p =
      List.find
        (fun (p : Batch.Job.placement) -> p.Batch.Job.job.Batch.Job.id = id)
        sched.Batch.Rms.placements
    in
    p.Batch.Job.start
  in
  check_float 1e-9 "backfilled at 0" 0. (start bf 2);
  check_float 1e-9 "strict waits" 10. (start strict 2)

let test_rms_simulate_staggered_arrivals () =
  let mk id arrival nodes =
    Batch.Job.make ~id ~name:(Printf.sprintf "j%d" id) ~arrival
      ~nodes_required:nodes ~walltime:10. ~actual:10. ()
  in
  let jobs = [ mk 0 0. 5; mk 1 3. 5; mk 2 50. 10 ] in
  let s = Batch.Rms.simulate ~capacity:10 jobs in
  let start id =
    let p =
      List.find
        (fun (p : Batch.Job.placement) -> p.Batch.Job.job.Batch.Job.id = id)
        s.Batch.Rms.placements
    in
    p.Batch.Job.start
  in
  check_float 1e-9 "j1 at its arrival" 3. (start 1);
  check_float 1e-9 "j2 at its arrival" 50. (start 2);
  check_float 1e-9 "makespan" 60. s.Batch.Rms.makespan

(* -- monitor ------------------------------------------------------------------- *)

let test_collector_smoothing () =
  let readings = ref [] in
  let clock = ref 0. in
  let source () =
    match !readings with
    | [] -> (!clock, [| 0 |])
    | r :: rest ->
      readings := rest;
      clock := !clock +. 5.;
      (!clock, [| r |])
  in
  let collector = Vmonitor.Collector.create ~smoothing_span:10. source in
  readings := [ 100; 0; 100 ];
  Vmonitor.Collector.poll collector;
  Vmonitor.Collector.poll collector;
  Vmonitor.Collector.poll collector;
  (* samples land at t=5,10,15; the 10 s window from t=15 includes all
     three (inclusive bound): mean (100+0+100)/3 = 66 *)
  let d = Vmonitor.Collector.demand collector in
  check_int "smoothed" 66 (Demand.cpu d 0)

let test_history_average_fallback () =
  let h = Vmonitor.History.create () in
  Vmonitor.History.add h (Vmonitor.Sample.make ~time:0. ~cpu:[| 42 |]);
  (* a window far in the future is empty: fall back to the latest *)
  Alcotest.(check (option int))
    "fallback" (Some 42)
    (Vmonitor.History.average_cpu h ~now:1000. ~span:10. 0)

let test_collector_poll_count_and_bootstrap () =
  let clock = ref 0. in
  let source () =
    clock := !clock +. 1.;
    (!clock, [| 7 |])
  in
  let c = Vmonitor.Collector.create source in
  check_int "no polls yet" 0 (Vmonitor.Collector.polls c);
  (* demand on an empty history polls once by itself *)
  let d = Vmonitor.Collector.demand c in
  check_int "bootstrap poll" 1 (Vmonitor.Collector.polls c);
  check_int "value" 7 (Demand.cpu d 0)

(* a collector over a scripted list of raw readings *)
let scripted_collector readings =
  let remaining = ref readings in
  let source () =
    match !remaining with
    | [] -> Alcotest.fail "collector polled past the script"
    | r :: rest ->
      remaining := rest;
      r
  in
  Vmonitor.Collector.create ~smoothing_span:10. source

let test_collector_drops_bad_samples () =
  let c =
    scripted_collector
      [
        (1., [| 50 |]);
        (Float.nan, [| 50 |]) (* non-finite timestamp *);
        (0.5, [| 50 |]) (* clock jumped backwards *);
        (2., [| -3 |]) (* impossible CPU *);
        (3., [| -1 |]) (* still impossible after a sign glitch *);
        (4., [| 60 |]);
      ]
  in
  for _ = 1 to 6 do
    Vmonitor.Collector.poll c
  done;
  check_int "all polls counted" 6 (Vmonitor.Collector.polls c);
  check_int "four readings dropped" 4 (Vmonitor.Collector.dropped c);
  check_int "only valid samples in history" 2
    (Vmonitor.History.length (Vmonitor.Collector.history c));
  (* the garbage never reaches the smoothed demand *)
  let d = Vmonitor.Collector.demand c in
  check_int "smoothed over the two good readings" 55 (Demand.cpu d 0)

let test_collector_keeps_equal_timestamps () =
  (* several services legitimately poll within the same instant; equal
     timestamps must be admitted (only strictly-backwards is dropped) *)
  let c = scripted_collector [ (5., [| 10 |]); (5., [| 20 |]); (5., [| 30 |]) ] in
  for _ = 1 to 3 do
    Vmonitor.Collector.poll c
  done;
  check_int "nothing dropped" 0 (Vmonitor.Collector.dropped c);
  check_int "all samples kept" 3
    (Vmonitor.History.length (Vmonitor.Collector.history c))

let test_collector_drop_counter_metric () =
  let module Obs = Entropy_obs.Obs in
  let module Metrics = Entropy_obs.Metrics in
  let was = !Obs.enabled in
  Obs.enabled := true;
  let c = scripted_collector [ (1., [| 10 |]); (0., [| 10 |]) ] in
  Vmonitor.Collector.poll c;
  Vmonitor.Collector.poll c;
  Obs.enabled := was;
  check_int "collector counts the drop" 1 (Vmonitor.Collector.dropped c);
  check_bool "monitor.dropped_samples advanced" true
    (Metrics.counter_value (Metrics.counter "monitor.dropped_samples") >= 1)

let test_engine_max_events () =
  let e = Vsim.Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Vsim.Engine.schedule_after e ~delay:1. tick)
  in
  ignore (Vsim.Engine.schedule_after e ~delay:1. tick);
  Vsim.Engine.run ~max_events:5 e;
  check_int "bounded" 5 !count

let test_history_window_and_eviction () =
  let h = Vmonitor.History.create ~capacity:3 () in
  List.iter
    (fun (t, v) -> Vmonitor.History.add h (Vmonitor.Sample.make ~time:t ~cpu:[| v |]))
    [ (0., 1); (10., 2); (20., 3); (30., 4) ];
  check_int "capacity respected" 3 (Vmonitor.History.length h);
  (match Vmonitor.History.latest h with
  | Some s -> check_int "latest" 4 (Vmonitor.Sample.cpu s 0)
  | None -> Alcotest.fail "expected latest");
  check_int "window size" 2
    (List.length (Vmonitor.History.window h ~now:30. ~span:10.))

(* -- fault injection ----------------------------------------------------------- *)

module Injector = Entropy_fault.Injector
module Supervisor = Entropy_fault.Supervisor
module Verifier = Entropy_analysis.Verifier

let test_engine_cancelled_not_pending () =
  (* regression: a cancelled event used to inflate [pending] until the
     heap drained, making "queue empty" checks unreliable *)
  let e = Vsim.Engine.create () in
  let h = Vsim.Engine.schedule e ~at:1. (fun () -> ()) in
  ignore (Vsim.Engine.schedule e ~at:2. (fun () -> ()));
  check_int "two queued" 2 (Vsim.Engine.pending e);
  Vsim.Engine.cancel h;
  check_int "one live event" 1 (Vsim.Engine.pending e);
  check_int "one cancelled" 1 (Vsim.Engine.cancelled e);
  Vsim.Engine.cancel h;
  check_int "cancel idempotent" 1 (Vsim.Engine.cancelled e);
  Vsim.Engine.run e;
  check_int "drained" 0 (Vsim.Engine.pending e);
  check_int "cancelled drained too" 0 (Vsim.Engine.cancelled e);
  check_int "only the live event ran" 1 (Vsim.Engine.executed e)

let test_executor_retry_masks_fault () =
  (* first boot attempt fails; one supervised retry completes it, so the
     switch reports retries but no terminal failure *)
  let engine, cluster, _ =
    mk_cluster ~programs:[ [ Program.Compute 1000. ] ] ~memories:[ 512 ] ()
  in
  let plan = Plan.make [ [ Action.Run { vm = 0; dst = 0 } ] ] in
  let injector =
    Injector.create [ Injector.Fail_nth { kind = Injector.Run; nth = 1 } ]
  in
  let policy = Supervisor.make_policy ~max_retries:1 () in
  let record = ref None in
  Vsim.Executor.execute ~injector ~policy cluster plan ~on_done:(fun r ->
      record := Some r);
  Vsim.Engine.run ~until:100. engine;
  (match !record with
  | None -> Alcotest.fail "executor did not finish"
  | Some r ->
    check_int "one retry" 1 r.Vsim.Executor.retries;
    check_int "no terminal failure" 0 r.Vsim.Executor.failed;
    check_int "boot landed" 1 r.Vsim.Executor.runs;
    check_bool "not aborted" false r.Vsim.Executor.aborted);
  check_bool "running" true
    (Configuration.state (Vsim.Cluster.config cluster) 0
    = Configuration.Running 0)

let test_executor_timeout_is_terminal () =
  (* a 10x slowdown against a 3x timeout factor: the attempt is cut off
     at the deadline and, with no retries, the action fails in place *)
  let engine, cluster, _ =
    mk_cluster ~programs:[ [ Program.Compute 1000. ] ] ~memories:[ 512 ] ()
  in
  let plan = Plan.make [ [ Action.Run { vm = 0; dst = 0 } ] ] in
  let injector =
    Injector.create
      [ Injector.Slowdown { kind = Some Injector.Run; factor = 10. } ]
  in
  let policy = Supervisor.make_policy ~timeout_factor:3. ~max_retries:0 () in
  let record = ref None in
  Vsim.Executor.execute ~injector ~policy cluster plan ~on_done:(fun r ->
      record := Some r);
  Vsim.Engine.run ~until:200. engine;
  (match !record with
  | None -> Alcotest.fail "executor did not finish"
  | Some r ->
    check_int "terminal failure" 1 r.Vsim.Executor.failed;
    check_int "timed out" 1 r.Vsim.Executor.timeouts;
    Alcotest.(check (list int)) "vm recorded" [ 0 ] r.Vsim.Executor.failed_vms);
  check_bool "state unchanged" true
    (Configuration.state (Vsim.Cluster.config cluster) 0 = Configuration.Waiting)

let verify_repairs repairs =
  List.iter
    (fun rr ->
      let findings =
        Verifier.verify ~vjobs:rr.Vsim.Runner.queue
          ~current:rr.Vsim.Runner.before ~target:rr.Vsim.Runner.target
          ~demand:rr.Vsim.Runner.demand rr.Vsim.Runner.plan
      in
      Alcotest.(check int)
        (Fmt.str "repair at %.0fs verifier-clean" rr.Vsim.Runner.at)
        0 (List.length findings))
    repairs

let test_runner_repairs_failed_migration () =
  (* the first migration of the run fails terminally mid-plan: the
     switch aborts, an immediate repair plan (salvage or replan) takes
     over, and the workload still converges *)
  let traces =
    List.init 3 (fun i -> Trace.make ~seed:i ~vm_count:4 Nasgrid.Ed Nasgrid.W)
  in
  let injector =
    Injector.create [ Injector.Fail_nth { kind = Injector.Migrate; nth = 1 } ]
  in
  let r =
    Vsim.Runner.run_entropy ~cp_timeout:0.2 ~injector
      ~policy:Supervisor.no_retry ~nodes:(testbed_nodes 4) ~traces ()
  in
  check_int "all complete despite the failure" 3
    (List.length r.Vsim.Runner.completions);
  let total_failed =
    List.fold_left
      (fun acc s -> acc + s.Vsim.Executor.failed)
      0 r.Vsim.Runner.switches
  in
  check_bool "a terminal failure happened" true (total_failed >= 1);
  check_bool "a repair plan was executed" true (r.Vsim.Runner.repairs <> []);
  verify_repairs r.Vsim.Runner.repairs;
  check_bool "finite" true (r.Vsim.Runner.makespan < 10_000.)

let test_runner_node_crash_resubmits () =
  (* node 0 dies mid-run: its vjobs are reset and resubmitted, the
     replans avoid the dead node, and everything still completes *)
  let traces =
    List.init 2 (fun i -> Trace.make ~seed:i ~vm_count:4 Nasgrid.Ed Nasgrid.W)
  in
  let injector =
    Injector.create [ Injector.Crash_node { node = 0; at_s = 40. } ]
  in
  let r =
    Vsim.Runner.run_entropy ~cp_timeout:0.2 ~injector
      ~nodes:(testbed_nodes 4) ~traces ()
  in
  (match r.Vsim.Runner.crashes with
  | [ (node, at, affected) ] ->
    check_int "node 0" 0 node;
    check_bool "at the scripted time" true (at >= 40. && at < 41.);
    check_bool "some vjob was resubmitted" true (affected <> [])
  | _ -> Alcotest.fail "expected exactly one crash");
  check_int "all complete despite the crash" 2
    (List.length r.Vsim.Runner.completions);
  verify_repairs r.Vsim.Runner.repairs;
  (* the dead node hosts nothing at the end *)
  let final = r.Vsim.Runner.final_config in
  Array.iter
    (fun vm ->
      let id = Vm.id vm in
      check_bool "nothing left on the dead node" true
        (match Configuration.state final id with
        | Configuration.Running 0 | Configuration.Sleeping 0
        | Configuration.Sleeping_ram 0 -> false
        | _ -> true))
    (Configuration.vms final);
  check_bool "finite" true (r.Vsim.Runner.makespan < 10_000.)

(* -- journal + crash resume ----------------------------------------------------- *)

module Journal = Entropy_journal.Journal
module Jrecord = Entropy_journal.Record
module Recovery = Entropy_journal.Recovery

(* a small faulty instance: 2 vjobs of 4 VMs on 4 nodes, seeded
   fail-rate injection to make the journal interesting *)
let journal_instance () =
  let traces =
    List.init 2 (fun i -> Trace.make ~seed:i ~vm_count:4 Nasgrid.Ed Nasgrid.W)
  in
  Vsim.Runner.setup ~nodes:(testbed_nodes 4) ~traces ()

let journal_injector () =
  Injector.create ~seed:42
    [ Injector.Fail_rate { kind = None; rate = 0.15 } ]

let test_journal_emission_well_formed () =
  let config, vjobs, programs = journal_instance () in
  let journal = Journal.mem () in
  let r =
    Vsim.Runner.run_custom ~cp_timeout:0.2 ~injector:(journal_injector ())
      ~journal ~config ~vjobs ~programs ()
  in
  check_int "completes" 2 (List.length r.Vsim.Runner.completions);
  check_bool "not killed" false r.Vsim.Runner.killed;
  let records = Journal.records journal in
  check_bool "records were journaled" true (records <> []);
  (match records with
  | Jrecord.Switch_begin { seed; _ } :: _ ->
    Alcotest.(check (option int)) "begin carries the seed" (Some 42) seed
  | _ -> Alcotest.fail "journal must open with Switch_begin");
  (* write-ahead discipline: every switch's records sit between its
     begin and end; every terminal action record follows a start of the
     same action in the same switch *)
  let begun = Hashtbl.create 8 and ended = Hashtbl.create 8 in
  let started = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let sw = Jrecord.switch r in
      (match r with
      | Jrecord.Switch_begin _ -> Hashtbl.replace begun sw ()
      | _ ->
        check_bool "record after its begin" true (Hashtbl.mem begun sw);
        check_bool "record before its end" false (Hashtbl.mem ended sw));
      match r with
      | Jrecord.Action_started { action; _ } ->
        Hashtbl.replace started (sw, action) ()
      | Jrecord.Action_done { action; _ }
      | Jrecord.Action_failed { action; _ } ->
        check_bool "terminal follows its start" true
          (Hashtbl.mem started (sw, action))
      | Jrecord.Switch_end _ -> Hashtbl.replace ended sw ()
      | Jrecord.Switch_begin _ | Jrecord.Pool_committed _
      | Jrecord.Submission _ | Jrecord.Ladder _ -> ())
    records;
  (* a completed run closes every switch it opened *)
  Hashtbl.iter
    (fun sw () -> check_bool "switch closed" true (Hashtbl.mem ended sw))
    begun;
  check_int "ids are dense from 0" (Hashtbl.length begun)
    (Recovery.next_switch_id records)

let test_runner_kill_and_resume () =
  let config, vjobs, programs = journal_instance () in
  let journal = Journal.mem () in
  let killed =
    Vsim.Runner.run_custom ~cp_timeout:0.2 ~injector:(journal_injector ())
      ~journal ~kill_at:30. ~config ~vjobs ~programs ()
  in
  check_bool "cut short" true killed.Vsim.Runner.killed;
  check_bool "work left undone" true
    (List.length killed.Vsim.Runner.completions < 2);
  let records = Journal.records journal in
  match Recovery.replay records with
  | None -> Alcotest.fail "a 30 s kill must land after a switch began"
  | Some st ->
    let observed = Recovery.projected_config st in
    (match
       Vsim.Runner.resume ~cp_timeout:0.2 ~journal ~records ~observed ~vjobs
         ~programs ()
     with
    | None -> Alcotest.fail "resume must find the switch"
    | Some (info, r) ->
      check_bool "journal agrees with the observation: no repair" false
        info.Vsim.Runner.repaired;
      check_int "both vjobs complete after resume" 2
        (List.length r.Vsim.Runner.completions);
      check_bool "resumed run not killed" false r.Vsim.Runner.killed;
      (* the resumed switch continued the id sequence in the journal *)
      check_bool "journal extended" true
        (List.length (Journal.records journal) > List.length records));
    (* the journal now closes with completed switches only *)
    (match Recovery.replay (Journal.records journal) with
    | Some st' -> check_bool "last switch closed" true st'.Recovery.ended
    | None -> Alcotest.fail "journal lost its switches")

(* The acceptance property: crash at EVERY record boundary of a seeded
   faulty run, resume from the journal prefix, and the cluster still
   converges — every vjob completes, the final configuration is viable,
   and the resume plan verifies against the original switch. *)
let test_crash_at_every_record_boundary () =
  let config, vjobs, programs = journal_instance () in
  let journal = Journal.mem () in
  let full =
    Vsim.Runner.run_custom ~cp_timeout:0.2 ~injector:(journal_injector ())
      ~journal ~config ~vjobs ~programs ()
  in
  check_int "reference run completes" 2
    (List.length full.Vsim.Runner.completions);
  let records = Journal.records journal in
  let n = List.length records in
  check_bool "enough boundaries to matter" true (n >= 10);
  let vm_count = Configuration.vm_count config in
  let demand = Demand.uniform ~vm_count Program.compute_demand in
  for cut = 0 to n do
    let prefix = List.filteri (fun i _ -> i < cut) records in
    let label what = Printf.sprintf "cut %d/%d: %s" cut n what in
    match Recovery.replay prefix with
    | None ->
      (* crash before any switch began: a fresh run must still work *)
      let r =
        Vsim.Runner.run_custom ~cp_timeout:0.2 ~config ~vjobs ~programs ()
      in
      check_int (label "fresh run completes") 2
        (List.length r.Vsim.Runner.completions)
    | Some st ->
      let observed = Recovery.projected_config st in
      (match
         Vsim.Runner.resume ~cp_timeout:0.2 ~records:prefix ~observed ~vjobs
           ~programs ()
       with
      | None -> Alcotest.fail (label "resume lost the switch")
      | Some (info, r) ->
        (* completion in the resumed world: every vjob reaches Terminated
           (crashes inside the final stop-switch leave no program events
           to re-run, so completion counts would under-report) *)
        check_bool (label "all vjobs complete") true
          (List.for_all
             (fun vj ->
               List.for_all
                 (fun vm ->
                   Configuration.state r.Vsim.Runner.final_config vm
                   = Configuration.Terminated)
                 (Vjob.vms vj))
             vjobs);
        check_bool (label "resumed run not killed") false r.Vsim.Runner.killed;
        check_bool (label "final configuration viable") true
          (Configuration.is_viable r.Vsim.Runner.final_config demand);
        (* idempotent resume: journal + observation agree, so the resume
           is a straight continuation with a verifier-clean plan *)
        if not info.Vsim.Runner.repaired then
          match info.Vsim.Runner.reconciliation.Recovery.plan with
          | None -> ()
          | Some plan ->
            let findings =
              Verifier.verify_resume ~vjobs
                ~source:st.Recovery.source ~original:st.Recovery.plan
                ~observed
                ~target:info.Vsim.Runner.reconciliation.Recovery.target
                ~frozen:info.Vsim.Runner.reconciliation.Recovery.frozen_vms
                ~demand:st.Recovery.demand plan
            in
            Alcotest.(check int)
              (label "resume plan verifier-clean")
              0 (List.length findings))
  done

(* Same property against the binary file backend with group commit: the
   durable sequence on disk must match the deterministic mem sequence
   record for record (group commit batches but never reorders — a
   terminal record is flushed inside the append that precedes its
   completion callback, so it can never trail state the callback already
   acted on), and a crash at every record boundary — or mid-frame — of
   the file still resumes to convergence. *)
let test_crash_at_every_boundary_file_backend () =
  let config, vjobs, programs = journal_instance () in
  let mem_j = Journal.mem () in
  ignore
    (Vsim.Runner.run_custom ~cp_timeout:0.2 ~injector:(journal_injector ())
       ~journal:mem_j ~config ~vjobs ~programs ());
  let mem_records = Journal.records mem_j in
  let path = Filename.temp_file "entropy_sim_journal" ".wal" in
  Sys.remove path;
  let file_j = Journal.open_file path in
  let full =
    Vsim.Runner.run_custom ~cp_timeout:0.2 ~injector:(journal_injector ())
      ~journal:file_j ~config ~vjobs ~programs ()
  in
  Journal.close file_j;
  check_int "file-journaled run completes" 2
    (List.length full.Vsim.Runner.completions);
  let records, dropped = Journal.load path in
  check_int "clean file" 0 dropped;
  check_int "same record count as the mem run" (List.length mem_records)
    (List.length records);
  check_bool "group commit preserved the append order" true
    (List.for_all2 Jrecord.equal mem_records records);
  (* byte offset of every record boundary in the file *)
  let n = List.length records in
  let offsets = Array.make (n + 1) 0 in
  List.iteri
    (fun i r ->
      offsets.(i + 1) <- offsets.(i) + String.length (Jrecord.to_frame r))
    records;
  let full_bytes =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  check_int "offsets span the file" (String.length full_bytes) offsets.(n);
  let cut_path = Filename.temp_file "entropy_sim_cut" ".wal" in
  let vm_count = Configuration.vm_count config in
  let demand = Demand.uniform ~vm_count Program.compute_demand in
  for cut = 0 to n do
    let label what = Printf.sprintf "file cut %d/%d: %s" cut n what in
    (* crash exactly at the boundary, and torn mid-way into the next
       frame: both must decode to the same [cut]-record prefix *)
    List.iter
      (fun extra ->
        let len = min (offsets.(cut) + extra) (String.length full_bytes) in
        let oc = open_out_bin cut_path in
        output_string oc (String.sub full_bytes 0 len);
        close_out oc;
        let prefix, cut_dropped = Journal.load cut_path in
        check_int
          (label (Printf.sprintf "+%d bytes decodes the prefix" extra))
          (min cut n)
          (List.length prefix);
        if extra = 0 then check_int (label "boundary cut is clean") 0 cut_dropped)
      (if cut = n then [ 0 ] else [ 0; 5 ]);
    let prefix, _ = Journal.load cut_path in
    let prefix = List.filteri (fun i _ -> i < cut) prefix in
    match Recovery.replay prefix with
    | None -> () (* pre-switch crash: fresh-run case, covered above *)
    | Some st -> (
      let observed = Recovery.projected_config st in
      match
        Vsim.Runner.resume ~cp_timeout:0.2 ~records:prefix ~observed ~vjobs
          ~programs ()
      with
      | None -> Alcotest.fail (label "resume lost the switch")
      | Some (_, r) ->
        check_bool (label "all vjobs complete") true
          (List.for_all
             (fun vj ->
               List.for_all
                 (fun vm ->
                   Configuration.state r.Vsim.Runner.final_config vm
                   = Configuration.Terminated)
                 (Vjob.vms vj))
             vjobs);
        check_bool (label "resumed run not killed") false r.Vsim.Runner.killed;
        check_bool (label "final configuration viable") true
          (Configuration.is_viable r.Vsim.Runner.final_config demand))
  done;
  Sys.remove path;
  Sys.remove cut_path

(* -- run -------------------------------------------------------------------------- *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "vsim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "tied count" `Quick test_heap_tied_count;
          Alcotest.test_case "pop tied" `Quick test_heap_pop_tied;
        ]
        @ qsuite [ heap_pops_sorted; heap_pop_tied_is_permutation ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "chained" `Quick test_engine_schedule_in_callback;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "chooser" `Quick test_engine_chooser;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
        ] );
      ( "perf_model",
        [
          Alcotest.test_case "boot/stop flat" `Quick
            test_perf_boot_stop_memory_independent;
          Alcotest.test_case "migrate scales" `Quick
            test_perf_migrate_scales_with_memory;
          Alcotest.test_case "suspend remote 2x" `Quick
            test_perf_suspend_remote_doubles;
          Alcotest.test_case "resume remote 2x" `Quick
            test_perf_resume_remote_vs_local;
          Alcotest.test_case "deceleration" `Quick test_perf_deceleration;
          Alcotest.test_case "figure 3 rows" `Quick test_perf_figure3_rows;
          Alcotest.test_case "contended action" `Quick
            test_perf_action_duration_contention;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "full speed" `Quick test_cluster_full_speed_compute;
          Alcotest.test_case "contention" `Quick
            test_cluster_contention_halves_speed;
          Alcotest.test_case "idle wall clock" `Quick
            test_cluster_idle_phase_wall_clock;
          Alcotest.test_case "launch needs all VMs" `Quick
            test_cluster_launch_requires_all_vms;
          Alcotest.test_case "suspension freezes" `Quick
            test_cluster_suspension_freezes_progress;
          Alcotest.test_case "demand follows phases" `Quick
            test_cluster_demand_follows_phases;
          Alcotest.test_case "operation decelerates" `Quick
            test_cluster_decel_during_op;
        ] );
      ( "executor",
        [
          Alcotest.test_case "applies plan" `Quick test_executor_applies_plan;
          Alcotest.test_case "pools sequential" `Quick
            test_executor_pools_sequential;
          Alcotest.test_case "pipelined suspends" `Quick
            test_executor_pipelines_suspends;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "overload visible" `Quick
            test_metrics_overload_visible;
          Alcotest.test_case "rejects bad period" `Quick
            test_metrics_rejects_nonpositive_period;
          Alcotest.test_case "stop idempotent" `Quick
            test_metrics_stop_idempotent;
          Alcotest.test_case "to_json" `Quick test_metrics_to_json;
        ] );
      ( "runner",
        [
          Alcotest.test_case "single vjob" `Quick test_runner_single_vjob;
          Alcotest.test_case "overload resolved" `Quick
            test_runner_overload_suspends_and_completes;
          Alcotest.test_case "beats static FCFS" `Quick
            test_runner_beats_static_fcfs;
          Alcotest.test_case "cost/duration correlate" `Quick
            test_runner_switch_cost_duration_correlate;
          Alcotest.test_case "recovers from failures" `Quick
            test_runner_recovers_from_failures;
          Alcotest.test_case "failure keeps state" `Quick
            test_executor_failure_keeps_state;
        ] );
      ( "continuous-executor",
        [
          Alcotest.test_case "applies plan" `Quick
            test_executor_continuous_applies_plan;
          Alcotest.test_case "overlaps pools" `Quick
            test_executor_continuous_overlaps_pools;
          Alcotest.test_case "runner completes" `Quick
            test_runner_continuous_execution_completes;
        ] );
      ( "fault",
        [
          Alcotest.test_case "cancelled not pending" `Quick
            test_engine_cancelled_not_pending;
          Alcotest.test_case "retry masks fault" `Quick
            test_executor_retry_masks_fault;
          Alcotest.test_case "timeout is terminal" `Quick
            test_executor_timeout_is_terminal;
          Alcotest.test_case "repairs failed migration" `Quick
            test_runner_repairs_failed_migration;
          Alcotest.test_case "node crash resubmits" `Quick
            test_runner_node_crash_resubmits;
        ] );
      ( "journal",
        [
          Alcotest.test_case "emission well formed" `Quick
            test_journal_emission_well_formed;
          Alcotest.test_case "kill and resume" `Quick
            test_runner_kill_and_resume;
          Alcotest.test_case "crash at every boundary" `Quick
            test_crash_at_every_record_boundary;
          Alcotest.test_case "crash at every boundary (file backend)" `Quick
            test_crash_at_every_boundary_file_backend;
        ] );
      ( "storage",
        [
          Alcotest.test_case "sharding + counts" `Quick
            test_storage_sharding_and_counts;
          Alcotest.test_case "disk images only" `Quick
            test_storage_only_disk_images;
          Alcotest.test_case "contention stretches" `Quick
            test_storage_contention_stretches_suspends;
        ] );
      ( "online-rms",
        [
          Alcotest.test_case "frees early" `Quick test_rms_simulate_frees_early;
          Alcotest.test_case "backfill vs strict" `Quick
            test_rms_simulate_backfill_vs_strict;
          Alcotest.test_case "staggered arrivals" `Quick
            test_rms_simulate_staggered_arrivals;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "collector smoothing" `Quick
            test_collector_smoothing;
          Alcotest.test_case "history window" `Quick
            test_history_window_and_eviction;
          Alcotest.test_case "history fallback" `Quick
            test_history_average_fallback;
          Alcotest.test_case "collector bootstrap" `Quick
            test_collector_poll_count_and_bootstrap;
          Alcotest.test_case "drops bad samples" `Quick
            test_collector_drops_bad_samples;
          Alcotest.test_case "keeps equal timestamps" `Quick
            test_collector_keeps_equal_timestamps;
          Alcotest.test_case "drop counter metric" `Quick
            test_collector_drop_counter_metric;
          Alcotest.test_case "engine max events" `Quick
            test_engine_max_events;
        ] );
    ]
