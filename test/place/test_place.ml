(* Tests for lib/place: delta-evaluator parity, SA incumbent
   monotonicity, LNS repair viability, portfolio deadline and
   verifier-viability of every returned plan — plus the CP warm-start
   regression and the Consistency cycle-break re-validation the seed-4
   model-checker finding motivated. *)

open Entropy_core
module Generator = Vworkload.Generator
module State = Entropy_place.State
module Moves = Entropy_place.Moves
module Anneal = Entropy_place.Anneal
module Lns = Entropy_place.Lns
module Portfolio = Entropy_place.Portfolio
module Verifier = Entropy_analysis.Verifier

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let now () = Unix.gettimeofday ()

(* -- fixtures ------------------------------------------------------------- *)

let instance ~nodes ~vms ~seed =
  let { Generator.config; demand; vjobs } =
    Generator.generate
      { Generator.default_spec with node_count = nodes; vm_target = vms; seed }
  in
  let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
  (config, demand, vjobs, outcome)

(* the Fig. 10 CP probe shape (54 VMs / 15 nodes, seed 42) *)
let probe54 = lazy (instance ~nodes:15 ~vms:54 ~seed:42)

(* the acceptance shape: 216 VMs / 54 nodes under a 1 s deadline, at
   the seed where CP alone times out solution-less (see bench) *)
let probe216 = lazy (instance ~nodes:54 ~vms:216 ~seed:2)

let seeded_state (config, demand, _vjobs, outcome) =
  let placed = List.concat_map Vjob.vms outcome.Rjsp.running in
  let st =
    State.create ~current:config ~demand ~placed
      ~target_base:outcome.Rjsp.ffd_config ()
  in
  State.seed_from st outcome.Rjsp.ffd_config;
  st

(* -- delta evaluator ------------------------------------------------------ *)

let test_delta_parity () =
  let st = seeded_state (Lazy.force probe54) in
  check_bool "seeded complete" true (State.complete st);
  check_int "seed parity" (State.recompute_cost st) (State.cost st);
  let gen = Moves.make_gen ~seed:7 st in
  let applied = ref 0 in
  for _ = 1 to 2000 do
    match Moves.propose gen st with
    | None -> ()
    | Some m ->
      let d = Moves.delta st m in
      let before = State.cost st in
      Moves.apply gen st m;
      incr applied;
      check_int "announced delta" (before + d) (State.cost st);
      check_int "incremental == from-scratch" (State.recompute_cost st)
        (State.cost st)
  done;
  check_bool "moves actually applied" true (!applied > 100);
  check_bool "still complete" true (State.complete st)

(* the estimator is an admissible lower bound of the true plan cost *)
let test_estimator_admissible () =
  let ((config, demand, vjobs, _) as inst) = Lazy.force probe54 in
  let st = seeded_state inst in
  let gen = Moves.make_gen ~seed:11 st in
  for _ = 1 to 500 do
    match Moves.propose gen st with
    | None -> ()
    | Some m -> Moves.apply gen st m
  done;
  let target = State.to_config st in
  let plan = Planner.build_plan ~vjobs ~current:config ~target ~demand () in
  check_bool "estimate <= Plan.cost" true
    (State.cost st <= Plan.cost config plan)

(* -- simulated annealing -------------------------------------------------- *)

let test_sa_monotone_incumbents () =
  let st = seeded_state (Lazy.force probe54) in
  let seed_cost = State.cost st in
  let stream = ref [] in
  let outcome =
    Anneal.run ~seed:3 ~max_steps:30_000
      ~deadline:(now () +. 10.)
      ~on_incumbent:(fun ~cost _ -> stream := cost :: !stream)
      st
  in
  let incumbents = List.rev !stream in
  check_bool "at least one incumbent" true (incumbents <> []);
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  check_bool "incumbent stream monotone" true (strictly_decreasing incumbents);
  check_bool "best <= seed" true (outcome.Anneal.best_cost <= seed_cost);
  check_int "last incumbent is the best"
    (List.fold_left min seed_cost incumbents)
    outcome.Anneal.best_cost;
  (* the state is left loaded at the best placement *)
  check_int "state holds best" outcome.Anneal.best_cost (State.cost st);
  check_int "state parity after run" (State.recompute_cost st) (State.cost st)

(* -- LNS ------------------------------------------------------------------ *)

let test_lns_repair_viable () =
  let ((config, demand, vjobs, _) as inst) = Lazy.force probe54 in
  let st = seeded_state inst in
  let seed_cost = State.cost st in
  let outcome =
    Lns.run ~seed:5 ~max_rounds:400 ~vjobs ~deadline:(now () +. 10.) st
  in
  check_bool "never degrades" true (outcome.Lns.best_cost <= seed_cost);
  check_bool "complete after repair" true (State.complete st);
  check_int "parity after rounds" (State.recompute_cost st) (State.cost st);
  let target = State.to_config st in
  check_bool "repaired placement viable" true
    (Configuration.is_viable target demand);
  let plan = Planner.build_plan ~vjobs ~current:config ~target ~demand () in
  check_bool "verifier clean" true
    (Verifier.is_clean ~vjobs ~current:config ~target ~demand plan)

(* -- portfolio ------------------------------------------------------------ *)

let solve_probe ?(deadline = 0.4) ~engine inst =
  let config, demand, vjobs, outcome = inst in
  let placed = List.concat_map Vjob.vms outcome.Rjsp.running in
  Portfolio.solve ~deadline ~engine ~vjobs ~current:config ~demand ~placed
    ~target_base:outcome.Rjsp.ffd_config ~fallback:outcome.Rjsp.ffd_config ()

let test_portfolio_deadline () =
  let inst = Lazy.force probe216 in
  let t0 = now () in
  let report = solve_probe ~deadline:0.5 ~engine:`Portfolio inst in
  let elapsed = now () -. t0 in
  (* tolerance: plan materialisation + the CP grace slice *)
  check_bool
    (Printf.sprintf "deadline respected (%.3fs for 0.5s budget)" elapsed)
    true (elapsed < 1.5);
  check_bool "report elapsed consistent" true (report.Portfolio.elapsed <= elapsed)

let test_every_engine_verifier_clean () =
  let ((config, demand, vjobs, _) as inst) = Lazy.force probe54 in
  List.iter
    (fun engine ->
      let report = solve_probe ~engine inst in
      let r = report.Portfolio.result in
      check_bool
        (Portfolio.engine_to_string engine ^ " plan verifier-clean")
        true
        (Verifier.is_clean ~vjobs ~current:config ~target:r.Optimizer.target
           ~demand r.Optimizer.plan);
      check_bool
        (Portfolio.engine_to_string engine ^ " never worse than FFD")
        true
        (r.Optimizer.cost <= report.Portfolio.ffd_cost);
      check_bool
        (Portfolio.engine_to_string engine ^ " improved flag consistent")
        true
        (r.Optimizer.improved = (r.Optimizer.cost < report.Portfolio.ffd_cost)))
    [ `Cp; `Anneal; `Portfolio ]

(* acceptance: on the 216-VM/54-node shape with a 1 s deadline the
   portfolio strictly beats the FFD seed plan *)
let test_portfolio_beats_ffd () =
  let inst = Lazy.force probe216 in
  let report = solve_probe ~deadline:1.0 ~engine:`Portfolio inst in
  check_bool
    (Printf.sprintf "portfolio (%d) strictly beats FFD (%d), winner %s"
       report.Portfolio.result.Optimizer.cost report.Portfolio.ffd_cost
       report.Portfolio.winner)
    true
    (report.Portfolio.result.Optimizer.cost < report.Portfolio.ffd_cost)

let test_portfolio_decision () =
  let config, demand, vjobs, _ = Lazy.force probe54 in
  let d = Portfolio.decision ~engine:`Portfolio ~deadline:0.3 () in
  let r =
    d.Decision.decide { Decision.config; demand; queue = vjobs; finished = [] }
  in
  check_bool "decision plan verifier-clean" true
    (Verifier.is_clean ~vjobs ~current:config ~target:r.Optimizer.target
       ~demand r.Optimizer.plan)

(* -- CP warm start -------------------------------------------------------- *)

(* [?incumbent_cost] warm-starts branch & bound: with the local-search
   incumbent's objective posted as an upper bound the node-limited
   search explores strictly fewer nodes on the 54-VM probe (both runs
   are deterministic: node-limited, no wall-clock cutoff). *)
let test_warm_start_fewer_nodes () =
  let config, demand, vjobs, outcome = Lazy.force probe54 in
  let placed = List.concat_map Vjob.vms outcome.Rjsp.running in
  let run ?incumbent_cost () =
    Optimizer.optimize ~timeout:60. ~node_limit:3000 ?incumbent_cost ~vjobs
      ~current:config ~demand ~placed ~target_base:outcome.Rjsp.ffd_config
      ~fallback:outcome.Rjsp.ffd_config ()
  in
  let nodes_of r =
    match r.Optimizer.stats with Some s -> s.Fdcp.Search.nodes | None -> 0
  in
  let cold = run () in
  (* a deterministic local-search incumbent (step-bounded, no clock);
     its objective estimate is the CP objective of a known feasible
     placement, the tightest sound upper bound *)
  let st = seeded_state (Lazy.force probe54) in
  let seed_obj = State.cost st in
  let sa = Anneal.run ~seed:3 ~max_steps:30_000 ~deadline:infinity st in
  check_bool "local search improved on the FFD seed objective" true
    (sa.Anneal.best_cost < seed_obj);
  let warm = run ~incumbent_cost:sa.Anneal.best_cost () in
  check_bool
    (Printf.sprintf "warm start explores fewer nodes (%d < %d)"
       (nodes_of warm) (nodes_of cold))
    true
    (nodes_of warm < nodes_of cold)

(* -- consistency cycle-break re-validation (ROADMAP open item 4) ---------- *)

(* The seed-4 8-VM/3-node instance: vjob regrouping used to leave a
   disk-route suspend whose direct migration had become feasible at its
   pool — flagged by the verifier as an off-graph action. The enforce
   pass now drops the detour; the derived plan must be verifier-clean. *)
let test_seed4_cycle_break_revalidated () =
  let config, demand, vjobs, outcome = instance ~nodes:3 ~vms:8 ~seed:4 in
  let target =
    Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config
  in
  let plan = Planner.build_plan ~vjobs ~current:config ~target ~demand () in
  check_bool "seed-4 derived plan verifier-clean" true
    (Verifier.is_clean ~vjobs ~current:config ~target ~demand plan);
  (* grouping survives the re-validation *)
  List.iter
    (fun vj ->
      check_bool "suspends grouped" true
        (Consistency.grouped_in_same_pool plan vj `Suspend);
      check_bool "resumes grouped" true
        (Consistency.grouped_in_same_pool plan vj `Resume))
    vjobs;
  (* and the plan still validates end to end *)
  check_bool "plan valid" true
    (Plan.is_valid ~current:config ~target ~demand plan)

let () =
  Alcotest.run "entropy_place"
    [
      ( "state",
        [
          Alcotest.test_case "delta parity under random moves" `Quick
            test_delta_parity;
          Alcotest.test_case "estimator admissible vs Plan.cost" `Quick
            test_estimator_admissible;
        ] );
      ( "anneal",
        [
          Alcotest.test_case "monotone incumbent stream" `Quick
            test_sa_monotone_incumbents;
        ] );
      ( "lns",
        [
          Alcotest.test_case "repair always viable" `Quick
            test_lns_repair_viable;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "deadline respected" `Quick
            test_portfolio_deadline;
          Alcotest.test_case "every engine verifier-clean" `Slow
            test_every_engine_verifier_clean;
          Alcotest.test_case "beats FFD on 216vm/54n in 1s" `Slow
            test_portfolio_beats_ffd;
          Alcotest.test_case "decision module wiring" `Quick
            test_portfolio_decision;
        ] );
      ( "warm-start",
        [
          Alcotest.test_case "incumbent bound explores fewer nodes" `Slow
            test_warm_start_fewer_nodes;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "seed-4 cycle break re-validated" `Quick
            test_seed4_cycle_break_revalidated;
        ] );
    ]
