(* Tests for the write-ahead switch journal: record codec round trips,
   checksum and torn-tail handling, the two backends, journal replay,
   and reconciliation of a journaled switch against an observation. *)

open Entropy_core
module Record = Entropy_journal.Record
module Journal = Entropy_journal.Journal
module Recovery = Entropy_journal.Recovery
module Repair = Entropy_fault.Repair

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let testbed_nodes n =
  Array.init n (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))

let mk_config ?(crashed = []) ~nodes ~vm_count states =
  let node_arr =
    Array.map
      (fun n -> if List.mem (Node.id n) crashed then Node.crashed n else n)
      (testbed_nodes nodes)
  in
  let vms =
    Array.init vm_count (fun i ->
        Vm.make ~id:i ~name:(Printf.sprintf "vm%d" i) ~memory_mb:512)
  in
  Configuration.with_states
    (Configuration.make ~nodes:node_arr ~vms)
    (Array.of_list states)

(* a switch over every vm_state and a multi-pool plan with several
   action shapes — the codec must survive all of them *)
let rich_begin =
  let source =
    mk_config ~crashed:[ 2 ] ~nodes:3 ~vm_count:5
      Configuration.
        [ Waiting; Running 0; Sleeping 1; Sleeping_ram 0; Terminated ]
  in
  let target =
    mk_config ~crashed:[ 2 ] ~nodes:3 ~vm_count:5
      Configuration.
        [ Running 1; Running 1; Running 0; Running 0; Terminated ]
  in
  let plan =
    Plan.make
      [
        [
          Action.Run { vm = 0; dst = 1 };
          Action.Migrate { vm = 1; src = 0; dst = 1 };
        ];
        [
          Action.Resume { vm = 2; src = 1; dst = 0 };
          Action.Resume_ram { vm = 3; host = 0 };
        ];
      ]
  in
  Record.Switch_begin
    {
      switch = 3;
      at_s = 12.5;
      source;
      target;
      plan;
      demand = Demand.of_fn ~vm_count:5 (fun vm -> 10 * vm);
      seed = Some 42;
    }

let switch_records =
  [
    rich_begin;
    Record.Action_started
      {
        switch = 3;
        pool = 0;
        attempt = 2;
        at_s = 13.;
        action = Action.Migrate { vm = 1; src = 0; dst = 1 };
      };
    Record.Action_done
      {
        switch = 3;
        pool = 0;
        at_s = 14.5;
        action = Action.Migrate { vm = 1; src = 0; dst = 1 };
      };
    Record.Action_failed
      {
        switch = 3;
        pool = 0;
        at_s = 15.;
        action = Action.Run { vm = 0; dst = 1 };
      };
    Record.Pool_committed { switch = 3; pool = 0; at_s = 15.5 };
    Record.Switch_end { switch = 3; at_s = 16.; aborted = true };
  ]

(* daemon-level records live outside any switch (switch id -1) *)
let daemon_records =
  [
    Record.Submission
      { at_s = 17.; vjob = 4; vms = 2; disposition = Record.Queued };
    Record.Submission
      { at_s = 17.5; vjob = 4; vms = 2; disposition = Record.Admitted };
    Record.Submission
      {
        at_s = 18.;
        vjob = 5;
        vms = 1;
        disposition = Record.Rejected "queue full";
      };
    Record.Ladder
      { at_s = 19.; from_level = 0; to_level = 2; reason = "queue pressure" };
  ]

let all_records = switch_records @ daemon_records

(* -- record codec ------------------------------------------------------------- *)

let test_record_round_trip () =
  List.iter
    (fun r ->
      let line = Record.to_line r in
      check_bool "line has no newline" false (String.contains line '\n');
      check_bool
        (Format.asprintf "round trip: %a" Record.pp r)
        true
        (Record.equal r (Record.of_line line)))
    all_records

let test_record_accessors () =
  List.iter
    (fun r -> check_int "switch id" 3 (Record.switch r))
    switch_records;
  List.iter
    (fun r -> check_int "daemon record switch id" (-1) (Record.switch r))
    daemon_records;
  Alcotest.(check (float 1e-9)) "begin time" 12.5 (Record.at_s rich_begin)

let test_checksum_detects_corruption () =
  let line = Record.to_line rich_begin in
  (* flip one payload character; the crc no longer matches *)
  let i = String.length line - 3 in
  let corrupt =
    String.mapi
      (fun j c -> if j = i then (if c = 'x' then 'y' else 'x') else c)
      line
  in
  check_bool "of_line rejects a flipped byte" true
    (match Record.of_line corrupt with
    | exception Record.Corrupt _ -> true
    | _ -> false);
  check_bool "of_line rejects garbage" true
    (match Record.of_line "not json at all" with
    | exception Record.Corrupt _ -> true
    | _ -> false)

let test_checksum_reference () =
  (* FNV-1a 32-bit reference values — pins the on-disk format *)
  check_int "fnv-1a of empty" 0x811c9dc5 (Record.checksum "");
  check_int "fnv-1a of 'a'" 0xe40c292c (Record.checksum "a")

(* -- backends ----------------------------------------------------------------- *)

let test_mem_backend () =
  let j = Journal.mem () in
  check_bool "no path" true (Journal.path j = None);
  check_int "empty" 0 (Journal.length j);
  List.iter (Journal.append j) all_records;
  check_int "length counts appends" (List.length all_records)
    (Journal.length j);
  check_bool "records round trip in order" true
    (List.for_all2 Record.equal all_records (Journal.records j));
  Journal.close j;
  check_bool "close is a no-op" true
    (List.length (Journal.records j) = List.length all_records)

let test_of_records () =
  let j = Journal.of_records all_records in
  check_int "pre-populated" (List.length all_records) (Journal.length j);
  check_bool "same records" true
    (List.for_all2 Record.equal all_records (Journal.records j))

let temp_journal () =
  let path = Filename.temp_file "entropy_journal" ".wal" in
  Sys.remove path;
  path

let test_file_backend () =
  let path = temp_journal () in
  let j = Journal.open_file path in
  check_string "path" path (Option.get (Journal.path j));
  List.iter (Journal.append j) all_records;
  (* records on an open file journal reflect the flushed file *)
  check_bool "records while open" true
    (List.for_all2 Record.equal all_records (Journal.records j));
  Journal.close j;
  Journal.close j;
  let loaded, dropped = Journal.load path in
  check_int "no torn lines" 0 dropped;
  check_bool "load round trip" true
    (List.for_all2 Record.equal all_records loaded);
  (* reopening appends after the existing records *)
  let j2 = Journal.open_file path in
  check_int "length counts existing lines" (List.length all_records)
    (Journal.length j2);
  Journal.append j2 (Record.Switch_end { switch = 4; at_s = 20.; aborted = false });
  Journal.close j2;
  check_int "appended after reopen"
    (List.length all_records + 1)
    (List.length (fst (Journal.load path)));
  Sys.remove path

let test_torn_tail () =
  let path = temp_journal () in
  let good = List.map Record.to_line all_records in
  let oc = open_out path in
  List.iteri
    (fun i line ->
      (* corrupt the third line; everything after it must be dropped,
         even the later well-formed lines *)
      if i = 2 then output_string oc "{\"crc\":1,\"rec\":\"torn"
      else output_string oc line;
      output_char oc '\n')
    good;
  close_out oc;
  let loaded, dropped = Journal.load path in
  check_int "valid prefix ends at the torn line" 2 (List.length loaded);
  check_int "torn + distrusted tail counted"
    (List.length all_records - 2)
    dropped;
  Sys.remove path

(* -- binary frame form -------------------------------------------------------- *)

let test_binary_round_trip () =
  List.iter
    (fun r ->
      let frame = Record.to_frame r in
      check_bool "frame starts with the magic" true
        (String.length frame >= Record.header_size
        && String.sub frame 0 2 = Record.magic);
      match Record.read_frame frame ~pos:0 with
      | Some (Record.Frame (r', next)) ->
        check_bool
          (Format.asprintf "binary round trip: %a" Record.pp r)
          true (Record.equal r r');
        check_int "frame consumed whole" (String.length frame) next
      | Some (Record.Skipped (reason, _)) ->
        Alcotest.fail ("fresh frame read as unknown-tag: " ^ reason)
      | Some (Record.Torn reason) ->
        Alcotest.fail ("fresh frame read as torn: " ^ reason)
      | None -> Alcotest.fail "fresh frame read as end of input")
    all_records

let test_binary_crc_every_offset () =
  (* corrupt every single byte of a mid-journal frame in turn: wherever
     the flip lands (magic, version, length, crc, payload) the decoded
     prefix must stop exactly before the corrupted frame *)
  let path = temp_journal () in
  let first = List.nth all_records 1 in
  let frame_a = Record.to_frame first in
  let frame_b = Record.to_frame rich_begin in
  let frame_c = Record.to_frame (List.nth all_records 5) in
  let base = frame_a ^ frame_b ^ frame_c in
  let a_len = String.length frame_a in
  for k = 0 to String.length frame_b - 1 do
    let corrupted = Bytes.of_string base in
    Bytes.set corrupted (a_len + k)
      (Char.chr (Char.code (Bytes.get corrupted (a_len + k)) lxor 0x5a));
    let oc = open_out_bin path in
    output_bytes oc corrupted;
    close_out oc;
    let loaded, dropped = Journal.load path in
    check_bool
      (Printf.sprintf "offset %d: prefix ends before the corrupt frame" k)
      true
      (match loaded with [ r ] -> Record.equal r first | _ -> false);
    check_bool (Printf.sprintf "offset %d: tail dropped" k) true (dropped >= 1)
  done;
  Sys.remove path

let test_binary_torn_tail_cuts () =
  (* a crash mid-append can cut anywhere: mid-header, mid-payload, one
     byte in — the valid prefix must survive, the cut frame must not *)
  let path = temp_journal () in
  let frame_a = Record.to_frame (List.nth all_records 4) in
  let frame_b = Record.to_frame rich_begin in
  List.iter
    (fun cut ->
      let oc = open_out_bin path in
      output_string oc frame_a;
      output_string oc (String.sub frame_b 0 cut);
      close_out oc;
      let loaded, dropped = Journal.load path in
      check_int (Printf.sprintf "cut %d: valid prefix kept" cut) 1
        (List.length loaded);
      check_int (Printf.sprintf "cut %d: torn tail dropped" cut) 1 dropped)
    [
      1;
      Record.header_size - 3;
      Record.header_size + 3;
      String.length frame_b - 1;
    ];
  Sys.remove path

(* hand-built frame with a correct header and checksum over an
   arbitrary payload, as a newer-version writer would emit *)
let craft_frame payload =
  let b = Buffer.create 64 in
  Buffer.add_string b Record.magic;
  Buffer.add_char b (Char.chr Record.version);
  let len = String.length payload in
  let crc = Record.checksum payload in
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((len lsr (8 * i)) land 0xff))
  done;
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((crc lsr (8 * i)) land 0xff))
  done;
  Buffer.add_string b payload;
  Buffer.contents b

let test_binary_unknown_tag_skipped () =
  (* forward compatibility: an intact frame whose payload leads with a
     record tag this reader does not know must surface as a clean skip
     diagnostic — not a crash, and not a torn tail that silently
     truncates the records behind it *)
  let future = craft_frame "\099future-record-payload" in
  (match Record.read_frame future ~pos:0 with
  | Some (Record.Skipped (reason, next)) ->
    check_bool "diagnostic names the tag" true
      (let needle = "unknown record tag 99" in
       let n = String.length needle in
       let rec find i =
         i + n <= String.length reason
         && (String.sub reason i n = needle || find (i + 1))
       in
       find 0);
    check_int "skip lands just past the frame" (String.length future) next
  | Some (Record.Frame _) -> Alcotest.fail "future frame decoded as a record"
  | Some (Record.Torn reason) ->
    Alcotest.fail ("future frame read as torn: " ^ reason)
  | None -> Alcotest.fail "future frame read as end of input");
  (* sandwiched in a journal file the frames behind it must survive *)
  let path = temp_journal () in
  let frame_a = Record.to_frame (List.nth all_records 1) in
  let frame_c = Record.to_frame (List.nth all_records 5) in
  let oc = open_out_bin path in
  output_string oc (frame_a ^ future ^ frame_c);
  close_out oc;
  let loaded, dropped = Journal.load path in
  check_int "both known records load" 2 (List.length loaded);
  check_bool "records around the skip intact" true
    (List.for_all2 Record.equal
       [ List.nth all_records 1; List.nth all_records 5 ]
       loaded);
  check_int "nothing counted as torn" 0 dropped;
  (* a crash can still tear a future frame: a cut partway through it
     must end the durable prefix exactly there *)
  let oc = open_out_bin path in
  output_string oc
    (frame_a ^ String.sub future 0 (String.length future - 1));
  close_out oc;
  let loaded, dropped = Journal.load path in
  check_int "prefix before the torn future frame" 1 (List.length loaded);
  check_int "torn future frame dropped" 1 dropped;
  Sys.remove path

let test_reopen_after_torn_tail () =
  let path = temp_journal () in
  let j = Journal.open_file path in
  Journal.append j (Record.Switch_end { switch = 0; at_s = 1.; aborted = false });
  Journal.close j;
  (* crash mid-append: garbage bytes after the durable record *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "EJ\x01torn-mid-frame";
  close_out oc;
  let recs, dropped = Journal.load path in
  check_int "one valid record" 1 (List.length recs);
  check_int "tail dropped" 1 dropped;
  (* reopening truncates the torn tail so post-crash appends land inside
     the durable prefix and are read back *)
  let j2 = Journal.open_file path in
  check_int "reopen counts the valid prefix" 1 (Journal.length j2);
  Journal.append j2 (Record.Switch_end { switch = 1; at_s = 2.; aborted = false });
  Journal.append j2 (Record.Switch_end { switch = 2; at_s = 3.; aborted = false });
  Journal.close j2;
  let recs2, dropped2 = Journal.load path in
  check_int "post-crash appends durable" 3 (List.length recs2);
  check_int "file clean again" 0 dropped2;
  Sys.remove path

let test_json_auto_detect () =
  (* a journal written by the pre-binary format: one JSON line/record *)
  let path = temp_journal () in
  let oc = open_out path in
  List.iter
    (fun r ->
      output_string oc (Record.to_line r);
      output_char oc '\n')
    all_records;
  close_out oc;
  let loaded, dropped = Journal.load path in
  check_int "no drops" 0 dropped;
  check_bool "legacy journal loads" true
    (List.for_all2 Record.equal all_records loaded);
  (* appends to a legacy journal stay in its line format *)
  let j = Journal.open_file path in
  check_int "length counts legacy records" (List.length all_records)
    (Journal.length j);
  Journal.append j (Record.Switch_end { switch = 9; at_s = 99.; aborted = false });
  Journal.close j;
  let ic = open_in path in
  let c = input_char ic in
  close_in ic;
  check_bool "file still JSON lines" true (c = '{');
  check_int "append readable" (List.length all_records + 1)
    (List.length (fst (Journal.load path)));
  Sys.remove path

let test_group_commit_flush_rules () =
  let path = temp_journal () in
  let j = Journal.open_file path in
  let started n =
    Record.Action_started
      {
        switch = 0;
        pool = 0;
        attempt = 1;
        at_s = float_of_int n;
        action = Action.Migrate { vm = n; src = 0; dst = 1 };
      }
  in
  Journal.append j (started 0);
  (* a non-terminal record batches: nothing on disk yet *)
  check_int "started buffered, not durable" 0
    (List.length (fst (Journal.load path)));
  (* a terminal record is a commit point: the whole batch flushes
     before append returns *)
  Journal.append j
    (Record.Action_done
       {
         switch = 0;
         pool = 0;
         at_s = 1.;
         action = Action.Migrate { vm = 0; src = 0; dst = 1 };
       });
  check_int "commit point flushes the batch" 2
    (List.length (fst (Journal.load path)));
  Journal.append j (started 1);
  check_int "next started batches again" 2
    (List.length (fst (Journal.load path)));
  Journal.flush j;
  check_int "explicit flush drains the buffer" 3
    (List.length (fst (Journal.load path)));
  Journal.close j;
  (* the record-count threshold also forces a flush *)
  let j2 = Journal.open_file ~flush_records:2 path in
  Journal.append j2 (started 2);
  check_int "below threshold: buffered" 3
    (List.length (fst (Journal.load path)));
  Journal.append j2 (started 3);
  check_int "threshold reached: flushed" 5
    (List.length (fst (Journal.load path)));
  Journal.close j2;
  Sys.remove path

(* binary and JSON journals of the same run must replay and reconcile
   identically — the debug export is a faithful view of the WAL *)
let test_binary_json_parity () =
  let mig vm = Action.Migrate { vm; src = 0; dst = 1 } in
  let records =
    [
      Record.Switch_begin
        {
          switch = 0;
          at_s = 1.;
          source =
            mk_config ~nodes:3 ~vm_count:2
              Configuration.[ Running 0; Running 0 ];
          target =
            mk_config ~nodes:3 ~vm_count:2
              Configuration.[ Running 1; Running 1 ];
          plan = Plan.make [ [ mig 0; mig 1 ] ];
          demand = Demand.uniform ~vm_count:2 40;
          seed = Some 7;
        };
      Record.Action_started
        { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 0 };
      Record.Action_done { switch = 0; pool = 0; at_s = 3.; action = mig 0 };
      Record.Action_started
        { switch = 0; pool = 0; attempt = 1; at_s = 2.5; action = mig 1 };
    ]
  in
  let bin_path = temp_journal () and json_path = temp_journal () in
  let j = Journal.open_file bin_path in
  List.iter (Journal.append j) records;
  Journal.close j;
  let oc = open_out json_path in
  List.iter
    (fun r ->
      output_string oc (Record.to_line r);
      output_char oc '\n')
    records;
  close_out oc;
  let bin_records = fst (Journal.load bin_path) in
  let json_records = fst (Journal.load json_path) in
  check_bool "same records from both codecs" true
    (List.length bin_records = List.length json_records
    && List.for_all2 Record.equal bin_records json_records);
  let observed =
    mk_config ~nodes:3 ~vm_count:2 Configuration.[ Running 1; Running 0 ]
  in
  (match (Recovery.replay bin_records, Recovery.replay json_records) with
  | Some sb, Some sj ->
    let rb = Recovery.reconcile ~state:sb ~observed () in
    let rj = Recovery.reconcile ~state:sj ~observed () in
    Alcotest.(check (list int))
      "same done VMs" rj.Recovery.done_vms rb.Recovery.done_vms;
    Alcotest.(check (list int))
      "same pending VMs" rj.Recovery.pending_vms rb.Recovery.pending_vms;
    Alcotest.(check (list int))
      "same frozen VMs" rj.Recovery.frozen_vms rb.Recovery.frozen_vms;
    check_bool "same salvaged target" true
      (Configuration.equal rb.Recovery.target rj.Recovery.target)
  | _ -> Alcotest.fail "replay lost the switch on one codec");
  Sys.remove bin_path;
  Sys.remove json_path

(* -- randomized codec properties ---------------------------------------------- *)

module Gen = QCheck.Gen

let gen_action =
  let open Gen in
  let vm = int_bound 40 and node = int_bound 7 in
  oneof
    [
      map2 (fun vm dst -> Action.Run { vm; dst }) vm node;
      map2 (fun vm host -> Action.Stop { vm; host }) vm node;
      map3 (fun vm src dst -> Action.Migrate { vm; src; dst }) vm node node;
      map2 (fun vm host -> Action.Suspend { vm; host }) vm node;
      map3 (fun vm src dst -> Action.Resume { vm; src; dst }) vm node node;
      map2 (fun vm host -> Action.Suspend_ram { vm; host }) vm node;
      map2 (fun vm host -> Action.Resume_ram { vm; host }) vm node;
    ]

(* a random config over [nnodes] nodes of which the last may be crashed;
   VM states only reference the alive ones *)
let gen_config =
  let open Gen in
  int_range 2 4 >>= fun nnodes ->
  bool >>= fun crash_last ->
  int_range 1 6 >>= fun nvms ->
  let alive = if crash_last then nnodes - 1 else nnodes in
  let gen_state =
    oneof
      [
        return Configuration.Waiting;
        return Configuration.Terminated;
        map (fun n -> Configuration.Running n) (int_bound (alive - 1));
        map (fun n -> Configuration.Sleeping n) (int_bound (alive - 1));
        map (fun n -> Configuration.Sleeping_ram n) (int_bound (alive - 1));
      ]
  in
  list_size (return nvms) gen_state >>= fun states ->
  return
    (mk_config
       ~crashed:(if crash_last then [ nnodes - 1 ] else [])
       ~nodes:nnodes ~vm_count:nvms states)

let gen_record =
  let open Gen in
  let at_s = map (fun f -> Float.abs f) (float_bound_inclusive 1e6) in
  oneof
    [
      ( gen_config >>= fun source ->
        gen_config >>= fun target ->
        int_range 1 3 >>= fun npools ->
        list_size (return npools) (list_size (int_bound 4) gen_action)
        >>= fun pools ->
        int_range 0 6 >>= fun nd ->
        list_size (return nd) (int_bound 100) >>= fun cpus ->
        let arr = Array.of_list cpus in
        opt (int_bound 1000) >>= fun seed ->
        int_bound 50 >>= fun switch ->
        at_s >>= fun at ->
        return
          (Record.Switch_begin
             {
               switch;
               at_s = at;
               source;
               target;
               plan = Plan.make pools;
               demand =
                 Demand.of_fn ~vm_count:(Array.length arr) (fun vm -> arr.(vm));
               seed;
             }) );
      ( int_bound 50 >>= fun switch ->
        int_bound 5 >>= fun pool ->
        int_range 1 4 >>= fun attempt ->
        at_s >>= fun at ->
        gen_action >>= fun action ->
        return
          (Record.Action_started { switch; pool; attempt; at_s = at; action })
      );
      ( int_bound 50 >>= fun switch ->
        int_bound 5 >>= fun pool ->
        at_s >>= fun at ->
        gen_action >>= fun action ->
        return (Record.Action_done { switch; pool; at_s = at; action }) );
      ( int_bound 50 >>= fun switch ->
        int_bound 5 >>= fun pool ->
        at_s >>= fun at ->
        gen_action >>= fun action ->
        return (Record.Action_failed { switch; pool; at_s = at; action }) );
      ( int_bound 50 >>= fun switch ->
        int_bound 5 >>= fun pool ->
        at_s >>= fun at ->
        return (Record.Pool_committed { switch; pool; at_s = at }) );
      ( int_bound 50 >>= fun switch ->
        at_s >>= fun at ->
        bool >>= fun aborted ->
        return (Record.Switch_end { switch; at_s = at; aborted }) );
      ( int_bound 100 >>= fun vjob ->
        int_range 1 8 >>= fun vms ->
        at_s >>= fun at ->
        oneof
          [
            return Record.Queued;
            return Record.Admitted;
            map
              (fun s -> Record.Rejected s)
              (small_string ~gen:printable);
          ]
        >>= fun disposition ->
        return (Record.Submission { at_s = at; vjob; vms; disposition }) );
      ( int_bound 3 >>= fun from_level ->
        int_bound 3 >>= fun to_level ->
        at_s >>= fun at ->
        small_string ~gen:printable >>= fun reason ->
        return (Record.Ladder { at_s = at; from_level; to_level; reason }) );
    ]

(* Structural shrinker: failing records minimize (fewer pools and
   actions, smaller ids, zeroed timestamps) instead of dumping the full
   random record. Every candidate stays well-formed for the codec. *)
let shrink_record r =
  let open QCheck.Iter in
  let shrink_int = QCheck.Shrink.int in
  match r with
  | Record.Switch_begin b ->
    (QCheck.Shrink.list ~shrink:QCheck.Shrink.list (Plan.pools b.plan)
    >|= fun pools -> Record.Switch_begin { b with plan = Plan.make pools })
    <+> (shrink_int b.switch >|= fun switch ->
         Record.Switch_begin { b with switch })
    <+> (match b.seed with
        | None -> empty
        | Some _ -> return (Record.Switch_begin { b with seed = None }))
    <+> (if b.at_s = 0. then empty
         else return (Record.Switch_begin { b with at_s = 0. }))
  | Record.Action_started a ->
    (shrink_int a.switch >|= fun switch ->
     Record.Action_started { a with switch })
    <+> (shrink_int a.pool >|= fun pool ->
         Record.Action_started { a with pool })
    <+> (shrink_int a.attempt >|= fun n ->
         Record.Action_started { a with attempt = max 1 n })
    <+> (if a.at_s = 0. then empty
         else return (Record.Action_started { a with at_s = 0. }))
  | Record.Action_done a ->
    (shrink_int a.switch >|= fun switch -> Record.Action_done { a with switch })
    <+> (shrink_int a.pool >|= fun pool -> Record.Action_done { a with pool })
    <+> (if a.at_s = 0. then empty
         else return (Record.Action_done { a with at_s = 0. }))
  | Record.Action_failed a ->
    (shrink_int a.switch >|= fun switch ->
     Record.Action_failed { a with switch })
    <+> (shrink_int a.pool >|= fun pool ->
         Record.Action_failed { a with pool })
    <+> (if a.at_s = 0. then empty
         else return (Record.Action_failed { a with at_s = 0. }))
  | Record.Pool_committed p ->
    (shrink_int p.switch >|= fun switch ->
     Record.Pool_committed { p with switch })
    <+> (shrink_int p.pool >|= fun pool ->
         Record.Pool_committed { p with pool })
    <+> (if p.at_s = 0. then empty
         else return (Record.Pool_committed { p with at_s = 0. }))
  | Record.Switch_end e ->
    (shrink_int e.switch >|= fun switch -> Record.Switch_end { e with switch })
    <+> (if e.aborted then return (Record.Switch_end { e with aborted = false })
         else empty)
    <+> (if e.at_s = 0. then empty
         else return (Record.Switch_end { e with at_s = 0. }))
  | Record.Submission s ->
    (shrink_int s.vjob >|= fun vjob -> Record.Submission { s with vjob })
    <+> (shrink_int s.vms >|= fun vms -> Record.Submission { s with vms })
    <+> (match s.disposition with
        | Record.Queued -> empty
        | Record.Admitted | Record.Rejected _ ->
          return (Record.Submission { s with disposition = Record.Queued }))
    <+> (if s.at_s = 0. then empty
         else return (Record.Submission { s with at_s = 0. }))
  | Record.Ladder l ->
    (shrink_int l.from_level >|= fun from_level ->
     Record.Ladder { l with from_level })
    <+> (shrink_int l.to_level >|= fun to_level ->
         Record.Ladder { l with to_level })
    <+> (if l.reason = "" then empty
         else return (Record.Ladder { l with reason = "" }))
    <+> (if l.at_s = 0. then empty
         else return (Record.Ladder { l with at_s = 0. }))

let arb_record =
  QCheck.make
    ~print:(Format.asprintf "%a" Record.pp)
    ~shrink:shrink_record gen_record

let prop_shrunk_records_still_round_trip =
  QCheck.Test.make ~name:"every shrink candidate still round-trips" ~count:60
    arb_record (fun r ->
      let ok = ref true in
      shrink_record r (fun r' ->
          match Record.read_frame (Record.to_frame r') ~pos:0 with
          | Some (Record.Frame (r'', _)) -> ok := !ok && Record.equal r' r''
          | _ -> ok := false);
      !ok)

let prop_binary_round_trip =
  QCheck.Test.make ~name:"binary codec round-trips any record" ~count:300
    arb_record (fun r ->
      match Record.read_frame (Record.to_frame r) ~pos:0 with
      | Some (Record.Frame (r', _)) -> Record.equal r r'
      | _ -> false)

let prop_sequence_with_torn_suffix =
  QCheck.Test.make
    ~name:"frame sequence + garbage suffix decodes to the exact prefix"
    ~count:100
    QCheck.(
      make
        ~shrink:(Shrink.pair (Shrink.list ~shrink:shrink_record) Shrink.string)
        Gen.(
          pair (list_size (int_range 0 6) gen_record)
            (small_string ~gen:printable)))
    (fun (records, garbage) ->
      let b = Buffer.create 1024 in
      List.iter (Record.write_frame b) records;
      (* prefix the garbage so it can never fake a frame magic *)
      if garbage <> "" then Buffer.add_string b ("X" ^ garbage);
      let path = temp_journal () in
      let oc = open_out_bin path in
      Buffer.output_buffer oc b;
      close_out oc;
      let loaded, dropped = Journal.load path in
      Sys.remove path;
      List.length loaded = List.length records
      && List.for_all2 Record.equal records loaded
      && dropped = (if garbage = "" then 0 else 1))

(* -- replay ------------------------------------------------------------------- *)

let source2 =
  mk_config ~nodes:3 ~vm_count:2
    Configuration.[ Running 0; Running 0 ]

let target2 =
  mk_config ~nodes:3 ~vm_count:2
    Configuration.[ Running 1; Running 1 ]

let mig vm = Action.Migrate { vm; src = 0; dst = 1 }
let plan2 = Plan.make [ [ mig 0; mig 1 ] ]
let demand2 = Demand.uniform ~vm_count:2 40

let begin2 ?(switch = 0) () =
  Record.Switch_begin
    {
      switch;
      at_s = 1.;
      source = source2;
      target = target2;
      plan = plan2;
      demand = demand2;
      seed = None;
    }

let test_replay_empty () =
  check_bool "no begin, no state" true (Recovery.replay [] = None);
  check_bool "stray records alone yield no state" true
    (Recovery.replay
       [ Record.Pool_committed { switch = 0; pool = 0; at_s = 1. } ]
    = None)

let test_replay_mid_switch () =
  let records =
    [
      begin2 ();
      Record.Action_started
        { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 0 };
      Record.Action_done { switch = 0; pool = 0; at_s = 3.; action = mig 0 };
      Record.Action_started
        { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 1 };
    ]
  in
  match Recovery.replay records with
  | None -> Alcotest.fail "expected a switch state"
  | Some st ->
    check_int "switch id" 0 st.Recovery.switch;
    check_bool "not ended" false st.Recovery.ended;
    check_int "one done" 1 (List.length st.Recovery.done_actions);
    check_bool "vm0 done" true
      (List.exists (fun (_, a) -> Action.equal a (mig 0)) st.Recovery.done_actions);
    check_int "one in flight" 1 (List.length st.Recovery.in_flight);
    check_bool "vm1 in flight" true
      (List.exists (fun (_, a) -> Action.equal a (mig 1)) st.Recovery.in_flight);
    check_int "no failures" 0 (List.length st.Recovery.failed_actions);
    (* the journal-projected config has vm0 moved, vm1 untouched *)
    let proj = Recovery.projected_config st in
    check_bool "vm0 projected onto N1" true
      (Configuration.state proj 0 = Configuration.Running 1);
    check_bool "vm1 still on N0" true
      (Configuration.state proj 1 = Configuration.Running 0)

let test_replay_complete_switch () =
  let records =
    [
      begin2 ();
      Record.Action_started
        { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 0 };
      Record.Action_failed { switch = 0; pool = 0; at_s = 3.; action = mig 0 };
      Record.Action_started
        { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 1 };
      Record.Action_done { switch = 0; pool = 0; at_s = 4.; action = mig 1 };
      Record.Pool_committed { switch = 0; pool = 0; at_s = 4. };
      Record.Switch_end { switch = 0; at_s = 5.; aborted = true };
    ]
  in
  match Recovery.replay records with
  | None -> Alcotest.fail "expected a switch state"
  | Some st ->
    check_bool "ended" true st.Recovery.ended;
    check_bool "aborted" true st.Recovery.aborted;
    check_int "failed recorded" 1 (List.length st.Recovery.failed_actions);
    check_int "nothing in flight" 0 (List.length st.Recovery.in_flight);
    Alcotest.(check (list int)) "pool committed" [ 0 ] st.Recovery.committed_pools

let test_replay_last_begin_wins () =
  let records =
    [
      begin2 ();
      Record.Action_done { switch = 0; pool = 0; at_s = 3.; action = mig 0 };
      Record.Switch_end { switch = 0; at_s = 4.; aborted = false };
      begin2 ~switch:1 ();
      Record.Action_done { switch = 1; pool = 0; at_s = 6.; action = mig 1 };
    ]
  in
  (match Recovery.replay records with
  | None -> Alcotest.fail "expected a switch state"
  | Some st ->
    check_int "last switch" 1 st.Recovery.switch;
    check_bool "fresh state: only switch 1's record" true
      (List.for_all
         (fun (_, a) -> Action.equal a (mig 1))
         st.Recovery.done_actions
      && List.length st.Recovery.done_actions = 1));
  check_int "next id past the highest" 2 (Recovery.next_switch_id records);
  check_int "empty journal starts at 0" 0 (Recovery.next_switch_id [])

(* -- reconciliation ----------------------------------------------------------- *)

let state_mid_switch () =
  match
    Recovery.replay
      [
        begin2 ();
        Record.Action_started
          { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 0 };
        Record.Action_done { switch = 0; pool = 0; at_s = 3.; action = mig 0 };
      ]
  with
  | Some st -> st
  | None -> Alcotest.fail "replay lost the switch"

let test_reconcile_pending_and_done () =
  let state = state_mid_switch () in
  (* the observation agrees with the journal: vm0 moved, vm1 not yet *)
  let observed =
    mk_config ~nodes:3 ~vm_count:2
      Configuration.[ Running 1; Running 0 ]
  in
  let r = Recovery.reconcile ~state ~observed () in
  Alcotest.(check (list int)) "vm0 done" [ 0 ] r.Recovery.done_vms;
  Alcotest.(check (list int)) "vm1 pending" [ 1 ] r.Recovery.pending_vms;
  check_bool "no frozen VMs" true (r.Recovery.frozen_vms = []);
  check_bool "clean residue" true (Repair.residue_ok r.Recovery.residue);
  match r.Recovery.plan with
  | None -> Alcotest.fail "clean reconciliation must rebuild a plan"
  | Some p ->
    Alcotest.(check (list int))
      "resume re-runs exactly the unfinished migration" [ 1 ]
      (List.map Action.vm (Plan.actions p))

let test_reconcile_all_done () =
  let state = state_mid_switch () in
  (* both actions' effects are visible: the crash hit after the work *)
  let observed = target2 in
  let r = Recovery.reconcile ~state ~observed () in
  Alcotest.(check (list int)) "both done" [ 0; 1 ] r.Recovery.done_vms;
  check_bool "nothing to re-run" true
    (match r.Recovery.plan with Some p -> Plan.is_empty p | None -> false)

let test_reconcile_divergence_freezes () =
  let state = state_mid_switch () in
  (* vm1 is observed on a node no chain state mentions: diverged *)
  let observed =
    mk_config ~nodes:3 ~vm_count:2
      Configuration.[ Running 1; Running 2 ]
  in
  let r = Recovery.reconcile ~state ~observed () in
  Alcotest.(check (list int)) "vm1 frozen" [ 1 ] r.Recovery.frozen_vms;
  check_bool "divergence is residue" false
    (Repair.residue_ok r.Recovery.residue);
  Alcotest.(check (list int))
    "frozen VM lands in residue.failed_vms" [ 1 ]
    r.Recovery.residue.Repair.failed_vms;
  check_bool "no resume plan on residue" true (r.Recovery.plan = None);
  check_bool "salvaged target pins the frozen VM where observed" true
    (Configuration.state r.Recovery.target 1 = Configuration.Running 2)

let test_reconcile_terminated_is_benign () =
  let state = state_mid_switch () in
  (* vm1 terminated while the controller was down: off-chain, so frozen,
     but a finished vjob is not a failure *)
  let observed =
    mk_config ~nodes:3 ~vm_count:2
      Configuration.[ Running 1; Terminated ]
  in
  let r = Recovery.reconcile ~state ~observed () in
  Alcotest.(check (list int)) "vm1 frozen" [ 1 ] r.Recovery.frozen_vms;
  check_bool "benign: residue stays clean" true
    (Repair.residue_ok r.Recovery.residue);
  check_bool "resume plan exists" true (r.Recovery.plan <> None);
  check_bool "target keeps vm1 terminated" true
    (Configuration.state r.Recovery.target 1 = Configuration.Terminated)

let test_reconcile_terminated_by_plan_is_done () =
  (* when the plan itself stops the VM, observing it Terminated is
     plain progress — Done, not frozen *)
  let state =
    match
      Recovery.replay
        [
          Record.Switch_begin
            {
              switch = 0;
              at_s = 1.;
              source = source2;
              target =
                mk_config ~nodes:3 ~vm_count:2
                  Configuration.[ Running 1; Terminated ];
              plan =
                Plan.make [ [ mig 0; Action.Stop { vm = 1; host = 0 } ] ];
              demand = demand2;
              seed = None;
            };
        ]
    with
    | Some st -> st
    | None -> Alcotest.fail "replay lost the switch"
  in
  let observed =
    mk_config ~nodes:3 ~vm_count:2 Configuration.[ Running 0; Terminated ]
  in
  let r = Recovery.reconcile ~state ~observed () in
  Alcotest.(check (list int)) "stopped VM is done" [ 1 ] r.Recovery.done_vms;
  check_bool "nothing frozen" true (r.Recovery.frozen_vms = []);
  check_bool "clean residue" true (Repair.residue_ok r.Recovery.residue);
  (match r.Recovery.plan with
  | None -> Alcotest.fail "clean reconciliation must rebuild a plan"
  | Some p ->
    Alcotest.(check (list int))
      "only the unfinished migration re-runs" [ 0 ]
      (List.map Action.vm (Plan.actions p)))

let test_reconcile_lost_node_is_residue () =
  let state = state_mid_switch () in
  (* the target still needs node 1 for vm1, but node 1 crashed while
     the controller was down *)
  let observed =
    mk_config ~crashed:[ 1 ] ~nodes:3 ~vm_count:2
      Configuration.[ Running 1; Running 0 ]
  in
  let r = Recovery.reconcile ~state ~observed () in
  Alcotest.(check (list int))
    "crashed node lands in residue.lost_nodes" [ 1 ]
    r.Recovery.residue.Repair.lost_nodes;
  check_bool "lost node is residue" false
    (Repair.residue_ok r.Recovery.residue);
  check_bool "no resume plan over a lost node" true (r.Recovery.plan = None)

let test_reconcile_empty_plan_resume () =
  (* a switch that had nothing to do: begin record only, empty plan,
     target = source; resume must be a clean no-op *)
  let state =
    match
      Recovery.replay
        [
          Record.Switch_begin
            {
              switch = 0;
              at_s = 1.;
              source = source2;
              target = source2;
              plan = Plan.empty;
              demand = demand2;
              seed = None;
            };
        ]
    with
    | Some st -> st
    | None -> Alcotest.fail "replay lost the switch"
  in
  let r = Recovery.reconcile ~state ~observed:source2 () in
  Alcotest.(check (list int)) "every VM already done" [ 0; 1 ] r.Recovery.done_vms;
  check_bool "nothing pending" true (r.Recovery.pending_vms = []);
  check_bool "nothing frozen" true (r.Recovery.frozen_vms = []);
  check_bool "clean residue" true (Repair.residue_ok r.Recovery.residue);
  check_bool "resume plan is empty" true
    (match r.Recovery.plan with Some p -> Plan.is_empty p | None -> false)

let test_reconcile_journaled_failure_is_residue () =
  let state =
    match
      Recovery.replay
        [
          begin2 ();
          Record.Action_started
            { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 0 };
          Record.Action_failed
            { switch = 0; pool = 0; at_s = 3.; action = mig 0 };
        ]
    with
    | Some st -> st
    | None -> Alcotest.fail "replay lost the switch"
  in
  let r = Recovery.reconcile ~state ~observed:source2 () in
  check_bool "journaled failure reaches the residue" true
    (List.mem 0 r.Recovery.residue.Repair.failed_vms)

let test_reconcile_rejects_shape_mismatch () =
  let state = state_mid_switch () in
  let observed = mk_config ~nodes:3 ~vm_count:1 Configuration.[ Running 0 ] in
  check_bool "vm count mismatch" true
    (match Recovery.reconcile ~state ~observed () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* -- run ---------------------------------------------------------------------- *)

let () =
  Alcotest.run "entropy_journal"
    [
      ( "record",
        [
          Alcotest.test_case "round trip" `Quick test_record_round_trip;
          Alcotest.test_case "accessors" `Quick test_record_accessors;
          Alcotest.test_case "corruption detected" `Quick
            test_checksum_detects_corruption;
          Alcotest.test_case "checksum reference" `Quick
            test_checksum_reference;
        ] );
      ( "backends",
        [
          Alcotest.test_case "mem" `Quick test_mem_backend;
          Alcotest.test_case "of_records" `Quick test_of_records;
          Alcotest.test_case "file" `Quick test_file_backend;
          Alcotest.test_case "torn tail" `Quick test_torn_tail;
        ] );
      ( "binary",
        [
          Alcotest.test_case "round trip" `Quick test_binary_round_trip;
          Alcotest.test_case "crc corruption at every offset" `Quick
            test_binary_crc_every_offset;
          Alcotest.test_case "torn tail cuts" `Quick test_binary_torn_tail_cuts;
          Alcotest.test_case "unknown record tag skipped" `Quick
            test_binary_unknown_tag_skipped;
          Alcotest.test_case "reopen after torn tail" `Quick
            test_reopen_after_torn_tail;
          Alcotest.test_case "legacy json auto-detect" `Quick
            test_json_auto_detect;
          Alcotest.test_case "group commit flush rules" `Quick
            test_group_commit_flush_rules;
          Alcotest.test_case "binary/json parity" `Quick
            test_binary_json_parity;
          QCheck_alcotest.to_alcotest prop_binary_round_trip;
          QCheck_alcotest.to_alcotest prop_sequence_with_torn_suffix;
          QCheck_alcotest.to_alcotest prop_shrunk_records_still_round_trip;
        ] );
      ( "replay",
        [
          Alcotest.test_case "empty" `Quick test_replay_empty;
          Alcotest.test_case "mid switch" `Quick test_replay_mid_switch;
          Alcotest.test_case "complete switch" `Quick
            test_replay_complete_switch;
          Alcotest.test_case "last begin wins" `Quick
            test_replay_last_begin_wins;
        ] );
      ( "reconcile",
        [
          Alcotest.test_case "pending and done" `Quick
            test_reconcile_pending_and_done;
          Alcotest.test_case "all done" `Quick test_reconcile_all_done;
          Alcotest.test_case "divergence freezes" `Quick
            test_reconcile_divergence_freezes;
          Alcotest.test_case "terminated is benign" `Quick
            test_reconcile_terminated_is_benign;
          Alcotest.test_case "terminated by plan is done" `Quick
            test_reconcile_terminated_by_plan_is_done;
          Alcotest.test_case "lost node is residue" `Quick
            test_reconcile_lost_node_is_residue;
          Alcotest.test_case "empty plan resume" `Quick
            test_reconcile_empty_plan_resume;
          Alcotest.test_case "journaled failure is residue" `Quick
            test_reconcile_journaled_failure_is_residue;
          Alcotest.test_case "shape mismatch rejected" `Quick
            test_reconcile_rejects_shape_mismatch;
        ] );
    ]
