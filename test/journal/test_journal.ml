(* Tests for the write-ahead switch journal: record codec round trips,
   checksum and torn-tail handling, the two backends, journal replay,
   and reconciliation of a journaled switch against an observation. *)

open Entropy_core
module Record = Entropy_journal.Record
module Journal = Entropy_journal.Journal
module Recovery = Entropy_journal.Recovery
module Repair = Entropy_fault.Repair

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let testbed_nodes n =
  Array.init n (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))

let mk_config ?(crashed = []) ~nodes ~vm_count states =
  let node_arr =
    Array.map
      (fun n -> if List.mem (Node.id n) crashed then Node.crashed n else n)
      (testbed_nodes nodes)
  in
  let vms =
    Array.init vm_count (fun i ->
        Vm.make ~id:i ~name:(Printf.sprintf "vm%d" i) ~memory_mb:512)
  in
  Configuration.with_states
    (Configuration.make ~nodes:node_arr ~vms)
    (Array.of_list states)

(* a switch over every vm_state and a multi-pool plan with several
   action shapes — the codec must survive all of them *)
let rich_begin =
  let source =
    mk_config ~crashed:[ 2 ] ~nodes:3 ~vm_count:5
      Configuration.
        [ Waiting; Running 0; Sleeping 1; Sleeping_ram 0; Terminated ]
  in
  let target =
    mk_config ~crashed:[ 2 ] ~nodes:3 ~vm_count:5
      Configuration.
        [ Running 1; Running 1; Running 0; Running 0; Terminated ]
  in
  let plan =
    Plan.make
      [
        [
          Action.Run { vm = 0; dst = 1 };
          Action.Migrate { vm = 1; src = 0; dst = 1 };
        ];
        [
          Action.Resume { vm = 2; src = 1; dst = 0 };
          Action.Resume_ram { vm = 3; host = 0 };
        ];
      ]
  in
  Record.Switch_begin
    {
      switch = 3;
      at_s = 12.5;
      source;
      target;
      plan;
      demand = Demand.of_fn ~vm_count:5 (fun vm -> 10 * vm);
      seed = Some 42;
    }

let all_records =
  [
    rich_begin;
    Record.Action_started
      {
        switch = 3;
        pool = 0;
        attempt = 2;
        at_s = 13.;
        action = Action.Migrate { vm = 1; src = 0; dst = 1 };
      };
    Record.Action_done
      {
        switch = 3;
        pool = 0;
        at_s = 14.5;
        action = Action.Migrate { vm = 1; src = 0; dst = 1 };
      };
    Record.Action_failed
      {
        switch = 3;
        pool = 0;
        at_s = 15.;
        action = Action.Run { vm = 0; dst = 1 };
      };
    Record.Pool_committed { switch = 3; pool = 0; at_s = 15.5 };
    Record.Switch_end { switch = 3; at_s = 16.; aborted = true };
  ]

(* -- record codec ------------------------------------------------------------- *)

let test_record_round_trip () =
  List.iter
    (fun r ->
      let line = Record.to_line r in
      check_bool "line has no newline" false (String.contains line '\n');
      check_bool
        (Format.asprintf "round trip: %a" Record.pp r)
        true
        (Record.equal r (Record.of_line line)))
    all_records

let test_record_accessors () =
  List.iter
    (fun r -> check_int "switch id" 3 (Record.switch r))
    all_records;
  Alcotest.(check (float 1e-9)) "begin time" 12.5 (Record.at_s rich_begin)

let test_checksum_detects_corruption () =
  let line = Record.to_line rich_begin in
  (* flip one payload character; the crc no longer matches *)
  let i = String.length line - 3 in
  let corrupt =
    String.mapi
      (fun j c -> if j = i then (if c = 'x' then 'y' else 'x') else c)
      line
  in
  check_bool "of_line rejects a flipped byte" true
    (match Record.of_line corrupt with
    | exception Record.Corrupt _ -> true
    | _ -> false);
  check_bool "of_line rejects garbage" true
    (match Record.of_line "not json at all" with
    | exception Record.Corrupt _ -> true
    | _ -> false)

let test_checksum_reference () =
  (* FNV-1a 32-bit reference values — pins the on-disk format *)
  check_int "fnv-1a of empty" 0x811c9dc5 (Record.checksum "");
  check_int "fnv-1a of 'a'" 0xe40c292c (Record.checksum "a")

(* -- backends ----------------------------------------------------------------- *)

let test_mem_backend () =
  let j = Journal.mem () in
  check_bool "no path" true (Journal.path j = None);
  check_int "empty" 0 (Journal.length j);
  List.iter (Journal.append j) all_records;
  check_int "length counts appends" (List.length all_records)
    (Journal.length j);
  check_bool "records round trip in order" true
    (List.for_all2 Record.equal all_records (Journal.records j));
  Journal.close j;
  check_bool "close is a no-op" true
    (List.length (Journal.records j) = List.length all_records)

let test_of_records () =
  let j = Journal.of_records all_records in
  check_int "pre-populated" (List.length all_records) (Journal.length j);
  check_bool "same records" true
    (List.for_all2 Record.equal all_records (Journal.records j))

let temp_journal () =
  let path = Filename.temp_file "entropy_journal" ".wal" in
  Sys.remove path;
  path

let test_file_backend () =
  let path = temp_journal () in
  let j = Journal.open_file path in
  check_string "path" path (Option.get (Journal.path j));
  List.iter (Journal.append j) all_records;
  (* records on an open file journal reflect the flushed file *)
  check_bool "records while open" true
    (List.for_all2 Record.equal all_records (Journal.records j));
  Journal.close j;
  Journal.close j;
  let loaded, dropped = Journal.load path in
  check_int "no torn lines" 0 dropped;
  check_bool "load round trip" true
    (List.for_all2 Record.equal all_records loaded);
  (* reopening appends after the existing records *)
  let j2 = Journal.open_file path in
  check_int "length counts existing lines" (List.length all_records)
    (Journal.length j2);
  Journal.append j2 (Record.Switch_end { switch = 4; at_s = 20.; aborted = false });
  Journal.close j2;
  check_int "appended after reopen"
    (List.length all_records + 1)
    (List.length (fst (Journal.load path)));
  Sys.remove path

let test_torn_tail () =
  let path = temp_journal () in
  let good = List.map Record.to_line all_records in
  let oc = open_out path in
  List.iteri
    (fun i line ->
      (* corrupt the third line; everything after it must be dropped,
         even the later well-formed lines *)
      if i = 2 then output_string oc "{\"crc\":1,\"rec\":\"torn"
      else output_string oc line;
      output_char oc '\n')
    good;
  close_out oc;
  let loaded, dropped = Journal.load path in
  check_int "valid prefix ends at the torn line" 2 (List.length loaded);
  check_int "torn + distrusted tail counted"
    (List.length all_records - 2)
    dropped;
  Sys.remove path

(* -- replay ------------------------------------------------------------------- *)

let source2 =
  mk_config ~nodes:3 ~vm_count:2
    Configuration.[ Running 0; Running 0 ]

let target2 =
  mk_config ~nodes:3 ~vm_count:2
    Configuration.[ Running 1; Running 1 ]

let mig vm = Action.Migrate { vm; src = 0; dst = 1 }
let plan2 = Plan.make [ [ mig 0; mig 1 ] ]
let demand2 = Demand.uniform ~vm_count:2 40

let begin2 ?(switch = 0) () =
  Record.Switch_begin
    {
      switch;
      at_s = 1.;
      source = source2;
      target = target2;
      plan = plan2;
      demand = demand2;
      seed = None;
    }

let test_replay_empty () =
  check_bool "no begin, no state" true (Recovery.replay [] = None);
  check_bool "stray records alone yield no state" true
    (Recovery.replay
       [ Record.Pool_committed { switch = 0; pool = 0; at_s = 1. } ]
    = None)

let test_replay_mid_switch () =
  let records =
    [
      begin2 ();
      Record.Action_started
        { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 0 };
      Record.Action_done { switch = 0; pool = 0; at_s = 3.; action = mig 0 };
      Record.Action_started
        { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 1 };
    ]
  in
  match Recovery.replay records with
  | None -> Alcotest.fail "expected a switch state"
  | Some st ->
    check_int "switch id" 0 st.Recovery.switch;
    check_bool "not ended" false st.Recovery.ended;
    check_int "one done" 1 (List.length st.Recovery.done_actions);
    check_bool "vm0 done" true
      (List.exists (fun (_, a) -> Action.equal a (mig 0)) st.Recovery.done_actions);
    check_int "one in flight" 1 (List.length st.Recovery.in_flight);
    check_bool "vm1 in flight" true
      (List.exists (fun (_, a) -> Action.equal a (mig 1)) st.Recovery.in_flight);
    check_int "no failures" 0 (List.length st.Recovery.failed_actions);
    (* the journal-projected config has vm0 moved, vm1 untouched *)
    let proj = Recovery.projected_config st in
    check_bool "vm0 projected onto N1" true
      (Configuration.state proj 0 = Configuration.Running 1);
    check_bool "vm1 still on N0" true
      (Configuration.state proj 1 = Configuration.Running 0)

let test_replay_complete_switch () =
  let records =
    [
      begin2 ();
      Record.Action_started
        { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 0 };
      Record.Action_failed { switch = 0; pool = 0; at_s = 3.; action = mig 0 };
      Record.Action_started
        { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 1 };
      Record.Action_done { switch = 0; pool = 0; at_s = 4.; action = mig 1 };
      Record.Pool_committed { switch = 0; pool = 0; at_s = 4. };
      Record.Switch_end { switch = 0; at_s = 5.; aborted = true };
    ]
  in
  match Recovery.replay records with
  | None -> Alcotest.fail "expected a switch state"
  | Some st ->
    check_bool "ended" true st.Recovery.ended;
    check_bool "aborted" true st.Recovery.aborted;
    check_int "failed recorded" 1 (List.length st.Recovery.failed_actions);
    check_int "nothing in flight" 0 (List.length st.Recovery.in_flight);
    Alcotest.(check (list int)) "pool committed" [ 0 ] st.Recovery.committed_pools

let test_replay_last_begin_wins () =
  let records =
    [
      begin2 ();
      Record.Action_done { switch = 0; pool = 0; at_s = 3.; action = mig 0 };
      Record.Switch_end { switch = 0; at_s = 4.; aborted = false };
      begin2 ~switch:1 ();
      Record.Action_done { switch = 1; pool = 0; at_s = 6.; action = mig 1 };
    ]
  in
  (match Recovery.replay records with
  | None -> Alcotest.fail "expected a switch state"
  | Some st ->
    check_int "last switch" 1 st.Recovery.switch;
    check_bool "fresh state: only switch 1's record" true
      (List.for_all
         (fun (_, a) -> Action.equal a (mig 1))
         st.Recovery.done_actions
      && List.length st.Recovery.done_actions = 1));
  check_int "next id past the highest" 2 (Recovery.next_switch_id records);
  check_int "empty journal starts at 0" 0 (Recovery.next_switch_id [])

(* -- reconciliation ----------------------------------------------------------- *)

let state_mid_switch () =
  match
    Recovery.replay
      [
        begin2 ();
        Record.Action_started
          { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 0 };
        Record.Action_done { switch = 0; pool = 0; at_s = 3.; action = mig 0 };
      ]
  with
  | Some st -> st
  | None -> Alcotest.fail "replay lost the switch"

let test_reconcile_pending_and_done () =
  let state = state_mid_switch () in
  (* the observation agrees with the journal: vm0 moved, vm1 not yet *)
  let observed =
    mk_config ~nodes:3 ~vm_count:2
      Configuration.[ Running 1; Running 0 ]
  in
  let r = Recovery.reconcile ~state ~observed () in
  Alcotest.(check (list int)) "vm0 done" [ 0 ] r.Recovery.done_vms;
  Alcotest.(check (list int)) "vm1 pending" [ 1 ] r.Recovery.pending_vms;
  check_bool "no frozen VMs" true (r.Recovery.frozen_vms = []);
  check_bool "clean residue" true (Repair.residue_ok r.Recovery.residue);
  match r.Recovery.plan with
  | None -> Alcotest.fail "clean reconciliation must rebuild a plan"
  | Some p ->
    Alcotest.(check (list int))
      "resume re-runs exactly the unfinished migration" [ 1 ]
      (List.map Action.vm (Plan.actions p))

let test_reconcile_all_done () =
  let state = state_mid_switch () in
  (* both actions' effects are visible: the crash hit after the work *)
  let observed = target2 in
  let r = Recovery.reconcile ~state ~observed () in
  Alcotest.(check (list int)) "both done" [ 0; 1 ] r.Recovery.done_vms;
  check_bool "nothing to re-run" true
    (match r.Recovery.plan with Some p -> Plan.is_empty p | None -> false)

let test_reconcile_divergence_freezes () =
  let state = state_mid_switch () in
  (* vm1 is observed on a node no chain state mentions: diverged *)
  let observed =
    mk_config ~nodes:3 ~vm_count:2
      Configuration.[ Running 1; Running 2 ]
  in
  let r = Recovery.reconcile ~state ~observed () in
  Alcotest.(check (list int)) "vm1 frozen" [ 1 ] r.Recovery.frozen_vms;
  check_bool "divergence is residue" false
    (Repair.residue_ok r.Recovery.residue);
  Alcotest.(check (list int))
    "frozen VM lands in residue.failed_vms" [ 1 ]
    r.Recovery.residue.Repair.failed_vms;
  check_bool "no resume plan on residue" true (r.Recovery.plan = None);
  check_bool "salvaged target pins the frozen VM where observed" true
    (Configuration.state r.Recovery.target 1 = Configuration.Running 2)

let test_reconcile_terminated_is_benign () =
  let state = state_mid_switch () in
  (* vm1 terminated while the controller was down: off-chain, so frozen,
     but a finished vjob is not a failure *)
  let observed =
    mk_config ~nodes:3 ~vm_count:2
      Configuration.[ Running 1; Terminated ]
  in
  let r = Recovery.reconcile ~state ~observed () in
  Alcotest.(check (list int)) "vm1 frozen" [ 1 ] r.Recovery.frozen_vms;
  check_bool "benign: residue stays clean" true
    (Repair.residue_ok r.Recovery.residue);
  check_bool "resume plan exists" true (r.Recovery.plan <> None);
  check_bool "target keeps vm1 terminated" true
    (Configuration.state r.Recovery.target 1 = Configuration.Terminated)

let test_reconcile_journaled_failure_is_residue () =
  let state =
    match
      Recovery.replay
        [
          begin2 ();
          Record.Action_started
            { switch = 0; pool = 0; attempt = 1; at_s = 2.; action = mig 0 };
          Record.Action_failed
            { switch = 0; pool = 0; at_s = 3.; action = mig 0 };
        ]
    with
    | Some st -> st
    | None -> Alcotest.fail "replay lost the switch"
  in
  let r = Recovery.reconcile ~state ~observed:source2 () in
  check_bool "journaled failure reaches the residue" true
    (List.mem 0 r.Recovery.residue.Repair.failed_vms)

let test_reconcile_rejects_shape_mismatch () =
  let state = state_mid_switch () in
  let observed = mk_config ~nodes:3 ~vm_count:1 Configuration.[ Running 0 ] in
  check_bool "vm count mismatch" true
    (match Recovery.reconcile ~state ~observed () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* -- run ---------------------------------------------------------------------- *)

let () =
  Alcotest.run "entropy_journal"
    [
      ( "record",
        [
          Alcotest.test_case "round trip" `Quick test_record_round_trip;
          Alcotest.test_case "accessors" `Quick test_record_accessors;
          Alcotest.test_case "corruption detected" `Quick
            test_checksum_detects_corruption;
          Alcotest.test_case "checksum reference" `Quick
            test_checksum_reference;
        ] );
      ( "backends",
        [
          Alcotest.test_case "mem" `Quick test_mem_backend;
          Alcotest.test_case "of_records" `Quick test_of_records;
          Alcotest.test_case "file" `Quick test_file_backend;
          Alcotest.test_case "torn tail" `Quick test_torn_tail;
        ] );
      ( "replay",
        [
          Alcotest.test_case "empty" `Quick test_replay_empty;
          Alcotest.test_case "mid switch" `Quick test_replay_mid_switch;
          Alcotest.test_case "complete switch" `Quick
            test_replay_complete_switch;
          Alcotest.test_case "last begin wins" `Quick
            test_replay_last_begin_wins;
        ] );
      ( "reconcile",
        [
          Alcotest.test_case "pending and done" `Quick
            test_reconcile_pending_and_done;
          Alcotest.test_case "all done" `Quick test_reconcile_all_done;
          Alcotest.test_case "divergence freezes" `Quick
            test_reconcile_divergence_freezes;
          Alcotest.test_case "terminated is benign" `Quick
            test_reconcile_terminated_is_benign;
          Alcotest.test_case "journaled failure is residue" `Quick
            test_reconcile_journaled_failure_is_residue;
          Alcotest.test_case "shape mismatch rejected" `Quick
            test_reconcile_rejects_shape_mismatch;
        ] );
    ]
