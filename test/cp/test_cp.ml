(* Tests for the finite-domain constraint solver (lib/cp). *)

open Fdcp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

(* ---------------------------------------------------------------- Dom -- *)

let test_dom_interval () =
  let d = Dom.interval 3 7 in
  check_int "size" 5 (Dom.size d);
  check_int "lo" 3 (Dom.lo d);
  check_int "hi" 7 (Dom.hi d);
  check_bool "mem 5" true (Dom.mem 5 d);
  check_bool "mem 8" false (Dom.mem 8 d);
  check_bool "mem 2" false (Dom.mem 2 d)

let test_dom_empty () =
  check_bool "empty" true (Dom.is_empty (Dom.interval 4 2));
  check_bool "empty mem" false (Dom.mem 0 Dom.empty);
  check_int "empty size" 0 (Dom.size Dom.empty)

let test_dom_singleton () =
  let d = Dom.singleton 42 in
  check_bool "bound" true (Dom.is_bound d);
  check_int "value" 42 (Dom.value_exn d)

let test_dom_remove_bounds () =
  let d = Dom.interval 0 4 in
  let d = Dom.remove 0 d in
  check_int "lo after" 1 (Dom.lo d);
  let d = Dom.remove 4 d in
  check_int "hi after" 3 (Dom.hi d);
  check_int "size" 3 (Dom.size d);
  check_list "values" [ 1; 2; 3 ] (Dom.to_list d)

let test_dom_remove_middle () =
  let d = Dom.interval 0 4 in
  let d = Dom.remove 2 d in
  check_int "size" 4 (Dom.size d);
  check_bool "mem 2" false (Dom.mem 2 d);
  check_list "values" [ 0; 1; 3; 4 ] (Dom.to_list d);
  (* removing the new bounds re-normalizes *)
  let d = Dom.remove 1 d in
  let d = Dom.remove 0 d in
  check_int "lo" 3 (Dom.lo d);
  check_list "values" [ 3; 4 ] (Dom.to_list d)

let test_dom_remove_absent () =
  let d = Dom.interval 0 4 in
  let d' = Dom.remove 9 d in
  check_int "unchanged" (Dom.size d) (Dom.size d')

let test_dom_remove_below_above () =
  let d = Dom.interval 0 9 in
  let d = Dom.remove_below 3 d in
  let d = Dom.remove_above 6 d in
  check_list "values" [ 3; 4; 5; 6 ] (Dom.to_list d);
  let d = Dom.remove 4 d in
  let d = Dom.remove_below 4 d in
  check_list "values2" [ 5; 6 ] (Dom.to_list d);
  check_bool "empty" true (Dom.is_empty (Dom.remove_below 7 d))

let test_dom_of_list () =
  let d = Dom.of_list [ 5; 1; 3; 3; 1 ] in
  check_int "size" 3 (Dom.size d);
  check_list "values" [ 1; 3; 5 ] (Dom.to_list d);
  check_bool "mem 2" false (Dom.mem 2 d);
  check_bool "mem 3" true (Dom.mem 3 d)

let test_dom_next_prev () =
  let d = Dom.of_list [ 1; 4; 9 ] in
  Alcotest.(check (option int)) "next 2" (Some 4) (Dom.next_value 2 d);
  Alcotest.(check (option int)) "next 4" (Some 4) (Dom.next_value 4 d);
  Alcotest.(check (option int)) "next 10" None (Dom.next_value 10 d);
  Alcotest.(check (option int)) "prev 8" (Some 4) (Dom.prev_value 8 d);
  Alcotest.(check (option int)) "prev 0" None (Dom.prev_value 0 d)

let test_dom_wide_interval () =
  (* wider than max_enumerated_width: interior removal is a no-op *)
  let d = Dom.interval 0 1_000_000 in
  check_bool "not enumerable" false (Dom.enumerable d);
  let d' = Dom.remove 500 d in
  check_bool "interior noop" true (Dom.mem 500 d');
  let d' = Dom.remove_below 100 d in
  check_int "lo exact" 100 (Dom.lo d');
  let d' = Dom.remove 0 d in
  check_int "bound removal exact" 1 (Dom.lo d')

let test_dom_multiword () =
  (* spans several 62-bit words, with holes punched across word seams *)
  let d = Dom.interval 0 200 in
  let d =
    List.fold_left
      (fun d v -> Dom.remove v d)
      d
      [ 61; 62; 63; 124; 125; 0; 200 ]
  in
  check_int "size" 194 (Dom.size d);
  check_int "lo" 1 (Dom.lo d);
  check_int "hi" 199 (Dom.hi d);
  check_bool "62 gone" false (Dom.mem 62 d);
  check_bool "64 kept" true (Dom.mem 64 d);
  Alcotest.(check (option int)) "next across seam" (Some 64) (Dom.next_value 61 d);
  Alcotest.(check (option int)) "prev across seam" (Some 123) (Dom.prev_value 125 d);
  let d = Dom.remove_below 62 d in
  check_int "lo snaps past hole" 64 (Dom.lo d);
  let d = Dom.remove_above 124 d in
  check_int "hi snaps past hole" 123 (Dom.hi d);
  check_int "final size" 60 (Dom.size d);
  check_list "round trip" (List.init 60 (fun i -> i + 64)) (Dom.to_list d)

let test_dom_keep_only () =
  let d = Dom.interval 0 9 in
  check_int "kept" 4 (Dom.value_exn (Dom.keep_only 4 d));
  check_bool "gone" true (Dom.is_empty (Dom.keep_only 12 d))

(* qcheck: model-based domain operations against a sorted-list model.
   Widths up to 300 exercise the multi-word bitset paths (62-bit words);
   next_value/prev_value are checked at every op value as query point. *)
let dom_ops_agree =
  QCheck.Test.make ~name:"dom operations agree with set model" ~count:500
    QCheck.(
      pair (int_range 0 300)
        (small_list (pair (int_range 0 3) (int_range (-5) 320))))
    (fun (width, ops) ->
      let dom = ref (Dom.interval 0 width) in
      let model = ref (List.init (width + 1) Fun.id) in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
            dom := Dom.remove v !dom;
            model := List.filter (fun x -> x <> v) !model
          | 1 ->
            dom := Dom.remove_below v !dom;
            model := List.filter (fun x -> x >= v) !model
          | 2 ->
            dom := Dom.remove_above v !dom;
            model := List.filter (fun x -> x <= v) !model
          | _ -> ())
        ops;
      let values = if Dom.is_empty !dom then [] else Dom.to_list !dom in
      let next_agree q =
        Dom.next_value q !dom = List.find_opt (fun x -> x >= q) !model
      in
      let prev_agree q =
        Dom.prev_value q !dom
        = List.fold_left
            (fun acc x -> if x <= q then Some x else acc)
            None !model
      in
      let queries = (-5) :: 0 :: width :: List.map snd ops in
      values = !model
      && List.for_all next_agree queries
      && List.for_all prev_agree queries)

(* -------------------------------------------------------------- Store -- *)

let test_store_trail () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:9 in
  let m = Store.mark s in
  Store.remove_above s x 5;
  Store.remove s x 2;
  check_int "hi" 5 (Var.hi x);
  check_bool "2 gone" false (Var.mem 2 x);
  Store.undo_to s m;
  check_int "hi restored" 9 (Var.hi x);
  check_bool "2 back" true (Var.mem 2 x)

let test_store_wipeout () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:3 in
  Alcotest.check_raises "wipeout raises"
    (Store.Inconsistent "x: domain wiped out") (fun () ->
      let x = { x with Var.name = "x" } in
      ignore x;
      Store.remove_below s x 10)
  |> ignore

let test_store_instantiate () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:9 in
  Store.instantiate s x 4;
  check_bool "bound" true (Var.is_bound x);
  check_int "value" 4 (Var.value_exn x)

let test_store_nested_marks () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:9 in
  let y = Store.new_var s ~lo:0 ~hi:9 in
  let m1 = Store.mark s in
  Store.remove_above s x 5;
  let m2 = Store.mark s in
  Store.instantiate s y 3;
  Store.undo_to s m2;
  check_bool "y unbound again" false (Var.is_bound y);
  check_int "x still pruned" 5 (Var.hi x);
  Store.undo_to s m1;
  check_int "x restored" 9 (Var.hi x)

(* -------------------------------------------------------------- Arith -- *)

let test_arith_le () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:9 in
  let y = Store.new_var s ~lo:0 ~hi:4 in
  Arith.le s x y;
  Store.propagate s;
  check_int "x hi" 4 (Var.hi x);
  Store.remove_below s x 2;
  Store.propagate s;
  check_int "y lo" 2 (Var.lo y)

let test_arith_eq_offset () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:9 in
  let y = Store.new_var s ~lo:0 ~hi:9 in
  Arith.eq_offset s x y 2;
  (* x = y + 2 *)
  Store.propagate s;
  check_int "x lo" 2 (Var.lo x);
  check_int "y hi" 7 (Var.hi y);
  Store.instantiate s y 5;
  Store.propagate s;
  check_int "x" 7 (Var.value_exn x)

let test_arith_eq_holes () =
  let s = Store.create () in
  let x = Store.new_var_of_values s [ 1; 3; 5 ] in
  let y = Store.new_var_of_values s [ 3; 4; 5 ] in
  Arith.eq s x y;
  Store.propagate s;
  check_list "x" [ 3; 5 ] (Dom.to_list (Var.dom x));
  check_list "y" [ 3; 5 ] (Dom.to_list (Var.dom y))

let test_arith_neq () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:3 in
  let y = Store.new_var s ~lo:1 ~hi:1 in
  Arith.neq s x y;
  Store.propagate s;
  check_bool "1 removed" false (Var.mem 1 x)

(* ------------------------------------------------------------- Linear -- *)

let test_linear_le () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:9 in
  let y = Store.new_var s ~lo:0 ~hi:9 in
  Linear.sum_le s [ (2, x); (3, y) ] 12;
  Store.propagate s;
  check_int "x hi" 6 (Var.hi x);
  check_int "y hi" 4 (Var.hi y);
  Store.remove_below s y 3;
  Store.propagate s;
  check_int "x hi tightened" 1 (Var.hi x)

let test_linear_le_negative_coef () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:9 in
  let y = Store.new_var s ~lo:0 ~hi:9 in
  (* x - y <= -3  i.e.  y >= x + 3 *)
  Linear.sum_le s [ (1, x); (-1, y) ] (-3);
  Store.propagate s;
  check_int "y lo" 3 (Var.lo y);
  check_int "x hi" 6 (Var.hi x)

let test_linear_eq () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:9 in
  let y = Store.new_var s ~lo:0 ~hi:9 in
  Linear.sum_eq s [ (1, x); (1, y) ] 9;
  Store.instantiate s x 4;
  Store.propagate s;
  check_int "y" 5 (Var.value_exn y)

let test_linear_infeasible () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:5 ~hi:9 in
  Linear.sum_le s [ (1, x) ] 3;
  check_bool "raises" true
    (try
       Store.propagate s;
       false
     with Store.Inconsistent _ -> true)

let test_linear_sum_var () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:1 ~hi:3 in
  let y = Store.new_var s ~lo:2 ~hi:5 in
  let total = Store.new_var s ~lo:0 ~hi:100 in
  Linear.sum_var s [ (1, x); (1, y) ] total;
  Store.propagate s;
  check_int "total lo" 3 (Var.lo total);
  check_int "total hi" 8 (Var.hi total);
  Store.instantiate s x 3;
  Store.instantiate s y 5;
  Store.propagate s;
  check_int "total" 8 (Var.value_exn total)

(* ------------------------------------------------------------ Element -- *)

let test_element_forward () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:3 in
  let y = Store.new_var s ~lo:0 ~hi:100 in
  Element.post s x [| 10; 20; 30; 40 |] y;
  Store.propagate s;
  check_int "y lo" 10 (Var.lo y);
  check_int "y hi" 40 (Var.hi y);
  Store.instantiate s x 2;
  Store.propagate s;
  check_int "y" 30 (Var.value_exn y)

let test_element_backward () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:3 in
  let y = Store.new_var s ~lo:0 ~hi:100 in
  Element.post s x [| 10; 20; 30; 40 |] y;
  Store.remove_above s y 25;
  Store.propagate s;
  check_list "x pruned" [ 0; 1 ] (Dom.to_list (Var.dom x))

let test_element_dup_values () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:3 in
  let y = Store.new_var_of_values s [ 7; 9 ] in
  Element.post s x [| 7; 9; 7; 8 |] y;
  Store.propagate s;
  check_list "x keeps duplicate images" [ 0; 1; 2 ] (Dom.to_list (Var.dom x));
  Store.remove s y 9;
  Store.propagate s;
  check_list "x on 7s" [ 0; 2 ] (Dom.to_list (Var.dom x))

let test_element_index_out_of_range () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:(-3) ~hi:10 in
  let y = Store.new_var s ~lo:0 ~hi:100 in
  Element.post s x [| 1; 2 |] y;
  Store.propagate s;
  check_int "x lo" 0 (Var.lo x);
  check_int "x hi" 1 (Var.hi x)

(* --------------------------------------------------------------- Pack -- *)

let test_pack_prunes_full_bin () =
  let s = Store.create () in
  let a = Store.new_var s ~lo:0 ~hi:1 in
  let b = Store.new_var s ~lo:0 ~hi:1 in
  Pack.post s
    ~items:[| Pack.item a 6; Pack.item b 6 |]
    ~capacities:[| 10; 10 |]
    ();
  Store.instantiate s a 0;
  Store.propagate s;
  (* bin 0 now holds 6; item b (size 6) no longer fits there *)
  check_int "b forced to bin 1" 1 (Var.value_exn b)

let test_pack_overload_fails () =
  let s = Store.create () in
  let a = Store.new_var s ~lo:0 ~hi:0 in
  let b = Store.new_var s ~lo:0 ~hi:0 in
  Pack.post s
    ~items:[| Pack.item a 6; Pack.item b 6 |]
    ~capacities:[| 10 |]
    ();
  check_bool "fails" true
    (try
       Store.propagate s;
       false
     with Store.Inconsistent _ -> true)

let test_pack_aggregate_fails () =
  let s = Store.create () in
  let vars = Array.init 3 (fun _ -> Store.new_var s ~lo:0 ~hi:1) in
  let items = Array.map (fun v -> Pack.item v 5) vars in
  Pack.post s ~items ~capacities:[| 7; 7 |] ();
  (* 15 units of demand, 14 of capacity *)
  check_bool "fails" true
    (try
       Store.propagate s;
       false
     with Store.Inconsistent _ -> true)

let test_pack_feasible_assignment () =
  let s = Store.create () in
  let vars = Array.init 4 (fun i -> Store.new_var ~name:(string_of_int i) s ~lo:0 ~hi:1) in
  let sizes = [| 6; 4; 5; 5 |] in
  let items = Array.mapi (fun i v -> Pack.item v sizes.(i)) vars in
  Pack.post s ~items ~capacities:[| 10; 10 |] ();
  let sol, _ = Search.find_first s ~vars () in
  match sol with
  | None -> Alcotest.fail "expected a packing"
  | Some a ->
    let load = [| 0; 0 |] in
    Array.iteri (fun i b -> load.(b) <- load.(b) + sizes.(i)) a;
    check_bool "bin0 ok" true (load.(0) <= 10);
    check_bool "bin1 ok" true (load.(1) <= 10)

(* ----------------------------------------------------------- Knapsack -- *)

let test_knapsack_prunes_load () =
  let s = Store.create () in
  let sel = Array.init 3 (fun _ -> Store.new_var s ~lo:0 ~hi:1) in
  let load = Store.new_var s ~lo:0 ~hi:12 in
  ignore (Knapsack.post s ~sizes:[| 4; 5; 6 |] ~selectors:sel ~load);
  Store.propagate s;
  (* reachable sums within 0..12: 0 4 5 6 9 10 11 *)
  check_bool "7 unreachable" false (Var.mem 7 load);
  check_bool "9 reachable" true (Var.mem 9 load);
  check_bool "12 unreachable" false (Var.mem 12 load)

let test_knapsack_forces_item () =
  let s = Store.create () in
  let sel = Array.init 2 (fun _ -> Store.new_var s ~lo:0 ~hi:1) in
  let load = Store.new_var s ~lo:9 ~hi:9 in
  ignore (Knapsack.post s ~sizes:[| 4; 5 |] ~selectors:sel ~load);
  Store.propagate s;
  check_int "item0 forced" 1 (Var.value_exn sel.(0));
  check_int "item1 forced" 1 (Var.value_exn sel.(1))

let test_knapsack_forbids_item () =
  let s = Store.create () in
  let sel = Array.init 2 (fun _ -> Store.new_var s ~lo:0 ~hi:1) in
  let load = Store.new_var s ~lo:4 ~hi:4 in
  ignore (Knapsack.post s ~sizes:[| 4; 5 |] ~selectors:sel ~load);
  Store.propagate s;
  check_int "item0 forced in" 1 (Var.value_exn sel.(0));
  check_int "item1 forced out" 0 (Var.value_exn sel.(1))

let test_knapsack_infeasible () =
  let s = Store.create () in
  let sel = Array.init 2 (fun _ -> Store.new_var s ~lo:0 ~hi:1) in
  let load = Store.new_var s ~lo:7 ~hi:8 in
  ignore (Knapsack.post s ~sizes:[| 4; 2 |] ~selectors:sel ~load);
  check_bool "fails" true
    (try
       Store.propagate s;
       false
     with Store.Inconsistent _ -> true)

let knapsack_agrees_with_bruteforce =
  QCheck.Test.make ~name:"knapsack propagation sound vs brute force"
    ~count:200
    QCheck.(small_list (int_range 1 9))
    (fun sizes ->
      QCheck.assume (List.length sizes <= 8);
      let sizes = Array.of_list sizes in
      let n = Array.length sizes in
      let total = Array.fold_left ( + ) 0 sizes in
      let s = Store.create () in
      let sel = Array.init n (fun _ -> Store.new_var s ~lo:0 ~hi:1) in
      let load = Store.new_var s ~lo:0 ~hi:total in
      ignore (Knapsack.post s ~sizes ~selectors:sel ~load);
      (try Store.propagate s with Store.Inconsistent _ -> ());
      (* every brute-force achievable sum must still be in the domain *)
      let ok = ref true in
      for mask = 0 to (1 lsl n) - 1 do
        let sum = ref 0 in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) <> 0 then sum := !sum + sizes.(i)
        done;
        if not (Var.mem !sum load) then ok := false
      done;
      !ok)

(* -------------------------------------------------------------- Count -- *)

let test_count_at_most_saturation () =
  let s = Store.create () in
  let vars = Array.init 3 (fun _ -> Store.new_var s ~lo:0 ~hi:2) in
  Count.at_most s vars ~value:1 ~count:1;
  Store.instantiate s vars.(0) 1;
  Store.propagate s;
  check_bool "value removed elsewhere" false (Var.mem 1 vars.(1));
  check_bool "value removed elsewhere 2" false (Var.mem 1 vars.(2))

let test_count_at_most_overflow_fails () =
  let s = Store.create () in
  let vars = Array.init 2 (fun _ -> Store.new_var s ~lo:1 ~hi:1) in
  Count.at_most s vars ~value:1 ~count:1;
  check_bool "fails" true
    (try
       Store.propagate s;
       false
     with Store.Inconsistent _ -> true)

let test_count_at_least_forces () =
  let s = Store.create () in
  let a = Store.new_var s ~lo:0 ~hi:1 in
  let b = Store.new_var s ~lo:2 ~hi:3 in
  (* only [a] can take value 1 and we need one: forced *)
  Count.at_least s [| a; b |] ~value:1 ~count:1;
  Store.propagate s;
  check_int "a forced" 1 (Var.value_exn a)

let test_count_exactly () =
  let s = Store.create () in
  let vars = Array.init 3 (fun _ -> Store.new_var s ~lo:0 ~hi:1) in
  Count.exactly s vars ~value:1 ~count:2;
  let count = ref 0 in
  ignore
    (Search.solve s ~vars
       ~on_solution:(fun () ->
         let ones =
           Array.fold_left
             (fun acc v -> if Var.value_exn v = 1 then acc + 1 else acc)
             0 vars
         in
         check_int "two ones" 2 ones;
         incr count)
       ());
  check_int "3 choose 2 solutions" 3 !count

(* ------------------------------------------------------------ Maxvar -- *)

let test_maxvar_bounds () =
  let s = Store.create () in
  let a = Store.new_var s ~lo:0 ~hi:5 in
  let b = Store.new_var s ~lo:2 ~hi:8 in
  let y = Store.new_var s ~lo:0 ~hi:100 in
  Maxvar.post s [ a; b ] y;
  Store.propagate s;
  check_int "y hi" 8 (Var.hi y);
  check_int "y lo" 2 (Var.lo y);
  Store.remove_above s y 4;
  Store.propagate s;
  check_int "b capped" 4 (Var.hi b)

let test_maxvar_forces_single_reacher () =
  let s = Store.create () in
  let a = Store.new_var s ~lo:0 ~hi:3 in
  let b = Store.new_var s ~lo:0 ~hi:9 in
  let y = Store.new_var s ~lo:7 ~hi:9 in
  Maxvar.post s [ a; b ] y;
  Store.propagate s;
  (* only b can reach 7: it must *)
  check_int "b raised" 7 (Var.lo b)

let test_maxvar_infeasible () =
  let s = Store.create () in
  let a = Store.new_var s ~lo:0 ~hi:3 in
  let y = Store.new_var s ~lo:5 ~hi:9 in
  Maxvar.post s [ a ] y;
  check_bool "fails" true
    (try
       Store.propagate s;
       false
     with Store.Inconsistent _ -> true)

(* -------------------------------------------------------------- Table -- *)

let test_table_gac () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:3 in
  let y = Store.new_var s ~lo:0 ~hi:3 in
  Table.post s [ x; y ] [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 0 |] ];
  Store.propagate s;
  check_list "x supported" [ 0; 1; 2 ] (Dom.to_list (Var.dom x));
  check_list "y supported" [ 0; 1; 2 ] (Dom.to_list (Var.dom y));
  Store.instantiate s x 1;
  Store.propagate s;
  check_int "y follows" 2 (Var.value_exn y)

let test_table_no_tuple_fails () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:5 ~hi:9 in
  Table.post s [ x ] [ [| 0 |]; [| 1 |] ];
  check_bool "fails" true
    (try
       Store.propagate s;
       false
     with Store.Inconsistent _ -> true)

let test_table_enumeration () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:3 in
  let y = Store.new_var s ~lo:0 ~hi:3 in
  let tuples = [ [| 0; 1 |]; [| 1; 2 |]; [| 3; 3 |] ] in
  Table.post s [ x; y ] tuples;
  let seen = ref [] in
  ignore
    (Search.solve s ~vars:[| x; y |]
       ~on_solution:(fun () ->
         seen := [| Var.value_exn x; Var.value_exn y |] :: !seen)
       ());
  check_int "exactly the tuples" 3 (List.length !seen);
  List.iter
    (fun t -> check_bool "tuple allowed" true (List.mem t tuples))
    !seen

(* ------------------------------------------------------------ Alldiff -- *)

let test_alldiff_forward_checking () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:2 in
  let y = Store.new_var s ~lo:0 ~hi:2 in
  let z = Store.new_var s ~lo:0 ~hi:2 in
  Alldiff.post s [ x; y; z ];
  Store.instantiate s x 1;
  Store.propagate s;
  check_bool "y lost 1" false (Var.mem 1 y);
  check_bool "z lost 1" false (Var.mem 1 z)

let test_alldiff_pigeonhole () =
  let s = Store.create () in
  let vars = List.init 3 (fun _ -> Store.new_var s ~lo:0 ~hi:1) in
  Alldiff.post s vars;
  check_bool "fails" true
    (try
       Store.propagate s;
       false
     with Store.Inconsistent _ -> true)

let test_alldiff_permutation_count () =
  let s = Store.create () in
  let vars = Array.init 3 (fun _ -> Store.new_var s ~lo:0 ~hi:2) in
  Alldiff.post s (Array.to_list vars);
  let count = ref 0 in
  let stats =
    Search.solve s ~vars ~on_solution:(fun () -> incr count) ()
  in
  check_int "3! solutions" 6 !count;
  check_int "stats solutions" 6 stats.Search.solutions

(* --------------------------------------------------------------- Reif -- *)

let test_reif_channels_both_ways () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:3 in
  let b = Store.new_var s ~lo:0 ~hi:1 in
  Reif.eq_const s x 2 b;
  Store.instantiate s b 1;
  Store.propagate s;
  check_int "x forced" 2 (Var.value_exn x);
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:3 in
  let b = Store.new_var s ~lo:0 ~hi:1 in
  Reif.eq_const s x 2 b;
  Store.instantiate s b 0;
  Store.propagate s;
  check_bool "2 removed" false (Var.mem 2 x);
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:3 in
  let b = Store.new_var s ~lo:0 ~hi:1 in
  Reif.eq_const s x 2 b;
  Store.remove s x 2;
  Store.propagate s;
  check_int "b false" 0 (Var.value_exn b)

(* ------------------------------------------------------------- Search -- *)

let test_search_enumerates_all () =
  let s = Store.create () in
  let vars = Array.init 2 (fun _ -> Store.new_var s ~lo:0 ~hi:2) in
  let count = ref 0 in
  ignore (Search.solve s ~vars ~on_solution:(fun () -> incr count) ());
  check_int "9 assignments" 9 !count

let test_search_respects_constraints () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:4 in
  let y = Store.new_var s ~lo:0 ~hi:4 in
  Linear.sum_eq s [ (1, x); (1, y) ] 4;
  let sols = ref [] in
  ignore
    (Search.solve s ~vars:[| x; y |]
       ~on_solution:(fun () ->
         sols := (Var.value_exn x, Var.value_exn y) :: !sols)
       ());
  check_int "5 solutions" 5 (List.length !sols);
  List.iter (fun (a, b) -> check_int "sums to 4" 4 (a + b)) !sols

let test_search_find_first_none () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:1 in
  let y = Store.new_var s ~lo:0 ~hi:1 in
  Linear.sum_eq s [ (1, x); (1, y) ] 7;
  let sol, stats = Search.find_first s ~vars:[| x; y |] () in
  check_bool "no solution" true (sol = None);
  check_bool "failed at root" true (stats.Search.fails >= 1)

let test_search_minimize_simple () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:9 in
  let y = Store.new_var s ~lo:0 ~hi:9 in
  let obj = Store.new_var s ~lo:0 ~hi:100 in
  (* x + y >= 5, minimize 3x + y *)
  Linear.sum_ge s [ (1, x); (1, y) ] 5;
  Linear.sum_var s [ (3, x); (1, y) ] obj;
  let best, _ = Search.minimize s ~vars:[| x; y |] ~obj () in
  match best with
  | None -> Alcotest.fail "expected a solution"
  | Some (v, snapshot) ->
    check_int "optimal cost" 5 v;
    check_int "x" 0 snapshot.(0);
    check_int "y" 5 snapshot.(1)

let test_search_minimize_restores_store () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:9 in
  let obj = Store.new_var s ~lo:0 ~hi:9 in
  Arith.eq s x obj;
  ignore (Search.minimize s ~vars:[| x |] ~obj ());
  check_int "x domain restored" 9 (Var.hi x)

let test_search_first_fail_order () =
  let s = Store.create () in
  let big = Store.new_var s ~lo:0 ~hi:9 in
  let small = Store.new_var s ~lo:0 ~hi:1 in
  match Search.first_fail [| big; small |] with
  | Some v -> check_int "picks small" (Var.id small) (Var.id v)
  | None -> Alcotest.fail "expected a variable"

let test_search_prefer_value () =
  let s = Store.create () in
  let x = Store.new_var s ~lo:0 ~hi:4 in
  let order = Search.prefer (fun _ -> Some 3) x in
  check_list "preferred first" [ 3; 0; 1; 2; 4 ] order;
  let order = Search.prefer (fun _ -> Some 9) x in
  check_list "absent preference ignored" [ 0; 1; 2; 3; 4 ] order

let test_search_node_limit () =
  let s = Store.create () in
  let vars = Array.init 8 (fun _ -> Store.new_var s ~lo:0 ~hi:7) in
  let stats =
    Search.solve s ~vars ~node_limit:50 ~on_solution:(fun () -> ()) ()
  in
  check_bool "hit limit" true stats.Search.timed_out;
  check_bool "node count bounded" true (stats.Search.nodes <= 51)

let test_search_timeout_returns_incumbent () =
  let s = Store.create () in
  let n = 10 in
  let vars = Array.init n (fun _ -> Store.new_var s ~lo:0 ~hi:9) in
  let obj = Store.new_var s ~lo:0 ~hi:200 in
  Linear.sum_var s (Array.to_list (Array.map (fun v -> (1, v)) vars)) obj;
  (* max-value ordering finds the worst solution first (obj = 90); the
     tiny node budget stops the search right after that incumbent *)
  let best, stats =
    Search.minimize s ~vars ~obj ~node_limit:15
      ~val_select:Search.max_value ()
  in
  check_bool "timed out" true stats.Search.timed_out;
  check_bool "still has incumbent" true (best <> None)

let test_search_minimize_proves_optimum () =
  (* minimize sum with alldiff: optimum is 0+1+2 = 3 *)
  let s = Store.create () in
  let vars = Array.init 3 (fun _ -> Store.new_var s ~lo:0 ~hi:5) in
  let obj = Store.new_var s ~lo:0 ~hi:15 in
  Alldiff.post s (Array.to_list vars);
  Linear.sum_var s (Array.to_list (Array.map (fun v -> (1, v)) vars)) obj;
  let best, stats = Search.minimize s ~vars ~obj () in
  check_bool "not timed out" false stats.Search.timed_out;
  match best with
  | Some (v, _) -> check_int "optimum" 3 v
  | None -> Alcotest.fail "expected optimum"

let test_luby_sequence () =
  Alcotest.(check (list int))
    "first 15 terms"
    [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ]
    (List.init 15 (fun i -> Search.luby (i + 1)))

let test_minimize_restarts_optimum () =
  let s = Store.create () in
  let vars = Array.init 3 (fun _ -> Store.new_var s ~lo:0 ~hi:5) in
  let obj = Store.new_var s ~lo:0 ~hi:15 in
  Alldiff.post s (Array.to_list vars);
  Linear.sum_var s (Array.to_list (Array.map (fun v -> (1, v)) vars)) obj;
  let best, stats =
    Search.minimize_restarts s ~vars ~obj ~base_node_limit:50 ~restarts:6 ()
  in
  check_bool "found" true (best <> None);
  (match best with
  | Some (v, _) -> check_int "optimum" 3 v
  | None -> ());
  check_bool "did some work" true (stats.Search.nodes > 0)

let test_minimize_restarts_respects_timeout () =
  let s = Store.create () in
  let vars = Array.init 12 (fun _ -> Store.new_var s ~lo:0 ~hi:9) in
  let obj = Store.new_var s ~lo:0 ~hi:200 in
  Linear.sum_var s (Array.to_list (Array.map (fun v -> (1, v)) vars)) obj;
  let t0 = Unix.gettimeofday () in
  let best, _ =
    Search.minimize_restarts s ~vars ~obj ~val_select:Search.max_value
      ~base_node_limit:10 ~restarts:1000 ~timeout:0.2 ()
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check_bool "stopped near the deadline" true (elapsed < 2.);
  check_bool "kept an incumbent" true (best <> None)

let test_restarts_completion_clears_timed_out () =
  (* a run that completes within budget proves optimality: the stats
     must not claim a timeout even though a deadline was supplied *)
  let s = Store.create () in
  let vars = Array.init 3 (fun _ -> Store.new_var s ~lo:0 ~hi:5) in
  let obj = Store.new_var s ~lo:0 ~hi:15 in
  Alldiff.post s (Array.to_list vars);
  Linear.sum_var s (Array.to_list (Array.map (fun v -> (1, v)) vars)) obj;
  let best, stats =
    Search.minimize_restarts s ~vars ~obj ~base_node_limit:2000 ~restarts:6
      ~timeout:30. ()
  in
  check_bool "found" true (best <> None);
  check_bool "not timed out" false stats.Search.timed_out

let test_restarts_timed_out_on_node_budget () =
  (* every run exhausts its node budget without completing: the final
     stats must record a cut-short search *)
  let s = Store.create () in
  let vars = Array.init 12 (fun _ -> Store.new_var s ~lo:0 ~hi:9) in
  let obj = Store.new_var s ~lo:0 ~hi:200 in
  Linear.sum_var s (Array.to_list (Array.map (fun v -> (1, v)) vars)) obj;
  let _, stats =
    Search.minimize_restarts s ~vars ~obj ~val_select:Search.max_value
      ~base_node_limit:5 ~restarts:3 ()
  in
  check_bool "timed out" true stats.Search.timed_out

let test_restarts_timed_out_on_deadline () =
  (* the deadline expires before optimality is proven: a cut-short
     search, even when the loop exits through the out-of-time path
     rather than a run's own budget (an already-expired deadline makes
     the exit deterministic) *)
  let s = Store.create () in
  let vars = Array.init 14 (fun _ -> Store.new_var s ~lo:0 ~hi:9) in
  let obj = Store.new_var s ~lo:0 ~hi:200 in
  Linear.sum_var s (Array.to_list (Array.map (fun v -> (1, v)) vars)) obj;
  let best, stats =
    Search.minimize_restarts s ~vars ~obj ~val_select:Search.max_value
      ~base_node_limit:50 ~restarts:10_000 ~timeout:0. ()
  in
  check_bool "no proof happened" true (best = None);
  check_bool "timed out" true stats.Search.timed_out

(* Canary: exact node/fail counts on a fixed instance pin the search
   trajectory. If this test moves, propagation strength, wake-up events
   or the branching order changed — intentionally or not. *)
let test_search_stats_regression () =
  let s = Store.create () in
  let vars = Array.init 10 (fun _ -> Store.new_var s ~lo:0 ~hi:4) in
  let items = Array.mapi (fun i v -> Pack.item v (1 + (i mod 4))) vars in
  Pack.post s ~items ~capacities:(Array.make 5 5) ();
  let obj = Store.new_var s ~lo:0 ~hi:40 in
  Linear.sum_var s
    (Array.to_list (Array.mapi (fun i v -> ((i mod 3) + 1, v)) vars))
    obj;
  let best, stats = Search.minimize s ~vars ~obj () in
  (match best with
  | Some (v, _) -> check_int "optimum" 19 v
  | None -> Alcotest.fail "expected an optimum");
  check_bool "complete" false stats.Search.timed_out;
  check_int "nodes" 219 stats.Search.nodes;
  check_int "fails" 326 stats.Search.fails

let test_val_iter_matches_val_select () =
  (* the allocation-free iterator must explore the same tree as the
     equivalent list-based selector *)
  let run use_iter =
    let s = Store.create () in
    let vars = Array.init 6 (fun _ -> Store.new_var s ~lo:0 ~hi:4) in
    Alldiff.post s (Array.to_list vars |> List.filteri (fun i _ -> i < 5));
    let obj = Store.new_var s ~lo:0 ~hi:30 in
    Linear.sum_var s (Array.to_list (Array.map (fun v -> (1, v)) vars)) obj;
    let desc x f =
      List.iter f (List.rev (Dom.to_list (Var.dom x)))
    in
    let best, stats =
      if use_iter then Search.minimize s ~vars ~obj ~val_iter:desc ()
      else
        Search.minimize s ~vars ~obj
          ~val_select:(fun x -> List.rev (Dom.to_list (Var.dom x)))
          ()
    in
    (Option.map fst best, stats.Search.nodes, stats.Search.fails)
  in
  let b1, n1, f1 = run true and b2, n2, f2 = run false in
  Alcotest.(check (option int)) "same optimum" b2 b1;
  check_int "same nodes" n2 n1;
  check_int "same fails" f2 f1

let restarts_match_plain_minimize =
  QCheck.Test.make ~name:"restart search finds the same optimum" ~count:50
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 4) (int_range 1 4))
        (list_of_size (Gen.int_range 1 4) (int_range (-3) 4)))
    (fun (his, coefs) ->
      let n = min (List.length his) (List.length coefs) in
      QCheck.assume (n >= 1);
      let his = Array.of_list his and coefs = Array.of_list coefs in
      let build () =
        let s = Store.create () in
        let vars = Array.init n (fun i -> Store.new_var s ~lo:0 ~hi:his.(i)) in
        let lo_obj = ref 0 and hi_obj = ref 0 in
        for i = 0 to n - 1 do
          if coefs.(i) >= 0 then hi_obj := !hi_obj + (coefs.(i) * his.(i))
          else lo_obj := !lo_obj + (coefs.(i) * his.(i))
        done;
        let obj = Store.new_var s ~lo:!lo_obj ~hi:!hi_obj in
        Linear.sum_var s (List.init n (fun i -> (coefs.(i), vars.(i)))) obj;
        (s, vars, obj)
      in
      let s1, vars1, obj1 = build () in
      let plain, _ = Search.minimize s1 ~vars:vars1 ~obj:obj1 () in
      let s2, vars2, obj2 = build () in
      let restarted, _ =
        Search.minimize_restarts s2 ~vars:vars2 ~obj:obj2 ~restarts:4 ()
      in
      match (plain, restarted) with
      | Some (a, _), Some (b, _) -> a = b
      | None, None -> true
      | _ -> false)

let minimize_matches_bruteforce =
  QCheck.Test.make ~name:"minimize equals brute force on random linear goal"
    ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 4) (int_range 1 5))
        (list_of_size (Gen.int_range 1 4) (int_range (-3) 5)))
    (fun (his, coefs) ->
      let n = min (List.length his) (List.length coefs) in
      QCheck.assume (n >= 1);
      let his = Array.of_list his and coefs = Array.of_list coefs in
      let s = Store.create () in
      let vars = Array.init n (fun i -> Store.new_var s ~lo:0 ~hi:his.(i)) in
      let lo_obj = ref 0 and hi_obj = ref 0 in
      for i = 0 to n - 1 do
        if coefs.(i) >= 0 then hi_obj := !hi_obj + (coefs.(i) * his.(i))
        else lo_obj := !lo_obj + (coefs.(i) * his.(i))
      done;
      let obj = Store.new_var s ~lo:!lo_obj ~hi:!hi_obj in
      let terms = List.init n (fun i -> (coefs.(i), vars.(i))) in
      Linear.sum_var s terms obj;
      (* brute force *)
      let best = ref max_int in
      let rec go i acc =
        if i = n then best := min !best acc
        else
          for v = 0 to his.(i) do
            go (i + 1) (acc + (coefs.(i) * v))
          done
      in
      go 0 0;
      match Search.minimize s ~vars ~obj () with
      | Some (v, _), _ -> v = !best
      | None, _ -> false)

(* ---------------------------------------------------------------- run -- *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "fdcp"
    [
      ( "dom",
        [
          Alcotest.test_case "interval" `Quick test_dom_interval;
          Alcotest.test_case "empty" `Quick test_dom_empty;
          Alcotest.test_case "singleton" `Quick test_dom_singleton;
          Alcotest.test_case "remove bounds" `Quick test_dom_remove_bounds;
          Alcotest.test_case "remove middle" `Quick test_dom_remove_middle;
          Alcotest.test_case "remove absent" `Quick test_dom_remove_absent;
          Alcotest.test_case "remove below/above" `Quick
            test_dom_remove_below_above;
          Alcotest.test_case "of_list" `Quick test_dom_of_list;
          Alcotest.test_case "next/prev" `Quick test_dom_next_prev;
          Alcotest.test_case "wide interval" `Quick test_dom_wide_interval;
          Alcotest.test_case "multi-word" `Quick test_dom_multiword;
          Alcotest.test_case "keep_only" `Quick test_dom_keep_only;
        ]
        @ qsuite [ dom_ops_agree ] );
      ( "store",
        [
          Alcotest.test_case "trail" `Quick test_store_trail;
          Alcotest.test_case "wipeout" `Quick test_store_wipeout;
          Alcotest.test_case "instantiate" `Quick test_store_instantiate;
          Alcotest.test_case "nested marks" `Quick test_store_nested_marks;
        ] );
      ( "arith",
        [
          Alcotest.test_case "le" `Quick test_arith_le;
          Alcotest.test_case "eq offset" `Quick test_arith_eq_offset;
          Alcotest.test_case "eq with holes" `Quick test_arith_eq_holes;
          Alcotest.test_case "neq" `Quick test_arith_neq;
        ] );
      ( "linear",
        [
          Alcotest.test_case "sum_le" `Quick test_linear_le;
          Alcotest.test_case "negative coef" `Quick
            test_linear_le_negative_coef;
          Alcotest.test_case "sum_eq" `Quick test_linear_eq;
          Alcotest.test_case "infeasible" `Quick test_linear_infeasible;
          Alcotest.test_case "sum_var" `Quick test_linear_sum_var;
        ] );
      ( "element",
        [
          Alcotest.test_case "forward" `Quick test_element_forward;
          Alcotest.test_case "backward" `Quick test_element_backward;
          Alcotest.test_case "duplicate values" `Quick
            test_element_dup_values;
          Alcotest.test_case "index clamped" `Quick
            test_element_index_out_of_range;
        ] );
      ( "pack",
        [
          Alcotest.test_case "prunes full bin" `Quick
            test_pack_prunes_full_bin;
          Alcotest.test_case "overload fails" `Quick test_pack_overload_fails;
          Alcotest.test_case "aggregate fails" `Quick
            test_pack_aggregate_fails;
          Alcotest.test_case "feasible assignment" `Quick
            test_pack_feasible_assignment;
        ] );
      ( "knapsack",
        [
          Alcotest.test_case "prunes load" `Quick test_knapsack_prunes_load;
          Alcotest.test_case "forces item" `Quick test_knapsack_forces_item;
          Alcotest.test_case "forbids item" `Quick test_knapsack_forbids_item;
          Alcotest.test_case "infeasible" `Quick test_knapsack_infeasible;
        ]
        @ qsuite [ knapsack_agrees_with_bruteforce ] );
      ( "maxvar",
        [
          Alcotest.test_case "bounds" `Quick test_maxvar_bounds;
          Alcotest.test_case "single reacher" `Quick
            test_maxvar_forces_single_reacher;
          Alcotest.test_case "infeasible" `Quick test_maxvar_infeasible;
        ] );
      ( "table",
        [
          Alcotest.test_case "gac" `Quick test_table_gac;
          Alcotest.test_case "no tuple" `Quick test_table_no_tuple_fails;
          Alcotest.test_case "enumeration" `Quick test_table_enumeration;
        ] );
      ( "count",
        [
          Alcotest.test_case "at_most saturation" `Quick
            test_count_at_most_saturation;
          Alcotest.test_case "at_most overflow" `Quick
            test_count_at_most_overflow_fails;
          Alcotest.test_case "at_least forces" `Quick test_count_at_least_forces;
          Alcotest.test_case "exactly" `Quick test_count_exactly;
        ] );
      ( "alldiff",
        [
          Alcotest.test_case "forward checking" `Quick
            test_alldiff_forward_checking;
          Alcotest.test_case "pigeonhole" `Quick test_alldiff_pigeonhole;
          Alcotest.test_case "permutation count" `Quick
            test_alldiff_permutation_count;
        ] );
      ("reif", [ Alcotest.test_case "channels" `Quick test_reif_channels_both_ways ]);
      ( "search",
        [
          Alcotest.test_case "enumerates all" `Quick
            test_search_enumerates_all;
          Alcotest.test_case "respects constraints" `Quick
            test_search_respects_constraints;
          Alcotest.test_case "find_first none" `Quick
            test_search_find_first_none;
          Alcotest.test_case "minimize simple" `Quick
            test_search_minimize_simple;
          Alcotest.test_case "minimize restores store" `Quick
            test_search_minimize_restores_store;
          Alcotest.test_case "first fail order" `Quick
            test_search_first_fail_order;
          Alcotest.test_case "prefer value" `Quick test_search_prefer_value;
          Alcotest.test_case "node limit" `Quick test_search_node_limit;
          Alcotest.test_case "timeout keeps incumbent" `Quick
            test_search_timeout_returns_incumbent;
          Alcotest.test_case "proves optimum" `Quick
            test_search_minimize_proves_optimum;
          Alcotest.test_case "luby sequence" `Quick test_luby_sequence;
          Alcotest.test_case "restarts find optimum" `Quick
            test_minimize_restarts_optimum;
          Alcotest.test_case "restarts honor timeout" `Quick
            test_minimize_restarts_respects_timeout;
          Alcotest.test_case "restarts completion clears timed_out" `Quick
            test_restarts_completion_clears_timed_out;
          Alcotest.test_case "restarts timed_out on node budget" `Quick
            test_restarts_timed_out_on_node_budget;
          Alcotest.test_case "restarts timed_out on deadline" `Quick
            test_restarts_timed_out_on_deadline;
          Alcotest.test_case "stats regression" `Quick
            test_search_stats_regression;
          Alcotest.test_case "val_iter matches val_select" `Quick
            test_val_iter_matches_val_select;
        ]
        @ qsuite [ minimize_matches_bruteforce; restarts_match_plain_minimize ]
      );
    ]
