(* Tests for the workload substrate: phase programs, NGB-like DAG
   families, the trace catalogue and the Figure 10 generator. *)

open Entropy_core
module Program = Vworkload.Program
module Nasgrid = Vworkload.Nasgrid
module Trace = Vworkload.Trace
module Generator = Vworkload.Generator
module Arrivals = Vworkload.Arrivals

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* -- program -------------------------------------------------------------- *)

let test_program_demand () =
  check_int "compute" 100 (Program.demand [ Program.Compute 10. ]);
  check_int "idle" 5 (Program.demand [ Program.Idle 10. ]);
  check_int "done" 0 (Program.demand [])

let test_program_totals () =
  let p = [ Program.Compute 10.; Program.Idle 5.; Program.Compute 2.5 ] in
  check_float "compute" 12.5 (Program.total_compute p);
  check_float "min duration" 17.5 (Program.min_duration p)

let test_program_normalize () =
  let p =
    [
      Program.Idle 0.;
      Program.Compute 5.;
      Program.Compute 3.;
      Program.Idle (-1.);
      Program.Idle 2.;
      Program.Idle 4.;
    ]
  in
  match Program.normalize p with
  | [ Program.Compute w; Program.Idle d ] ->
    check_float "merged compute" 8. w;
    check_float "merged idle" 6. d
  | other ->
    Alcotest.failf "unexpected normal form %a" Program.pp other

(* -- nasgrid --------------------------------------------------------------- *)

let test_ed_everyone_computes () =
  let programs = Nasgrid.ed ~vms:9 ~work:60. in
  check_int "9 programs" 9 (List.length programs);
  List.iter
    (fun p ->
      check_float "full work" 60. (Program.total_compute p);
      check_int "starts computing" 100 (Program.demand p))
    programs

let test_hc_single_chain () =
  let vms = 4 in
  let programs = Nasgrid.hc ~rounds:2 ~vms ~work:10. () in
  (* exactly one VM computes at any time: total compute = rounds * vms *
     work and every program's wall span is identical *)
  let total =
    List.fold_left (fun acc p -> acc +. Program.total_compute p) 0. programs
  in
  check_float "chain work" (2. *. 4. *. 10.) total;
  (* VM i's last task ends i tasks after VM 0's: spans step by the task
     work, and the last VM's span is the whole chain *)
  let spans = List.map Program.min_duration programs in
  List.iteri
    (fun i s -> check_float "span steps by work" (List.hd spans +. (10. *. float_of_int i)) s)
    spans;
  check_float "chain span" (2. *. 4. *. 10.)
    (List.fold_left Float.max 0. spans);
  (* VM 0 computes first; VM 3 waits 3 tasks *)
  (match List.hd programs with
  | Program.Compute _ :: _ -> ()
  | p -> Alcotest.failf "vm0 should compute first: %a" Program.pp p);
  match List.nth programs 3 with
  | Program.Idle d :: _ -> check_float "vm3 waits" 30. d
  | p -> Alcotest.failf "vm3 should idle first: %a" Program.pp p

let test_vp_pipeline_stagger () =
  let programs = Nasgrid.vp ~depth:3 ~rounds:2 ~vms:9 ~work:10. () in
  check_int "9 programs" 9 (List.length programs);
  (* stage 0 starts immediately, stage 2 waits 2 stage-times *)
  (match List.hd programs with
  | Program.Compute _ :: _ -> ()
  | p -> Alcotest.failf "stage0 computes first: %a" Program.pp p);
  match List.nth programs 8 with
  | Program.Idle d :: _ -> check_float "stage2 lead-in" 20. d
  | p -> Alcotest.failf "stage2 should idle: %a" Program.pp p

let test_mb_unequal_layers () =
  let programs = Nasgrid.mb ~layers:3 ~vms:9 ~work:10. () in
  let first = List.hd programs and last = List.nth programs 8 in
  check_float "layer0 work" 10. (Program.total_compute first);
  check_float "layer2 works more" 20. (Program.total_compute last)

let test_class_scaling () =
  let w = Nasgrid.task_work Nasgrid.W
  and a = Nasgrid.task_work Nasgrid.A
  and b = Nasgrid.task_work Nasgrid.B in
  check_bool "W < A < B" true (w < a && a < b)

(* -- dag -------------------------------------------------------------------- *)

module Dag = Vworkload.Dag

let test_dag_validation () =
  check_bool "dangling dep rejected" true
    (try
       ignore (Dag.make ~vm_count:1 [ Dag.task ~id:0 ~vm:0 ~work:1. ~deps:[ 5 ] () ]);
       false
     with Dag.Invalid _ -> true);
  check_bool "unknown vm rejected" true
    (try
       ignore (Dag.make ~vm_count:1 [ Dag.task ~id:0 ~vm:3 ~work:1. () ]);
       false
     with Dag.Invalid _ -> true)

let test_dag_cycle_detected () =
  let d =
    Dag.make ~vm_count:1
      [
        Dag.task ~id:0 ~vm:0 ~work:1. ~deps:[ 1 ] ();
        Dag.task ~id:1 ~vm:0 ~work:1. ~deps:[ 0 ] ();
      ]
  in
  check_bool "cycle" true
    (try
       ignore (Dag.topological_order d);
       false
     with Dag.Invalid _ -> true)

let test_dag_schedule_chain () =
  (* a -> b on distinct VMs: b waits for a *)
  let d =
    Dag.make ~vm_count:2
      [
        Dag.task ~id:0 ~vm:0 ~work:10. ();
        Dag.task ~id:1 ~vm:1 ~work:5. ~deps:[ 0 ] ();
      ]
  in
  let start, finish = Dag.schedule d in
  check_float "b starts at 10" 10. start.(1);
  check_float "critical path" 15. (Array.fold_left Float.max 0. finish)

let test_dag_compile_inserts_idle () =
  let d =
    Dag.make ~vm_count:2
      [
        Dag.task ~id:0 ~vm:0 ~work:10. ();
        Dag.task ~id:1 ~vm:1 ~work:5. ~deps:[ 0 ] ();
      ]
  in
  match Dag.compile d with
  | [ p0; p1 ] ->
    check_bool "vm0 computes immediately" true (p0 = [ Program.Compute 10. ]);
    check_bool "vm1 idles then computes" true
      (p1 = [ Program.Idle 10.; Program.Compute 5. ])
  | _ -> Alcotest.fail "expected 2 programs"

let test_dag_ed_matches_handwritten () =
  let dag = Dag.ed ~vms:9 ~work:60. in
  check_bool "same programs" true (Dag.compile dag = Nasgrid.ed ~vms:9 ~work:60.)

let test_dag_hc_matches_handwritten () =
  let dag = Dag.hc ~rounds:3 ~vms:9 ~work:60. () in
  let compiled = Dag.compile dag in
  let handwritten = Nasgrid.hc ~rounds:3 ~vms:9 ~work:60. () in
  List.iter2
    (fun a b ->
      check_float "same compute" (Program.total_compute b)
        (Program.total_compute a);
      check_float "same span" (Program.min_duration b)
        (Program.min_duration a))
    compiled handwritten

let test_dag_families_consistency () =
  (* for every family: compiled programs carry all the DAG's work, and
     the longest program equals the dedicated-resource critical path *)
  List.iter
    (fun family ->
      let dag = Dag.of_family family ~vms:9 ~work:30. in
      let programs = Dag.compile dag in
      let compute =
        List.fold_left (fun acc p -> acc +. Program.total_compute p) 0. programs
      in
      check_float
        (Nasgrid.family_to_string family ^ " work preserved")
        (Dag.total_work dag) compute;
      let span =
        List.fold_left (fun acc p -> Float.max acc (Program.min_duration p)) 0.
          programs
      in
      check_float
        (Nasgrid.family_to_string family ^ " span = critical path")
        (Dag.critical_path dag) span)
    Nasgrid.families

let test_dag_hc_serializes_cpu () =
  (* in a helical chain at most one VM computes at a time: the total
     work equals the critical path *)
  let dag = Dag.hc ~rounds:2 ~vms:5 ~work:7. () in
  check_float "serial" (Dag.total_work dag) (Dag.critical_path dag)

(* -- trace ----------------------------------------------------------------- *)

let test_trace_catalogue_81 () =
  let traces = Trace.catalogue () in
  check_int "81 traces" 81 (List.length traces);
  List.iter
    (fun t ->
      check_int "programs match vms" t.Trace.vm_count
        (List.length t.Trace.programs);
      check_int "memories match vms" t.Trace.vm_count
        (List.length t.Trace.memories);
      List.iter
        (fun m ->
          check_bool "paper memory sizes" true
            (List.mem m Trace.memory_choices))
        t.Trace.memories)
    traces

let test_trace_vm_counts () =
  let traces = Trace.catalogue () in
  check_bool "9 or 18 VMs" true
    (List.for_all
       (fun t -> t.Trace.vm_count = 9 || t.Trace.vm_count = 18)
       traces)

let test_trace_deterministic () =
  let a = Trace.make ~seed:3 ~vm_count:9 Nasgrid.Ed Nasgrid.A in
  let b = Trace.make ~seed:3 ~vm_count:9 Nasgrid.Ed Nasgrid.A in
  check_bool "same memories" true (a.Trace.memories = b.Trace.memories)

(* -- generator -------------------------------------------------------------- *)

let test_generator_reaches_vm_target () =
  let inst =
    Generator.generate { Generator.default_spec with vm_target = 108; seed = 1 }
  in
  let n = Configuration.vm_count inst.Generator.config in
  check_bool "at least target" true (n >= 108);
  check_bool "close to target" true (n <= 108 + 18)

let test_generator_memory_satisfied () =
  (* initial assignment satisfies every VM's memory requirement *)
  let inst =
    Generator.generate { Generator.default_spec with vm_target = 216; seed = 2 }
  in
  let config = inst.Generator.config in
  Array.iter
    (fun node ->
      check_bool "node memory respected" true
        (Configuration.mem_load config (Node.id node) <= Node.memory_mb node))
    (Configuration.nodes config)

let test_generator_deterministic () =
  let a = Generator.generate { Generator.default_spec with vm_target = 54; seed = 7 } in
  let b = Generator.generate { Generator.default_spec with vm_target = 54; seed = 7 } in
  check_bool "equal configs" true
    (Configuration.equal a.Generator.config b.Generator.config)

let test_generator_vjobs_partition_vms () =
  let inst =
    Generator.generate { Generator.default_spec with vm_target = 54; seed = 3 }
  in
  let all = List.concat_map Vjob.vms inst.Generator.vjobs in
  let sorted = List.sort_uniq Int.compare all in
  check_int "every VM in exactly one vjob"
    (Configuration.vm_count inst.Generator.config)
    (List.length sorted);
  check_int "no duplicates" (List.length all) (List.length sorted)

let test_generator_demands_from_programs () =
  let inst =
    Generator.generate { Generator.default_spec with vm_target = 54; seed = 4 }
  in
  let ok = ref true in
  for vm = 0 to Configuration.vm_count inst.Generator.config - 1 do
    let d = Demand.cpu inst.Generator.demand vm in
    if d <> Program.compute_demand && d <> Program.idle_demand && d <> 0 then
      ok := false
  done;
  check_bool "demands are phase demands" true !ok

let prop_generator_all_states_appear =
  QCheck.Test.make ~name:"generator produces running, sleeping and waiting vjobs"
    ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let inst =
        Generator.generate
          { Generator.default_spec with vm_target = 216; seed }
      in
      let states =
        List.filter_map
          (fun vj -> Configuration.vjob_state inst.Generator.config vj)
          inst.Generator.vjobs
      in
      (* with 12+ vjobs the three states virtually always all appear;
         accept when at least two distinct states exist *)
      List.length (List.sort_uniq compare states) >= 2)

(* -- arrivals -------------------------------------------------------------- *)

let test_arrivals_shape () =
  let spec = { Arrivals.default_spec with count = 500; seed = 11 } in
  let arr = Arrivals.generate spec in
  check_int "exactly count arrivals" 500 (List.length arr);
  let sorted = ref true and positive = ref true in
  ignore
    (List.fold_left
       (fun prev a ->
         if a.Arrivals.at_s < prev then sorted := false;
         if a.Arrivals.at_s < 0. then positive := false;
         a.Arrivals.at_s)
       0. arr);
  check_bool "nondecreasing times" true !sorted;
  check_bool "nonnegative times" true !positive

let test_arrivals_deterministic () =
  let spec = { Arrivals.default_spec with count = 300; seed = 42 } in
  check_bool "same seed, same schedule" true
    (Arrivals.generate spec = Arrivals.generate spec);
  check_bool "different seed, different schedule" true
    (Arrivals.times spec <> Arrivals.times { spec with seed = 43 })

let test_arrivals_base_rate () =
  (* with bursts switched off (equal rates) the stream is plain Poisson:
     the empirical rate over many arrivals converges on base_rate *)
  let rate = 0.5 in
  let spec =
    {
      Arrivals.seed = 7;
      count = 4000;
      base_rate = rate;
      burst_rate = rate;
      mean_calm_s = 100.;
      mean_burst_s = 100.;
    }
  in
  let times = Arrivals.times spec in
  let span = List.nth times (List.length times - 1) in
  let empirical = float_of_int (List.length times) /. span in
  check_bool
    (Printf.sprintf "empirical rate %.3f within 10%% of %.3f" empirical rate)
    true
    (Float.abs (empirical -. rate) < 0.1 *. rate)

let test_arrivals_bursty () =
  (* bursts must be real: the local rate inside burst periods clearly
     exceeds the calm rate, and both kinds of arrival occur *)
  let spec =
    {
      Arrivals.seed = 3;
      count = 2000;
      base_rate = 1. /. 60.;
      burst_rate = 1. /. 4.;
      mean_calm_s = 600.;
      mean_burst_s = 120.;
    }
  in
  let arr = Arrivals.generate spec in
  let gaps_between same =
    (* mean gap between consecutive arrivals in the same phase kind *)
    let rec go prev acc n = function
      | [] -> (acc, n)
      | a :: rest ->
        if a.Arrivals.burst = same then
          match prev with
          | Some p ->
            go (Some a) (acc +. (a.Arrivals.at_s -. p.Arrivals.at_s)) (n + 1)
              rest
          | None -> go (Some a) acc n rest
        else go None acc n rest
      in
    let total, n = go None 0. 0 arr in
    if n = 0 then infinity else total /. float_of_int n
  in
  let burst_gap = gaps_between true and calm_gap = gaps_between false in
  check_bool "both phases produce arrivals" true
    (List.exists (fun a -> a.Arrivals.burst) arr
    && List.exists (fun a -> not a.Arrivals.burst) arr);
  check_bool
    (Printf.sprintf "burst gap %.1fs well below calm gap %.1fs" burst_gap
       calm_gap)
    true
    (burst_gap *. 4. < calm_gap)

let test_arrivals_rejects_bad_spec () =
  let bad f =
    match Arrivals.generate f with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "negative count" true
    (bad { Arrivals.default_spec with count = -1 });
  check_bool "zero rate" true
    (bad { Arrivals.default_spec with base_rate = 0. });
  check_bool "zero phase duration" true
    (bad { Arrivals.default_spec with mean_burst_s = 0. })

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "vworkload"
    [
      ( "program",
        [
          Alcotest.test_case "demand" `Quick test_program_demand;
          Alcotest.test_case "totals" `Quick test_program_totals;
          Alcotest.test_case "normalize" `Quick test_program_normalize;
        ] );
      ( "nasgrid",
        [
          Alcotest.test_case "ED computes everywhere" `Quick
            test_ed_everyone_computes;
          Alcotest.test_case "HC single chain" `Quick test_hc_single_chain;
          Alcotest.test_case "VP pipeline stagger" `Quick
            test_vp_pipeline_stagger;
          Alcotest.test_case "MB unequal layers" `Quick
            test_mb_unequal_layers;
          Alcotest.test_case "class scaling" `Quick test_class_scaling;
        ] );
      ( "dag",
        [
          Alcotest.test_case "validation" `Quick test_dag_validation;
          Alcotest.test_case "cycle detected" `Quick test_dag_cycle_detected;
          Alcotest.test_case "schedule chain" `Quick test_dag_schedule_chain;
          Alcotest.test_case "compile inserts idle" `Quick
            test_dag_compile_inserts_idle;
          Alcotest.test_case "ED matches handwritten" `Quick
            test_dag_ed_matches_handwritten;
          Alcotest.test_case "HC matches handwritten" `Quick
            test_dag_hc_matches_handwritten;
          Alcotest.test_case "families consistent" `Quick
            test_dag_families_consistency;
          Alcotest.test_case "HC serializes CPU" `Quick
            test_dag_hc_serializes_cpu;
        ] );
      ( "trace",
        [
          Alcotest.test_case "catalogue has 81" `Quick test_trace_catalogue_81;
          Alcotest.test_case "vm counts" `Quick test_trace_vm_counts;
          Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
        ] );
      ( "generator",
        [
          Alcotest.test_case "vm target" `Quick
            test_generator_reaches_vm_target;
          Alcotest.test_case "memory satisfied" `Quick
            test_generator_memory_satisfied;
          Alcotest.test_case "deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "vjobs partition VMs" `Quick
            test_generator_vjobs_partition_vms;
          Alcotest.test_case "demands from programs" `Quick
            test_generator_demands_from_programs;
        ]
        @ qsuite [ prop_generator_all_states_appear ] );
      ( "arrivals",
        [
          Alcotest.test_case "shape" `Quick test_arrivals_shape;
          Alcotest.test_case "deterministic" `Quick
            test_arrivals_deterministic;
          Alcotest.test_case "base rate" `Quick test_arrivals_base_rate;
          Alcotest.test_case "bursty" `Quick test_arrivals_bursty;
          Alcotest.test_case "bad spec rejected" `Quick
            test_arrivals_rejects_bad_spec;
        ] );
    ]
