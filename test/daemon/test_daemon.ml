(* Tests for the online control-plane daemon: the bounded admission
   queue, trigger coalescing, the graceful-degradation ladder, and
   whole-daemon episodes — including the chaos soak acceptance run
   (bursty open arrivals, fault injection, a mid-soak kill and resume)
   and its bit-reproducibility from the seed. *)

module Admission = Entropy_daemon.Admission
module Triggers = Entropy_daemon.Triggers
module Ladder = Entropy_daemon.Ladder
module Daemon = Entropy_daemon.Daemon
module Journal = Entropy_journal.Journal
module Record = Entropy_journal.Record
module Json = Entropy_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* -- admission ------------------------------------------------------------- *)

let test_admission_bound () =
  let t = Admission.create ~cap:8 () in
  let queued = ref 0 and rejected = ref 0 in
  for vjob = 0 to 19 do
    match Admission.submit t ~now:(float_of_int vjob) ~vjob ~vms:1 with
    | `Queued -> incr queued
    | `Rejected reason ->
      incr rejected;
      check_bool "reason mentions the queue" true
        (String.length reason > 0)
  done;
  (* depth+1 >= cap rejects: the queue holds at most cap-1 entries *)
  check_int "queued up to cap-1" 7 !queued;
  check_int "rest rejected" 13 !rejected;
  check_int "depth below cap" 7 (Admission.depth t);
  check_bool "peak below cap" true (Admission.peak t < Admission.cap t);
  check_int "totals agree" 7 (Admission.queued_total t);
  check_int "rejections counted" 13 (Admission.rejected_total t)

let test_admission_fifo () =
  let t = Admission.create ~cap:16 () in
  List.iter
    (fun vjob ->
      match Admission.submit t ~now:(float_of_int vjob) ~vjob ~vms:1 with
      | `Queued -> ()
      | `Rejected _ -> Alcotest.fail "unexpected rejection")
    [ 3; 1; 4; 1; 5 ];
  let batch = Admission.take t ~max:3 in
  Alcotest.(check (list int))
    "FIFO head" [ 3; 1; 4 ]
    (List.map (fun (e : Admission.entry) -> e.Admission.vjob) batch);
  check_int "remainder" 2 (Admission.depth t);
  (* drain below max *)
  check_int "short take" 2 (List.length (Admission.take t ~max:10));
  check_int "empty" 0 (Admission.depth t)

let test_admission_pressure () =
  let t = Admission.create ~cap:10 () in
  Alcotest.(check (float 1e-9)) "empty fill" 0. (Admission.fill t);
  Alcotest.(check (float 1e-9)) "empty age" 0. (Admission.oldest_age t ~now:50.);
  (match Admission.submit t ~now:10. ~vjob:0 ~vms:1 with
  | `Queued -> ()
  | `Rejected _ -> Alcotest.fail "rejected");
  (match Admission.submit t ~now:20. ~vjob:1 ~vms:1 with
  | `Queued -> ()
  | `Rejected _ -> Alcotest.fail "rejected");
  Alcotest.(check (float 1e-9)) "fill" 0.2 (Admission.fill t);
  Alcotest.(check (float 1e-9))
    "age tracks the head" 40.
    (Admission.oldest_age t ~now:50.);
  ignore (Admission.take t ~max:1);
  Alcotest.(check (float 1e-9))
    "head moved" 30.
    (Admission.oldest_age t ~now:50.)

let test_admission_requeue () =
  let t = Admission.create ~cap:4 () in
  Admission.requeue t { Admission.vjob = 9; vms = 2; submitted_at = 0. };
  check_int "requeued" 1 (Admission.depth t);
  (* requeue past the cap means journal/cap disagreement: refuse *)
  check_bool "requeue overflow raises" true
    (invalid (fun () ->
         for i = 0 to 4 do
           Admission.requeue t
             { Admission.vjob = 10 + i; vms = 1; submitted_at = 0. }
         done))

let test_admission_bad_cap () =
  check_bool "cap 1 rejected" true
    (invalid (fun () -> Admission.create ~cap:1 ()))

(* -- triggers -------------------------------------------------------------- *)

let test_triggers_coalesce () =
  let t = Triggers.create ~debounce_s:5. () in
  (match Triggers.raise_ t ~now:0. ~reason:"arrival" with
  | Some at -> Alcotest.(check (float 1e-9)) "armed at debounce" 5. at
  | None -> Alcotest.fail "first raise must arm");
  check_bool "second raise coalesces" true
    (Triggers.raise_ t ~now:1. ~reason:"arrival" = None);
  check_bool "third raise coalesces" true
    (Triggers.raise_ t ~now:2. ~reason:"crash" = None);
  (match Triggers.fire t with
  | Some p ->
    check_int "all events in one fire" 3 p.Triggers.events;
    Alcotest.(check (list string))
      "reasons deduplicated, arrival order" [ "arrival"; "crash" ]
      p.Triggers.reasons;
    Alcotest.(check (float 1e-9)) "lag clock from first raise" 0.
      p.Triggers.first_at
  | None -> Alcotest.fail "armed machine must fire");
  check_int "raised" 3 (Triggers.raised_total t);
  check_int "fired" 1 (Triggers.fired_total t);
  check_int "coalesced" 2 (Triggers.coalesced_total t)

let test_triggers_settle () =
  let t = Triggers.create ~debounce_s:2. () in
  ignore (Triggers.raise_ t ~now:0. ~reason:"a");
  ignore (Triggers.fire t);
  check_bool "busy" true (Triggers.state t = Triggers.Busy);
  (* no raises while busy: settle goes idle *)
  check_bool "idle settle" true (Triggers.settle t ~now:3. = None);
  check_bool "idle" true (Triggers.state t = Triggers.Idle);
  (* raises while busy re-arm at settle *)
  ignore (Triggers.raise_ t ~now:4. ~reason:"b");
  ignore (Triggers.fire t);
  ignore (Triggers.raise_ t ~now:5. ~reason:"c");
  (match Triggers.settle t ~now:6. with
  | Some at -> Alcotest.(check (float 1e-9)) "re-armed" 8. at
  | None -> Alcotest.fail "raise during busy must re-arm");
  (match Triggers.fire t with
  | Some p -> check_int "the busy-time raise survives" 1 p.Triggers.events
  | None -> Alcotest.fail "re-armed machine must fire")

let test_triggers_stale_fire () =
  let t = Triggers.create ~debounce_s:1. () in
  check_bool "fire on idle is a no-op" true (Triggers.fire t = None);
  check_bool "settle on idle is a no-op" true (Triggers.settle t ~now:0. = None);
  ignore (Triggers.raise_ t ~now:0. ~reason:"a");
  (* settle must not squash an armed machine back to idle *)
  check_bool "settle on armed is a no-op" true
    (Triggers.settle t ~now:0.5 = None);
  check_bool "still armed" true (Triggers.state t = Triggers.Armed);
  check_bool "armed machine fires" true (Triggers.fire t <> None)

(* -- ladder ---------------------------------------------------------------- *)

let calm = { Ladder.queue_fill = 0.; oldest_age_s = 0.; decision_lag_s = 0. }

let hot =
  { Ladder.queue_fill = 0.9; oldest_age_s = 300.; decision_lag_s = 120. }

let test_ladder_escalates () =
  let t = Ladder.create () in
  check_bool "starts full" true (Ladder.level t = Ladder.Full);
  (* any single hot signal steps one rung *)
  (match
     Ladder.observe t ~now:0.
       { calm with Ladder.queue_fill = 0.8 }
   with
  | Some tr -> check_bool "full -> shrunk" true (tr.Ladder.to_level = Ladder.Shrunk)
  | None -> Alcotest.fail "hot fill must escalate");
  (match Ladder.observe t ~now:1. { calm with Ladder.oldest_age_s = 200. } with
  | Some tr ->
    check_bool "shrunk -> heuristic" true (tr.Ladder.to_level = Ladder.Heuristic)
  | None -> Alcotest.fail "hot age must escalate");
  (match Ladder.observe t ~now:2. { calm with Ladder.decision_lag_s = 90. } with
  | Some tr -> check_bool "heuristic -> defer" true (tr.Ladder.to_level = Ladder.Defer)
  | None -> Alcotest.fail "hot lag must escalate");
  (* at the bottom, pressure cannot push further *)
  check_bool "defer holds" true (Ladder.observe t ~now:3. hot = None);
  check_int "three escalations" 3 (Ladder.ups t)

let test_ladder_relax_hysteresis () =
  let t = Ladder.create ~level:Ladder.Heuristic () in
  check_bool "calm 1: no move" true (Ladder.observe t ~now:0. calm = None);
  check_bool "calm 2: no move" true (Ladder.observe t ~now:1. calm = None);
  (match Ladder.observe t ~now:2. calm with
  | Some tr -> check_bool "3rd calm relaxes" true (tr.Ladder.to_level = Ladder.Shrunk)
  | None -> Alcotest.fail "calm_rounds calm observations must relax");
  (* a hot blip resets the calm streak *)
  ignore (Ladder.observe t ~now:3. calm);
  ignore (Ladder.observe t ~now:4. calm);
  check_bool "blip interrupts" true (Ladder.observe t ~now:5. hot <> None);
  check_bool "streak reset 1" true (Ladder.observe t ~now:6. calm = None);
  check_bool "streak reset 2" true (Ladder.observe t ~now:7. calm = None)

let test_ladder_defer_hold_expires () =
  let config =
    { Ladder.default_config with Ladder.defer_hold_s = 50.; calm_rounds = 2 }
  in
  let t = Ladder.create ~config ~level:Ladder.Heuristic () in
  (match Ladder.observe t ~now:0. hot with
  | Some tr -> check_bool "into defer" true (tr.Ladder.to_level = Ladder.Defer)
  | None -> Alcotest.fail "hot must defer");
  (* still hot, hold not expired: parked *)
  check_bool "parked" true (Ladder.observe t ~now:30. hot = None);
  (* hold expired: forced back to heuristic whatever the pressure *)
  (match Ladder.observe t ~now:51. hot with
  | Some tr ->
    check_bool "forced exit" true (tr.Ladder.to_level = Ladder.Heuristic);
    check_bool "cause names the hold" true
      (tr.Ladder.cause = "defer hold expired")
  | None -> Alcotest.fail "expired hold must force an exit")

let test_ladder_bad_config () =
  check_bool "relax above escalate rejected" true
    (invalid (fun () ->
         Ladder.create
           ~config:
             {
               Ladder.default_config with
               Ladder.relax = { Ladder.fill = 0.9; age_s = 300.; lag_s = 100. };
             }
           ()))

(* -- daemon episodes ------------------------------------------------------- *)

let quiet_config =
  {
    Daemon.default_config with
    Daemon.nodes = 12;
    submissions = 40;
    deterministic = true;
    fail_rate = 0.05;
    seed = 3;
  }

let test_daemon_episode () =
  let r = Daemon.run quiet_config in
  check_int "every arrival disposed" 40 r.Daemon.submissions;
  check_bool "all admitted terminated" true r.Daemon.all_terminated;
  check_bool "final configuration viable" true r.Daemon.final_viable;
  check_bool "queue bounded" true r.Daemon.queue_bounded;
  check_bool "degradation bounded" true r.Daemon.degradation_bounded;
  check_bool "not killed" true (not r.Daemon.killed);
  check_bool "decisions ran" true (r.Daemon.decision_rounds > 0);
  check_bool "events coalesced" true (r.Daemon.triggers_coalesced > 0)

let test_daemon_reproducible () =
  let a = Daemon.run quiet_config and b = Daemon.run quiet_config in
  Alcotest.(check string)
    "same seed, same report"
    (Json.to_string (Daemon.to_json a))
    (Json.to_string (Daemon.to_json b))

let test_daemon_overload_rejects () =
  (* a storm against a tiny queue: admission must shed, never overflow *)
  let r =
    Daemon.run
      {
        Daemon.default_config with
        Daemon.nodes = 6;
        submissions = 120;
        admission_cap = 6;
        admit_batch = 2;
        burst_rate = 1.;
        mean_calm_s = 30.;
        mean_burst_s = 300.;
        deterministic = true;
        fail_rate = 0.;
        seed = 11;
      }
  in
  check_bool "storm sheds load" true (r.Daemon.rejected > 0);
  check_bool "queue stays below cap" true
    (r.Daemon.max_queue_depth < r.Daemon.admission_cap);
  check_bool "survivors all finish" true r.Daemon.all_terminated;
  check_bool "degradation bounded" true r.Daemon.degradation_bounded

let test_daemon_ladder_moves () =
  let r =
    Daemon.run
      {
        Daemon.default_config with
        Daemon.nodes = 8;
        submissions = 150;
        burst_rate = 0.5;
        mean_calm_s = 120.;
        mean_burst_s = 240.;
        deterministic = true;
        fail_rate = 0.05;
        seed = 5;
      }
  in
  check_bool "ladder escalated" true (r.Daemon.ladder_ups >= 1);
  check_bool "ladder relaxed" true (r.Daemon.ladder_downs >= 1);
  check_bool "transitions recorded" true
    (List.length r.Daemon.transitions
    = r.Daemon.ladder_ups + r.Daemon.ladder_downs);
  check_bool "all terminated" true r.Daemon.all_terminated

let test_daemon_journals_admission () =
  let j = Journal.mem () in
  let r = Daemon.run ~journal:j quiet_config in
  let records = Journal.records j in
  let subs, ladders =
    List.fold_left
      (fun (s, l) r ->
        match r with
        | Record.Submission _ -> (s + 1, l)
        | Record.Ladder _ -> (s, l + 1)
        | _ -> (s, l))
      (0, 0) records
  in
  (* every arrival journals a disposition; every admission a second *)
  check_int "submission records" (r.Daemon.submissions + r.Daemon.admitted)
    subs;
  check_int "ladder records" (List.length r.Daemon.transitions) ladders

(* -- chaos soak acceptance -------------------------------------------------- *)

let soak_config =
  {
    Daemon.default_config with
    Daemon.nodes = 24;
    submissions = 2000;
    deterministic = true;
    fail_rate = 0.1;
    crashes = 2;
    seed = 7;
  }

let check_soak_report tag (r : Daemon.report) =
  check_bool (tag ^ ": all admitted vjobs terminated") true
    r.Daemon.all_terminated;
  check_bool (tag ^ ": final configuration viable") true r.Daemon.final_viable;
  check_bool (tag ^ ": queue depth stayed below the cap") true
    (r.Daemon.max_queue_depth < r.Daemon.admission_cap);
  check_bool (tag ^ ": ladder escalated at least once") true
    (r.Daemon.ladder_ups >= 1);
  check_bool (tag ^ ": ladder relaxed at least once") true
    (r.Daemon.ladder_downs >= 1);
  check_bool (tag ^ ": degradation bounded") true r.Daemon.degradation_bounded;
  check_bool (tag ^ ": crashes hit") true (List.length r.Daemon.crashes > 0)

let test_soak () =
  let r = Daemon.run soak_config in
  check_int "soak: every submission disposed" 2000 r.Daemon.submissions;
  check_bool "soak: overload shed some load" true (r.Daemon.rejected > 0);
  check_soak_report "soak" r

let test_soak_reproducible () =
  let a = Daemon.run soak_config and b = Daemon.run soak_config in
  Alcotest.(check string)
    "soak reproducible from seed"
    (Json.to_string (Daemon.to_json a))
    (Json.to_string (Daemon.to_json b))

let test_soak_kill_resume () =
  let path = Filename.temp_file "daemon_soak" ".journal" in
  let killed_config = { soak_config with Daemon.kill_at = Some 20000. } in
  let journal = Journal.open_file path in
  let killed = Daemon.run ~journal killed_config in
  Journal.close journal;
  check_bool "killed mid-soak" true killed.Daemon.killed;
  check_bool "kill: queue bounded" true killed.Daemon.queue_bounded;
  let records, dropped = Journal.load path in
  check_int "journal intact" 0 dropped;
  check_bool "journal non-trivial" true (List.length records > 100);
  let journal = Journal.open_file path in
  let resumed = Daemon.resume ~journal ~records soak_config in
  Journal.close journal;
  Sys.remove path;
  check_bool "resume: resumed" true resumed.Daemon.resumed;
  check_int "resume: every submission disposed" 2000
    resumed.Daemon.submissions;
  check_soak_report "resume" resumed

let () =
  Alcotest.run "daemon"
    [
      ( "admission",
        [
          Alcotest.test_case "bound" `Quick test_admission_bound;
          Alcotest.test_case "fifo" `Quick test_admission_fifo;
          Alcotest.test_case "pressure" `Quick test_admission_pressure;
          Alcotest.test_case "requeue" `Quick test_admission_requeue;
          Alcotest.test_case "bad cap" `Quick test_admission_bad_cap;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "coalesce" `Quick test_triggers_coalesce;
          Alcotest.test_case "settle" `Quick test_triggers_settle;
          Alcotest.test_case "stale fire" `Quick test_triggers_stale_fire;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "escalates" `Quick test_ladder_escalates;
          Alcotest.test_case "relax hysteresis" `Quick
            test_ladder_relax_hysteresis;
          Alcotest.test_case "defer hold" `Quick test_ladder_defer_hold_expires;
          Alcotest.test_case "bad config" `Quick test_ladder_bad_config;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "episode" `Quick test_daemon_episode;
          Alcotest.test_case "reproducible" `Quick test_daemon_reproducible;
          Alcotest.test_case "overload rejects" `Quick
            test_daemon_overload_rejects;
          Alcotest.test_case "ladder moves" `Quick test_daemon_ladder_moves;
          Alcotest.test_case "journals admission" `Quick
            test_daemon_journals_admission;
        ] );
      ( "soak",
        [
          Alcotest.test_case "chaos soak" `Slow test_soak;
          Alcotest.test_case "reproducible" `Slow test_soak_reproducible;
          Alcotest.test_case "kill and resume" `Slow test_soak_kill_resume;
        ] );
    ]
