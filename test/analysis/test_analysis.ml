(* Tests for lib/analysis: the independent plan verifier, the CP
   propagator sanitizer, and the model linter.

   The mutation tests are the point of the suite: a deliberately broken
   plan (mid-pool capacity violation) and deliberately broken
   propagators (untrailed mutation, unsubscribed read, non-idempotent
   pruning, silent wipeout) must each be caught by the corresponding
   pass, proving the analyses can actually fail. The clean-path tests
   then pin the kernel and the planner as finding-free. *)

open Entropy_core
module Verifier = Entropy_analysis.Verifier
module Sanitizer = Entropy_analysis.Sanitizer
module Linter = Entropy_analysis.Linter

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- fixtures ------------------------------------------------------------- *)

let mk_nodes ?(cpu = 200) ?(mem = 3584) n =
  Array.init n (fun i ->
      Node.make ~id:i ~name:(Printf.sprintf "N%d" i) ~cpu_capacity:cpu
        ~memory_mb:mem)

let mk_vms specs =
  Array.of_list
    (List.mapi
       (fun i m -> Vm.make ~id:i ~name:(Printf.sprintf "vm%d" i) ~memory_mb:m)
       specs)

(* Figure 7: two nodes, VM1 must suspend before VM0 can migrate *)
let fig7 () =
  let nodes = mk_nodes ~cpu:200 ~mem:2048 2 in
  let vms = mk_vms [ 1024; 1536 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let demand = Demand.uniform ~vm_count:2 50 in
  (config, demand)

(* Figure 8: two interdependent migrations requiring a bypass pivot *)
let fig8 () =
  let nodes = mk_nodes ~cpu:200 ~mem:2048 3 in
  let vms = mk_vms [ 1536; 1536 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let demand = Demand.uniform ~vm_count:2 50 in
  (config, demand)

let has pred findings = List.exists pred findings

let pp_findings fs = Fmt.str "%a" Verifier.pp_report fs

(* -- verifier: clean plans ------------------------------------------------- *)

let verify_planner_plan ?(vjobs = []) ~current ~demand target =
  let target = Rgraph.normalize_sleeping ~current target in
  let plan = Planner.build_plan ~vjobs ~current ~target ~demand () in
  (plan, Verifier.verify ~vjobs ~current ~target ~demand plan)

let test_verifier_fig7_clean () =
  let config, demand = fig7 () in
  (* consolidate both VMs onto node 0: the planner suspends VM1 first *)
  let target = Configuration.set_state config 1 (Configuration.Sleeping 1) in
  let plan, findings = verify_planner_plan ~current:config ~demand target in
  Alcotest.(check string) "no findings" "" (pp_findings findings |> fun s ->
      if findings = [] then "" else s);
  check_int "rederived cost agrees" (Plan.cost config plan)
    (Verifier.rederive_cost config (Plan.pools plan))

let test_verifier_fig8_clean () =
  let config, demand = fig8 () in
  (* swap the two VMs: forces the bypass-migration cycle break *)
  let target = Configuration.set_state config 0 (Configuration.Running 1) in
  let target = Configuration.set_state target 1 (Configuration.Running 0) in
  let plan, findings = verify_planner_plan ~current:config ~demand target in
  check_bool
    (Fmt.str "bypass plan clean: %s" (pp_findings findings))
    true (findings = []);
  check_int "rederived cost agrees" (Plan.cost config plan)
    (Verifier.rederive_cost config (Plan.pools plan))

(* -- verifier: mutations --------------------------------------------------- *)

(* the mutation the verifier exists for: a swap squeezed into a single
   pool, so both migrations claim memory the other VM still occupies *)
let test_verifier_pool_overflow () =
  let nodes = mk_nodes ~cpu:100 ~mem:1024 2 in
  let vms = mk_vms [ 700; 700 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let target = Configuration.set_state config 0 (Configuration.Running 1) in
  let target = Configuration.set_state target 1 (Configuration.Running 0) in
  let demand = Demand.uniform ~vm_count:2 10 in
  let bad =
    Plan.make
      [
        [
          Action.Migrate { vm = 0; src = 0; dst = 1 };
          Action.Migrate { vm = 1; src = 1; dst = 0 };
        ];
      ]
  in
  let findings = Verifier.verify ~current:config ~target ~demand bad in
  check_bool "rejected" false (findings = []);
  let overflow_on node =
    has
      (function
        | Verifier.Claim_overflow
            { node = n; resource = Verifier.Mem; needed = 700; available = 324; _ }
          -> n = node
        | _ -> false)
      findings
  in
  check_bool "memory overflow on node 1" true (overflow_on 1);
  check_bool "memory overflow on node 0" true (overflow_on 0);
  (* the two-pool version (suspend-free direction does not exist here,
     but a pivot does): the planner's own answer must verify clean *)
  let plan, clean = verify_planner_plan ~current:config ~demand target in
  check_bool
    (Fmt.str "planner's version clean: %s" (pp_findings clean))
    true (clean = []);
  check_bool "planner avoided the single pool" true (Plan.pool_count plan > 1)

let test_verifier_lifecycle () =
  let config, demand = fig7 () in
  (* running VM0 cannot be Run again: illegal Figure 2 transition *)
  let bad = Plan.make [ [ Action.Run { vm = 0; dst = 0 } ] ] in
  let findings = Verifier.verify ~current:config ~target:config ~demand bad in
  check_bool "lifecycle violation found" true
    (has
       (function
         | Verifier.Lifecycle_violation { pool = 0; action = Action.Run _; _ }
           -> true
         | _ -> false)
       findings)

let test_verifier_duplicate_and_final_state () =
  let config, demand = fig7 () in
  let target = Configuration.set_state config 0 (Configuration.Running 1) in
  (* empty plan cannot reach the target *)
  let findings =
    Verifier.verify ~current:config ~target ~demand Plan.empty
  in
  check_bool "wrong final state" true
    (has
       (function
         | Verifier.Wrong_final_state
             {
               vm = 0;
               expected = Configuration.Running 1;
               got = Configuration.Running 0;
             } ->
           true
         | _ -> false)
       findings);
  (* the same action twice in one pool *)
  let twice =
    Plan.make
      [
        [
          Action.Migrate { vm = 0; src = 0; dst = 1 };
          Action.Migrate { vm = 0; src = 0; dst = 1 };
        ];
      ]
  in
  let findings = Verifier.verify ~current:config ~target ~demand twice in
  check_bool "duplicate VM action" true
    (has
       (function Verifier.Duplicate_vm_action _ -> true | _ -> false)
       findings)

let test_verifier_vjob_split () =
  let nodes = mk_nodes ~cpu:100 ~mem:2048 2 in
  let vms = mk_vms [ 512; 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let config = Configuration.set_state config 1 (Configuration.Running 1) in
  let target = Configuration.set_state config 0 (Configuration.Sleeping 0) in
  let target = Configuration.set_state target 1 (Configuration.Sleeping 1) in
  let demand = Demand.uniform ~vm_count:2 10 in
  let vjobs = [ Vjob.make ~id:0 ~name:"job" ~vms:[ 0; 1 ] () ] in
  let split =
    Plan.make
      [
        [ Action.Suspend { vm = 0; host = 0 } ];
        [ Action.Suspend { vm = 1; host = 1 } ];
      ]
  in
  let findings = Verifier.verify ~vjobs ~current:config ~target ~demand split in
  check_bool "split suspend flagged" true
    (has
       (function
         | Verifier.Vjob_split { vjob = "job"; kind = `Suspend; pools = [ 0; 1 ] }
           -> true
         | _ -> false)
       findings);
  let grouped =
    Plan.make
      [
        [
          Action.Suspend { vm = 0; host = 0 };
          Action.Suspend { vm = 1; host = 1 };
        ];
      ]
  in
  let findings =
    Verifier.verify ~vjobs ~current:config ~target ~demand grouped
  in
  check_bool
    (Fmt.str "grouped suspend clean: %s" (pp_findings findings))
    true (findings = [])

let test_verifier_stronger_than_validate () =
  (* an action that is locally feasible pool by pool but off the
     reconfiguration graph: Plan.validate accepts it (it reaches the
     target), the verifier pins the detour *)
  let nodes = mk_nodes ~cpu:200 ~mem:2048 3 in
  let vms = mk_vms [ 512 ] in
  let config = Configuration.make ~nodes ~vms in
  let config = Configuration.set_state config 0 (Configuration.Running 0) in
  let target = Configuration.set_state config 0 (Configuration.Running 1) in
  let demand = Demand.uniform ~vm_count:1 10 in
  let detour =
    Plan.make
      [
        [ Action.Migrate { vm = 0; src = 0; dst = 2 } ];
        [ Action.Migrate { vm = 0; src = 2; dst = 1 } ];
      ]
  in
  check_bool "Plan.validate accepts the detour" true
    (Plan.validate ~current:config ~target ~demand detour = []);
  let findings = Verifier.verify ~current:config ~target ~demand detour in
  check_bool "verifier flags the off-graph hop" true
    (has
       (function Verifier.Off_graph_action _ -> true | _ -> false)
       findings)

(* -- verifier: figure 10 probe --------------------------------------------- *)

let test_verifier_fig10_probe () =
  match Vworkload.Generator.figure10_instances ~samples:1 ~vm_count:54 () with
  | [] -> Alcotest.fail "generator produced no instance"
  | { Vworkload.Generator.config; demand; vjobs } :: _ ->
    let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
    let target =
      Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config
    in
    let ffd_plan =
      Planner.build_plan ~vjobs ~current:config ~target ~demand ()
    in
    let findings =
      Verifier.verify ~vjobs ~current:config ~target ~demand ffd_plan
    in
    check_bool
      (Fmt.str "FFD plan clean: %s" (pp_findings findings))
      true (findings = []);
    check_int "rederived FFD cost agrees" (Plan.cost config ffd_plan)
      (Verifier.rederive_cost config (Plan.pools ffd_plan));
    (* the optimizer's improved plan must verify clean too *)
    let result =
      Optimizer.optimize ~timeout:0.5 ~vjobs ~current:config ~demand
        ~placed:(List.concat_map Vjob.vms outcome.Rjsp.running)
        ~target_base:outcome.Rjsp.ffd_config
        ~fallback:outcome.Rjsp.ffd_config ()
    in
    let findings =
      Verifier.verify ~vjobs ~current:config ~target:result.Optimizer.target
        ~demand result.Optimizer.plan
    in
    check_bool
      (Fmt.str "optimized plan clean: %s" (pp_findings findings))
      true (findings = []);
    check_int "optimizer cost agrees with the verifier"
      result.Optimizer.cost
      (Verifier.rederive_cost config (Plan.pools result.Optimizer.plan))

(* -- sanitizer: mutations --------------------------------------------------- *)

open Fdcp

let has_s pred findings = List.exists pred findings

let pp_s fs =
  Fmt.str "%a" Fmt.(list ~sep:semi Sanitizer.pp_finding) fs

(* a propagator that narrows a domain behind the store's back: undo
   cannot restore it, the probe's snapshot comparison must notice *)
let test_sanitizer_catches_untrailed_write () =
  let store = Store.create () in
  let x = Store.new_var ~name:"x" store ~lo:0 ~hi:5 in
  let y = Store.new_var ~name:"y" store ~lo:0 ~hi:5 in
  let evil = Prop.make ~name:"evil_untrailed" (fun () -> ()) in
  let narrow (v : Var.t) =
    if Dom.size v.Var.dom > 1 then
      v.Var.dom <- Dom.keep_only (Dom.lo v.Var.dom) v.Var.dom
  in
  evil.Prop.run <-
    (fun () ->
      (* whichever variable the search binds, the other one is narrowed
         behind the store's back *)
      if Dom.is_bound x.Var.dom then narrow y
      else if Dom.is_bound y.Var.dom then narrow x);
  Store.post_on store evil ~on:[ (Prop.On_instantiate, [ x; y ]) ];
  let findings = Sanitizer.probe ~steps:40 ~seed:1 store in
  check_bool
    (Fmt.str "trail corruption found in: %s" (pp_s findings))
    true
    (has_s
       (function Sanitizer.Trail_corruption _ -> true | _ -> false)
       findings)

(* reads a variable it never subscribed to: pruning-relevant state it
   will never be woken on *)
let test_sanitizer_catches_unsubscribed_read () =
  let store = Store.create () in
  let x = Store.new_var ~name:"x" store ~lo:0 ~hi:3 in
  let y = Store.new_var ~name:"y" store ~lo:0 ~hi:3 in
  let peeker = Prop.make ~name:"peeker" (fun () -> ()) in
  peeker.Prop.run <- (fun () -> ignore (Var.lo y));
  Store.post_on store peeker ~on:[ (Prop.On_instantiate, [ x ]) ];
  let findings = Sanitizer.probe ~steps:20 ~seed:2 store in
  check_bool
    (Fmt.str "unsubscribed read found in: %s" (pp_s findings))
    true
    (has_s
       (function
         | Sanitizer.Unsubscribed_read { var = "y"; _ } -> true | _ -> false)
       findings)

(* keeps pruning at the fixpoint: relies on a wake-up it never asked for *)
let test_sanitizer_catches_non_idempotent () =
  let store = Store.create () in
  let x = Store.new_var ~name:"x" store ~lo:0 ~hi:9 in
  let y = Store.new_var ~name:"y" store ~lo:0 ~hi:9 in
  let creep = Prop.make ~name:"creep" (fun () -> ()) in
  creep.Prop.run <-
    (fun () ->
      if Dom.size y.Var.dom > 1 then
        Store.remove_above store y (Dom.hi y.Var.dom - 1));
  Store.post_on store creep ~on:[ (Prop.On_instantiate, [ x ]) ];
  let findings = Sanitizer.probe ~steps:10 ~seed:3 store in
  check_bool
    (Fmt.str "non-idempotence found in: %s" (pp_s findings))
    true
    (has_s
       (function
         | Sanitizer.Non_idempotent { var = "y"; _ } -> true | _ -> false)
       findings)

(* empties a domain without raising Inconsistent *)
let test_sanitizer_catches_silent_wipeout () =
  let store = Store.create () in
  let x = Store.new_var ~name:"x" store ~lo:0 ~hi:3 in
  let y = Store.new_var ~name:"y" store ~lo:0 ~hi:3 in
  let eraser = Prop.make ~name:"eraser" (fun () -> ()) in
  eraser.Prop.run <-
    (fun () -> if Dom.is_bound x.Var.dom then y.Var.dom <- Dom.empty);
  Store.post_on store eraser ~on:[ (Prop.On_instantiate, [ x ]) ];
  let findings = Sanitizer.probe ~steps:20 ~seed:4 store in
  check_bool
    (Fmt.str "silent wipeout found in: %s" (pp_s findings))
    true
    (has_s
       (function
         | Sanitizer.Silent_wipeout { var = "y" } -> true | _ -> false)
       findings)

(* the kernel's own propagators must survive the randomized sweep *)
let test_sanitizer_kernel_clean () =
  let findings = Sanitizer.random_sweep ~models:25 ~steps:25 ~seed:1789 () in
  check_bool
    (Fmt.str "kernel sweep clean: %s" (pp_s findings))
    true (findings = [])

(* -- linter ----------------------------------------------------------------- *)

let pp_l fs = Fmt.str "%a" Linter.pp_report fs

let test_linter_constant_and_unconstrained () =
  let store = Store.create () in
  let _fixed = Store.new_var ~name:"fixed" store ~lo:7 ~hi:7 in
  let _free = Store.new_var ~name:"free" store ~lo:0 ~hi:5 in
  let _const = Store.constant store 3 in
  let findings = Linter.lint store in
  check_bool "posted-fixed variable flagged" true
    (List.exists
       (function
         | Linter.Constant_var { var = "fixed"; value = 7 } -> true
         | _ -> false)
       findings);
  check_bool "unwatched variable flagged" true
    (List.exists
       (function
         | Linter.Unconstrained_var { var = "free" } -> true | _ -> false)
       findings);
  check_bool "Store.constant is exempt" true
    (not
       (List.exists
          (function
            | Linter.Constant_var { value = 3; _ } -> true | _ -> false)
          findings))

let test_linter_duplicate_constraint () =
  let store = Store.create () in
  let x = Store.new_var ~name:"x" store ~lo:0 ~hi:5 in
  let y = Store.new_var ~name:"y" store ~lo:0 ~hi:5 in
  Arith.le store x y;
  Arith.le store x y;
  let findings = Linter.lint store in
  check_bool
    (Fmt.str "duplicate flagged in: %s" (pp_l findings))
    true
    (List.exists
       (function Linter.Duplicate_constraint _ -> true | _ -> false)
       findings);
  (* opposite directions are not duplicates *)
  let store = Store.create () in
  let x = Store.new_var ~name:"x" store ~lo:0 ~hi:5 in
  let y = Store.new_var ~name:"y" store ~lo:0 ~hi:5 in
  let obj = Store.new_var ~name:"obj" store ~lo:0 ~hi:10 in
  Linear.sum_var store [ (1, x); (1, y) ] obj;
  let findings = Linter.lint ~obj store in
  check_bool
    (Fmt.str "objective channeling not a duplicate: %s" (pp_l findings))
    true
    (not
       (List.exists
          (function Linter.Duplicate_constraint _ -> true | _ -> false)
          findings))

let test_linter_dead_and_untouched () =
  let store = Store.create () in
  let x = Store.new_var ~name:"x" store ~lo:0 ~hi:10 in
  let y = Store.new_var ~name:"y" store ~lo:0 ~hi:10 in
  Linear.sum_eq store [ (1, x); (1, y) ] 0;
  let findings = Linter.lint store in
  check_bool
    (Fmt.str "dead propagator flagged in: %s" (pp_l findings))
    true
    (List.exists
       (function Linter.Dead_propagator _ -> true | _ -> false)
       findings);
  (* the lint's propagation must have been undone *)
  check_int "x untouched" 10 (Var.hi x);
  check_int "y untouched" 10 (Var.hi y)

let test_linter_inconsistent_and_unbounded () =
  let store = Store.create () in
  let x = Store.new_var ~name:"x" store ~lo:0 ~hi:5 in
  Linear.sum_le store [ (1, x) ] (-1);
  let findings = Linter.lint store in
  check_bool "root inconsistency flagged" true
    (List.exists
       (function Linter.Inconsistent_model _ -> true | _ -> false)
       findings);
  let store = Store.create () in
  let x = Store.new_var ~name:"x" store ~lo:0 ~hi:5 in
  let obj = Store.new_var ~name:"obj" store ~lo:0 ~hi:10_000_000 in
  Arith.le store x obj;
  let findings = Linter.lint ~obj store in
  check_bool
    (Fmt.str "unbounded objective flagged in: %s" (pp_l findings))
    true
    (List.exists
       (function
         | Linter.Unbounded_objective { var = "obj"; _ } -> true | _ -> false)
       findings)

(* the optimizer's own model must lint clean *)
let test_linter_optimizer_model_clean () =
  let config, demand = fig7 () in
  let vjobs = [ Vjob.make ~id:0 ~name:"job" ~vms:[ 0; 1 ] () ] in
  let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
  let model =
    Optimizer.build_model ~current:config ~demand
      ~placed:(List.concat_map Vjob.vms outcome.Rjsp.running)
      ~target_base:outcome.Rjsp.ffd_config ()
  in
  check_bool "model has placement variables" true
    (Array.length model.Optimizer.hvars > 0);
  let findings = Linter.lint ~obj:model.Optimizer.obj model.Optimizer.store in
  check_bool
    (Fmt.str "optimizer model lints clean: %s" (pp_l findings))
    true (findings = [])

(* -- suite ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ( "verifier",
        [
          Alcotest.test_case "fig7 planner plan clean" `Quick
            test_verifier_fig7_clean;
          Alcotest.test_case "fig8 bypass plan clean" `Quick
            test_verifier_fig8_clean;
          Alcotest.test_case "mid-pool overflow rejected" `Quick
            test_verifier_pool_overflow;
          Alcotest.test_case "lifecycle violation rejected" `Quick
            test_verifier_lifecycle;
          Alcotest.test_case "duplicate action / final state" `Quick
            test_verifier_duplicate_and_final_state;
          Alcotest.test_case "vjob split flagged" `Quick
            test_verifier_vjob_split;
          Alcotest.test_case "stronger than Plan.validate" `Quick
            test_verifier_stronger_than_validate;
          Alcotest.test_case "figure 10 probe verifies clean" `Slow
            test_verifier_fig10_probe;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "untrailed write caught" `Quick
            test_sanitizer_catches_untrailed_write;
          Alcotest.test_case "unsubscribed read caught" `Quick
            test_sanitizer_catches_unsubscribed_read;
          Alcotest.test_case "non-idempotent propagator caught" `Quick
            test_sanitizer_catches_non_idempotent;
          Alcotest.test_case "silent wipeout caught" `Quick
            test_sanitizer_catches_silent_wipeout;
          Alcotest.test_case "kernel survives randomized sweep" `Slow
            test_sanitizer_kernel_clean;
        ] );
      ( "linter",
        [
          Alcotest.test_case "constant and unconstrained vars" `Quick
            test_linter_constant_and_unconstrained;
          Alcotest.test_case "duplicate constraints" `Quick
            test_linter_duplicate_constraint;
          Alcotest.test_case "dead propagator, store untouched" `Quick
            test_linter_dead_and_untouched;
          Alcotest.test_case "inconsistent and unbounded" `Quick
            test_linter_inconsistent_and_unbounded;
          Alcotest.test_case "optimizer model lints clean" `Quick
            test_linter_optimizer_model_clean;
        ] );
    ]
