(* Tests for the switch model checker: exhaustive exploration of a
   derived Fig. 10-style switch, counterexamples on deliberately broken
   plans with ddmin minimization, witness seed-file round trips, replay,
   crash-state coverage and executor conformance. *)

open Entropy_core
module Checker = Entropy_check.Checker
module Invariant = Entropy_check.Invariant
module Witness = Entropy_check.Witness
module Model = Entropy_check.Model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let testbed_nodes n =
  Array.init n (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))

let mk_config ~nodes ~vm_count states =
  let vms =
    Array.init vm_count (fun i ->
        Vm.make ~id:i ~name:(Printf.sprintf "vm%d" i) ~memory_mb:512)
  in
  Configuration.with_states
    (Configuration.make ~nodes:(testbed_nodes nodes) ~vms)
    (Array.of_list states)

(* The generated instance the CLI and CI use: a small viable cluster,
   target and plan derived exactly as [entropyctl check] derives them. *)
let derived ~vms ~nodes ~seed =
  let { Vworkload.Generator.config = source; demand; vjobs } =
    Vworkload.Generator.generate
      {
        Vworkload.Generator.default_spec with
        node_count = nodes;
        vm_target = vms;
        seed;
      }
  in
  let outcome = Rjsp.solve ~rules:[] ~config:source ~demand ~queue:vjobs () in
  let target =
    Rgraph.normalize_sleeping ~current:source outcome.Rjsp.ffd_config
  in
  let plan = Planner.build_plan ~vjobs ~current:source ~target ~demand () in
  (source, target, demand, vjobs, plan)

let has_invariant inv vs =
  List.exists (fun v -> v.Invariant.invariant = inv) vs

(* -- exhaustive verification of a clean switch ----------------------------- *)

let test_exhaustive_clean () =
  let source, target, demand, vjobs, plan = derived ~vms:6 ~nodes:3 ~seed:42 in
  check_bool "plan is non-trivial" true (Plan.action_count plan > 0);
  let limits = { Checker.default_limits with exhaustive = true } in
  let r = Checker.check ~vjobs ~limits ~source ~target ~demand plan in
  check_int "no violations" 0 (List.length r.Checker.violations);
  check_bool "exploration complete" true r.Checker.complete;
  (* every action is idle/in-flight/done independently inside a pool,
     so the reachable state count is exactly 3^pool_size summed over
     barriers; at minimum it dominates 2^actions *)
  check_bool "state space actually explored" true
    (r.Checker.stats.Checker.states > 1 lsl Plan.action_count plan);
  check_bool "crash cuts explored" true
    (r.Checker.stats.Checker.crash_checks > 0);
  check_bool "torn cuts explored" true (r.Checker.stats.Checker.torn_cuts > 0);
  check_bool "executor conformance ran" true
    (r.Checker.stats.Checker.sim_runs > 0)

let test_bounded_clean () =
  let source, target, demand, vjobs, plan = derived ~vms:6 ~nodes:3 ~seed:42 in
  let limits = { Checker.default_limits with depth = 4; sim_runs = 2 } in
  let r = Checker.check ~vjobs ~limits ~source ~target ~demand plan in
  check_int "no violations" 0 (List.length r.Checker.violations)

(* -- counterexamples on broken plans --------------------------------------- *)

(* A migration into a node that cannot hold it: both nodes run one
   150-cpu VM (capacity 200), the plan moves vm0 onto node 1, pushing
   it to 300 with no relative-overload excuse. *)
let overload_instance () =
  let source =
    mk_config ~nodes:2 ~vm_count:2 Configuration.[ Running 0; Running 1 ]
  in
  let target =
    mk_config ~nodes:2 ~vm_count:2 Configuration.[ Running 1; Running 1 ]
  in
  let demand = Demand.uniform ~vm_count:2 150 in
  let plan = Plan.make [ [ Action.Migrate { vm = 0; src = 0; dst = 1 } ] ] in
  (source, target, demand, plan)

let test_capacity_counterexample () =
  let source, target, demand, plan = overload_instance () in
  let limits =
    { Checker.default_limits with exhaustive = true; sim_runs = 0 }
  in
  (* the full catalogue flags it too... *)
  let r = Checker.check ~limits ~source ~target ~demand plan in
  check_bool "capacity violated" true
    (has_invariant Invariant.Capacity r.Checker.violations);
  (* ...and checking capacity alone pins the counterexample to it *)
  let r =
    Checker.check ~invariants:[ Invariant.Capacity ] ~limits ~source ~target
      ~demand plan
  in
  match r.Checker.counterexample with
  | None -> Alcotest.fail "expected a counterexample"
  | Some c ->
    check_bool "counterexample is the capacity violation" true
      (c.Checker.violation.Invariant.invariant = Invariant.Capacity);
    let steps = List.length c.Checker.minimized.Witness.steps in
    check_bool "minimized to at most 5 steps" true (steps <= 5);
    check_bool "minimized witness still reproduces" true
      (match
         Checker.replay
           (Checker.make_ctx ~invariants:[ Invariant.Capacity ] ~source
              ~target ~demand plan)
           c.Checker.minimized
       with
      | Some vs -> has_invariant Invariant.Capacity vs
      | None -> false)

let test_lifecycle_counterexample () =
  (* resuming a VM that is already running is illegal *)
  let source =
    mk_config ~nodes:2 ~vm_count:1 Configuration.[ Running 0 ]
  in
  let target =
    mk_config ~nodes:2 ~vm_count:1 Configuration.[ Running 1 ]
  in
  let demand = Demand.uniform ~vm_count:1 10 in
  let plan = Plan.make [ [ Action.Resume { vm = 0; src = 0; dst = 1 } ] ] in
  let limits =
    { Checker.default_limits with exhaustive = true; sim_runs = 0 }
  in
  let r = Checker.check ~limits ~source ~target ~demand plan in
  check_bool "lifecycle violated" true
    (has_invariant Invariant.Lifecycle r.Checker.violations)

let test_invariant_filter () =
  (* with capacity filtered out, the overloading migration is "clean" *)
  let source, target, demand, plan = overload_instance () in
  let limits =
    { Checker.default_limits with exhaustive = true; sim_runs = 0 }
  in
  let r =
    Checker.check
      ~invariants:[ Invariant.Termination; Invariant.Precedence ]
      ~limits ~source ~target ~demand plan
  in
  check_int "no violations when capacity is not checked" 0
    (List.length r.Checker.violations)

(* -- witnesses ------------------------------------------------------------- *)

let test_witness_roundtrip () =
  let w =
    {
      Witness.steps = [ Witness.Start 2; Witness.Finish 2; Witness.Start 0 ];
      crash = Some { Witness.kept = 1; torn = Some 7 };
    }
  in
  let path = Filename.temp_file "entropy_check" ".json" in
  Witness.to_file path w;
  let w' = Witness.of_file path in
  Sys.remove path;
  check_bool "round-trips through the seed file" true (w = w');
  let no_crash = { w with Witness.crash = None } in
  check_bool "crashless witness round-trips" true
    (Witness.of_json (Witness.to_json no_crash) = no_crash)

let test_witness_malformed () =
  let raises =
    try
      ignore
        (Witness.of_json
           (Entropy_obs.Json.Obj
              [
                ( "steps",
                  Entropy_obs.Json.List
                    [ Entropy_obs.Json.String "sprint:1" ] );
                ("crash", Entropy_obs.Json.Null);
              ]));
      false
    with Witness.Malformed _ -> true
  in
  check_bool "bad step string raises Malformed" true raises

let test_replay_inexecutable () =
  let source, target, demand, plan = overload_instance () in
  let ctx = Checker.make_ctx ~source ~target ~demand plan in
  (* finishing an action that was never started is not executable *)
  let w = { Witness.steps = [ Witness.Finish 0 ]; crash = None } in
  check_bool "inexecutable schedule yields None" true
    (Checker.replay ctx w = None)

let test_replay_clean () =
  let source, target, demand, vjobs, plan = derived ~vms:6 ~nodes:3 ~seed:42 in
  let ctx = Checker.make_ctx ~vjobs ~source ~target ~demand plan in
  (* the canonical schedule: start then finish every action in order *)
  let n = Plan.action_count plan in
  let steps =
    List.concat
      (List.init n (fun i -> [ Witness.Start i; Witness.Finish i ]))
  in
  match Checker.replay ctx { Witness.steps; crash = None } with
  | None -> Alcotest.fail "canonical schedule must be executable"
  | Some vs -> check_int "clean replay" 0 (List.length vs)

(* -- crash exploration ----------------------------------------------------- *)

let test_crash_specs_on_clean_plan () =
  let source, target, demand, vjobs, plan = derived ~vms:6 ~nodes:3 ~seed:42 in
  let ctx = Checker.make_ctx ~vjobs ~source ~target ~demand plan in
  (* run the canonical schedule halfway, then check explicit crash specs *)
  let n = Plan.action_count plan in
  let half = n / 2 in
  let steps =
    List.concat
      (List.init half (fun i -> [ Witness.Start i; Witness.Finish i ]))
    @ [ Witness.Start half ]
  in
  List.iter
    (fun crash ->
      match Checker.replay ctx { Witness.steps; crash = Some crash } with
      | None -> Alcotest.fail "schedule must be executable"
      | Some vs ->
        check_int
          (Printf.sprintf "crash kept=%d clean" crash.Witness.kept)
          0 (List.length vs))
    [ { Witness.kept = 0; torn = None }; { Witness.kept = 1; torn = None } ]

(* -- the model itself ------------------------------------------------------ *)

let test_model_pool_barrier () =
  (* two pools: the second pool's action is not enabled until the first
     pool drains *)
  let source =
    mk_config ~nodes:2 ~vm_count:2 Configuration.[ Running 0; Waiting ]
  in
  let target =
    mk_config ~nodes:2 ~vm_count:2 Configuration.[ Running 1; Running 0 ]
  in
  let demand = Demand.uniform ~vm_count:2 10 in
  let plan =
    Plan.make
      [
        [ Action.Migrate { vm = 0; src = 0; dst = 1 } ];
        [ Action.Run { vm = 1; dst = 0 } ];
      ]
  in
  let ctx = Checker.make_ctx ~source ~target ~demand plan in
  let st0 = Model.init ctx in
  check_bool "only pool-0 starts enabled" true
    (Model.enabled ctx st0 = [ Witness.Start 0 ]);
  let st1, _ = Model.apply ctx st0 (Witness.Start 0) in
  let st2, _ = Model.apply ctx st1 (Witness.Finish 0) in
  check_bool "pool 1 opens after the barrier" true
    (Model.enabled ctx st2 = [ Witness.Start 1 ]);
  let st3, _ = Model.apply ctx st2 (Witness.Start 1) in
  let st4, _ = Model.apply ctx st3 (Witness.Finish 1) in
  check_bool "switch finished" true (Model.finished ctx st4);
  check_bool "no steps left" true (Model.enabled ctx st4 = [])

let test_model_independence () =
  let source, target, demand, plan = overload_instance () in
  let ctx = Checker.make_ctx ~source ~target ~demand plan in
  check_bool "same action does not commute with itself" false
    (Model.independent ctx (Witness.Start 0) (Witness.Finish 0))

(* -- run ------------------------------------------------------------------- *)

let () =
  Alcotest.run "check"
    [
      ( "exploration",
        [
          Alcotest.test_case "exhaustive clean switch" `Quick
            test_exhaustive_clean;
          Alcotest.test_case "bounded clean switch" `Quick test_bounded_clean;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "capacity violation minimized" `Quick
            test_capacity_counterexample;
          Alcotest.test_case "lifecycle violation" `Quick
            test_lifecycle_counterexample;
          Alcotest.test_case "invariant filter" `Quick test_invariant_filter;
        ] );
      ( "witness",
        [
          Alcotest.test_case "seed-file round trip" `Quick
            test_witness_roundtrip;
          Alcotest.test_case "malformed step" `Quick test_witness_malformed;
          Alcotest.test_case "inexecutable replay" `Quick
            test_replay_inexecutable;
          Alcotest.test_case "clean replay" `Quick test_replay_clean;
          Alcotest.test_case "crash specs on a clean plan" `Quick
            test_crash_specs_on_clean_plan;
        ] );
      ( "model",
        [
          Alcotest.test_case "pool barrier" `Quick test_model_pool_barrier;
          Alcotest.test_case "independence" `Quick test_model_independence;
        ] );
    ]
