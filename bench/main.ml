(* Benchmark harness: one Bechamel test per table/figure of the paper,
   plus microbenches of the constraint-solver substrate. Reported times
   are per full regeneration of the artefact's data (at reduced
   parameters — the experiment drivers in bin/ regenerate the real
   series). Run with:  dune exec bench/main.exe -- [flags]

   Flags:
     --only SUBSTR    run only benches whose name contains SUBSTR
     --quota SECONDS  per-bench measurement quota (default 0.8)
     --json FILE      append a run entry to the JSON trajectory file
     --label NAME     label of the JSON entry (default "run")
     --cp-stats       also run one full CP optimisation (fig10, 54 VMs)
                      and record its search statistics in the JSON entry
     --cp-timeout S   timeout of that optimisation (default 10s)

   The JSON file is the bench trajectory: each run appends one entry, so
   successive PRs can compare per-bench ns/run and CP search throughput
   against every previous recording. *)

open Bechamel
open Toolkit
open Entropy_core
module Generator = Vworkload.Generator
module Trace = Vworkload.Trace
module Nasgrid = Vworkload.Nasgrid

(* -- shared fixtures (lazy: only forced when a selected bench needs them) -- *)

let instance54 =
  lazy (Generator.generate { Generator.default_spec with vm_target = 54; seed = 0 })

let instance216 =
  lazy (Generator.generate { Generator.default_spec with vm_target = 216; seed = 0 })

let rjsp_of instance =
  let { Generator.config; demand; vjobs } = instance in
  (config, demand, vjobs, Rjsp.solve ~config ~demand ~queue:vjobs ())

let rjsp54 = lazy (rjsp_of (Lazy.force instance54))
let rjsp216 = lazy (rjsp_of (Lazy.force instance216))

(* placement-engine probe shapes: the CI smoke instance matches the
   Fig. 10 probe used everywhere else (54 VMs / 15 nodes, seed 42); the
   acceptance instance is the dense 216-VM / 54-node cluster at seed 2,
   where CP alone times out solution-less within a 1 s deadline (0
   solutions over ~190k search nodes) while the local-search engines
   improve the FFD plan severalfold *)
let rjsp54_dense =
  lazy
    (rjsp_of
       (Generator.generate
          { Generator.default_spec with node_count = 15; vm_target = 54; seed = 42 }))

let rjsp216_dense =
  lazy
    (rjsp_of
       (Generator.generate
          { Generator.default_spec with node_count = 54; vm_target = 216; seed = 2 }))

let small_traces =
  lazy (List.init 2 (fun i -> Trace.make ~seed:i ~vm_count:4 Nasgrid.Ed Nasgrid.W))

let section52_traces =
  lazy
    (List.init 8 (fun i ->
         let family = List.nth Nasgrid.families (i mod 4) in
         Trace.make ~seed:i ~vm_count:9 family Nasgrid.W))

(* -- bench table (name, thunk); thunks so fixtures stay unforced under
   --only filtering (the runtest smoke invocation must stay cheap) -- *)

let mk name thunk = (name, fun () -> Test.make ~name (Staged.stage thunk))

let bench_table1 () =
  let config, demand, vjobs, outcome = Lazy.force rjsp54 in
  let target = Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config in
  let plan = Planner.build_plan ~vjobs ~current:config ~target ~demand () in
  Test.make ~name:"table1/plan_cost"
    (Staged.stage (fun () -> ignore (Plan.cost config plan)))

let bench_fig10_rjsp () =
  let { Generator.config; demand; vjobs } = Lazy.force instance216 in
  Test.make ~name:"fig10/rjsp_ffd_216vm"
    (Staged.stage (fun () ->
         ignore (Rjsp.solve ~config ~demand ~queue:vjobs ())))

let bench_fig10_plan () =
  let config, demand, vjobs, outcome = Lazy.force rjsp216 in
  let target = Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config in
  Test.make ~name:"fig10/plan_build_216vm"
    (Staged.stage (fun () ->
         ignore (Planner.build_plan ~vjobs ~current:config ~target ~demand ())))

let bench_fig10_optimize () =
  let config, demand, vjobs, outcome = Lazy.force rjsp54 in
  Test.make ~name:"fig10/cp_optimize_54vm"
    (Staged.stage (fun () ->
         ignore
           (Optimizer.optimize ~timeout:10. ~node_limit:300 ~vjobs
              ~current:config ~demand
              ~placed:(List.concat_map Vjob.vms outcome.Rjsp.running)
              ~target_base:outcome.Rjsp.ffd_config
              ~fallback:outcome.Rjsp.ffd_config ())))

let bench_fig11_sim () =
  let traces = Lazy.force small_traces in
  let nodes =
    Array.init 3 (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))
  in
  Test.make ~name:"fig11/entropy_sim_2vjobs"
    (Staged.stage (fun () ->
         ignore (Vsim.Runner.run_entropy ~cp_timeout:0.05 ~nodes ~traces ())))

(* Same instance as fig11/entropy_sim_2vjobs but wired through the fault
   pipeline with an empty injector: the delta between the two benches is
   the cost of supervised execution when no fault model is loaded, which
   must stay within measurement noise. *)
let bench_fault_nofault () =
  let traces = Lazy.force small_traces in
  let nodes =
    Array.init 3 (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))
  in
  let injector = Entropy_fault.Injector.none in
  Test.make ~name:"fault/sim_nofault_2vjobs"
    (Staged.stage (fun () ->
         ignore (Vsim.Runner.run_entropy ~cp_timeout:0.05 ~injector ~nodes ~traces ())))

(* Same instance again with an in-memory write-ahead journal: the delta
   over fault/sim_nofault_2vjobs is the cost of journaling every switch
   record; with no journal loaded (the two benches above) the hooks are
   [None] checks and must cost nothing measurable. *)
let bench_journal_sim () =
  let traces = Lazy.force small_traces in
  let nodes =
    Array.init 3 (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))
  in
  let injector = Entropy_fault.Injector.none in
  Test.make ~name:"journal/sim_journal_2vjobs"
    (Staged.stage (fun () ->
         let journal = Entropy_journal.Journal.mem () in
         ignore
           (Vsim.Runner.run_entropy ~cp_timeout:0.05 ~injector ~journal ~nodes
              ~traces ())))

(* Same journaled run against the file backend with group commit: the
   delta over journal/sim_journal_2vjobs is the real write+fsync cost;
   the acceptance target is this bench within 2x of the journal-off
   fig11 probe. *)
let bench_journal_binary_sim () =
  let traces = Lazy.force small_traces in
  let nodes =
    Array.init 3 (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))
  in
  let injector = Entropy_fault.Injector.none in
  let path = Filename.temp_file "entropy_bench_journal" ".wal" in
  at_exit (fun () -> if Sys.file_exists path then Sys.remove path);
  Test.make ~name:"journal/sim_binary_2vjobs"
    (Staged.stage (fun () ->
         if Sys.file_exists path then Sys.remove path;
         let journal = Entropy_journal.Journal.open_file path in
         ignore
           (Vsim.Runner.run_entropy ~cp_timeout:0.05 ~injector ~journal ~nodes
              ~traces ());
         Entropy_journal.Journal.close journal))

(* Group-commit microbench: append one pool's worth of records (16
   parallel starts, 16 terminal dones, the pool commit) bracketed by a
   switch. Batched uses the default thresholds (starts accumulate,
   terminals flush); unbatched forces a write+flush per record. *)
let journal_flush_records =
  lazy
    (let nodes =
       Array.init 4 (fun i -> Node.testbed ~id:i ~name:(Printf.sprintf "N%d" i))
     in
     let vms =
       Array.init 8 (fun i ->
           Vm.make ~id:i ~name:(Printf.sprintf "vm%02d" i) ~memory_mb:512)
     in
     let config = Configuration.make ~nodes ~vms in
     let actions =
       List.init 16 (fun i ->
           Action.Migrate { vm = i mod 8; src = i mod 4; dst = (i + 1) mod 4 })
     in
     let open Entropy_journal.Record in
     Switch_begin
       {
         switch = 0;
         at_s = 0.;
         source = config;
         target = config;
         plan = Plan.make [ actions ];
         demand = Demand.of_fn ~vm_count:8 (fun _ -> 60);
         seed = None;
       }
     :: List.concat
          [
            List.mapi
              (fun i a ->
                Action_started
                  { switch = 0; pool = 0; attempt = 1; at_s = float_of_int i; action = a })
              actions;
            List.mapi
              (fun i a ->
                Action_done
                  { switch = 0; pool = 0; at_s = 20. +. float_of_int i; action = a })
              actions;
            [
              Pool_committed { switch = 0; pool = 0; at_s = 40. };
              Switch_end { switch = 0; at_s = 40.; aborted = false };
            ];
          ])

let bench_journal_flush ~batched () =
  let records = Lazy.force journal_flush_records in
  let name =
    if batched then "journal/flush_batched" else "journal/flush_unbatched"
  in
  let path = Filename.temp_file "entropy_bench_flush" ".wal" in
  at_exit (fun () -> if Sys.file_exists path then Sys.remove path);
  Test.make ~name
    (Staged.stage (fun () ->
         if Sys.file_exists path then Sys.remove path;
         let j =
           if batched then Entropy_journal.Journal.open_file path
           else Entropy_journal.Journal.open_file ~flush_records:1 path
         in
         List.iter (Entropy_journal.Journal.append j) records;
         Entropy_journal.Journal.close j))

(* Flight-recorder analysis throughput on the acceptance probe: the
   Fig. 10 54-VM / 15-node seed-42 fault-free run journaled in memory
   (one simulation, forced lazily), then timeline reconstruction +
   critical-path attribution over every journaled switch per bench run.
   Acceptance target: < 10 ms, so [entropyctl explain] stays interactive
   on real journals. *)
let flight_records =
  lazy
    (let { Generator.config; demand = _; vjobs } =
       Generator.generate
         { Generator.default_spec with node_count = 15; vm_target = 54; seed = 42 }
     in
     let programs vm =
       [
         Vworkload.Program.Compute
           (240. +. float_of_int (((37 * vm) + 42) mod 480));
       ]
     in
     let journal = Entropy_journal.Journal.mem () in
     ignore
       (Vsim.Runner.run_custom ~cp_timeout:0.25 ~max_time:1e6 ~journal ~config
          ~vjobs ~programs ());
     Entropy_journal.Journal.records journal)

let bench_flight_explain () =
  let records = Lazy.force flight_records in
  Test.make ~name:"flight/explain_54vm"
    (Staged.stage (fun () ->
         let analyses = Entropy_flight.Report.analyze_records records in
         assert (analyses <> [] && List.for_all Entropy_flight.Report.healthy analyses)))

let bench_fig12_static () =
  let traces = Lazy.force section52_traces in
  Test.make ~name:"fig12/static_fcfs_8vjobs"
    (Staged.stage (fun () ->
         ignore
           (Batch.Static_alloc.run ~capacity:11 ~node_cpu:200 ~node_mem:3584
              traces)))

let bench_fig13_series () =
  let traces = Lazy.force section52_traces in
  let run =
    Batch.Static_alloc.run ~capacity:11 ~node_cpu:200 ~node_mem:3584 traces
  in
  Test.make ~name:"fig13/utilization_series"
    (Staged.stage (fun () -> ignore (Batch.Static_alloc.series ~period:30. run)))

let bench_ablation_heuristic name heuristic () =
  let { Generator.config; demand; vjobs } = Lazy.force instance216 in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Rjsp.solve ~heuristic ~config ~demand ~queue:vjobs ())))

let bench_ablation_schedule () =
  let config, demand, vjobs, outcome = Lazy.force rjsp216 in
  let target = Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config in
  let plan = Planner.build_plan ~vjobs ~current:config ~target ~demand () in
  Test.make ~name:"ablation/timed_schedule_216vm"
    (Staged.stage (fun () -> ignore (Schedule.of_plan config plan)))

let bench_ablation_continuous () =
  let config, demand, vjobs, outcome = Lazy.force rjsp216 in
  let target = Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config in
  let plan = Planner.build_plan ~vjobs ~current:config ~target ~demand () in
  Test.make ~name:"ablation/continuous_schedule_216vm"
    (Staged.stage (fun () ->
         ignore (Continuous.schedule ~vjobs ~current:config ~demand ~plan ())))

let bench_ablation_online_rms () =
  let traces = Lazy.force section52_traces in
  let jobs =
    List.mapi
      (fun i t ->
        Batch.Static_alloc.job_of_trace ~node_cpu:200 ~node_mem:3584 ~id:i t)
      traces
  in
  Test.make ~name:"ablation/online_rms_8jobs"
    (Staged.stage (fun () -> ignore (Batch.Rms.simulate ~capacity:11 jobs)))

(* Model-checker throughput probe: bounded exploration of the canonical
   6-VM/3-node instance (fixed state count, so ns_per_run is the inverse
   of check/states_per_sec). A pruning or dedup regression shows up here
   directly as a slower run. *)
let bench_check_states () =
  let instance =
    lazy
      (let { Generator.config = source; demand; vjobs } =
         Generator.generate
           { Generator.default_spec with node_count = 3; vm_target = 6; seed = 42 }
       in
       let outcome = Rjsp.solve ~rules:[] ~config:source ~demand ~queue:vjobs () in
       let target =
         Rgraph.normalize_sleeping ~current:source outcome.Rjsp.ffd_config
       in
       let plan = Planner.build_plan ~vjobs ~current:source ~target ~demand () in
       (source, target, demand, vjobs, plan))
  in
  let limits =
    {
      Entropy_check.Checker.default_limits with
      depth = 4;
      sim_runs = 0;
      crash = false;
    }
  in
  Test.make ~name:"check/states_per_sec"
    (Staged.stage (fun () ->
         let source, target, demand, vjobs, plan = Lazy.force instance in
         let r =
           Entropy_check.Checker.check ~vjobs ~limits ~source ~target ~demand
             plan
         in
         assert (r.Entropy_check.Checker.violations = [])))

(* Local-search inner-loop throughput: 2000 annealing steps (propose,
   delta, Metropolis accept, apply) over the seeded 54-VM state. The
   JSON probe below derives sa_steps_per_sec from a timed run; this
   bench pins the per-step cost against regressions in the incremental
   evaluator. *)
let place_state_of (config, demand, vjobs, outcome) =
  ignore vjobs;
  let placed = List.concat_map Vjob.vms outcome.Rjsp.running in
  let st =
    Entropy_place.State.create ~current:config ~demand ~placed
      ~target_base:outcome.Rjsp.ffd_config ()
  in
  Entropy_place.State.seed_from st outcome.Rjsp.ffd_config;
  st

let bench_place_sa () =
  let st = lazy (place_state_of (Lazy.force rjsp54_dense)) in
  Test.make ~name:"place/sa_2k_steps"
    (Staged.stage (fun () ->
         let st = Lazy.force st in
         ignore
           (Entropy_place.Anneal.run ~seed:7 ~max_steps:2000
              ~deadline:infinity st)))

(* Daemon control-plane overhead: one simulated hour of the
   overload-tolerant event loop — open arrivals with bursts, fault
   injection, the full admission/trigger/ladder machinery — in
   deterministic mode, so the probe measures daemon bookkeeping rather
   than solver wall-clock. ns_per_run is wall time per simulated hour
   of daemon operation. *)
let bench_daemon_soak () =
  let config =
    {
      Entropy_daemon.Daemon.default_config with
      seed = 11;
      nodes = 12;
      submissions = 60;
      fail_rate = 0.05;
      deterministic = true;
      max_time = 3600.;
    }
  in
  Test.make ~name:"daemon/soak_1h"
    (Staged.stage (fun () ->
         let r = Entropy_daemon.Daemon.run config in
         assert r.Entropy_daemon.Daemon.queue_bounded))

let all_tests : (string * (unit -> Test.t)) list =
  [
    mk "fig3/duration_model" (fun () -> ignore (Vsim.Perf_model.figure3_rows ()));
    ("table1/plan_cost", bench_table1);
    mk "fig10/generate_216vm" (fun () ->
        ignore
          (Generator.generate
             { Generator.default_spec with vm_target = 216; seed = 1 }));
    ("fig10/rjsp_ffd_216vm", bench_fig10_rjsp);
    ("fig10/plan_build_216vm", bench_fig10_plan);
    ("fig10/cp_optimize_54vm", bench_fig10_optimize);
    ("fig11/entropy_sim_2vjobs", bench_fig11_sim);
    ("fault/sim_nofault_2vjobs", bench_fault_nofault);
    ("journal/sim_journal_2vjobs", bench_journal_sim);
    ("journal/sim_binary_2vjobs", bench_journal_binary_sim);
    ("journal/flush_batched", bench_journal_flush ~batched:true);
    ("journal/flush_unbatched", bench_journal_flush ~batched:false);
    ("check/states_per_sec", bench_check_states);
    ("flight/explain_54vm", bench_flight_explain);
    ("place/sa_2k_steps", bench_place_sa);
    ("daemon/soak_1h", bench_daemon_soak);
    ("fig12/static_fcfs_8vjobs", bench_fig12_static);
    ("fig13/utilization_series", bench_fig13_series);
    ( "ablation/rjsp_first_fit",
      bench_ablation_heuristic "ablation/rjsp_first_fit" Ffd.First_fit );
    ( "ablation/rjsp_best_fit",
      bench_ablation_heuristic "ablation/rjsp_best_fit" Ffd.Best_fit );
    ( "ablation/rjsp_worst_fit",
      bench_ablation_heuristic "ablation/rjsp_worst_fit" Ffd.Worst_fit );
    ("ablation/timed_schedule_216vm", bench_ablation_schedule);
    ("ablation/continuous_schedule_216vm", bench_ablation_continuous);
    ("ablation/online_rms_8jobs", bench_ablation_online_rms);
    mk "solver/domain_ops" (fun () ->
        let d = ref (Fdcp.Dom.interval 0 199) in
        for v = 0 to 198 do
          d := Fdcp.Dom.remove v !d
        done;
        ignore (Fdcp.Dom.value_exn !d));
    mk "solver/pack_propagation" (fun () ->
        let open Fdcp in
        let s = Store.create () in
        let vars = Array.init 40 (fun _ -> Store.new_var s ~lo:0 ~hi:19) in
        let items = Array.map (fun v -> Pack.item v 3) vars in
        Pack.post s ~items ~capacities:(Array.make 20 6) ();
        Store.propagate s;
        Array.iteri
          (fun i v -> if i < 20 then Store.instantiate s v (i mod 20))
          vars;
        Store.propagate s);
    mk "solver/search_packing" (fun () ->
        let open Fdcp in
        let s = Store.create () in
        let vars = Array.init 16 (fun _ -> Store.new_var s ~lo:0 ~hi:7) in
        let items = Array.mapi (fun i v -> Pack.item v (1 + (i mod 3))) vars in
        Pack.post s ~items ~capacities:(Array.make 8 4) ();
        ignore (Search.find_first s ~vars ()));
    mk "solver/knapsack_dp" (fun () ->
        let open Fdcp in
        let s = Store.create () in
        let sel = Array.init 12 (fun _ -> Store.new_var s ~lo:0 ~hi:1) in
        let sizes = Array.init 12 (fun i -> 3 + (i mod 5)) in
        let load = Store.new_var s ~lo:20 ~hi:30 in
        ignore (Knapsack.post s ~sizes ~selectors:sel ~load);
        Store.propagate s);
  ]

(* -- one-shot CP search-statistics probe (fig10 instance, full timeout) -- *)

type cp_probe = {
  timeout_s : float;
  cost : int;
  improved : bool;
  nodes : int;
  fails : int;
  solutions : int;
  search_elapsed_s : float;
  timed_out : bool;
}

let cp_search_stats ~timeout =
  let config, demand, vjobs, outcome = Lazy.force rjsp54 in
  let r =
    Optimizer.optimize ~timeout ~vjobs ~current:config ~demand
      ~placed:(List.concat_map Vjob.vms outcome.Rjsp.running)
      ~target_base:outcome.Rjsp.ffd_config ~fallback:outcome.Rjsp.ffd_config ()
  in
  let nodes, fails, solutions, search_elapsed_s, timed_out =
    match r.Optimizer.stats with
    | Some s ->
      ( s.Fdcp.Search.nodes,
        s.Fdcp.Search.fails,
        s.Fdcp.Search.solutions,
        s.Fdcp.Search.elapsed,
        s.Fdcp.Search.timed_out )
    | None -> (0, 0, 0, 0., false)
  in
  {
    timeout_s = timeout;
    cost = r.Optimizer.cost;
    improved = r.Optimizer.improved;
    nodes;
    fails;
    solutions;
    search_elapsed_s;
    timed_out;
  }

(* -- one-shot placement-engine probes (BENCH_place.json) ----------------- *)

(* One Portfolio.solve per instance, with the resulting plan re-checked
   by the independent verifier. The 216-VM run also races CP alone under
   the same deadline, recording that it cannot improve on FFD where the
   portfolio does; sa_steps_per_sec is measured on the 54-VM state. *)

type place_run = {
  vms : int;
  p_nodes : int;
  ffd_cost : int;
  best_cost : int;
  winner : string;
  viable : bool;
  run_elapsed_s : float;
}

type place_probe = {
  engine : string;
  deadline_s : float;
  p216 : place_run;
  p216_cp_improved : bool;  (* CP alone, same deadline, beat FFD? *)
  p54 : place_run;
  sa_steps_per_sec : float;
}

let place_run ~engine ~deadline inst =
  let config, demand, vjobs, outcome = inst in
  let placed = List.concat_map Vjob.vms outcome.Rjsp.running in
  let report =
    Entropy_place.Portfolio.solve ~deadline ~engine ~vjobs ~current:config
      ~demand ~placed ~target_base:outcome.Rjsp.ffd_config
      ~fallback:outcome.Rjsp.ffd_config ()
  in
  let r = report.Entropy_place.Portfolio.result in
  {
    vms = List.length placed;
    p_nodes = Configuration.node_count config;
    ffd_cost = report.Entropy_place.Portfolio.ffd_cost;
    best_cost = r.Optimizer.cost;
    winner = report.Entropy_place.Portfolio.winner;
    viable =
      Entropy_analysis.Verifier.is_clean ~vjobs ~current:config
        ~target:r.Optimizer.target ~demand r.Optimizer.plan;
    run_elapsed_s = report.Entropy_place.Portfolio.elapsed;
  }

let place_stats ~engine ~deadline =
  let p216 = place_run ~engine ~deadline (Lazy.force rjsp216_dense) in
  let cp216 = place_run ~engine:`Cp ~deadline (Lazy.force rjsp216_dense) in
  let p54 = place_run ~engine ~deadline (Lazy.force rjsp54_dense) in
  let st = place_state_of (Lazy.force rjsp54_dense) in
  let t0 = Unix.gettimeofday () in
  let sa =
    Entropy_place.Anneal.run ~seed:7 ~deadline:(t0 +. 0.25) st
  in
  let sa_elapsed = Unix.gettimeofday () -. t0 in
  {
    engine = Entropy_place.Portfolio.engine_to_string engine;
    deadline_s = deadline;
    p216;
    p216_cp_improved = cp216.best_cost < cp216.ffd_cost;
    p54;
    sa_steps_per_sec =
      float_of_int sa.Entropy_place.Anneal.steps /. Float.max 1e-9 sa_elapsed;
  }

(* -- JSON trajectory --------------------------------------------------- *)

let place_run_json name r =
  Printf.sprintf
    "\"%s\": { \"vms\": %d, \"nodes\": %d, \"ffd_cost\": %d, \"cost\": %d, \
     \"winner\": %S, \"viable\": %b, \"elapsed_s\": %.3f }"
    name r.vms r.p_nodes r.ffd_cost r.best_cost r.winner r.viable
    r.run_elapsed_s

let json_entry ~label results probe place =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "  { \"label\": %S,\n" label);
  Buffer.add_string b "    \"ns_per_run\": {\n";
  List.iteri
    (fun i (name, ns, _) ->
      Buffer.add_string b
        (Printf.sprintf "      %S: %.1f%s\n" name ns
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string b "    }";
  (match probe with
  | None -> ()
  | Some p ->
    Buffer.add_string b
      (Printf.sprintf
         ",\n\
         \    \"cp_optimize_54vm\": { \"timeout_s\": %g, \"cost\": %d, \
          \"improved\": %b, \"nodes\": %d, \"fails\": %d, \"solutions\": %d, \
          \"search_elapsed_s\": %.3f, \"timed_out\": %b }"
         p.timeout_s p.cost p.improved p.nodes p.fails p.solutions
         p.search_elapsed_s p.timed_out));
  (match place with
  | None -> ()
  | Some p ->
    Buffer.add_string b
      (Printf.sprintf
         ",\n\
         \    \"place\": { \"engine\": %S, \"deadline_s\": %g,\n\
         \      %s,\n\
         \      \"cp_alone_216vm_improved\": %b,\n\
         \      %s,\n\
         \      \"sa_steps_per_sec\": %.0f }"
         p.engine p.deadline_s
         (place_run_json "portfolio_216vm" p.p216)
         p.p216_cp_improved
         (place_run_json "portfolio_54vm" p.p54)
         p.sa_steps_per_sec));
  Buffer.add_string b " }";
  Buffer.contents b

let append_json path entry =
  let prev =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      String.trim s
    end
    else ""
  in
  let content =
    if prev = "" || prev = "[]" then "[\n" ^ entry ^ "\n]\n"
    else
      match String.rindex_opt prev ']' with
      | Some i ->
        String.trim (String.sub prev 0 i) ^ ",\n" ^ entry ^ "\n]\n"
      | None -> "[\n" ^ entry ^ "\n]\n"
  in
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* -- driver ------------------------------------------------------------ *)

let () =
  let json = ref "" in
  let label = ref "run" in
  let only = ref "" in
  let quota = ref 0.8 in
  let cp_stats = ref false in
  let cp_timeout = ref 10. in
  let place_stats_flag = ref false in
  let place_deadline = ref 1.0 in
  let engine = ref "portfolio" in
  let trace = ref "" in
  Arg.parse
    [
      ("--json", Arg.Set_string json, "FILE append a run entry to FILE");
      ("--label", Arg.Set_string label, "NAME label of the JSON entry");
      ("--only", Arg.Set_string only, "SUBSTR run only matching benches");
      ("--quota", Arg.Set_float quota, "SECONDS per-bench quota (default 0.8)");
      ("--cp-stats", Arg.Set cp_stats, " record full CP search statistics");
      ( "--cp-timeout",
        Arg.Set_float cp_timeout,
        "SECONDS CP probe timeout (default 10)" );
      ( "--place-stats",
        Arg.Set place_stats_flag,
        " record placement-engine probes (portfolio vs FFD vs CP alone)" );
      ( "--place-deadline",
        Arg.Set_float place_deadline,
        "SECONDS placement-probe deadline (default 1)" );
      ( "--engine",
        Arg.Set_string engine,
        "ENGINE placement probe engine: cp, anneal or portfolio (default \
         portfolio)" );
      ( "--trace",
        Arg.Set_string trace,
        "FILE record a Chrome trace of the benchmarked code (adds \
         instrumentation overhead: do not trust timings of a traced run)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "dune exec bench/main.exe -- [flags]";
  if !trace <> "" then begin
    Entropy_obs.Obs.enabled := true;
    Entropy_obs.Obs.reset ()
  end;
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    ln = 0
    ||
    let rec go i =
      if i + ln > lh then false
      else if String.sub hay i ln = needle then true
      else go (i + 1)
    in
    go 0
  in
  let selected =
    List.filter (fun (name, _) -> contains name !only) all_tests
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second !quota) ~kde:None () in
  Printf.printf "%-36s%16s%10s\n" "benchmark" "time/run" "r^2";
  let results =
    List.concat_map
      (fun (_, make_test) ->
        let test = make_test () in
        let results = Benchmark.all cfg instances test in
        let analysis = Analyze.all ols Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let time_ns =
              match Analyze.OLS.estimates ols_result with
              | Some (t :: _) -> t
              | _ -> nan
            in
            let r2 =
              match Analyze.OLS.r_square ols_result with
              | Some r -> r
              | None -> nan
            in
            let pretty t =
              if t > 1e9 then Printf.sprintf "%8.2f s " (t /. 1e9)
              else if t > 1e6 then Printf.sprintf "%8.2f ms" (t /. 1e6)
              else if t > 1e3 then Printf.sprintf "%8.2f us" (t /. 1e3)
              else Printf.sprintf "%8.0f ns" t
            in
            Printf.printf "%-36s%16s%10.3f\n%!" name (pretty time_ns) r2;
            (name, time_ns, r2) :: acc)
          analysis [])
      selected
  in
  let results = List.rev results in
  let probe =
    if !cp_stats then begin
      let p = cp_search_stats ~timeout:!cp_timeout in
      Printf.printf
        "cp_optimize_54vm probe: cost=%d nodes=%d fails=%d solutions=%d \
         elapsed=%.3fs timed_out=%b\n\
         %!"
        p.cost p.nodes p.fails p.solutions p.search_elapsed_s p.timed_out;
      Some p
    end
    else None
  in
  let place =
    if !place_stats_flag then begin
      let engine =
        match Entropy_place.Portfolio.engine_of_string !engine with
        | Some e -> e
        | None ->
          raise (Arg.Bad (Printf.sprintf "unknown engine %S" !engine))
      in
      let p = place_stats ~engine ~deadline:!place_deadline in
      Printf.printf
        "place probe (%s, %.1fs): 216vm ffd=%d best=%d winner=%s viable=%b \
         (cp alone improved: %b); 54vm ffd=%d best=%d viable=%b; sa %.0f \
         steps/s\n\
         %!"
        p.engine p.deadline_s p.p216.ffd_cost p.p216.best_cost p.p216.winner
        p.p216.viable p.p216_cp_improved p.p54.ffd_cost p.p54.best_cost
        p.p54.viable p.sa_steps_per_sec;
      Some p
    end
    else None
  in
  if !json <> "" then
    append_json !json (json_entry ~label:!label results probe place);
  if !trace <> "" then begin
    Entropy_obs.Obs.write_trace !trace;
    Printf.printf "trace written to %s (%d events, %d dropped)\n" !trace
      (Entropy_obs.Trace.recorded ())
      (Entropy_obs.Trace.dropped ())
  end
