# Sample cluster description for entropyctl.
#   dune exec bin/entropyctl.exe -- status examples/cluster.ecl
#   dune exec bin/entropyctl.exe -- plan  examples/cluster.ecl
# Nodes: cpu in cores, memory in MB. VM demand in hundredths of a core.

node N0 cpu=2.0 mem=3584
node N1 cpu=2.0 mem=3584
node N2 cpu=2.0 mem=3584

vm web1 mem=512  demand=50  state=running@N0 program=C900
vm web2 mem=512  demand=50  state=running@N0 program=C900
vm db   mem=2048 demand=100 state=running@N0 program=C1200
vm calc1 mem=1024 demand=100 state=waiting program=C600
vm calc2 mem=1024 demand=100 state=waiting program=C600

vjob site vms=web1,web2,db priority=0
vjob hpc  vms=calc1,calc2  priority=1

# keep the web replicas on distinct nodes
rule spread web1,web2
# at most 3 VMs per node on N0 (license)
rule quota - nodes=N0 max=3
