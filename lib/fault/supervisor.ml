(* Supervised action execution policy: per-attempt timeouts derived
   from the Table 1 cost model (timeout = factor x expected duration),
   bounded retries with exponential backoff in simulated time, and
   outcome classification. The supervisor is pure policy — the executor
   owns the clock and calls [next] after each attempt. *)

open Entropy_core

type policy = {
  timeout_factor : float;
  max_retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
}

let default_policy =
  { timeout_factor = 3.; max_retries = 2; backoff_base_s = 5.; backoff_max_s = 60. }

let no_retry =
  { timeout_factor = infinity; max_retries = 0; backoff_base_s = 0.; backoff_max_s = 0. }

let check p =
  if p.timeout_factor <= 0. then
    invalid_arg "Supervisor: timeout_factor must be positive";
  if p.max_retries < 0 then invalid_arg "Supervisor: max_retries < 0";
  if p.backoff_base_s < 0. then invalid_arg "Supervisor: backoff_base_s < 0";
  p

let make_policy ?(timeout_factor = default_policy.timeout_factor)
    ?(max_retries = default_policy.max_retries)
    ?(backoff_base_s = default_policy.backoff_base_s)
    ?(backoff_max_s = default_policy.backoff_max_s) () =
  check { timeout_factor; max_retries; backoff_base_s; backoff_max_s }

let timeout_s p ~expected_s =
  if p.timeout_factor = infinity then infinity
  else p.timeout_factor *. expected_s

let backoff_s p ~attempt =
  if attempt <= 0 then invalid_arg "Supervisor.backoff_s: attempt must be >= 1";
  Float.min p.backoff_max_s
    (p.backoff_base_s *. (2. ** float_of_int (attempt - 1)))

type attempt = Succeeded | Fault_injected | Attempt_timed_out

type outcome =
  | Completed of { retries : int }
  | Failed of { attempts : int }
  | Timed_out of { attempts : int }
  | Node_lost of { node : Node.id }

let next p ~attempts result =
  if attempts <= 0 then invalid_arg "Supervisor.next: attempts must be >= 1";
  match result with
  | Succeeded -> `Done (Completed { retries = attempts - 1 })
  | Fault_injected ->
    if attempts <= p.max_retries then `Retry (backoff_s p ~attempt:attempts)
    else `Done (Failed { attempts })
  | Attempt_timed_out ->
    if attempts <= p.max_retries then `Retry (backoff_s p ~attempt:attempts)
    else `Done (Timed_out { attempts })

let succeeded = function
  | Completed _ -> true
  | Failed _ | Timed_out _ | Node_lost _ -> false

let pp_outcome ppf = function
  | Completed { retries = 0 } -> Fmt.string ppf "ok"
  | Completed { retries } -> Fmt.pf ppf "ok after %d retries" retries
  | Failed { attempts } -> Fmt.pf ppf "failed (%d attempts)" attempts
  | Timed_out { attempts } -> Fmt.pf ppf "timed out (%d attempts)" attempts
  | Node_lost { node } -> Fmt.pf ppf "node N%d lost" node
