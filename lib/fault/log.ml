(* Log source for the fault layer. Enable with e.g.
   [Logs.set_reporter (Logs_fmt.reporter ()); Logs.Src.set_level
   Log.src (Some Logs.Debug)]. *)

let src =
  Logs.Src.create "entropy.fault" ~doc:"Fault injection and plan repair"

include (val Logs.src_log src : Logs.LOG)
