(** Supervised-execution policy: per-attempt timeouts scaled from the
    Table 1 expected duration, bounded retries with exponential backoff
    in simulated time, and outcome classification.

    The supervisor is pure policy; the executor owns the clock. After
    each attempt it calls {!next}, which either schedules a retry after
    a backoff delay or classifies the action's terminal {!outcome}. *)

open Entropy_core

type policy = {
  timeout_factor : float;
      (** an attempt times out after [factor x expected duration];
          [infinity] disables timeouts *)
  max_retries : int;    (** retries after the first attempt *)
  backoff_base_s : float;
  backoff_max_s : float;
}

val default_policy : policy
(** factor 3, 2 retries, 5 s base backoff capped at 60 s. *)

val no_retry : policy
(** Legacy semantics: no timeout, no retries — one failed attempt is
    terminal. *)

val make_policy :
  ?timeout_factor:float -> ?max_retries:int -> ?backoff_base_s:float ->
  ?backoff_max_s:float -> unit -> policy
(** Defaults from {!default_policy}; raises [Invalid_argument] on
    non-positive factor or negative retries/backoff. *)

val timeout_s : policy -> expected_s:float -> float
val backoff_s : policy -> attempt:int -> float
(** Delay before the retry that follows the [attempt]-th failed attempt:
    [base * 2^(attempt-1)], capped at [backoff_max_s]. *)

type attempt = Succeeded | Fault_injected | Attempt_timed_out

type outcome =
  | Completed of { retries : int }
  | Failed of { attempts : int }     (** injected failure, retries spent *)
  | Timed_out of { attempts : int }  (** last attempt exceeded its timeout *)
  | Node_lost of { node : Node.id }
      (** a node involved in the action crashed; never retried *)

val next : policy -> attempts:int -> attempt -> [ `Done of outcome | `Retry of float ]
(** Classify the [attempts]-th attempt (1-based): either the action is
    done with a terminal outcome, or it should be retried after the
    returned backoff delay. *)

val succeeded : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit
