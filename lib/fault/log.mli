(** Log source for the fault layer ([entropy.fault]). *)

val src : Logs.Src.t

include Logs.LOG
