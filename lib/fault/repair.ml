(* Plan repair after a degraded switch.

   Salvage first: freeze every failed VM at its current state
   (Rgraph.salvage_target) and rebuild the plan from the mid-switch
   configuration — re-running the dependency closure over the surviving
   actions. When the salvaged plan is empty, the planner is stuck, or a
   node crashed (the old target still places VMs on it), fall back to an
   immediate FFD-based replan: re-run RJSP over the live queue and plan
   towards its packing. Vjobs that sat on a crashed node have been reset
   to Waiting by the environment, so the replan naturally resubmits
   them. *)

open Entropy_core
module Obs = Entropy_obs.Obs
module Metrics = Entropy_obs.Metrics

let m_salvages = lazy (Metrics.counter "fault.salvages")
let m_replans = lazy (Metrics.counter "fault.replans")

type outcome = {
  source : [ `Salvaged | `Replanned ];
  target : Configuration.t;
  plan : Plan.t;
}

let pp_source ppf = function
  | `Salvaged -> Fmt.string ppf "salvaged"
  | `Replanned -> Fmt.string ppf "replanned"

let salvage ?vjobs ~current ~target ~demand ~failed_vms () =
  let target = Rgraph.normalize_sleeping ~current target in
  let frozen vm = List.mem vm failed_vms in
  let target = Rgraph.salvage_target ~current ~target ~frozen in
  match Planner.build_plan ?vjobs ~current ~target ~demand () with
  | plan when Plan.is_empty plan -> None
  | plan ->
    if !Obs.enabled then Metrics.incr (Lazy.force m_salvages);
    Log.debug (fun m ->
        m "salvaged %d actions around %d frozen VMs"
          (Plan.action_count plan) (List.length failed_vms));
    Some { source = `Salvaged; target; plan }
  | exception ((Planner.Stuck _ | Rgraph.Unreachable _) as e) ->
    Log.debug (fun m -> m "salvage impossible: %s" (Printexc.to_string e));
    None

let ffd_replan ?heuristic ?rules ?vjobs ~config ~demand ~queue () =
  let outcome = Rjsp.solve ?heuristic ?rules ~config ~demand ~queue () in
  let target = Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config in
  match Planner.build_plan ?vjobs ~current:config ~target ~demand () with
  | plan when Plan.is_empty plan -> None
  | plan ->
    if !Obs.enabled then Metrics.incr (Lazy.force m_replans);
    Log.debug (fun m ->
        m "FFD replan: %d running, %d left ready, %d actions"
          (List.length outcome.Rjsp.running)
          (List.length outcome.Rjsp.ready)
          (Plan.action_count plan));
    Some { source = `Replanned; target; plan }
  | exception (Planner.Stuck _ | Rgraph.Unreachable _) -> None

let repair ?heuristic ?rules ?vjobs ~current ~target ~demand ~queue
    ~failed_vms ~lost_nodes () =
  Obs.span ~cat:"fault" ~name:"fault.repair"
    ~args:
      [
        ("failed_vms", Entropy_obs.Trace.I (List.length failed_vms));
        ("lost_nodes", Entropy_obs.Trace.I (List.length lost_nodes));
      ]
    (fun () ->
      if lost_nodes <> [] then
        (* the old target still places VMs on the dead node: only a full
           replan over the shrunk cluster makes sense *)
        ffd_replan ?heuristic ?rules ?vjobs ~config:current ~demand ~queue ()
      else
        match salvage ?vjobs ~current ~target ~demand ~failed_vms () with
        | Some _ as o -> o
        | None ->
          ffd_replan ?heuristic ?rules ?vjobs ~config:current ~demand ~queue ())

type residue = { failed_vms : Vm.id list; lost_nodes : Node.id list }

let no_residue = { failed_vms = []; lost_nodes = [] }
let residue_ok r = r.failed_vms = [] && r.lost_nodes = []

let pp_residue ppf r =
  Fmt.pf ppf "failed VMs %a, lost nodes %a"
    Fmt.(Dump.list int)
    r.failed_vms
    Fmt.(Dump.list int)
    r.lost_nodes

let repair_residue ?heuristic ?rules ?vjobs ~current ~target ~demand ~queue
    residue () =
  repair ?heuristic ?rules ?vjobs ~current ~target ~demand ~queue
    ~failed_vms:residue.failed_vms ~lost_nodes:residue.lost_nodes ()

let resubmission_vjobs config vjobs ~lost_nodes =
  let on_lost vm =
    match Configuration.state config vm with
    | Configuration.Running n
    | Configuration.Sleeping n
    | Configuration.Sleeping_ram n -> List.mem n lost_nodes
    | Configuration.Waiting | Configuration.Terminated -> false
  in
  List.filter (fun vj -> List.exists on_lost (Vjob.vms vj)) vjobs
