(* Deterministic, seeded fault injection. An injector is a list of
   failure models consulted once per action *attempt*: the composed
   decision says whether the attempt fails (state unchanged) and by how
   much it is slowed down. Node crashes are carried by the injector as
   scripted events ([node_crashes]) but enacted by the environment (the
   simulator's cluster), not by [decide].

   Determinism: all randomness comes from one [Random.State] seeded at
   [create]; a rate model draws only when its kind matches, so runs with
   the same seed and the same action-attempt sequence decide
   identically. *)

open Entropy_core

type kind = Run | Stop | Migrate | Suspend | Resume | Suspend_ram | Resume_ram

let kind_of_action = function
  | Action.Run _ -> Run
  | Action.Stop _ -> Stop
  | Action.Migrate _ -> Migrate
  | Action.Suspend _ -> Suspend
  | Action.Resume _ -> Resume
  | Action.Suspend_ram _ -> Suspend_ram
  | Action.Resume_ram _ -> Resume_ram

let kind_to_string = function
  | Run -> "run"
  | Stop -> "stop"
  | Migrate -> "migrate"
  | Suspend -> "suspend"
  | Resume -> "resume"
  | Suspend_ram -> "suspend-ram"
  | Resume_ram -> "resume-ram"

let kind_of_string = function
  | "run" -> Some Run
  | "stop" -> Some Stop
  | "migrate" -> Some Migrate
  | "suspend" -> Some Suspend
  | "resume" -> Some Resume
  | "suspend-ram" -> Some Suspend_ram
  | "resume-ram" -> Some Resume_ram
  | _ -> None

let kind_index = function
  | Run -> 0
  | Stop -> 1
  | Migrate -> 2
  | Suspend -> 3
  | Resume -> 4
  | Suspend_ram -> 5
  | Resume_ram -> 6

let pp_kind ppf k = Fmt.string ppf (kind_to_string k)

type model =
  | Fail_rate of { kind : kind option; rate : float }
  | Fail_nth of { kind : kind; nth : int }
  | Slowdown of { kind : kind option; factor : float }
  | Crash_node of { node : Node.id; at_s : float }
  | Predicate of (Action.t -> bool)

type decision = { fail : bool; slowdown : float }

let proceed = { fail = false; slowdown = 1. }

type t = {
  models : model list;
  seed : int;
  rng : Random.State.t;
  seen : int array;  (* attempts decided so far, per action kind *)
  mutable decisions : int;
}

let check_model = function
  | Fail_rate { rate; _ } when rate < 0. || rate > 1. ->
    invalid_arg "Injector.create: failure rate outside [0,1]"
  | Fail_nth { nth; _ } when nth <= 0 ->
    invalid_arg "Injector.create: nth must be >= 1"
  | Slowdown { factor; _ } when factor < 1. ->
    invalid_arg "Injector.create: slowdown factor < 1"
  | Crash_node { at_s; _ } when at_s < 0. ->
    invalid_arg "Injector.create: crash time < 0"
  | Fail_rate _ | Fail_nth _ | Slowdown _ | Crash_node _ | Predicate _ -> ()

let create ?(seed = 0) models =
  List.iter check_model models;
  {
    models;
    seed;
    rng = Random.State.make [| seed; 0x9e3779b9 |];
    seen = Array.make 7 0;
    decisions = 0;
  }

let none = create []
let of_predicate p = create [ Predicate p ]

(* [none] is a shared value: deriving from it must not alias its mutable
   attempt counters *)
let with_predicate t p =
  if t.models = [] then of_predicate p
  else { t with models = Predicate p :: t.models }
let is_none t = t.models = []
let decided t = t.decisions
let seed t = t.seed

let matches k = function None -> true | Some k' -> k = k'

let decide t action =
  if t.models = [] then proceed
  else begin
    let k = kind_of_action action in
    let i = kind_index k in
    t.seen.(i) <- t.seen.(i) + 1;
    t.decisions <- t.decisions + 1;
    let occurrence = t.seen.(i) in
    List.fold_left
      (fun acc model ->
        match model with
        | Fail_rate { kind; rate } ->
          if matches k kind && Random.State.float t.rng 1. < rate then
            { acc with fail = true }
          else acc
        | Fail_nth { kind; nth } ->
          if kind = k && nth = occurrence then { acc with fail = true }
          else acc
        | Slowdown { kind; factor } ->
          if matches k kind then { acc with slowdown = acc.slowdown *. factor }
          else acc
        | Crash_node _ -> acc
        | Predicate p -> if p action then { acc with fail = true } else acc)
      proceed t.models
  end

let node_crashes t =
  List.filter_map
    (function
      | Crash_node { node; at_s } -> Some (node, at_s)
      | Fail_rate _ | Fail_nth _ | Slowdown _ | Predicate _ -> None)
    t.models

(* Seeded crash schedule for soak runs: [count] distinct nodes crash at
   times drawn uniformly over (0, horizon_s], in time order. A separate
   salt keeps the schedule independent of the attempt-fate stream, so
   the same seed can drive both. *)
let crash_script ?(seed = 0) ~node_count ~horizon_s ~count () =
  if count < 0 then invalid_arg "Injector.crash_script: negative count";
  if count > node_count then
    invalid_arg "Injector.crash_script: more crashes than nodes";
  if horizon_s <= 0. then
    invalid_arg "Injector.crash_script: non-positive horizon";
  let rng = Random.State.make [| seed; 0xc4a5 |] in
  let order = Array.init node_count Fun.id in
  for i = node_count - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  List.init count (fun k ->
      (order.(k), horizon_s *. (1. -. Random.State.float rng 1.)))
  |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
  |> List.map (fun (node, at_s) -> Crash_node { node; at_s })
