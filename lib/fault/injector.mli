(** Deterministic, seeded fault injection.

    An injector composes failure models and is consulted once per action
    {e attempt} (a supervised retry is a fresh attempt): the decision
    says whether the attempt fails and by how much it is slowed down.
    Scripted node crashes ride along in the model list and are read back
    with {!node_crashes}; enacting them (removing capacity, resetting
    vjobs) is the environment's job.

    All randomness comes from one [Random.State] seeded at {!create}:
    the same seed over the same attempt sequence decides identically. *)

open Entropy_core

type kind = Run | Stop | Migrate | Suspend | Resume | Suspend_ram | Resume_ram

val kind_of_action : Action.t -> kind
val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val pp_kind : Format.formatter -> kind -> unit

type model =
  | Fail_rate of { kind : kind option; rate : float }
      (** each matching attempt fails with probability [rate];
          [kind = None] matches every action *)
  | Fail_nth of { kind : kind; nth : int }
      (** the [nth] attempt of that kind (1-based, counted across the
          injector's lifetime) fails *)
  | Slowdown of { kind : kind option; factor : float }
      (** matching attempts take [factor] times their nominal duration *)
  | Crash_node of { node : Node.id; at_s : float }
      (** node [node] permanently crashes at simulated time [at_s] *)
  | Predicate of (Action.t -> bool)
      (** escape hatch: fail exactly the attempts the predicate selects
          (the legacy [?should_fail] hook) *)

type decision = { fail : bool; slowdown : float }

val proceed : decision
(** No failure, nominal speed. *)

type t

val create : ?seed:int -> model list -> t
(** Raises [Invalid_argument] on malformed models (rate outside [0,1],
    non-positive [nth], slowdown factor below 1, negative crash time). *)

val none : t
(** Injects nothing; {!decide} short-circuits to {!proceed}. *)

val of_predicate : (Action.t -> bool) -> t
val with_predicate : t -> (Action.t -> bool) -> t

val is_none : t -> bool

val decide : t -> Action.t -> decision
(** Decide one attempt's fate: failures from any matching model compose
    with [or], slowdown factors multiply. *)

val node_crashes : t -> (Node.id * float) list
(** The scripted [(node, at_s)] crashes, in model order. *)

val crash_script :
  ?seed:int -> node_count:int -> horizon_s:float -> count:int -> unit ->
  model list
(** A seeded soak-run crash schedule: [count] distinct nodes crashing
    at times drawn uniformly over [(0, horizon_s]], returned as
    [Crash_node] models in time order, ready to splice into {!create}'s
    model list. Deterministic in [seed] and independent of the
    attempt-fate stream. Raises [Invalid_argument] when [count] is
    negative or exceeds [node_count], or the horizon is not positive. *)

val decided : t -> int
(** Total attempts decided so far (for tests and reports). *)

val seed : t -> int
(** The seed given at {!create} — journaled with a switch so a resumed
    run can rebuild an identically-behaving injector. *)
