(** Plan repair after a degraded switch: salvage the surviving actions,
    or fall back to an immediate FFD-based replan. *)

open Entropy_core

type outcome = {
  source : [ `Salvaged | `Replanned ];
  target : Configuration.t;  (** where the repaired plan ends *)
  plan : Plan.t;             (** never empty *)
}

val pp_source : Format.formatter -> [ `Salvaged | `Replanned ] -> unit

val salvage :
  ?vjobs:Vjob.t list -> current:Configuration.t -> target:Configuration.t ->
  demand:Demand.t -> failed_vms:Vm.id list -> unit -> outcome option
(** Freeze the failed VMs at their current state
    ({!Rgraph.salvage_target}) and rebuild the plan from the mid-switch
    configuration — the dependency closure over the surviving actions.
    [None] when nothing survives or the planner is stuck. *)

val ffd_replan :
  ?heuristic:Ffd.heuristic -> ?rules:Placement_rules.t list ->
  ?vjobs:Vjob.t list -> config:Configuration.t -> demand:Demand.t ->
  queue:Vjob.t list -> unit -> outcome option
(** Re-run RJSP over the live queue and plan towards its FFD packing.
    [None] when the packing needs no actions or the planner is stuck. *)

val repair :
  ?heuristic:Ffd.heuristic -> ?rules:Placement_rules.t list ->
  ?vjobs:Vjob.t list -> current:Configuration.t -> target:Configuration.t ->
  demand:Demand.t -> queue:Vjob.t list -> failed_vms:Vm.id list ->
  lost_nodes:Node.id list -> unit -> outcome option
(** Salvage when no node was lost, FFD replan otherwise (and as fallback
    when salvage yields nothing). [queue] is the live, unterminated vjob
    list — vjobs reset to Waiting by a node crash resubmit through it. *)

type residue = { failed_vms : Vm.id list; lost_nodes : Node.id list }
(** What a crash-recovery reconciliation could not resolve on its own:
    VMs whose journaled action left them in a state the salvaged plan
    cannot carry forward, and crashed nodes the original target still
    uses. A clean residue means the resumed plan needs no repair. *)

val no_residue : residue
val residue_ok : residue -> bool
val pp_residue : Format.formatter -> residue -> unit

val repair_residue :
  ?heuristic:Ffd.heuristic -> ?rules:Placement_rules.t list ->
  ?vjobs:Vjob.t list -> current:Configuration.t -> target:Configuration.t ->
  demand:Demand.t -> queue:Vjob.t list -> residue -> unit -> outcome option
(** {!repair} driven by a reconciliation residue instead of an in-switch
    execution report. *)

val resubmission_vjobs :
  Configuration.t -> Vjob.t list -> lost_nodes:Node.id list -> Vjob.t list
(** The vjobs with a VM running on — or an image stored on — a lost
    node: the set to reset and resubmit through RJSP. *)
