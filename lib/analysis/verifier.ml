(* Independent plan verifier.

   The optimiser and planner *construct* plans; this module re-checks
   what they emitted without trusting any of their intermediate
   reasoning, in the spirit of certifying the feasibility of an
   allocation rather than the solver that produced it. A plan is
   replayed symbolically, pool by pool, against the source
   configuration, and every paper-level invariant is re-established
   from first principles:

   - mid-pool capacity: the claims of a pool's parallel actions are
     accounted against the pool-start free resources (resources freed
     inside a pool cannot serve claims of the same pool), per resource;
   - life-cycle (Figure 2): each action's transition must be legal from
     the acted VM's current life-cycle state;
   - exact applicability: each action must find its VM in the precise
     state it expects (via [Action.apply]);
   - reconfiguration-graph soundness: each action either matches the
     pending action the reconfiguration graph derives for its VM, or is
     a recognised cycle-breaking step (a bypass migration to a pivot
     node, or a suspend standing in for a blocked migration);
   - no worsened overload: at every pool boundary, no node may exceed
     its capacity by more than it already did in the source
     configuration (so a plan starting from a viable configuration
     keeps every intermediate configuration viable);
   - vjob grouping: all suspends (resp. resumes) of a vjob must sit in
     a single pool (the consistency requirement of section 4.1);
   - termination: the final configuration must be exactly the target;
   - cost: the plan cost is re-derived from the Table 1 model and the
     section 4.2 sequencing rule, independently of [Cost], and compared
     against [Plan.cost].

   Every violation of [Plan.validate] maps to a finding here, so a plan
   with no findings is in particular valid in the [Plan.validate]
   sense. *)

open Entropy_core

type resource = Cpu | Mem

let resource_to_string = function Cpu -> "cpu" | Mem -> "mem"

type finding =
  | Claim_overflow of {
      pool : int;
      action : Action.t;
      node : Node.id;
      resource : resource;
      needed : int;
      available : int;
    }
  | Lifecycle_violation of {
      pool : int;
      action : Action.t;
      state : Lifecycle.state;
    }
  | Invalid_application of { pool : int; action : Action.t; reason : string }
  | Duplicate_vm_action of { pool : int; action : Action.t }
  | Off_graph_action of { pool : int; action : Action.t }
  | Unreachable_target of { pool : int; vm : Vm.id; reason : string }
  | Worsened_overload of {
      pool : int;
      node : Node.id;
      resource : resource;
      load : int;
      capacity : int;
      initial_excess : int;
    }
  | Vjob_split of {
      vjob : string;
      kind : [ `Suspend | `Resume ];
      pools : int list;
    }
  | Wrong_final_state of {
      vm : Vm.id;
      expected : Configuration.vm_state;
      got : Configuration.vm_state;
    }
  | Cost_mismatch of { reported : int; derived : int }
  | Resume_divergence of {
      vm : Vm.id;
      frozen : bool;
      expected : Configuration.vm_state;
      got : Configuration.vm_state;
    }

let pp_finding ppf = function
  | Claim_overflow { pool; action; node; resource; needed; available } ->
    Fmt.pf ppf "pool %d: %a claims %d %s on N%d, only %d free at pool start"
      pool Action.pp action needed
      (resource_to_string resource)
      node available
  | Lifecycle_violation { pool; action; state } ->
    Fmt.pf ppf "pool %d: %a illegal from life-cycle state %a (Fig. 2)" pool
      Action.pp action Lifecycle.pp_state state
  | Invalid_application { pool; action; reason } ->
    Fmt.pf ppf "pool %d: %a cannot apply (%s)" pool Action.pp action reason
  | Duplicate_vm_action { pool; action } ->
    Fmt.pf ppf "pool %d: %a is the second action on its VM in this pool"
      pool Action.pp action
  | Off_graph_action { pool; action } ->
    Fmt.pf ppf
      "pool %d: %a matches no pending reconfiguration-graph action and is \
       no recognised cycle break"
      pool Action.pp action
  | Unreachable_target { pool; vm; reason } ->
    Fmt.pf ppf "pool %d: VM %d's target is unreachable (%s)" pool vm reason
  | Worsened_overload { pool; node; resource; load; capacity; initial_excess }
    ->
    Fmt.pf ppf
      "after pool %d: N%d %s load %d exceeds capacity %d (initial excess \
       was %d)"
      pool node
      (resource_to_string resource)
      load capacity initial_excess
  | Vjob_split { vjob; kind; pools } ->
    Fmt.pf ppf "vjob %s: %ss split across pools %a" vjob
      (match kind with `Suspend -> "suspend" | `Resume -> "resume")
      Fmt.(list ~sep:comma int)
      pools
  | Wrong_final_state { vm; expected; got } ->
    Fmt.pf ppf "VM %d finishes %a, expected %a" vm Configuration.pp_vm_state
      got Configuration.pp_vm_state expected
  | Cost_mismatch { reported; derived } ->
    Fmt.pf ppf "Plan.cost reports %d, independent re-derivation gives %d"
      reported derived
  | Resume_divergence { vm; frozen; expected; got } ->
    Fmt.pf ppf
      "resume: %s VM %d ends %a, %s expects %a"
      (if frozen then "frozen" else "live")
      vm Configuration.pp_vm_state got
      (if frozen then "the observation" else "the original plan")
      Configuration.pp_vm_state expected

(* -- independent cost re-derivation --------------------------------------- *)

(* Table 1, re-stated from the paper rather than imported from [Cost]:
   migrations and suspends manipulate the VM's memory once, a local
   resume once, a remote resume twice (the image moves first); run,
   stop and the RAM variants are memory-independent (cost 0). *)
let table1_action_cost config a =
  let mem = Vm.memory_mb (Configuration.vm config (Action.vm a)) in
  match a with
  | Action.Migrate _ | Action.Suspend _ -> mem
  | Action.Resume { src; dst; _ } -> if src = dst then mem else 2 * mem
  | Action.Run _ | Action.Stop _ | Action.Suspend_ram _ | Action.Resume_ram _
    -> 0

(* Section 4.2: an action pays the duration of every pool executed
   before its own (a pool lasts as long as its longest action) plus its
   own cost; the plan cost sums over all actions. *)
let rederive_cost config pools =
  let elapsed = ref 0 and total = ref 0 in
  List.iter
    (fun pool ->
      let longest = ref 0 in
      List.iter
        (fun a ->
          let c = table1_action_cost config a in
          total := !total + !elapsed + c;
          if c > !longest then longest := c)
        pool;
      elapsed := !elapsed + !longest)
    pools;
  !total

(* -- replay ---------------------------------------------------------------- *)

(* Whether [a] is a sound stand-in for the graph's pending action
   [pending] on the same VM: a bypass migration moves the VM from its
   pending source to a pivot node instead of the final destination; a
   suspend on the pending source breaks a migration cycle through the
   disk. Both leave a pending action that a later pool must consume,
   and both are only justified when the direct action is infeasible at
   pool start — otherwise the detour is an unsound extra hop. *)
let sound_cycle_break config demand a pending =
  match (a, pending) with
  | ( Action.Migrate { vm; src; dst },
      Some (Action.Migrate { vm = vm'; src = src'; dst = dst' } as direct) )
    ->
    vm = vm' && src = src' && dst <> dst'
    && not (Action.feasible config demand direct)
  | ( Action.Suspend { vm; host },
      Some (Action.Migrate { vm = vm'; src; _ } as direct) ) ->
    vm = vm' && host = src && not (Action.feasible config demand direct)
  | _ -> false

let check_vjob_grouping note pools vjobs =
  let pool_arr = Array.of_list pools in
  List.iter
    (fun vjob ->
      let vms = Vjob.vms vjob in
      let pools_matching pred =
        let found = ref [] in
        Array.iteri
          (fun i pool -> if List.exists pred pool then found := i :: !found)
          pool_arr;
        List.rev !found
      in
      let check kind pred =
        match pools_matching pred with
        | [] | [ _ ] -> ()
        | pools -> note (Vjob_split { vjob = Vjob.name vjob; kind; pools })
      in
      check `Suspend (function
        | Action.Suspend { vm; _ } | Action.Suspend_ram { vm; _ } ->
          List.mem vm vms
        | _ -> false);
      check `Resume (function
        | Action.Resume { vm; _ } | Action.Resume_ram { vm; _ } ->
          List.mem vm vms
        | _ -> false))
    vjobs

let verify ?(vjobs = []) ~current ~target ~demand plan =
  let findings = ref [] in
  let note f = findings := f :: !findings in
  let target = Rgraph.normalize_sleeping ~current target in
  let n = Configuration.node_count current in
  let init_cpu, init_mem = Configuration.loads current demand in
  let cap_cpu =
    Array.init n (fun i -> Node.cpu_capacity (Configuration.node current i))
  in
  let cap_mem =
    Array.init n (fun i -> Node.memory_mb (Configuration.node current i))
  in
  let replay_pool config pool_idx pool_actions =
    let claimed_cpu = Array.make n 0 and claimed_mem = Array.make n 0 in
    let seen_vms = Hashtbl.create 16 in
    List.iter
      (fun a ->
        let vm = Action.vm a in
        (* one action per VM per pool: two parallel actions on the same
           VM can never both find it in their expected state *)
        if Hashtbl.mem seen_vms vm then
          note (Duplicate_vm_action { pool = pool_idx; action = a })
        else Hashtbl.replace seen_vms vm ();
        (* Figure 2 life-cycle precondition *)
        let lstate = Configuration.lifecycle config vm in
        if not (Lifecycle.can lstate (Action.transition a)) then
          note
            (Lifecycle_violation { pool = pool_idx; action = a; state = lstate });
        (* reconfiguration-graph soundness, evaluated at pool start *)
        (match Rgraph.action_for ~current:config ~target vm with
        | pending ->
          let on_graph =
            match pending with Some p -> Action.equal a p | None -> false
          in
          if not (on_graph || sound_cycle_break config demand a pending) then
            note (Off_graph_action { pool = pool_idx; action = a })
        | exception Rgraph.Unreachable reason ->
          note (Unreachable_target { pool = pool_idx; vm; reason }));
        (* simultaneous feasibility against pool-start free resources *)
        match Action.claim config demand a with
        | None -> ()
        | Some (dst, cpu, mem) ->
          if dst < 0 || dst >= n then
            note
              (Invalid_application
                 {
                   pool = pool_idx;
                   action = a;
                   reason = Printf.sprintf "unknown node %d" dst;
                 })
          else begin
            let free_cpu =
              Configuration.free_cpu config demand dst - claimed_cpu.(dst)
            in
            let free_mem =
              Configuration.free_mem config dst - claimed_mem.(dst)
            in
            if cpu > free_cpu then
              note
                (Claim_overflow
                   {
                     pool = pool_idx;
                     action = a;
                     node = dst;
                     resource = Cpu;
                     needed = cpu;
                     available = free_cpu;
                   });
            if mem > free_mem then
              note
                (Claim_overflow
                   {
                     pool = pool_idx;
                     action = a;
                     node = dst;
                     resource = Mem;
                     needed = mem;
                     available = free_mem;
                   });
            if cpu <= free_cpu && mem <= free_mem then begin
              claimed_cpu.(dst) <- claimed_cpu.(dst) + cpu;
              claimed_mem.(dst) <- claimed_mem.(dst) + mem
            end
          end)
      pool_actions;
    (* sequential application, tolerating invalid actions (reported) *)
    let config' =
      List.fold_left
        (fun cfg a ->
          try Action.apply cfg a
          with Action.Invalid reason ->
            note (Invalid_application { pool = pool_idx; action = a; reason });
            cfg)
        config pool_actions
    in
    (* pool-boundary loads: no node may be worse off than it started *)
    let cpu_load, mem_load = Configuration.loads config' demand in
    for node = 0 to n - 1 do
      let check resource load cap init_load =
        let initial_excess = max 0 (init_load - cap) in
        if load - cap > initial_excess then
          note
            (Worsened_overload
               {
                 pool = pool_idx;
                 node;
                 resource;
                 load;
                 capacity = cap;
                 initial_excess;
               })
      in
      check Cpu cpu_load.(node) cap_cpu.(node) init_cpu.(node);
      check Mem mem_load.(node) cap_mem.(node) init_mem.(node)
    done;
    config'
  in
  let pools = Plan.pools plan in
  let final =
    List.fold_left
      (fun (config, idx) pool -> (replay_pool config idx pool, idx + 1))
      (current, 0) pools
    |> fst
  in
  for vm = 0 to Configuration.vm_count target - 1 do
    let expected = Configuration.state target vm in
    let got = Configuration.state final vm in
    if not (Configuration.equal_vm_state expected got) then
      note (Wrong_final_state { vm; expected; got })
  done;
  check_vjob_grouping note pools vjobs;
  let reported = Plan.cost current plan in
  let derived = rederive_cost current pools in
  if reported <> derived then note (Cost_mismatch { reported; derived });
  List.rev !findings

let is_clean ?vjobs ~current ~target ~demand plan =
  verify ?vjobs ~current ~target ~demand plan = []

let cost_cross_check current plan =
  (Plan.cost current plan, rederive_cost current (Plan.pools plan))

(* -- crash-resume equivalence ---------------------------------------------- *)

(* Where the original plan would have left every VM, replayed action by
   action from the journaled source. Invalid applications are skipped
   (tolerating odd journals) — the per-VM end state is what matters
   here, full applicability is the main verifier's job. *)
let original_final ~source plan =
  List.fold_left
    (fun config a ->
      try Action.apply config a with Action.Invalid _ -> config)
    source (Plan.actions plan)

let verify_resume ?vjobs ~source ~original ~observed ~target ~frozen ~demand
    plan =
  let base = verify ?vjobs ~current:observed ~target ~demand plan in
  let final = original_final ~source original in
  let divergences =
    List.init (Configuration.vm_count observed) Fun.id
    |> List.filter_map (fun vm ->
           let is_frozen = List.mem vm frozen in
           (* a frozen VM must stay exactly where it was observed; a
              live VM must end where the original plan would have put
              it — together: resume plan + executed prefix is
              semantically the original switch *)
           let expected =
             if is_frozen then Configuration.state observed vm
             else Configuration.state final vm
           in
           let got = Configuration.state target vm in
           if Configuration.equal_vm_state expected got then None
           else
             Some (Resume_divergence { vm; frozen = is_frozen; expected; got }))
  in
  base @ divergences

let pp_report ppf findings =
  match findings with
  | [] -> Fmt.pf ppf "plan verified: no findings"
  | fs ->
    Fmt.pf ppf "@[<v>%d finding(s):@,%a@]" (List.length fs)
      (Fmt.list ~sep:Fmt.cut (fun ppf f -> Fmt.pf ppf "- %a" pp_finding f))
      fs
