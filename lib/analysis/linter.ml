(* Pre-search lint of a posted CP model.

   None of these findings makes a model wrong — they make a search
   slower or betray an encoding mistake upstream (a decision variable
   the caller accidentally fixed, the same constraint posted twice, an
   objective left effectively unbounded). The linter reads the store's
   variables and their watcher lists; the only mutation is one
   propagation to the root fixpoint, which is undone before return. *)

open Fdcp

type finding =
  | Inconsistent_model of { message : string }
  | Constant_var of { var : string; value : int }
  | Unconstrained_var of { var : string }
  | Duplicate_constraint of { name : string; other : string; vars : string list }
  | Dead_propagator of { prop : string }
  | Unbounded_objective of { var : string; lo : int; hi : int }

let pp_finding ppf = function
  | Inconsistent_model { message } ->
    Fmt.pf ppf "model is inconsistent before search: %s" message
  | Constant_var { var; value } ->
    Fmt.pf ppf "decision variable %s was posted already fixed to %d" var value
  | Unconstrained_var { var } ->
    Fmt.pf ppf "variable %s has no propagator watching it" var
  | Duplicate_constraint { name; other; vars } ->
    Fmt.pf ppf "%s duplicates %s (same subscriptions on %a)" name other
      Fmt.(list ~sep:comma string)
      vars
  | Dead_propagator { prop } ->
    Fmt.pf ppf
      "%s can never wake again: all its watched variables are fixed at the \
       root fixpoint"
      prop
  | Unbounded_objective { var; lo; hi } ->
    Fmt.pf ppf
      "objective %s spans [%d, %d]: too wide to enumerate, branch & bound \
       will tighten bounds only"
      var lo hi

(* [Store.constant] names its variables "const<v>": fixing those is the
   caller's stated intent, not an accident. *)
let is_intentional_constant (v : Var.t) =
  String.length v.Var.name >= 5 && String.sub v.Var.name 0 5 = "const"

let lint ?obj store =
  let findings = ref [] in
  let note f = findings := f :: !findings in
  let vars = Store.vars store in
  (* pre-propagation state: a variable bound here was posted fixed *)
  List.iter
    (fun (v : Var.t) ->
      if Dom.is_bound v.Var.dom && not (is_intentional_constant v) then
        note
          (Constant_var { var = Var.name v; value = Dom.value_exn v.Var.dom }))
    vars;
  List.iter
    (fun (v : Var.t) ->
      if v.Var.watchers = [] && not (Dom.is_bound v.Var.dom) then
        note (Unconstrained_var { var = Var.name v }))
    vars;
  (* duplicate subscriptions: same propagator name, same (var, mask)
     watch set — the second run can only repeat the first's work *)
  let sig_of = Hashtbl.create 32 in
  List.iter
    (fun (v : Var.t) ->
      List.iter
        (fun (mask, (p : Prop.t)) ->
          let entry =
            match Hashtbl.find_opt sig_of p.Prop.id with
            | Some (_, watches) -> watches
            | None -> []
          in
          Hashtbl.replace sig_of p.Prop.id (p, (v.Var.id, mask) :: entry))
        v.Var.watchers)
    vars;
  let name_of_var =
    let tbl = Hashtbl.create 32 in
    List.iter (fun (v : Var.t) -> Hashtbl.replace tbl v.Var.id (Var.name v)) vars;
    fun id -> try Hashtbl.find tbl id with Not_found -> Printf.sprintf "v%d" id
  in
  let props =
    Hashtbl.fold (fun _ (p, watches) acc -> (p, watches) :: acc) sig_of []
    |> List.sort (fun ((a : Prop.t), _) ((b : Prop.t), _) ->
           Int.compare a.Prop.id b.Prop.id)
  in
  let by_signature = Hashtbl.create 32 in
  List.iter
    (fun ((p : Prop.t), watches) ->
      let signature = (p.Prop.name, List.sort compare watches) in
      match Hashtbl.find_opt by_signature signature with
      | Some (first : Prop.t) ->
        note
          (Duplicate_constraint
             {
               name = Fmt.str "%a" Prop.pp p;
               other = Fmt.str "%a" Prop.pp first;
               vars =
                 List.map (fun (id, _) -> name_of_var id) watches
                 |> List.sort_uniq compare;
             })
      | None -> Hashtbl.replace by_signature signature p)
    props;
  (* root fixpoint for the propagation-dependent lints; undone before
     returning so the caller's store is untouched *)
  let m = Store.mark store in
  let var_by_id = Hashtbl.create 32 in
  List.iter (fun (v : Var.t) -> Hashtbl.replace var_by_id v.Var.id v) vars;
  (match Store.propagate store with
  | () ->
    List.iter
      (fun ((p : Prop.t), watches) ->
        let all_fixed =
          List.for_all
            (fun (id, _) ->
              match Hashtbl.find_opt var_by_id id with
              | Some (v : Var.t) -> Dom.is_bound v.Var.dom
              | None -> true)
            watches
        in
        if all_fixed && watches <> [] then
          note (Dead_propagator { prop = Fmt.str "%a" Prop.pp p }))
      props;
    (match obj with
    | Some (o : Var.t) ->
      if not (Dom.enumerable o.Var.dom) then
        note
          (Unbounded_objective
             { var = Var.name o; lo = Dom.lo o.Var.dom; hi = Dom.hi o.Var.dom })
    | None -> ())
  | exception Store.Inconsistent message ->
    note (Inconsistent_model { message }));
  Store.undo_to store m;
  List.rev !findings

let pp_report ppf findings =
  match findings with
  | [] -> Fmt.pf ppf "model lint: no findings"
  | fs ->
    Fmt.pf ppf "@[<v>%d lint finding(s):@,%a@]" (List.length fs)
      (Fmt.list ~sep:Fmt.cut (fun ppf f -> Fmt.pf ppf "- %a" pp_finding f))
      fs
