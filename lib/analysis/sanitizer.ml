(* Propagator sanitizer for the hand-rolled CP kernel (lib/cp).

   The kernel trusts its propagators on four contracts that nothing
   enforced until now:

   - trail safety: every domain narrowing and every trailed int cell is
     restored exactly by [Store.undo_to] — a propagator mutating a
     domain behind the store's back (or keeping untrailed incremental
     state) drifts from the search tree;
   - idempotence at fixpoint: once [Store.propagate] returns, re-running
     any propagator must not prune further — if it does, the propagator
     silently relied on a wake-up it never subscribed to;
   - no silent wipeout: an empty domain must surface as
     [Store.Inconsistent], never as a dead store;
   - subscription soundness: a propagator must only read variables it
     subscribed to — an unsubscribed read is pruning-relevant state the
     propagator will never be woken on.

   The checks are behavioural: the probe drives a posted model through
   randomized mark / instantiate / propagate / undo cycles (exactly the
   cycle the search performs) and compares full domain snapshots. A
   descent is replayed twice from the same mark: any divergence proves
   hidden state that backtracking did not restore, which catches
   trailed-cell corruption even though propagator internals are not
   observable. Reads are tracked through [Var.read_hook], scoped to
   each propagator run. *)

open Fdcp

type finding =
  | Trail_corruption of { var : string; before : string; after : string }
  | Non_idempotent of { prop : string; var : string; before : string; after : string }
  | Late_failure of { prop : string; message : string }
  | Silent_wipeout of { var : string }
  | Unsubscribed_read of { prop : string; var : string }
  | Replay_divergence of { var : string; first : string; second : string }

let pp_finding ppf = function
  | Trail_corruption { var; before; after } ->
    Fmt.pf ppf "trail corruption: %s was %s before the descent, %s after undo"
      var before after
  | Non_idempotent { prop; var; before; after } ->
    Fmt.pf ppf "%s not idempotent at fixpoint: re-run narrowed %s from %s to %s"
      prop var before after
  | Late_failure { prop; message } ->
    Fmt.pf ppf "%s fails when re-run at a consistent fixpoint: %s" prop message
  | Silent_wipeout { var } ->
    Fmt.pf ppf "silent wipeout: %s is empty but propagate returned normally"
      var
  | Unsubscribed_read { prop; var } ->
    Fmt.pf ppf "%s reads %s without any subscription on it" prop var
  | Replay_divergence { var; first; second } ->
    Fmt.pf ppf "replaying the same descent diverged on %s: %s then %s" var
      first second

let dom_str d = Fmt.str "%a" Dom.pp d

(* -- propagator discovery -------------------------------------------------- *)

module Int_set = Set.Make (Int)

(* Every propagator reachable from the store's variables, with the set
   of variable ids it subscribed to. *)
let discover vars =
  let by_id = Hashtbl.create 32 in
  List.iter
    (fun (v : Var.t) ->
      List.iter
        (fun (_mask, (p : Prop.t)) ->
          let subs =
            match Hashtbl.find_opt by_id p.Prop.id with
            | Some (_, subs) -> subs
            | None -> Int_set.empty
          in
          Hashtbl.replace by_id p.Prop.id (p, Int_set.add v.Var.id subs))
        v.Var.watchers)
    vars;
  Hashtbl.fold (fun _ pv acc -> pv :: acc) by_id []
  |> List.sort (fun ((a : Prop.t), _) ((b : Prop.t), _) ->
         Int.compare a.Prop.id b.Prop.id)

(* -- the probe ------------------------------------------------------------- *)

type outcome = Solved of Dom.t array | Failed of string

let outcome_equal a b =
  match (a, b) with
  | Solved x, Solved y ->
    Array.length x = Array.length y
    &&
    let ok = ref true in
    Array.iteri (fun i d -> if not (Dom.equal d y.(i)) then ok := false) x;
    !ok
  | Failed x, Failed y -> x = y
  | Solved _, Failed _ | Failed _, Solved _ -> false

let probe ?(steps = 40) ?(seed = 0) store =
  let rng = Random.State.make [| 0x5a17; seed |] in
  let findings = ref [] in
  let noted = Hashtbl.create 16 in
  (* findings repeat along a probe; keep the first of each shape *)
  let note key f =
    if not (Hashtbl.mem noted key) then begin
      Hashtbl.replace noted key ();
      findings := f :: !findings
    end
  in
  let vars = Array.of_list (Store.vars store) in
  let props = discover (Array.to_list vars) in
  (* read tracking, scoped to each propagator's run *)
  let originals = List.map (fun ((p : Prop.t), _) -> (p, p.Prop.run)) props in
  List.iter
    (fun ((p : Prop.t), subs) ->
      let orig = p.Prop.run in
      p.Prop.run <-
        (fun () ->
          let saved = !Var.read_hook in
          Var.read_hook :=
            Some
              (fun v ->
                if not (Int_set.mem v.Var.id subs) then
                  note
                    ("read", p.Prop.name, p.Prop.id, v.Var.id)
                    (Unsubscribed_read
                       { prop = Fmt.str "%a" Prop.pp p; var = Var.name v }));
          Fun.protect
            ~finally:(fun () -> Var.read_hook := saved)
            orig))
    props;
  let snapshot () = Array.map (fun (v : Var.t) -> v.Var.dom) vars in
  let check_wipeout () =
    Array.iter
      (fun (v : Var.t) ->
        if Dom.is_empty v.Var.dom then
          note ("wipeout", "", 0, v.Var.id)
            (Silent_wipeout { var = Var.name v }))
      vars
  in
  let compare_snapshots kind before after =
    Array.iteri
      (fun i d ->
        if not (Dom.equal d after.(i)) then begin
          let v = vars.(i) in
          match kind with
          | `Trail ->
            note ("trail", "", 0, v.Var.id)
              (Trail_corruption
                 {
                   var = Var.name v;
                   before = dom_str d;
                   after = dom_str after.(i);
                 })
          | `Replay ->
            note ("replay", "", 0, v.Var.id)
              (Replay_divergence
                 {
                   var = Var.name v;
                   first = dom_str d;
                   second = dom_str after.(i);
                 })
        end)
      before
  in
  (* idempotence: at a consistent fixpoint, re-scheduling any single
     propagator must neither prune nor fail *)
  let check_idempotence () =
    List.iter
      (fun ((p : Prop.t), _) ->
        let before = snapshot () in
        let m = Store.mark store in
        Store.schedule store p;
        (match Store.propagate store with
        | () ->
          let after = snapshot () in
          Array.iteri
            (fun i d ->
              if not (Dom.equal d after.(i)) then
                note ("idem", p.Prop.name, p.Prop.id, vars.(i).Var.id)
                  (Non_idempotent
                     {
                       prop = Fmt.str "%a" Prop.pp p;
                       var = Var.name vars.(i);
                       before = dom_str d;
                       after = dom_str after.(i);
                     }))
            before
        | exception Store.Inconsistent message ->
          note ("late", p.Prop.name, p.Prop.id, 0)
            (Late_failure { prop = Fmt.str "%a" Prop.pp p; message }));
        Store.undo_to store m)
      props
  in
  let propagate_outcome () =
    match Store.propagate store with
    | () ->
      check_wipeout ();
      Solved (snapshot ())
    | exception Store.Inconsistent m -> Failed m
  in
  let unbound () =
    (* strictly more than one value: empty domains (a detected silent
       wipeout) are not probed further *)
    Array.to_list vars
    |> List.filter (fun (v : Var.t) -> Dom.size v.Var.dom > 1)
  in
  let random_value rng (v : Var.t) =
    let d = v.Var.dom in
    if Dom.enumerable d then begin
      let values = Dom.to_list d in
      List.nth values (Random.State.int rng (List.length values))
    end
    else Dom.lo d + Random.State.int rng (Dom.hi d - Dom.lo d + 1)
  in
  (* root fixpoint *)
  (match propagate_outcome () with
  | Failed _ -> () (* inconsistent model: nothing further to probe *)
  | Solved _ ->
    (* committed descents below are undone here, leaving the store at
       the root fixpoint as documented *)
    let root = Store.mark store in
    check_idempotence ();
    let steps_left = ref steps in
    let misses = ref 0 in
    let continue = ref true in
    while !continue && !steps_left > 0 && !misses < 8 do
      decr steps_left;
      match unbound () with
      | [] -> continue := false
      | candidates ->
        let v =
          List.nth candidates (Random.State.int rng (List.length candidates))
        in
        let x = random_value rng v in
        let pre = snapshot () in
        let m = Store.mark store in
        let descend () =
          match
            Store.instantiate store v x;
            Store.propagate store
          with
          | () ->
            check_wipeout ();
            Solved (snapshot ())
          | exception Store.Inconsistent msg -> Failed msg
        in
        let first = descend () in
        Store.undo_to store m;
        compare_snapshots `Trail pre (snapshot ());
        let second = descend () in
        Store.undo_to store m;
        compare_snapshots `Trail pre (snapshot ());
        if not (outcome_equal first second) then begin
          match (first, second) with
          | Solved a, Solved b ->
            compare_snapshots `Replay a b
          | (Failed m1, Failed m2) ->
            note ("replaymsg", "", 0, 0)
              (Replay_divergence
                 { var = "(failure)"; first = m1; second = m2 })
          | Solved _, Failed m2 ->
            note ("replayout", "", 0, 0)
              (Replay_divergence
                 { var = "(outcome)"; first = "solved"; second = m2 })
          | Failed m1, Solved _ ->
            note ("replayout", "", 0, 0)
              (Replay_divergence
                 { var = "(outcome)"; first = m1; second = "solved" })
        end;
        (match first with
        | Solved _ ->
          (* commit the step and keep descending *)
          (match descend () with
          | Solved _ -> check_idempotence ()
          | Failed _ ->
            (* diverged on the third replay: already a divergence *)
            note ("replayout", "", 0, 0)
              (Replay_divergence
                 {
                   var = "(outcome)";
                   first = "solved";
                   second = "failed on commit";
                 });
            continue := false)
        | Failed _ -> incr misses)
    done;
    Store.undo_to store root);
  (* restore the original (unwrapped) propagator closures *)
  List.iter (fun ((p : Prop.t), orig) -> p.Prop.run <- orig) originals;
  List.rev !findings

(* -- randomized models ----------------------------------------------------- *)

(* A small random CSP touching every propagator family of the kernel.
   Everything is driven by the seeded [rng], so a sweep is reproducible
   bit for bit. *)
let random_model rng =
  let store = Store.create () in
  let nvars = 3 + Random.State.int rng 4 in
  let hi () = 3 + Random.State.int rng 6 in
  let vars =
    Array.init nvars (fun i ->
        Store.new_var ~name:(Printf.sprintf "x%d" i) store ~lo:0 ~hi:(hi ()))
  in
  let pick () = vars.(Random.State.int rng nvars) in
  let post_one () =
    match Random.State.int rng 10 with
    | 0 -> Arith.le store (pick ()) (pick ())
    | 1 -> Arith.lt store (pick ()) (pick ())
    | 2 -> Arith.eq_offset store (pick ()) (pick ()) (Random.State.int rng 3 - 1)
    | 3 -> Arith.neq store (pick ()) (pick ())
    | 4 ->
      let table = Array.init 6 (fun _ -> Random.State.int rng 8) in
      let x = pick () and y = pick () in
      if x.Var.id <> y.Var.id then Element.post store x table y
    | 5 -> Alldiff.post store [ pick (); pick (); pick () ]
    | 6 ->
      Count.at_most store
        [| pick (); pick (); pick () |]
        ~value:(Random.State.int rng 4)
        ~count:(1 + Random.State.int rng 2)
    | 7 ->
      let x = pick () and y = pick () in
      if x.Var.id <> y.Var.id then begin
        let tuples =
          List.init
            (3 + Random.State.int rng 5)
            (fun _ ->
              [| Random.State.int rng 6; Random.State.int rng 6 |])
        in
        Table.post store [ x; y ] tuples
      end
    | 8 ->
      let b = Store.new_var ~name:"b" store ~lo:0 ~hi:1 in
      Reif.eq_const store (pick ()) (Random.State.int rng 4) b
    | _ ->
      Linear.sum_le store
        [ (1, pick ()); (2, pick ()) ]
        (4 + Random.State.int rng 10)
  in
  let nconstraints = 2 + Random.State.int rng 4 in
  (try
     for _ = 1 to nconstraints do
       post_one ()
     done;
     (* one global packing model on top: the kernel's workhorse *)
     if Random.State.int rng 2 = 0 then begin
       let nbins = 2 + Random.State.int rng 2 in
       let items =
         Array.map
           (fun v ->
             (* placement variables constrained to the bins *)
             Store.remove_above store v (nbins - 1);
             Pack.item v (1 + Random.State.int rng 3))
           vars
       in
       let capacities =
         Array.init nbins (fun _ -> 3 + Random.State.int rng 5)
       in
       Pack.post store ~items ~capacities ()
     end
     else begin
       let selectors =
         Array.init 3 (fun i ->
             Store.new_var ~name:(Printf.sprintf "s%d" i) store ~lo:0 ~hi:1)
       in
       let sizes = Array.init 3 (fun _ -> 1 + Random.State.int rng 4) in
       let load = Store.new_var ~name:"load" store ~lo:0 ~hi:12 in
       ignore (Knapsack.post store ~sizes ~selectors ~load)
     end
   with Store.Inconsistent _ -> ());
  store

let random_sweep ?(models = 30) ?(steps = 30) ~seed () =
  let rng = Random.State.make [| 0xca5e; seed |] in
  let findings = ref [] in
  for i = 1 to models do
    let store = random_model rng in
    let fs = probe ~steps ~seed:(seed + (i * 7919)) store in
    findings := !findings @ fs
  done;
  !findings
