(** Pre-search lint of a posted CP model.

    Findings do not make a model wrong — they make a search slower or
    betray an encoding mistake upstream. The only store mutation is one
    propagation to the root fixpoint, undone before returning. *)

open Fdcp

type finding =
  | Inconsistent_model of { message : string }
      (** the root propagation already fails: no search should run *)
  | Constant_var of { var : string; value : int }
      (** a decision variable posted already fixed (variables named
          [const*] by [Store.constant] are exempt) *)
  | Unconstrained_var of { var : string }
      (** no propagator watches it: a free variable inflating the
          search space *)
  | Duplicate_constraint of {
      name : string;
      other : string;
      vars : string list;
    }
      (** two propagators with the same name and identical
          (variable, event-mask) subscriptions *)
  | Dead_propagator of { prop : string }
      (** entailed or fixed: all watched variables are bound at the
          root fixpoint, so it can never wake again *)
  | Unbounded_objective of { var : string; lo : int; hi : int }
      (** objective domain too wide to enumerate *)

val lint : ?obj:Var.t -> Store.t -> finding list
(** Lint the model currently posted on [store]. Findings are reported
    in a deterministic order (variable creation order, then propagator
    id order). *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> finding list -> unit
