(** Behavioural sanitizer for the CP kernel's propagators.

    Drives a posted model through randomized
    mark / instantiate / propagate / undo cycles (the exact cycle the
    search performs) and checks the contracts every propagator must
    honour:

    - {b trail safety}: domains and trailed state are restored exactly
      by [Store.undo_to] (checked through snapshots and by replaying
      the same descent twice — hidden untrailed state diverges);
    - {b idempotence}: at a consistent fixpoint, re-running any
      propagator neither prunes nor fails;
    - {b no silent wipeout}: an empty domain always surfaces as
      [Store.Inconsistent];
    - {b subscription soundness}: a propagator only reads variables it
      subscribed to (tracked through {!Fdcp.Var.read_hook}).

    All randomness is seeded: a sweep is reproducible bit for bit. *)

open Fdcp

type finding =
  | Trail_corruption of { var : string; before : string; after : string }
  | Non_idempotent of {
      prop : string;
      var : string;
      before : string;
      after : string;
    }
  | Late_failure of { prop : string; message : string }
      (** re-running the propagator at a consistent fixpoint raised *)
  | Silent_wipeout of { var : string }
  | Unsubscribed_read of { prop : string; var : string }
  | Replay_divergence of { var : string; first : string; second : string }

val pp_finding : Format.formatter -> finding -> unit

val probe : ?steps:int -> ?seed:int -> Store.t -> finding list
(** [probe store] checks every propagator registered on [store]'s
    variables over [steps] randomized decision steps. The store is
    propagated (so its domains end at the root fixpoint, as a search
    would leave them) but every probe descent is undone. Propagator
    closures are temporarily wrapped for read tracking and restored on
    exit. *)

val random_sweep : ?models:int -> ?steps:int -> seed:int -> unit -> finding list
(** Generate [models] random CSPs spanning every propagator family
    (arith, element, alldiff, count, table, reif, linear, pack,
    knapsack) and {!probe} each. Deterministic in [seed]. *)
