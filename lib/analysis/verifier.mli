(** Independent plan verifier: symbolic pool-by-pool replay of a
    {!Entropy_core.Plan.t} against its source configuration, re-checking
    every paper-level invariant from first principles — strictly
    stronger than [Plan.validate].

    Checked invariants: per-pool simultaneous feasibility (per
    resource), Figure 2 life-cycle preconditions, exact applicability,
    reconfiguration-graph soundness (including bypass migrations and
    disk cycle breaks), no worsened overload at any pool boundary, vjob
    suspend/resume grouping, exact termination in the target, and an
    independent re-derivation of the Table 1 / section 4.2 plan cost
    cross-checked against [Plan.cost]. *)

open Entropy_core

type resource = Cpu | Mem

type finding =
  | Claim_overflow of {
      pool : int;
      action : Action.t;
      node : Node.id;
      resource : resource;
      needed : int;
      available : int;
    }  (** a pool's parallel claims exceed the pool-start free resources *)
  | Lifecycle_violation of {
      pool : int;
      action : Action.t;
      state : Lifecycle.state;
    }  (** the action's transition is illegal from the VM's state (Fig. 2) *)
  | Invalid_application of { pool : int; action : Action.t; reason : string }
      (** the VM is not in the precise state the action expects *)
  | Duplicate_vm_action of { pool : int; action : Action.t }
      (** second action on the same VM within one (parallel) pool *)
  | Off_graph_action of { pool : int; action : Action.t }
      (** matches no pending reconfiguration-graph action and is no
          recognised cycle break (bypass migration / disk break) *)
  | Unreachable_target of { pool : int; vm : Vm.id; reason : string }
  | Worsened_overload of {
      pool : int;
      node : Node.id;
      resource : resource;
      load : int;
      capacity : int;
      initial_excess : int;
    }
      (** a pool boundary leaves a node further over capacity than the
          source configuration already had it *)
  | Vjob_split of {
      vjob : string;
      kind : [ `Suspend | `Resume ];
      pools : int list;
    }  (** a vjob's suspends or resumes span several pools *)
  | Wrong_final_state of {
      vm : Vm.id;
      expected : Configuration.vm_state;
      got : Configuration.vm_state;
    }
  | Cost_mismatch of { reported : int; derived : int }
      (** [Plan.cost] disagrees with the independent re-derivation *)
  | Resume_divergence of {
      vm : Vm.id;
      frozen : bool;
      expected : Configuration.vm_state;
      got : Configuration.vm_state;
    }
      (** crash resume: the resumed plan's end state for the VM differs
          from what the original switch promised (live VM) or from the
          observation it was frozen at (frozen VM) *)

val verify :
  ?vjobs:Vjob.t list ->
  current:Configuration.t ->
  target:Configuration.t ->
  demand:Demand.t ->
  Plan.t ->
  finding list
(** Replay the plan and return every finding, in replay order. The
    target's sleeping locations are normalized against [current] first,
    exactly as the planner does. [vjobs] enables the grouping check. *)

val is_clean :
  ?vjobs:Vjob.t list ->
  current:Configuration.t ->
  target:Configuration.t ->
  demand:Demand.t ->
  Plan.t ->
  bool

val verify_resume :
  ?vjobs:Vjob.t list ->
  source:Configuration.t ->
  original:Plan.t ->
  observed:Configuration.t ->
  target:Configuration.t ->
  frozen:Vm.id list ->
  demand:Demand.t ->
  Plan.t ->
  finding list
(** Verify a crash-resume plan: the full {!verify} replay of the resume
    plan from [observed] to [target], plus the equivalence check that
    resume plan + executed prefix ≡ the original switch — every
    non-frozen VM's state in [target] equals where the [original] plan
    (replayed from the journaled [source]) would have left it, and every
    frozen VM stays exactly as [observed]. *)

val table1_action_cost : Configuration.t -> Action.t -> int
(** Independent restatement of the Table 1 action cost model. *)

val rederive_cost : Configuration.t -> Action.t list list -> int
(** Independent restatement of the section 4.2 sequencing cost. *)

val cost_cross_check : Configuration.t -> Plan.t -> int * int
(** [(reported, derived)]: [Plan.cost] next to the independent Table 1 /
    section 4.2 re-derivation — the estimate cross-check printed by
    [entropyctl explain] before comparing against executed time. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> finding list -> unit
