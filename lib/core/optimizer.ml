(* The Constraint-Programming optimiser (section 4.3).

   Given the decision module's verdict — which vjobs must run — the
   optimiser searches among the viable placements of the running VMs for
   one whose reconfiguration plan is cheap: staying on the current host
   is free, migrating costs the VM's memory, resuming locally costs the
   memory and resuming remotely twice that (Table 1).

   Encoding:
   - one placement variable per running VM, valued over the nodes;
   - two bin-packing constraints (CPU, memory) for viability;
   - one element constraint per moved VM channelling its placement to
     its action cost, summed into the objective;
   - first-fail branching treating the most demanding VMs first, value
     ordering preferring the VM's current location (running VMs) or the
     node storing its image (sleeping VMs);
   - branch & bound on the objective with a solving timeout, keeping the
     best solution found so far.

   The objective is the sum of local action costs: an admissible lower
   bound of the true plan cost (which adds sequencing penalties). The
   final comparison against the fallback configuration uses the real
   plan cost. *)

module Obs = Entropy_obs.Obs
module Trace = Entropy_obs.Trace
module Metrics = Entropy_obs.Metrics

(* [Fdcp] now exports its own [Log] (source "entropy.cp"); capture the
   core's before the [let open Fdcp] scopes below shadow it. *)
module Core_log = Log

type result = {
  target : Configuration.t;
  plan : Plan.t;
  cost : int;  (* true plan cost, Table 1 model *)
  improved : bool;  (* the CP search beat the heuristic fallback *)
  rules_satisfied : bool;  (* the placement rules hold in [target] *)
  stats : Fdcp.Search.stats option;
}

let default_timeout = 1.0

(* Cost table of a VM: cost of running it on each node next iteration. *)
let cost_table current vm_id ~node_count =
  let mem = Vm.memory_mb (Configuration.vm current vm_id) in
  match Configuration.state current vm_id with
  | Configuration.Running host ->
    Array.init node_count (fun j -> if j = host then 0 else mem)
  | Configuration.Sleeping host ->
    Array.init node_count (fun j -> if j = host then mem else 2 * mem)
  | Configuration.Sleeping_ram _ ->
    (* a RAM resume is free; the placement is pinned to the host below *)
    Array.make node_count 0
  | Configuration.Waiting -> Array.make node_count Cost.run_cost
  | Configuration.Terminated ->
    invalid_arg "Optimizer: a terminated VM cannot be placed"

let preferred_node current vm_id =
  match Configuration.state current vm_id with
  | Configuration.Running host -> Some host
  | Configuration.Sleeping host -> Some host
  | Configuration.Sleeping_ram host -> Some host
  | Configuration.Waiting | Configuration.Terminated -> None

(* Residual capacities once the VMs that are not re-placed are accounted
   for (in our decision flow every running VM is re-placed, but the
   encoding stays general). *)
let residual_capacities target_base demand ~placed =
  let is_placed = Hashtbl.create 64 in
  List.iter (fun vm -> Hashtbl.replace is_placed vm ()) placed;
  let n = Configuration.node_count target_base in
  let cpu = Array.init n (fun i -> Node.cpu_capacity (Configuration.node target_base i)) in
  let mem = Array.init n (fun i -> Node.memory_mb (Configuration.node target_base i)) in
  for vm_id = 0 to Configuration.vm_count target_base - 1 do
    if not (Hashtbl.mem is_placed vm_id) then
      match Configuration.state target_base vm_id with
      | Configuration.Running host ->
        cpu.(host) <- cpu.(host) - Demand.cpu demand vm_id;
        mem.(host) <- mem.(host) - Vm.memory_mb (Configuration.vm target_base vm_id)
      | Configuration.Sleeping_ram host ->
        (* the image keeps its memory on the host *)
        mem.(host) <- mem.(host) - Vm.memory_mb (Configuration.vm target_base vm_id)
      | Configuration.Waiting | Configuration.Sleeping _
      | Configuration.Terminated -> ()
  done;
  (cpu, mem)

(* Build the target configuration from a placement snapshot. *)
let config_of_placement target_base placed snapshot =
  List.fold_left
    (fun (cfg, i) vm_id ->
      ( Configuration.set_state cfg vm_id (Configuration.Running snapshot.(i)),
        i + 1 ))
    (target_base, 0) placed
  |> fst

let plan_for ?vjobs ~current ~demand target =
  Obs.span ~cat:"optimizer" ~name:"optimizer.plan" (fun () ->
      let plan = Planner.build_plan ?vjobs ~current ~target ~demand () in
      (plan, Plan.cost current plan))

(* Flush the per-store CP observability counters into the global metrics
   registry. Name lookups happen once per optimisation, not per event. *)
let flush_cp_stats store =
  let open Fdcp in
  List.iter
    (fun (name, wakes, runs, time_us) ->
      Metrics.add (Metrics.counter ("cp.prop.wake." ^ name)) wakes;
      Metrics.add (Metrics.counter ("cp.prop.run." ^ name)) runs;
      Metrics.add
        (Metrics.counter ("cp.prop.time_us." ^ name))
        (int_of_float time_us))
    (Store.prop_stats store);
  Metrics.add (Metrics.counter "cp.store.propagations")
    (Store.propagation_count store);
  Metrics.add (Metrics.counter "cp.store.updates") (Store.update_count store)

(* Post the placement rules on the search variables: Ban/Fence restrict
   domains, Spread posts an all-different (extended with the hosts of
   the rule's fixed running VMs), Gather chains equalities. *)
let post_rules store rules ~placed_arr ~hvars ~target_base ~node_count =
  let open Fdcp in
  let var_of = Hashtbl.create 16 in
  Array.iteri (fun i h -> Hashtbl.replace var_of placed_arr.(i) h) hvars;
  List.iter
    (fun rule ->
      let members = Placement_rules.vms rule in
      let searched =
        List.filter_map (fun vm -> Hashtbl.find_opt var_of vm) members
      in
      let fixed_hosts =
        List.filter_map
          (fun vm ->
            if Hashtbl.mem var_of vm then None
            else Configuration.host target_base vm)
          members
      in
      match rule with
      | Placement_rules.Ban _ | Placement_rules.Fence _ ->
        List.iter
          (fun vm ->
            match Hashtbl.find_opt var_of vm with
            | None -> ()
            | Some h -> (
              match
                Placement_rules.allowed_nodes [ rule ] ~node_count vm
              with
              | None -> ()
              | Some allowed ->
                for node = 0 to node_count - 1 do
                  if not (List.mem node allowed) then
                    Store.remove store h node
                done))
          members
      | Placement_rules.Spread _ ->
        if searched <> [] then begin
          Alldiff.post store searched;
          List.iter
            (fun host ->
              List.iter (fun h -> Store.remove store h host) searched)
            fixed_hosts
        end
      | Placement_rules.Gather _ -> (
        (match searched with
        | first :: rest -> List.iter (fun h -> Arith.eq store first h) rest
        | [] -> ());
        match (fixed_hosts, searched) with
        | host :: _, first :: _ -> Store.instantiate store first host
        | _ -> ())
      | Placement_rules.Quota (nodes, k) ->
        (* fixed running VMs already consume part of each node's quota *)
        let fixed_on = Hashtbl.create 8 in
        for vm = 0 to Configuration.vm_count target_base - 1 do
          if not (Hashtbl.mem var_of vm) then
            match Configuration.host target_base vm with
            | Some h ->
              Hashtbl.replace fixed_on h
                (1 + Option.value ~default:0 (Hashtbl.find_opt fixed_on h))
            | None -> ()
        done;
        List.iter
          (fun node ->
            let fixed =
              Option.value ~default:0 (Hashtbl.find_opt fixed_on node)
            in
            if fixed > k then Store.fail "quota on node %d already exceeded" node;
            Count.at_most store hvars ~value:node ~count:(k - fixed))
          nodes)
    rules

(* The CP model of one optimisation, exposed so analysis passes (the
   model linter, the propagator sanitizer, [entropyctl lint]) can
   inspect exactly what the search would run on. *)
type model = {
  store : Fdcp.Store.t;
  hvars : Fdcp.Var.t array;  (* placement variables, one per placed VM *)
  placed_vms : Vm.id array;  (* placed_vms.(i) is hvars.(i)'s VM *)
  obj : Fdcp.Var.t;
  cap_cpu : int array;
  cap_mem : int array;
  rules_postable : bool;
}

let build_model_impl ~rules ~current ~demand ~placed ~target_base () =
  let open Fdcp in
  let n = Configuration.node_count current in
  let store = Store.create () in
  (* placement variables, one per re-placed VM *)
  let hvars =
    List.map
      (fun vm_id ->
        Store.new_var ~name:(Printf.sprintf "h%d" vm_id) store ~lo:0
          ~hi:(n - 1))
      placed
  in
  let harr = Array.of_list hvars in
  let placed_arr = Array.of_list placed in
  (* viability: CPU and memory packing over residual capacities *)
  let cap_cpu, cap_mem = residual_capacities target_base demand ~placed in
  let cpu_items =
    Array.mapi
      (fun i v -> Pack.item v (Demand.cpu demand placed_arr.(i)))
      harr
  in
  let mem_items =
    Array.mapi
      (fun i v ->
        Pack.item v (Vm.memory_mb (Configuration.vm current placed_arr.(i))))
      harr
  in
  Pack.post store ~name:"cpu" ~items:cpu_items ~capacities:cap_cpu ();
  Pack.post store ~name:"mem" ~items:mem_items ~capacities:cap_mem ();
  (* placement rules: maintained *during* the optimisation (the
     paper's future work) *)
  let rules_postable = ref true in
  (try
     post_rules store rules ~placed_arr ~hvars:harr ~target_base
       ~node_count:n;
     (* RAM-suspended VMs can only resume where their image lives *)
     Array.iteri
       (fun i h ->
         match Configuration.state current placed_arr.(i) with
         | Configuration.Sleeping_ram host -> Store.instantiate store h host
         | Configuration.Waiting | Configuration.Running _
         | Configuration.Sleeping _ | Configuration.Terminated -> ())
       harr
   with Store.Inconsistent _ -> rules_postable := false);
  (* objective: sum of local action costs *)
  let cost_terms = ref [] in
  Array.iteri
    (fun i h ->
      let vm_id = placed_arr.(i) in
      let table = cost_table current vm_id ~node_count:n in
      let distinct = List.sort_uniq Int.compare (Array.to_list table) in
      match distinct with
      | [ _ ] -> () (* constant cost: no influence on the search *)
      | _ ->
        let c =
          Store.new_var_of_values
            ~name:(Printf.sprintf "c%d" vm_id)
            store distinct
        in
        Element.post store h table c;
        cost_terms := (1, c) :: !cost_terms)
    harr;
  let ub =
    List.fold_left (fun acc (_, c) -> acc + Var.hi c) 0 !cost_terms
  in
  let obj = Store.new_var ~name:"obj" store ~lo:0 ~hi:(max ub 0) in
  Linear.sum_var store !cost_terms obj;
  {
    store;
    hvars = harr;
    placed_vms = placed_arr;
    obj;
    cap_cpu;
    cap_mem;
    rules_postable = !rules_postable;
  }

let build_model ?(rules = []) ~current ~demand ~placed ~target_base () =
  Obs.span ~cat:"optimizer" ~name:"optimizer.build_model"
    ~args:[ ("placed", Trace.I (List.length placed)) ]
    (fun () ->
      build_model_impl ~rules ~current ~demand ~placed ~target_base ())

let optimize ?(timeout = default_timeout) ?node_limit ?restarts ?vjobs
    ?(rules = []) ?incumbent_cost ~current ~demand ~placed ~target_base
    ~fallback () =
  let fallback_plan, fallback_cost = plan_for ?vjobs ~current ~demand fallback in
  let fallback_result improved stats =
    {
      target = fallback;
      plan = fallback_plan;
      cost = fallback_cost;
      improved;
      rules_satisfied = Placement_rules.check_all fallback rules;
      stats;
    }
  in
  if placed = [] then fallback_result false None
  else begin
    let open Fdcp in
    let n = Configuration.node_count current in
    let { store; hvars = harr; placed_vms = placed_arr; obj; cap_cpu;
          cap_mem; rules_postable; } =
      build_model ~rules ~current ~demand ~placed ~target_base ()
    in
    let rules_postable = ref rules_postable in
    (* movement cost of the fallback placement, under the same per-VM
       cost tables the objective sums *)
    let fallback_obj = ref 0 in
    Array.iter
      (fun vm_id ->
        match Configuration.host fallback vm_id with
        | Some host ->
          fallback_obj :=
            !fallback_obj + (cost_table current vm_id ~node_count:n).(host)
        | None -> ())
      placed_arr;
    (* branching order: VMs grouped by their current host (an overload
       on a node is then detected as soon as its group is decided, not
       at the bottom of the tree), most demanding VMs first inside a
       group; VMs with no current host (waiting/sleeping) come last *)
    (* dense lookup tables indexed by [Var.id]: the search consults them
       at every node, so no hashing on the hot path *)
    let max_id = Array.fold_left (fun acc h -> max acc (Var.id h)) 0 harr in
    let key_of = Array.make (max_id + 1) max_int in
    Array.iteri
      (fun i h ->
        let vm_id = placed_arr.(i) in
        let w =
          (Vm.memory_mb (Configuration.vm current vm_id) * 10)
          + Demand.cpu demand vm_id
        in
        let group =
          match Configuration.host current vm_id with
          | Some host -> host
          | None -> n (* after every hosted group *)
        in
        key_of.(Var.id h) <- (group * 1_000_000) - w)
      harr;
    let prefer_of = Array.make (max_id + 1) (-1) in
    Array.iteri
      (fun i h ->
        match preferred_node current placed_arr.(i) with
        | Some p -> prefer_of.(Var.id h) <- p
        | None -> ())
      harr;
    let var_select = Search.by_key (fun v -> key_of.(Var.id v)) in
    (* value ordering: the VM's current location first (free move), then
       nodes by decreasing residual capacity — retrying the least-loaded
       nodes first avoids thrashing against the packing constraints.
       [order] lists the nodes in that fixed rank order once; the search
       then walks it and filters by domain membership instead of
       materialising and sorting a value list at every node. *)
    let order =
      let scored =
        Array.init n (fun j -> (j, (cap_mem.(j) * 1000) + cap_cpu.(j)))
      in
      Array.sort (fun (_, a) (_, b) -> Int.compare b a) scored;
      Array.map fst scored
    in
    let val_iter v f =
      let pref = prefer_of.(Var.id v) in
      if pref >= 0 && Var.mem pref v then f pref;
      Array.iter (fun node -> if node <> pref && Var.mem node v then f node) order
    in
    (* list-based twin of [val_iter] for the restart strategy, which
       needs materialised lists to shuffle their tails *)
    let val_select v =
      let values =
        Array.fold_right
          (fun node acc -> if Var.mem node v then node :: acc else acc)
          order []
      in
      let pref = prefer_of.(Var.id v) in
      if pref >= 0 && Var.mem pref v then
        pref :: List.filter (fun x -> x <> pref) values
      else values
    in
    (* seed branch & bound with the fallback's movement cost and any
       caller-supplied incumbent (true plan cost, e.g. a local-search
       solution): the objective is an admissible lower bound of the true
       plan cost, so bounding it below either is sound pruning — only
       strictly better placements are explored. When the fallback
       violates the placement rules it is not a usable incumbent, so its
       bound is not seeded: any rule-satisfying solution is acceptable. *)
    let seed_failed = ref false in
    let seed_bound =
      let fb =
        if rules = [] || Placement_rules.check_all fallback rules then
          Some !fallback_obj
        else None
      in
      match (fb, incumbent_cost) with
      | Some a, Some b -> Some (min a b)
      | Some a, None -> Some a
      | None, b -> b
    in
    (match seed_bound with
    | Some b -> (
      try Store.remove_above store obj (max 0 (b - 1))
      with Store.Inconsistent _ -> seed_failed := true)
    | None -> ());
    let best, stats =
      if !seed_failed || not !rules_postable then
        (None, Search.fresh_stats ())
      else
        Obs.span ~cat:"optimizer" ~name:"optimizer.search"
          ~args:
            [ ("vms", Trace.I (Array.length harr)); ("nodes", Trace.I n) ]
          (fun () ->
            match restarts with
            | Some restarts ->
              Search.minimize_restarts store ~vars:harr ~obj ~var_select
                ~val_select ~restarts ~timeout ()
            | None ->
              Search.minimize store ~vars:harr ~obj ~var_select ~val_iter
                ~timeout ?node_limit ())
    in
    if !Obs.enabled then flush_cp_stats store;
    Core_log.debug (fun m ->
        m "optimizer: %d VMs over %d nodes, %a" (Array.length harr) n
          Search.pp_stats stats);
    match best with
    | None -> fallback_result false (Some stats)
    | Some (_obj_value, snapshot) ->
      let target = config_of_placement target_base placed snapshot in
      let plan, cost = plan_for ?vjobs ~current ~demand target in
      let fallback_rules_ok = Placement_rules.check_all fallback rules in
      if cost < fallback_cost || not fallback_rules_ok then
        {
          target;
          plan;
          cost;
          improved = cost < fallback_cost;
          rules_satisfied = Placement_rules.check_all target rules;
          stats = Some stats;
        }
      else fallback_result false (Some stats)
  end
