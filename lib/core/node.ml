(* Working nodes. CPU capacity in hundredths of a core: the paper's
   testbed node (2.1 GHz Core 2 Duo, one CPU with 2 cores, 4 GB RAM of
   which 512 MB go to Domain-0) is [make ~cpu_capacity:200
   ~memory_mb:3584]. *)

type id = int

type t = {
  id : id;
  name : string;
  cpu_capacity : int;   (* hundredths of a core *)
  memory_mb : int;
}

let make ~id ~name ~cpu_capacity ~memory_mb =
  if cpu_capacity <= 0 then invalid_arg "Node.make: cpu_capacity <= 0";
  if memory_mb <= 0 then invalid_arg "Node.make: memory_mb <= 0";
  { id; name; cpu_capacity; memory_mb }

(* A crashed node keeps its identity (ids stay dense) but can host
   nothing; built directly because [make] rejects zero capacities. *)
let crashed t = { t with cpu_capacity = 0; memory_mb = 0 }
let is_crashed t = t.cpu_capacity = 0 && t.memory_mb = 0

let id t = t.id
let name t = t.name
let cpu_capacity t = t.cpu_capacity
let memory_mb t = t.memory_mb

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp ppf t =
  Fmt.pf ppf "%s(%d.%02dcpu,%dMB)" t.name (t.cpu_capacity / 100)
    (t.cpu_capacity mod 100) t.memory_mb

(* The paper's testbed node profile. *)
let testbed ~id ~name = make ~id ~name ~cpu_capacity:200 ~memory_mb:3584
