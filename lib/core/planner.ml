(* Plan construction (section 4.1).

   Starting from the reconfiguration graph between the current and the
   target configuration, pools are built iteratively:

   1. select every action whose claims fit simultaneously in the current
      intermediate configuration; they form the next pool;
   2. when no action is feasible, the remaining claiming actions form at
      least one cycle of inter-dependent migrations: a pivot node outside
      the cycle temporarily hosts one of the cycle's VMs (bypass
      migration), creating a one-action pool;
   3. the reconfiguration graph is re-derived from the resulting
      intermediate configuration, which folds the bypassed VM's pending
      move (pivot -> final destination) back into the graph;
   4. repeat until the intermediate configuration equals the target. *)

module Obs = Entropy_obs.Obs
module Trace = Entropy_obs.Trace
module Metrics = Entropy_obs.Metrics

let m_pools = lazy (Metrics.counter "planner.pools")
let m_actions = lazy (Metrics.counter "planner.actions")
let m_bypass = lazy (Metrics.counter "planner.bypass")
let m_cycle_breaks = lazy (Metrics.counter "planner.cycle_breaks")

exception Stuck of string

let stuck fmt = Fmt.kstr (fun s -> raise (Stuck s)) fmt

(* Select a maximal set of actions simultaneously feasible from
   [config]: claims are accounted against the pool-start free resources,
   so resources freed by actions of this same pool are not reused. *)
let select_pool config demand actions =
  let n = Configuration.node_count config in
  let claimed_cpu = Array.make n 0 and claimed_mem = Array.make n 0 in
  let selected, postponed =
    List.partition
      (fun a ->
        match Action.claim config demand a with
        | None -> true (* suspend/stop: always feasible *)
        | Some (dst, cpu, mem) ->
          let ok =
            Configuration.free_cpu config demand dst - claimed_cpu.(dst)
              >= cpu
            && Configuration.free_mem config dst - claimed_mem.(dst) >= mem
          in
          if ok then begin
            claimed_cpu.(dst) <- claimed_cpu.(dst) + cpu;
            claimed_mem.(dst) <- claimed_mem.(dst) + mem
          end;
          ok)
      actions
  in
  (selected, postponed)

(* -- cycle detection ------------------------------------------------------ *)

(* Among blocked migrations, [m1] waits for [m2] when m2's source is m1's
   destination (m2 leaving would free room for m1). A cycle in this
   waits-for relation is the inter-dependency of Figure 8. *)
let find_migration_cycle blocked =
  let migrations =
    List.filter_map
      (function
        | Action.Migrate { vm; src; dst } -> Some (vm, src, dst)
        | Action.Run _ | Action.Stop _ | Action.Suspend _ | Action.Resume _
        | Action.Suspend_ram _ | Action.Resume_ram _ -> None)
      blocked
  in
  (* successor: first blocked migration whose source is my destination *)
  let successor (_, _, dst) =
    List.find_opt (fun (_, src', _) -> src' = dst) migrations
  in
  let rec chase seen m =
    let (vm, _, _) = m in
    if List.exists (fun (vm', _, _) -> vm' = vm) seen then
      (* cycle: the suffix of [seen] from the repeated element *)
      let rec suffix = function
        | [] -> []
        | (vm', _, _) :: _ as rest when vm' = vm -> rest
        | _ :: rest -> suffix rest
      in
      Some (suffix (List.rev (m :: seen)))
    else
      match successor m with
      | None -> None
      | Some next -> chase (m :: seen) next
  in
  let rec try_all = function
    | [] -> None
    | m :: rest -> (
      match chase [] m with Some c -> Some c | None -> try_all rest)
  in
  try_all migrations

(* Pick a pivot node outside the cycle that can host one of the cycle's
   VMs, and return the corresponding bypass migration. *)
let bypass_migration config demand cycle =
  let cycle_nodes =
    List.concat_map (fun (_, src, dst) -> [ src; dst ]) cycle
  in
  let candidates =
    List.concat_map
      (fun (vm, src, _) ->
        let cpu = Demand.cpu demand vm in
        let mem = Vm.memory_mb (Configuration.vm config vm) in
        List.filter_map
          (fun node ->
            let id = Node.id node in
            if
              (not (List.mem id cycle_nodes))
              && Configuration.fits config demand ~cpu ~mem id
            then Some (Action.Migrate { vm; src; dst = id }, mem)
            else None)
          (Array.to_list (Configuration.nodes config)))
      cycle
  in
  (* cheapest bypass: smallest VM memory (both the extra migration and
     the later move back are charged Dm) *)
  match List.sort (fun (_, m1) (_, m2) -> Int.compare m1 m2) candidates with
  | [] -> None
  | (action, _) :: _ -> Some action

(* -- main loop ------------------------------------------------------------ *)

let max_iterations = 10_000

let build ~current ~target ~demand () =
  Obs.span ~cat:"planner" ~name:"planner.build" @@ fun () ->
  let target = Rgraph.normalize_sleeping ~current target in
  let rec loop config pools iter =
    if iter > max_iterations then stuck "planner did not converge";
    let remaining = Rgraph.actions ~current:config ~target in
    if remaining = [] then List.rev pools
    else
      let selected, _postponed = select_pool config demand remaining in
      if selected <> [] then begin
        if !Obs.enabled then begin
          Metrics.incr (Lazy.force m_pools);
          Metrics.add (Lazy.force m_actions) (List.length selected)
        end;
        let config' = List.fold_left Action.apply config selected in
        loop config' (selected :: pools) (iter + 1)
      end
      else
        match find_migration_cycle remaining with
        | None ->
          stuck "no feasible action and no migration cycle: target %s"
            "is not reachable (is it viable?)"
        | Some cycle -> (
          match bypass_migration config demand cycle with
          | Some bypass ->
            if !Obs.enabled then begin
              (match bypass with
              | Action.Migrate { vm; src; dst } ->
                Obs.instant ~cat:"planner"
                  ~args:
                    [
                      ("vm", Trace.I vm); ("src", Trace.I src);
                      ("dst", Trace.I dst);
                      ("cycle_len", Trace.I (List.length cycle));
                    ]
                  "planner.bypass"
              | Action.Run _ | Action.Stop _ | Action.Suspend _
              | Action.Resume _ | Action.Suspend_ram _
              | Action.Resume_ram _ -> ());
              Metrics.incr (Lazy.force m_bypass);
              Metrics.incr (Lazy.force m_pools);
              Metrics.incr (Lazy.force m_actions)
            end;
            let config' = Action.apply config bypass in
            loop config' ([ bypass ] :: pools) (iter + 1)
          | None -> (
            (* no pivot node has room: break the cycle through the disk
               instead — suspend the smallest VM of the cycle (always
               feasible), it will be resumed at its destination once the
               cycle has unwound. This is the capability the paper's
               related-work section credits to suspend/resume: handling
               the situations migration-only managers cannot. *)
            match
              List.sort
                (fun (vm1, _, _) (vm2, _, _) ->
                  Int.compare
                    (Vm.memory_mb (Configuration.vm config vm1))
                    (Vm.memory_mb (Configuration.vm config vm2)))
                cycle
            with
            | [] -> stuck "empty migration cycle"
            | (vm, src, _) :: _ ->
              Log.debug (fun m ->
                  m "planner: migration cycle with no pivot, breaking \
                     through the disk (suspend VM %d on node %d)" vm src);
              if !Obs.enabled then begin
                Obs.instant ~cat:"planner"
                  ~args:
                    [
                      ("vm", Trace.I vm); ("src", Trace.I src);
                      ("cycle_len", Trace.I (List.length cycle));
                    ]
                  "planner.cycle_break";
                Metrics.incr (Lazy.force m_cycle_breaks);
                Metrics.incr (Lazy.force m_pools);
                Metrics.incr (Lazy.force m_actions)
              end;
              let break = Action.Suspend { vm; host = src } in
              let config' = Action.apply config break in
              loop config' ([ break ] :: pools) (iter + 1)))
  in
  Plan.make (loop current [] 0)

let build_plan ?vjobs ~current ~target ~demand () =
  let pools = build ~current ~target ~demand () in
  match vjobs with
  | None -> pools
  | Some vjobs -> Consistency.enforce ~config:current ~demand ~vjobs pools
