(** Working nodes that host VMs. CPU capacity in hundredths of a core. *)

type id = int

type t = { id : id; name : string; cpu_capacity : int; memory_mb : int }

val make : id:id -> name:string -> cpu_capacity:int -> memory_mb:int -> t
(** Raises [Invalid_argument] on non-positive capacities; a node that
    lost its capacity to a crash is built with {!crashed} instead. *)

val crashed : t -> t
(** The node with both capacities zeroed: a crashed node keeps its
    identity (ids stay dense) but can host nothing. *)

val is_crashed : t -> bool
val id : t -> id
val name : t -> string
val cpu_capacity : t -> int
val memory_mb : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val testbed : id:id -> name:string -> t
(** The paper's evaluation node: 2 cores (capacity 200), 3584 MB usable
    memory (4 GB minus the 512 MB Domain-0). *)
