(* The Entropy control loop (Figure 4): observe the cluster through the
   monitoring service, let the decision module compute the vjob states
   for the next iteration, plan the cluster-wide context switch, and
   execute it through the drivers. The loop then accumulates fresh
   monitoring data before iterating.

   The loop is driver-agnostic: the simulator (lib/sim) provides one
   driver, examples can provide in-memory ones.

   Execution reports back which VMs lost their action and which nodes
   disappeared mid-switch. A degraded switch triggers an immediate
   bounded recovery: re-observe, re-decide against the post-failure
   state, re-execute — instead of leaving the cluster inconsistent until
   the next 30 s iteration. *)

module Obs = Entropy_obs.Obs
module Metrics = Entropy_obs.Metrics

let m_iterations = lazy (Metrics.counter "loop.iterations")
let m_switches = lazy (Metrics.counter "loop.switches")
let m_recoveries = lazy (Metrics.counter "loop.recoveries")
let m_degraded = lazy (Metrics.counter "loop.degraded")

type exec_report = {
  failed_vms : Vm.id list;  (* actions terminally failed; state unchanged *)
  lost_nodes : Node.id list;  (* nodes that crashed during the switch *)
}

let clean = { failed_vms = []; lost_nodes = [] }
let report_ok r = r.failed_vms = [] && r.lost_nodes = []

type driver = {
  observe : unit -> Decision.observation;
  execute : Plan.t -> exec_report;  (* blocks until the switch completes *)
  wait : float -> unit;             (* sleep between iterations *)
  finished : unit -> bool;          (* all work done, stop looping *)
}

(* Journaling hooks: the loop calls [on_switch_begin] right before
   handing a non-empty plan to the driver and [on_switch_end] right
   after it reports back. Abstract callbacks keep the core free of any
   journal dependency — lib/journal plugs in from outside. *)
type hooks = {
  on_switch_begin :
    index:int -> source:Configuration.t -> target:Configuration.t ->
    demand:Demand.t -> plan:Plan.t -> unit;
  on_switch_end : index:int -> report:exec_report -> unit;
}

let no_hooks =
  {
    on_switch_begin =
      (fun ~index:_ ~source:_ ~target:_ ~demand:_ ~plan:_ -> ());
    on_switch_end = (fun ~index:_ ~report:_ -> ());
  }

type iteration = {
  index : int;
  observation : Decision.observation;
  result : Optimizer.result;
  executed : bool;
  recoveries : int;
}

(* Livelock guard: a step whose recovery budget runs out with damage
   still unrepaired must be distinguishable from one that converged —
   callers (the daemon's ladder, repair chains) escalate on [Degraded]
   instead of silently iterating on a cluster that never settles. *)
type outcome =
  | Converged of iteration
  | Degraded of iteration * exec_report

let iteration_of = function Converged it | Degraded (it, _) -> it
let converged = function Converged _ -> true | Degraded _ -> false

let default_period = 30.
let default_max_recoveries = 3

(* One iteration: decide, execute only when the plan is non-empty (an
   empty plan means the current configuration already matches the
   decision), and re-plan immediately — at most [max_recoveries] times —
   when the driver reports a degraded switch. [first], when given,
   supplies the first round's result instead of the decision module —
   the resume path injects a journal-derived plan this way; recovery
   rounds always go back through the decision module. *)
let step_aux ?(max_recoveries = default_max_recoveries) ?(hooks = no_hooks)
    ?first decision driver index =
  let rec go round first =
    let observation =
      Obs.span ~cat:"loop" ~name:"loop.observe" driver.observe
    in
    let result =
      match first with
      | Some mk -> mk observation
      | None ->
        Obs.span ~cat:"loop" ~name:"loop.decide"
          ~args:[ ("iteration", Entropy_obs.Trace.I index) ]
          (fun () -> decision.Decision.decide observation)
    in
    let executed = not (Plan.is_empty result.Optimizer.plan) in
    if !Obs.enabled then begin
      Metrics.incr (Lazy.force m_iterations);
      if executed then Metrics.incr (Lazy.force m_switches)
    end;
    Log.debug (fun m ->
        m "iteration %d (%s): %d vjobs queued, %d finished -> plan %d \
           actions, cost %d%s"
          index decision.Decision.name
          (List.length observation.Decision.queue)
          (List.length observation.Decision.finished)
          (Plan.action_count result.Optimizer.plan)
          result.Optimizer.cost
          (if executed then "" else " (no switch needed)"));
    let report =
      if executed then begin
        hooks.on_switch_begin ~index ~source:observation.Decision.config
          ~target:result.Optimizer.target ~demand:observation.Decision.demand
          ~plan:result.Optimizer.plan;
        let report =
          Obs.span ~cat:"loop" ~name:"loop.execute"
            ~args:
              [
                ( "actions",
                  Entropy_obs.Trace.I (Plan.action_count result.Optimizer.plan)
                );
                ("cost", Entropy_obs.Trace.I result.Optimizer.cost);
              ]
            (fun () -> driver.execute result.Optimizer.plan)
        in
        hooks.on_switch_end ~index ~report;
        report
      end
      else clean
    in
    if report_ok report then
      Converged { index; observation; result; executed; recoveries = round }
    else if round >= max_recoveries then begin
      if !Obs.enabled then Metrics.incr (Lazy.force m_degraded);
      Log.warn (fun m ->
          m "iteration %d: recovery budget exhausted with %d failed VMs and \
             %d lost nodes outstanding"
            index
            (List.length report.failed_vms)
            (List.length report.lost_nodes));
      Degraded
        ({ index; observation; result; executed; recoveries = round }, report)
    end
    else begin
      if !Obs.enabled then begin
        Metrics.incr (Lazy.force m_recoveries);
        Obs.instant ~cat:"loop" "loop.recover"
      end;
      Log.info (fun m ->
          m "iteration %d: degraded switch (%d failed VMs, %d lost nodes), \
             recovery replan %d/%d"
            index
            (List.length report.failed_vms)
            (List.length report.lost_nodes)
            (round + 1) max_recoveries);
      go (round + 1) None
    end
  in
  go 0 first

let step ?max_recoveries ?hooks decision driver index =
  step_aux ?max_recoveries ?hooks decision driver index

(* Event-driven entry point: identical decision semantics to [step],
   but invoked by a trigger (arrival, completion, crash, load spike)
   rather than a period tick. [reason] names the coalesced trigger for
   the log and trace stream. *)
let decide_event ?max_recoveries ?hooks ~reason decision driver index =
  Log.info (fun m -> m "iteration %d: event-driven decision (%s)" index reason);
  if !Obs.enabled then
    Obs.instant ~cat:"loop" ~args:[ ("reason", Entropy_obs.Trace.S reason) ]
      "loop.event";
  step_aux ?max_recoveries ?hooks decision driver index

let resume ?max_recoveries ?hooks ~target ~plan decision driver index =
  (* Run a recovery-derived plan as the iteration's first round; a
     degraded resume falls back to the normal recovery replans, which
     decide afresh. *)
  let first observation =
    {
      Optimizer.target;
      plan;
      cost = Plan.cost observation.Decision.config plan;
      improved = false;
      rules_satisfied = true;
      stats = None;
    }
  in
  step_aux ?max_recoveries ?hooks ~first decision driver index

let run ?(period = default_period) ?(max_iterations = max_int)
    ?max_recoveries ?hooks decision driver =
  let rec go index history =
    if index >= max_iterations || driver.finished () then List.rev history
    else begin
      let it = iteration_of (step ?max_recoveries ?hooks decision driver index) in
      driver.wait period;
      go (index + 1) (it :: history)
    end
  in
  go 0 []
