(* The Entropy control loop (Figure 4): observe the cluster through the
   monitoring service, let the decision module compute the vjob states
   for the next iteration, plan the cluster-wide context switch, and
   execute it through the drivers. The loop then accumulates fresh
   monitoring data before iterating.

   The loop is driver-agnostic: the simulator (lib/sim) provides one
   driver, examples can provide in-memory ones. *)

module Obs = Entropy_obs.Obs
module Metrics = Entropy_obs.Metrics

let m_iterations = lazy (Metrics.counter "loop.iterations")
let m_switches = lazy (Metrics.counter "loop.switches")

type driver = {
  observe : unit -> Decision.observation;
  execute : Plan.t -> unit;  (* blocks until the switch completes *)
  wait : float -> unit;      (* sleep between iterations *)
  finished : unit -> bool;   (* all work done, stop looping *)
}

type iteration = {
  index : int;
  observation : Decision.observation;
  result : Optimizer.result;
  executed : bool;
}

let default_period = 30.

(* One iteration: decide, and execute only when the plan is non-empty
   (an empty plan means the current configuration already matches the
   decision). *)
let step decision driver index =
  let observation =
    Obs.span ~cat:"loop" ~name:"loop.observe" driver.observe
  in
  let result =
    Obs.span ~cat:"loop" ~name:"loop.decide"
      ~args:[ ("iteration", Entropy_obs.Trace.I index) ]
      (fun () -> decision.Decision.decide observation)
  in
  let executed = not (Plan.is_empty result.Optimizer.plan) in
  if !Obs.enabled then begin
    Metrics.incr (Lazy.force m_iterations);
    if executed then Metrics.incr (Lazy.force m_switches)
  end;
  Log.debug (fun m ->
      m "iteration %d (%s): %d vjobs queued, %d finished -> plan %d \
         actions, cost %d%s"
        index decision.Decision.name
        (List.length observation.Decision.queue)
        (List.length observation.Decision.finished)
        (Plan.action_count result.Optimizer.plan)
        result.Optimizer.cost
        (if executed then "" else " (no switch needed)"));
  if executed then
    Obs.span ~cat:"loop" ~name:"loop.execute"
      ~args:
        [
          ("actions", Entropy_obs.Trace.I (Plan.action_count result.Optimizer.plan));
          ("cost", Entropy_obs.Trace.I result.Optimizer.cost);
        ]
      (fun () -> driver.execute result.Optimizer.plan);
  { index; observation; result; executed }

let run ?(period = default_period) ?(max_iterations = max_int) decision
    driver =
  let rec go index history =
    if index >= max_iterations || driver.finished () then List.rev history
    else begin
      let it = step decision driver index in
      driver.wait period;
      go (index + 1) (it :: history)
    end
  in
  go 0 []
