(* Reconfiguration plans: a sequence of pools. Pools execute one after
   the other; the actions inside a pool are pairwise independent and run
   in parallel (section 4.1). *)

type t = {
  pools : Action.t list list;
}

let make pools = { pools = List.filter (fun p -> p <> []) pools }

let empty = { pools = [] }
let is_empty t = t.pools = []
let pools t = t.pools
let pool_count t = List.length t.pools

(* Keep only the actions satisfying [keep]; pools emptied by the filter
   disappear, later pools move up. The salvage primitive: dependencies
   are re-checked by whoever validates the restricted plan. *)
let restrict t ~keep = make (List.map (List.filter keep) t.pools)

let actions t = List.concat t.pools

let action_count t = List.length (actions t)

let cost config t = Cost.plan config t.pools

let count_kind t pred =
  List.length (List.filter pred (actions t))

let migration_count t =
  count_kind t (function Action.Migrate _ -> true | _ -> false)

let suspend_count t =
  count_kind t (function Action.Suspend _ -> true | _ -> false)

let resume_count t =
  count_kind t (function Action.Resume _ -> true | _ -> false)

let run_count t = count_kind t (function Action.Run _ -> true | _ -> false)
let stop_count t = count_kind t (function Action.Stop _ -> true | _ -> false)

let local_resume_count t =
  count_kind t (function
    | Action.Resume { src; dst; _ } -> src = dst
    | _ -> false)

let ram_suspend_count t =
  count_kind t (function Action.Suspend_ram _ -> true | _ -> false)

let ram_resume_count t =
  count_kind t (function Action.Resume_ram _ -> true | _ -> false)

(* -- validation ----------------------------------------------------------- *)

type violation =
  | Pool_infeasible of { pool : int; action : Action.t }
  | Wrong_final_state of {
      vm : Vm.id;
      expected : Configuration.vm_state;
      got : Configuration.vm_state;
    }
  | Invalid_application of { pool : int; action : Action.t; reason : string }

let pp_violation ppf = function
  | Pool_infeasible { pool; action } ->
    Fmt.pf ppf "pool %d: %a not feasible in parallel" pool Action.pp action
  | Wrong_final_state { vm; expected; got } ->
    Fmt.pf ppf "VM %d finishes %a, expected %a" vm
      Configuration.pp_vm_state got Configuration.pp_vm_state expected
  | Invalid_application { pool; action; reason } ->
    Fmt.pf ppf "pool %d: %a cannot apply (%s)" pool Action.pp action reason

(* Check that each pool's actions are simultaneously feasible (claims
   evaluated against the pool-start configuration: resources freed inside
   a pool cannot serve claims of the same pool) and that the plan's final
   configuration matches the target. *)
let validate ~current ~target ~demand t =
  let violations = ref [] in
  let note v = violations := v :: !violations in
  let apply_pool config pool_idx pool_actions =
    (* simultaneous feasibility: accumulate claims against pool start *)
    let n = Configuration.node_count config in
    let claimed_cpu = Array.make n 0 and claimed_mem = Array.make n 0 in
    List.iter
      (fun a ->
        match Action.claim config demand a with
        | None -> ()
        | Some (dst, cpu, mem) ->
          let free_cpu =
            Configuration.free_cpu config demand dst - claimed_cpu.(dst)
          in
          let free_mem = Configuration.free_mem config dst - claimed_mem.(dst) in
          (* a migration's own source load is still on the source: fine,
             the claim is on the destination only *)
          if cpu > free_cpu || mem > free_mem then
            note (Pool_infeasible { pool = pool_idx; action = a })
          else begin
            claimed_cpu.(dst) <- claimed_cpu.(dst) + cpu;
            claimed_mem.(dst) <- claimed_mem.(dst) + mem
          end)
      pool_actions;
    (* sequential application to get the next pool's start state *)
    List.fold_left
      (fun cfg a ->
        try Action.apply cfg a
        with Action.Invalid reason ->
          note (Invalid_application { pool = pool_idx; action = a; reason });
          cfg)
      config pool_actions
  in
  let final =
    List.fold_left
      (fun (config, idx) pool_actions ->
        (apply_pool config idx pool_actions, idx + 1))
      (current, 0) t.pools
    |> fst
  in
  for vm_id = 0 to Configuration.vm_count target - 1 do
    let expected = Configuration.state target vm_id in
    let got = Configuration.state final vm_id in
    if not (Configuration.equal_vm_state expected got) then
      note (Wrong_final_state { vm = vm_id; expected; got })
  done;
  List.rev !violations

let is_valid ~current ~target ~demand t =
  validate ~current ~target ~demand t = []

let pp ppf t =
  let pp_pool i ppf actions =
    Fmt.pf ppf "pool %d: @[<hov>%a@]" i Fmt.(list ~sep:comma Action.pp) actions
  in
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.iter_bindings ~sep:Fmt.cut
       (fun f t -> List.iteri (fun i p -> f i p) t.pools)
       (fun ppf (i, p) -> pp_pool i ppf p))
    t
