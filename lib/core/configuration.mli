(** Configurations: the mapping of every VM to a state and (when running
    or sleeping) a node. A configuration is {e viable} when every running
    VM has sufficient CPU and memory on its host (paper, section 3.2).

    Identifiers are dense: [Vm.id] / [Node.id] index the arrays. *)

type vm_state =
  | Waiting
  | Running of Node.id
  | Sleeping of Node.id  (** node whose disk holds the suspended image *)
  | Sleeping_ram of Node.id
      (** suspended in the host's RAM (paper section 7 future work):
          memory stays allocated, CPU is freed, resume is nearly
          instantaneous but only possible on that host *)
  | Terminated

val pp_vm_state : Format.formatter -> vm_state -> unit
val equal_vm_state : vm_state -> vm_state -> bool

type t

val make : nodes:Node.t array -> vms:Vm.t array -> t
(** All VMs start Waiting. Raises [Invalid_argument] when ids are not
    dense (id = array index). *)

val with_states : t -> vm_state array -> t
(** Same cluster, explicit state vector (shared, not copied). *)

val with_nodes : t -> Node.t array -> t
(** Same VMs and states over a replaced node set — e.g. a crashed node
    swapped for its zero-capacity stand-in ({!Node.crashed}). Raises
    [Invalid_argument] when the count changes or ids are not dense. *)

val node_count : t -> int
val vm_count : t -> int
val nodes : t -> Node.t array
val vms : t -> Vm.t array
val node : t -> Node.id -> Node.t
val vm : t -> Vm.id -> Vm.t

val state : t -> Vm.id -> vm_state
val set_state : t -> Vm.id -> vm_state -> t
(** Functional update (copy-on-write). *)

val host : t -> Vm.id -> Node.id option
(** Hosting node of a running VM. *)

val image_host : t -> Vm.id -> Node.id option
(** Node storing a sleeping VM's image. *)

val lifecycle : t -> Vm.id -> Lifecycle.state
val lifecycle_of_state : vm_state -> Lifecycle.state

val running_on : t -> Node.id -> Vm.id list
val sleeping_on : t -> Node.id -> Vm.id list
val ram_sleeping_on : t -> Node.id -> Vm.id list
val running_vms : t -> Vm.id list

val cpu_load : t -> Demand.t -> Node.id -> int
val mem_load : t -> Node.id -> int
val free_cpu : t -> Demand.t -> Node.id -> int
val free_mem : t -> Node.id -> int

val loads : t -> Demand.t -> int array * int array
(** [(cpu, mem)] load of every node, in one O(vms + nodes) pass. *)

val node_viable : t -> Demand.t -> Node.id -> bool
val is_viable : t -> Demand.t -> bool
val overloaded_nodes : t -> Demand.t -> Node.id list

val fits : t -> Demand.t -> cpu:int -> mem:int -> Node.id -> bool
(** Whether one more VM with those demands fits on the node. *)

val vjob_state : t -> Vjob.t -> Lifecycle.state option
(** The common life-cycle state of a vjob's VMs, or [None] when the VMs
    disagree (transient during a cluster-wide context switch). *)

val vjob_consistent : t -> Vjob.t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
