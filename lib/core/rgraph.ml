(* The reconfiguration graph (section 4.1): the set of actions needed to
   move from the current configuration to a target one, one action per
   VM whose state must change. The planner re-derives this graph after
   each pool, which also transparently handles bypass migrations (the
   bypassed VM simply gets a fresh migration from its pivot). *)

exception Unreachable of string

let unreachable fmt = Fmt.kstr (fun s -> raise (Unreachable s)) fmt

(* The action that moves [vm_id] from its current state to its target
   state, or [None] when no action is needed. *)
let action_for ~current ~target vm_id =
  let open Configuration in
  match (state current vm_id, state target vm_id) with
  | Waiting, Waiting | Terminated, Terminated -> None
  | Waiting, Running dst -> Some (Action.Run { vm = vm_id; dst })
  | Waiting, Terminated -> None (* cancelled before ever running *)
  | Running src, Running dst ->
    if src = dst then None else Some (Action.Migrate { vm = vm_id; src; dst })
  | Running host, Sleeping _ ->
    (* a suspend writes the image locally: the stored location is the
       current host, whatever the target announces *)
    Some (Action.Suspend { vm = vm_id; host })
  | Running host, Sleeping_ram _ ->
    Some (Action.Suspend_ram { vm = vm_id; host })
  | Running host, Terminated -> Some (Action.Stop { vm = vm_id; host })
  | Sleeping src, Running dst -> Some (Action.Resume { vm = vm_id; src; dst })
  | Sleeping_ram host, Running dst ->
    if dst = host then Some (Action.Resume_ram { vm = vm_id; host })
    else
      unreachable "VM %d: a RAM image cannot move (host N%d, asked N%d)"
        vm_id host dst
  | Sleeping _, Sleeping _ -> None (* the image stays where it is *)
  | Sleeping_ram _, Sleeping_ram _ -> None
  | (Sleeping _ | Sleeping_ram _), Terminated ->
    None (* discard the image; no VM action *)
  | Sleeping _, Sleeping_ram _ | Sleeping_ram _, Sleeping _ ->
    unreachable "VM %d: cannot move an image between disk and RAM" vm_id
  | Waiting, (Sleeping _ | Sleeping_ram _) ->
    unreachable "VM %d: cannot go from waiting to sleeping" vm_id
  | (Running _ | Sleeping _ | Sleeping_ram _), Waiting ->
    unreachable "VM %d: cannot go back to waiting" vm_id
  | Terminated, (Waiting | Running _ | Sleeping _ | Sleeping_ram _) ->
    unreachable "VM %d: cannot leave the terminated state" vm_id

(* All pending actions between two configurations. *)
let actions ~current ~target =
  if Configuration.vm_count current <> Configuration.vm_count target then
    invalid_arg "Rgraph.actions: configurations with different VM sets";
  let acc = ref [] in
  for vm_id = Configuration.vm_count current - 1 downto 0 do
    match action_for ~current ~target vm_id with
    | Some a -> acc := a :: !acc
    | None -> ()
  done;
  if !Entropy_obs.Obs.enabled then begin
    let module Metrics = Entropy_obs.Metrics in
    Metrics.incr (Metrics.counter "rgraph.derivations");
    Metrics.add (Metrics.counter "rgraph.actions") (List.length !acc)
  end;
  !acc

(* Salvage after a failed action: every frozen VM (typically the VMs
   whose actions terminally failed) keeps its current state in the
   target, so re-deriving the graph against the patched target yields
   exactly the surviving actions — the dependency closure minus
   everything invalidated by the freeze. *)
let salvage_target ~current ~target ~frozen =
  if Configuration.vm_count current <> Configuration.vm_count target then
    invalid_arg "Rgraph.salvage_target: configurations with different VM sets";
  let result = ref target in
  for vm_id = 0 to Configuration.vm_count target - 1 do
    if
      frozen vm_id
      && not
           (Configuration.equal_vm_state
              (Configuration.state current vm_id)
              (Configuration.state target vm_id))
    then
      result :=
        Configuration.set_state !result vm_id
          (Configuration.state current vm_id)
  done;
  !result

(* Expected suspend location of every sleeping VM in [target], given
   where they run in [current]: suspends are local. Used to normalize a
   decision module's output before planning. *)
let normalize_sleeping ~current target =
  let result = ref target in
  for vm_id = 0 to Configuration.vm_count target - 1 do
    match (Configuration.state current vm_id, Configuration.state target vm_id)
    with
    | Configuration.Running host, Configuration.Sleeping loc when loc <> host
      -> result := Configuration.set_state !result vm_id (Configuration.Sleeping host)
    | Configuration.Sleeping loc, Configuration.Sleeping loc' when loc <> loc'
      -> result := Configuration.set_state !result vm_id (Configuration.Sleeping loc)
    | Configuration.Running host, Configuration.Sleeping_ram loc
      when loc <> host ->
      result :=
        Configuration.set_state !result vm_id (Configuration.Sleeping_ram host)
    | Configuration.Sleeping_ram loc, Configuration.Sleeping_ram loc'
      when loc <> loc' ->
      result :=
        Configuration.set_state !result vm_id (Configuration.Sleeping_ram loc)
    | _ -> ()
  done;
  !result
