(** Reconfiguration plans: sequential pools of parallel actions. *)

type t

val make : Action.t list list -> t
(** Build a plan from pools (empty pools are dropped). *)

val empty : t
val is_empty : t -> bool

val restrict : t -> keep:(Action.t -> bool) -> t
(** Keep only the actions satisfying [keep]; pools emptied by the filter
    are dropped. Restriction does not re-check dependencies — run
    {!validate} (or rebuild through the planner) on the result. *)

val pools : t -> Action.t list list
val pool_count : t -> int
val actions : t -> Action.t list
val action_count : t -> int

val cost : Configuration.t -> t -> int
(** Plan cost under the Table 1 model (see {!Cost.plan}). *)

val migration_count : t -> int
val suspend_count : t -> int
val resume_count : t -> int
val run_count : t -> int
val stop_count : t -> int

val local_resume_count : t -> int
(** Resumes performed on the node that stored the image. *)

val ram_suspend_count : t -> int
val ram_resume_count : t -> int

type violation =
  | Pool_infeasible of { pool : int; action : Action.t }
  | Wrong_final_state of {
      vm : Vm.id;
      expected : Configuration.vm_state;
      got : Configuration.vm_state;
    }
  | Invalid_application of { pool : int; action : Action.t; reason : string }

val pp_violation : Format.formatter -> violation -> unit

val validate :
  current:Configuration.t -> target:Configuration.t -> demand:Demand.t ->
  t -> violation list
(** Check that every pool is simultaneously feasible (claims evaluated
    against the pool-start configuration) and that the plan ends exactly
    in [target]. *)

val is_valid :
  current:Configuration.t -> target:Configuration.t -> demand:Demand.t ->
  t -> bool

val pp : Format.formatter -> t -> unit
