(** Decision modules: from a cluster observation to a target
    configuration and its reconfiguration plan. *)

type observation = {
  config : Configuration.t;
  demand : Demand.t;
  queue : Vjob.t list;       (** non-terminated vjobs *)
  finished : Vjob.id list;   (** flagged complete by their owners *)
}

type t = {
  name : string;
  decide : observation -> Optimizer.result;
}

val apply_stops :
  Configuration.t -> Vjob.t list -> Vjob.id list -> Configuration.t
(** Target states of the finished vjobs' VMs (terminated). *)

val prefer_ram_suspends :
  current:Configuration.t -> Configuration.t -> Configuration.t
(** Flip disk suspends to RAM suspends wherever the target leaves enough
    memory on the VM's host (paper, section 7 future work). *)

val consolidation_with :
  name:string -> ?heuristic:Ffd.heuristic ->
  ?rules:Placement_rules.t list -> ?suspend_to_ram:bool ->
  (current:Configuration.t -> demand:Demand.t -> vjobs:Vjob.t list ->
   placed:Vm.id list -> target_base:Configuration.t -> Optimizer.result) ->
  t
(** The consolidation flow (stops, RJSP trial packing, optional
    suspend-to-RAM preference) around a pluggable placement optimiser:
    the callback receives the RJSP outcome ([placed] VMs to re-place on
    top of [target_base]) and returns the chosen target and plan.
    Lets alternative engines — e.g. the lib/place portfolio — reuse the
    whole decision flow. *)

val consolidation :
  ?cp_timeout:float -> ?cp_node_limit:int -> ?heuristic:Ffd.heuristic ->
  ?rules:Placement_rules.t list -> ?suspend_to_ram:bool -> unit -> t
(** The paper's sample module: stops, RJSP (FCFS + FFD trial packing),
    CP optimisation of the context switch. Placement rules are enforced
    both by the heuristic trial packing and by the optimiser; with
    [suspend_to_ram] the module keeps suspended images in RAM when
    memory allows, trading memory for nearly-free resumes. *)

val weighted :
  ?cp_timeout:float -> ?cp_node_limit:int -> ?heuristic:Ffd.heuristic ->
  ?rules:Placement_rules.t list -> ?suspend_to_ram:bool ->
  weight:(Vjob.t -> int) -> unit -> t
(** Priority-queue variant of {!consolidation}: the RJSP scans vjobs by
    decreasing weight (FCFS among equals), so heavier vjobs are admitted
    first and suspended last. *)

val ffd_only : ?heuristic:Ffd.heuristic -> unit -> t
(** Ablation / Figure 10 baseline: first viable FFD configuration, no
    cost optimisation. *)
