(** The Entropy control loop (paper, Figure 4):
    observe -> decide -> plan -> execute, every [period] seconds. *)

type exec_report = {
  failed_vms : Vm.id list;
      (** VMs whose action terminally failed (their state is unchanged) *)
  lost_nodes : Node.id list;
      (** nodes that crashed during the switch *)
}

val clean : exec_report
(** The all-went-well report. *)

val report_ok : exec_report -> bool

type driver = {
  observe : unit -> Decision.observation;
  execute : Plan.t -> exec_report;
      (** blocks until the switch completes, reports the damage *)
  wait : float -> unit;
  finished : unit -> bool;
}

type iteration = {
  index : int;
  observation : Decision.observation;
  result : Optimizer.result;
  executed : bool;  (** false when the plan was empty *)
  recoveries : int;
      (** immediate replans performed after degraded switches *)
}

val default_period : float
(** 30 s, as in the paper's sample policy. *)

val default_max_recoveries : int
(** 3: a degraded switch triggers at most three immediate
    observe/decide/execute rounds before deferring to the next
    iteration. *)

val step : ?max_recoveries:int -> Decision.t -> driver -> int -> iteration
(** One iteration. When the driver reports a degraded switch (failed VMs
    or lost nodes), the loop immediately re-observes the post-failure
    state, re-decides, and re-executes — at most [max_recoveries] times —
    instead of waiting for the next period. The returned [iteration]
    carries the last round's observation and result. *)

val run :
  ?period:float -> ?max_iterations:int -> ?max_recoveries:int ->
  Decision.t -> driver -> iteration list
