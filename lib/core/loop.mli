(** The Entropy control loop (paper, Figure 4):
    observe -> decide -> plan -> execute, every [period] seconds. *)

type exec_report = {
  failed_vms : Vm.id list;
      (** VMs whose action terminally failed (their state is unchanged) *)
  lost_nodes : Node.id list;
      (** nodes that crashed during the switch *)
}

val clean : exec_report
(** The all-went-well report. *)

val report_ok : exec_report -> bool

type driver = {
  observe : unit -> Decision.observation;
  execute : Plan.t -> exec_report;
      (** blocks until the switch completes, reports the damage *)
  wait : float -> unit;
  finished : unit -> bool;
}

type hooks = {
  on_switch_begin :
    index:int -> source:Configuration.t -> target:Configuration.t ->
    demand:Demand.t -> plan:Plan.t -> unit;
      (** called right before a non-empty plan is handed to the driver —
          the write-ahead point: everything needed to re-derive the
          switch is available here *)
  on_switch_end : index:int -> report:exec_report -> unit;
      (** called right after the driver reports back *)
}
(** Journaling hooks. The core stays journal-agnostic: lib/journal (or a
    test) supplies callbacks; {!no_hooks} costs two closure calls per
    switch. *)

val no_hooks : hooks

type iteration = {
  index : int;
  observation : Decision.observation;
  result : Optimizer.result;
  executed : bool;  (** false when the plan was empty *)
  recoveries : int;
      (** immediate replans performed after degraded switches *)
}

type outcome =
  | Converged of iteration
      (** the last round's switch completed with a clean report (or
          needed no switch at all) *)
  | Degraded of iteration * exec_report
      (** the recovery budget ran out with failed VMs or lost nodes
          still outstanding — the residue is in the report. Callers
          must not simply iterate again with the same inputs (that is
          the livelock this variant guards against): escalate, repair,
          or back off. *)

val iteration_of : outcome -> iteration
val converged : outcome -> bool

val default_period : float
(** 30 s, as in the paper's sample policy. *)

val default_max_recoveries : int
(** 3: a degraded switch triggers at most three immediate
    observe/decide/execute rounds before deferring to the next
    iteration. *)

val step :
  ?max_recoveries:int -> ?hooks:hooks -> Decision.t -> driver -> int ->
  outcome
(** One iteration. When the driver reports a degraded switch (failed VMs
    or lost nodes), the loop immediately re-observes the post-failure
    state, re-decides, and re-executes — at most [max_recoveries] times —
    instead of waiting for the next period. [Converged] carries the last
    round's observation and result; [Degraded] additionally carries the
    unrepaired residue. *)

val decide_event :
  ?max_recoveries:int -> ?hooks:hooks -> reason:string -> Decision.t ->
  driver -> int -> outcome
(** Event-driven entry point for reactive controllers (the daemon):
    identical decision semantics to {!step}, but invoked because a
    trigger fired — [reason] names the coalesced trigger for the log
    and the trace stream — rather than because a period elapsed. *)

val resume :
  ?max_recoveries:int -> ?hooks:hooks -> target:Configuration.t ->
  plan:Plan.t -> Decision.t -> driver -> int -> outcome
(** Crash-recovery entry point: like {!step}, but the first round
    executes the given recovery-derived plan towards [target] instead of
    consulting the decision module (the synthesized result has
    [improved = false] and no search stats). An empty [plan] means the
    reconciliation found nothing left to do. A degraded resume falls
    into the same bounded recovery replans as {!step}, which decide
    afresh. *)

val run :
  ?period:float -> ?max_iterations:int -> ?max_recoveries:int ->
  ?hooks:hooks -> Decision.t -> driver -> iteration list
