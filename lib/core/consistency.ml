(* Consistency of inter-dependent VMs (end of section 4.1).

   The decision module gives every VM of a vjob the same target state,
   but the plan manipulates VMs individually, which could suspend the
   VMs of one distributed application seconds or minutes apart and break
   it. Experiments (ref [10] of the paper) show the application survives
   when the suspends (resp. resumes) of a vjob happen in a short period,
   in a fixed order.

   This module alters a plan accordingly:
   - the suspends of a vjob all move to the earliest pool holding one of
     them (suspends are always feasible, so advancing them is safe);
   - the resumes of a vjob all move to the pool holding the *last* of
     them (delaying a resource claim keeps every intermediate pool
     feasible — resources only get freer);
   - inside a pool, actions are sorted by VM name so the executor can
     pipeline them deterministically (one start per second). *)

let pool_index_of pools pred =
  let found = ref [] in
  Array.iteri
    (fun i pool -> if List.exists pred pool then found := i :: !found)
    pools;
  !found (* descending order *)

let move_actions pools pred ~to_pool =
  let moved = ref [] in
  Array.iteri
    (fun i pool ->
      if i <> to_pool then begin
        let mine, rest = List.partition pred pool in
        moved := !moved @ mine;
        pools.(i) <- rest
      end)
    pools;
  pools.(to_pool) <- pools.(to_pool) @ !moved

(* -- cycle-break re-validation (ROADMAP open item 4) ---------------------- *)

(* A disk-route cycle break materialises as a Suspend at pool [i] paired
   with a Resume of the same VM at a later pool [j]: the suspend stood in
   for a migration that was infeasible when the planner reached it. The
   regrouping above can move a same-vjob resume to a later pool, leaving
   the migration's destination emptier at pool [i] — the direct migration
   becomes feasible there and the verifier (rightly) treats the detour as
   an unjustified extra hop. Drop it: replace the suspend with the direct
   migration and delete the paired resume, keeping the substitution only
   when the whole plan still validates (sibling claims in pool [i] or in
   the pools between [i] and [j] could otherwise overflow). *)
let revalidate_cycle_breaks ~config ~demand plan =
  let final_config plan =
    List.fold_left
      (fun c pool -> List.fold_left Action.apply c pool)
      config (Plan.pools plan)
  in
  let target = try Some (final_config plan) with Action.Invalid _ -> None in
  match target with
  | None -> plan
  | Some target ->
    let valid p = Plan.validate ~current:config ~target ~demand p = [] in
    let rec fix plan budget =
      if budget <= 0 then plan
      else
        let pools = Array.of_list (Plan.pools plan) in
        let n = Array.length pools in
        let starts = Array.make n config in
        let c = ref config in
        Array.iteri
          (fun i pool ->
            starts.(i) <- !c;
            c := List.fold_left Action.apply !c pool)
          pools;
        (* first detour whose direct migration fits at its pool start *)
        let detour = ref None in
        for i = n - 1 downto 0 do
          List.iter
            (function
              | Action.Suspend { vm; host } ->
                for j = i + 1 to n - 1 do
                  List.iter
                    (function
                      | Action.Resume { vm = vm'; src; dst }
                        when vm' = vm && src = host && dst <> host ->
                        let direct = Action.Migrate { vm; src = host; dst } in
                        if Action.feasible starts.(i) demand direct then
                          detour := Some (i, j, vm, direct)
                      | _ -> ())
                    pools.(j)
                done
              | _ -> ())
            pools.(i)
        done;
        (match !detour with
        | None -> plan
        | Some (i, j, vm, direct) ->
          let without_pair keep_direct =
            let pools' = Array.copy pools in
            pools'.(i) <-
              List.concat_map
                (function
                  | Action.Suspend { vm = v; _ } when v = vm ->
                    if keep_direct then [ direct ] else []
                  | a -> [ a ])
                pools.(i);
            pools'.(j) <-
              List.filter
                (function
                  | Action.Resume { vm = v; _ } -> v <> vm
                  | _ -> true)
                pools'.(j);
            pools'
          in
          (* in-place substitution first (fewer pools), then the claim-safe
             variant that gives the migration its own pool before [i] *)
          let in_place = Plan.make (Array.to_list (without_pair true)) in
          let own_pool =
            let pools' = Array.to_list (without_pair false) in
            let rec insert k = function
              | rest when k = 0 -> [ direct ] :: rest
              | p :: rest -> p :: insert (k - 1) rest
              | [] -> [ [ direct ] ]
            in
            Plan.make (insert i pools')
          in
          if valid in_place then fix in_place (budget - 1)
          else if valid own_pool then fix own_pool (budget - 1)
          else plan)
    in
    fix plan (Plan.action_count plan)

let enforce ~config ~demand ~vjobs plan =
  let pools = Array.of_list (Plan.pools plan) in
  if Array.length pools = 0 then plan
  else begin
    List.iter
      (fun vjob ->
        let vms = Vjob.vms vjob in
        let is_suspend = function
          | Action.Suspend { vm; _ } | Action.Suspend_ram { vm; _ } ->
            List.mem vm vms
          | _ -> false
        in
        let is_resume = function
          | Action.Resume { vm; _ } | Action.Resume_ram { vm; _ } ->
            List.mem vm vms
          | _ -> false
        in
        (match pool_index_of pools is_suspend with
        | [] -> ()
        | indices ->
          let earliest = List.fold_left min max_int indices in
          move_actions pools is_suspend ~to_pool:earliest);
        match pool_index_of pools is_resume with
        | [] -> ()
        | indices ->
          let latest = List.fold_left max (-1) indices in
          move_actions pools is_resume ~to_pool:latest)
      vjobs;
    (* deterministic in-pool order: sort by the VM's name, then id *)
    let by_vm_name a b =
      let va = Configuration.vm config (Action.vm a) in
      let vb = Configuration.vm config (Action.vm b) in
      match String.compare (Vm.name va) (Vm.name vb) with
      | 0 -> Int.compare (Vm.id va) (Vm.id vb)
      | c -> c
    in
    Array.iteri (fun i pool -> pools.(i) <- List.sort by_vm_name pool) pools;
    revalidate_cycle_breaks ~config ~demand (Plan.make (Array.to_list pools))
  end

(* Suspends and resumes of one vjob that ended up in the same pool: used
   by tests and by the executor to know what to pipeline. *)
let grouped_in_same_pool plan vjob kind =
  let vms = Vjob.vms vjob in
  let matches = function
    | (Action.Suspend { vm; _ } | Action.Suspend_ram { vm; _ })
      when kind = `Suspend -> List.mem vm vms
    | (Action.Resume { vm; _ } | Action.Resume_ram { vm; _ })
      when kind = `Resume -> List.mem vm vms
    | _ -> false
  in
  let pools_with =
    List.filteri
      (fun _ pool -> List.exists matches pool)
      (Plan.pools plan)
  in
  List.length pools_with <= 1
