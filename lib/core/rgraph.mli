(** Reconfiguration graphs: the pending actions between two
    configurations (one action per VM whose state differs). *)

exception Unreachable of string
(** Raised when a VM's target state cannot be reached by any single
    action (e.g. waiting -> sleeping). *)

val action_for :
  current:Configuration.t -> target:Configuration.t -> Vm.id ->
  Action.t option

val actions : current:Configuration.t -> target:Configuration.t -> Action.t list
(** All pending actions, in VM-id order. Raises {!Unreachable} on an
    impossible per-VM transition, [Invalid_argument] on mismatched VM
    sets. *)

val salvage_target :
  current:Configuration.t -> target:Configuration.t ->
  frozen:(Vm.id -> bool) -> Configuration.t
(** The target with every frozen VM pinned to its current state. After a
    failed action, re-deriving the graph against the salvaged target
    yields the surviving actions: the dependency closure minus
    everything invalidated by the freeze. *)

val normalize_sleeping :
  current:Configuration.t -> Configuration.t -> Configuration.t
(** Rewrite the target's sleeping locations to where the images will
    actually be written (suspends are local to the current host; stored
    images do not move). *)
