(* A configuration maps every VM of the cluster to a state: Waiting (not
   yet instantiated), Running on a node, Sleeping with its image stored
   on a node, or Terminated. A configuration is *viable* when every
   running VM has access to sufficient CPU and memory on its host
   (section 3.2) — waiting and sleeping VMs consume neither.

   VM and node identifiers are dense: [Vm.id] (resp. [Node.id]) is the
   index of the VM (resp. node) in the configuration's arrays. *)

type vm_state =
  | Waiting
  | Running of Node.id
  | Sleeping of Node.id  (* node whose disk holds the suspended image *)
  | Sleeping_ram of Node.id
      (* suspended in the host's RAM (paper section 7 future work):
         memory stays allocated, CPU is freed, resume is nearly free but
         only possible on that host *)
  | Terminated

let pp_vm_state ppf = function
  | Waiting -> Fmt.string ppf "waiting"
  | Running n -> Fmt.pf ppf "running@@N%d" n
  | Sleeping n -> Fmt.pf ppf "sleeping@@N%d" n
  | Sleeping_ram n -> Fmt.pf ppf "sleeping-ram@@N%d" n
  | Terminated -> Fmt.string ppf "terminated"

let equal_vm_state (a : vm_state) b = a = b

type t = {
  nodes : Node.t array;
  vms : Vm.t array;
  states : vm_state array;
}

let check_dense_ids nodes vms =
  Array.iteri
    (fun i n ->
      if Node.id n <> i then
        invalid_arg "Configuration.make: node ids must equal their index")
    nodes;
  Array.iteri
    (fun i v ->
      if Vm.id v <> i then
        invalid_arg "Configuration.make: vm ids must equal their index")
    vms

let make ~nodes ~vms =
  check_dense_ids nodes vms;
  { nodes; vms; states = Array.make (Array.length vms) Waiting }

let with_states t states =
  if Array.length states <> Array.length t.vms then
    invalid_arg "Configuration.with_states: arity mismatch";
  { t with states }

let with_nodes t nodes =
  if Array.length nodes <> Array.length t.nodes then
    invalid_arg "Configuration.with_nodes: node count mismatch";
  Array.iteri
    (fun i n ->
      if Node.id n <> i then
        invalid_arg "Configuration.with_nodes: node ids must equal their index")
    nodes;
  { t with nodes }

let node_count t = Array.length t.nodes
let vm_count t = Array.length t.vms
let nodes t = t.nodes
let vms t = t.vms

let node t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg "Configuration.node: unknown node"
  else t.nodes.(id)

let vm t id =
  if id < 0 || id >= Array.length t.vms then
    invalid_arg "Configuration.vm: unknown VM"
  else t.vms.(id)

let state t vm_id =
  if vm_id < 0 || vm_id >= Array.length t.states then
    invalid_arg "Configuration.state: unknown VM"
  else t.states.(vm_id)

let set_state t vm_id s =
  ignore (state t vm_id);
  let states = Array.copy t.states in
  states.(vm_id) <- s;
  { t with states }

let host t vm_id =
  match state t vm_id with
  | Running n -> Some n
  | Waiting | Sleeping _ | Sleeping_ram _ | Terminated -> None

let image_host t vm_id =
  match state t vm_id with
  | Sleeping n | Sleeping_ram n -> Some n
  | Waiting | Running _ | Terminated -> None

let lifecycle_of_state = function
  | Waiting -> Lifecycle.Waiting
  | Running _ -> Lifecycle.Running
  | Sleeping _ | Sleeping_ram _ -> Lifecycle.Sleeping
  | Terminated -> Lifecycle.Terminated

let lifecycle t vm_id = lifecycle_of_state (state t vm_id)

let fold_vms f acc t =
  let acc = ref acc in
  Array.iteri (fun id s -> acc := f !acc id s) t.states;
  !acc

let running_on t node_id =
  List.rev
    (fold_vms
       (fun acc id -> function
         | Running n when n = node_id -> id :: acc
         | Running _ | Waiting | Sleeping _ | Sleeping_ram _ | Terminated ->
           acc)
       [] t)

let sleeping_on t node_id =
  List.rev
    (fold_vms
       (fun acc id -> function
         | Sleeping n when n = node_id -> id :: acc
         | Sleeping _ | Waiting | Running _ | Sleeping_ram _ | Terminated ->
           acc)
       [] t)

let ram_sleeping_on t node_id =
  List.rev
    (fold_vms
       (fun acc id -> function
         | Sleeping_ram n when n = node_id -> id :: acc
         | Sleeping_ram _ | Waiting | Running _ | Sleeping _ | Terminated ->
           acc)
       [] t)

let running_vms t =
  List.rev
    (fold_vms
       (fun acc id -> function
         | Running _ -> id :: acc
         | Waiting | Sleeping _ | Sleeping_ram _ | Terminated -> acc)
       [] t)

(* -- loads ---------------------------------------------------------------- *)

let cpu_load t demand node_id =
  List.fold_left
    (fun acc vm_id -> acc + Demand.cpu demand vm_id)
    0 (running_on t node_id)

(* A RAM-suspended VM keeps its memory allocated on the host. *)
let mem_load t node_id =
  List.fold_left
    (fun acc vm_id -> acc + Vm.memory_mb t.vms.(vm_id))
    0
    (running_on t node_id @ ram_sleeping_on t node_id)

let free_cpu t demand node_id =
  Node.cpu_capacity t.nodes.(node_id) - cpu_load t demand node_id

let free_mem t node_id = Node.memory_mb t.nodes.(node_id) - mem_load t node_id

(* Both loads of every node at once; O(vms + nodes). *)
let loads t demand =
  let n = Array.length t.nodes in
  let cpu = Array.make n 0 and mem = Array.make n 0 in
  Array.iteri
    (fun vm_id -> function
      | Running node ->
        cpu.(node) <- cpu.(node) + Demand.cpu demand vm_id;
        mem.(node) <- mem.(node) + Vm.memory_mb t.vms.(vm_id)
      | Sleeping_ram node ->
        mem.(node) <- mem.(node) + Vm.memory_mb t.vms.(vm_id)
      | Waiting | Sleeping _ | Terminated -> ())
    t.states;
  (cpu, mem)

let node_viable t demand node_id =
  free_cpu t demand node_id >= 0 && free_mem t node_id >= 0

let is_viable t demand =
  let cpu, mem = loads t demand in
  let ok = ref true in
  Array.iteri
    (fun i node ->
      if cpu.(i) > Node.cpu_capacity node || mem.(i) > Node.memory_mb node
      then ok := false)
    t.nodes;
  !ok

let overloaded_nodes t demand =
  let cpu, mem = loads t demand in
  let acc = ref [] in
  for i = Array.length t.nodes - 1 downto 0 do
    let node = t.nodes.(i) in
    if cpu.(i) > Node.cpu_capacity node || mem.(i) > Node.memory_mb node
    then acc := i :: !acc
  done;
  !acc

(* Room for one more VM with the given demands on the given node. *)
let fits t demand ~cpu ~mem node_id =
  free_cpu t demand node_id >= cpu && free_mem t node_id >= mem

(* -- vjob-level view ------------------------------------------------------ *)

let vjob_state t (vjob : Vjob.t) =
  match Vjob.vms vjob with
  | [] -> None
  | first :: rest ->
    let s = lifecycle t first in
    if List.for_all (fun v -> lifecycle t v = s) rest then Some s else None

let vjob_consistent t vjob = Option.is_some (vjob_state t vjob)

let equal a b =
  Array.length a.states = Array.length b.states
  && Array.for_all2 equal_vm_state a.states b.states
  && Array.length a.nodes = Array.length b.nodes

let pp ppf t =
  let pp_one ppf (vm, s) =
    Fmt.pf ppf "%s:%a" (Vm.name vm) pp_vm_state s
  in
  let entries =
    Array.to_list (Array.mapi (fun i s -> (t.vms.(i), s)) t.states)
  in
  Fmt.pf ppf "@[<hov>%a@]" Fmt.(list ~sep:sp pp_one) entries
