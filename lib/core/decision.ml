(* Decision modules (section 3.2). A decision module turns an
   observation of the cluster — current configuration, monitored
   demands, FCFS queue, completion notices — into a target configuration
   (with its reconfiguration plan, via the optimiser).

   The sample module reproduces the paper's dynamic consolidation
   policy: stop the finished vjobs, solve the RJSP with FFD trial
   packing, then let the CP optimiser pick placements that minimise the
   cluster-wide context switch cost. *)

type observation = {
  config : Configuration.t;
  demand : Demand.t;
  queue : Vjob.t list;  (* non-terminated vjobs, any order *)
  finished : Vjob.id list;  (* vjobs flagged complete by their owner *)
}

type t = {
  name : string;
  decide : observation -> Optimizer.result;
}

let is_finished obs vjob = List.mem (Vjob.id vjob) obs.finished

(* Mark the running VMs of the finished vjobs as terminated. *)
let apply_stops config queue finished =
  List.fold_left
    (fun cfg vjob ->
      if List.mem (Vjob.id vjob) finished then
        List.fold_left
          (fun cfg vm_id ->
            match Configuration.state cfg vm_id with
            | Configuration.Running _ | Configuration.Sleeping _
            | Configuration.Sleeping_ram _ | Configuration.Waiting ->
              Configuration.set_state cfg vm_id Configuration.Terminated
            | Configuration.Terminated -> cfg)
          cfg (Vjob.vms vjob)
      else cfg)
    config queue

(* Suspend-to-RAM preference (paper section 7): a vjob that must leave
   the cluster keeps its images in its hosts' RAM when the target
   configuration leaves enough memory there — making the later resume
   nearly free. Applied VM by VM, whole vjobs at a time (mixing RAM and
   disk images inside one vjob would complicate its re-admission). *)
let prefer_ram_suspends ~current target =
  let vm_count = Configuration.vm_count target in
  let fits_in_ram cfg vm_id host =
    Configuration.free_mem cfg host
    >= Vm.memory_mb (Configuration.vm cfg vm_id)
  in
  let rec convert cfg vm_id =
    if vm_id >= vm_count then cfg
    else
      let cfg =
        match
          (Configuration.state current vm_id, Configuration.state cfg vm_id)
        with
        | Configuration.Running host, Configuration.Sleeping _
          when fits_in_ram cfg vm_id host ->
          Configuration.set_state cfg vm_id (Configuration.Sleeping_ram host)
        | _ -> cfg
      in
      convert cfg (vm_id + 1)
  in
  convert target 0

(* The consolidation skeleton with a pluggable placement optimiser, so
   alternative engines (the lib/place local-search portfolio) can reuse
   the whole decision flow — stops, RJSP, suspend-to-RAM preference —
   without lib/core depending on them. *)
let consolidation_with ~name ?(heuristic = Ffd.First_fit) ?(rules = [])
    ?(suspend_to_ram = false) optimize_fn =
  let decide obs =
    let live_queue = List.filter (fun v -> not (is_finished obs v)) obs.queue in
    (* finished vjobs disappear before the trial packing *)
    let config_after_stops = apply_stops obs.config obs.queue obs.finished in
    let outcome =
      Rjsp.solve ~heuristic ~rules ~config:config_after_stops
        ~demand:obs.demand ~queue:live_queue ()
    in
    let placed = List.concat_map Vjob.vms outcome.Rjsp.running in
    let optimize target_base =
      optimize_fn ~current:obs.config ~demand:obs.demand ~vjobs:live_queue
        ~placed ~target_base
    in
    if not suspend_to_ram then optimize outcome.Rjsp.ffd_config
    else
      (* RAM images pin memory on their hosts, which can gridlock the
         reconfiguration (a migration cycle without a pivot); fall back
         to disk suspension when that happens *)
      match
        optimize
          (prefer_ram_suspends ~current:obs.config outcome.Rjsp.ffd_config)
      with
      | result -> result
      | exception Planner.Stuck _ -> optimize outcome.Rjsp.ffd_config
  in
  { name; decide }

let consolidation ?(cp_timeout = Optimizer.default_timeout) ?cp_node_limit
    ?(heuristic = Ffd.First_fit) ?(rules = []) ?(suspend_to_ram = false) () =
  let name =
    if suspend_to_ram then "dynamic-consolidation+ram"
    else "dynamic-consolidation"
  in
  consolidation_with ~name ~heuristic ~rules ~suspend_to_ram
    (fun ~current ~demand ~vjobs ~placed ~target_base ->
      Optimizer.optimize ~timeout:cp_timeout ?node_limit:cp_node_limit
        ~vjobs ~rules ~current ~demand ~placed ~target_base
        ~fallback:target_base ())

(* Weighted variant: the queue is ordered by decreasing vjob weight
   (ties FCFS) before the RJSP scan — the "vjob weights or priority
   queues" the paper's section 3.2 mentions as common approaches. Higher
   weights are served (and so suspended last) first. *)
let weighted ?(cp_timeout = Optimizer.default_timeout) ?cp_node_limit
    ?(heuristic = Ffd.First_fit) ?(rules = []) ?(suspend_to_ram = false)
    ~weight () =
  let base =
    consolidation ~cp_timeout ?cp_node_limit ~heuristic ~rules
      ~suspend_to_ram ()
  in
  let decide obs =
    let reorder =
      List.stable_sort
        (fun a b ->
          match Int.compare (weight b) (weight a) with
          | 0 -> Vjob.compare_fcfs a b
          | c -> c)
        obs.queue
    in
    (* re-rank priorities so the RJSP's FCFS sort preserves the weight
       order *)
    let queue =
      List.mapi
        (fun rank vj ->
          Vjob.make ~id:(Vjob.id vj) ~name:(Vjob.name vj)
            ~vms:(Vjob.vms vj) ~priority:rank
            ~submit_time:(Vjob.submit_time vj) ())
        reorder
    in
    base.decide { obs with queue }
  in
  { name = "weighted-consolidation"; decide }

(* Ablation: the plain FFD heuristic, no CP optimisation — the baseline
   of Figure 10. *)
let ffd_only ?(heuristic = Ffd.First_fit) () =
  let decide obs =
    let live_queue = List.filter (fun v -> not (is_finished obs v)) obs.queue in
    let config_after_stops = apply_stops obs.config obs.queue obs.finished in
    let outcome =
      Rjsp.solve ~heuristic ~config:config_after_stops ~demand:obs.demand
        ~queue:live_queue ()
    in
    let target = outcome.Rjsp.ffd_config in
    let plan =
      Planner.build_plan ~vjobs:live_queue ~current:obs.config ~target
        ~demand:obs.demand ()
    in
    {
      Optimizer.target;
      plan;
      cost = Plan.cost obs.config plan;
      improved = false;
      rules_satisfied = true;
      stats = None;
    }
  in
  { name = Printf.sprintf "%s-only" (Ffd.heuristic_to_string heuristic); decide }
