(** Keeping the VMs of a vjob consistent during a cluster-wide context
    switch: group a vjob's suspends (resp. resumes) into a single pool so
    the executor can run them within a short, ordered window. *)

val enforce :
  config:Configuration.t -> demand:Demand.t -> vjobs:Vjob.t list ->
  Plan.t -> Plan.t
(** Move each vjob's suspends to the earliest pool containing one and its
    resumes to the latest; sort every pool by VM name for deterministic
    pipelining. Feasibility of the plan is preserved. Disk-route cycle
    breaks whose direct migration became feasible after the regrouping
    (ROADMAP open item 4) are replaced by that migration. *)

val grouped_in_same_pool :
  Plan.t -> Vjob.t -> [ `Suspend | `Resume ] -> bool
(** Whether all of the vjob's suspend (resp. resume) actions live in a
    single pool of the plan. *)
