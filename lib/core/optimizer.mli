(** The CP optimiser (paper, section 4.3): search the viable placements
    of the running VMs for one whose reconfiguration plan cost is
    minimal, with branch & bound and a timeout. Placement rules
    ({!Placement_rules}) are maintained during the optimisation — the
    paper's section 7 future work. *)

type result = {
  target : Configuration.t;  (** the chosen viable target configuration *)
  plan : Plan.t;             (** feasible plan from current to target *)
  cost : int;                (** true plan cost (Table 1 model) *)
  improved : bool;           (** the search beat the heuristic fallback *)
  rules_satisfied : bool;    (** the placement rules hold in [target] *)
  stats : Fdcp.Search.stats option;  (** [None] when no search ran *)
}

val default_timeout : float

val cost_table : Configuration.t -> Vm.id -> node_count:int -> int array
(** Local action cost of running the VM on each node next iteration,
    given its current state (0 / Dm / 2Dm, Table 1). *)

val residual_capacities :
  Configuration.t -> Demand.t -> placed:Vm.id list -> int array * int array
(** Per-node [(cpu, mem)] capacities left once the VMs of the base
    configuration that are {e not} being re-placed are accounted for.
    Shared by the CP model and the local-search engines (lib/place). *)

type model = {
  store : Fdcp.Store.t;
  hvars : Fdcp.Var.t array;
      (** placement variables, one per placed VM, valued over nodes *)
  placed_vms : Vm.id array;  (** [placed_vms.(i)] is [hvars.(i)]'s VM *)
  obj : Fdcp.Var.t;  (** sum of local action costs *)
  cap_cpu : int array;  (** residual per-node CPU capacities *)
  cap_mem : int array;  (** residual per-node memory capacities *)
  rules_postable : bool;
      (** false when posting the placement rules already failed: the
          model is inconsistent and no search should run *)
}

val build_model :
  ?rules:Placement_rules.t list ->
  current:Configuration.t -> demand:Demand.t -> placed:Vm.id list ->
  target_base:Configuration.t -> unit -> model
(** The CP model {!optimize} searches: packing constraints for CPU and
    memory viability, placement-rule constraints, and the cost
    objective. Exposed for the analysis passes (model linter, propagator
    sanitizer, [entropyctl lint]). *)

val optimize :
  ?timeout:float -> ?node_limit:int -> ?restarts:int ->
  ?vjobs:Vjob.t list -> ?rules:Placement_rules.t list ->
  ?incumbent_cost:int ->
  current:Configuration.t -> demand:Demand.t -> placed:Vm.id list ->
  target_base:Configuration.t -> fallback:Configuration.t -> unit -> result
(** [optimize ~current ~demand ~placed ~target_base ~fallback ()]
    re-places the VMs of [placed] (they will be Running) on top of
    [target_base] (which carries every other VM's target state), keeping
    the result viable and rule-compliant. [fallback] is a complete viable
    target (e.g. the RJSP FFD configuration) used when the search finds
    nothing better within the timeout; a rule-satisfying CP solution is
    preferred over a rule-violating fallback whatever the cost. The
    returned plan includes vjob consistency grouping when [vjobs] is
    given.

    [incumbent_cost] warm-starts branch & bound by posting an upper
    bound on the objective: the search only explores placements with a
    strictly smaller objective. Passing an incumbent plan's true cost
    preserves true-cost optimality (the objective is an admissible lower
    bound of the true cost, so no true-cost-better plan is pruned);
    passing an incumbent placement's objective value prunes harder but
    restricts the search to objective-better placements, which may
    exclude plans that win on sequencing penalties alone. *)
