(* Journal records and their durable form.

   Every record serializes to a single JSON line wrapped with an FNV-1a
   checksum of the payload: [{"crc":C,"rec":R}]. The checksum turns a
   torn write (the controller died mid-append) or a flipped byte into a
   detectable corruption instead of a silently wrong replay; [Journal]
   treats the first bad line as the end of the durable prefix.

   Configurations are serialized in full (nodes with capacities, VMs,
   states) so a journal is self-contained: recovery does not need the
   cluster description that produced it. *)

open Entropy_core
module Json = Entropy_obs.Json

type t =
  | Switch_begin of {
      switch : int;
      at_s : float;
      source : Configuration.t;
      target : Configuration.t;
      plan : Plan.t;
      demand : Demand.t;
      seed : int option;
    }
  | Action_started of {
      switch : int;
      pool : int;
      attempt : int;
      at_s : float;
      action : Action.t;
    }
  | Action_done of { switch : int; pool : int; at_s : float; action : Action.t }
  | Action_failed of {
      switch : int;
      pool : int;
      at_s : float;
      action : Action.t;
    }
  | Pool_committed of { switch : int; pool : int; at_s : float }
  | Switch_end of { switch : int; at_s : float; aborted : bool }

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

let switch = function
  | Switch_begin { switch; _ }
  | Action_started { switch; _ }
  | Action_done { switch; _ }
  | Action_failed { switch; _ }
  | Pool_committed { switch; _ }
  | Switch_end { switch; _ } -> switch

let at_s = function
  | Switch_begin { at_s; _ }
  | Action_started { at_s; _ }
  | Action_done { at_s; _ }
  | Action_failed { at_s; _ }
  | Pool_committed { at_s; _ }
  | Switch_end { at_s; _ } -> at_s

(* -- encoding ---------------------------------------------------------------- *)

let action_to_json a =
  let open Json in
  match a with
  | Action.Run { vm; dst } -> Obj [ ("k", String "run"); ("vm", Int vm); ("dst", Int dst) ]
  | Action.Stop { vm; host } ->
    Obj [ ("k", String "stop"); ("vm", Int vm); ("host", Int host) ]
  | Action.Migrate { vm; src; dst } ->
    Obj [ ("k", String "migrate"); ("vm", Int vm); ("src", Int src); ("dst", Int dst) ]
  | Action.Suspend { vm; host } ->
    Obj [ ("k", String "suspend"); ("vm", Int vm); ("host", Int host) ]
  | Action.Resume { vm; src; dst } ->
    Obj [ ("k", String "resume"); ("vm", Int vm); ("src", Int src); ("dst", Int dst) ]
  | Action.Suspend_ram { vm; host } ->
    Obj [ ("k", String "suspend-ram"); ("vm", Int vm); ("host", Int host) ]
  | Action.Resume_ram { vm; host } ->
    Obj [ ("k", String "resume-ram"); ("vm", Int vm); ("host", Int host) ]

let state_to_json s =
  let open Json in
  match s with
  | Configuration.Waiting -> String "waiting"
  | Configuration.Terminated -> String "terminated"
  | Configuration.Running n -> Obj [ ("s", String "running"); ("n", Int n) ]
  | Configuration.Sleeping n -> Obj [ ("s", String "sleeping"); ("n", Int n) ]
  | Configuration.Sleeping_ram n ->
    Obj [ ("s", String "sleeping-ram"); ("n", Int n) ]

let config_to_json c =
  let open Json in
  let nodes =
    Array.to_list (Configuration.nodes c)
    |> List.map (fun n ->
           Obj
             [
               ("name", String (Node.name n));
               ("cpu", Int (Node.cpu_capacity n));
               ("mem", Int (Node.memory_mb n));
             ])
  in
  let vms =
    Array.to_list (Configuration.vms c)
    |> List.map (fun vm ->
           Obj
             [
               ("name", String (Vm.name vm)); ("mem", Int (Vm.memory_mb vm));
             ])
  in
  let states =
    List.init (Configuration.vm_count c) (fun vm ->
        state_to_json (Configuration.state c vm))
  in
  Obj [ ("nodes", List nodes); ("vms", List vms); ("states", List states) ]

let plan_to_json plan =
  Json.List
    (List.map
       (fun pool -> Json.List (List.map action_to_json pool))
       (Plan.pools plan))

let demand_to_json d =
  Json.List
    (List.init (Demand.vm_count d) (fun vm -> Json.Int (Demand.cpu d vm)))

let to_json r =
  let open Json in
  match r with
  | Switch_begin { switch; at_s; source; target; plan; demand; seed } ->
    Obj
      ([
         ("t", String "begin");
         ("sw", Int switch);
         ("at", Float at_s);
         ("source", config_to_json source);
         ("target", config_to_json target);
         ("plan", plan_to_json plan);
         ("demand", demand_to_json demand);
       ]
      @ match seed with None -> [] | Some s -> [ ("seed", Int s) ])
  | Action_started { switch; pool; attempt; at_s; action } ->
    Obj
      [
        ("t", String "start");
        ("sw", Int switch);
        ("pool", Int pool);
        ("n", Int attempt);
        ("at", Float at_s);
        ("a", action_to_json action);
      ]
  | Action_done { switch; pool; at_s; action } ->
    Obj
      [
        ("t", String "done");
        ("sw", Int switch);
        ("pool", Int pool);
        ("at", Float at_s);
        ("a", action_to_json action);
      ]
  | Action_failed { switch; pool; at_s; action } ->
    Obj
      [
        ("t", String "failed");
        ("sw", Int switch);
        ("pool", Int pool);
        ("at", Float at_s);
        ("a", action_to_json action);
      ]
  | Pool_committed { switch; pool; at_s } ->
    Obj
      [
        ("t", String "pool");
        ("sw", Int switch);
        ("pool", Int pool);
        ("at", Float at_s);
      ]
  | Switch_end { switch; at_s; aborted } ->
    Obj
      [
        ("t", String "end");
        ("sw", Int switch);
        ("at", Float at_s);
        ("aborted", Bool aborted);
      ]

(* -- decoding ---------------------------------------------------------------- *)

let get_int name j =
  match Json.member name j with
  | Some (Json.Int i) -> i
  | _ -> corrupt "missing integer field %S" name

let get_float name j =
  match Option.bind (Json.member name j) Json.number with
  | Some f -> f
  | None -> corrupt "missing numeric field %S" name

let get_string name j =
  match Option.bind (Json.member name j) Json.string_value with
  | Some s -> s
  | None -> corrupt "missing string field %S" name

let get_list name j =
  match Option.bind (Json.member name j) Json.to_list with
  | Some l -> l
  | None -> corrupt "missing array field %S" name

let action_of_json j =
  match get_string "k" j with
  | "run" -> Action.Run { vm = get_int "vm" j; dst = get_int "dst" j }
  | "stop" -> Action.Stop { vm = get_int "vm" j; host = get_int "host" j }
  | "migrate" ->
    Action.Migrate
      { vm = get_int "vm" j; src = get_int "src" j; dst = get_int "dst" j }
  | "suspend" -> Action.Suspend { vm = get_int "vm" j; host = get_int "host" j }
  | "resume" ->
    Action.Resume
      { vm = get_int "vm" j; src = get_int "src" j; dst = get_int "dst" j }
  | "suspend-ram" ->
    Action.Suspend_ram { vm = get_int "vm" j; host = get_int "host" j }
  | "resume-ram" ->
    Action.Resume_ram { vm = get_int "vm" j; host = get_int "host" j }
  | k -> corrupt "unknown action kind %S" k

let state_of_json = function
  | Json.String "waiting" -> Configuration.Waiting
  | Json.String "terminated" -> Configuration.Terminated
  | j -> (
    match get_string "s" j with
    | "running" -> Configuration.Running (get_int "n" j)
    | "sleeping" -> Configuration.Sleeping (get_int "n" j)
    | "sleeping-ram" -> Configuration.Sleeping_ram (get_int "n" j)
    | s -> corrupt "unknown VM state %S" s)

let config_of_json j =
  let nodes =
    get_list "nodes" j
    |> List.mapi (fun id n ->
           let cpu = get_int "cpu" n and mem = get_int "mem" n in
           let name = get_string "name" n in
           (* [Node.make] rejects non-positive capacities; a zeroed node
              in a journal is a crashed one (the only way the API builds
              one), so rebuild it through [Node.crashed] *)
           if cpu <= 0 || mem <= 0 then
             Node.crashed
               (Node.make ~id ~name ~cpu_capacity:(max 1 cpu)
                  ~memory_mb:(max 1 mem))
           else Node.make ~id ~name ~cpu_capacity:cpu ~memory_mb:mem)
    |> Array.of_list
  in
  let vms =
    get_list "vms" j
    |> List.mapi (fun id v ->
           Vm.make ~id ~name:(get_string "name" v) ~memory_mb:(get_int "mem" v))
    |> Array.of_list
  in
  let states = get_list "states" j |> List.map state_of_json in
  if List.length states <> Array.length vms then
    corrupt "configuration: %d states for %d VMs" (List.length states)
      (Array.length vms);
  let config = Configuration.make ~nodes ~vms in
  Configuration.with_states config (Array.of_list states)

let plan_of_json j =
  match Json.to_list j with
  | None -> corrupt "plan: expected an array of pools"
  | Some pools ->
    Plan.make
      (List.map
         (fun pool ->
           match Json.to_list pool with
           | None -> corrupt "plan: expected an array of actions"
           | Some actions -> List.map action_of_json actions)
         pools)

let demand_of_json j =
  match Json.to_list j with
  | None -> corrupt "demand: expected an array"
  | Some cpus ->
    let arr =
      Array.of_list
        (List.map
           (function
             | Json.Int i -> i | _ -> corrupt "demand: expected integers")
           cpus)
    in
    Demand.of_fn ~vm_count:(Array.length arr) (fun vm -> arr.(vm))

let of_json j =
  let field name =
    match Json.member name j with
    | Some v -> v
    | None -> corrupt "missing field %S" name
  in
  match get_string "t" j with
  | "begin" ->
    Switch_begin
      {
        switch = get_int "sw" j;
        at_s = get_float "at" j;
        source = config_of_json (field "source");
        target = config_of_json (field "target");
        plan = plan_of_json (field "plan");
        demand = demand_of_json (field "demand");
        seed =
          (match Json.member "seed" j with
          | Some (Json.Int s) -> Some s
          | _ -> None);
      }
  | "start" ->
    Action_started
      {
        switch = get_int "sw" j;
        pool = get_int "pool" j;
        attempt = get_int "n" j;
        at_s = get_float "at" j;
        action = action_of_json (field "a");
      }
  | "done" ->
    Action_done
      {
        switch = get_int "sw" j;
        pool = get_int "pool" j;
        at_s = get_float "at" j;
        action = action_of_json (field "a");
      }
  | "failed" ->
    Action_failed
      {
        switch = get_int "sw" j;
        pool = get_int "pool" j;
        at_s = get_float "at" j;
        action = action_of_json (field "a");
      }
  | "pool" ->
    Pool_committed
      { switch = get_int "sw" j; pool = get_int "pool" j; at_s = get_float "at" j }
  | "end" ->
    Switch_end
      {
        switch = get_int "sw" j;
        at_s = get_float "at" j;
        aborted =
          (match Json.member "aborted" j with
          | Some (Json.Bool b) -> b
          | _ -> corrupt "missing boolean field \"aborted\"");
      }
  | t -> corrupt "unknown record type %S" t

(* -- checksummed line form ---------------------------------------------------- *)

let checksum s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

let to_line r =
  let payload = Json.to_string (to_json r) in
  Json.to_string
    (Json.Obj [ ("crc", Json.Int (checksum payload)); ("rec", Json.String payload) ])

let of_line line =
  let j =
    try Json.parse line
    with Json.Parse_error e -> corrupt "unparseable line: %s" e
  in
  let crc =
    match Json.member "crc" j with
    | Some (Json.Int c) -> c
    | _ -> corrupt "missing checksum"
  in
  let payload =
    match Option.bind (Json.member "rec" j) Json.string_value with
    | Some p -> p
    | None -> corrupt "missing record payload"
  in
  if checksum payload <> crc then
    corrupt "checksum mismatch (stored %d, computed %d)" crc (checksum payload);
  let rec_json =
    try Json.parse payload
    with Json.Parse_error e -> corrupt "unparseable record payload: %s" e
  in
  of_json rec_json

(* -- equality & printing ------------------------------------------------------ *)

let equal_demand a b =
  Demand.vm_count a = Demand.vm_count b
  && List.for_all
       (fun vm -> Demand.cpu a vm = Demand.cpu b vm)
       (List.init (Demand.vm_count a) Fun.id)

let equal_plan a b =
  let pa = Plan.pools a and pb = Plan.pools b in
  List.length pa = List.length pb
  && List.for_all2
       (fun la lb ->
         List.length la = List.length lb && List.for_all2 Action.equal la lb)
       pa pb

let equal a b =
  match (a, b) with
  | Switch_begin x, Switch_begin y ->
    x.switch = y.switch && x.at_s = y.at_s
    && Configuration.equal x.source y.source
    && Configuration.equal x.target y.target
    && equal_plan x.plan y.plan && equal_demand x.demand y.demand
    && x.seed = y.seed
  | Action_started x, Action_started y ->
    x.switch = y.switch && x.pool = y.pool && x.attempt = y.attempt
    && x.at_s = y.at_s && Action.equal x.action y.action
  | Action_done x, Action_done y ->
    x.switch = y.switch && x.pool = y.pool && x.at_s = y.at_s
    && Action.equal x.action y.action
  | Action_failed x, Action_failed y ->
    x.switch = y.switch && x.pool = y.pool && x.at_s = y.at_s
    && Action.equal x.action y.action
  | Pool_committed x, Pool_committed y ->
    x.switch = y.switch && x.pool = y.pool && x.at_s = y.at_s
  | Switch_end x, Switch_end y ->
    x.switch = y.switch && x.at_s = y.at_s && x.aborted = y.aborted
  | _ -> false

let pp ppf = function
  | Switch_begin { switch; at_s; plan; _ } ->
    Fmt.pf ppf "begin sw=%d at=%.0fs (%d actions)" switch at_s
      (Plan.action_count plan)
  | Action_started { switch; pool; attempt; at_s; action } ->
    Fmt.pf ppf "start sw=%d pool=%d n=%d at=%.0fs %a" switch pool attempt at_s
      Action.pp action
  | Action_done { switch; pool; at_s; action } ->
    Fmt.pf ppf "done sw=%d pool=%d at=%.0fs %a" switch pool at_s Action.pp
      action
  | Action_failed { switch; pool; at_s; action } ->
    Fmt.pf ppf "failed sw=%d pool=%d at=%.0fs %a" switch pool at_s Action.pp
      action
  | Pool_committed { switch; pool; at_s } ->
    Fmt.pf ppf "pool sw=%d pool=%d at=%.0fs" switch pool at_s
  | Switch_end { switch; at_s; aborted } ->
    Fmt.pf ppf "end sw=%d at=%.0fs%s" switch at_s
      (if aborted then " (aborted)" else "")
