(* Journal records and their durable forms.

   The durable form is a length-prefixed binary frame: an 11-byte
   header (magic "EJ", a format version byte, the payload length and an
   FNV-1a checksum of the payload, both little-endian u32) followed by a
   compact binary payload. The checksum turns a torn write (the
   controller died mid-append) or a flipped byte into a detectable
   corruption instead of a silently wrong replay; [Journal] treats the
   first bad frame as the end of the durable prefix.

   The JSON line form ([to_line]/[of_line], one checksummed JSON object
   per line) is kept as the debug export (`entropyctl journal dump`) and
   as the decoder for journals written before the binary format; the
   first byte of a journal file selects the codec ('{' is never a valid
   frame magic).

   Configurations are serialized in full (nodes with capacities, VMs,
   states) so a journal is self-contained: recovery does not need the
   cluster description that produced it. *)

open Entropy_core
module Json = Entropy_obs.Json

type t =
  | Switch_begin of {
      switch : int;
      at_s : float;
      source : Configuration.t;
      target : Configuration.t;
      plan : Plan.t;
      demand : Demand.t;
      seed : int option;
    }
  | Action_started of {
      switch : int;
      pool : int;
      attempt : int;
      at_s : float;
      action : Action.t;
    }
  | Action_done of { switch : int; pool : int; at_s : float; action : Action.t }
  | Action_failed of {
      switch : int;
      pool : int;
      at_s : float;
      action : Action.t;
    }
  | Pool_committed of { switch : int; pool : int; at_s : float }
  | Switch_end of { switch : int; at_s : float; aborted : bool }
  | Submission of {
      at_s : float;
      vjob : int;
      vms : int;
      disposition : disposition;
    }
  | Ladder of { at_s : float; from_level : int; to_level : int; reason : string }

and disposition = Queued | Admitted | Rejected of string

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

(* daemon-level records (submissions, ladder transitions) live outside
   any switch; they answer -1 so [Recovery.next_switch_id] ignores them *)
let switch = function
  | Switch_begin { switch; _ }
  | Action_started { switch; _ }
  | Action_done { switch; _ }
  | Action_failed { switch; _ }
  | Pool_committed { switch; _ }
  | Switch_end { switch; _ } -> switch
  | Submission _ | Ladder _ -> -1

let at_s = function
  | Switch_begin { at_s; _ }
  | Action_started { at_s; _ }
  | Action_done { at_s; _ }
  | Action_failed { at_s; _ }
  | Pool_committed { at_s; _ }
  | Switch_end { at_s; _ }
  | Submission { at_s; _ }
  | Ladder { at_s; _ } -> at_s

(* The submission payload carries its own version byte so later PRs can
   append fields without burning a new record tag; readers reject
   versions they do not know instead of misparsing. *)
let submission_version = 1
let ladder_version = 1

(* -- encoding ---------------------------------------------------------------- *)

let action_to_json a =
  let open Json in
  match a with
  | Action.Run { vm; dst } -> Obj [ ("k", String "run"); ("vm", Int vm); ("dst", Int dst) ]
  | Action.Stop { vm; host } ->
    Obj [ ("k", String "stop"); ("vm", Int vm); ("host", Int host) ]
  | Action.Migrate { vm; src; dst } ->
    Obj [ ("k", String "migrate"); ("vm", Int vm); ("src", Int src); ("dst", Int dst) ]
  | Action.Suspend { vm; host } ->
    Obj [ ("k", String "suspend"); ("vm", Int vm); ("host", Int host) ]
  | Action.Resume { vm; src; dst } ->
    Obj [ ("k", String "resume"); ("vm", Int vm); ("src", Int src); ("dst", Int dst) ]
  | Action.Suspend_ram { vm; host } ->
    Obj [ ("k", String "suspend-ram"); ("vm", Int vm); ("host", Int host) ]
  | Action.Resume_ram { vm; host } ->
    Obj [ ("k", String "resume-ram"); ("vm", Int vm); ("host", Int host) ]

let state_to_json s =
  let open Json in
  match s with
  | Configuration.Waiting -> String "waiting"
  | Configuration.Terminated -> String "terminated"
  | Configuration.Running n -> Obj [ ("s", String "running"); ("n", Int n) ]
  | Configuration.Sleeping n -> Obj [ ("s", String "sleeping"); ("n", Int n) ]
  | Configuration.Sleeping_ram n ->
    Obj [ ("s", String "sleeping-ram"); ("n", Int n) ]

let config_to_json c =
  let open Json in
  let nodes =
    Array.to_list (Configuration.nodes c)
    |> List.map (fun n ->
           Obj
             [
               ("name", String (Node.name n));
               ("cpu", Int (Node.cpu_capacity n));
               ("mem", Int (Node.memory_mb n));
             ])
  in
  let vms =
    Array.to_list (Configuration.vms c)
    |> List.map (fun vm ->
           Obj
             [
               ("name", String (Vm.name vm)); ("mem", Int (Vm.memory_mb vm));
             ])
  in
  let states =
    List.init (Configuration.vm_count c) (fun vm ->
        state_to_json (Configuration.state c vm))
  in
  Obj [ ("nodes", List nodes); ("vms", List vms); ("states", List states) ]

let plan_to_json plan =
  Json.List
    (List.map
       (fun pool -> Json.List (List.map action_to_json pool))
       (Plan.pools plan))

let demand_to_json d =
  Json.List
    (List.init (Demand.vm_count d) (fun vm -> Json.Int (Demand.cpu d vm)))

let to_json r =
  let open Json in
  match r with
  | Switch_begin { switch; at_s; source; target; plan; demand; seed } ->
    Obj
      ([
         ("t", String "begin");
         ("sw", Int switch);
         ("at", Float at_s);
         ("source", config_to_json source);
         ("target", config_to_json target);
         ("plan", plan_to_json plan);
         ("demand", demand_to_json demand);
       ]
      @ match seed with None -> [] | Some s -> [ ("seed", Int s) ])
  | Action_started { switch; pool; attempt; at_s; action } ->
    Obj
      [
        ("t", String "start");
        ("sw", Int switch);
        ("pool", Int pool);
        ("n", Int attempt);
        ("at", Float at_s);
        ("a", action_to_json action);
      ]
  | Action_done { switch; pool; at_s; action } ->
    Obj
      [
        ("t", String "done");
        ("sw", Int switch);
        ("pool", Int pool);
        ("at", Float at_s);
        ("a", action_to_json action);
      ]
  | Action_failed { switch; pool; at_s; action } ->
    Obj
      [
        ("t", String "failed");
        ("sw", Int switch);
        ("pool", Int pool);
        ("at", Float at_s);
        ("a", action_to_json action);
      ]
  | Pool_committed { switch; pool; at_s } ->
    Obj
      [
        ("t", String "pool");
        ("sw", Int switch);
        ("pool", Int pool);
        ("at", Float at_s);
      ]
  | Switch_end { switch; at_s; aborted } ->
    Obj
      [
        ("t", String "end");
        ("sw", Int switch);
        ("at", Float at_s);
        ("aborted", Bool aborted);
      ]
  | Submission { at_s; vjob; vms; disposition } ->
    Obj
      [
        ("t", String "submission");
        ("v", Int submission_version);
        ("at", Float at_s);
        ("vj", Int vjob);
        ("vms", Int vms);
        ( "d",
          match disposition with
          | Queued -> String "queued"
          | Admitted -> String "admitted"
          | Rejected reason -> Obj [ ("r", String reason) ] );
      ]
  | Ladder { at_s; from_level; to_level; reason } ->
    Obj
      [
        ("t", String "ladder");
        ("v", Int ladder_version);
        ("at", Float at_s);
        ("from", Int from_level);
        ("to", Int to_level);
        ("reason", String reason);
      ]

(* -- decoding ---------------------------------------------------------------- *)

let get_int name j =
  match Json.member name j with
  | Some (Json.Int i) -> i
  | _ -> corrupt "missing integer field %S" name

let get_float name j =
  match Option.bind (Json.member name j) Json.number with
  | Some f -> f
  | None -> corrupt "missing numeric field %S" name

let get_string name j =
  match Option.bind (Json.member name j) Json.string_value with
  | Some s -> s
  | None -> corrupt "missing string field %S" name

let get_list name j =
  match Option.bind (Json.member name j) Json.to_list with
  | Some l -> l
  | None -> corrupt "missing array field %S" name

let action_of_json j =
  match get_string "k" j with
  | "run" -> Action.Run { vm = get_int "vm" j; dst = get_int "dst" j }
  | "stop" -> Action.Stop { vm = get_int "vm" j; host = get_int "host" j }
  | "migrate" ->
    Action.Migrate
      { vm = get_int "vm" j; src = get_int "src" j; dst = get_int "dst" j }
  | "suspend" -> Action.Suspend { vm = get_int "vm" j; host = get_int "host" j }
  | "resume" ->
    Action.Resume
      { vm = get_int "vm" j; src = get_int "src" j; dst = get_int "dst" j }
  | "suspend-ram" ->
    Action.Suspend_ram { vm = get_int "vm" j; host = get_int "host" j }
  | "resume-ram" ->
    Action.Resume_ram { vm = get_int "vm" j; host = get_int "host" j }
  | k -> corrupt "unknown action kind %S" k

let state_of_json = function
  | Json.String "waiting" -> Configuration.Waiting
  | Json.String "terminated" -> Configuration.Terminated
  | j -> (
    match get_string "s" j with
    | "running" -> Configuration.Running (get_int "n" j)
    | "sleeping" -> Configuration.Sleeping (get_int "n" j)
    | "sleeping-ram" -> Configuration.Sleeping_ram (get_int "n" j)
    | s -> corrupt "unknown VM state %S" s)

let config_of_json j =
  let nodes =
    get_list "nodes" j
    |> List.mapi (fun id n ->
           let cpu = get_int "cpu" n and mem = get_int "mem" n in
           let name = get_string "name" n in
           (* [Node.make] rejects non-positive capacities; a zeroed node
              in a journal is a crashed one (the only way the API builds
              one), so rebuild it through [Node.crashed] *)
           if cpu <= 0 || mem <= 0 then
             Node.crashed
               (Node.make ~id ~name ~cpu_capacity:(max 1 cpu)
                  ~memory_mb:(max 1 mem))
           else Node.make ~id ~name ~cpu_capacity:cpu ~memory_mb:mem)
    |> Array.of_list
  in
  let vms =
    get_list "vms" j
    |> List.mapi (fun id v ->
           Vm.make ~id ~name:(get_string "name" v) ~memory_mb:(get_int "mem" v))
    |> Array.of_list
  in
  let states = get_list "states" j |> List.map state_of_json in
  if List.length states <> Array.length vms then
    corrupt "configuration: %d states for %d VMs" (List.length states)
      (Array.length vms);
  let config = Configuration.make ~nodes ~vms in
  Configuration.with_states config (Array.of_list states)

let plan_of_json j =
  match Json.to_list j with
  | None -> corrupt "plan: expected an array of pools"
  | Some pools ->
    Plan.make
      (List.map
         (fun pool ->
           match Json.to_list pool with
           | None -> corrupt "plan: expected an array of actions"
           | Some actions -> List.map action_of_json actions)
         pools)

let demand_of_json j =
  match Json.to_list j with
  | None -> corrupt "demand: expected an array"
  | Some cpus ->
    let arr =
      Array.of_list
        (List.map
           (function
             | Json.Int i -> i | _ -> corrupt "demand: expected integers")
           cpus)
    in
    Demand.of_fn ~vm_count:(Array.length arr) (fun vm -> arr.(vm))

let of_json j =
  let field name =
    match Json.member name j with
    | Some v -> v
    | None -> corrupt "missing field %S" name
  in
  match get_string "t" j with
  | "begin" ->
    Switch_begin
      {
        switch = get_int "sw" j;
        at_s = get_float "at" j;
        source = config_of_json (field "source");
        target = config_of_json (field "target");
        plan = plan_of_json (field "plan");
        demand = demand_of_json (field "demand");
        seed =
          (match Json.member "seed" j with
          | Some (Json.Int s) -> Some s
          | _ -> None);
      }
  | "start" ->
    Action_started
      {
        switch = get_int "sw" j;
        pool = get_int "pool" j;
        attempt = get_int "n" j;
        at_s = get_float "at" j;
        action = action_of_json (field "a");
      }
  | "done" ->
    Action_done
      {
        switch = get_int "sw" j;
        pool = get_int "pool" j;
        at_s = get_float "at" j;
        action = action_of_json (field "a");
      }
  | "failed" ->
    Action_failed
      {
        switch = get_int "sw" j;
        pool = get_int "pool" j;
        at_s = get_float "at" j;
        action = action_of_json (field "a");
      }
  | "pool" ->
    Pool_committed
      { switch = get_int "sw" j; pool = get_int "pool" j; at_s = get_float "at" j }
  | "end" ->
    Switch_end
      {
        switch = get_int "sw" j;
        at_s = get_float "at" j;
        aborted =
          (match Json.member "aborted" j with
          | Some (Json.Bool b) -> b
          | _ -> corrupt "missing boolean field \"aborted\"");
      }
  | "submission" ->
    let v = get_int "v" j in
    if v <> submission_version then
      corrupt "unknown submission record version %d" v;
    Submission
      {
        at_s = get_float "at" j;
        vjob = get_int "vj" j;
        vms = get_int "vms" j;
        disposition =
          (match Json.member "d" j with
          | Some (Json.String "queued") -> Queued
          | Some (Json.String "admitted") -> Admitted
          | Some (Json.Obj _ as o) -> Rejected (get_string "r" o)
          | _ -> corrupt "unknown submission disposition");
      }
  | "ladder" ->
    let v = get_int "v" j in
    if v <> ladder_version then corrupt "unknown ladder record version %d" v;
    Ladder
      {
        at_s = get_float "at" j;
        from_level = get_int "from" j;
        to_level = get_int "to" j;
        reason = get_string "reason" j;
      }
  | t -> corrupt "unknown record type %S" t

(* -- checksummed line form (JSON debug export + legacy journals) ------------- *)

let checksum_sub s ~pos ~len =
  let h = ref 0x811c9dc5 in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * 0x01000193 land 0xffffffff
  done;
  !h

let checksum s = checksum_sub s ~pos:0 ~len:(String.length s)

let to_line r =
  let payload = Json.to_string (to_json r) in
  Json.to_string
    (Json.Obj [ ("crc", Json.Int (checksum payload)); ("rec", Json.String payload) ])

let of_line line =
  let j =
    try Json.parse line
    with Json.Parse_error e -> corrupt "unparseable line: %s" e
  in
  let crc =
    match Json.member "crc" j with
    | Some (Json.Int c) -> c
    | _ -> corrupt "missing checksum"
  in
  let payload =
    match Option.bind (Json.member "rec" j) Json.string_value with
    | Some p -> p
    | None -> corrupt "missing record payload"
  in
  if checksum payload <> crc then
    corrupt "checksum mismatch (stored %d, computed %d)" crc (checksum payload);
  let rec_json =
    try Json.parse payload
    with Json.Parse_error e -> corrupt "unparseable record payload: %s" e
  in
  of_json rec_json

(* -- binary frame form -------------------------------------------------------- *)

(* Frame layout (all multi-byte integers little-endian):

     0  2   magic "EJ"
     2  1   format version (currently 1)
     3  4   payload length (u32)
     7  4   FNV-1a checksum of the payload (u32)
    11  n   payload

   The payload is a record tag byte followed by the record's fields:
   varints (unsigned LEB128) for integers, 8-byte IEEE doubles for
   times, length-prefixed bytes for names. A frame is rejected — ending
   the journal's durable prefix — when the header is short or
   unrecognized, the payload is short, the checksum mismatches, the
   payload decoder fails, or the payload has trailing bytes. *)

let magic = "EJ"
let version = 1
let header_size = 11

let add_varint b v =
  (* negative values take the full-width form through [lsr] and
     round-trip exactly on 64-bit; everything we journal is >= 0 *)
  let rec go v =
    if v land lnot 0x7f = 0 then Buffer.add_char b (Char.unsafe_chr v)
    else begin
      Buffer.add_char b (Char.unsafe_chr (v land 0x7f lor 0x80));
      go (v lsr 7)
    end
  in
  go v

let add_float b f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.unsafe_chr
         (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done

let add_string b s =
  add_varint b (String.length s);
  Buffer.add_string b s

type reader = { src : string; limit : int; mutable pos : int }

let read_byte r =
  if r.pos >= r.limit then corrupt "binary payload: truncated";
  let c = Char.code (String.unsafe_get r.src r.pos) in
  r.pos <- r.pos + 1;
  c

let read_varint r =
  let rec go shift acc =
    if shift > 56 then corrupt "binary payload: varint too long";
    let c = read_byte r in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_float r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits (Int64.shift_left (Int64.of_int (read_byte r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_string r =
  let n = read_varint r in
  if n < 0 || n > r.limit - r.pos then corrupt "binary payload: truncated string";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* actions: tag byte + operand varints *)

let add_action b a =
  let tag t = Buffer.add_char b (Char.unsafe_chr t) in
  match a with
  | Action.Run { vm; dst } ->
    tag 1;
    add_varint b vm;
    add_varint b dst
  | Action.Stop { vm; host } ->
    tag 2;
    add_varint b vm;
    add_varint b host
  | Action.Migrate { vm; src; dst } ->
    tag 3;
    add_varint b vm;
    add_varint b src;
    add_varint b dst
  | Action.Suspend { vm; host } ->
    tag 4;
    add_varint b vm;
    add_varint b host
  | Action.Resume { vm; src; dst } ->
    tag 5;
    add_varint b vm;
    add_varint b src;
    add_varint b dst
  | Action.Suspend_ram { vm; host } ->
    tag 6;
    add_varint b vm;
    add_varint b host
  | Action.Resume_ram { vm; host } ->
    tag 7;
    add_varint b vm;
    add_varint b host

let read_action r =
  match read_byte r with
  | 1 ->
    let vm = read_varint r in
    Action.Run { vm; dst = read_varint r }
  | 2 ->
    let vm = read_varint r in
    Action.Stop { vm; host = read_varint r }
  | 3 ->
    let vm = read_varint r in
    let src = read_varint r in
    Action.Migrate { vm; src; dst = read_varint r }
  | 4 ->
    let vm = read_varint r in
    Action.Suspend { vm; host = read_varint r }
  | 5 ->
    let vm = read_varint r in
    let src = read_varint r in
    Action.Resume { vm; src; dst = read_varint r }
  | 6 ->
    let vm = read_varint r in
    Action.Suspend_ram { vm; host = read_varint r }
  | 7 ->
    let vm = read_varint r in
    Action.Resume_ram { vm; host = read_varint r }
  | t -> corrupt "unknown binary action tag %d" t

let add_state b s =
  let tag t = Buffer.add_char b (Char.unsafe_chr t) in
  match s with
  | Configuration.Waiting -> tag 0
  | Configuration.Terminated -> tag 1
  | Configuration.Running n ->
    tag 2;
    add_varint b n
  | Configuration.Sleeping n ->
    tag 3;
    add_varint b n
  | Configuration.Sleeping_ram n ->
    tag 4;
    add_varint b n

let read_state r =
  match read_byte r with
  | 0 -> Configuration.Waiting
  | 1 -> Configuration.Terminated
  | 2 -> Configuration.Running (read_varint r)
  | 3 -> Configuration.Sleeping (read_varint r)
  | 4 -> Configuration.Sleeping_ram (read_varint r)
  | t -> corrupt "unknown binary VM-state tag %d" t

let add_config b c =
  let nodes = Configuration.nodes c in
  add_varint b (Array.length nodes);
  Array.iter
    (fun n ->
      add_string b (Node.name n);
      add_varint b (Node.cpu_capacity n);
      add_varint b (Node.memory_mb n))
    nodes;
  let vms = Configuration.vms c in
  add_varint b (Array.length vms);
  Array.iter
    (fun vm ->
      add_string b (Vm.name vm);
      add_varint b (Vm.memory_mb vm))
    vms;
  for vm = 0 to Array.length vms - 1 do
    add_state b (Configuration.state c vm)
  done

let read_config r =
  let nodes =
    Array.init (read_varint r) (fun id ->
        let name = read_string r in
        let cpu = read_varint r in
        let mem = read_varint r in
        (* same crashed-node rule as the JSON decoder: zeroed capacities
           only ever come from [Node.crashed] *)
        if cpu <= 0 || mem <= 0 then
          Node.crashed
            (Node.make ~id ~name ~cpu_capacity:(max 1 cpu) ~memory_mb:(max 1 mem))
        else Node.make ~id ~name ~cpu_capacity:cpu ~memory_mb:mem)
  in
  let vms =
    Array.init (read_varint r) (fun id ->
        let name = read_string r in
        Vm.make ~id ~name ~memory_mb:(read_varint r))
  in
  let states = Array.init (Array.length vms) (fun _ -> read_state r) in
  Configuration.with_states (Configuration.make ~nodes ~vms) states

let add_plan b plan =
  let pools = Plan.pools plan in
  add_varint b (List.length pools);
  List.iter
    (fun pool ->
      add_varint b (List.length pool);
      List.iter (add_action b) pool)
    pools

let read_plan r =
  Plan.make
    (List.init (read_varint r) (fun _ ->
         List.init (read_varint r) (fun _ -> read_action r)))

let add_demand b d =
  let n = Demand.vm_count d in
  add_varint b n;
  for vm = 0 to n - 1 do
    add_varint b (Demand.cpu d vm)
  done

let read_demand r =
  let arr = Array.init (read_varint r) (fun _ -> read_varint r) in
  Demand.of_fn ~vm_count:(Array.length arr) (fun vm -> arr.(vm))

let write_payload b r =
  let tag t = Buffer.add_char b (Char.unsafe_chr t) in
  match r with
  | Switch_begin { switch; at_s; source; target; plan; demand; seed } -> (
    tag 1;
    add_varint b switch;
    add_float b at_s;
    add_config b source;
    add_config b target;
    add_plan b plan;
    add_demand b demand;
    match seed with
    | None -> Buffer.add_char b '\000'
    | Some s ->
      Buffer.add_char b '\001';
      add_varint b s)
  | Action_started { switch; pool; attempt; at_s; action } ->
    tag 2;
    add_varint b switch;
    add_varint b pool;
    add_varint b attempt;
    add_float b at_s;
    add_action b action
  | Action_done { switch; pool; at_s; action } ->
    tag 3;
    add_varint b switch;
    add_varint b pool;
    add_float b at_s;
    add_action b action
  | Action_failed { switch; pool; at_s; action } ->
    tag 4;
    add_varint b switch;
    add_varint b pool;
    add_float b at_s;
    add_action b action
  | Pool_committed { switch; pool; at_s } ->
    tag 5;
    add_varint b switch;
    add_varint b pool;
    add_float b at_s
  | Switch_end { switch; at_s; aborted } ->
    tag 6;
    add_varint b switch;
    add_float b at_s;
    Buffer.add_char b (if aborted then '\001' else '\000')
  | Submission { at_s; vjob; vms; disposition } -> (
    tag 7;
    Buffer.add_char b (Char.unsafe_chr submission_version);
    add_float b at_s;
    add_varint b vjob;
    add_varint b vms;
    match disposition with
    | Queued -> Buffer.add_char b '\000'
    | Admitted -> Buffer.add_char b '\001'
    | Rejected reason ->
      Buffer.add_char b '\002';
      add_string b reason)
  | Ladder { at_s; from_level; to_level; reason } ->
    tag 8;
    Buffer.add_char b (Char.unsafe_chr ladder_version);
    add_float b at_s;
    add_varint b from_level;
    add_varint b to_level;
    add_string b reason

let read_payload r =
  match read_byte r with
  | 1 ->
    let switch = read_varint r in
    let at_s = read_float r in
    let source = read_config r in
    let target = read_config r in
    let plan = read_plan r in
    let demand = read_demand r in
    let seed =
      match read_byte r with
      | 0 -> None
      | 1 -> Some (read_varint r)
      | t -> corrupt "unknown binary seed tag %d" t
    in
    Switch_begin { switch; at_s; source; target; plan; demand; seed }
  | 2 ->
    let switch = read_varint r in
    let pool = read_varint r in
    let attempt = read_varint r in
    let at_s = read_float r in
    Action_started { switch; pool; attempt; at_s; action = read_action r }
  | 3 ->
    let switch = read_varint r in
    let pool = read_varint r in
    let at_s = read_float r in
    Action_done { switch; pool; at_s; action = read_action r }
  | 4 ->
    let switch = read_varint r in
    let pool = read_varint r in
    let at_s = read_float r in
    Action_failed { switch; pool; at_s; action = read_action r }
  | 5 ->
    let switch = read_varint r in
    let pool = read_varint r in
    Pool_committed { switch; pool; at_s = read_float r }
  | 6 ->
    let switch = read_varint r in
    let at_s = read_float r in
    let aborted =
      match read_byte r with
      | 0 -> false
      | 1 -> true
      | t -> corrupt "unknown binary aborted tag %d" t
    in
    Switch_end { switch; at_s; aborted }
  | 7 ->
    let v = read_byte r in
    if v <> submission_version then
      corrupt "unknown submission record version %d" v;
    let at_s = read_float r in
    let vjob = read_varint r in
    let vms = read_varint r in
    let disposition =
      match read_byte r with
      | 0 -> Queued
      | 1 -> Admitted
      | 2 -> Rejected (read_string r)
      | d -> corrupt "unknown submission disposition tag %d" d
    in
    Submission { at_s; vjob; vms; disposition }
  | 8 ->
    let v = read_byte r in
    if v <> ladder_version then corrupt "unknown ladder record version %d" v;
    let at_s = read_float r in
    let from_level = read_varint r in
    let to_level = read_varint r in
    Ladder { at_s; from_level; to_level; reason = read_string r }
  | t -> corrupt "unknown binary record tag %d" t

(* one shared scratch buffer: frames are built whole before being
   appended so the header can carry the payload length and checksum *)
(* Highest record tag this reader decodes; bump alongside new
   constructors in [write_payload]/[read_payload]. Frames with a higher
   tag are skipped, not treated as torn. *)
let max_binary_tag = 8

let scratch = Buffer.create 4096

let write_frame b r =
  Buffer.clear scratch;
  write_payload scratch r;
  let payload = Buffer.contents scratch in
  let len = String.length payload in
  let crc = checksum payload in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.unsafe_chr version);
  for i = 0 to 3 do
    Buffer.add_char b (Char.unsafe_chr ((len lsr (8 * i)) land 0xff))
  done;
  for i = 0 to 3 do
    Buffer.add_char b (Char.unsafe_chr ((crc lsr (8 * i)) land 0xff))
  done;
  Buffer.add_string b payload

let to_frame r =
  let b = Buffer.create 256 in
  write_frame b r;
  Buffer.contents b

type frame_result =
  | Frame of t * int  (* decoded record, offset just past its frame *)
  | Skipped of string * int  (* intact frame, unknown record tag *)
  | Torn of string

let read_u32 s pos =
  Char.code (String.unsafe_get s pos)
  lor (Char.code (String.unsafe_get s (pos + 1)) lsl 8)
  lor (Char.code (String.unsafe_get s (pos + 2)) lsl 16)
  lor (Char.code (String.unsafe_get s (pos + 3)) lsl 24)

let read_frame src ~pos =
  let total = String.length src in
  if pos >= total then None
  else if pos + header_size > total then Some (Torn "short frame header")
  else if not (src.[pos] = 'E' && src.[pos + 1] = 'J') then
    Some (Torn "bad frame magic")
  else if Char.code src.[pos + 2] <> version then
    Some (Torn (Printf.sprintf "unknown format version %d" (Char.code src.[pos + 2])))
  else begin
    let len = read_u32 src (pos + 3) in
    let crc = read_u32 src (pos + 7) in
    let payload_start = pos + header_size in
    if len < 0 || len > total - payload_start then Some (Torn "short payload")
    else if checksum_sub src ~pos:payload_start ~len <> crc then
      Some (Torn "frame checksum mismatch")
    else if
      (* the checksum proves the frame arrived whole, so an unknown
         leading tag is a record kind from a newer writer, not damage:
         skip the frame instead of ending the durable prefix *)
      len > 0
      && (Char.code src.[payload_start] < 1
         || Char.code src.[payload_start] > max_binary_tag)
    then
      Some
        (Skipped
           ( Printf.sprintf "unknown record tag %d in intact frame"
               (Char.code src.[payload_start]),
             payload_start + len ))
    else
      let r = { src; pos = payload_start; limit = payload_start + len } in
      match read_payload r with
      | record ->
        if r.pos <> r.limit then Some (Torn "trailing payload bytes")
        else Some (Frame (record, r.limit))
      | exception Corrupt reason -> Some (Torn reason)
  end

(* Group-commit policy hook: every record but [Action_started] is a
   commit point — the journal must be durable past it before the caller
   learns the outcome. Started records may batch: losing one re-runs an
   idempotent action on resume, losing a terminal record would let a
   completion callback act on state the journal never saw. *)
let commit_point = function
  | Action_started _ -> false
  | Switch_begin _ | Action_done _ | Action_failed _ | Pool_committed _
  | Switch_end _ -> true
  (* admission decisions and ladder transitions must be durable before
     the daemon acts on them: a resumed daemon must not re-admit a
     rejected submission or forget which rung it was on *)
  | Submission _ | Ladder _ -> true

(* -- equality & printing ------------------------------------------------------ *)

let equal_demand a b =
  Demand.vm_count a = Demand.vm_count b
  && List.for_all
       (fun vm -> Demand.cpu a vm = Demand.cpu b vm)
       (List.init (Demand.vm_count a) Fun.id)

let equal_plan a b =
  let pa = Plan.pools a and pb = Plan.pools b in
  List.length pa = List.length pb
  && List.for_all2
       (fun la lb ->
         List.length la = List.length lb && List.for_all2 Action.equal la lb)
       pa pb

let equal a b =
  match (a, b) with
  | Switch_begin x, Switch_begin y ->
    x.switch = y.switch && x.at_s = y.at_s
    && Configuration.equal x.source y.source
    && Configuration.equal x.target y.target
    && equal_plan x.plan y.plan && equal_demand x.demand y.demand
    && x.seed = y.seed
  | Action_started x, Action_started y ->
    x.switch = y.switch && x.pool = y.pool && x.attempt = y.attempt
    && x.at_s = y.at_s && Action.equal x.action y.action
  | Action_done x, Action_done y ->
    x.switch = y.switch && x.pool = y.pool && x.at_s = y.at_s
    && Action.equal x.action y.action
  | Action_failed x, Action_failed y ->
    x.switch = y.switch && x.pool = y.pool && x.at_s = y.at_s
    && Action.equal x.action y.action
  | Pool_committed x, Pool_committed y ->
    x.switch = y.switch && x.pool = y.pool && x.at_s = y.at_s
  | Switch_end x, Switch_end y ->
    x.switch = y.switch && x.at_s = y.at_s && x.aborted = y.aborted
  | Submission x, Submission y ->
    x.at_s = y.at_s && x.vjob = y.vjob && x.vms = y.vms
    && x.disposition = y.disposition
  | Ladder x, Ladder y ->
    x.at_s = y.at_s && x.from_level = y.from_level && x.to_level = y.to_level
    && x.reason = y.reason
  | _ -> false

let pp ppf = function
  | Switch_begin { switch; at_s; plan; _ } ->
    Fmt.pf ppf "begin sw=%d at=%.0fs (%d actions)" switch at_s
      (Plan.action_count plan)
  | Action_started { switch; pool; attempt; at_s; action } ->
    Fmt.pf ppf "start sw=%d pool=%d n=%d at=%.0fs %a" switch pool attempt at_s
      Action.pp action
  | Action_done { switch; pool; at_s; action } ->
    Fmt.pf ppf "done sw=%d pool=%d at=%.0fs %a" switch pool at_s Action.pp
      action
  | Action_failed { switch; pool; at_s; action } ->
    Fmt.pf ppf "failed sw=%d pool=%d at=%.0fs %a" switch pool at_s Action.pp
      action
  | Pool_committed { switch; pool; at_s } ->
    Fmt.pf ppf "pool sw=%d pool=%d at=%.0fs" switch pool at_s
  | Switch_end { switch; at_s; aborted } ->
    Fmt.pf ppf "end sw=%d at=%.0fs%s" switch at_s
      (if aborted then " (aborted)" else "")
  | Submission { at_s; vjob; vms; disposition } ->
    Fmt.pf ppf "submission vj=%d (%d VMs) at=%.0fs %s" vjob vms at_s
      (match disposition with
      | Queued -> "queued"
      | Admitted -> "admitted"
      | Rejected reason -> Printf.sprintf "rejected (%s)" reason)
  | Ladder { at_s; from_level; to_level; reason } ->
    Fmt.pf ppf "ladder %d->%d at=%.0fs (%s)" from_level to_level at_s reason
