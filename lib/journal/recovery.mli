(** Crash recovery: replay a journal, reconcile against a fresh
    observation, and derive an idempotent resume plan.

    Replay reconstructs the last in-flight switch from the record
    stream. Reconciliation then classifies every VM by comparing the
    observed configuration with the chain of states the journaled plan
    walks it through: a VM observed in its final chain state is done, a
    VM observed somewhere earlier along the chain is pending (its
    remaining actions re-run), and a VM observed outside its chain has
    diverged and is frozen ({!Rgraph.salvage_target}). A clean
    reconciliation yields a rebuilt plan from the observation to the
    salvaged target; a divergent one returns the residue for
    {!Entropy_fault.Repair.repair_residue}. *)

open Entropy_core

type switch_state = {
  switch : int;
  begun_at : float;
  source : Configuration.t;
  target : Configuration.t;
  plan : Plan.t;
  demand : Demand.t;
  seed : int option;
  done_actions : (int * Action.t) list;
      (** [(pool, action)] with a terminal success record, journal order *)
  failed_actions : (int * Action.t) list;
      (** terminal failure: the VM kept its previous state *)
  in_flight : (int * Action.t) list;
      (** started but no terminal record — interrupted by the crash *)
  committed_pools : int list;
  ended : bool;  (** a {!Record.Switch_end} was journaled *)
  aborted : bool;
}

val replay : Record.t list -> switch_state option
(** State of the last switch begun in the journal; [None] when no
    {!Record.Switch_begin} is present. Records of earlier switches are
    superseded. Runs under the [journal.replay] span. *)

val next_switch_id : Record.t list -> int
(** One past the highest switch id in the records (0 on an empty
    journal) — the id a new switch appended to this journal takes. *)

val projected_config : switch_state -> Configuration.t
(** The source configuration with every journaled done action applied —
    what the cluster should look like according to the journal alone.
    Actions whose precondition no longer holds are skipped, so this is
    total even on odd journals. *)

type vm_class = Done | Pending | Frozen

val pp_vm_class : Format.formatter -> vm_class -> unit

type reconciliation = {
  target : Configuration.t;
      (** normalized, salvaged target the resume aims at *)
  plan : Plan.t option;
      (** rebuilt resume plan from the observation; [None] when the
          residue is non-clean or the planner is stuck — hand the
          residue to repair instead *)
  classes : (Vm.id * vm_class) list;  (** every VM, id order *)
  done_vms : Vm.id list;
  pending_vms : Vm.id list;
  frozen_vms : Vm.id list;
  residue : Entropy_fault.Repair.residue;
      (** frozen VMs that are not benign (a VM observed [Terminated]
          when its vjob simply finished is frozen but clean), plus
          crashed nodes the target still uses for live VMs *)
}

val reconcile :
  ?vjobs:Vjob.t list -> state:switch_state -> observed:Configuration.t ->
  unit -> reconciliation
(** Raises [Invalid_argument] when [observed] disagrees with the
    journaled configurations on VM or node count. *)
