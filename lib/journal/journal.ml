(* Append-only journal over the checksummed line format of [Record].

   The file backend flushes after every append: the durability unit is
   the line, and a crash can lose at most the record being written —
   which [load] then drops as a torn tail. *)

module Obs = Entropy_obs.Obs
module Metrics = Entropy_obs.Metrics

let m_appended = lazy (Metrics.counter "journal.appended")
let m_dropped = lazy (Metrics.counter "journal.dropped_lines")

type backend =
  | Mem of { mutable lines : string list (* newest first *) }
  | File of { path : string; oc : out_channel; mutable closed : bool }

type t = { backend : backend; mutable length : int }

let mem () = { backend = Mem { lines = [] }; length = 0 }

let count_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> close_in ic);
  !n

let open_file path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  (* Appending to an existing journal continues behind its durable
     records, so count what is already there. *)
  { backend = File { path; oc; closed = false }; length = count_lines path }

let path t =
  match t.backend with Mem _ -> None | File { path; _ } -> Some path

let length t = t.length

let append t record =
  let line = Record.to_line record in
  (match t.backend with
  | Mem m -> m.lines <- line :: m.lines
  | File f ->
    if f.closed then invalid_arg "Journal.append: journal is closed";
    output_string f.oc line;
    output_char f.oc '\n';
    flush f.oc);
  t.length <- t.length + 1;
  if !Obs.enabled then Metrics.incr (Lazy.force m_appended);
  Log.debug (fun m -> m "append %a" Record.pp record)

let close t =
  match t.backend with
  | Mem _ -> ()
  | File f ->
    if not f.closed then (
      f.closed <- true;
      close_out f.oc)

let decode_prefix lines =
  (* WAL semantics: the valid prefix ends at the first line that fails
     to parse or checksum; nothing after it is trusted even if it
     parses. *)
  let rec go acc dropped = function
    | [] -> (List.rev acc, dropped)
    | line :: rest -> (
      match Record.of_line line with
      | record -> go (record :: acc) dropped rest
      | exception Record.Corrupt reason ->
        Log.warn (fun m ->
            m "dropping torn/corrupt tail (%d line%s): %s"
              (List.length rest + 1)
              (if rest = [] then "" else "s")
              reason);
        (List.rev acc, List.length rest + 1))
  in
  go [] 0 lines

let load path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let records, dropped = decode_prefix (List.rev !lines) in
  if !Obs.enabled && dropped > 0 then
    Metrics.add (Lazy.force m_dropped) dropped;
  Log.info (fun m ->
      m "loaded %d record%s from %s%s" (List.length records)
        (if List.length records = 1 then "" else "s")
        path
        (if dropped = 0 then "" else Fmt.str " (%d torn lines dropped)" dropped));
  (records, dropped)

let records t =
  match t.backend with
  | Mem m -> fst (decode_prefix (List.rev m.lines))
  | File f ->
    if not f.closed then flush f.oc;
    fst (load f.path)

let of_records rs =
  let t = mem () in
  List.iter (fun r -> append t r) rs;
  t
