(* Append-only journal over the binary frame format of [Record], with
   group commit on the file backend.

   Records accumulate in a reused [Buffer] and are written + flushed as
   a batch: immediately at every commit point (terminal records, pool
   and switch boundaries — see [Record.commit_point]) and otherwise when
   the batch passes a byte or record threshold. Because commit points
   flush synchronously inside [append], a completion callback that runs
   after its terminal record was appended always observes that record
   durable — the write-ahead ordering of PR 5 is preserved; a crash can
   only lose a tail of non-terminal [Action_started] records, which
   resume re-runs idempotently.

   Journals written before the binary format (one checksummed JSON line
   per record) still load: the first byte of the file selects the codec
   ('{' is never a valid frame magic), and appends to such a file stay
   in its line format so the file remains single-codec. *)

module Obs = Entropy_obs.Obs
module Metrics = Entropy_obs.Metrics

let m_appended = lazy (Metrics.counter "journal.appended")
let m_dropped = lazy (Metrics.counter "journal.dropped_records")

type mode = Binary | Json_lines

type file = {
  path : string;
  oc : out_channel;
  buf : Buffer.t;  (* encoded records not yet written to [oc] *)
  flush_bytes : int;
  flush_records : int;
  mode : mode;
  mutable buffered : int;  (* records currently in [buf] *)
  mutable closed : bool;
}

type backend =
  | Mem of { mem_buf : Buffer.t (* binary frames, oldest first *) }
  | File of file

type t = { backend : backend; mutable length : int }

let default_flush_bytes = 64 * 1024
let default_flush_records = 64

let mem () = { backend = Mem { mem_buf = Buffer.create 4096 }; length = 0 }

(* -- decoding ----------------------------------------------------------------- *)

let decode_binary src =
  (* WAL semantics: the valid prefix ends at the first torn or corrupt
     frame; nothing after it is trusted. Frame boundaries inside the
     torn tail are unknowable, so the dropped count is at least 1. *)
  let rec go acc pos =
    match Record.read_frame src ~pos with
    | None -> (List.rev acc, 0)
    | Some (Record.Frame (record, next)) -> go (record :: acc) next
    | Some (Record.Skipped (reason, next)) ->
      (* intact frame from a newer writer: diagnose and keep reading *)
      Log.warn (fun m -> m "skipping frame at byte %d: %s" pos reason);
      go acc next
    | Some (Record.Torn reason) ->
      Log.warn (fun m ->
          m "dropping torn/corrupt tail (%d bytes): %s"
            (String.length src - pos) reason);
      (List.rev acc, 1)
  in
  go [] 0

let decode_lines lines =
  let rec go acc dropped = function
    | [] -> (List.rev acc, dropped)
    | line :: rest -> (
      match Record.of_line line with
      | record -> go (record :: acc) dropped rest
      | exception Record.Corrupt reason ->
        Log.warn (fun m ->
            m "dropping torn/corrupt tail (%d line%s): %s"
              (List.length rest + 1)
              (if rest = [] then "" else "s")
              reason);
        (List.rev acc, List.length rest + 1))
  in
  go [] 0 lines

let split_lines s =
  (* like [String.split_on_char '\n'] but without a phantom final line
     when the file ends in a newline, as written journals do *)
  String.split_on_char '\n' s
  |> List.filter (fun line -> line <> "")

let mode_of_contents contents =
  if String.length contents > 0 && contents.[0] = '{' then Json_lines
  else Binary

let decode_contents contents =
  match mode_of_contents contents with
  | Binary -> decode_binary contents
  | Json_lines -> decode_lines (split_lines contents)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  contents

(* -- lifecycle ---------------------------------------------------------------- *)

let encode_valid_prefix mode records =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      match mode with
      | Binary -> Record.write_frame b r
      | Json_lines ->
        Buffer.add_string b (Record.to_line r);
        Buffer.add_char b '\n')
    records;
  Buffer.contents b

let open_file ?(flush_bytes = default_flush_bytes)
    ?(flush_records = default_flush_records) path =
  let contents = if Sys.file_exists path then read_file path else "" in
  let mode = mode_of_contents contents in
  let records, dropped = decode_contents contents in
  (* Truncate a torn tail before appending: new records written after
     torn garbage would sit beyond the durable prefix and never be
     replayed. Rewriting the valid prefix makes reopen-after-crash
     append where recovery reads. *)
  let valid = encode_valid_prefix mode records in
  let oc =
    if dropped > 0 || String.length valid <> String.length contents then begin
      if dropped > 0 then
        Log.warn (fun m ->
            m "truncating %s to its valid prefix (%d record%s kept)" path
              (List.length records)
              (if List.length records = 1 then "" else "s"));
      let oc =
        open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644
          path
      in
      output_string oc valid;
      flush oc;
      oc
    end
    else
      open_out_gen [ Open_append; Open_creat; Open_wronly; Open_binary ] 0o644
        path
  in
  {
    backend =
      File
        {
          path;
          oc;
          buf = Buffer.create 4096;
          flush_bytes;
          flush_records;
          mode;
          buffered = 0;
          closed = false;
        };
    length = List.length records;
  }

let path t =
  match t.backend with Mem _ -> None | File { path; _ } -> Some path

let length t = t.length

let flush_file f =
  if Buffer.length f.buf > 0 then begin
    Buffer.output_buffer f.oc f.buf;
    Buffer.clear f.buf;
    f.buffered <- 0;
    flush f.oc
  end

let flush t =
  match t.backend with
  | Mem _ -> ()
  | File f -> if not f.closed then flush_file f

let append t record =
  (match t.backend with
  | Mem m -> Record.write_frame m.mem_buf record
  | File f ->
    if f.closed then invalid_arg "Journal.append: journal is closed";
    (match f.mode with
    | Binary -> Record.write_frame f.buf record
    | Json_lines ->
      Buffer.add_string f.buf (Record.to_line record);
      Buffer.add_char f.buf '\n');
    f.buffered <- f.buffered + 1;
    if
      Record.commit_point record
      || f.buffered >= f.flush_records
      || Buffer.length f.buf >= f.flush_bytes
    then flush_file f);
  t.length <- t.length + 1;
  if !Obs.enabled then Metrics.incr (Lazy.force m_appended);
  Log.debug (fun m -> m "append %a" Record.pp record)

let close t =
  match t.backend with
  | Mem _ -> ()
  | File f ->
    if not f.closed then (
      flush_file f;
      f.closed <- true;
      close_out f.oc)

let load path =
  let records, dropped = decode_contents (read_file path) in
  if !Obs.enabled && dropped > 0 then
    Metrics.add (Lazy.force m_dropped) dropped;
  Log.info (fun m ->
      m "loaded %d record%s from %s%s" (List.length records)
        (if List.length records = 1 then "" else "s")
        path
        (if dropped = 0 then ""
         else Fmt.str " (torn tail dropped, >=%d record%s)" dropped
                (if dropped = 1 then "" else "s")));
  (records, dropped)

let records t =
  match t.backend with
  | Mem m -> fst (decode_binary (Buffer.contents m.mem_buf))
  | File f ->
    if not f.closed then flush_file f;
    fst (load f.path)

let of_records rs =
  let t = mem () in
  List.iter (fun r -> append t r) rs;
  t
