(* Crash recovery: journal replay and observation-driven reconciliation.

   Replay is a pure fold over the record stream; the last Switch_begin
   wins and later records of that switch mutate its reconstructed
   state. Reconciliation never trusts the journal over the cluster: the
   journal tells us what the controller *intended* (the plan, and which
   actions reached a terminal record), the observation tells us what
   actually holds, and every VM is classified by where its observed
   state falls on the chain of states its planned actions walk through.

   The chain view matters because a plan may touch one VM twice (bypass
   migrations, disk-backed cycle breaks): seeing the VM in the
   intermediate state means the first hop landed and the second did not
   — a pending VM, not a diverged one. *)

open Entropy_core
module Repair = Entropy_fault.Repair
module Obs = Entropy_obs.Obs
module Metrics = Entropy_obs.Metrics

let m_done = lazy (Metrics.counter "journal.resume.done")
let m_pending = lazy (Metrics.counter "journal.resume.pending")
let m_frozen = lazy (Metrics.counter "journal.resume.frozen")

type switch_state = {
  switch : int;
  begun_at : float;
  source : Configuration.t;
  target : Configuration.t;
  plan : Plan.t;
  demand : Demand.t;
  seed : int option;
  done_actions : (int * Action.t) list;
  failed_actions : (int * Action.t) list;
  in_flight : (int * Action.t) list;
  committed_pools : int list;
  ended : bool;
  aborted : bool;
}

let fresh_state ~switch ~begun_at ~source ~target ~plan ~demand ~seed =
  {
    switch;
    begun_at;
    source;
    target;
    plan;
    demand;
    seed;
    done_actions = [];
    failed_actions = [];
    in_flight = [];
    committed_pools = [];
    ended = false;
    aborted = false;
  }

let drop_in_flight st action =
  List.filter (fun (_, a) -> not (Action.equal a action)) st.in_flight

let step acc record =
  match (record, acc) with
  | Record.Switch_begin { switch; at_s; source; target; plan; demand; seed }, _
    ->
    Some (fresh_state ~switch ~begun_at:at_s ~source ~target ~plan ~demand ~seed)
  (* daemon-level records (admission decisions, ladder transitions) are
     not part of any switch: the daemon's own resume path folds them *)
  | (Record.Submission _ | Record.Ladder _), _ -> acc
  | _, None ->
    Log.warn (fun m ->
        m "ignoring record before any switch begin: %a" Record.pp record);
    None
  | r, Some st when Record.switch r <> st.switch || st.ended ->
    Log.warn (fun m -> m "ignoring stray record: %a" Record.pp r);
    acc
  | Record.Action_started { pool; action; _ }, Some st ->
    Some { st with in_flight = drop_in_flight st action @ [ (pool, action) ] }
  | Record.Action_done { pool; action; _ }, Some st ->
    Some
      {
        st with
        done_actions = st.done_actions @ [ (pool, action) ];
        in_flight = drop_in_flight st action;
      }
  | Record.Action_failed { pool; action; _ }, Some st ->
    Some
      {
        st with
        failed_actions = st.failed_actions @ [ (pool, action) ];
        in_flight = drop_in_flight st action;
      }
  | Record.Pool_committed { pool; _ }, Some st ->
    if List.mem pool st.committed_pools then acc
    else Some { st with committed_pools = st.committed_pools @ [ pool ] }
  | Record.Switch_end { aborted; _ }, Some st ->
    Some { st with ended = true; aborted }

let replay records =
  Obs.span ~cat:"journal" ~name:"journal.replay"
    ~args:[ ("records", Entropy_obs.Trace.I (List.length records)) ]
    (fun () ->
      let state = List.fold_left step None records in
      (match state with
      | Some st ->
        Log.info (fun m ->
            m "replayed switch %d: %d done, %d failed, %d in flight%s"
              st.switch
              (List.length st.done_actions)
              (List.length st.failed_actions)
              (List.length st.in_flight)
              (if st.ended then " (ended)" else ""))
      | None -> Log.info (fun m -> m "replay: empty journal"));
      state)

let next_switch_id records =
  List.fold_left (fun acc r -> max acc (Record.switch r + 1)) 0 records

let projected_config state =
  List.fold_left
    (fun config (_, action) ->
      try Action.apply config action with Action.Invalid _ -> config)
    state.source state.done_actions

type vm_class = Done | Pending | Frozen

let pp_vm_class ppf = function
  | Done -> Fmt.string ppf "done"
  | Pending -> Fmt.string ppf "pending"
  | Frozen -> Fmt.string ppf "frozen"

type reconciliation = {
  target : Configuration.t;
  plan : Plan.t option;
  classes : (Vm.id * vm_class) list;
  done_vms : Vm.id list;
  pending_vms : Vm.id list;
  frozen_vms : Vm.id list;
  residue : Repair.residue;
}

(* The chain of states [vm] passes through under the journaled plan,
   starting at its source state. Applying only this VM's actions over
   the full source configuration is sound because [Action.apply] checks
   life-cycle preconditions, not resources. *)
let state_chain (state : switch_state) vm =
  let actions =
    List.filter (fun a -> Action.vm a = vm) (Plan.actions state.plan)
  in
  let rec go config acc = function
    | [] -> List.rev acc
    | a :: rest -> (
      match Action.apply config a with
      | config' -> go config' (Configuration.state config' vm :: acc) rest
      | exception Action.Invalid reason ->
        (* a valid plan never hits this; tolerate odd journals *)
        Log.warn (fun m ->
            m "vm %d: chain application of %a impossible: %s" vm Action.pp a
              reason);
        List.rev acc)
  in
  go state.source [ Configuration.state state.source vm ] actions

let reconcile ?vjobs ~state ~observed () =
  if Configuration.vm_count observed <> Configuration.vm_count state.source
  then
    invalid_arg "Recovery.reconcile: observation and journal VM counts differ";
  if
    Configuration.node_count observed <> Configuration.node_count state.source
  then
    invalid_arg
      "Recovery.reconcile: observation and journal node counts differ";
  let vm_count = Configuration.vm_count observed in
  let classes =
    List.init vm_count (fun vm ->
        let chain = state_chain state vm in
        let obs = Configuration.state observed vm in
        let final = List.nth chain (List.length chain - 1) in
        let cls =
          if Configuration.equal_vm_state obs final then Done
          else if List.exists (Configuration.equal_vm_state obs) chain then
            Pending
          else Frozen
        in
        (vm, cls))
  in
  let of_class c =
    List.filter_map (fun (vm, k) -> if k = c then Some vm else None) classes
  in
  let done_vms = of_class Done
  and pending_vms = of_class Pending
  and frozen_vms = of_class Frozen in
  let frozen vm = List.mem vm frozen_vms in
  (* A VM observed Terminated that the plan never terminates simply
     finished while the controller was down: frozen (Terminated moves
     nowhere) but benign — no repair needed for it. *)
  let benign vm =
    Configuration.equal_vm_state (Configuration.state observed vm)
      Configuration.Terminated
  in
  let failed_not_done =
    List.filter_map
      (fun (_, a) ->
        let vm = Action.vm a in
        if List.mem vm done_vms then None else Some vm)
      state.failed_actions
  in
  let residue_failed =
    List.sort_uniq compare
      (failed_not_done @ List.filter (fun vm -> not (benign vm)) frozen_vms)
  in
  let lost_nodes =
    (* crashed nodes the target still needs for a live (non-frozen) VM *)
    List.init vm_count Fun.id
    |> List.filter_map (fun vm ->
           if frozen vm then None
           else
             match Configuration.state state.target vm with
             | Configuration.Running n
             | Configuration.Sleeping n
             | Configuration.Sleeping_ram n ->
               if Node.is_crashed (Configuration.node observed n) then Some n
               else None
             | Configuration.Waiting | Configuration.Terminated -> None)
    |> List.sort_uniq compare
  in
  let residue = Repair.{ failed_vms = residue_failed; lost_nodes } in
  let target =
    Rgraph.salvage_target ~current:observed
      ~target:(Rgraph.normalize_sleeping ~current:observed state.target)
      ~frozen
  in
  let plan =
    if Repair.residue_ok residue then
      match
        Planner.build_plan ?vjobs ~current:observed ~target
          ~demand:state.demand ()
      with
      | plan -> Some plan
      | exception ((Planner.Stuck _ | Rgraph.Unreachable _) as e) ->
        Log.warn (fun m ->
            m "resume plan impossible, handing to repair: %s"
              (Printexc.to_string e));
        None
    else None
  in
  if !Obs.enabled then (
    Metrics.add (Lazy.force m_done) (List.length done_vms);
    Metrics.add (Lazy.force m_pending) (List.length pending_vms);
    Metrics.add (Lazy.force m_frozen) (List.length frozen_vms));
  Log.info (fun m ->
      m "reconciled switch %d: %d done, %d pending, %d frozen, %s" state.switch
        (List.length done_vms)
        (List.length pending_vms)
        (List.length frozen_vms)
        (if Repair.residue_ok residue then
           match plan with
           | Some p -> Fmt.str "resume plan of %d actions" (Plan.action_count p)
           | None -> "planner stuck"
         else Fmt.str "residue (%a)" Repair.pp_residue residue));
  { target; plan; classes; done_vms; pending_vms; frozen_vms; residue }
