(** Write-ahead journal records for cluster-wide context switches.

    A controller about to execute a switch appends {!Switch_begin}
    (everything needed to re-derive the decision: source and target
    configurations, the plan, the smoothed demand, the injector seed),
    the executor appends a record at every action state transition, and
    {!Switch_end} closes the switch. After a crash, {!Recovery} replays
    the records to reconstruct the in-flight state.

    The durable form is a length-prefixed binary frame ({!write_frame} /
    {!read_frame}): an 11-byte header (magic, version, payload length,
    FNV-1a checksum) followed by a compact binary payload. A torn or
    corrupted frame is detected by the header checks and checksum and
    ends the durable prefix in {!Journal.load}. The checksummed JSON
    line form ({!to_line} / {!of_line}) remains as the debug export and
    as the decoder for journals written before the binary format. *)

open Entropy_core

type t =
  | Switch_begin of {
      switch : int;  (** switch id, monotone across one journal *)
      at_s : float;  (** simulated (or driver) time of the append *)
      source : Configuration.t;
      target : Configuration.t;
      plan : Plan.t;
      demand : Demand.t;  (** the demand the decision was made against *)
      seed : int option;  (** fault-injector seed, when one is loaded *)
    }
  | Action_started of {
      switch : int;
      pool : int;
      attempt : int;  (** 1-based supervised attempt *)
      at_s : float;
      action : Action.t;
    }
  | Action_done of { switch : int; pool : int; at_s : float; action : Action.t }
  | Action_failed of {
      switch : int;
      pool : int;
      at_s : float;
      action : Action.t;
    }  (** terminal failure: the VM keeps its previous state *)
  | Pool_committed of { switch : int; pool : int; at_s : float }
  | Switch_end of { switch : int; at_s : float; aborted : bool }
  | Submission of {
      at_s : float;
      vjob : int;  (** the submitted vjob's id *)
      vms : int;   (** its VM count, for audit without the instance *)
      disposition : disposition;
    }
      (** Daemon admission-control decision for one open-arrival
          submission; the last disposition journaled for a vjob wins on
          resume. Lives outside any switch. *)
  | Ladder of { at_s : float; from_level : int; to_level : int; reason : string }
      (** Daemon degradation-ladder transition (levels as
          {!Entropy_daemon.Ladder} ordinals), with the pressure reading
          that caused it. Lives outside any switch. *)

and disposition = Queued | Admitted | Rejected of string

exception Corrupt of string
(** Raised by the decoders on malformed input or a checksum mismatch. *)

val submission_version : int
(** Version byte carried inside every {!Submission} payload (the record
    is expected to grow fields); decoders reject versions they do not
    know with a clean diagnostic. *)

val ladder_version : int

val switch : t -> int
(** The record's switch id; [-1] for the daemon-level records
    ({!Submission}, {!Ladder}) that live outside any switch. *)

val at_s : t -> float

val to_json : t -> Entropy_obs.Json.t
val of_json : Entropy_obs.Json.t -> t
(** Raises {!Corrupt}. *)

val checksum : string -> int
(** FNV-1a 32-bit over the serialized record payload. *)

val to_line : t -> string
(** One newline-free JSON line: [{"crc":...,"rec":...}]. *)

val of_line : string -> t
(** Raises {!Corrupt} on a parse error or a checksum mismatch. *)

(** {2 Binary frame form (the durable format)} *)

val magic : string
(** Frame magic, ["EJ"]. The first byte of a journal file selects its
    codec: ['{'] means legacy JSON lines, anything else binary frames. *)

val version : int
(** Format version carried in every frame header; readers reject frames
    with a version they do not know. *)

val header_size : int
(** Bytes of frame header preceding the payload (11). *)

val write_frame : Buffer.t -> t -> unit
(** Append one binary frame (header + payload) to the buffer. *)

val to_frame : t -> string
(** [write_frame] into a fresh string. *)

type frame_result =
  | Frame of t * int
      (** Decoded record and the offset just past its frame. *)
  | Skipped of string * int
      (** An intact frame (magic, version and checksum all verified)
          whose payload leads with a record tag this reader does not
          know — written by a newer version. Carries a diagnostic and
          the offset just past the frame: readers log and keep going
          rather than truncating the records that follow. *)
  | Torn of string
      (** The bytes at this offset are not a valid frame (short header
          or payload, bad magic or version, checksum mismatch, payload
          decode failure); this ends the journal's durable prefix. *)

val read_frame : string -> pos:int -> frame_result option
(** Decode the frame starting at [pos]; [None] at a clean end of
    input ([pos >= length]). Never raises. *)

val commit_point : t -> bool
(** Whether a group-committing backend must flush immediately after
    this record: true for every kind except [Action_started], whose
    loss on crash only re-runs an idempotent action on resume. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
