(** Write-ahead journal records for cluster-wide context switches.

    A controller about to execute a switch appends {!Switch_begin}
    (everything needed to re-derive the decision: source and target
    configurations, the plan, the smoothed demand, the injector seed),
    the executor appends a record at every action state transition, and
    {!Switch_end} closes the switch. After a crash, {!Recovery} replays
    the records to reconstruct the in-flight state.

    The durable form is one checksummed JSON line per record
    ({!to_line} / {!of_line}); a torn or corrupted tail is detected by
    the checksum and dropped by {!Journal.load}. *)

open Entropy_core

type t =
  | Switch_begin of {
      switch : int;  (** switch id, monotone across one journal *)
      at_s : float;  (** simulated (or driver) time of the append *)
      source : Configuration.t;
      target : Configuration.t;
      plan : Plan.t;
      demand : Demand.t;  (** the demand the decision was made against *)
      seed : int option;  (** fault-injector seed, when one is loaded *)
    }
  | Action_started of {
      switch : int;
      pool : int;
      attempt : int;  (** 1-based supervised attempt *)
      at_s : float;
      action : Action.t;
    }
  | Action_done of { switch : int; pool : int; at_s : float; action : Action.t }
  | Action_failed of {
      switch : int;
      pool : int;
      at_s : float;
      action : Action.t;
    }  (** terminal failure: the VM keeps its previous state *)
  | Pool_committed of { switch : int; pool : int; at_s : float }
  | Switch_end of { switch : int; at_s : float; aborted : bool }

exception Corrupt of string
(** Raised by the decoders on malformed input or a checksum mismatch. *)

val switch : t -> int
val at_s : t -> float

val to_json : t -> Entropy_obs.Json.t
val of_json : Entropy_obs.Json.t -> t
(** Raises {!Corrupt}. *)

val checksum : string -> int
(** FNV-1a 32-bit over the serialized record payload. *)

val to_line : t -> string
(** One newline-free JSON line: [{"crc":...,"rec":...}]. *)

val of_line : string -> t
(** Raises {!Corrupt} on a parse error or a checksum mismatch. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
