(* Log source for the switch journal. Enable with e.g.
   [Logs.set_reporter (Logs_fmt.reporter ()); Logs.Src.set_level
   Log.src (Some Logs.Debug)]. *)

let src =
  Logs.Src.create "entropy.journal"
    ~doc:"Write-ahead switch journal and crash recovery"

include (val Logs.src_log src : Logs.LOG)
