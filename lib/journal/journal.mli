(** Append-only switch journal with in-memory and file backends.

    The in-memory backend backs the simulator (and tests); the file
    backend backs [entropyctl], appending one checksummed line per
    record and flushing after every append so a crash loses at most the
    line being written. {!load} implements the write-ahead-log torn-tail
    rule: replay stops at the first line that fails to parse or
    checksum, and everything after it is dropped. *)

type t

val mem : unit -> t
(** Volatile journal held in memory. *)

val open_file : string -> t
(** Open (creating or appending to) a file journal at the given path. *)

val path : t -> string option
(** The backing path of a file journal; [None] for {!mem}. *)

val append : t -> Record.t -> unit
(** Durably append one record (file backend flushes before returning). *)

val length : t -> int
(** Records appended or loaded so far. *)

val close : t -> unit
(** Close the backing channel; no-op for {!mem} and idempotent. *)

val records : t -> Record.t list
(** All records, oldest first. For a file journal this flushes and
    re-reads the backing file, so it reflects exactly what a recovery
    after a crash at this instant would see. *)

val load : string -> Record.t list * int
(** Read a journal file: the valid prefix of records plus the number of
    trailing lines dropped as torn or corrupt. A record that fails its
    checksum ends the valid prefix — later lines are not trusted even if
    they parse. Raises [Sys_error] when the file cannot be read. *)

val of_records : Record.t list -> t
(** An in-memory journal pre-populated with the given records — the
    test-suite hook for crash-at-a-record-boundary scenarios. *)
