(** Append-only switch journal with in-memory and file backends.

    Records are durably stored as length-prefixed binary frames
    ({!Record.write_frame}). The file backend group-commits: appends
    accumulate in a reused buffer and are written + fsynced as a batch —
    immediately at every commit point ({!Record.commit_point}: terminal
    action records, pool commits, switch begin/end) and otherwise when
    the batch passes a configurable byte or record threshold. Because
    commit points flush synchronously inside {!append}, a terminal
    record is always durable before its completion callback runs; a
    crash loses at most a tail of [Action_started] records, which resume
    re-runs idempotently.

    {!load} implements the write-ahead-log torn-tail rule: replay stops
    at the first frame that is short, unrecognized, or fails its
    checksum, and everything after it is dropped. Journals written
    before the binary format (one checksummed JSON line per record)
    are auto-detected by their first byte and still load; appends to
    such a file stay in its line format. *)

type t

val mem : unit -> t
(** Volatile journal held in memory (as encoded binary frames, so its
    cost profile matches the file backend minus the I/O). *)

val open_file : ?flush_bytes:int -> ?flush_records:int -> string -> t
(** Open (creating or appending to) a file journal at the given path.
    If the existing file ends in a torn or corrupt tail, it is truncated
    to its valid prefix so new appends land inside the durable region.
    [flush_bytes] (default 64 KiB) and [flush_records] (default 64)
    bound how much may sit in the group-commit buffer between commit
    points. *)

val path : t -> string option
(** The backing path of a file journal; [None] for {!mem}. *)

val append : t -> Record.t -> unit
(** Append one record. On the file backend the record is buffered and
    the batch is flushed if the record is a {!Record.commit_point} or a
    threshold is hit — so every terminal record is durable when [append]
    returns. *)

val flush : t -> unit
(** Force the group-commit buffer to disk; no-op for {!mem}. *)

val length : t -> int
(** Records appended or loaded so far. *)

val close : t -> unit
(** Flush and close the backing channel; no-op for {!mem}, idempotent. *)

val records : t -> Record.t list
(** All records, oldest first. For a file journal this flushes and
    re-reads the backing file, so it reflects exactly what a recovery
    after a crash at this instant would see. *)

val load : string -> Record.t list * int
(** Read a journal file (binary frames or legacy JSON lines,
    auto-detected): the valid prefix of records plus a count of dropped
    trailing data — the number of torn lines for a JSON journal, or [1]
    for a binary journal's torn tail (frame boundaries inside the tail
    are unknowable). A record that fails its checksum ends the valid
    prefix — later data is not trusted even if it parses. Raises
    [Sys_error] when the file cannot be read. *)

val of_records : Record.t list -> t
(** An in-memory journal pre-populated with the given records — the
    test-suite hook for crash-at-a-record-boundary scenarios. *)
