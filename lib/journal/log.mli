(** Log source for the switch journal ([entropy.journal]). *)

val src : Logs.Src.t

include Logs.LOG
