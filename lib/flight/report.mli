(** Rendering of flight-recorder analyses: the human-readable report
    behind [entropyctl explain], its machine-readable JSON form, and a
    Chrome trace-event gantt view (one track per node, barrier and
    critical-path markers) written through {!Entropy_obs.Trace.export}. *)

type analysis = Timeline.switch_tl * Critical.t

val analyze_records :
  ?top_k:int -> Entropy_journal.Record.t list -> analysis list
(** Timeline reconstruction + critical-path analysis of every switch in
    the journal. *)

val healthy : analysis -> bool
(** Buckets and path span match the makespan, and a non-empty switch
    has a non-empty critical path — the invariant [explain] (and CI)
    gate on. *)

val pp : Format.formatter -> analysis -> unit
(** Full per-switch report: header, attribution table, critical path,
    what-if estimates, estimate-vs-actual drift. *)

val pp_summary : Format.formatter -> analysis list -> unit
(** One line per switch plus the episode aggregate (repair switches
    charged to recovery) — the compact form wired into [chaos] and
    [resume] reports. *)

val to_json : ?trace_dropped:int -> analysis list -> Entropy_obs.Json.t

val gantt_events :
  analysis list -> Entropy_obs.Trace.event list * (int * string) list
(** Events and [(tid, name)] thread labels for {!Entropy_obs.Trace.export}:
    per-node action tracks, a switch-marker track (begin / pool
    commits / end) and a critical-path track. Timestamps are simulated
    seconds scaled to microseconds, matching lib/obs' simulated-time
    track convention. *)

val write_gantt : string -> analysis list -> unit
