(** Critical-path extraction and makespan attribution over a
    reconstructed switch timeline.

    Two backward walks share the enabling-edge machinery:

    {b Causal critical path} — from the last finisher, follow the edge
    that actually enabled each action (its same-VM dependency, the
    straggler that closed the previous pool, or the switch start). The
    resulting chain is contiguous in time, so its span equals the
    observed makespan.

    {b Attribution buckets} — walk the last finisher's own enabling
    chain, splitting every covered instant into exhaustive,
    non-overlapping buckets: action work (up to the contention-free
    estimate), contention (execution beyond the estimate, plus
    bandwidth-slot waits inside an open pool), pool-barrier wait
    (ready-but-blocked time of the chain), dependency wait, retry /
    backoff, and recovery (horizon tail beyond the last action; whole
    repair switches in {!aggregate}). The buckets sum to the makespan
    exactly in simulated time (up to float round-off, see {!t.exact}).

    What-if estimates replay the observed timings forward over the
    dependency/barrier DAG with one action freed (or every barrier
    removed), giving "makespan if X were free" without re-running the
    simulator. *)

open Entropy_core

type buckets = {
  work_s : float;
  contention_s : float;
  barrier_s : float;
  dependency_s : float;
  retry_s : float;
  recovery_s : float;
}

val zero_buckets : buckets
val bucket_total : buckets -> float
val add_buckets : buckets -> buckets -> buckets

type edge =
  | Start  (** enabled by the switch itself *)
  | Dep of int  (** same-VM dependency on the given plan index *)
  | Barrier of int  (** waited for the given pool to commit *)

type step = {
  index : int;
  action : Action.t;
  pool : int;  (** record pool *)
  edge : edge;
  start_s : float;  (** first attempt, relative to switch begin *)
  finish_s : float;
  gap_s : float;  (** enabling-edge time to first attempt *)
  retry_s : float;
  work_s : float;
  contention_s : float;
}

type t = {
  switch : int;
  makespan_s : float;
  path : step list;  (** causal critical path, chronological *)
  path_span_s : float;  (** sum of step spans + tail; equals makespan *)
  tail_s : float;  (** horizon beyond the last finisher (0 normally) *)
  buckets : buckets;
  bucket_sum_s : float;
  exact : bool;  (** buckets (and path span) match makespan *)
  what_if : (int * float) list;
      (** [(index, makespan')] for the top-k critical actions freed *)
  no_barrier_makespan_s : float;
      (** forward replay with every pool barrier removed — what
          continuous execution of the same observations would cost *)
  est_makespan_s : float;  (** planner's estimate for this plan *)
  est_cost_mb : int;  (** [Plan.cost] (Table 1 / section 4.2) *)
  rederived_cost_mb : int;  (** independent verifier re-derivation *)
  drift : (int * float * float) list;
      (** [(index, est_s, observed_s)] final-attempt durations of
          completed actions vs the planner estimate *)
}

val analyze : ?top_k:int -> Timeline.switch_tl -> t
(** [top_k] (default 3) bounds the what-if list. *)

val what_if_free : Timeline.switch_tl -> int -> float
(** Makespan if the given plan action were free, by forward replay of
    the observed timings. *)

val repair_switches : Timeline.switch_tl list -> int list
(** Switch ids that are repair chains: their predecessor in the journal
    was degraded — aborted, or ended with terminally failed actions —
    and they began at the same engine instant it ended. *)

val aggregate : (Timeline.switch_tl * t) list -> buckets * float
(** Episode view across switches: non-repair switches contribute their
    buckets, repair switches contribute their whole makespan as
    recovery. Returns the summed buckets and the total switching time
    they decompose. *)
