(** Causal timeline of executed cluster-wide context switches,
    reconstructed from write-ahead journal records.

    Every {!Entropy_journal.Record.Switch_begin} opens a switch; its
    plan is flattened in pool order and joined with the Rgraph
    dependency edges ({!Entropy_core.Continuous.vm_prerequisites}), so
    each executed action carries its true predecessors: the same-VM
    dependency (bypass legs, disk-break suspend/resume pairs), the pool
    barrier that opened its pool, or nothing but the switch start. The
    action records then fill in per-attempt start times and the terminal
    outcome. The fold is total: torn tails, kills mid-pool and journals
    whose records do not match the plan degrade to partial timelines
    instead of errors. *)

open Entropy_core

type terminal =
  | Done of float  (** simulated completion time *)
  | Failed of float  (** terminal failure time (retries exhausted) *)

val terminal_at : terminal -> float

type action_tl = {
  index : int;  (** flat pool-order index into the plan *)
  action : Action.t;
  plan_pool : int;  (** pool the plan put the action in *)
  record_pool : int;
      (** pool the journal records carried: equals [plan_pool] under
          pool execution, 0 under continuous execution (which ignores
          barriers) — barrier reasoning follows this field *)
  prereq : int option;  (** previous plan action on the same VM *)
  attempts : float list;  (** supervised attempt start times, ascending *)
  terminal : terminal option;  (** [None]: still in flight at the cut *)
  est_s : float;
      (** planner-side contention-free duration estimate
          ({!Schedule.action_duration}) *)
}

type switch_tl = {
  switch : int;
  begun_at : float;
  source : Configuration.t;
  target : Configuration.t;
  plan : Plan.t;
  demand : Demand.t;
  actions : action_tl array;  (** plan order *)
  commits : (int * float) list;  (** [Pool_committed] times, pool order *)
  end_at : float option;  (** [Switch_end] time, [None] when cut short *)
  aborted : bool;
  last_event : float;  (** latest record time — the observable horizon *)
  unmatched : int;  (** action records that matched no plan action *)
}

val of_records : Entropy_journal.Record.t list -> switch_tl list
(** All switches in the journal, in first-appearance order. Records
    whose switch id has no [Switch_begin] in the list are ignored. *)

val makespan : switch_tl -> float
(** [last_event - begun_at]: observed extent of the switch, whether it
    committed, aborted or was cut mid-flight. *)

val executed : action_tl -> bool
(** The journal saw this action at all (an attempt or a terminal). *)

val first_start : action_tl -> float option
val finish_time : switch_tl -> action_tl -> float
(** Terminal time, or the switch horizon for in-flight actions. *)

val continuous_mode : switch_tl -> bool
(** True when the records show barrier-free (continuous) execution:
    multi-pool plan, yet every record carries pool 0 and no pool ever
    committed. *)

type occ_point = { at_s : float; busy : int; cpu : int; mem : int }
(** Step-curve sample: actions touching the node, and the CPU/memory
    the in-flight claims hold on it, from this instant on. *)

val occupancy : switch_tl -> (Node.id * occ_point list) list
(** Per-node utilization curves over the switch (nodes with at least
    one touching action, ascending id; samples ascending in time). *)
