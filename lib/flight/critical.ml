(* Critical-path extraction and exhaustive makespan attribution.

   Both walks run backwards from the action that finished last. At each
   action the "enabling edge" — the latest of (pool open, same-VM
   dependency end, switch begin) — decides where the walk goes next:

   - the causal walk follows what actually gated the start: across a
     barrier it continues through the straggler that closed the
     previous pool, so consecutive steps abut in time and the chain
     spans the whole makespan;

   - the attribution walk follows the last finisher's own chain,
     charging ready-but-blocked time at a barrier to the barrier
     bucket and continuing through the same-VM dependency (if any), so
     every instant of the makespan lands in exactly one bucket.

   Per-action time splits are shared: the final attempt is work up to
   the contention-free estimate and contention beyond it, earlier
   attempts (and terminally failed actions) are retry/backoff, and the
   edge-to-first-attempt gap is charged to whichever edge was binding
   (contention for a bandwidth/pipeline slot inside an open pool,
   dependency wait, or barrier wait).

   The what-if estimator replays the observed lags and spans forward
   over the same DAG (pool by pool, dependencies inside), with one
   action zeroed or all barriers removed — no simulator involved. *)

open Entropy_core
module T = Timeline

type buckets = {
  work_s : float;
  contention_s : float;
  barrier_s : float;
  dependency_s : float;
  retry_s : float;
  recovery_s : float;
}

let zero_buckets =
  {
    work_s = 0.;
    contention_s = 0.;
    barrier_s = 0.;
    dependency_s = 0.;
    retry_s = 0.;
    recovery_s = 0.;
  }

let bucket_total b =
  b.work_s +. b.contention_s +. b.barrier_s +. b.dependency_s +. b.retry_s
  +. b.recovery_s

let add_buckets a b =
  {
    work_s = a.work_s +. b.work_s;
    contention_s = a.contention_s +. b.contention_s;
    barrier_s = a.barrier_s +. b.barrier_s;
    dependency_s = a.dependency_s +. b.dependency_s;
    retry_s = a.retry_s +. b.retry_s;
    recovery_s = a.recovery_s +. b.recovery_s;
  }

type edge = Start | Dep of int | Barrier of int

type step = {
  index : int;
  action : Action.t;
  pool : int;
  edge : edge;
  start_s : float;
  finish_s : float;
  gap_s : float;
  retry_s : float;
  work_s : float;
  contention_s : float;
}

type t = {
  switch : int;
  makespan_s : float;
  path : step list;
  path_span_s : float;
  tail_s : float;
  buckets : buckets;
  bucket_sum_s : float;
  exact : bool;
  what_if : (int * float) list;
  no_barrier_makespan_s : float;
  est_makespan_s : float;
  est_cost_mb : int;
  rederived_cost_mb : int;
  drift : (int * float * float) list;
}

(* -- per-switch working view ----------------------------------------------- *)

let commit_time sw p = List.assoc_opt p sw.T.commits

let pool_open sw (a : T.action_tl) =
  if a.T.record_pool <= 0 then sw.T.begun_at
  else
    match commit_time sw (a.T.record_pool - 1) with
    | Some t -> t
    | None -> sw.T.begun_at

(* Terminal time of the same-VM dependency, when it ran to a terminal. *)
let dep_end sw (a : T.action_tl) =
  match a.T.prereq with
  | None -> None
  | Some j -> (
    let d = sw.T.actions.(j) in
    match d.T.terminal with
    | Some t -> Some (j, T.terminal_at t)
    | None -> None)

let bounds sw (a : T.action_tl) =
  let fin = T.finish_time sw a in
  match a.T.attempts with
  | s1 :: _ as l ->
    let sn = List.fold_left Float.max s1 l in
    (s1, sn, fin)
  | [] -> (fin, fin, fin)

(* (work, contention, retry) inside [s1, fin] *)
let split (a : T.action_tl) ~s1 ~sn ~fin =
  match a.T.terminal with
  | Some (T.Failed _) -> (0., 0., Float.max 0. (fin -. s1))
  | Some (T.Done _) | None ->
    let dur = Float.max 0. (fin -. sn) in
    let w = Float.min dur a.T.est_s in
    (w, dur -. w, Float.max 0. (sn -. s1))

type enabling =
  | E_start
  | E_dep of int * float
  | E_barrier of int * float * (int * float) option
      (** pool crossed, its commit time, and the dependency (if any)
          that finished before the barrier opened *)

let enabling sw (a : T.action_tl) =
  let po = pool_open sw a in
  let de = dep_end sw a in
  match de with
  | Some (j, t) when t >= po && t > sw.T.begun_at -> E_dep (j, t)
  | _ ->
    if po > sw.T.begun_at then E_barrier (a.T.record_pool - 1, po, de)
    else E_start

let enabling_time sw = function
  | E_start -> sw.T.begun_at
  | E_dep (_, t) -> t
  | E_barrier (_, po, _) -> po

(* The action whose terminal closed the given pool. *)
let straggler sw p =
  let best = ref None in
  Array.iter
    (fun (a : T.action_tl) ->
      if a.T.record_pool = p then
        match a.T.terminal with
        | Some t -> (
          let ft = T.terminal_at t in
          match !best with
          | Some (_, bt) when bt >= ft -> ()
          | _ -> best := Some (a.T.index, ft))
        | None -> ())
    sw.T.actions;
  Option.map fst !best

(* The observed end of the line: latest finisher, preferring an action
   still in flight at the horizon (it is the one "currently critical"). *)
let last_finisher sw =
  let best = ref None in
  Array.iter
    (fun (a : T.action_tl) ->
      if T.executed a then begin
        let f = T.finish_time sw a in
        let in_flight = a.T.terminal = None in
        match !best with
        | Some (_, bf, bif)
          when bf > f || (bf = f && (bif || not in_flight)) ->
          ()
        | _ -> best := Some (a.T.index, f, in_flight)
      end)
    sw.T.actions;
  Option.map (fun (i, _, _) -> i) !best

(* -- causal critical path -------------------------------------------------- *)

let causal_path sw =
  match last_finisher sw with
  | None -> []
  | Some entry ->
    let visited = Array.make (Array.length sw.T.actions) false in
    let rec walk acc idx =
      if visited.(idx) then acc
      else begin
        visited.(idx) <- true;
        let a = sw.T.actions.(idx) in
        let s1, sn, fin = bounds sw a in
        let w, c, r = split a ~s1 ~sn ~fin in
        let enab = enabling sw a in
        let gap = Float.max 0. (s1 -. enabling_time sw enab) in
        let edge =
          match enab with
          | E_start -> Start
          | E_dep (j, _) -> Dep j
          | E_barrier (p, _, _) -> Barrier p
        in
        let step =
          {
            index = idx;
            action = a.T.action;
            pool = a.T.record_pool;
            edge;
            start_s = s1 -. sw.T.begun_at;
            finish_s = fin -. sw.T.begun_at;
            gap_s = gap;
            retry_s = r;
            work_s = w;
            contention_s = c;
          }
        in
        let acc = step :: acc in
        match enab with
        | E_start -> acc
        | E_dep (j, _) -> walk acc j
        | E_barrier (p, _, _) -> (
          match straggler sw p with Some j -> walk acc j | None -> acc)
      end
    in
    walk [] entry

(* -- attribution buckets --------------------------------------------------- *)

let attribute sw =
  let b = ref zero_buckets in
  let charge f = b := f !b in
  (match last_finisher sw with
  | None -> ()
  | Some entry ->
    let visited = Array.make (Array.length sw.T.actions) false in
    let rec walk idx =
      if not visited.(idx) then begin
        visited.(idx) <- true;
        let a = sw.T.actions.(idx) in
        let s1, sn, fin = bounds sw a in
        let w, c, r = split a ~s1 ~sn ~fin in
        charge (fun b ->
            {
              b with
              work_s = b.work_s +. w;
              contention_s = b.contention_s +. c;
              retry_s = b.retry_s +. r;
            });
        match enabling sw a with
        | E_start ->
          (* slot wait inside the first open pool *)
          charge (fun b ->
              {
                b with
                contention_s =
                  b.contention_s +. Float.max 0. (s1 -. sw.T.begun_at);
              })
        | E_dep (j, t) ->
          charge (fun b ->
              {
                b with
                dependency_s = b.dependency_s +. Float.max 0. (s1 -. t);
              });
          walk j
        | E_barrier (_, po, de) -> (
          charge (fun b ->
              {
                b with
                contention_s = b.contention_s +. Float.max 0. (s1 -. po);
              });
          let lower =
            match de with
            | Some (_, t) -> Float.max sw.T.begun_at t
            | None -> sw.T.begun_at
          in
          charge (fun b ->
              { b with barrier_s = b.barrier_s +. Float.max 0. (po -. lower) });
          match de with Some (j, _) -> walk j | None -> ())
      end
    in
    walk entry);
  !b

(* -- what-if forward replay ------------------------------------------------ *)

(* Replay the observed dispatch lags and running spans over the
   dependency/barrier DAG. [free] zeroes one action; [barriers:false]
   removes every pool barrier (continuous execution of the same
   observations). *)
let replay ?(free = -1) ?(barriers = true) sw =
  let n = Array.length sw.T.actions in
  let fin' = Array.make n nan in
  let executed =
    Array.to_list sw.T.actions
    |> List.filter T.executed
    |> List.sort (fun (a : T.action_tl) (b : T.action_tl) ->
           match compare a.T.record_pool b.T.record_pool with
           | 0 -> (
             let sa, _, _ = bounds sw a and sb, _, _ = bounds sw b in
             match Float.compare sa sb with
             | 0 -> compare a.T.index b.T.index
             | c -> c)
           | c -> c)
  in
  let horizon = ref sw.T.begun_at in
  let commit = ref sw.T.begun_at in
  let current_pool = ref min_int in
  let pool_max = ref sw.T.begun_at in
  List.iter
    (fun (a : T.action_tl) ->
      if a.T.record_pool <> !current_pool then begin
        if !current_pool <> min_int then commit := Float.max !commit !pool_max;
        current_pool := a.T.record_pool;
        pool_max := sw.T.begun_at
      end;
      let s1, _, fin = bounds sw a in
      let dep' =
        match a.T.prereq with
        | Some j when not (Float.is_nan fin'.(j)) -> fin'.(j)
        | _ -> sw.T.begun_at
      in
      let ready' =
        Float.max (if barriers then !commit else sw.T.begun_at) dep'
      in
      let observed_ready = enabling_time sw (enabling sw a) in
      let lag = Float.max 0. (s1 -. observed_ready) in
      let span = Float.max 0. (fin -. s1) in
      let f =
        if a.T.index = free then ready' else ready' +. lag +. span
      in
      fin'.(a.T.index) <- f;
      if f > !pool_max then pool_max := f;
      if f > !horizon then horizon := f)
    executed;
  Float.max 0. (!horizon -. sw.T.begun_at)

let what_if_free sw idx = replay ~free:idx sw

(* -- estimates ------------------------------------------------------------- *)

let estimated_makespan sw =
  if T.continuous_mode sw then
    try
      Continuous.makespan
        (Continuous.schedule ~current:sw.T.source ~demand:sw.T.demand
           ~plan:sw.T.plan ())
    with Continuous.Stuck _ ->
      Schedule.makespan (Schedule.of_plan sw.T.source sw.T.plan)
  else Schedule.makespan (Schedule.of_plan sw.T.source sw.T.plan)

let action_drift sw =
  Array.to_list sw.T.actions
  |> List.filter_map (fun (a : T.action_tl) ->
         match a.T.terminal with
         | Some (T.Done _) ->
           let _, sn, fin = bounds sw a in
           Some (a.T.index, a.T.est_s, Float.max 0. (fin -. sn))
         | _ -> None)

(* -- entry point ----------------------------------------------------------- *)

let analyze ?(top_k = 3) sw =
  let makespan = T.makespan sw in
  let path = causal_path sw in
  let covered =
    List.fold_left
      (fun acc s -> acc +. s.gap_s +. s.retry_s +. s.work_s +. s.contention_s)
      0. path
  in
  let tail =
    match path with
    | [] -> makespan
    | _ ->
      let last = List.nth path (List.length path - 1) in
      Float.max 0. (makespan -. last.finish_s)
  in
  let path_span = covered +. tail in
  let buckets = attribute sw in
  let buckets = { buckets with recovery_s = buckets.recovery_s +. tail } in
  let bucket_sum = bucket_total buckets in
  let tol = 1e-6 *. Float.max 1. makespan in
  let exact =
    Float.abs (bucket_sum -. makespan) <= tol
    && Float.abs (path_span -. makespan) <= tol
  in
  let ranked =
    List.sort
      (fun a b ->
        Float.compare
          (b.work_s +. b.contention_s +. b.retry_s)
          (a.work_s +. a.contention_s +. a.retry_s))
      path
  in
  let what_if =
    List.filteri (fun i _ -> i < top_k) ranked
    |> List.map (fun s -> (s.index, replay ~free:s.index sw))
  in
  let est_cost, rederived =
    Entropy_analysis.Verifier.cost_cross_check sw.T.source sw.T.plan
  in
  {
    switch = sw.T.switch;
    makespan_s = makespan;
    path;
    path_span_s = path_span;
    tail_s = tail;
    buckets;
    bucket_sum_s = bucket_sum;
    exact;
    what_if;
    no_barrier_makespan_s = replay ~barriers:false sw;
    est_makespan_s = estimated_makespan sw;
    est_cost_mb = est_cost;
    rederived_cost_mb = rederived;
    drift = action_drift sw;
  }

(* -- cross-switch (episode) view ------------------------------------------- *)

(* The runner chases a degraded switch with an immediate repair plan.
   Degraded means the executor terminally lost actions: either it
   aborted at a pool boundary, or it ran to the end with [Failed]
   terminals (a last-pool failure leaves nothing pending, so the
   journal's aborted flag stays false). The chase is immediate, so the
   repair begins at the very engine instant its predecessor ended. *)
let degraded sw =
  sw.T.aborted
  || Array.exists
       (fun a -> match a.T.terminal with Some (T.Failed _) -> true | _ -> false)
       sw.T.actions

let repair_switches sws =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      let acc =
        match a.T.end_at with
        | Some e
          when degraded a && Float.abs (b.T.begun_at -. e) <= 1e-9 ->
          b.T.switch :: acc
        | _ -> acc
      in
      go acc rest
    | _ -> List.rev acc
  in
  go [] sws

let aggregate pairs =
  let repairs = repair_switches (List.map fst pairs) in
  let is_repair sw = List.mem sw.T.switch repairs in
  List.fold_left
    (fun (acc, total) (sw, an) ->
      let m = T.makespan sw in
      if is_repair sw then
        ({ acc with recovery_s = acc.recovery_s +. m }, total +. m)
      else (add_buckets acc an.buckets, total +. m))
    (zero_buckets, 0.) pairs
