(* Rendering of flight analyses: text report, JSON, and the Chrome
   trace-event gantt view. *)

open Entropy_core
module T = Timeline
module C = Critical
module Json = Entropy_obs.Json
module Trace = Entropy_obs.Trace

type analysis = T.switch_tl * C.t

let analyze_records ?top_k records =
  List.map
    (fun sw -> (sw, C.analyze ?top_k sw))
    (T.of_records records)

let healthy (sw, an) =
  an.C.exact
  && (an.C.path <> [] || not (Array.exists T.executed sw.T.actions))

(* -- text ------------------------------------------------------------------ *)

let pct total v = if total <= 0. then 0. else 100. *. v /. total

let pp_bucket_row ppf name total v =
  Fmt.pf ppf "  %-18s %9.2f s %6.1f%%@," name v (pct total v)

let edge_label sw = function
  | C.Start -> "start"
  | C.Dep j -> Fmt.str "dep %a" Action.pp sw.T.actions.(j).T.action
  | C.Barrier p -> Fmt.str "barrier(pool %d)" p

let pp ppf ((sw, an) : analysis) =
  let b = an.C.buckets in
  let total = an.C.makespan_s in
  Fmt.pf ppf "@[<v>switch %d: %d actions in %d pools%s, makespan %.2f s%s@,"
    sw.T.switch
    (Plan.action_count sw.T.plan)
    (Plan.pool_count sw.T.plan)
    (if T.continuous_mode sw then " (continuous)" else "")
    total
    (match sw.T.end_at with
    | Some _ when sw.T.aborted -> " [aborted]"
    | Some _ -> ""
    | None -> " [cut mid-flight]");
  if sw.T.unmatched > 0 then
    Fmt.pf ppf "  warning: %d journal records matched no plan action@,"
      sw.T.unmatched;
  Fmt.pf ppf "attribution (end-chain decomposition):@,";
  pp_bucket_row ppf "action work" total b.C.work_s;
  pp_bucket_row ppf "contention" total b.C.contention_s;
  pp_bucket_row ppf "pool-barrier wait" total b.C.barrier_s;
  pp_bucket_row ppf "dependency wait" total b.C.dependency_s;
  pp_bucket_row ppf "retry/backoff" total b.C.retry_s;
  pp_bucket_row ppf "recovery/tail" total b.C.recovery_s;
  Fmt.pf ppf "  %-18s %9.2f s %6.1f%%  (%s makespan)@," "total"
    an.C.bucket_sum_s
    (pct total an.C.bucket_sum_s)
    (if an.C.exact then "=" else "!=");
  Fmt.pf ppf "critical path (%d actions, span %.2f s):@,"
    (List.length an.C.path) an.C.path_span_s;
  List.iter
    (fun (s : C.step) ->
      Fmt.pf ppf
        "  [pool %d] %-28s start %8.2f  gap %6.2f  retry %6.2f  work %6.2f  \
         cont %6.2f  via %s@,"
        s.C.pool
        (Fmt.str "%a" Action.pp s.C.action)
        s.C.start_s s.C.gap_s s.C.retry_s s.C.work_s s.C.contention_s
        (edge_label sw s.C.edge))
    an.C.path;
  if an.C.what_if <> [] then begin
    Fmt.pf ppf "what-if (makespan if the action were free):@,";
    List.iter
      (fun (i, m) ->
        Fmt.pf ppf "  %-28s -> %8.2f s  (saves %.2f s, %.1f%%)@,"
          (Fmt.str "%a" Action.pp sw.T.actions.(i).T.action)
          m (total -. m)
          (pct total (total -. m)))
      an.C.what_if
  end;
  Fmt.pf ppf "no-barrier replay (continuous execution): %.2f s@,"
    an.C.no_barrier_makespan_s;
  let drift_pct =
    if an.C.est_makespan_s <= 0. then 0.
    else 100. *. (total -. an.C.est_makespan_s) /. an.C.est_makespan_s
  in
  Fmt.pf ppf
    "estimate vs actual: cost %d MB (rederived %d%s), estimated %.2f s, \
     observed %.2f s, drift %+.1f%%@,"
    an.C.est_cost_mb an.C.rederived_cost_mb
    (if an.C.est_cost_mb = an.C.rederived_cost_mb then ", ok" else ", MISMATCH")
    an.C.est_makespan_s total drift_pct;
  (let worst =
     List.sort
       (fun (_, e1, o1) (_, e2, o2) ->
         Float.compare (Float.abs (o2 -. e2)) (Float.abs (o1 -. e1)))
       an.C.drift
   in
   match worst with
   | [] -> ()
   | _ ->
     Fmt.pf ppf "worst per-action estimates:@,";
     List.iteri
       (fun k (i, est, obs) ->
         if k < 3 then
           Fmt.pf ppf "  %-28s est %7.2f s  actual %7.2f s  (%+.1f%%)@,"
             (Fmt.str "%a" Action.pp sw.T.actions.(i).T.action)
             est obs
             (if est <= 0. then 0. else 100. *. (obs -. est) /. est))
       worst);
  Fmt.pf ppf "@]"

let pp_summary ppf (analyses : analysis list) =
  let repairs = C.repair_switches (List.map fst analyses) in
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (sw, an) ->
      let b = an.C.buckets in
      let total = an.C.makespan_s in
      Fmt.pf ppf
        "switch %d%s: makespan %.2f s — work %.0f%%, contention %.0f%%, \
         barrier %.0f%%, retry %.0f%%%s@,"
        sw.T.switch
        (if List.mem sw.T.switch repairs then " (repair)" else "")
        total (pct total b.C.work_s)
        (pct total b.C.contention_s)
        (pct total b.C.barrier_s)
        (pct total b.C.retry_s)
        (if an.C.exact then "" else " [INEXACT]"))
    analyses;
  (match analyses with
  | _ :: _ :: _ | [ _ ] ->
    let agg, total = C.aggregate analyses in
    Fmt.pf ppf
      "episode: %.2f s switching — work %.0f%%, contention %.0f%%, barrier \
       %.0f%%, retry %.0f%%, recovery %.0f%%@,"
      total
      (pct total agg.C.work_s)
      (pct total agg.C.contention_s)
      (pct total agg.C.barrier_s)
      (pct total agg.C.retry_s)
      (pct total agg.C.recovery_s)
  | [] -> Fmt.pf ppf "no switches in journal@,");
  Fmt.pf ppf "@]"

(* -- JSON ------------------------------------------------------------------ *)

let buckets_json (b : C.buckets) =
  Json.Obj
    [
      ("work_s", Json.Float b.C.work_s);
      ("contention_s", Json.Float b.C.contention_s);
      ("barrier_s", Json.Float b.C.barrier_s);
      ("dependency_s", Json.Float b.C.dependency_s);
      ("retry_s", Json.Float b.C.retry_s);
      ("recovery_s", Json.Float b.C.recovery_s);
    ]

let edge_json = function
  | C.Start -> Json.String "start"
  | C.Dep j -> Json.Obj [ ("dep", Json.Int j) ]
  | C.Barrier p -> Json.Obj [ ("barrier", Json.Int p) ]

let step_json sw (s : C.step) =
  Json.Obj
    [
      ("index", Json.Int s.C.index);
      ("action", Json.String (Fmt.str "%a" Action.pp s.C.action));
      ("pool", Json.Int s.C.pool);
      ("edge", edge_json s.C.edge);
      ("start_s", Json.Float s.C.start_s);
      ("finish_s", Json.Float s.C.finish_s);
      ("gap_s", Json.Float s.C.gap_s);
      ("retry_s", Json.Float s.C.retry_s);
      ("work_s", Json.Float s.C.work_s);
      ("contention_s", Json.Float s.C.contention_s);
      ( "vm",
        Json.Int (Action.vm sw.T.actions.(s.C.index).T.action) );
    ]

let switch_json ((sw, an) : analysis) =
  Json.Obj
    [
      ("switch", Json.Int sw.T.switch);
      ("makespan_s", Json.Float an.C.makespan_s);
      ("actions", Json.Int (Plan.action_count sw.T.plan));
      ("pools", Json.Int (Plan.pool_count sw.T.plan));
      ("continuous", Json.Bool (T.continuous_mode sw));
      ("ended", Json.Bool (sw.T.end_at <> None));
      ("aborted", Json.Bool sw.T.aborted);
      ("unmatched_records", Json.Int sw.T.unmatched);
      ("exact", Json.Bool an.C.exact);
      ("buckets", buckets_json an.C.buckets);
      ("bucket_sum_s", Json.Float an.C.bucket_sum_s);
      ("path_span_s", Json.Float an.C.path_span_s);
      ("path", Json.List (List.map (step_json sw) an.C.path));
      ( "what_if",
        Json.List
          (List.map
             (fun (i, m) ->
               Json.Obj
                 [
                   ("index", Json.Int i);
                   ( "action",
                     Json.String
                       (Fmt.str "%a" Action.pp sw.T.actions.(i).T.action) );
                   ("makespan_s", Json.Float m);
                 ])
             an.C.what_if) );
      ("no_barrier_makespan_s", Json.Float an.C.no_barrier_makespan_s);
      ( "estimate",
        Json.Obj
          [
            ("cost_mb", Json.Int an.C.est_cost_mb);
            ("rederived_cost_mb", Json.Int an.C.rederived_cost_mb);
            ("makespan_s", Json.Float an.C.est_makespan_s);
            ("observed_s", Json.Float an.C.makespan_s);
          ] );
      ( "action_drift",
        Json.List
          (List.map
             (fun (i, est, obs) ->
               Json.Obj
                 [
                   ("index", Json.Int i);
                   ("est_s", Json.Float est);
                   ("observed_s", Json.Float obs);
                 ])
             an.C.drift) );
    ]

let to_json ?trace_dropped analyses =
  let agg, total = C.aggregate analyses in
  Json.Obj
    ([
       ("switches", Json.List (List.map switch_json analyses));
       ( "episode",
         Json.Obj
           [
             ("total_s", Json.Float total); ("buckets", buckets_json agg);
           ] );
     ]
    @
    match trace_dropped with
    | Some n -> [ ("trace_dropped", Json.Int n) ]
    | None -> [])

(* -- gantt (Chrome trace-event) -------------------------------------------- *)

let tid_markers = 1
let tid_critical = 2
let tid_node n = 10 + n

let us t = t *. 1e6

let gantt_events (analyses : analysis list) =
  let nodes = Hashtbl.create 16 in
  let events = ref [] in
  let emit e = events := e :: !events in
  List.iter
    (fun ((sw, an) : analysis) ->
      let scat = Fmt.str "switch%d" sw.T.switch in
      emit
        {
          Trace.name = Fmt.str "switch %d begin" sw.T.switch;
          cat = scat;
          kind = Trace.Instant;
          ts_us = us sw.T.begun_at;
          dur_us = 0.;
          tid = tid_markers;
          args = [ ("actions", Trace.I (Plan.action_count sw.T.plan)) ];
        };
      List.iter
        (fun (p, t) ->
          emit
            {
              Trace.name = Fmt.str "pool %d committed" p;
              cat = scat;
              kind = Trace.Instant;
              ts_us = us t;
              dur_us = 0.;
              tid = tid_markers;
              args = [];
            })
        sw.T.commits;
      (match sw.T.end_at with
      | Some t ->
        emit
          {
            Trace.name =
              Fmt.str "switch %d %s" sw.T.switch
                (if sw.T.aborted then "aborted" else "end");
            cat = scat;
            kind = Trace.Instant;
            ts_us = us t;
            dur_us = 0.;
            tid = tid_markers;
            args = [];
          }
      | None -> ());
      let on_path = Array.make (Array.length sw.T.actions) false in
      List.iter (fun (s : C.step) -> on_path.(s.C.index) <- true) an.C.path;
      Array.iter
        (fun (a : T.action_tl) ->
          match T.first_start a with
          | None -> ()
          | Some t0 ->
            let t1 = Float.max t0 (T.finish_time sw a) in
            let node =
              match (Action.destination a.T.action, Action.source a.T.action)
              with
              | Some n, _ | None, Some n -> n
              | None, None -> 0
            in
            Hashtbl.replace nodes node ();
            emit
              {
                Trace.name = Fmt.str "%a" Action.pp a.T.action;
                cat = scat;
                kind = Trace.Complete;
                ts_us = us t0;
                dur_us = us (t1 -. t0);
                tid = tid_node node;
                args =
                  [
                    ("switch", Trace.I sw.T.switch);
                    ("pool", Trace.I a.T.record_pool);
                    ("attempts", Trace.I (List.length a.T.attempts));
                    ( "failed",
                      Trace.B
                        (match a.T.terminal with
                        | Some (T.Failed _) -> true
                        | _ -> false) );
                    ("critical", Trace.B on_path.(a.T.index));
                  ];
              })
        sw.T.actions;
      List.iter
        (fun (s : C.step) ->
          let t0 = sw.T.begun_at +. s.C.start_s -. s.C.gap_s in
          let t1 = sw.T.begun_at +. s.C.finish_s in
          emit
            {
              Trace.name = Fmt.str "%a" Action.pp s.C.action;
              cat = "critical";
              kind = Trace.Complete;
              ts_us = us t0;
              dur_us = us (t1 -. t0);
              tid = tid_critical;
              args =
                [
                  ("gap_s", Trace.F s.C.gap_s);
                  ("retry_s", Trace.F s.C.retry_s);
                  ("work_s", Trace.F s.C.work_s);
                  ("contention_s", Trace.F s.C.contention_s);
                ];
            })
        an.C.path)
    analyses;
  let node_name n =
    match analyses with
    | (sw, _) :: _ when n < Configuration.node_count sw.T.source ->
      Node.name (Configuration.node sw.T.source n)
    | _ -> Fmt.str "N%d" n
  in
  let threads =
    (tid_markers, "switch markers")
    :: (tid_critical, "critical path")
    :: (Hashtbl.fold (fun n () acc -> n :: acc) nodes []
       |> List.sort compare
       |> List.map (fun n -> (tid_node n, node_name n)))
  in
  (List.rev !events, threads)

let write_gantt path analyses =
  let events, threads = gantt_events analyses in
  let oc = open_out path in
  output_string oc (Json.to_string (Trace.export ~threads events));
  output_char oc '\n';
  close_out oc
