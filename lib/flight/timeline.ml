(* Fold of write-ahead journal records into per-switch causal timelines.

   The executor's records are ordered but intentionally sparse: an
   Action_started per supervised attempt, one terminal record per
   action (which may arrive with no preceding start when the source
   node was already dead), Pool_committed when a pool drains, and a
   Switch_end only if the controller survived long enough to write it.
   The fold therefore never assumes completeness — an action with
   attempts but no terminal was in flight when the journal stopped, a
   switch without Switch_end was cut, and records that match nothing in
   the plan are counted in [unmatched] rather than trusted. *)

open Entropy_core
module Jrecord = Entropy_journal.Record

type terminal = Done of float | Failed of float

let terminal_at = function Done t | Failed t -> t

type action_tl = {
  index : int;
  action : Action.t;
  plan_pool : int;
  record_pool : int;
  prereq : int option;
  attempts : float list;
  terminal : terminal option;
  est_s : float;
}

type switch_tl = {
  switch : int;
  begun_at : float;
  source : Configuration.t;
  target : Configuration.t;
  plan : Plan.t;
  demand : Demand.t;
  actions : action_tl array;
  commits : (int * float) list;
  end_at : float option;
  aborted : bool;
  last_event : float;
  unmatched : int;
}

(* -- builders -------------------------------------------------------------- *)

type action_builder = {
  mutable b_record_pool : int option;
  mutable b_attempts : float list; (* reverse order *)
  mutable b_terminal : terminal option;
}

type switch_builder = {
  sb_switch : int;
  sb_begun : float;
  sb_source : Configuration.t;
  sb_target : Configuration.t;
  sb_plan : Plan.t;
  sb_demand : Demand.t;
  sb_actions : Action.t array; (* flat pool order *)
  sb_pools : int array; (* plan pool of each flat index *)
  sb_state : action_builder array;
  mutable sb_commits : (int * float) list; (* reverse order *)
  mutable sb_end : float option;
  mutable sb_aborted : bool;
  mutable sb_last : float;
  mutable sb_unmatched : int;
}

let make_builder ~switch ~at_s ~source ~target ~plan ~demand =
  let flat =
    List.concat
      (List.mapi
         (fun p actions -> List.map (fun a -> (p, a)) actions)
         (Plan.pools plan))
  in
  {
    sb_switch = switch;
    sb_begun = at_s;
    sb_source = source;
    sb_target = target;
    sb_plan = plan;
    sb_demand = demand;
    sb_actions = Array.of_list (List.map snd flat);
    sb_pools = Array.of_list (List.map fst flat);
    sb_state =
      Array.init (List.length flat) (fun _ ->
          { b_record_pool = None; b_attempts = []; b_terminal = None });
    sb_commits = [];
    sb_end = None;
    sb_aborted = false;
    sb_last = at_s;
    sb_unmatched = 0;
  }

(* Match a journal record's action back to a plan slot. Plans almost
   never repeat an identical action, but the match still prefers a slot
   without a terminal outcome, and among those the one whose plan pool
   agrees with the record's, so even adversarial journals attach
   records deterministically. *)
let find_slot sb ~pool ~action ~for_terminal =
  let n = Array.length sb.sb_actions in
  let best = ref (-1) in
  let best_rank = ref min_int in
  for i = 0 to n - 1 do
    if Action.equal sb.sb_actions.(i) action then begin
      let st = sb.sb_state.(i) in
      let rank =
        (if st.b_terminal = None then 4 else 0)
        + (if sb.sb_pools.(i) = pool then 2 else 0)
        + if for_terminal = (st.b_attempts <> []) then 1 else 0
      in
      if rank > !best_rank then begin
        best_rank := rank;
        best := i
      end
    end
  done;
  if !best < 0 then None else Some !best

let touch sb at_s = if at_s > sb.sb_last then sb.sb_last <- at_s

let on_started sb ~pool ~at_s ~action =
  touch sb at_s;
  match find_slot sb ~pool ~action ~for_terminal:false with
  | None -> sb.sb_unmatched <- sb.sb_unmatched + 1
  | Some i ->
    let st = sb.sb_state.(i) in
    st.b_record_pool <- Some pool;
    st.b_attempts <- at_s :: st.b_attempts

let on_terminal sb ~pool ~at_s ~action outcome =
  touch sb at_s;
  match find_slot sb ~pool ~action ~for_terminal:true with
  | None -> sb.sb_unmatched <- sb.sb_unmatched + 1
  | Some i ->
    let st = sb.sb_state.(i) in
    st.b_record_pool <- Some pool;
    st.b_terminal <- Some (outcome at_s)

let freeze sb =
  let prereq = Continuous.vm_prerequisites sb.sb_plan in
  let actions =
    Array.init (Array.length sb.sb_actions) (fun i ->
        let st = sb.sb_state.(i) in
        {
          index = i;
          action = sb.sb_actions.(i);
          plan_pool = sb.sb_pools.(i);
          record_pool =
            (match st.b_record_pool with
            | Some p -> p
            | None -> sb.sb_pools.(i));
          prereq = prereq.(i);
          attempts = List.rev st.b_attempts;
          terminal = st.b_terminal;
          est_s = Schedule.action_duration sb.sb_source sb.sb_actions.(i);
        })
  in
  {
    switch = sb.sb_switch;
    begun_at = sb.sb_begun;
    source = sb.sb_source;
    target = sb.sb_target;
    plan = sb.sb_plan;
    demand = sb.sb_demand;
    actions;
    commits = List.rev sb.sb_commits;
    end_at = sb.sb_end;
    aborted = sb.sb_aborted;
    last_event = sb.sb_last;
    unmatched = sb.sb_unmatched;
  }

let of_records records =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      match r with
      | Jrecord.Switch_begin { switch; at_s; source; target; plan; demand; _ }
        ->
        let sb = make_builder ~switch ~at_s ~source ~target ~plan ~demand in
        Hashtbl.replace tbl switch sb;
        order := sb :: !order
      | Jrecord.Action_started { switch; pool; at_s; action; _ } ->
        Option.iter
          (fun sb -> on_started sb ~pool ~at_s ~action)
          (Hashtbl.find_opt tbl switch)
      | Jrecord.Action_done { switch; pool; at_s; action } ->
        Option.iter
          (fun sb -> on_terminal sb ~pool ~at_s ~action (fun t -> Done t))
          (Hashtbl.find_opt tbl switch)
      | Jrecord.Action_failed { switch; pool; at_s; action } ->
        Option.iter
          (fun sb -> on_terminal sb ~pool ~at_s ~action (fun t -> Failed t))
          (Hashtbl.find_opt tbl switch)
      | Jrecord.Pool_committed { switch; pool; at_s } ->
        Option.iter
          (fun sb ->
            touch sb at_s;
            sb.sb_commits <- (pool, at_s) :: sb.sb_commits)
          (Hashtbl.find_opt tbl switch)
      | Jrecord.Switch_end { switch; at_s; aborted } ->
        Option.iter
          (fun sb ->
            touch sb at_s;
            sb.sb_end <- Some at_s;
            sb.sb_aborted <- aborted)
          (Hashtbl.find_opt tbl switch)
      (* daemon-level records carry no switch activity *)
      | Jrecord.Submission _ | Jrecord.Ladder _ -> ())
    records;
  List.rev_map freeze !order

(* -- derived views --------------------------------------------------------- *)

let makespan sw = Float.max 0. (sw.last_event -. sw.begun_at)

let executed a = a.attempts <> [] || a.terminal <> None

let first_start a =
  match (a.attempts, a.terminal) with
  | t :: _, _ -> Some t
  | [], Some t -> Some (terminal_at t) (* terminal with no start: zero span *)
  | [], None -> None

let finish_time sw a =
  match a.terminal with Some t -> terminal_at t | None -> sw.last_event

let continuous_mode sw =
  Plan.pool_count sw.plan > 1
  && sw.commits = []
  && Array.exists (fun a -> executed a && a.plan_pool > 0) sw.actions
  && Array.for_all
       (fun a -> (not (executed a)) || a.record_pool = 0)
       sw.actions

type occ_point = { at_s : float; busy : int; cpu : int; mem : int }

let occupancy sw =
  (* +/- deltas at action start and finish, per touched node, then a
     prefix-sum sweep into step curves *)
  let deltas = Hashtbl.create 16 in
  let push node d = Hashtbl.replace deltas node (d :: Option.value ~default:[] (Hashtbl.find_opt deltas node)) in
  Array.iter
    (fun a ->
      match first_start a with
      | None -> ()
      | Some t0 ->
        let t1 = Float.max t0 (finish_time sw a) in
        let claim = Action.claim sw.source sw.demand a.action in
        let touchpoints =
          match (Action.destination a.action, Action.source a.action) with
          | Some d, Some s when d <> s -> [ d; s ]
          | Some d, _ -> [ d ]
          | None, Some s -> [ s ]
          | None, None -> []
        in
        List.iter
          (fun node ->
            let cpu, mem =
              match claim with
              | Some (cn, cpu, mem) when cn = node -> (cpu, mem)
              | _ -> (0, 0)
            in
            push node (t0, 1, cpu, mem);
            push node (t1, -1, -cpu, -mem))
          touchpoints)
    sw.actions;
  Hashtbl.fold (fun node ds acc -> (node, ds) :: acc) deltas []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (node, ds) ->
         let ds =
           List.sort
             (fun (t1, d1, _, _) (t2, d2, _, _) ->
               match Float.compare t1 t2 with 0 -> compare d1 d2 | c -> c)
             ds
         in
         let busy = ref 0 and cpu = ref 0 and mem = ref 0 in
         let points =
           List.map
             (fun (t, db, dc, dm) ->
               busy := !busy + db;
               cpu := !cpu + dc;
               mem := !mem + dm;
               { at_s = t; busy = !busy; cpu = !cpu; mem = !mem })
             ds
         in
         (* coalesce samples at the same instant, keeping the last *)
         let rec dedup = function
           | a :: (b :: _ as rest) when a.at_s = b.at_s -> dedup rest
           | a :: rest -> a :: dedup rest
           | [] -> []
         in
         (node, dedup points))
