(* The pluggable invariant catalogue. Each id names one paper-level
   property the checker evaluates at every explored state (or crash
   state); a violation carries the step index of the witness trace it
   was observed at and a human-readable detail line. *)

type id =
  | Capacity
  | Lifecycle
  | Precedence
  | Write_ahead
  | Resume_equiv
  | Cost_monotone
  | Termination

let all =
  [
    Capacity;
    Lifecycle;
    Precedence;
    Write_ahead;
    Resume_equiv;
    Cost_monotone;
    Termination;
  ]

let to_string = function
  | Capacity -> "capacity"
  | Lifecycle -> "lifecycle"
  | Precedence -> "precedence"
  | Write_ahead -> "write-ahead"
  | Resume_equiv -> "resume-equiv"
  | Cost_monotone -> "cost-monotone"
  | Termination -> "termination"

let of_string = function
  | "capacity" -> Some Capacity
  | "lifecycle" -> Some Lifecycle
  | "precedence" -> Some Precedence
  | "write-ahead" | "write_ahead" -> Some Write_ahead
  | "resume-equiv" | "resume_equiv" | "resume" -> Some Resume_equiv
  | "cost-monotone" | "cost_monotone" | "cost" -> Some Cost_monotone
  | "termination" -> Some Termination
  | _ -> None

let pp ppf id = Format.pp_print_string ppf (to_string id)

type violation = { invariant : id; step : int; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%a] step %d: %s" pp v.invariant v.step v.detail
