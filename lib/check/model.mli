(** The abstract transition system the checker explores: pool-based
    plan execution under adversarial timing.

    A state assigns every plan action a status (idle / in-flight /
    done) over a configuration. [Start i] makes action [i] in-flight
    (its destination claim becomes visible, an [Action_started] record
    is emitted); [Finish i] applies its effect after emitting the
    terminal record, preserving the executor's write-ahead order.
    Pools are barriers; draining one emits [Pool_committed], the last
    also [Switch_end]. Durations are abstracted away, so the reachable
    interleavings cover every timing the discrete-event executor could
    produce. *)

open Entropy_core

type ctx = {
  source : Configuration.t;
  target : Configuration.t;  (** sleeping locations normalized *)
  demand : Demand.t;
  vjobs : Vjob.t list;
  plan : Plan.t;
  actions : Action.t array;  (** pools flattened, global index *)
  pool_of : int array;
  n_pools : int;
  allowed_cpu : int array;
      (** per-node capacity plus the source's relative-overload
          allowance *)
  allowed_mem : int array;
  costs : int array;  (** Table 1 local cost per action *)
  total_cost : int;
  invariants : Invariant.id list;
  switch : int;
}

type status = Idle | In_flight | Done_ok

type state = {
  config : Configuration.t;
  status : status array;
  pool : int;
  cost : int;
  nsteps : int;
  rev_steps : Witness.step list;
  rev_records : Entropy_journal.Record.t list;
      (** newest first, [Switch_begin] at the bottom *)
}

val make_ctx :
  ?vjobs:Vjob.t list -> ?invariants:Invariant.id list ->
  source:Configuration.t -> target:Configuration.t -> demand:Demand.t ->
  Plan.t -> ctx

val want : ctx -> Invariant.id -> bool
val init : ctx -> state
val finished : ctx -> state -> bool

val key : state -> string
(** Canonical dedup key (the status vector determines the state). *)

val enabled : ctx -> state -> Witness.step list
(** Enabled steps in canonical order: starts of the current pool by
    index, then finishes of in-flight actions by index. Empty exactly
    when the switch completed. *)

val independent : ctx -> Witness.step -> Witness.step -> bool
(** Steps on disjoint VMs and disjoint nodes commute. *)

val apply : ctx -> state -> Witness.step -> state * Invariant.violation list
(** Take one step; the violations are those triggered by the transition
    itself (lifecycle, precedence, cost overshoot). *)

val state_violations : ctx -> state -> Invariant.violation list
(** Invariants evaluated on a state: capacity with in-flight claims,
    and termination/cost at switch end. *)

val witness : ?crash:Witness.crash -> state -> Witness.t
val records : state -> Entropy_journal.Record.t list
(** The journal trace of the state, oldest first. *)

val begin_record : ctx -> Entropy_journal.Record.t
val describe_step : ctx -> Witness.step -> string
