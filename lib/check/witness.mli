(** Witnesses: a replayable schedule plus an optional crash point.

    A step names an action by its global index in the plan (pools
    flattened in order): [Start i] begins the action (it becomes
    in-flight, claiming destination resources), [Finish i] completes it
    (its effect is applied). A crash point describes where the journal
    was cut: [kept] buffered [Action_started] frames beyond the last
    commit-point flush made it to disk, and [torn] optionally gives how
    many bytes of the next frame were durably written before the tear.

    Witnesses round-trip through a one-line JSON seed file, so a
    minimized counterexample can be re-checked with
    [entropyctl check --replay]. *)

type step = Start of int | Finish of int

type crash = { kept : int; torn : int option }
type t = { steps : step list; crash : crash option }

val step_equal : step -> step -> bool
val step_index : step -> int

val step_to_string : step -> string
val step_of_string : string -> step option

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit

exception Malformed of string

val to_json : t -> Entropy_obs.Json.t

val of_json : Entropy_obs.Json.t -> t
(** Raises {!Malformed}. *)

val to_file : string -> t -> unit

val of_file : string -> t
(** Raises {!Malformed} on bad content, [Sys_error] on a missing file. *)
