(** Crash-state exploration: every commit-point boundary × group-commit
    buffer state × torn-frame byte cut of an explored state's journal
    trace, each resumed via {!Entropy_journal.Recovery} and re-checked.

    The group-commit rules fix what can be durable: everything up to
    the last commit-point record, plus any whole-frame prefix of the
    buffered [Action_started] tail ([kept]), plus optionally a torn cut
    partway into the next frame. Each durable cut is replayed
    ([Write_ahead]: the journal projection must equal the reached
    configuration), reconciled, and its rebuilt resume plan checked for
    equivalence with the original switch ([Resume_equiv]); torn cuts
    additionally exercise the codec's torn-tail rule. *)

val explore :
  Model.ctx -> Model.state -> torn:bool -> exhaustive:bool ->
  seen:(string, unit) Hashtbl.t -> budget:int ref -> crash_checks:int ref ->
  torn_cuts:int ref ->
  (Witness.crash * Invariant.violation) list
(** All crash cuts of one state. [seen] dedups identical durable cuts
    across states; [budget] bounds the recovery re-checks (decremented
    per fresh cut — torn decoder checks are cheap and uncounted).
    [exhaustive] checks every byte offset of a torn frame instead of a
    boundary sample. *)

val check_spec :
  Model.ctx -> Model.state -> Witness.crash -> Invariant.violation list
(** Replay one crash spec (out-of-range [kept]/[torn] are clamped). *)
