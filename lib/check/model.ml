(* The abstract transition system the checker explores: the pool-based
   executor under adversarial timing. A state maps every plan action to
   Idle / In_flight / Done over a configuration; the two transition
   kinds mirror the executor's observable commit points — starting an
   action (its claim becomes visible, an [Action_started] record is
   appended) and finishing it (its effect is applied *after* the
   terminal record, preserving the write-ahead order). Pools are
   barriers: only the current pool's actions may start, and draining a
   pool appends [Pool_committed] (then [Switch_end] after the last).

   Durations are abstracted away entirely — any interleaving of starts
   and finishes the barrier structure admits is reachable, which covers
   every timing the discrete-event executor (contention, slowdowns,
   pipelining) could produce and more. *)

open Entropy_core
module Record = Entropy_journal.Record
module Verifier = Entropy_analysis.Verifier

type ctx = {
  source : Configuration.t;
  target : Configuration.t;  (* sleeping locations normalized *)
  demand : Demand.t;
  vjobs : Vjob.t list;
  plan : Plan.t;
  actions : Action.t array;  (* pools flattened, global index *)
  pool_of : int array;
  n_pools : int;
  allowed_cpu : int array;
      (* capacity, or the source's own load where it already exceeded
         capacity: the relative-overload allowance *)
  allowed_mem : int array;
  costs : int array;  (* Table 1 local cost per action *)
  total_cost : int;
  invariants : Invariant.id list;
  switch : int;
}

type status = Idle | In_flight | Done_ok

type state = {
  config : Configuration.t;
  status : status array;
  pool : int;  (* current pool; [n_pools] once the switch completed *)
  cost : int;  (* cumulative Table 1 cost of finished actions *)
  nsteps : int;
  rev_steps : Witness.step list;
  rev_records : Record.t list;  (* newest first, [Switch_begin] last *)
}

let make_ctx ?(vjobs = []) ?(invariants = Invariant.all) ~source ~target
    ~demand plan =
  let target = Rgraph.normalize_sleeping ~current:source target in
  let pools = Plan.pools plan in
  let actions = Array.of_list (Plan.actions plan) in
  let pool_of = Array.make (Array.length actions) 0 in
  let n_pools = List.length pools in
  let i = ref 0 in
  List.iteri
    (fun p pool ->
      List.iter
        (fun _ ->
          pool_of.(!i) <- p;
          incr i)
        pool)
    pools;
  let n = Configuration.node_count source in
  let cpu, mem = Configuration.loads source demand in
  let allowed_cpu =
    Array.init n (fun i ->
        max (Node.cpu_capacity (Configuration.node source i)) cpu.(i))
  in
  let allowed_mem =
    Array.init n (fun i ->
        max (Node.memory_mb (Configuration.node source i)) mem.(i))
  in
  let costs = Array.map (Verifier.table1_action_cost source) actions in
  {
    source;
    target;
    demand;
    vjobs;
    plan;
    actions;
    pool_of;
    n_pools;
    allowed_cpu;
    allowed_mem;
    costs;
    total_cost = Array.fold_left ( + ) 0 costs;
    invariants;
    switch = 0;
  }

let want ctx inv = List.mem inv ctx.invariants

let begin_record ctx =
  Record.Switch_begin
    {
      switch = ctx.switch;
      at_s = 0.;
      source = ctx.source;
      target = ctx.target;
      plan = ctx.plan;
      demand = ctx.demand;
      seed = None;
    }

let init ctx =
  {
    config = ctx.source;
    status = Array.make (Array.length ctx.actions) Idle;
    pool = 0;
    cost = 0;
    nsteps = 0;
    rev_steps = [];
    rev_records = [ begin_record ctx ];
  }

let finished ctx state = state.pool >= ctx.n_pools

(* Canonical dedup key: per-action status plus the current pool. The
   configuration and cumulative cost are functions of the done set, so
   the status vector determines the whole state. *)
let key state =
  let n = Array.length state.status in
  let b = Bytes.create (n + 1) in
  Array.iteri
    (fun i s ->
      Bytes.unsafe_set b i
        (match s with Idle -> '.' | In_flight -> '+' | Done_ok -> '#'))
    state.status;
  Bytes.set b n (Char.chr (state.pool land 0xff));
  Bytes.unsafe_to_string b

let enabled ctx state =
  if finished ctx state then []
  else begin
    let starts = ref [] and finishes = ref [] in
    for i = Array.length state.status - 1 downto 0 do
      match state.status.(i) with
      | Idle -> if ctx.pool_of.(i) = state.pool then starts := Witness.Start i :: !starts
      | In_flight -> finishes := Witness.Finish i :: !finishes
      | Done_ok -> ()
    done;
    !starts @ !finishes
  end

(* Two steps commute when they involve disjoint VMs and disjoint nodes:
   neither affects the other's enabledness, legality, or any per-node
   quantity the invariants read. Exploring one order of such a pair is
   enough (sleep-set pruning relies on exactly this relation). *)
let independent ctx a b =
  let ia = Witness.step_index a and ib = Witness.step_index b in
  ia <> ib
  &&
  let aa = ctx.actions.(ia) and ab = ctx.actions.(ib) in
  Action.vm aa <> Action.vm ab
  &&
  let nodes x =
    List.filter_map Fun.id [ Action.source x; Action.destination x ]
  in
  List.for_all (fun n -> not (List.mem n (nodes ab))) (nodes aa)

let violation invariant step detail = { Invariant.invariant; step; detail }

let fmt = Printf.sprintf
let action_str a = Format.asprintf "%a" Action.pp a

(* State invariants: evaluated at every explored state. *)
let state_violations ctx state =
  let vs = ref [] in
  (if want ctx Capacity then begin
     let cpu, mem = Configuration.loads state.config ctx.demand in
     Array.iteri
       (fun i s ->
         if s = In_flight then
           match Action.claim state.config ctx.demand ctx.actions.(i) with
           | None -> ()
           | Some (node, c, m) ->
             cpu.(node) <- cpu.(node) + c;
             mem.(node) <- mem.(node) + m)
       state.status;
     Array.iteri
       (fun node c ->
         if c > ctx.allowed_cpu.(node) then
           vs :=
             violation Capacity state.nsteps
               (fmt "node %d cpu load+claims %d exceeds allowance %d" node c
                  ctx.allowed_cpu.(node))
             :: !vs;
         if mem.(node) > ctx.allowed_mem.(node) then
           vs :=
             violation Capacity state.nsteps
               (fmt "node %d mem load+claims %d exceeds allowance %d" node
                  mem.(node) ctx.allowed_mem.(node))
             :: !vs)
       cpu
   end);
  if finished ctx state then begin
    (if want ctx Termination then
       Array.iteri
         (fun vm _ ->
           let got = Configuration.state state.config vm in
           let wanted = Configuration.state ctx.target vm in
           if not (Configuration.equal_vm_state got wanted) then
             vs :=
               violation Termination state.nsteps
                 (Format.asprintf "vm %d ended %a, target wants %a" vm
                    Configuration.pp_vm_state got Configuration.pp_vm_state
                    wanted)
               :: !vs)
         (Configuration.vms state.config));
    if want ctx Cost_monotone && state.cost <> ctx.total_cost then
      vs :=
        violation Cost_monotone state.nsteps
          (fmt "executed cost %d differs from plan cost %d at switch end"
             state.cost ctx.total_cost)
        :: !vs
  end;
  List.rev !vs

let apply ctx state step =
  let vs = ref [] in
  let nsteps = state.nsteps + 1 in
  let at_s = float_of_int nsteps in
  let note inv detail = vs := violation inv state.nsteps detail :: !vs in
  let status = Array.copy state.status in
  let state' =
    match step with
    | Witness.Start i ->
      let a = ctx.actions.(i) in
      let vm = Action.vm a in
      (if want ctx Precedence then
         Array.iteri
           (fun j s ->
             if j < i && Action.vm ctx.actions.(j) = vm && s <> Done_ok then
               note Precedence
                 (fmt "%s started before earlier action %d on vm %d finished"
                    (action_str a) j vm))
           state.status);
      (if want ctx Lifecycle then
         let lstate = Configuration.lifecycle state.config vm in
         if not (Lifecycle.can lstate (Action.transition a)) then
           note Lifecycle
             (fmt "%s illegal from life-cycle state %s" (action_str a)
                (Lifecycle.state_to_string lstate)));
      status.(i) <- In_flight;
      {
        state with
        status;
        nsteps;
        rev_steps = step :: state.rev_steps;
        rev_records =
          Record.Action_started
            {
              switch = ctx.switch;
              pool = ctx.pool_of.(i);
              attempt = 1;
              at_s;
              action = a;
            }
          :: state.rev_records;
      }
    | Witness.Finish i ->
      let a = ctx.actions.(i) in
      let pool = ctx.pool_of.(i) in
      status.(i) <- Done_ok;
      let config, terminal, cost =
        match Action.apply state.config a with
        | config ->
          ( config,
            Record.Action_done { switch = ctx.switch; pool; at_s; action = a },
            state.cost + ctx.costs.(i) )
        | exception Action.Invalid reason ->
          if want ctx Lifecycle then
            note Lifecycle (fmt "%s failed to apply: %s" (action_str a) reason);
          ( state.config,
            Record.Action_failed { switch = ctx.switch; pool; at_s; action = a },
            state.cost )
      in
      if want ctx Cost_monotone && cost > ctx.total_cost then
        note Cost_monotone
          (fmt "executed cost %d overshoots plan cost %d" cost ctx.total_cost);
      (* the terminal record precedes the configuration change *)
      let rev_records = terminal :: state.rev_records in
      let pool_done p =
        let all = ref true in
        Array.iteri
          (fun j s -> if ctx.pool_of.(j) = p && s <> Done_ok then all := false)
          status;
        !all
      in
      let rec advance p rev_records =
        if p < ctx.n_pools && pool_done p then
          advance (p + 1)
            (Record.Pool_committed { switch = ctx.switch; pool = p; at_s }
            :: rev_records)
        else (p, rev_records)
      in
      let pool', rev_records =
        if pool_done state.pool then advance state.pool rev_records
        else (state.pool, rev_records)
      in
      let rev_records =
        if pool' >= ctx.n_pools then
          Record.Switch_end { switch = ctx.switch; at_s; aborted = false }
          :: rev_records
        else rev_records
      in
      {
        config;
        status;
        pool = pool';
        cost;
        nsteps;
        rev_steps = step :: state.rev_steps;
        rev_records;
      }
  in
  (state', List.rev !vs)

let witness ?crash state =
  { Witness.steps = List.rev state.rev_steps; crash }

let records state = List.rev state.rev_records

let describe_step ctx step =
  let i = Witness.step_index step in
  if i < 0 || i >= Array.length ctx.actions then Witness.step_to_string step
  else
    fmt "%s (%s)"
      (Witness.step_to_string step)
      (action_str ctx.actions.(i))
