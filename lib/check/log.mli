(** Log source for the model checker ([entropy.check]). *)

val src : Logs.Src.t

include Logs.LOG
