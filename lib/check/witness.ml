(* Witnesses: a schedule (sequence of start/finish steps over the plan's
   globally-indexed actions) plus an optional crash point, serializable
   as a small JSON seed file so a counterexample found by exploration
   can be replayed deterministically. *)

module Json = Entropy_obs.Json

type step = Start of int | Finish of int

type crash = {
  kept : int;
      (* buffered [Action_started] frames that made it to disk before
         the crash, beyond the last commit-point flush *)
  torn : int option;
      (* bytes of the next frame durably written, when the crash tore
         it mid-write *)
}

type t = { steps : step list; crash : crash option }

let step_equal a b =
  match (a, b) with
  | Start i, Start j | Finish i, Finish j -> i = j
  | _ -> false

let step_index = function Start i | Finish i -> i

let step_to_string = function
  | Start i -> Printf.sprintf "start:%d" i
  | Finish i -> Printf.sprintf "finish:%d" i

let step_of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some c -> (
    let kind = String.sub s 0 c in
    match
      (kind, int_of_string_opt (String.sub s (c + 1) (String.length s - c - 1)))
    with
    | "start", Some i when i >= 0 -> Some (Start i)
    | "finish", Some i when i >= 0 -> Some (Finish i)
    | _ -> None)

let pp_step ppf s = Format.pp_print_string ppf (step_to_string s)

let pp ppf w =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_step)
    w.steps;
  match w.crash with
  | None -> ()
  | Some { kept; torn } ->
    Format.fprintf ppf " crash{kept=%d%s}" kept
      (match torn with None -> "" | Some b -> Printf.sprintf ";torn=%dB" b)

let to_json w =
  let crash =
    match w.crash with
    | None -> Json.Null
    | Some { kept; torn } ->
      Json.Obj
        [
          ("kept", Json.Int kept);
          ("torn", match torn with None -> Json.Null | Some b -> Json.Int b);
        ]
  in
  Json.Obj
    [
      ( "steps",
        Json.List
          (List.map (fun s -> Json.String (step_to_string s)) w.steps) );
      ("crash", crash);
    ]

exception Malformed of string

let of_json json =
  let fail m = raise (Malformed m) in
  let steps =
    match Option.bind (Json.member "steps" json) Json.to_list with
    | None -> fail "witness: missing steps array"
    | Some l ->
      List.map
        (fun j ->
          match Option.bind (Json.string_value j) step_of_string with
          | Some s -> s
          | None -> fail "witness: bad step (want \"start:N\"/\"finish:N\")")
        l
  in
  let crash =
    match Json.member "crash" json with
    | None | Some Json.Null -> None
    | Some c ->
      let kept =
        match Option.bind (Json.member "kept" c) Json.number with
        | Some f -> int_of_float f
        | None -> fail "witness: crash without kept count"
      in
      let torn =
        match Json.member "torn" c with
        | None | Some Json.Null -> None
        | Some t -> Option.map int_of_float (Json.number t)
      in
      Some { kept; torn }
  in
  { steps; crash }

let to_file path w =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json w));
  output_char oc '\n';
  close_out oc

let of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Json.parse s with
  | json -> of_json json
  | exception Json.Parse_error m -> raise (Malformed ("witness: " ^ m))
