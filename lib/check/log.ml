(* Log source for the model checker. Enable with e.g.
   [Logs.set_reporter (Logs_fmt.reporter ()); Logs.Src.set_level
   Log.src (Some Logs.Debug)]. *)

let src = Logs.Src.create "entropy.check" ~doc:"Switch model checker"

include (val Logs.src_log src : Logs.LOG)
