(* Conformance of the real discrete-event executor with the abstract
   model, CHESS-style: the plan runs on a real Cluster + Executor, with
   the engine's new schedule hook enumerating every tie-break order of
   simultaneous events (depth-first over the choice tree, bounded by a
   run budget). Each run is checked for mid-switch capacity, exact
   termination in the target, and a well-formed write-ahead journal
   trace. *)

open Entropy_core
module Engine = Vsim.Engine
module Cluster = Vsim.Cluster
module Executor = Vsim.Executor
module Record = Entropy_journal.Record
module Recovery = Entropy_journal.Recovery

type outcome = {
  runs : int;
  decision_points : int;
  complete : bool;  (* the whole choice tree fit in the run budget *)
  violations : (Invariant.violation * int list) list;
      (* violation plus the run's tie-break choices, root first *)
}

let violation invariant step detail = { Invariant.invariant; step; detail }

(* One run under a fixed choice prefix (root-first); choices beyond the
   prefix default to 0 (FIFO). Returns the decision trace deepest-first
   as [(choice, arity)] plus the violations seen. *)
let one_run ctx prefix =
  let engine = Engine.create () in
  let trace = ref [] in
  let rem = ref prefix in
  Engine.set_chooser engine
    (Some
       (fun n ->
         let c =
           match !rem with
           | c :: tl ->
             rem := tl;
             if c < 0 || c >= n then 0 else c
           | [] -> 0
         in
         trace := (c, n) :: !trace;
         c));
  (* VMs run forever: the cluster stays busy but no vjob completes (or
     terminates a VM) during the switch *)
  let programs _ = [ Vworkload.Program.Compute 1e9 ] in
  let cluster =
    Cluster.create ~engine ~config:ctx.Model.source ~vjobs:ctx.Model.vjobs
      ~programs ()
  in
  let rev_records = ref [ Model.begin_record ctx ] in
  let result = ref None in
  Executor.execute
    ~emit:(fun r -> rev_records := r :: !rev_records)
    ~switch:ctx.Model.switch cluster ctx.Model.plan
    ~on_done:(fun r -> result := Some r);
  let viols = ref [] in
  let steps = ref 0 in
  let check_capacity () =
    if Model.want ctx Invariant.Capacity then begin
      let config = Cluster.config cluster in
      let cpu, mem = Configuration.loads config ctx.Model.demand in
      Array.iteri
        (fun node c ->
          if
            c > ctx.Model.allowed_cpu.(node)
            || mem.(node) > ctx.Model.allowed_mem.(node)
          then
            viols :=
              violation Capacity !steps
                (Printf.sprintf
                   "sim: node %d over its allowance mid-switch (cpu %d/%d, \
                    mem %d/%d)"
                   node c
                   ctx.Model.allowed_cpu.(node)
                   mem.(node)
                   ctx.Model.allowed_mem.(node))
              :: !viols)
        cpu
    end
  in
  while !result = None && !steps < 1_000_000 && Engine.step engine do
    incr steps;
    check_capacity ()
  done;
  (match !result with
  | None ->
    viols :=
      violation Termination !steps "sim: executor never completed the switch"
      :: !viols
  | Some r ->
    (* the runner, not the executor, brackets the switch *)
    rev_records :=
      Record.Switch_end
        { switch = ctx.Model.switch; at_s = Engine.now engine; aborted = false }
      :: !rev_records;
    let final = Cluster.config cluster in
    (if Model.want ctx Invariant.Termination then
       if not (Configuration.equal final ctx.Model.target) then
         viols :=
           violation Termination !steps
             "sim: final configuration differs from the target"
           :: !viols);
    if Model.want ctx Invariant.Write_ahead then begin
      match Recovery.replay (List.rev !rev_records) with
      | None ->
        viols :=
          violation Write_ahead !steps "sim: journal trace did not replay"
          :: !viols
      | Some st ->
        if
          (not st.Recovery.ended)
          || st.Recovery.in_flight <> []
          || st.Recovery.failed_actions <> []
          || List.length st.Recovery.done_actions
             <> Plan.action_count ctx.Model.plan
        then
          viols :=
            violation Write_ahead !steps
              (Printf.sprintf
                 "sim: journal trace malformed (ended=%b inflight=%d \
                  failed=%d done=%d/%d)"
                 st.Recovery.ended
                 (List.length st.Recovery.in_flight)
                 (List.length st.Recovery.failed_actions)
                 (List.length st.Recovery.done_actions)
                 (Plan.action_count ctx.Model.plan))
            :: !viols
        else if
          not (Configuration.equal (Recovery.projected_config st) final)
        then
          viols :=
            violation Write_ahead !steps
              "sim: journal projection differs from the final configuration"
            :: !viols
    end;
    ignore r);
  (!trace, List.rev !viols)

(* Next DFS prefix: bump the deepest decision point that still has an
   untried alternative, drop everything below it. *)
let rec bump = function
  | [] -> None
  | (c, n) :: above ->
    if c + 1 < n then Some (List.rev_map fst above @ [ c + 1 ])
    else bump above

let run ctx ~max_runs =
  if max_runs <= 0 then
    { runs = 0; decision_points = 0; complete = true; violations = [] }
  else begin
    let runs = ref 0 in
    let decision_points = ref 0 in
    let violations = ref [] in
    let rec loop prefix =
      if !runs >= max_runs then false
      else begin
        incr runs;
        let trace, viols = one_run ctx prefix in
        decision_points := !decision_points + List.length trace;
        let choices = List.rev_map fst trace in
        List.iter (fun v -> violations := (v, choices) :: !violations) viols;
        match bump trace with None -> true | Some p -> loop p
      end
    in
    let complete = loop [] in
    {
      runs = !runs;
      decision_points = !decision_points;
      complete;
      violations = List.rev !violations;
    }
  end
