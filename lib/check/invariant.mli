(** The checker's pluggable invariant catalogue.

    Every invariant restates a safety property of the cluster-wide
    context switch from first principles:

    - [Capacity]: at every intermediate state, each node's load plus
      the claims of in-flight actions stays within its capacity, beyond
      the relative-overload allowance the source configuration already
      had (paper section 4.2 / {!Entropy_analysis.Verifier}'s
      [Worsened_overload] rule applied mid-pool).
    - [Lifecycle]: every action is legal from its VM's Figure 2
      life-cycle state when it starts, and applies exactly when it
      completes.
    - [Precedence]: reconfiguration-graph ordering — an action on a VM
      only starts once every earlier action of the plan on the same VM
      is done, and pools act as barriers.
    - [Write_ahead]: at every crash cut, the journal's projected
      configuration equals the configuration the executor actually
      reached — terminal records are durable before their effects are
      observable, and the torn-tail rule recovers exactly the durable
      prefix under every byte cut of a torn frame.
    - [Resume_equiv]: every crash cut reconciles cleanly and the rebuilt
      resume plan, after the executed prefix, is equivalent to the
      original switch ({!Entropy_analysis.Verifier.verify_resume}).
    - [Cost_monotone]: the Table 1 cost of the executed prefix grows
      monotonically, never exceeds the plan's total, and reaches it
      exactly at switch end.
    - [Termination]: a completed switch ends exactly in the (normalized)
      target configuration. *)

type id =
  | Capacity
  | Lifecycle
  | Precedence
  | Write_ahead
  | Resume_equiv
  | Cost_monotone
  | Termination

val all : id list

val to_string : id -> string
val of_string : string -> id option
val pp : Format.formatter -> id -> unit

type violation = {
  invariant : id;
  step : int;  (** witness-trace step index the violation was seen at *)
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit
