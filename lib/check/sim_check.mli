(** CHESS-style conformance runs of the real discrete-event executor.

    The plan executes on a real {!Vsim.Cluster} + {!Vsim.Executor}; the
    engine's schedule hook ({!Vsim.Engine.set_chooser}) enumerates
    tie-break orders of simultaneous events depth-first over the choice
    tree, bounded by [max_runs]. Each run checks mid-switch capacity
    (against the model's relative-overload allowances), termination in
    the target, and that the emitted write-ahead journal trace replays
    whole and projects onto the final configuration. *)

type outcome = {
  runs : int;
  decision_points : int;
  complete : bool;  (** the whole choice tree fit in the run budget *)
  violations : (Invariant.violation * int list) list;
      (** violation plus the run's tie-break choices, root first *)
}

val run : Model.ctx -> max_runs:int -> outcome
