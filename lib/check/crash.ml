(* Crash-state exploration. At any explored state the journal trace is
   known exactly; what is durable after a crash is governed by the
   group-commit rules: everything up to the last commit-point record
   was flushed synchronously, and of the buffered [Action_started]
   tail, any prefix of whole frames may have reached the disk — plus a
   torn cut partway through the next frame.

   Every durable cut is resumed the way a real recovery would —
   [Recovery.replay], the write-ahead projection check, [reconcile],
   and [Verifier.verify_resume] on the rebuilt plan — and every torn
   cut is pushed through the frame decoder to confirm the torn-tail
   rule recovers exactly the durable prefix. *)

open Entropy_core
module Record = Entropy_journal.Record
module Recovery = Entropy_journal.Recovery
module Repair = Entropy_fault.Repair
module Verifier = Entropy_analysis.Verifier

let fmt = Printf.sprintf

let violation invariant step detail = { Invariant.invariant; step; detail }

(* [(records, last_cp)]: the trace as an array and the index of its
   last commit-point record. Records 0..last_cp are always durable;
   later ones (all [Action_started]) sat in the group-commit buffer. *)
let split_trace state =
  let arr = Array.of_list (Model.records state) in
  let last_cp = ref (-1) in
  Array.iteri (fun i r -> if Record.commit_point r then last_cp := i) arr;
  (arr, !last_cp)

let decode_all s =
  let rec go pos acc =
    match Record.read_frame s ~pos with
    | None -> (List.rev acc, 0)
    | Some (Record.Frame (r, next)) -> go next (r :: acc)
    | Some (Record.Skipped (_, next)) -> go next acc
    | Some (Record.Torn _) -> (List.rev acc, 1)
  in
  go 0 []

(* The torn-tail rule, checked at the codec level: encoding the durable
   records followed by [cut] bytes of the next frame must decode back
   to exactly the durable records with one dropped tail. *)
let check_torn step durable next_frame cut =
  let buf = Buffer.create 256 in
  List.iter (Record.write_frame buf) durable;
  Buffer.add_string buf (String.sub next_frame 0 cut);
  let decoded, dropped = decode_all (Buffer.contents buf) in
  let same =
    List.length decoded = List.length durable
    && List.for_all2 Record.equal decoded durable
  in
  if same && dropped = 1 then []
  else
    [
      violation Write_ahead step
        (fmt
           "torn frame cut at byte %d/%d recovered %d/%d records (dropped \
            %d, want 1)"
           cut (String.length next_frame) (List.length decoded)
           (List.length durable) dropped);
    ]

(* Resume a durable cut: replay, write-ahead projection, reconcile,
   and resume-plan equivalence. *)
let check_durable ctx (state : Model.state) durable =
  let step = state.nsteps in
  let vs = ref [] in
  let note v = vs := v :: !vs in
  (match Recovery.replay durable with
  | None ->
    note
      (violation Write_ahead step "no Switch_begin in the durable prefix")
  | Some st ->
    (if Model.want ctx Write_ahead then
       let projected = Recovery.projected_config st in
       if not (Configuration.equal projected state.config) then
         note
           (violation Write_ahead step
              "journal projection diverges from the reached configuration"));
    if Model.want ctx Resume_equiv then begin
      match Recovery.reconcile ~vjobs:ctx.vjobs ~state:st ~observed:state.config () with
      | exception Invalid_argument m ->
        note (violation Resume_equiv step (fmt "reconcile rejected: %s" m))
      | rec_ -> (
        if not (Repair.residue_ok rec_.Recovery.residue) then
          note
            (violation Resume_equiv step
               (Format.asprintf "non-clean residue %a" Repair.pp_residue
                  rec_.Recovery.residue));
        match rec_.Recovery.plan with
        | None ->
          note
            (violation Resume_equiv step
               "reconciliation produced no resume plan")
        | Some rplan -> (
          match
            Verifier.verify_resume ~vjobs:ctx.vjobs ~source:st.Recovery.source
              ~original:st.Recovery.plan ~observed:state.config
              ~target:rec_.Recovery.target ~frozen:rec_.Recovery.frozen_vms
              ~demand:st.Recovery.demand rplan
          with
          | [] -> ()
          | findings ->
            note
              (violation Resume_equiv step
                 (Format.asprintf "resume plan not equivalent: %a"
                    Verifier.pp_report findings))))
    end);
  List.rev !vs

let torn_offsets ~exhaustive len =
  if len <= 1 then []
  else if exhaustive then List.init (len - 1) (fun i -> i + 1)
  else
    let hdr = Record.header_size in
    List.sort_uniq compare
      (List.filter
         (fun c -> c >= 1 && c < len)
         [ 1; hdr - 1; hdr; hdr + 1; len / 2; len - 1 ])

(* All crash cuts of a state. Dedup ([seen]) is across states: two
   traces reaching the same durable record multiset replay and
   reconcile identically. [budget] bounds the recovery re-checks (torn
   decoder checks are cheap and uncounted). *)
let explore ctx state ~torn ~exhaustive ~seen ~budget ~crash_checks
    ~torn_cuts =
  if
    not
      (Model.want ctx Invariant.Write_ahead
      || Model.want ctx Invariant.Resume_equiv)
  then []
  else begin
    let arr, last_cp = split_trace state in
    let n = Array.length arr in
    let out = ref [] in
    (* the observed configuration, as a digest: recovery depends only on
       the durable record content and the observation *)
    let config_digest =
      let vm_count = Configuration.vm_count state.config in
      Hashtbl.hash
        (Array.init vm_count (fun vm -> Configuration.state state.config vm))
    in
    for kept = 0 to n - 1 - last_cp do
      let cut = last_cp + 1 + kept in
      let crash = { Witness.kept; torn = None } in
      let durable_key =
        (* the durable multiset determines recovery; the trace order of
           commuting records does not *)
        let b = Buffer.create 64 in
        Buffer.add_string b (fmt "%d|" config_digest);
        let tagged = ref [] in
        Array.iteri
          (fun i r ->
            if i < cut then
              match r with
              | Record.Action_started { pool; action; _ } ->
                tagged :=
                  fmt "s%d:%s" pool (Format.asprintf "%a" Action.pp action)
                  :: !tagged
              | Record.Action_done { pool; action; _ } ->
                tagged :=
                  fmt "d%d:%s" pool (Format.asprintf "%a" Action.pp action)
                  :: !tagged
              | Record.Action_failed { pool; action; _ } ->
                tagged :=
                  fmt "f%d:%s" pool (Format.asprintf "%a" Action.pp action)
                  :: !tagged
              | Record.Pool_committed { pool; _ } ->
                tagged := fmt "p%d" pool :: !tagged
              | Record.Switch_end _ -> tagged := "e" :: !tagged
              | Record.Switch_begin _ | Record.Submission _ | Record.Ladder _
                -> ())
          arr;
        List.iter
          (fun s ->
            Buffer.add_string b s;
            Buffer.add_char b ';')
          (List.sort String.compare !tagged);
        Buffer.contents b
      in
      (if not (Hashtbl.mem seen durable_key) then begin
         Hashtbl.add seen durable_key ();
         if !budget > 0 then begin
           decr budget;
           incr crash_checks;
           let durable = Array.to_list (Array.sub arr 0 cut) in
           List.iter
             (fun v -> out := (crash, v) :: !out)
             (check_durable ctx state durable)
         end
       end);
      (* torn cut partway into the first lost frame *)
      if torn && Model.want ctx Invariant.Write_ahead && cut < n then begin
        let durable = Array.to_list (Array.sub arr 0 cut) in
        let frame = Record.to_frame arr.(cut) in
        List.iter
          (fun c ->
            incr torn_cuts;
            List.iter
              (fun v -> out := ({ Witness.kept; torn = Some c }, v) :: !out)
              (check_torn state.nsteps durable frame c))
          (torn_offsets ~exhaustive (String.length frame))
      end
    done;
    List.rev !out
  end

(* Replay one crash spec from a witness. *)
let check_spec ctx state (crash : Witness.crash) =
  let arr, last_cp = split_trace state in
  let n = Array.length arr in
  let kept = max 0 (min crash.kept (n - 1 - last_cp)) in
  let cut = last_cp + 1 + kept in
  let durable = Array.to_list (Array.sub arr 0 cut) in
  let vs = check_durable ctx state durable in
  match crash.torn with
  | Some c when cut < n ->
    let frame = Record.to_frame arr.(cut) in
    let c = max 1 (min c (String.length frame - 1)) in
    vs @ check_torn state.nsteps durable frame c
  | _ -> vs
