(* Counterexample minimization: classic ddmin delta debugging over the
   witness's schedule steps, then a shrink of the crash point. The
   caller supplies the reproduction predicate (a witness replay that
   checks whether the same invariant still fails); candidates whose
   schedules are not even executable simply fail the predicate. *)

let chunk lst n =
  let len = List.length lst in
  let size = max 1 ((len + n - 1) / n) in
  let rec go acc cur cnt = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
      if cnt = size then go (List.rev cur :: acc) [ x ] 1 tl
      else go acc (x :: cur) (cnt + 1) tl
  in
  go [] [] 0 lst

let rec ddmin test lst n =
  let len = List.length lst in
  if len <= 1 then lst
  else begin
    let chunks = chunk lst n in
    match List.find_opt test chunks with
    | Some c -> ddmin test c 2
    | None -> (
      let complements =
        List.mapi
          (fun i _ ->
            List.concat (List.filteri (fun j _ -> j <> i) chunks))
          chunks
      in
      match List.find_opt test complements with
      | Some c -> ddmin test c (max (n - 1) 2)
      | None -> if n < len then ddmin test lst (min len (2 * n)) else lst)
  end

let minimize ~reproduces (w : Witness.t) =
  (* drop the crash point when the schedule alone reproduces *)
  let w =
    match w.Witness.crash with
    | Some _ when reproduces { w with Witness.crash = None } ->
      { w with Witness.crash = None }
    | _ -> w
  in
  let steps =
    ddmin (fun steps -> reproduces { w with Witness.steps = steps }) w.steps 2
  in
  let w = { w with Witness.steps = steps } in
  match w.crash with
  | None -> w
  | Some { kept; torn } -> (
    (* prefer no torn cut, then the smallest durable buffer *)
    let w =
      match torn with
      | Some _
        when reproduces
               { w with Witness.crash = Some { Witness.kept; torn = None } }
        ->
        { w with Witness.crash = Some { Witness.kept; torn = None } }
      | _ -> w
    in
    match w.crash with
    | None -> w
    | Some crash ->
      let rec shrink_kept k =
        if k >= crash.Witness.kept then w
        else if
          reproduces
            { w with Witness.crash = Some { crash with Witness.kept = k } }
        then { w with Witness.crash = Some { crash with Witness.kept = k } }
        else shrink_kept (k + 1)
      in
      shrink_kept 0)
