(* The checker driver: depth-first stateless exploration of the
   abstract switch model with visited-state dedup and sleep-set
   pruning, crash-state exploration at every state, optional
   conformance runs on the real executor, and ddmin minimization of
   the first counterexample. *)

open Entropy_core
module Json = Entropy_obs.Json

type limits = {
  depth : int;
  max_states : int;
  max_crash_checks : int;
  max_violations : int;
  exhaustive : bool;
  crash : bool;
  torn : bool;
  sim_runs : int;
}

let default_limits =
  {
    depth = 8;
    max_states = 200_000;
    max_crash_checks = 4_000;
    max_violations = 16;
    exhaustive = false;
    crash = true;
    torn = true;
    sim_runs = 8;
  }

type stats = {
  mutable states : int;
  mutable transitions : int;
  mutable deduped : int;
  mutable sleep_pruned : int;
  mutable crash_checks : int;
  mutable torn_cuts : int;
  mutable sim_runs : int;
  mutable sim_decision_points : int;
  mutable elapsed_s : float;
}

let new_stats () =
  {
    states = 0;
    transitions = 0;
    deduped = 0;
    sleep_pruned = 0;
    crash_checks = 0;
    torn_cuts = 0;
    sim_runs = 0;
    sim_decision_points = 0;
    elapsed_s = 0.;
  }

type counterexample = {
  violation : Invariant.violation;
  witness : Witness.t;
  minimized : Witness.t;
}

type report = {
  violations : Invariant.violation list;
  counterexample : counterexample option;
  stats : stats;
  complete : bool;
  invariants : Invariant.id list;
  action_count : int;
  pool_count : int;
}

(* -- witness replay --------------------------------------------------------- *)

(* Replay a witness on the model: every step must be enabled (an
   inexecutable schedule yields [None]); otherwise all violations seen
   along the way — transition, state, and crash-spec checks at the
   final state — in order. *)
let replay ctx (w : Witness.t) =
  let state = ref (Model.init ctx) in
  let acc = ref (List.rev (Model.state_violations ctx !state)) in
  let executable =
    List.for_all
      (fun step ->
        let en = Model.enabled ctx !state in
        if not (List.exists (Witness.step_equal step) en) then false
        else begin
          let st', tvs = Model.apply ctx !state step in
          state := st';
          acc := List.rev_append (Model.state_violations ctx st') (List.rev_append tvs !acc);
          true
        end)
      w.steps
  in
  if not executable then None
  else begin
    let crash_vs =
      match w.crash with
      | None -> []
      | Some c -> Crash.check_spec ctx !state c
    in
    Some (List.rev !acc @ crash_vs)
  end

(* -- exploration ------------------------------------------------------------ *)

exception Stop_exploring

let subset small big =
  List.for_all (fun x -> List.exists (Witness.step_equal x) big) small

let explore ctx limits stats note =
  (* visited: state key -> sleep sets it was expanded under; a revisit
     whose sleep set is a superset of a stored one cannot reach
     anything new *)
  let visited : (string, Witness.step list list) Hashtbl.t =
    Hashtbl.create 4096
  in
  let crash_seen : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  (* exhaustive means exhaustive: no crash budget *)
  let crash_budget =
    ref (if limits.exhaustive then max_int else limits.max_crash_checks)
  in
  let crash_checks = ref 0 and torn_cuts = ref 0 in
  let complete = ref true in
  let rec go state sleep =
    if stats.states >= limits.max_states then begin
      complete := false
    end
    else begin
      let k = Model.key state in
      let stored = Option.value ~default:[] (Hashtbl.find_opt visited k) in
      if List.exists (fun s -> subset s sleep) stored then
        stats.deduped <- stats.deduped + 1
      else begin
        Hashtbl.replace visited k (sleep :: stored);
        let first_visit = stored = [] in
        if first_visit then begin
          stats.states <- stats.states + 1;
          List.iter
            (fun v -> note (Model.witness state) v)
            (Model.state_violations ctx state);
          if limits.crash then begin
            List.iter
              (fun (crash, v) -> note (Model.witness ~crash state) v)
              (Crash.explore ctx state ~torn:limits.torn
                 ~exhaustive:limits.exhaustive ~seen:crash_seen
                 ~budget:crash_budget ~crash_checks ~torn_cuts);
            if !crash_budget <= 0 then complete := false
          end
        end;
        let en = Model.enabled ctx state in
        if en <> [] then begin
          let branching =
            limits.exhaustive || state.Model.nsteps < limits.depth
          in
          if branching then begin
            let explored = ref [] in
            List.iter
              (fun step ->
                if
                  (not limits.exhaustive)
                  && List.exists (Witness.step_equal step) sleep
                then stats.sleep_pruned <- stats.sleep_pruned + 1
                else begin
                  stats.transitions <- stats.transitions + 1;
                  let st', tvs = Model.apply ctx state step in
                  List.iter (fun v -> note (Model.witness st') v) tvs;
                  let child_sleep =
                    if limits.exhaustive then []
                    else
                      List.filter
                        (fun u -> Model.independent ctx u step)
                        (!explored @ sleep)
                  in
                  go st' child_sleep;
                  explored := step :: !explored
                end)
              en
          end
          else begin
            (* past the branching depth: follow the canonical schedule *)
            complete := false;
            let step = List.hd en in
            stats.transitions <- stats.transitions + 1;
            let st', tvs = Model.apply ctx state step in
            List.iter (fun v -> note (Model.witness st') v) tvs;
            go st' []
          end
        end
      end
    end
  in
  (try go (Model.init ctx) [] with Stop_exploring -> complete := false);
  stats.crash_checks <- !crash_checks;
  stats.torn_cuts <- !torn_cuts;
  !complete

(* -- driver ----------------------------------------------------------------- *)

let check ?(vjobs = []) ?(invariants = Invariant.all) ?(limits = default_limits)
    ~source ~target ~demand plan =
  let ctx = Model.make_ctx ~vjobs ~invariants ~source ~target ~demand plan in
  let stats = new_stats () in
  let t0 = Sys.time () in
  let seen_violations : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let violations = ref [] in
  let first : (Invariant.violation * Witness.t) option ref = ref None in
  let count = ref 0 in
  let note witness (v : Invariant.violation) =
    let key = Invariant.to_string v.invariant ^ "|" ^ v.detail in
    if not (Hashtbl.mem seen_violations key) then begin
      Hashtbl.add seen_violations key ();
      violations := v :: !violations;
      if !first = None then first := Some (v, witness);
      incr count;
      Log.debug (fun m ->
          m "violation %a (witness %a)" Invariant.pp_violation v Witness.pp
            witness);
      if !count >= limits.max_violations then raise Stop_exploring
    end
  in
  let complete = explore ctx limits stats note in
  (* conformance runs on the real executor *)
  let sim_complete =
    if limits.sim_runs > 0 then begin
      let sim = Sim_check.run ctx ~max_runs:limits.sim_runs in
      stats.sim_runs <- sim.Sim_check.runs;
      stats.sim_decision_points <- sim.Sim_check.decision_points;
      (try
         List.iter
           (fun (v, choices) ->
             let v =
               {
                 v with
                 Invariant.detail =
                   Printf.sprintf "%s (tie-breaks [%s])" v.Invariant.detail
                     (String.concat ";" (List.map string_of_int choices));
               }
             in
             note { Witness.steps = []; crash = None } v)
           sim.Sim_check.violations
       with Stop_exploring -> ());
      sim.Sim_check.complete
    end
    else true
  in
  (* minimize the first counterexample that has a real witness *)
  let counterexample =
    match !first with
    | Some (v, w) when w.Witness.steps <> [] || w.Witness.crash <> None ->
      let inv = v.Invariant.invariant in
      let reproduces cand =
        match replay ctx cand with
        | None -> false
        | Some vs ->
          List.exists (fun v' -> v'.Invariant.invariant = inv) vs
      in
      let minimized = if reproduces w then Shrink.minimize ~reproduces w else w in
      Some { violation = v; witness = w; minimized }
    | _ -> None
  in
  stats.elapsed_s <- Sys.time () -. t0;
  {
    violations = List.rev !violations;
    counterexample;
    stats;
    complete = complete && sim_complete;
    invariants;
    action_count = Plan.action_count plan;
    pool_count = Plan.pool_count plan;
  }

let make_ctx = Model.make_ctx

let states_per_sec r =
  float_of_int r.stats.states /. Float.max r.stats.elapsed_s 1e-9

let report_to_json r =
  let v_json (v : Invariant.violation) =
    Json.Obj
      [
        ("invariant", Json.String (Invariant.to_string v.invariant));
        ("step", Json.Int v.step);
        ("detail", Json.String v.detail);
      ]
  in
  Json.Obj
    [
      ("actions", Json.Int r.action_count);
      ("pools", Json.Int r.pool_count);
      ( "invariants",
        Json.List
          (List.map
             (fun i -> Json.String (Invariant.to_string i))
             r.invariants) );
      ("complete", Json.Bool r.complete);
      ("states", Json.Int r.stats.states);
      ("transitions", Json.Int r.stats.transitions);
      ("deduped", Json.Int r.stats.deduped);
      ("sleep_pruned", Json.Int r.stats.sleep_pruned);
      ("crash_checks", Json.Int r.stats.crash_checks);
      ("torn_cuts", Json.Int r.stats.torn_cuts);
      ("sim_runs", Json.Int r.stats.sim_runs);
      ("sim_decision_points", Json.Int r.stats.sim_decision_points);
      ("elapsed_s", Json.Float r.stats.elapsed_s);
      ("states_per_sec", Json.Float (states_per_sec r));
      ("violations", Json.Int (List.length r.violations));
      ("violation_details", Json.List (List.map v_json r.violations));
      ( "counterexample",
        match r.counterexample with
        | None -> Json.Null
        | Some c ->
          Json.Obj
            [
              ( "invariant",
                Json.String (Invariant.to_string c.violation.Invariant.invariant)
              );
              ("detail", Json.String c.violation.Invariant.detail);
              ("witness", Witness.to_json c.witness);
              ("minimized", Witness.to_json c.minimized);
              ( "minimized_steps",
                Json.Int (List.length c.minimized.Witness.steps) );
            ] );
    ]

let pp_report ppf r =
  Format.fprintf ppf
    "model check: %d actions / %d pools, %d states, %d transitions (%d \
     deduped, %d sleep-pruned), %d crash cuts, %d torn cuts, %d sim runs \
     (%d decision points), %.3f s (%.0f states/s)%s@."
    r.action_count r.pool_count r.stats.states r.stats.transitions
    r.stats.deduped r.stats.sleep_pruned r.stats.crash_checks
    r.stats.torn_cuts r.stats.sim_runs r.stats.sim_decision_points
    r.stats.elapsed_s (states_per_sec r)
    (if r.complete then "" else " [bounded: state space not exhausted]");
  match r.violations with
  | [] -> Format.fprintf ppf "0 violations@."
  | vs ->
    Format.fprintf ppf "%d violation(s):@." (List.length vs);
    List.iter
      (fun v -> Format.fprintf ppf "  %a@." Invariant.pp_violation v)
      vs;
    match r.counterexample with
    | None -> ()
    | Some c ->
      Format.fprintf ppf "counterexample (%d steps, minimized to %d): %a@."
        (List.length c.witness.Witness.steps)
        (List.length c.minimized.Witness.steps)
        Witness.pp c.minimized
