(** Delta-debugged counterexample minimization. *)

val minimize : reproduces:(Witness.t -> bool) -> Witness.t -> Witness.t
(** 1-minimal witness under the reproduction predicate (classic ddmin
    over the schedule steps): no single schedule step can be removed,
    the crash point is dropped when the schedule alone reproduces, and
    a remaining crash point keeps the smallest durable buffer (torn cut
    removed when possible). The input witness must itself reproduce. *)
